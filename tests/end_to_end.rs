//! Cross-crate integration tests through the `hstencil` facade: the full
//! pipeline from stencil specification through kernel emission, simulated
//! execution, verification and reporting.

use hstencil::isa::{PipeClass, VLEN};
use hstencil::sim::{MachineConfig, MachineKind};
use hstencil::{presets, Grid2d, Grid3d, Method, Pattern, StencilPlan, StencilSpec};

fn grid(h: usize, w: usize, halo: usize) -> Grid2d {
    Grid2d::from_fn(h, w, halo, |i, j| {
        ((i * 37 + j * 13 + 5) % 211) as f64 * 0.013 - 1.0
    })
}

#[test]
fn facade_reexports_are_coherent() {
    assert_eq!(VLEN, 8);
    let cfg = MachineConfig::lx2();
    assert_eq!(cfg.kind, MachineKind::Lx2);
    assert_eq!(PipeClass::ALL.len(), 4);
}

#[test]
fn full_pipeline_star_on_lx2() {
    let spec = presets::star2d9p();
    let out = StencilPlan::new(&spec, Method::HStencil)
        .verify(true)
        .run_2d(&MachineConfig::lx2(), &grid(64, 64, 2))
        .expect("full pipeline");
    let r = &out.report;
    assert_eq!(r.method, "HStencil");
    assert_eq!(r.kernel, "hstencil-inplace");
    assert_eq!(r.stencil, "star2d9p");
    assert!(
        r.ipc() > 1.0,
        "hybrid kernel should sustain IPC > 1, got {:.2}",
        r.ipc()
    );
    assert!(r.matrix_utilization().is_some());
    assert!(r.gstencil_per_s() > 0.0);
    assert!(r.time_ms() > 0.0);
}

#[test]
fn report_display_is_informative() {
    let spec = presets::heat2d();
    let out = StencilPlan::new(&spec, Method::HStencil)
        .verify(true)
        .run_2d(&MachineConfig::lx2(), &grid(32, 32, 1))
        .unwrap();
    let line = out.report.to_string();
    assert!(line.contains("HStencil"));
    assert!(line.contains("heat2d"));
    assert!(line.contains("cycles"));
}

#[test]
fn methods_rank_as_the_paper_reports() {
    // The headline ordering on an in-cache r=2 box: auto slowest, then
    // vector, then matrix-only, then HStencil (paper Figure 12).
    let spec = presets::box2d25p();
    let g = grid(128, 128, 2);
    let cfg = MachineConfig::lx2();
    let cycles = |m: Method| {
        StencilPlan::new(&spec, m)
            .verify(true)
            .run_2d(&cfg, &g)
            .unwrap()
            .report
            .cycles()
    };
    let auto = cycles(Method::Auto);
    let vector = cycles(Method::VectorOnly);
    let matrix = cycles(Method::MatrixOnly);
    let hstencil = cycles(Method::HStencil);
    assert!(hstencil < matrix, "HStencil {hstencil} vs matrix {matrix}");
    assert!(matrix < vector, "matrix {matrix} vs vector {vector}");
    assert!(vector < auto, "vector {vector} vs auto {auto}");
}

#[test]
fn sweeps_accumulate_points_and_cycles() {
    let spec = presets::star2d5p();
    let g = grid(32, 32, 1);
    let cfg = MachineConfig::lx2();
    let one = StencilPlan::new(&spec, Method::HStencil)
        .sweeps(1)
        .run_2d(&cfg, &g)
        .unwrap();
    let three = StencilPlan::new(&spec, Method::HStencil)
        .sweeps(3)
        .run_2d(&cfg, &g)
        .unwrap();
    assert_eq!(three.report.points, 3 * one.report.points);
    assert!(three.report.cycles() > 2 * one.report.cycles());
}

#[test]
fn warmup_changes_cache_behaviour_not_results() {
    let spec = presets::box2d9p();
    let g = grid(48, 48, 1);
    let cfg = MachineConfig::lx2();
    let cold = StencilPlan::new(&spec, Method::HStencil)
        .warmup(0)
        .run_2d(&cfg, &g)
        .unwrap();
    let warm = StencilPlan::new(&spec, Method::HStencil)
        .warmup(2)
        .run_2d(&cfg, &g)
        .unwrap();
    assert_eq!(cold.output.max_interior_diff(&warm.output), 0.0);
    assert!(
        warm.report.l1_load_hit_rate() >= cold.report.l1_load_hit_rate(),
        "warm {:.3} vs cold {:.3}",
        warm.report.l1_load_hit_rate(),
        cold.report.l1_load_hit_rate()
    );
}

#[test]
fn lx2_and_m4_agree_functionally() {
    let spec = presets::star2d9p();
    let g = grid(40, 48, 2);
    let lx2 = StencilPlan::new(&spec, Method::HStencil)
        .run_2d(&MachineConfig::lx2(), &g)
        .unwrap();
    let m4 = StencilPlan::new(&spec, Method::HStencil)
        .run_2d(&MachineConfig::apple_m4(), &g)
        .unwrap();
    assert!(lx2.output.max_interior_diff(&m4.output) < 1e-12);
    // Different kernels, though: M4 reverts to the M-MLA + naive combine.
    assert_eq!(lx2.report.kernel, "hstencil-inplace");
    assert_eq!(m4.report.kernel, "hstencil-m4-star");
}

#[test]
fn three_d_pipeline_through_facade() {
    let spec = presets::box3d27p();
    let g = Grid3d::from_fn(6, 16, 24, 1, |k, i, j| {
        ((k * 5 + i * 3 + j) % 31) as f64 * 0.1
    });
    let out = StencilPlan::new(&spec, Method::HStencil)
        .verify(true)
        .run_3d(&MachineConfig::lx2(), &g)
        .expect("3-D pipeline");
    assert_eq!(out.report.points, 6 * 16 * 24);
}

#[test]
fn custom_spec_through_facade() {
    // An asymmetric advection-like stencil: upwind weights.
    let spec = StencilSpec::new_2d(
        "upwind",
        Pattern::Box,
        1,
        vec![0.00, 0.10, 0.00, 0.25, 0.45, 0.05, 0.00, 0.15, 0.00],
    );
    let out = StencilPlan::new(&spec, Method::HStencil)
        .verify(true)
        .run_2d(&MachineConfig::lx2(), &grid(32, 40, 1))
        .expect("custom asymmetric stencil");
    assert!(out.report.cycles() > 0);
}

#[test]
fn error_paths_are_reported() {
    let spec = presets::star2d5p();
    // Grid too small.
    let tiny = Grid2d::zeros(4, 4, 1);
    let err = StencilPlan::new(&spec, Method::HStencil).run_2d(&MachineConfig::lx2(), &tiny);
    assert!(matches!(err, Err(hstencil::PlanError::GridTooSmall { .. })));
    // Halo smaller than radius.
    let shallow = Grid2d::zeros(16, 16, 1);
    let spec2 = presets::star2d9p();
    let err = StencilPlan::new(&spec2, Method::HStencil).run_2d(&MachineConfig::lx2(), &shallow);
    assert!(matches!(err, Err(hstencil::PlanError::GridTooSmall { .. })));
}

#[test]
fn multicore_through_facade() {
    let spec = presets::box2d9p();
    let g = grid(64, 64, 1);
    let plan = StencilPlan::new(&spec, Method::HStencil).warmup(0);
    let (out, rep) = hstencil::run_multicore(&plan, &spec, &MachineConfig::lx2(), &g, 4).unwrap();
    let mut want = g.clone();
    hstencil::reference::apply_2d(&spec, &g, &mut want);
    assert!(want.max_interior_diff(&out) < 1e-9);
    assert_eq!(rep.per_core.len(), 4);
    assert!(rep.gstencil_per_s() > 0.0);
}
