//! Property test: every instruction round-trips through its textual form.

use lx2_isa::{assemble, Inst, MemKind, RowMask, VReg, ZaReg};
use proptest::prelude::*;

fn arb_vreg() -> impl Strategy<Value = VReg> {
    (0usize..lx2_isa::NUM_VREGS).prop_map(VReg::new)
}

fn arb_za() -> impl Strategy<Value = ZaReg> {
    (0usize..lx2_isa::NUM_ZA_TILES).prop_map(ZaReg::new)
}

fn arb_inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        (arb_vreg(), 0u64..1_000_000).prop_map(|(vd, addr)| Inst::Ld1d { vd, addr }),
        (arb_vreg(), 0u64..1_000_000, 1u64..10_000).prop_map(|(vd, addr, stride)| Inst::LdCol {
            vd,
            addr,
            stride
        }),
        (arb_vreg(), 0u64..1_000_000).prop_map(|(vs, addr)| Inst::St1d { vs, addr }),
        (arb_za(), 0u8..8, 0u64..1_000_000).prop_map(|(za, row, addr)| Inst::StZaRow {
            za,
            row,
            addr
        }),
        (arb_vreg(), 0u64..1_000_000, 1u64..10_000).prop_map(|(vs, addr, stride)| Inst::StCol {
            vs,
            addr,
            stride
        }),
        (arb_vreg(), arb_vreg(), arb_vreg()).prop_map(|(vd, vn, vm)| Inst::Fmla { vd, vn, vm }),
        (arb_vreg(), arb_vreg(), arb_vreg(), 0u8..8).prop_map(|(vd, vn, vm, idx)| Inst::FmlaIdx {
            vd,
            vn,
            vm,
            idx
        }),
        (arb_vreg(), arb_vreg(), arb_vreg()).prop_map(|(vd, vn, vm)| Inst::Fadd { vd, vn, vm }),
        (arb_vreg(), arb_vreg(), arb_vreg()).prop_map(|(vd, vn, vm)| Inst::Fmul { vd, vn, vm }),
        (arb_vreg(), arb_vreg(), arb_vreg(), 0u8..=8).prop_map(|(vd, vn, vm, shift)| Inst::Ext {
            vd,
            vn,
            vm,
            shift
        }),
        // Immediates restricted to values whose Display form parses back
        // exactly (plain decimal f64; Rust prints shortest roundtrip).
        (arb_vreg(), -1000i32..1000).prop_map(|(vd, q)| Inst::DupImm {
            vd,
            imm: q as f64 / 8.0,
        }),
        (arb_za(), arb_vreg(), arb_vreg(), any::<u8>()).prop_map(|(za, vn, vm, bits)| {
            Inst::Fmopa {
                za,
                vn,
                vm,
                mask: RowMask::from_bits(bits),
            }
        }),
        (arb_za(), 0u8..2, 0usize..28, arb_vreg(), 0u8..8).prop_map(|(za, half, vn0, vm, idx)| {
            Inst::Fmlag {
                za,
                half,
                vn0: VReg::new(vn0),
                vm,
                idx,
            }
        }),
        (arb_vreg(), arb_za(), 0u8..8).prop_map(|(vd, za, row)| Inst::MovaToVec { vd, za, row }),
        (arb_za(), 0u8..8, arb_vreg()).prop_map(|(za, row, vs)| Inst::MovaFromVec { za, row, vs }),
        (arb_za(), any::<u8>()).prop_map(|(za, bits)| Inst::ZeroZa {
            za,
            mask: RowMask::from_bits(bits)
        }),
        (0u64..1_000_000, any::<bool>()).prop_map(|(addr, w)| Inst::Prfm {
            addr,
            kind: if w { MemKind::Write } else { MemKind::Read },
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn display_then_assemble_is_identity(inst in arb_inst()) {
        let text = inst.to_string();
        let program = assemble(&text)
            .map_err(|e| TestCaseError::fail(format!("'{text}' failed to parse: {e}")))?;
        prop_assert_eq!(program.len(), 1);
        prop_assert_eq!(program.insts()[0], inst, "text was '{}'", text);
    }

    #[test]
    fn whole_programs_roundtrip(insts in proptest::collection::vec(arb_inst(), 1..64)) {
        let mut p = lx2_isa::Program::new();
        p.extend(insts.iter().copied());
        let listing = p.to_string();
        let reparsed = assemble(&listing)
            .map_err(|e| TestCaseError::fail(format!("listing failed: {e}")))?;
        prop_assert_eq!(reparsed.insts(), p.insts());
        prop_assert_eq!(reparsed.mix(), p.mix());
    }
}
