//! Property test: every instruction round-trips through its textual form.
//!
//! Runs on the in-repo `hstencil-testkit` property harness; a failure
//! prints a `TESTKIT_SEED=0x...` line that replays the exact case (see
//! README.md "Hermetic / offline build").

use hstencil_testkit::prop::{self, any_bool, any_u8, one_of, range, vec_of, Config, Strategy};
use hstencil_testkit::prop_assert_eq;
use lx2_isa::{assemble, Inst, MemKind, RowMask, VReg, ZaReg};

fn arb_vreg() -> impl Strategy<Value = VReg> {
    range(0usize..lx2_isa::NUM_VREGS).map(VReg::new)
}

fn arb_za() -> impl Strategy<Value = ZaReg> {
    range(0usize..lx2_isa::NUM_ZA_TILES).map(ZaReg::new)
}

fn arb_inst() -> impl Strategy<Value = Inst> {
    one_of(vec![
        Box::new((arb_vreg(), range(0u64..1_000_000)).map(|(vd, addr)| Inst::Ld1d { vd, addr }))
            as Box<dyn Strategy<Value = Inst>>,
        Box::new(
            (arb_vreg(), range(0u64..1_000_000), range(1u64..10_000))
                .map(|(vd, addr, stride)| Inst::LdCol { vd, addr, stride }),
        ),
        Box::new((arb_vreg(), range(0u64..1_000_000)).map(|(vs, addr)| Inst::St1d { vs, addr })),
        Box::new(
            (arb_za(), range(0u8..8), range(0u64..1_000_000))
                .map(|(za, row, addr)| Inst::StZaRow { za, row, addr }),
        ),
        Box::new(
            (arb_vreg(), range(0u64..1_000_000), range(1u64..10_000))
                .map(|(vs, addr, stride)| Inst::StCol { vs, addr, stride }),
        ),
        Box::new(
            (arb_vreg(), arb_vreg(), arb_vreg()).map(|(vd, vn, vm)| Inst::Fmla { vd, vn, vm }),
        ),
        Box::new(
            (arb_vreg(), arb_vreg(), arb_vreg(), range(0u8..8))
                .map(|(vd, vn, vm, idx)| Inst::FmlaIdx { vd, vn, vm, idx }),
        ),
        Box::new(
            (arb_vreg(), arb_vreg(), arb_vreg()).map(|(vd, vn, vm)| Inst::Fadd { vd, vn, vm }),
        ),
        Box::new(
            (arb_vreg(), arb_vreg(), arb_vreg()).map(|(vd, vn, vm)| Inst::Fmul { vd, vn, vm }),
        ),
        Box::new(
            (arb_vreg(), arb_vreg(), arb_vreg(), range(0u8..9))
                .map(|(vd, vn, vm, shift)| Inst::Ext { vd, vn, vm, shift }),
        ),
        // Immediates restricted to values whose Display form parses back
        // exactly (plain decimal f64; Rust prints shortest roundtrip).
        Box::new(
            (arb_vreg(), range(-1000i32..1000)).map(|(vd, q)| Inst::DupImm {
                vd,
                imm: q as f64 / 8.0,
            }),
        ),
        Box::new(
            (arb_za(), arb_vreg(), arb_vreg(), any_u8()).map(|(za, vn, vm, bits)| Inst::Fmopa {
                za,
                vn,
                vm,
                mask: RowMask::from_bits(bits),
            }),
        ),
        Box::new(
            (
                arb_za(),
                range(0u8..2),
                range(0usize..28),
                arb_vreg(),
                range(0u8..8),
            )
                .map(|(za, half, vn0, vm, idx)| Inst::Fmlag {
                    za,
                    half,
                    vn0: VReg::new(vn0),
                    vm,
                    idx,
                }),
        ),
        Box::new(
            (arb_vreg(), arb_za(), range(0u8..8)).map(|(vd, za, row)| Inst::MovaToVec {
                vd,
                za,
                row,
            }),
        ),
        Box::new(
            (arb_za(), range(0u8..8), arb_vreg()).map(|(za, row, vs)| Inst::MovaFromVec {
                za,
                row,
                vs,
            }),
        ),
        Box::new((arb_za(), any_u8()).map(|(za, bits)| Inst::ZeroZa {
            za,
            mask: RowMask::from_bits(bits),
        })),
        Box::new(
            (range(0u64..1_000_000), any_bool()).map(|(addr, w)| Inst::Prfm {
                addr,
                kind: if w { MemKind::Write } else { MemKind::Read },
            }),
        ),
    ])
}

#[test]
fn display_then_assemble_is_identity() {
    let cfg = Config::with_cases(512);
    prop::check(&cfg, &arb_inst(), |inst| {
        let text = inst.to_string();
        let program = assemble(&text).map_err(|e| format!("'{text}' failed to parse: {e}"))?;
        prop_assert_eq!(program.len(), 1);
        prop_assert_eq!(program.insts()[0], *inst, "text was '{}'", text);
        Ok(())
    });
}

#[test]
fn whole_programs_roundtrip() {
    let cfg = Config::with_cases(512);
    prop::check(&cfg, &vec_of(arb_inst(), 1..64), |insts| {
        let mut p = lx2_isa::Program::new();
        p.extend(insts.iter().copied());
        let listing = p.to_string();
        let reparsed = assemble(&listing).map_err(|e| format!("listing failed: {e}"))?;
        prop_assert_eq!(reparsed.insts(), p.insts());
        prop_assert_eq!(reparsed.mix(), p.mix());
        Ok(())
    });
}

/// Regression pinned from the retired proptest run: an `FMOPA` with an
/// all-zero row mask and `vn == vm` failed to round-trip through the
/// listing (shrunk to a single instruction by the old harness).
#[test]
fn regression_fmopa_empty_mask_roundtrips() {
    let inst = Inst::Fmopa {
        za: ZaReg::new(0),
        vn: VReg::new(0),
        vm: VReg::new(0),
        mask: RowMask::from_bits(0),
    };
    let mut p = lx2_isa::Program::new();
    p.push(inst);
    let listing = p.to_string();
    let reparsed = assemble(&listing).unwrap_or_else(|e| panic!("'{listing}' failed: {e}"));
    assert_eq!(reparsed.insts(), p.insts());
    let single = assemble(&inst.to_string()).expect("single instruction parses");
    assert_eq!(single.insts()[0], inst);
}
