//! Automatic list scheduling over instruction programs.
//!
//! The paper's kernels interleave their matrix/vector/memory streams by
//! hand (§3.2.2). This pass does it mechanically for *any* program: build
//! the precise dependence graph (register RAW/WAR/WAW plus memory
//! aliasing — addresses are absolute, so aliasing is exact), then
//! list-schedule with critical-path priority and per-cycle pipe-diversity
//! balancing. Semantics are preserved by construction; tests verify final
//! architectural state is bit-identical on random programs.

use crate::inst::{Inst, MemKind};
use crate::pipes::PIPE_CLASS_COUNT;
use crate::program::Program;
use crate::regs::{Reg, VLEN};

/// Machine shape the scheduler optimizes for.
#[derive(Clone, Copy, Debug)]
pub struct ScheduleParams {
    /// Issue width per virtual cycle.
    pub issue_width: usize,
    /// Units per pipe class (indexed by [`crate::PipeClass::index`]).
    pub units: [usize; PIPE_CLASS_COUNT],
    /// Result latency assumed per pipe class.
    pub latency: [u64; PIPE_CLASS_COUNT],
}

impl Default for ScheduleParams {
    fn default() -> Self {
        // The LX2 shape.
        ScheduleParams {
            issue_width: 4,
            units: [2, 1, 2, 1],
            latency: [4, 4, 4, 1],
        }
    }
}

/// The element range a memory instruction touches, if any.
fn mem_range(inst: &Inst) -> Option<(u64, u64, MemKind)> {
    let v = VLEN as u64;
    match *inst {
        Inst::Ld1d { addr, .. } => Some((addr, addr + v, MemKind::Read)),
        Inst::LdCol { addr, stride, .. } => {
            Some((addr, addr + (v - 1) * stride + 1, MemKind::Read))
        }
        Inst::St1d { addr, .. } | Inst::StZaRow { addr, .. } => {
            Some((addr, addr + v, MemKind::Write))
        }
        Inst::StCol { addr, stride, .. } => {
            Some((addr, addr + (v - 1) * stride + 1, MemKind::Write))
        }
        // Prefetches are hints: no ordering requirement.
        _ => None,
    }
}

fn ranges_overlap(a: (u64, u64), b: (u64, u64)) -> bool {
    a.0 < b.1 && b.0 < a.1
}

/// Dense register index (vectors then tiles).
fn reg_slot(reg: Reg) -> usize {
    match reg {
        Reg::V(v) => v.index(),
        Reg::Za(z) => crate::regs::NUM_VREGS + z.index(),
    }
}

const REG_SLOTS: usize = crate::regs::NUM_VREGS + crate::regs::NUM_ZA_TILES;

/// Builds the dependence graph: `preds[i]` lists instructions that must
/// precede instruction `i` (RAW, WAR, WAW and memory order).
fn dependence_graph(insts: &[Inst]) -> Vec<Vec<usize>> {
    let n = insts.len();
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut last_writer: [Option<usize>; REG_SLOTS] = [None; REG_SLOTS];
    let mut readers_since_write: Vec<Vec<usize>> = vec![Vec::new(); REG_SLOTS];
    // Memory ordering: stores order against everything overlapping;
    // loads only against stores.
    let mut stores: Vec<(usize, (u64, u64))> = Vec::new();
    let mut loads: Vec<(usize, (u64, u64))> = Vec::new();

    for (i, inst) in insts.iter().enumerate() {
        let add = |preds_i: &mut Vec<usize>, p: usize| {
            if !preds_i.contains(&p) {
                preds_i.push(p);
            }
        };
        let mut my_preds = Vec::new();

        // Register reads (RAW).
        let mut reads: Vec<Reg> = inst.reads().into_iter().flatten().collect();
        if let Inst::Fmlag { vn0, .. } = inst {
            for k in 1..=inst.group_extra_reads() {
                reads.push(Reg::V(crate::regs::VReg::new(vn0.index() + k)));
            }
        }
        for r in &reads {
            if let Some(w) = last_writer[reg_slot(*r)] {
                add(&mut my_preds, w);
            }
        }
        // Register write (WAW + WAR).
        if let Some(w) = inst.write() {
            let slot = reg_slot(w);
            if let Some(prev) = last_writer[slot] {
                add(&mut my_preds, prev);
            }
            for &rd in &readers_since_write[slot] {
                if rd != i {
                    add(&mut my_preds, rd);
                }
            }
        }
        // Memory order.
        if let Some((lo, hi, kind)) = mem_range(inst) {
            for &(s, range) in &stores {
                if ranges_overlap((lo, hi), range) {
                    add(&mut my_preds, s);
                }
            }
            if kind == MemKind::Write {
                for &(l, range) in &loads {
                    if ranges_overlap((lo, hi), range) {
                        add(&mut my_preds, l);
                    }
                }
            }
        }

        // Commit bookkeeping.
        for r in &reads {
            readers_since_write[reg_slot(*r)].push(i);
        }
        if let Some(w) = inst.write() {
            let slot = reg_slot(w);
            last_writer[slot] = Some(i);
            readers_since_write[slot].clear();
        }
        if let Some((lo, hi, kind)) = mem_range(inst) {
            match kind {
                MemKind::Read => loads.push((i, (lo, hi))),
                MemKind::Write => stores.push((i, (lo, hi))),
            }
        }
        preds[i] = my_preds;
    }
    preds
}

/// List-schedules `insts` for `params`; returns the reordered program.
///
/// The output preserves every dependence of the input (identical final
/// architectural and memory state) while interleaving independent work
/// across pipes — an automatic rendition of the paper's Figure 10.
pub fn list_schedule(insts: &[Inst], params: &ScheduleParams) -> Vec<Inst> {
    let n = insts.len();
    if n <= 1 {
        return insts.to_vec();
    }
    let preds = dependence_graph(insts);
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut indeg = vec![0usize; n];
    for (i, ps) in preds.iter().enumerate() {
        indeg[i] = ps.len();
        for &p in ps {
            succs[p].push(i);
        }
    }

    // Critical-path height (latency-weighted longest path to a sink).
    let mut height = vec![0u64; n];
    for i in (0..n).rev() {
        let own = params.latency[insts[i].pipe().index()];
        let best = succs[i].iter().map(|&s| height[s]).max().unwrap_or(0);
        height[i] = own + best;
    }

    // Earliest start from scheduled predecessors.
    let mut ready_at = vec![0u64; n];
    let mut scheduled = vec![false; n];
    let mut out = Vec::with_capacity(n);
    let mut ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut vcycle: u64 = 0;

    while out.len() < n {
        // Candidates whose data is ready this virtual cycle.
        let mut slots_left = params.issue_width;
        let mut unit_used = [0usize; PIPE_CLASS_COUNT];
        let mut issued_any = false;
        loop {
            // Highest critical path among ready candidates whose pipe has
            // a free unit this cycle; original order breaks ties for
            // determinism.
            let mut best: Option<(usize, usize)> = None; // (ready_idx, inst_idx)
            for (ri, &i) in ready.iter().enumerate() {
                if scheduled[i] || ready_at[i] > vcycle {
                    continue;
                }
                let p = insts[i].pipe().index();
                if unit_used[p] >= params.units[p] {
                    continue;
                }
                match best {
                    None => best = Some((ri, i)),
                    Some((_, bi)) => {
                        if height[i] > height[bi] || (height[i] == height[bi] && i < bi) {
                            best = Some((ri, i));
                        }
                    }
                }
            }
            let Some((ri, i)) = best else { break };
            ready.swap_remove(ri);
            scheduled[i] = true;
            out.push(insts[i]);
            issued_any = true;
            let p = insts[i].pipe().index();
            unit_used[p] += 1;
            let done = vcycle + params.latency[p];
            for &s in &succs[i] {
                ready_at[s] = ready_at[s].max(done);
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    ready.push(s);
                }
            }
            slots_left -= 1;
            if slots_left == 0 {
                break;
            }
        }
        if !issued_any {
            // Nothing could issue: jump to the next time anything is ready.
            let next = ready
                .iter()
                .filter(|&&i| !scheduled[i])
                .map(|&i| ready_at[i])
                .min()
                .unwrap_or(vcycle + 1);
            vcycle = next.max(vcycle + 1);
        } else {
            vcycle += 1;
        }
    }
    out
}

/// Convenience: schedules a whole [`Program`].
pub fn schedule_program(p: &Program, params: &ScheduleParams) -> Program {
    list_schedule(p.insts(), params).into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipes::PipeClass;
    use crate::regs::{RowMask, VReg, ZaReg};

    fn v(i: usize) -> VReg {
        VReg::new(i)
    }

    #[test]
    fn preserves_simple_raw_chain() {
        let insts = vec![
            Inst::DupImm { vd: v(0), imm: 1.0 },
            Inst::Fadd {
                vd: v(1),
                vn: v(0),
                vm: v(0),
            },
            Inst::Fadd {
                vd: v(2),
                vn: v(1),
                vm: v(1),
            },
        ];
        let out = list_schedule(&insts, &ScheduleParams::default());
        assert_eq!(out, insts, "a pure chain cannot be reordered");
    }

    #[test]
    fn interleaves_independent_streams() {
        // [all matrix][all vector] should come out interleaved.
        let mut insts = Vec::new();
        for k in 0..8usize {
            insts.push(Inst::Fmopa {
                za: ZaReg::new(k % 4),
                vn: v(0),
                vm: v(1),
                mask: RowMask::ALL,
            });
        }
        for k in 0..8usize {
            insts.push(Inst::Fmla {
                vd: v(8 + k),
                vn: v(2),
                vm: v(3),
            });
        }
        let out = list_schedule(&insts, &ScheduleParams::default());
        // Within the first half of the schedule both pipes must appear.
        let first_half = &out[..8];
        let matrix = first_half
            .iter()
            .filter(|i| i.pipe() == PipeClass::Matrix)
            .count();
        let vector = first_half
            .iter()
            .filter(|i| i.pipe() == PipeClass::VectorFp)
            .count();
        assert!(
            matrix >= 2 && vector >= 2,
            "not interleaved: {matrix} matrix / {vector} vector"
        );
    }

    #[test]
    fn store_load_order_on_same_address_is_kept() {
        let insts = vec![
            Inst::DupImm { vd: v(0), imm: 5.0 },
            Inst::St1d { vs: v(0), addr: 64 },
            Inst::Ld1d { vd: v(1), addr: 64 },
            Inst::St1d {
                vs: v(1),
                addr: 128,
            },
        ];
        let out = list_schedule(&insts, &ScheduleParams::default());
        let pos = |needle: &Inst| out.iter().position(|i| i == needle).unwrap();
        assert!(
            pos(&insts[1]) < pos(&insts[2]),
            "store before dependent load"
        );
        assert!(
            pos(&insts[2]) < pos(&insts[3]),
            "load before dependent store"
        );
    }

    #[test]
    fn disjoint_memory_can_reorder() {
        let insts = vec![
            Inst::St1d { vs: v(0), addr: 0 },
            Inst::St1d {
                vs: v(1),
                addr: 1024,
            },
        ];
        let g = dependence_graph(&insts);
        assert!(g[1].is_empty(), "disjoint stores must not be ordered");
    }

    #[test]
    fn war_dependences_hold() {
        // read v0 then overwrite v0: the overwrite must stay after.
        let insts = vec![
            Inst::Fadd {
                vd: v(1),
                vn: v(0),
                vm: v(0),
            },
            Inst::DupImm { vd: v(0), imm: 2.0 },
        ];
        let out = list_schedule(&insts, &ScheduleParams::default());
        assert_eq!(out, insts);
    }

    #[test]
    fn strided_ranges_alias_conservatively() {
        let insts = vec![
            Inst::StCol {
                vs: v(0),
                addr: 0,
                stride: 100,
            },
            Inst::Ld1d {
                vd: v(1),
                addr: 300,
            }, // inside the strided span
        ];
        let g = dependence_graph(&insts);
        assert_eq!(g[1], vec![0]);
    }

    #[test]
    fn output_is_a_permutation() {
        let insts: Vec<Inst> = (0..32)
            .map(|k| Inst::FmlaIdx {
                vd: v(k % 8),
                vn: v(8 + k % 8),
                vm: v(31),
                idx: (k % 8) as u8,
            })
            .collect();
        let out = list_schedule(&insts, &ScheduleParams::default());
        assert_eq!(out.len(), insts.len());
        for i in &insts {
            assert!(out.contains(i));
        }
    }
}
