//! The instruction set.
//!
//! A deliberately small, stencil-oriented subset of an SME-class ISA. Each
//! variant documents its functional semantics; `lx2-sim` implements them.

use crate::pipes::PipeClass;
use crate::regs::{Reg, RowMask, VReg, ZaReg, VLEN};

/// Whether a memory access is a read or a write (used by prefetch hints and
/// traffic accounting).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MemKind {
    /// Read access / read hint.
    Read,
    /// Write access / write hint.
    Write,
}

/// One machine instruction.
///
/// Memory operands are absolute f64-element addresses into the simulated
/// flat memory; see the crate-level documentation for why address
/// generation is abstracted away.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Inst {
    /// Contiguous vector load: `vd[l] = mem[addr + l]` for `l in 0..VLEN`.
    Ld1d { vd: VReg, addr: u64 },
    /// Strided (column) gather load: `vd[l] = mem[addr + l*stride]`.
    ///
    /// Models the non-contiguous access required by inner-axis outer
    /// products; substantially more expensive than [`Inst::Ld1d`].
    LdCol { vd: VReg, addr: u64, stride: u64 },
    /// Contiguous vector store: `mem[addr + l] = vs[l]`.
    St1d { vs: VReg, addr: u64 },
    /// Store one tile row slice: `mem[addr + l] = za[row][l]`.
    StZaRow { za: ZaReg, row: u8, addr: u64 },
    /// Strided (column) scatter store: `mem[addr + l*stride] = vs[l]`.
    StCol { vs: VReg, addr: u64, stride: u64 },
    /// Vector multiply-accumulate: `vd[l] += vn[l] * vm[l]`.
    Fmla { vd: VReg, vn: VReg, vm: VReg },
    /// Vector MLA with broadcast lane: `vd[l] += vn[l] * vm[idx]`.
    FmlaIdx {
        vd: VReg,
        vn: VReg,
        vm: VReg,
        idx: u8,
    },
    /// Vector add: `vd[l] = vn[l] + vm[l]`.
    Fadd { vd: VReg, vn: VReg, vm: VReg },
    /// Vector multiply: `vd[l] = vn[l] * vm[l]`.
    Fmul { vd: VReg, vn: VReg, vm: VReg },
    /// Concatenate-and-extract (SVE `EXT`): `vd = (vn ++ vm)[shift .. shift+VLEN]`.
    ///
    /// `shift` is an element count in `0..=VLEN`.
    Ext {
        vd: VReg,
        vn: VReg,
        vm: VReg,
        shift: u8,
    },
    /// Broadcast an immediate into every lane: `vd[l] = imm`.
    DupImm { vd: VReg, imm: f64 },
    /// Outer product accumulate (SME `FMOPA`):
    /// `za[i][j] += vn[i] * vm[j]` for every enabled row `i` and all `j`.
    Fmopa {
        za: ZaReg,
        vn: VReg,
        vm: VReg,
        mask: RowMask,
    },
    /// Multi-vector matrix MLA (SME2-style "M-MLA", Apple M4 path):
    /// for `k in 0..VLEN/2`, `za[2k + half][l] += v[vn0+k][l] * vm[idx]`.
    ///
    /// Updates the even (`half == 0`) or odd (`half == 1`) row group of the
    /// tile from a group of four consecutive vector registers, mirroring
    /// the fragmented-row update the paper describes for Apple M4.
    Fmlag {
        za: ZaReg,
        half: u8,
        vn0: VReg,
        vm: VReg,
        idx: u8,
    },
    /// Move a tile row slice into a vector register: `vd = za[row]`.
    MovaToVec { vd: VReg, za: ZaReg, row: u8 },
    /// Move a vector register into a tile row slice: `za[row] = vs`.
    MovaFromVec { za: ZaReg, row: u8, vs: VReg },
    /// Zero the enabled rows of a tile.
    ZeroZa { za: ZaReg, mask: RowMask },
    /// Software prefetch hint for the cache line containing `addr`.
    Prfm { addr: u64, kind: MemKind },
}

/// Up to three register reads per instruction.
pub type ReadSet = [Option<Reg>; 3];
/// At most one register write per instruction.
pub type WriteSet = Option<Reg>;

impl Inst {
    /// The pipeline class this instruction issues to.
    #[inline]
    pub fn pipe(&self) -> PipeClass {
        match self {
            Inst::Ld1d { .. } | Inst::LdCol { .. } | Inst::Prfm { .. } => PipeClass::Load,
            Inst::St1d { .. } | Inst::StZaRow { .. } | Inst::StCol { .. } => PipeClass::Store,
            Inst::Fmla { .. }
            | Inst::FmlaIdx { .. }
            | Inst::Fadd { .. }
            | Inst::Fmul { .. }
            | Inst::Ext { .. }
            | Inst::DupImm { .. } => PipeClass::VectorFp,
            Inst::Fmopa { .. }
            | Inst::Fmlag { .. }
            | Inst::MovaToVec { .. }
            | Inst::MovaFromVec { .. }
            | Inst::ZeroZa { .. } => PipeClass::Matrix,
        }
    }

    /// Registers read by this instruction (including read-modify-write
    /// accumulators).
    pub fn reads(&self) -> ReadSet {
        match *self {
            Inst::Ld1d { .. } | Inst::LdCol { .. } | Inst::Prfm { .. } | Inst::DupImm { .. } => {
                [None, None, None]
            }
            Inst::St1d { vs, .. } | Inst::StCol { vs, .. } => [Some(vs.into()), None, None],
            Inst::StZaRow { za, .. } => [Some(za.into()), None, None],
            Inst::Fmla { vd, vn, vm } | Inst::FmlaIdx { vd, vn, vm, .. } => {
                [Some(vd.into()), Some(vn.into()), Some(vm.into())]
            }
            Inst::Fadd { vn, vm, .. } | Inst::Fmul { vn, vm, .. } => {
                [Some(vn.into()), Some(vm.into()), None]
            }
            Inst::Ext { vn, vm, .. } => [Some(vn.into()), Some(vm.into()), None],
            Inst::Fmopa { za, vn, vm, .. } => [Some(za.into()), Some(vn.into()), Some(vm.into())],
            // The vector group vn0..vn0+3 is modelled as a read of the base
            // register plus the tile accumulator; the simulator checks the
            // full group when tracking readiness.
            Inst::Fmlag { za, vn0, vm, .. } => [Some(za.into()), Some(vn0.into()), Some(vm.into())],
            Inst::MovaToVec { za, .. } => [Some(za.into()), None, None],
            Inst::MovaFromVec { vs, za, .. } => [Some(vs.into()), Some(za.into()), None],
            Inst::ZeroZa { .. } => [None, None, None],
        }
    }

    /// The register written by this instruction, if any.
    pub fn write(&self) -> WriteSet {
        match *self {
            Inst::Ld1d { vd, .. } | Inst::LdCol { vd, .. } => Some(vd.into()),
            Inst::St1d { .. } | Inst::StZaRow { .. } | Inst::StCol { .. } | Inst::Prfm { .. } => {
                None
            }
            Inst::Fmla { vd, .. }
            | Inst::FmlaIdx { vd, .. }
            | Inst::Fadd { vd, .. }
            | Inst::Fmul { vd, .. }
            | Inst::Ext { vd, .. }
            | Inst::DupImm { vd, .. } => Some(vd.into()),
            Inst::Fmopa { za, .. } | Inst::Fmlag { za, .. } | Inst::ZeroZa { za, .. } => {
                Some(za.into())
            }
            Inst::MovaToVec { vd, .. } => Some(vd.into()),
            Inst::MovaFromVec { za, .. } => Some(za.into()),
        }
    }

    /// Number of extra consecutive vector registers read beyond the listed
    /// base (only nonzero for multi-vector groups).
    #[inline]
    pub fn group_extra_reads(&self) -> usize {
        match self {
            Inst::Fmlag { .. } => VLEN / 2 - 1,
            _ => 0,
        }
    }

    /// Floating-point operations performed (counting one FMA as two flops).
    pub fn flops(&self) -> u64 {
        match self {
            Inst::Fmla { .. } | Inst::FmlaIdx { .. } => 2 * VLEN as u64,
            Inst::Fadd { .. } | Inst::Fmul { .. } => VLEN as u64,
            Inst::Fmopa { mask, .. } => 2 * (mask.count() * VLEN) as u64,
            Inst::Fmlag { .. } => 2 * (VLEN / 2 * VLEN) as u64,
            _ => 0,
        }
    }

    /// Whether this is a demand memory access (load or store, not a hint).
    #[inline]
    pub fn is_demand_memory(&self) -> bool {
        matches!(
            self,
            Inst::Ld1d { .. }
                | Inst::LdCol { .. }
                | Inst::St1d { .. }
                | Inst::StZaRow { .. }
                | Inst::StCol { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> VReg {
        VReg::new(i)
    }
    fn za(i: usize) -> ZaReg {
        ZaReg::new(i)
    }

    #[test]
    fn pipe_classification() {
        assert_eq!(Inst::Ld1d { vd: v(0), addr: 0 }.pipe(), PipeClass::Load);
        assert_eq!(Inst::St1d { vs: v(0), addr: 0 }.pipe(), PipeClass::Store);
        assert_eq!(
            Inst::Fmla {
                vd: v(0),
                vn: v(1),
                vm: v(2)
            }
            .pipe(),
            PipeClass::VectorFp
        );
        assert_eq!(
            Inst::Fmopa {
                za: za(0),
                vn: v(0),
                vm: v(1),
                mask: RowMask::ALL
            }
            .pipe(),
            PipeClass::Matrix
        );
        assert_eq!(
            Inst::Prfm {
                addr: 0,
                kind: MemKind::Read
            }
            .pipe(),
            PipeClass::Load
        );
    }

    #[test]
    fn fmla_is_rmw() {
        let i = Inst::Fmla {
            vd: v(3),
            vn: v(4),
            vm: v(5),
        };
        let reads = i.reads();
        assert!(reads.contains(&Some(Reg::V(v(3)))));
        assert_eq!(i.write(), Some(Reg::V(v(3))));
    }

    #[test]
    fn fmopa_reads_accumulator() {
        let i = Inst::Fmopa {
            za: za(2),
            vn: v(0),
            vm: v(1),
            mask: RowMask::ALL,
        };
        assert!(i.reads().contains(&Some(Reg::Za(za(2)))));
        assert_eq!(i.write(), Some(Reg::Za(za(2))));
    }

    #[test]
    fn load_writes_dest_only() {
        let i = Inst::Ld1d {
            vd: v(7),
            addr: 100,
        };
        assert_eq!(i.reads(), [None, None, None]);
        assert_eq!(i.write(), Some(Reg::V(v(7))));
    }

    #[test]
    fn store_reads_source_only() {
        let i = Inst::St1d {
            vs: v(7),
            addr: 100,
        };
        assert_eq!(i.reads()[0], Some(Reg::V(v(7))));
        assert_eq!(i.write(), None);
    }

    #[test]
    fn flop_counts() {
        assert_eq!(
            Inst::Fmla {
                vd: v(0),
                vn: v(1),
                vm: v(2)
            }
            .flops(),
            16
        );
        assert_eq!(
            Inst::Fmopa {
                za: za(0),
                vn: v(0),
                vm: v(1),
                mask: RowMask::ALL
            }
            .flops(),
            128
        );
        assert_eq!(
            Inst::Fmopa {
                za: za(0),
                vn: v(0),
                vm: v(1),
                mask: RowMask::single(0)
            }
            .flops(),
            16
        );
        assert_eq!(
            Inst::Fmlag {
                za: za(0),
                half: 0,
                vn0: v(0),
                vm: v(4),
                idx: 0
            }
            .flops(),
            64
        );
        assert_eq!(Inst::Ld1d { vd: v(0), addr: 0 }.flops(), 0);
    }

    #[test]
    fn fmlag_group_reads() {
        let i = Inst::Fmlag {
            za: za(0),
            half: 0,
            vn0: v(8),
            vm: v(0),
            idx: 0,
        };
        assert_eq!(i.group_extra_reads(), 3);
    }

    #[test]
    fn prefetch_is_not_demand_memory() {
        assert!(!Inst::Prfm {
            addr: 0,
            kind: MemKind::Read
        }
        .is_demand_memory());
        assert!(Inst::Ld1d { vd: v(0), addr: 0 }.is_demand_memory());
    }
}
