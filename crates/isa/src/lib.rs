//! # lx2-isa
//!
//! Instruction-set model for an SME-class CPU with scalable *vector* units
//! (512-bit, 8 × f64 lanes) and scalable *matrix* compute units
//! (8 × 8 f64 tile registers driven by rank-1 outer-product instructions).
//!
//! This crate defines the architectural state ([`regs`]), the instruction
//! set ([`inst`]), per-instruction pipeline metadata ([`pipes`]) and a
//! program container with static instruction-mix statistics ([`program`]).
//! The companion crate `lx2-sim` gives these instructions functional
//! semantics and a cycle-approximate timing model.
//!
//! ## Conventions
//!
//! * Memory operands are **absolute f64-element addresses** (`u64` indices
//!   into a flat f64 memory). Kernel builders resolve base + offset at
//!   emission time; scalar address-generation micro-ops are abstracted away
//!   (they issue on dedicated scalar ports on the modelled cores and never
//!   gate the vector/matrix/load/store pipes this model reasons about).
//! * `VLEN` is the number of f64 lanes in a vector register (8 for a
//!   512-bit SVL), and tiles are `VLEN × VLEN`.

pub mod asm;
pub mod disasm;
pub mod inst;
pub mod pipes;
pub mod program;
pub mod regs;
pub mod sched;

pub use asm::{assemble, AsmError};
pub use inst::{Inst, MemKind};
pub use pipes::{PipeClass, PIPE_CLASS_COUNT};
pub use program::{InstMix, Program};
pub use regs::{Reg, RowMask, VReg, ZaReg, NUM_VREGS, NUM_ZA_TILES, TILE_ELEMS, VLEN};
pub use sched::{list_schedule, schedule_program, ScheduleParams};
