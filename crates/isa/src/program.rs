//! Program container and static instruction-mix statistics.

use crate::inst::Inst;
use crate::pipes::{PipeClass, PIPE_CLASS_COUNT};

/// Static instruction-mix statistics for a program, used by the analysis
/// layer (paper Tables 1 and 5) without running the timing model.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct InstMix {
    /// Instructions per pipe class, indexed by [`PipeClass::index`].
    pub per_pipe: [u64; PIPE_CLASS_COUNT],
    /// Outer-product instructions (FMOPA).
    pub fmopa: u64,
    /// Vector MLA instructions (FMLA / FMLA-indexed).
    pub fmla: u64,
    /// Multi-vector matrix MLA instructions (M-MLA).
    pub fmlag: u64,
    /// EXT concatenation instructions.
    pub ext: u64,
    /// Software prefetch hints.
    pub prefetch: u64,
    /// Total instructions.
    pub total: u64,
}

impl InstMix {
    /// Record one instruction.
    pub fn record(&mut self, inst: &Inst) {
        self.per_pipe[inst.pipe().index()] += 1;
        self.total += 1;
        match inst {
            Inst::Fmopa { .. } => self.fmopa += 1,
            Inst::Fmla { .. } | Inst::FmlaIdx { .. } => self.fmla += 1,
            Inst::Fmlag { .. } => self.fmlag += 1,
            Inst::Ext { .. } => self.ext += 1,
            Inst::Prfm { .. } => self.prefetch += 1,
            _ => {}
        }
    }

    /// Instructions issued to one pipe class.
    #[inline]
    pub fn pipe_count(&self, class: PipeClass) -> u64 {
        self.per_pipe[class.index()]
    }

    /// Merge another mix into this one.
    pub fn merge(&mut self, other: &InstMix) {
        for (a, b) in self.per_pipe.iter_mut().zip(other.per_pipe.iter()) {
            *a += b;
        }
        self.fmopa += other.fmopa;
        self.fmla += other.fmla;
        self.fmlag += other.fmlag;
        self.ext += other.ext;
        self.prefetch += other.prefetch;
        self.total += other.total;
    }
}

/// A sequence of instructions plus its running instruction mix.
///
/// Kernel builders append per-tile instruction blocks into a reusable
/// `Program`; the simulator executes the slice and the caller clears it for
/// the next tile, so no per-tile allocation occurs in steady state.
#[derive(Clone, Default, Debug)]
pub struct Program {
    insts: Vec<Inst>,
    mix: InstMix,
}

impl Program {
    /// New empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// New empty program with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Program {
            insts: Vec::with_capacity(cap),
            mix: InstMix::default(),
        }
    }

    /// Append one instruction.
    #[inline]
    pub fn push(&mut self, inst: Inst) {
        self.mix.record(&inst);
        self.insts.push(inst);
    }

    /// Append many instructions.
    pub fn extend(&mut self, insts: impl IntoIterator<Item = Inst>) {
        for i in insts {
            self.push(i);
        }
    }

    /// The instructions in program order.
    #[inline]
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// Number of instructions.
    #[inline]
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The accumulated instruction mix.
    #[inline]
    pub fn mix(&self) -> &InstMix {
        &self.mix
    }

    /// Remove all instructions, keeping capacity. Resets the mix.
    pub fn clear(&mut self) {
        self.insts.clear();
        self.mix = InstMix::default();
    }
}

impl FromIterator<Inst> for Program {
    fn from_iter<T: IntoIterator<Item = Inst>>(iter: T) -> Self {
        let mut p = Program::new();
        p.extend(iter);
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regs::{RowMask, VReg, ZaReg};

    #[test]
    fn mix_counts_classes() {
        let mut p = Program::new();
        p.push(Inst::Ld1d {
            vd: VReg::new(0),
            addr: 0,
        });
        p.push(Inst::Fmla {
            vd: VReg::new(1),
            vn: VReg::new(2),
            vm: VReg::new(3),
        });
        p.push(Inst::Fmopa {
            za: ZaReg::new(0),
            vn: VReg::new(0),
            vm: VReg::new(1),
            mask: RowMask::ALL,
        });
        p.push(Inst::St1d {
            vs: VReg::new(1),
            addr: 8,
        });
        let m = p.mix();
        assert_eq!(m.total, 4);
        assert_eq!(m.pipe_count(PipeClass::Load), 1);
        assert_eq!(m.pipe_count(PipeClass::VectorFp), 1);
        assert_eq!(m.pipe_count(PipeClass::Matrix), 1);
        assert_eq!(m.pipe_count(PipeClass::Store), 1);
        assert_eq!(m.fmopa, 1);
        assert_eq!(m.fmla, 1);
    }

    #[test]
    fn clear_resets_mix_keeps_capacity() {
        let mut p = Program::with_capacity(16);
        p.push(Inst::DupImm {
            vd: VReg::new(0),
            imm: 1.0,
        });
        let cap = p.insts.capacity();
        p.clear();
        assert!(p.is_empty());
        assert_eq!(p.mix().total, 0);
        assert_eq!(p.insts.capacity(), cap);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = InstMix::default();
        let mut b = InstMix::default();
        a.record(&Inst::Ld1d {
            vd: VReg::new(0),
            addr: 0,
        });
        b.record(&Inst::Ext {
            vd: VReg::new(0),
            vn: VReg::new(1),
            vm: VReg::new(2),
            shift: 1,
        });
        a.merge(&b);
        assert_eq!(a.total, 2);
        assert_eq!(a.ext, 1);
    }

    #[test]
    fn from_iterator() {
        let p: Program = (0..4)
            .map(|i| Inst::DupImm {
                vd: VReg::new(i),
                imm: i as f64,
            })
            .collect();
        assert_eq!(p.len(), 4);
    }
}
