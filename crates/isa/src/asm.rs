//! Textual assembler: parses the disassembly syntax back into
//! instructions, so custom microkernels can be authored (and tests can
//! round-trip programs through text).
//!
//! The accepted grammar is exactly what [`crate::disasm`] prints:
//!
//! ```text
//! ld1d    v0, [128]
//! ldcol   v1, [100], stride 64
//! st1d    v2, [8]
//! st1d    za1h[3], [64]
//! stcol   v2, [8], stride 64
//! fmla    v0, v1, v2          ; element-wise MLA
//! fmla    v0, v1, v2[3]       ; indexed MLA
//! fmla    za1[even], {v8..+3}, v0[2]
//! fadd    v0, v1, v2
//! fmul    v0, v1, v2
//! ext     v0, v1, v2, #3
//! dup     v0, #2.5
//! fmopa   za0<all>, v1, v2
//! fmopa   za0<0,2,7>, v1, v2
//! mova    v0, za1h[3]
//! mova    za1h[3], v0
//! zero    za0<all>
//! prfm    pldl1keep, [640]
//! prfm    pstl1keep, [648]
//! ```
//!
//! Comments start with `;` or `//`; blank lines are ignored.

use crate::inst::{Inst, MemKind};
use crate::program::Program;
use crate::regs::{RowMask, VReg, ZaReg, NUM_VREGS, NUM_ZA_TILES, VLEN};
use std::fmt;

/// A parse failure with its line number (1-based).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

fn err(line: usize, message: impl Into<String>) -> AsmError {
    AsmError {
        line,
        message: message.into(),
    }
}

/// Parses a full listing into a [`Program`].
///
/// ```
/// let p = lx2_isa::assemble("dup v0, #2\nfmopa za0<all>, v0, v0").unwrap();
/// assert_eq!(p.len(), 2);
/// assert_eq!(p.mix().fmopa, 1);
/// ```
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    let mut program = Program::new();
    for (idx, raw) in source.lines().enumerate() {
        let line_no = idx + 1;
        let mut line = raw;
        if let Some(pos) = line.find(';') {
            line = &line[..pos];
        }
        if let Some(pos) = line.find("//") {
            line = &line[..pos];
        }
        // Strip an optional "NNN:" listing prefix.
        let trimmed = line.trim();
        let body = match trimmed.split_once(':') {
            Some((head, rest))
                if head.trim().chars().all(|c| c.is_ascii_digit()) && !head.trim().is_empty() =>
            {
                rest.trim()
            }
            _ => trimmed,
        };
        if body.is_empty() {
            continue;
        }
        program.push(parse_line(body, line_no)?);
    }
    Ok(program)
}

/// Parses one instruction.
pub fn parse_line(body: &str, line: usize) -> Result<Inst, AsmError> {
    let (mnemonic, rest) = body.split_once(char::is_whitespace).unwrap_or((body, ""));
    let ops: Vec<String> = split_operands(rest);
    let op = |i: usize| -> Result<&str, AsmError> {
        ops.get(i)
            .map(|s| s.as_str())
            .ok_or_else(|| err(line, format!("missing operand {i}")))
    };
    match mnemonic {
        "ld1d" => Ok(Inst::Ld1d {
            vd: vreg(op(0)?, line)?,
            addr: addr(op(1)?, line)?,
        }),
        "ldcol" => Ok(Inst::LdCol {
            vd: vreg(op(0)?, line)?,
            addr: addr(op(1)?, line)?,
            stride: stride(op(2)?, line)?,
        }),
        "st1d" => {
            let first = op(0)?;
            if first.starts_with("za") {
                let (za, row) = za_slice(first, line)?;
                Ok(Inst::StZaRow {
                    za,
                    row,
                    addr: addr(op(1)?, line)?,
                })
            } else {
                Ok(Inst::St1d {
                    vs: vreg(first, line)?,
                    addr: addr(op(1)?, line)?,
                })
            }
        }
        "stcol" => Ok(Inst::StCol {
            vs: vreg(op(0)?, line)?,
            addr: addr(op(1)?, line)?,
            stride: stride(op(2)?, line)?,
        }),
        "fmla" => {
            let first = op(0)?;
            if first.starts_with("za") {
                // fmla za1[even], {v8..+3}, v0[2]
                let (za, half) = za_group(first, line)?;
                let vn0 = vgroup(op(1)?, line)?;
                let (vm, idx) = indexed_vreg(op(2)?, line)?
                    .ok_or_else(|| err(line, "M-MLA requires an indexed multiplier"))?;
                Ok(Inst::Fmlag {
                    za,
                    half,
                    vn0,
                    vm,
                    idx,
                })
            } else {
                let vd = vreg(first, line)?;
                let vn = vreg(op(1)?, line)?;
                match indexed_vreg(op(2)?, line)? {
                    Some((vm, idx)) => Ok(Inst::FmlaIdx { vd, vn, vm, idx }),
                    None => Ok(Inst::Fmla {
                        vd,
                        vn,
                        vm: vreg(op(2)?, line)?,
                    }),
                }
            }
        }
        "fadd" => Ok(Inst::Fadd {
            vd: vreg(op(0)?, line)?,
            vn: vreg(op(1)?, line)?,
            vm: vreg(op(2)?, line)?,
        }),
        "fmul" => Ok(Inst::Fmul {
            vd: vreg(op(0)?, line)?,
            vn: vreg(op(1)?, line)?,
            vm: vreg(op(2)?, line)?,
        }),
        "ext" => {
            let shift_txt = op(3)?;
            let shift = shift_txt
                .strip_prefix('#')
                .ok_or_else(|| err(line, "EXT shift must be '#<n>'"))?
                .parse::<u8>()
                .map_err(|_| err(line, "bad EXT shift"))?;
            if shift as usize > VLEN {
                return Err(err(line, format!("EXT shift {shift} exceeds VLEN")));
            }
            Ok(Inst::Ext {
                vd: vreg(op(0)?, line)?,
                vn: vreg(op(1)?, line)?,
                vm: vreg(op(2)?, line)?,
                shift,
            })
        }
        "dup" => {
            let imm_txt = op(1)?
                .strip_prefix('#')
                .ok_or_else(|| err(line, "DUP immediate must be '#<float>'"))?;
            let imm = imm_txt
                .parse::<f64>()
                .map_err(|_| err(line, "bad DUP immediate"))?;
            Ok(Inst::DupImm {
                vd: vreg(op(0)?, line)?,
                imm,
            })
        }
        "fmopa" => {
            let (za, mask) = za_masked(op(0)?, line)?;
            Ok(Inst::Fmopa {
                za,
                vn: vreg(op(1)?, line)?,
                vm: vreg(op(2)?, line)?,
                mask,
            })
        }
        "mova" => {
            let first = op(0)?;
            if first.starts_with("za") {
                let (za, row) = za_slice(first, line)?;
                Ok(Inst::MovaFromVec {
                    za,
                    row,
                    vs: vreg(op(1)?, line)?,
                })
            } else {
                let (za, row) = za_slice(op(1)?, line)?;
                Ok(Inst::MovaToVec {
                    vd: vreg(first, line)?,
                    za,
                    row,
                })
            }
        }
        "zero" => {
            let (za, mask) = za_masked(op(0)?, line)?;
            Ok(Inst::ZeroZa { za, mask })
        }
        "prfm" => {
            let kind = match op(0)? {
                "pldl1keep" => MemKind::Read,
                "pstl1keep" => MemKind::Write,
                other => return Err(err(line, format!("unknown prefetch hint {other}"))),
            };
            Ok(Inst::Prfm {
                addr: addr(op(1)?, line)?,
                kind,
            })
        }
        other => Err(err(line, format!("unknown mnemonic '{other}'"))),
    }
}

/// Splits an operand list on top-level commas (commas inside `<...>`,
/// `[...]`, `{...}` don't split).
fn split_operands(rest: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut cur = String::new();
    for c in rest.chars() {
        match c {
            '<' | '[' | '{' | '(' => {
                depth += 1;
                cur.push(c);
            }
            '>' | ']' | '}' | ')' => {
                depth -= 1;
                cur.push(c);
            }
            ',' if depth == 0 => {
                if !cur.trim().is_empty() {
                    out.push(cur.trim().to_string());
                }
                cur.clear();
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur.trim().to_string());
    }
    out
}

fn vreg(s: &str, line: usize) -> Result<VReg, AsmError> {
    let n = s
        .strip_prefix('v')
        .and_then(|t| t.parse::<usize>().ok())
        .ok_or_else(|| err(line, format!("expected vector register, got '{s}'")))?;
    if n >= NUM_VREGS {
        return Err(err(line, format!("v{n} out of range")));
    }
    Ok(VReg::new(n))
}

fn zareg(s: &str, line: usize) -> Result<ZaReg, AsmError> {
    let n = s
        .strip_prefix("za")
        .and_then(|t| t.parse::<usize>().ok())
        .ok_or_else(|| err(line, format!("expected tile register, got '{s}'")))?;
    if n >= NUM_ZA_TILES {
        return Err(err(line, format!("za{n} out of range")));
    }
    Ok(ZaReg::new(n))
}

/// `[123]` → 123.
fn addr(s: &str, line: usize) -> Result<u64, AsmError> {
    s.strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .and_then(|t| t.trim().parse::<u64>().ok())
        .ok_or_else(|| err(line, format!("expected '[addr]', got '{s}'")))
}

/// `stride 64` → 64.
fn stride(s: &str, line: usize) -> Result<u64, AsmError> {
    s.strip_prefix("stride")
        .map(str::trim)
        .and_then(|t| t.parse::<u64>().ok())
        .ok_or_else(|| err(line, format!("expected 'stride <n>', got '{s}'")))
}

/// `za1h[3]` → (za1, 3).
fn za_slice(s: &str, line: usize) -> Result<(ZaReg, u8), AsmError> {
    let (base, rest) = s
        .split_once("h[")
        .ok_or_else(|| err(line, format!("expected 'zaNh[row]', got '{s}'")))?;
    let row = rest
        .strip_suffix(']')
        .and_then(|t| t.parse::<u8>().ok())
        .ok_or_else(|| err(line, "bad tile row"))?;
    if row as usize >= VLEN {
        return Err(err(line, format!("tile row {row} out of range")));
    }
    Ok((zareg(base, line)?, row))
}

/// `za0<all>` / `za0<0,2,7>` → (za0, mask).
fn za_masked(s: &str, line: usize) -> Result<(ZaReg, RowMask), AsmError> {
    let (base, rest) = s
        .split_once('<')
        .ok_or_else(|| err(line, format!("expected 'zaN<mask>', got '{s}'")))?;
    let mask_txt = rest
        .strip_suffix('>')
        .ok_or_else(|| err(line, "unterminated row mask"))?;
    let mask = if mask_txt == "all" {
        RowMask::ALL
    } else if mask_txt == "none" {
        RowMask::NONE
    } else {
        let mut bits = 0u8;
        for part in mask_txt.split(',') {
            let row = part
                .trim()
                .parse::<usize>()
                .map_err(|_| err(line, format!("bad mask row '{part}'")))?;
            if row >= VLEN {
                return Err(err(line, format!("mask row {row} out of range")));
            }
            bits |= 1 << row;
        }
        RowMask::from_bits(bits)
    };
    Ok((zareg(base, line)?, mask))
}

/// `za1[even]` / `za1[odd]` → (za1, half).
fn za_group(s: &str, line: usize) -> Result<(ZaReg, u8), AsmError> {
    let (base, rest) = s
        .split_once('[')
        .ok_or_else(|| err(line, format!("expected 'zaN[even|odd]', got '{s}'")))?;
    let half = match rest.strip_suffix(']') {
        Some("even") => 0,
        Some("odd") => 1,
        _ => return Err(err(line, "group must be [even] or [odd]")),
    };
    Ok((zareg(base, line)?, half))
}

/// `{v8..+3}` → v8.
fn vgroup(s: &str, line: usize) -> Result<VReg, AsmError> {
    let inner = s
        .strip_prefix('{')
        .and_then(|t| t.strip_suffix('}'))
        .ok_or_else(|| err(line, format!("expected '{{vN..+3}}', got '{s}'")))?;
    let base = inner
        .split_once("..")
        .map(|(b, _)| b)
        .ok_or_else(|| err(line, "vector group needs '..+3'"))?;
    let v = vreg(base.trim(), line)?;
    if v.index() + VLEN / 2 > NUM_VREGS {
        return Err(err(line, "vector group runs past v31"));
    }
    Ok(v)
}

/// `v2[3]` → Some((v2, 3)); plain `v2` → None.
fn indexed_vreg(s: &str, line: usize) -> Result<Option<(VReg, u8)>, AsmError> {
    match s.split_once('[') {
        None => Ok(None),
        Some((base, rest)) => {
            let idx = rest
                .strip_suffix(']')
                .and_then(|t| t.parse::<u8>().ok())
                .ok_or_else(|| err(line, "bad lane index"))?;
            if idx as usize >= VLEN {
                return Err(err(line, format!("lane {idx} out of range")));
            }
            Ok(Some((vreg(base, line)?, idx)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_mnemonic() {
        let src = r#"
            ; a comment-only line
            ld1d    v0, [128]
            ldcol   v1, [100], stride 64
            st1d    v2, [8]
            st1d    za1h[3], [64]
            stcol   v2, [8], stride 64
            fmla    v0, v1, v2
            fmla    v0, v1, v2[3]
            fmla    za1[even], {v8..+3}, v0[2]
            fadd    v0, v1, v2
            fmul    v0, v1, v2
            ext     v0, v1, v2, #3
            dup     v0, #2.5
            fmopa   za0<all>, v1, v2
            fmopa   za0<0,2,7>, v1, v2
            mova    v0, za1h[3]
            mova    za1h[3], v0
            zero    za0<all>
            prfm    pldl1keep, [640]
            prfm    pstl1keep, [648]  // trailing comment
        "#;
        let p = assemble(src).expect("assembles");
        assert_eq!(p.len(), 19);
    }

    #[test]
    fn listing_prefixes_are_accepted() {
        let src = "     0:  dup     v0, #1\n     1:  st1d    v0, [0]\n";
        let p = assemble(src).unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("dup v0, #1\nbogus v1, v2\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("bogus"));
    }

    #[test]
    fn rejects_out_of_range_registers() {
        assert!(assemble("dup v32, #1").is_err());
        assert!(assemble("fmopa za8<all>, v0, v1").is_err());
        assert!(assemble("ext v0, v1, v2, #9").is_err());
        assert!(assemble("fmla v0, v1, v2[8]").is_err());
    }

    #[test]
    fn roundtrips_through_disassembly() {
        use crate::regs::{RowMask, VReg, ZaReg};
        let insts = vec![
            Inst::Ld1d {
                vd: VReg::new(4),
                addr: 512,
            },
            Inst::LdCol {
                vd: VReg::new(5),
                addr: 64,
                stride: 72,
            },
            Inst::St1d {
                vs: VReg::new(6),
                addr: 8,
            },
            Inst::StZaRow {
                za: ZaReg::new(2),
                row: 5,
                addr: 99,
            },
            Inst::StCol {
                vs: VReg::new(7),
                addr: 3,
                stride: 9,
            },
            Inst::Fmla {
                vd: VReg::new(0),
                vn: VReg::new(1),
                vm: VReg::new(2),
            },
            Inst::FmlaIdx {
                vd: VReg::new(0),
                vn: VReg::new(1),
                vm: VReg::new(2),
                idx: 7,
            },
            Inst::Fmlag {
                za: ZaReg::new(3),
                half: 1,
                vn0: VReg::new(8),
                vm: VReg::new(1),
                idx: 2,
            },
            Inst::Fadd {
                vd: VReg::new(9),
                vn: VReg::new(10),
                vm: VReg::new(11),
            },
            Inst::Fmul {
                vd: VReg::new(9),
                vn: VReg::new(10),
                vm: VReg::new(11),
            },
            Inst::Ext {
                vd: VReg::new(1),
                vn: VReg::new(2),
                vm: VReg::new(3),
                shift: 6,
            },
            Inst::DupImm {
                vd: VReg::new(12),
                imm: -3.25,
            },
            Inst::Fmopa {
                za: ZaReg::new(1),
                vn: VReg::new(2),
                vm: VReg::new(3),
                mask: RowMask::from_bits(0b1010_0101),
            },
            Inst::MovaToVec {
                vd: VReg::new(3),
                za: ZaReg::new(0),
                row: 2,
            },
            Inst::MovaFromVec {
                za: ZaReg::new(0),
                row: 2,
                vs: VReg::new(3),
            },
            Inst::ZeroZa {
                za: ZaReg::new(7),
                mask: RowMask::ALL,
            },
            Inst::Prfm {
                addr: 77,
                kind: MemKind::Read,
            },
            Inst::Prfm {
                addr: 78,
                kind: MemKind::Write,
            },
        ];
        for inst in insts {
            let text = inst.to_string();
            let parsed =
                parse_line(&text, 1).unwrap_or_else(|e| panic!("cannot reparse '{text}': {e}"));
            assert_eq!(parsed, inst, "round trip of '{text}'");
        }
    }
}
