//! Architectural register file description.
//!
//! The modelled core has 32 scalable vector registers (`v0`–`v31`, each
//! [`VLEN`] f64 lanes) and 8 matrix tile registers (`za0`–`za7`, each
//! `VLEN × VLEN` f64, addressable by row *slices*). Tile rows can be
//! predicated with a [`RowMask`].

use std::fmt;

/// Number of f64 lanes in a vector register (512-bit SVL).
pub const VLEN: usize = 8;
/// Number of architectural vector registers.
pub const NUM_VREGS: usize = 32;
/// Number of f64 tile registers available for double-precision compute.
pub const NUM_ZA_TILES: usize = 8;
/// Elements in one tile register.
pub const TILE_ELEMS: usize = VLEN * VLEN;

/// A scalable vector register identifier (`v0`–`v31`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VReg(u8);

impl VReg {
    /// Creates a vector register identifier.
    ///
    /// # Panics
    /// Panics if `idx >= NUM_VREGS`.
    #[inline]
    pub fn new(idx: usize) -> Self {
        assert!(idx < NUM_VREGS, "vector register v{idx} out of range");
        VReg(idx as u8)
    }

    /// The register index in `0..NUM_VREGS`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The `n`-th register after this one (used for multi-vector groups).
    ///
    /// # Panics
    /// Panics if the result is out of range.
    #[inline]
    pub fn offset(self, n: usize) -> Self {
        VReg::new(self.index() + n)
    }
}

impl fmt::Debug for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A matrix tile register identifier (`za0`–`za7`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ZaReg(u8);

impl ZaReg {
    /// Creates a tile register identifier.
    ///
    /// # Panics
    /// Panics if `idx >= NUM_ZA_TILES`.
    #[inline]
    pub fn new(idx: usize) -> Self {
        assert!(idx < NUM_ZA_TILES, "tile register za{idx} out of range");
        ZaReg(idx as u8)
    }

    /// The tile index in `0..NUM_ZA_TILES`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ZaReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "za{}", self.0)
    }
}

impl fmt::Display for ZaReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "za{}", self.0)
    }
}

/// An 8-bit row predicate for tile operations: bit `i` set means tile row
/// `i` participates in the operation.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct RowMask(u8);

impl RowMask {
    /// All rows enabled.
    pub const ALL: RowMask = RowMask(0xFF);
    /// No rows enabled.
    pub const NONE: RowMask = RowMask(0);

    /// Mask from a raw bit pattern.
    #[inline]
    pub const fn from_bits(bits: u8) -> Self {
        RowMask(bits)
    }

    /// Mask with exactly one row enabled.
    ///
    /// # Panics
    /// Panics if `row >= VLEN`.
    #[inline]
    pub fn single(row: usize) -> Self {
        assert!(row < VLEN, "tile row {row} out of range");
        RowMask(1 << row)
    }

    /// Mask enabling a contiguous range of rows, clamped to the tile.
    #[inline]
    pub fn range(start: usize, len: usize) -> Self {
        let mut bits = 0u8;
        for r in start..(start + len).min(VLEN) {
            bits |= 1 << r;
        }
        RowMask(bits)
    }

    /// Raw bit pattern.
    #[inline]
    pub const fn bits(self) -> u8 {
        self.0
    }

    /// Whether row `row` is enabled.
    #[inline]
    pub fn contains(self, row: usize) -> bool {
        row < VLEN && (self.0 >> row) & 1 == 1
    }

    /// Number of enabled rows.
    #[inline]
    pub const fn count(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Iterator over enabled row indices.
    #[inline]
    pub fn iter(self) -> impl Iterator<Item = usize> {
        (0..VLEN).filter(move |&r| (self.0 >> r) & 1 == 1)
    }
}

impl fmt::Debug for RowMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rows[{:08b}]", self.0)
    }
}

impl fmt::Display for RowMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == RowMask::ALL {
            write!(f, "all")
        } else if *self == RowMask::NONE {
            write!(f, "none")
        } else {
            let rows: Vec<String> = self.iter().map(|r| r.to_string()).collect();
            write!(f, "{}", rows.join(","))
        }
    }
}

/// Any architectural register (vector or tile), used in dependence sets.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Reg {
    /// A vector register.
    V(VReg),
    /// A tile register.
    Za(ZaReg),
}

impl From<VReg> for Reg {
    fn from(v: VReg) -> Self {
        Reg::V(v)
    }
}

impl From<ZaReg> for Reg {
    fn from(z: ZaReg) -> Self {
        Reg::Za(z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vreg_roundtrip() {
        for i in 0..NUM_VREGS {
            assert_eq!(VReg::new(i).index(), i);
        }
    }

    #[test]
    #[should_panic]
    fn vreg_out_of_range_panics() {
        let _ = VReg::new(NUM_VREGS);
    }

    #[test]
    fn vreg_offset() {
        assert_eq!(VReg::new(3).offset(4), VReg::new(7));
    }

    #[test]
    fn zareg_roundtrip() {
        for i in 0..NUM_ZA_TILES {
            assert_eq!(ZaReg::new(i).index(), i);
        }
    }

    #[test]
    #[should_panic]
    fn zareg_out_of_range_panics() {
        let _ = ZaReg::new(NUM_ZA_TILES);
    }

    #[test]
    fn rowmask_single() {
        let m = RowMask::single(3);
        assert!(m.contains(3));
        assert!(!m.contains(2));
        assert_eq!(m.count(), 1);
    }

    #[test]
    fn rowmask_range() {
        let m = RowMask::range(2, 3);
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![2, 3, 4]);
        assert_eq!(m.count(), 3);
    }

    #[test]
    fn rowmask_range_clamps() {
        let m = RowMask::range(6, 5);
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![6, 7]);
    }

    #[test]
    fn rowmask_all_none() {
        assert_eq!(RowMask::ALL.count(), VLEN);
        assert_eq!(RowMask::NONE.count(), 0);
    }

    #[test]
    fn rowmask_display() {
        assert_eq!(RowMask::ALL.to_string(), "all");
        assert_eq!(RowMask::range(0, 2).to_string(), "0,1");
    }

    #[test]
    fn reg_from_impls() {
        assert_eq!(Reg::from(VReg::new(1)), Reg::V(VReg::new(1)));
        assert_eq!(Reg::from(ZaReg::new(2)), Reg::Za(ZaReg::new(2)));
    }
}
