//! Human-readable disassembly of instructions and programs.

use crate::inst::{Inst, MemKind};
use crate::program::Program;
use std::fmt;

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::Ld1d { vd, addr } => write!(f, "ld1d    {vd}, [{addr}]"),
            Inst::LdCol { vd, addr, stride } => {
                write!(f, "ldcol   {vd}, [{addr}], stride {stride}")
            }
            Inst::St1d { vs, addr } => write!(f, "st1d    {vs}, [{addr}]"),
            Inst::StZaRow { za, row, addr } => write!(f, "st1d    {za}h[{row}], [{addr}]"),
            Inst::StCol { vs, addr, stride } => {
                write!(f, "stcol   {vs}, [{addr}], stride {stride}")
            }
            Inst::Fmla { vd, vn, vm } => write!(f, "fmla    {vd}, {vn}, {vm}"),
            Inst::FmlaIdx { vd, vn, vm, idx } => write!(f, "fmla    {vd}, {vn}, {vm}[{idx}]"),
            Inst::Fadd { vd, vn, vm } => write!(f, "fadd    {vd}, {vn}, {vm}"),
            Inst::Fmul { vd, vn, vm } => write!(f, "fmul    {vd}, {vn}, {vm}"),
            Inst::Ext { vd, vn, vm, shift } => write!(f, "ext     {vd}, {vn}, {vm}, #{shift}"),
            Inst::DupImm { vd, imm } => write!(f, "dup     {vd}, #{imm}"),
            Inst::Fmopa { za, vn, vm, mask } => {
                write!(f, "fmopa   {za}<{mask}>, {vn}, {vm}")
            }
            Inst::Fmlag {
                za,
                half,
                vn0,
                vm,
                idx,
            } => {
                let rows = if *half == 0 { "even" } else { "odd" };
                write!(f, "fmla    {za}[{rows}], {{{vn0}..+3}}, {vm}[{idx}]")
            }
            Inst::MovaToVec { vd, za, row } => write!(f, "mova    {vd}, {za}h[{row}]"),
            Inst::MovaFromVec { za, row, vs } => write!(f, "mova    {za}h[{row}], {vs}"),
            Inst::ZeroZa { za, mask } => write!(f, "zero    {za}<{mask}>"),
            Inst::Prfm { addr, kind } => {
                let hint = match kind {
                    MemKind::Read => "pldl1keep",
                    MemKind::Write => "pstl1keep",
                };
                write!(f, "prfm    {hint}, [{addr}]")
            }
        }
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (idx, inst) in self.insts().iter().enumerate() {
            writeln!(f, "{idx:6}:  {inst}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regs::{RowMask, VReg, ZaReg};

    #[test]
    fn disasm_formats() {
        let i = Inst::Fmopa {
            za: ZaReg::new(1),
            vn: VReg::new(2),
            vm: VReg::new(3),
            mask: RowMask::ALL,
        };
        assert_eq!(i.to_string(), "fmopa   za1<all>, v2, v3");
        let i = Inst::Ext {
            vd: VReg::new(0),
            vn: VReg::new(1),
            vm: VReg::new(2),
            shift: 7,
        };
        assert_eq!(i.to_string(), "ext     v0, v1, v2, #7");
        let i = Inst::Prfm {
            addr: 640,
            kind: MemKind::Write,
        };
        assert_eq!(i.to_string(), "prfm    pstl1keep, [640]");
    }

    #[test]
    fn program_listing_is_numbered() {
        let mut p = Program::new();
        p.push(Inst::DupImm {
            vd: VReg::new(0),
            imm: 2.5,
        });
        p.push(Inst::St1d {
            vs: VReg::new(0),
            addr: 0,
        });
        let s = p.to_string();
        assert!(s.contains("0:  dup     v0, #2.5"));
        assert!(s.contains("1:  st1d    v0, [0]"));
    }
}
