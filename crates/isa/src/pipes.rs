//! Pipeline classes.
//!
//! The modelled core dispatches instructions to four distinct pipeline
//! classes. Vector and matrix instructions execute on *different* pipelines
//! and can therefore be co-issued — the property HStencil's scheduling
//! exploits (paper §2.1, Figure 3).

/// The pipeline class an instruction issues to.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PipeClass {
    /// Scalable-vector floating-point / permute pipe (FMLA, FADD, EXT, DUP).
    VectorFp,
    /// Scalable-matrix compute pipe (FMOPA, M-MLA, MOVA, tile zeroing).
    Matrix,
    /// Load pipe (vector loads, gathers, software prefetch).
    Load,
    /// Store pipe (vector and tile-slice stores).
    Store,
}

/// Number of pipeline classes.
pub const PIPE_CLASS_COUNT: usize = 4;

impl PipeClass {
    /// Dense index for table lookups.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            PipeClass::VectorFp => 0,
            PipeClass::Matrix => 1,
            PipeClass::Load => 2,
            PipeClass::Store => 3,
        }
    }

    /// All classes, in index order.
    pub const ALL: [PipeClass; PIPE_CLASS_COUNT] = [
        PipeClass::VectorFp,
        PipeClass::Matrix,
        PipeClass::Load,
        PipeClass::Store,
    ];

    /// Short lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            PipeClass::VectorFp => "vector",
            PipeClass::Matrix => "matrix",
            PipeClass::Load => "load",
            PipeClass::Store => "store",
        }
    }
}

impl std::fmt::Display for PipeClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_unique() {
        let mut seen = [false; PIPE_CLASS_COUNT];
        for c in PipeClass::ALL {
            assert!(!seen[c.index()]);
            seen[c.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn names() {
        assert_eq!(PipeClass::VectorFp.to_string(), "vector");
        assert_eq!(PipeClass::Matrix.to_string(), "matrix");
    }
}
