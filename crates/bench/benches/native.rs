//! Wall-clock benchmark of the **native executor v2** — the first point
//! on the repo's real-hardware perf trajectory (ISSUE 2). Unlike
//! `benches/kernels.rs`, nothing here is simulated: these are host
//! wall-clock numbers for `hstencil_core::native`.
//!
//! Covers in-cache (256²) and out-of-cache (4096², 192³) grids for
//! star2d5p, box2d9p and heat3d, the persistent-pool parallel path, and
//! three kernel generations side by side:
//!
//! * `seed`   — the frozen seed executor (`native::baseline`),
//! * `scalar` — the v2 `mul_add` chain, forced scalar dispatch,
//! * the detected best dispatch (`avx2+fma` on x86-64).
//!
//! Two element-genericity groups ride along (DESIGN.md §12):
//! `native2d_f32` times the best schedule at f32 vs f64 (the in-cache
//! ratio is gated by `check_bench_json --gate-f32`), and
//! `native2d_avx512` times the AVX-512 trait instances against the
//! AVX2 ones at both element widths — recorded only on hosts with
//! `avx512f`, absent (with a printed notice) elsewhere.
//!
//! Writes `BENCH_native.json` at the repository root via the testkit
//! JSON writer; `--out=PATH` redirects the artifact (note the `=` form —
//! a bare path argument would be taken as the harness bench filter).
//! `scripts/verify.sh` runs this bench in smoke mode (`-- --smoke`, one
//! sample) with `--out=` pointed at a scratch file under `target/`, so
//! smoke numbers never clobber the committed trajectory baseline, and
//! gates on that file parsing with the testkit JSON reader
//! (`check_bench_json`). Later PRs compare their numbers against the
//! repo-root file — regenerate it (full mode, no `--out=`) on the same
//! machine when touching the native executor.

use hstencil_bench::runner::{workload_2d, workload_3d};
use hstencil_core::native::{self, baseline, pool::ThreadPool};
use hstencil_core::{
    presets, Dispatch, Dtype, Grid2d, Grid2dT, Grid3d, NativeElement, StencilSpec,
};
use hstencil_testkit::{Harness, Json, Summary, ToJson};

/// One (stencil, size, sweeps, threads, kernel, dtype) measurement
/// destined for JSON. `sweeps` is 1 for the single-sweep groups and > 1
/// for the multi-sweep (`time_steps`) group; `elems` counts every
/// updated cell across all sweeps so `elems_per_s` stays comparable
/// between the two.
struct Row {
    stencil: String,
    dims: usize,
    size: usize,
    sweeps: usize,
    threads: usize,
    kernel: &'static str,
    dtype: &'static str,
    elems: u64,
    summary: Summary,
}

impl Row {
    fn to_json(&self) -> Json {
        let s = &self.summary;
        Json::object([
            ("stencil", self.stencil.to_json()),
            ("dims", self.dims.to_json()),
            ("size", self.size.to_json()),
            ("sweeps", self.sweeps.to_json()),
            ("threads", self.threads.to_json()),
            ("kernel", self.kernel.to_json()),
            ("dtype", self.dtype.to_json()),
            ("samples", s.samples.to_json()),
            ("median_s", s.median.to_json()),
            ("p10_s", s.p10.to_json()),
            ("p90_s", s.p90.to_json()),
            ("mean_s", s.mean.to_json()),
            ("elems_per_s", (self.elems as f64 / s.median).to_json()),
        ])
    }
}

/// Which kernel generation a 2-D config times.
#[derive(Clone, Copy, PartialEq)]
enum Kernel {
    Seed,
    Forced(Dispatch),
    Best,
}

impl Kernel {
    fn label(self) -> &'static str {
        match self {
            Kernel::Seed => "seed",
            Kernel::Forced(Dispatch::Scalar) => "scalar",
            Kernel::Forced(Dispatch::Avx2Fma) => "avx2+fma",
            Kernel::Forced(Dispatch::Avx512) => "avx512",
            Kernel::Forced(Dispatch::Hybrid) => "hybrid8x8",
            Kernel::Best => Dispatch::detect().label(),
        }
    }
}

/// [`bench_2d`] over an explicit element type. The seed executor is
/// f64-only, so `Kernel::Seed` with `E = f32` is rejected at the call
/// site (no config does this). f64 rows keep the pre-dtype bench id so
/// the recorded trajectory stays diffable; other dtypes insert their
/// label.
#[allow(clippy::too_many_arguments)]
fn bench_2d_e<E: NativeElement>(
    h: &Harness,
    group_name: &str,
    rows: &mut Vec<Row>,
    pool: &ThreadPool,
    spec: &StencilSpec,
    size: usize,
    threads: usize,
    kernel: Kernel,
    warmup: usize,
    samples: usize,
) {
    let grid = Grid2dT::<E>::convert_from(&workload_2d(size, size, spec.radius(), 42));
    let mut out = Grid2dT::<E>::zeros(size, size, spec.radius());
    let elems = (size * size) as u64;
    let group = h
        .group(group_name)
        .warmup(warmup)
        .sample_size(samples)
        .throughput_elems(elems);
    let dtype = E::DTYPE.label();
    let id = if E::DTYPE == Dtype::F64 {
        format!("{}/{}/t{}/{}", spec.name(), size, threads, kernel.label())
    } else {
        format!(
            "{}/{}/t{}/{}/{}",
            spec.name(),
            size,
            threads,
            dtype,
            kernel.label()
        )
    };
    let summary = group.bench(&id, || match kernel {
        Kernel::Seed => unreachable!("seed executor benches go through bench_2d (f64 only)"),
        Kernel::Forced(d) => native::apply_2d_parallel_in(pool, d, spec, &grid, &mut out, threads),
        Kernel::Best => {
            native::apply_2d_parallel_in(pool, Dispatch::detect(), spec, &grid, &mut out, threads)
        }
    });
    if let Some(summary) = summary {
        rows.push(Row {
            stencil: spec.name().to_string(),
            dims: 2,
            size,
            sweeps: 1,
            threads,
            kernel: kernel.label(),
            dtype,
            elems,
            summary,
        });
    }
}

#[allow(clippy::too_many_arguments)]
fn bench_2d(
    h: &Harness,
    group_name: &str,
    rows: &mut Vec<Row>,
    pool: &ThreadPool,
    spec: &StencilSpec,
    size: usize,
    threads: usize,
    kernel: Kernel,
    warmup: usize,
    samples: usize,
) {
    if kernel != Kernel::Seed {
        bench_2d_e::<f64>(
            h, group_name, rows, pool, spec, size, threads, kernel, warmup, samples,
        );
        return;
    }
    let grid = workload_2d(size, size, spec.radius(), 42);
    let mut out = Grid2d::zeros(size, size, spec.radius());
    let elems = (size * size) as u64;
    let group = h
        .group(group_name)
        .warmup(warmup)
        .sample_size(samples)
        .throughput_elems(elems);
    let id = format!("{}/{}/t{}/{}", spec.name(), size, threads, kernel.label());
    let summary = group.bench(&id, || baseline::apply_2d(spec, &grid, &mut out));
    if let Some(summary) = summary {
        rows.push(Row {
            stencil: spec.name().to_string(),
            dims: 2,
            size,
            sweeps: 1,
            threads,
            kernel: kernel.label(),
            dtype: "f64",
            elems,
            summary,
        });
    }
}

/// One multi-sweep (`time_steps`) measurement: the naive full-grid
/// ping-pong vs the temporally-tiled trapezoid pipeline (DESIGN.md §9),
/// both forced through their real code paths so in-cache sizes measure
/// the pipeline too.
#[allow(clippy::too_many_arguments)]
fn bench_multisweep(
    h: &Harness,
    group_name: &str,
    rows: &mut Vec<Row>,
    pool: &ThreadPool,
    spec: &StencilSpec,
    size: usize,
    sweeps: usize,
    threads: usize,
    temporal: bool,
    warmup: usize,
    samples: usize,
) {
    let grid = workload_2d(size, size, spec.radius(), 42);
    let elems = (size * size * sweeps) as u64;
    let group = h
        .group(group_name)
        .warmup(warmup)
        .sample_size(samples)
        .throughput_elems(elems);
    let kernel = if temporal { "temporal" } else { "naive" };
    let id = format!(
        "{}/{}/s{}/t{}/{}",
        spec.name(),
        size,
        sweeps,
        threads,
        kernel
    );
    let summary = group.bench(&id, || {
        let out = if temporal {
            native::time_steps_temporal_in(
                pool,
                Dispatch::detect(),
                spec,
                &grid,
                sweeps,
                threads,
                native::Temporal {
                    t_block: None,
                    force_pipeline: true,
                    tile: None,
                },
            )
        } else {
            native::time_steps_in(pool, Dispatch::detect(), spec, &grid, sweeps, threads)
        };
        std::hint::black_box(&out);
    });
    if let Some(summary) = summary {
        rows.push(Row {
            stencil: spec.name().to_string(),
            dims: 2,
            size,
            sweeps,
            threads,
            kernel,
            dtype: "f64",
            elems,
            summary,
        });
    }
}

#[allow(clippy::too_many_arguments)]
fn bench_3d(
    h: &Harness,
    rows: &mut Vec<Row>,
    pool: &ThreadPool,
    spec: &StencilSpec,
    size: usize,
    threads: usize,
    warmup: usize,
    samples: usize,
) {
    let grid = workload_3d(size, size, size, spec.radius(), 42);
    let mut out = Grid3d::zeros(size, size, size, spec.radius());
    let elems = (size * size * size) as u64;
    let group = h
        .group("native3d")
        .warmup(warmup)
        .sample_size(samples)
        .throughput_elems(elems);
    let label = Dispatch::detect().label();
    let id = format!("{}/{}/t{}/{}", spec.name(), size, threads, label);
    let summary = group.bench(&id, || {
        native::apply_3d_parallel_in(pool, Dispatch::detect(), spec, &grid, &mut out, threads)
    });
    if let Some(summary) = summary {
        rows.push(Row {
            stencil: spec.name().to_string(),
            dims: 3,
            size,
            sweeps: 1,
            threads,
            kernel: label,
            dtype: "f64",
            elems,
            summary,
        });
    }
}

fn median_of(
    rows: &[Row],
    stencil: &str,
    size: usize,
    sweeps: usize,
    threads: usize,
    kernel: &str,
) -> Option<f64> {
    rows.iter()
        .find(|r| {
            r.stencil == stencil
                && r.size == size
                && r.sweeps == sweeps
                && r.threads == threads
                && r.kernel == kernel
                && r.dtype == "f64"
        })
        .map(|r| r.summary.median)
}

/// Best (smallest) median across every row matching the config — the
/// hybrid group and the main group both record the avx2+fma kernel at
/// the acceptance size, and a ratio should compare best against best.
/// Ratios are always within one dtype.
fn min_median_of(
    rows: &[Row],
    stencil: &str,
    size: usize,
    sweeps: usize,
    threads: usize,
    kernel: &str,
    dtype: &str,
) -> Option<f64> {
    rows.iter()
        .filter(|r| {
            r.stencil == stencil
                && r.size == size
                && r.sweeps == sweeps
                && r.threads == threads
                && r.kernel == kernel
                && r.dtype == dtype
        })
        .map(|r| r.summary.median)
        .min_by(f64::total_cmp)
}

/// Best median at a (size, dtype) across every non-seed kernel — the
/// f32-vs-f64 ratio compares the best schedule each element type has.
fn min_median_any_kernel(rows: &[Row], stencil: &str, size: usize, dtype: &str) -> Option<f64> {
    rows.iter()
        .filter(|r| {
            r.stencil == stencil
                && r.size == size
                && r.sweeps == 1
                && r.threads == 1
                && r.kernel != "seed"
                && r.dtype == dtype
        })
        .map(|r| r.summary.median)
        .min_by(f64::total_cmp)
}

/// The saturated-machine tier's lane counts: 1, 2, 4 and every core the
/// host has, deduped and sorted. Counts above `host_threads` are kept —
/// an oversubscribed curve is still a real measurement (flat-to-negative
/// scaling), and the `--gate-threads` gate skips ratios the recording
/// host could not genuinely parallelize.
fn thread_counts() -> Vec<usize> {
    let max = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut v = vec![1, 2, 4, max];
    v.sort_unstable();
    v.dedup();
    v
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let h = Harness::from_args();
    let pool = ThreadPool::new();
    // In-cache configs need a few warmup passes (first-touch faults and
    // frequency ramp dominate a cold ~70 µs run); out-of-cache runs are
    // long enough that one warmup pass suffices.
    let (warm_in, warm_out, n_in, n_out) = if smoke { (0, 0, 1, 1) } else { (3, 1, 9, 7) };
    let mut rows = Vec::new();

    let star = presets::star2d5p();
    let boxs = presets::box2d9p();
    // In-cache 2-D.
    for spec in [&star, &boxs] {
        bench_2d(
            &h,
            "native2d",
            &mut rows,
            &pool,
            spec,
            256,
            1,
            Kernel::Best,
            warm_in,
            n_in,
        );
    }
    bench_2d(
        &h,
        "native2d",
        &mut rows,
        &pool,
        &star,
        256,
        1,
        Kernel::Seed,
        warm_in,
        n_in,
    );
    // Out-of-cache 2-D: the acceptance case (4096² star2d5p) across the
    // three kernel generations plus the pool-parallel path.
    bench_2d(
        &h,
        "native2d",
        &mut rows,
        &pool,
        &star,
        4096,
        1,
        Kernel::Seed,
        warm_out,
        n_out,
    );
    bench_2d(
        &h,
        "native2d",
        &mut rows,
        &pool,
        &star,
        4096,
        1,
        Kernel::Forced(Dispatch::Scalar),
        warm_out,
        n_out,
    );
    bench_2d(
        &h,
        "native2d",
        &mut rows,
        &pool,
        &star,
        4096,
        1,
        Kernel::Best,
        warm_out,
        n_out,
    );
    bench_2d(
        &h,
        "native2d",
        &mut rows,
        &pool,
        &star,
        4096,
        2,
        Kernel::Best,
        warm_out,
        n_out,
    );
    bench_2d(
        &h,
        "native2d",
        &mut rows,
        &pool,
        &boxs,
        4096,
        1,
        Kernel::Best,
        warm_out,
        n_out,
    );
    // Hybrid 8×8 register-tile kernel vs the canonical 2×8 kernel
    // (DESIGN.md §10): in-cache and out-of-cache, star and box, single
    // thread so the ratio isolates the kernel schedule. The canonical
    // side is the detected best bit-exact dispatch (avx2+fma on x86-64,
    // scalar elsewhere — Hybrid always runs, it has a scalar fallback).
    for spec in [&star, &boxs] {
        for size in [256usize, 4096] {
            let (warm, n) = if size <= 256 {
                (warm_in, n_in)
            } else {
                (warm_out, n_out)
            };
            for kernel in [
                Kernel::Forced(Dispatch::detect()),
                Kernel::Forced(Dispatch::Hybrid),
            ] {
                bench_2d(
                    &h,
                    "native2d_hybrid",
                    &mut rows,
                    &pool,
                    spec,
                    size,
                    1,
                    kernel,
                    warm,
                    n,
                );
            }
        }
    }
    // f32 vs f64 (DESIGN.md §12): the same best schedule at half the
    // element width — in-cache the vector kernels retire twice the
    // lanes per FMA, out-of-cache the sweep moves half the bytes. The
    // acceptance gate (`check_bench_json --gate-f32`) pins the in-cache
    // 256² ratio.
    for size in [256usize, 4096] {
        let (warm, n) = if size <= 256 {
            (warm_in, n_in)
        } else {
            (warm_out, n_out)
        };
        bench_2d_e::<f64>(
            &h,
            "native2d_f32",
            &mut rows,
            &pool,
            &star,
            size,
            1,
            Kernel::Best,
            warm,
            n,
        );
        bench_2d_e::<f32>(
            &h,
            "native2d_f32",
            &mut rows,
            &pool,
            &star,
            size,
            1,
            Kernel::Best,
            warm,
            n,
        );
    }
    // AVX-512 vs AVX2 at both element widths. Recorded only where the
    // host has avx512f — the group is absent (with a notice) elsewhere,
    // and gates over it skip rather than fail.
    if Dispatch::avx512_available() {
        for size in [256usize, 4096] {
            let (warm, n) = if size <= 256 {
                (warm_in, n_in)
            } else {
                (warm_out, n_out)
            };
            for kernel in [
                Kernel::Forced(Dispatch::detect()),
                Kernel::Forced(Dispatch::Avx512),
            ] {
                bench_2d_e::<f64>(
                    &h,
                    "native2d_avx512",
                    &mut rows,
                    &pool,
                    &star,
                    size,
                    1,
                    kernel,
                    warm,
                    n,
                );
                bench_2d_e::<f32>(
                    &h,
                    "native2d_avx512",
                    &mut rows,
                    &pool,
                    &star,
                    size,
                    1,
                    kernel,
                    warm,
                    n,
                );
            }
        }
    } else {
        println!("native2d_avx512 group skipped: host lacks avx512f");
    }
    // Multi-sweep (sweeps=8): naive ping-pong vs the temporal trapezoid
    // pipeline, in-cache through out-of-cache (the acceptance case is
    // 4096², where naive is DRAM-bound and fusing 8 steps pays off).
    const SWEEPS: usize = 8;
    for size in [256usize, 2048, 4096] {
        let (warm, n) = if size <= 256 {
            (warm_in, n_in)
        } else {
            (warm_out, n_out)
        };
        for temporal in [false, true] {
            bench_multisweep(
                &h,
                "native2d_sweeps",
                &mut rows,
                &pool,
                &star,
                size,
                SWEEPS,
                1,
                temporal,
                warm,
                n,
            );
        }
    }

    // 3-D (heat3d): in-cache-ish and out-of-cache.
    let heat3 = presets::heat3d();
    bench_3d(&h, &mut rows, &pool, &heat3, 64, 1, warm_in, n_in);
    bench_3d(&h, &mut rows, &pool, &heat3, 192, 1, warm_out, n_out);

    // Saturated-machine tier (ISSUE 6): the out-of-cache acceptance
    // shapes at 1/2/4/all-core lane counts, one scaling curve per
    // executor path — single-sweep best kernel (star + box), the hybrid
    // 8×8 kernel (its staged-NT store policy is lane-aware), the
    // temporal/naive multi-sweep pair, and the 3-D parallel path. The
    // t1 points double as the scaling denominators in `check_bench_json
    // --gate-threads`.
    for &t in &thread_counts() {
        for spec in [&star, &boxs] {
            bench_2d(
                &h,
                "native_scaling",
                &mut rows,
                &pool,
                spec,
                4096,
                t,
                Kernel::Best,
                warm_out,
                n_out,
            );
        }
        bench_2d(
            &h,
            "native_scaling",
            &mut rows,
            &pool,
            &star,
            4096,
            t,
            Kernel::Forced(Dispatch::Hybrid),
            warm_out,
            n_out,
        );
        for temporal in [false, true] {
            bench_multisweep(
                &h,
                "native_scaling_sweeps",
                &mut rows,
                &pool,
                &star,
                4096,
                SWEEPS,
                t,
                temporal,
                warm_out,
                n_out,
            );
        }
        bench_3d(&h, &mut rows, &pool, &heat3, 192, t, warm_out, n_out);
    }

    let best = Dispatch::detect().label();
    let speedup = match (
        median_of(&rows, "star2d5p", 4096, 1, 1, "seed"),
        median_of(&rows, "star2d5p", 4096, 1, 1, best),
    ) {
        (Some(seed), Some(v2)) if v2 > 0.0 => Some(seed / v2),
        _ => None,
    };
    if let Some(s) = speedup {
        println!("speedup star2d5p/4096/t1 {best} vs seed: {s:.2}x");
    }
    let temporal_speedup = |size: usize| match (
        median_of(&rows, "star2d5p", size, SWEEPS, 1, "naive"),
        median_of(&rows, "star2d5p", size, SWEEPS, 1, "temporal"),
    ) {
        (Some(naive), Some(tmp)) if tmp > 0.0 => Some(naive / tmp),
        _ => None,
    };
    let (t2048, t4096) = (temporal_speedup(2048), temporal_speedup(4096));
    for (size, s) in [(2048, t2048), (4096, t4096)] {
        if let Some(s) = s {
            println!("speedup star2d5p/{size}/s{SWEEPS} temporal vs naive: {s:.2}x");
        }
    }
    // The acceptance ratio: hybrid 8×8 vs the best canonical kernel on
    // the out-of-cache single-sweep case (gated in verify.sh).
    let hybrid_speedup = match (
        min_median_of(&rows, "star2d5p", 4096, 1, 1, best, "f64"),
        min_median_of(&rows, "star2d5p", 4096, 1, 1, "hybrid8x8", "f64"),
    ) {
        (Some(canon), Some(hyb)) if hyb > 0.0 => Some(canon / hyb),
        _ => None,
    };
    if let Some(s) = hybrid_speedup {
        println!("speedup star2d5p/4096/t1 hybrid8x8 vs {best}: {s:.2}x");
    }
    // f32-vs-f64 ratio per size (best non-seed kernel each side; the
    // in-cache point is the `--gate-f32` acceptance ratio).
    let f32_speedup = |size: usize| match (
        min_median_any_kernel(&rows, "star2d5p", size, "f64"),
        min_median_any_kernel(&rows, "star2d5p", size, "f32"),
    ) {
        (Some(w), Some(n)) if n > 0.0 => Some(w / n),
        _ => None,
    };
    let (f32_256, f32_4096) = (f32_speedup(256), f32_speedup(4096));
    for (size, s) in [(256, f32_256), (4096, f32_4096)] {
        if let Some(s) = s {
            println!("speedup star2d5p/{size}/t1 f32 vs f64: {s:.2}x");
        }
    }
    // avx512-vs-avx2 ratio per (size, dtype), where recorded.
    let avx512_speedup = |size: usize, dtype: &str| match (
        min_median_of(&rows, "star2d5p", size, 1, 1, best, dtype),
        min_median_of(&rows, "star2d5p", size, 1, 1, "avx512", dtype),
    ) {
        (Some(canon), Some(wide)) if wide > 0.0 => Some(canon / wide),
        _ => None,
    };
    let avx512_256 = avx512_speedup(256, "f64");
    let avx512_4096 = avx512_speedup(4096, "f64");
    for size in [256usize, 4096] {
        for dtype in ["f64", "f32"] {
            if let Some(s) = avx512_speedup(size, dtype) {
                println!("speedup star2d5p/{size}/t1/{dtype} avx512 vs {best}: {s:.2}x");
            }
        }
    }
    // Scaling summary: best-kernel wall-clock ratio t-vs-1 on the
    // out-of-cache acceptance case (the same ratio `check_bench_json
    // --gate-threads` recomputes from the JSON).
    for &t in thread_counts().iter().filter(|&&t| t > 1) {
        let ratio = match (
            min_median_of(&rows, "star2d5p", 4096, 1, 1, best, "f64"),
            min_median_of(&rows, "star2d5p", 4096, 1, t, best, "f64"),
        ) {
            (Some(one), Some(tn)) if tn > 0.0 => Some(one / tn),
            _ => None,
        };
        if let Some(s) = ratio {
            println!("scaling star2d5p/4096 {best} t{t} vs t1: {s:.2}x");
        }
    }

    let doc = Json::object([
        ("bench", "native_executor_v2".to_json()),
        ("smoke", smoke.to_json()),
        ("dispatch", best.to_json()),
        ("avx512_available", Dispatch::avx512_available().to_json()),
        (
            "host_threads",
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .to_json(),
        ),
        ("pool_threads_spawned", pool.spawned_threads().to_json()),
        ("results", Json::array(rows.iter().map(Row::to_json))),
        ("speedup_star2d5p_4096_t1_vs_seed", speedup.to_json()),
        ("speedup_temporal_star2d5p_2048_s8", t2048.to_json()),
        ("speedup_temporal_star2d5p_4096_s8", t4096.to_json()),
        ("speedup_hybrid_star2d5p_4096_t1", hybrid_speedup.to_json()),
        ("speedup_f32_star2d5p_256_t1", f32_256.to_json()),
        ("speedup_f32_star2d5p_4096_t1", f32_4096.to_json()),
        ("speedup_avx512_star2d5p_256_t1", avx512_256.to_json()),
        ("speedup_avx512_star2d5p_4096_t1", avx512_4096.to_json()),
    ]);

    // The trajectory file lives at the repo root, independent of the
    // cwd cargo gives bench binaries; `--out=PATH` redirects it (used by
    // verify.sh smoke runs to keep the recorded baseline untouched).
    let path = std::env::args()
        .find_map(|a| a.strip_prefix("--out=").map(std::path::PathBuf::from))
        .unwrap_or_else(|| {
            std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join("BENCH_native.json")
        });
    match std::fs::write(&path, doc.to_pretty() + "\n") {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("error: failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}
