//! Criterion benches over the paper's in-cache workloads: statistically
//! robust wall-clock timing of the *simulated* kernels (which also times
//! the simulator itself — useful to catch regressions in either layer).
//!
//! One bench group per figure family; `cargo bench -p hstencil-bench`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hstencil_bench::runner::workload_2d;
use hstencil_core::{presets, Method, StencilPlan};
use lx2_sim::MachineConfig;

/// Figure 12's in-cache kernels: one bench per (stencil, method).
fn bench_incache_methods(c: &mut Criterion) {
    let cfg = MachineConfig::lx2();
    let mut group = c.benchmark_group("fig12_incache_128");
    group.sample_size(10);
    for spec in [presets::star2d9p(), presets::box2d25p()] {
        let grid = workload_2d(128, 128, spec.radius(), 42);
        for method in [
            Method::Auto,
            Method::VectorOnly,
            Method::MatrixOnly,
            Method::HStencil,
        ] {
            group.bench_with_input(
                BenchmarkId::new(spec.name(), method.label()),
                &method,
                |b, &m| {
                    b.iter(|| {
                        StencilPlan::new(&spec, m)
                            .warmup(0)
                            .run_2d(&cfg, &grid)
                            .expect("bench run")
                            .report
                            .cycles()
                    })
                },
            );
        }
    }
    group.finish();
}

/// Figure 13's ablation: the HStencil optimization stack on one workload.
fn bench_breakdown(c: &mut Criterion) {
    let cfg = MachineConfig::lx2();
    let spec = presets::star2d9p();
    let grid = workload_2d(128, 128, spec.radius(), 42);
    let mut group = c.benchmark_group("fig13_breakdown_star");
    group.sample_size(10);
    for (label, sched, pf) in [
        ("base", false, false),
        ("sched", true, false),
        ("sched+prefetch", true, true),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                StencilPlan::new(&spec, Method::HStencil)
                    .scheduling(sched)
                    .replacement(sched)
                    .prefetch(pf)
                    .warmup(0)
                    .run_2d(&cfg, &grid)
                    .expect("bench run")
                    .report
                    .cycles()
            })
        });
    }
    group.finish();
}

/// Figure 17's portability pair on the Apple M4 configuration.
fn bench_m4(c: &mut Criterion) {
    let cfg = MachineConfig::apple_m4();
    let mut group = c.benchmark_group("fig17_m4_128");
    group.sample_size(10);
    for spec in [presets::star2d9p(), presets::box2d25p()] {
        let grid = workload_2d(128, 128, spec.radius(), 42);
        for method in [Method::Auto, Method::HStencil] {
            group.bench_with_input(
                BenchmarkId::new(spec.name(), method.label()),
                &method,
                |b, &m| {
                    b.iter(|| {
                        StencilPlan::new(&spec, m)
                            .warmup(0)
                            .run_2d(&cfg, &grid)
                            .expect("bench run")
                            .report
                            .cycles()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_incache_methods, bench_breakdown, bench_m4);
criterion_main!(benches);
