//! Wall-clock benches over the paper's in-cache workloads on the in-repo
//! `hstencil-testkit` harness (warmup + samples, median/p10/p90): timing
//! of the *simulated* kernels, which also times the simulator itself —
//! useful to catch regressions in either layer.
//!
//! One bench group per figure family; `cargo bench -p hstencil-bench`.
//! Pass a substring to run a subset: `cargo bench -p hstencil-bench -- fig13`.

use hstencil_bench::runner::workload_2d;
use hstencil_core::{presets, Method, StencilPlan};
use hstencil_testkit::Harness;
use lx2_sim::MachineConfig;

/// Figure 12's in-cache kernels: one bench per (stencil, method).
fn bench_incache_methods(h: &Harness) {
    let cfg = MachineConfig::lx2();
    let group = h.group("fig12_incache_128").sample_size(10);
    for spec in [presets::star2d9p(), presets::box2d25p()] {
        let grid = workload_2d(128, 128, spec.radius(), 42);
        for method in [
            Method::Auto,
            Method::VectorOnly,
            Method::MatrixOnly,
            Method::HStencil,
        ] {
            group.bench(&format!("{}/{}", spec.name(), method.label()), || {
                StencilPlan::new(&spec, method)
                    .warmup(0)
                    .run_2d(&cfg, &grid)
                    .expect("bench run")
                    .report
                    .cycles()
            });
        }
    }
}

/// Figure 13's ablation: the HStencil optimization stack on one workload.
fn bench_breakdown(h: &Harness) {
    let cfg = MachineConfig::lx2();
    let spec = presets::star2d9p();
    let grid = workload_2d(128, 128, spec.radius(), 42);
    let group = h.group("fig13_breakdown_star").sample_size(10);
    for (label, sched, pf) in [
        ("base", false, false),
        ("sched", true, false),
        ("sched+prefetch", true, true),
    ] {
        group.bench(label, || {
            StencilPlan::new(&spec, Method::HStencil)
                .scheduling(sched)
                .replacement(sched)
                .prefetch(pf)
                .warmup(0)
                .run_2d(&cfg, &grid)
                .expect("bench run")
                .report
                .cycles()
        });
    }
}

/// Figure 17's portability pair on the Apple M4 configuration.
fn bench_m4(h: &Harness) {
    let cfg = MachineConfig::apple_m4();
    let group = h.group("fig17_m4_128").sample_size(10);
    for spec in [presets::star2d9p(), presets::box2d25p()] {
        let grid = workload_2d(128, 128, spec.radius(), 42);
        for method in [Method::Auto, Method::HStencil] {
            group.bench(&format!("{}/{}", spec.name(), method.label()), || {
                StencilPlan::new(&spec, method)
                    .warmup(0)
                    .run_2d(&cfg, &grid)
                    .expect("bench run")
                    .report
                    .cycles()
            });
        }
    }
}

fn main() {
    let h = Harness::from_args();
    bench_incache_methods(&h);
    bench_breakdown(&h);
    bench_m4(&h);
}
