//! Criterion benches of the simulator substrate itself: instruction
//! throughput of the issue engine and the memory hierarchy, plus the
//! native (host) stencil executor for scale.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hstencil_bench::runner::workload_2d;
use hstencil_core::{native, presets, Grid2d};
use lx2_isa::{Inst, Program, RowMask, VReg, ZaReg};
use lx2_sim::{Machine, MachineConfig};

/// Raw engine throughput on a compute-only instruction mix.
fn bench_engine_throughput(c: &mut Criterion) {
    let cfg = MachineConfig::lx2();
    let program: Program = (0..10_000u64)
        .map(|k| match k % 3 {
            0 => Inst::Fmopa {
                za: ZaReg::new((k % 4) as usize),
                vn: VReg::new(0),
                vm: VReg::new(1),
                mask: RowMask::ALL,
            },
            1 => Inst::Fmla {
                vd: VReg::new(2 + (k % 8) as usize),
                vn: VReg::new(30),
                vm: VReg::new(31),
            },
            _ => Inst::Ext {
                vd: VReg::new(10 + (k % 4) as usize),
                vn: VReg::new(30),
                vm: VReg::new(31),
                shift: 2,
            },
        })
        .collect();
    let mut group = c.benchmark_group("engine");
    group.throughput(Throughput::Elements(program.len() as u64));
    group.bench_function("compute_mix_10k", |b| {
        b.iter(|| {
            let mut m = Machine::new(&cfg);
            m.execute(&program).unwrap();
            m.elapsed_cycles()
        })
    });
    group.finish();
}

/// Memory hierarchy throughput on a streaming load pattern.
fn bench_hierarchy_stream(c: &mut Criterion) {
    let cfg = MachineConfig::lx2();
    let mut group = c.benchmark_group("hierarchy");
    group.throughput(Throughput::Elements(8192));
    group.bench_function("stream_loads_8k", |b| {
        b.iter(|| {
            let mut m = Machine::new(&cfg);
            let region = m.alloc(8192 * 8, 8);
            let program: Program = (0..8192u64)
                .map(|k| Inst::Ld1d {
                    vd: VReg::new((k % 16) as usize),
                    addr: region.base + k * 8,
                })
                .collect();
            m.execute(&program).unwrap();
            m.elapsed_cycles()
        })
    });
    group.finish();
}

/// The host-native executor at a production-ish size.
fn bench_native_executor(c: &mut Criterion) {
    let spec = presets::box2d25p();
    let grid = workload_2d(512, 512, 2, 42);
    let mut out = Grid2d::zeros(512, 512, 2);
    let mut group = c.benchmark_group("native");
    group.throughput(Throughput::Elements(512 * 512));
    group.bench_function("box2d25p_512", |b| {
        b.iter(|| native::apply_2d(&spec, &grid, &mut out))
    });
    group.bench_function("box2d25p_512_par2", |b| {
        b.iter(|| native::apply_2d_parallel(&spec, &grid, &mut out, 2))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_engine_throughput,
    bench_hierarchy_stream,
    bench_native_executor
);
criterion_main!(benches);
