//! Benches of the simulator substrate itself on the in-repo
//! `hstencil-testkit` harness: instruction throughput of the issue
//! engine and the memory hierarchy, plus the native (host) stencil
//! executor for scale.

use hstencil_bench::runner::workload_2d;
use hstencil_core::{native, presets, Grid2d};
use hstencil_testkit::Harness;
use lx2_isa::{Inst, Program, RowMask, VReg, ZaReg};
use lx2_sim::{Machine, MachineConfig};

/// Raw engine throughput on a compute-only instruction mix.
fn bench_engine_throughput(h: &Harness) {
    let cfg = MachineConfig::lx2();
    let program: Program = (0..10_000u64)
        .map(|k| match k % 3 {
            0 => Inst::Fmopa {
                za: ZaReg::new((k % 4) as usize),
                vn: VReg::new(0),
                vm: VReg::new(1),
                mask: RowMask::ALL,
            },
            1 => Inst::Fmla {
                vd: VReg::new(2 + (k % 8) as usize),
                vn: VReg::new(30),
                vm: VReg::new(31),
            },
            _ => Inst::Ext {
                vd: VReg::new(10 + (k % 4) as usize),
                vn: VReg::new(30),
                vm: VReg::new(31),
                shift: 2,
            },
        })
        .collect();
    h.group("engine")
        .throughput_elems(program.len() as u64)
        .bench("compute_mix_10k", || {
            let mut m = Machine::new(&cfg);
            m.execute(&program).unwrap();
            m.elapsed_cycles()
        });
}

/// Memory hierarchy throughput on a streaming load pattern.
fn bench_hierarchy_stream(h: &Harness) {
    let cfg = MachineConfig::lx2();
    h.group("hierarchy")
        .throughput_elems(8192)
        .bench("stream_loads_8k", || {
            let mut m = Machine::new(&cfg);
            let region = m.alloc(8192 * 8, 8);
            let program: Program = (0..8192u64)
                .map(|k| Inst::Ld1d {
                    vd: VReg::new((k % 16) as usize),
                    addr: region.base + k * 8,
                })
                .collect();
            m.execute(&program).unwrap();
            m.elapsed_cycles()
        });
}

/// The host-native executor at a production-ish size.
fn bench_native_executor(h: &Harness) {
    let spec = presets::box2d25p();
    let grid = workload_2d(512, 512, 2, 42);
    let mut out = Grid2d::zeros(512, 512, 2);
    let group = h.group("native").throughput_elems(512 * 512);
    group.bench("box2d25p_512", || native::apply_2d(&spec, &grid, &mut out));
    group.bench("box2d25p_512_par2", || {
        native::apply_2d_parallel(&spec, &grid, &mut out, 2)
    });
}

fn main() {
    let h = Harness::from_args();
    bench_engine_throughput(&h);
    bench_hierarchy_stream(&h);
    bench_native_executor(&h);
}
