//! Workload construction and method execution shared by all experiments.

use hstencil_core::{Grid2d, Grid3d, Method, RunReport, StencilPlan, StencilSpec};
use lx2_sim::MachineConfig;
use rand::{Rng, SeedableRng};

/// Deterministic random grid used by every experiment (values in
/// `[-1, 1)`, never exactly zero so useful-MAC counting stays structural).
pub fn workload_2d(h: usize, w: usize, halo: usize, seed: u64) -> Grid2d {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    Grid2d::from_fn(h, w, halo, |_, _| loop {
        let v: f64 = rng.gen_range(-1.0..1.0);
        if v != 0.0 {
            break v;
        }
    })
}

/// Deterministic random 3-D grid.
pub fn workload_3d(d: usize, h: usize, w: usize, halo: usize, seed: u64) -> Grid3d {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    Grid3d::from_fn(d, h, w, halo, |_, _, _| rng.gen_range(-1.0..1.0))
}

/// Runs one method on a square 2-D workload and returns its report.
///
/// `sweeps`/`warmup` control the timed window; verification runs for
/// in-cache sizes only (the scalar reference over 8192² per method would
/// dominate the harness runtime).
pub fn run_method(
    cfg: &MachineConfig,
    spec: &StencilSpec,
    method: Method,
    n: usize,
    sweeps: usize,
    warmup: usize,
) -> RunReport {
    let grid = workload_2d(n, n, spec.radius(), 42);
    let verify = n <= 256;
    let plan = StencilPlan::new(spec, method)
        .sweeps(sweeps)
        .warmup(warmup)
        .verify(verify);
    match plan.run_2d(cfg, &grid) {
        Ok(out) => out.report,
        Err(e) => panic!("{method} on {} {n}x{n}: {e}", spec.name()),
    }
}

/// Runs one method with explicit option overrides (breakdown studies).
#[allow(clippy::too_many_arguments)]
pub fn run_method_opts(
    cfg: &MachineConfig,
    spec: &StencilSpec,
    method: Method,
    n: usize,
    sweeps: usize,
    warmup: usize,
    scheduling: Option<bool>,
    prefetch: Option<bool>,
) -> RunReport {
    let grid = workload_2d(n, n, spec.radius(), 42);
    let mut plan = StencilPlan::new(spec, method)
        .sweeps(sweeps)
        .warmup(warmup)
        .verify(n <= 256);
    if let Some(s) = scheduling {
        plan = plan.scheduling(s).replacement(s);
    }
    if let Some(p) = prefetch {
        plan = plan.prefetch(p);
    }
    match plan.run_2d(cfg, &grid) {
        Ok(out) => out.report,
        Err(e) => panic!("{method} on {} {n}x{n}: {e}", spec.name()),
    }
}

/// Serializes labelled run reports as JSON under `results/<id>.json`,
/// next to the text tables — machine-readable output for downstream
/// plotting (the artifact's `plot.py` role).
pub fn dump_json(id: &str, entries: &[(String, RunReport)]) {
    #[derive(serde::Serialize)]
    struct Entry<'a> {
        label: &'a str,
        #[serde(flatten)]
        report: &'a RunReport,
        cycles: u64,
        ipc: f64,
        gstencil_per_s: f64,
        l1_load_hit_rate: f64,
    }
    let rows: Vec<Entry> = entries
        .iter()
        .map(|(label, r)| Entry {
            label,
            report: r,
            cycles: r.cycles(),
            ipc: r.ipc(),
            gstencil_per_s: r.gstencil_per_s(),
            l1_load_hit_rate: r.l1_load_hit_rate(),
        })
        .collect();
    if std::fs::create_dir_all("results").is_ok() {
        if let Ok(text) = serde_json::to_string_pretty(&rows) {
            let _ = std::fs::write(format!("results/{id}.json"), text);
        }
    }
}

/// Geometric mean of a slice.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hstencil_core::presets;

    #[test]
    fn workloads_are_deterministic() {
        let a = workload_2d(16, 16, 2, 7);
        let b = workload_2d(16, 16, 2, 7);
        assert_eq!(a.max_interior_diff(&b), 0.0);
        let c = workload_2d(16, 16, 2, 8);
        assert!(a.max_interior_diff(&c) > 0.0);
    }

    #[test]
    fn run_method_verifies_small_sizes() {
        let cfg = MachineConfig::lx2();
        let r = run_method(&cfg, &presets::star2d5p(), Method::HStencil, 64, 1, 0);
        assert!(r.cycles() > 0);
    }

    #[test]
    fn geomean_math() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }
}
