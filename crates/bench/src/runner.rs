//! Workload construction and method execution shared by all experiments.

use hstencil_core::{Grid2d, Grid3d, Method, RunReport, StencilPlan, StencilSpec};
use hstencil_testkit::{Json, Rng, ToJson, Xoshiro256};
use lx2_sim::MachineConfig;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Deterministic random grid used by every experiment (values in
/// `[-1, 1)`, never exactly zero so useful-MAC counting stays structural).
pub fn workload_2d(h: usize, w: usize, halo: usize, seed: u64) -> Grid2d {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    Grid2d::from_fn(h, w, halo, |_, _| loop {
        let v: f64 = rng.gen_range(-1.0..1.0);
        if v != 0.0 {
            break v;
        }
    })
}

/// Deterministic random 3-D grid.
pub fn workload_3d(d: usize, h: usize, w: usize, halo: usize, seed: u64) -> Grid3d {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    Grid3d::from_fn(d, h, w, halo, |_, _, _| rng.gen_range(-1.0..1.0))
}

/// Runs one method on a square 2-D workload and returns its report.
///
/// `sweeps`/`warmup` control the timed window; verification runs for
/// in-cache sizes only (the scalar reference over 8192² per method would
/// dominate the harness runtime).
pub fn run_method(
    cfg: &MachineConfig,
    spec: &StencilSpec,
    method: Method,
    n: usize,
    sweeps: usize,
    warmup: usize,
) -> RunReport {
    let grid = workload_2d(n, n, spec.radius(), 42);
    let verify = n <= 256;
    let plan = StencilPlan::new(spec, method)
        .sweeps(sweeps)
        .warmup(warmup)
        .verify(verify);
    match plan.run_2d(cfg, &grid) {
        Ok(out) => out.report,
        Err(e) => panic!("{method} on {} {n}x{n}: {e}", spec.name()),
    }
}

/// Runs one method with explicit option overrides (breakdown studies).
#[allow(clippy::too_many_arguments)]
pub fn run_method_opts(
    cfg: &MachineConfig,
    spec: &StencilSpec,
    method: Method,
    n: usize,
    sweeps: usize,
    warmup: usize,
    scheduling: Option<bool>,
    prefetch: Option<bool>,
) -> RunReport {
    let grid = workload_2d(n, n, spec.radius(), 42);
    let mut plan = StencilPlan::new(spec, method)
        .sweeps(sweeps)
        .warmup(warmup)
        .verify(n <= 256);
    if let Some(s) = scheduling {
        plan = plan.scheduling(s).replacement(s);
    }
    if let Some(p) = prefetch {
        plan = plan.prefetch(p);
    }
    match plan.run_2d(cfg, &grid) {
        Ok(out) => out.report,
        Err(e) => panic!("{method} on {} {n}x{n}: {e}", spec.name()),
    }
}

/// Count of failed result-file writes in this process (see [`exit_code`]).
static IO_FAILURES: AtomicUsize = AtomicUsize::new(0);

/// Records one failed attempt to persist results; experiment binaries
/// turn this into a non-zero exit via [`exit_code`].
pub fn record_io_failure() {
    IO_FAILURES.fetch_add(1, Ordering::Relaxed);
}

/// Number of result-file writes that failed so far.
pub fn io_failure_count() -> usize {
    IO_FAILURES.load(Ordering::Relaxed)
}

/// Process exit code reflecting persistence health: `0` when every
/// results file was written, `1` otherwise (with a stderr summary).
/// Experiment binaries end with `std::process::exit(exit_code())`.
pub fn exit_code() -> i32 {
    let n = io_failure_count();
    if n == 0 {
        0
    } else {
        eprintln!("error: {n} results file(s) could not be written (see messages above)");
        1
    }
}

/// JSON document for labelled run reports: an array of objects with the
/// label, the flattened report fields, and the derived headline metrics.
pub fn reports_to_json(entries: &[(String, RunReport)]) -> Json {
    Json::array(entries.iter().map(|(label, r)| {
        let mut obj = vec![("label".to_string(), label.to_json())];
        match r.to_json() {
            Json::Obj(fields) => obj.extend(fields),
            other => obj.push(("report".to_string(), other)),
        }
        obj.extend([
            ("cycles".to_string(), r.cycles().to_json()),
            ("ipc".to_string(), r.ipc().to_json()),
            ("gstencil_per_s".to_string(), r.gstencil_per_s().to_json()),
            (
                "l1_load_hit_rate".to_string(),
                r.l1_load_hit_rate().to_json(),
            ),
        ]);
        Json::Obj(obj)
    }))
}

/// Serializes labelled run reports as JSON under `results/<id>.json`,
/// next to the text tables — machine-readable output for downstream
/// plotting (the artifact's `plot.py` role).
pub fn try_dump_json(id: &str, entries: &[(String, RunReport)]) -> std::io::Result<()> {
    let text = reports_to_json(entries).to_pretty();
    std::fs::create_dir_all("results")?;
    std::fs::write(format!("results/{id}.json"), text)
}

/// [`try_dump_json`], reporting failures to stderr and recording them so
/// the experiment binary exits non-zero instead of silently dropping
/// machine-readable output.
pub fn dump_json(id: &str, entries: &[(String, RunReport)]) {
    if let Err(e) = try_dump_json(id, entries) {
        eprintln!("error: failed to write results/{id}.json: {e}");
        record_io_failure();
    }
}

/// Geometric mean of a slice.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hstencil_core::presets;

    #[test]
    fn workloads_are_deterministic() {
        let a = workload_2d(16, 16, 2, 7);
        let b = workload_2d(16, 16, 2, 7);
        assert_eq!(a.max_interior_diff(&b), 0.0);
        let c = workload_2d(16, 16, 2, 8);
        assert!(a.max_interior_diff(&c) > 0.0);
    }

    #[test]
    fn run_method_verifies_small_sizes() {
        let cfg = MachineConfig::lx2();
        let r = run_method(&cfg, &presets::star2d5p(), Method::HStencil, 64, 1, 0);
        assert!(r.cycles() > 0);
    }

    #[test]
    fn geomean_math() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn reports_json_flattens_label_and_metrics() {
        let cfg = MachineConfig::lx2();
        let r = run_method(&cfg, &presets::star2d5p(), Method::HStencil, 32, 1, 0);
        let doc = reports_to_json(&[("star2d5p/HStencil".to_string(), r)]);
        let text = doc.to_pretty();
        assert!(text.contains("\"label\": \"star2d5p/HStencil\""));
        assert!(text.contains("\"method\": \"HStencil\""));
        assert!(text.contains("\"gstencil_per_s\":"));
        assert!(text.contains("\"l1_load_hit_rate\":"));
        assert!(text.contains("\"counters\": {"));
    }

    #[test]
    fn io_failures_are_counted_for_exit_propagation() {
        let before = io_failure_count();
        record_io_failure();
        assert_eq!(io_failure_count(), before + 1);
    }
}
