//! Figure 13 — performance breakdown of the HStencil optimizations on
//! r = 2 2-D stencils: Mat-ortho, Mat-only, the hybrid micro kernel
//! without fine-grained scheduling, and the full kernel with it.

use crate::fmt::{f2, BarChart, Table};
use crate::runner::{run_method, run_method_opts};
use hstencil_core::{presets, Method, StencilSpec};
use lx2_sim::MachineConfig;

fn breakdown(spec: &StencilSpec, include_ortho: bool) -> Table {
    let cfg = MachineConfig::lx2();
    let mut t = Table::new(format!(
        "Figure 13: breakdown for {} (128x128, speedup vs auto)",
        spec.name()
    ))
    .header(&["variant", "speedup"]);
    let mut chart =
        BarChart::new(format!("Figure 13 ({}): speedup vs auto", spec.name())).reference(1.0);
    let auto = run_method(&cfg, spec, Method::Auto, 128, 1, 1);
    let mut add = |label: &str, cycles: u64| {
        let s = auto.cycles() as f64 / cycles as f64;
        chart.bar(label, s);
        t.row(vec![label.into(), format!("{}x", f2(s))]);
    };
    if include_ortho {
        add(
            "Mat-ortho",
            run_method(&cfg, spec, Method::MatrixOrtho, 128, 1, 1).cycles(),
        );
    }
    add(
        "Mat-only",
        run_method(&cfg, spec, Method::MatrixOnly, 128, 1, 1).cycles(),
    );
    add(
        "HStencil w/o scheduling",
        run_method_opts(&cfg, spec, Method::HStencil, 128, 1, 1, Some(false), None).cycles(),
    );
    add(
        "HStencil w/ scheduling",
        run_method_opts(&cfg, spec, Method::HStencil, 128, 1, 1, Some(true), None).cycles(),
    );
    chart.emit(&format!("fig13_{}", spec.name()));
    t
}

/// Star (13a) and box (13b) breakdowns.
pub fn run_all() -> Vec<Table> {
    vec![
        breakdown(&presets::star2d9p(), true),
        breakdown(&presets::box2d25p(), false),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_ordering_matches_figure_13() {
        let cfg = MachineConfig::lx2();
        let spec = presets::star2d9p();
        let ortho = run_method(&cfg, &spec, Method::MatrixOrtho, 128, 1, 1).cycles();
        let auto = run_method(&cfg, &spec, Method::Auto, 128, 1, 1).cycles();
        let matrix = run_method(&cfg, &spec, Method::MatrixOnly, 128, 1, 1).cycles();
        let unsched =
            run_method_opts(&cfg, &spec, Method::HStencil, 128, 1, 1, Some(false), None).cycles();
        let sched =
            run_method_opts(&cfg, &spec, Method::HStencil, 128, 1, 1, Some(true), None).cycles();
        // Mat-ortho loses to auto; matrix-only beats auto; the hybrid
        // kernel beats matrix-only; scheduling improves it further.
        assert!(ortho > auto, "ortho {ortho} should lose to auto {auto}");
        assert!(matrix < auto);
        assert!(
            unsched < matrix,
            "micro kernel {unsched} vs matrix {matrix}"
        );
        assert!(
            sched < unsched,
            "scheduling must help: {sched} vs {unsched}"
        );
    }
}
