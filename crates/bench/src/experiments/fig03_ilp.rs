//! Figure 3 — matrix/vector instruction-level-parallelism microbenchmarks.
//!
//! (a) Outer-product throughput versus the number of independent tile
//!     accumulators: peak is reached at four or more (the FMOPA
//!     accumulate latency).
//! (b) Overlapped versus isolated execution of outer products and vector
//!     MLA: co-issue on distinct pipes approaches
//!     `max(T_matrix, T_vector)` instead of the sum (paper: up to 1.5×).

use crate::fmt::{f2, Table};
use lx2_isa::{Inst, Program, RowMask, VReg, ZaReg};
use lx2_sim::{Machine, MachineConfig};

/// Cycles to run `program` on a fresh machine.
fn run(cfg: &MachineConfig, program: &Program) -> u64 {
    let mut m = Machine::new(cfg);
    m.execute(program).expect("microbenchmark must execute");
    m.elapsed_cycles()
}

fn fmopa(tile: usize) -> Inst {
    Inst::Fmopa {
        za: ZaReg::new(tile),
        vn: VReg::new(0),
        vm: VReg::new(1),
        mask: RowMask::ALL,
    }
}

fn fmla(acc: usize) -> Inst {
    Inst::Fmla {
        vd: VReg::new(2 + acc),
        vn: VReg::new(30),
        vm: VReg::new(31),
    }
}

/// Figure 3a: throughput scaling with independent tiles.
pub fn throughput_table(cfg: &MachineConfig) -> Table {
    let mut t = Table::new("Figure 3a: FMOPA throughput vs independent tiles (LX2)").header(&[
        "tiles",
        "cycles",
        "FMOPA/cycle",
        "of peak",
    ]);
    let reps = 1024u64;
    for tiles in 1..=8usize {
        let program: Program = (0..reps).map(|k| fmopa(k as usize % tiles)).collect();
        let cycles = run(cfg, &program);
        let per_cycle = reps as f64 / cycles as f64;
        t.row(vec![
            tiles.to_string(),
            cycles.to_string(),
            f2(per_cycle),
            f2(per_cycle / cfg.matrix_units as f64),
        ]);
    }
    t
}

/// Figure 3b: isolated vs overlapped matrix+vector execution.
pub fn overlap_table(cfg: &MachineConfig) -> Table {
    let mut t = Table::new("Figure 3b: isolated vs overlapped matrix+vector (LX2)").header(&[
        "workload",
        "cycles",
        "speedup vs isolated",
    ]);
    let reps = 1024u64;
    let matrix: Program = (0..reps).map(|k| fmopa(k as usize % 4)).collect();
    let vector: Program = (0..reps).map(|k| fmla(k as usize % 8)).collect();
    let interleaved: Program = (0..reps)
        .flat_map(|k| [fmopa(k as usize % 4), fmla(k as usize % 8)])
        .collect();

    let tm = run(cfg, &matrix);
    let tv = run(cfg, &vector);
    let ti = run(cfg, &interleaved);
    let isolated = tm + tv;
    t.row(vec!["matrix only".into(), tm.to_string(), String::new()]);
    t.row(vec!["vector only".into(), tv.to_string(), String::new()]);
    t.row(vec!["isolated (sum)".into(), isolated.to_string(), f2(1.0)]);
    t.row(vec![
        "interleaved".into(),
        ti.to_string(),
        format!("{}x", f2(isolated as f64 / ti as f64)),
    ]);
    t
}

/// Runs both parts.
pub fn run_all() -> Vec<Table> {
    let cfg = MachineConfig::lx2();
    vec![throughput_table(&cfg), overlap_table(&cfg)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_needs_four_tiles() {
        let cfg = MachineConfig::lx2();
        let reps = 512u64;
        let cycles = |tiles: usize| {
            let p: Program = (0..reps).map(|k| fmopa(k as usize % tiles)).collect();
            run(&cfg, &p)
        };
        let one = cycles(1);
        let four = cycles(4);
        let eight = cycles(8);
        // Single-tile chains serialize at the FMOPA latency; four tiles
        // reach ~1/cycle; more tiles add nothing (paper Figure 3a).
        assert!(one >= 35 * four / 10, "1 tile {one} vs 4 tiles {four}");
        assert!(eight as f64 >= four as f64 * 0.9);
        assert!(four <= reps + 16);
    }

    #[test]
    fn overlap_reaches_at_least_1_5x() {
        let cfg = MachineConfig::lx2();
        let reps = 512u64;
        let m: Program = (0..reps).map(|k| fmopa(k as usize % 4)).collect();
        let v: Program = (0..reps).map(|k| fmla(k as usize % 8)).collect();
        let i: Program = (0..reps)
            .flat_map(|k| [fmopa(k as usize % 4), fmla(k as usize % 8)])
            .collect();
        let isolated = run(&cfg, &m) + run(&cfg, &v);
        let inter = run(&cfg, &i);
        let speedup = isolated as f64 / inter as f64;
        assert!(speedup >= 1.5, "overlap speedup only {speedup:.2}");
    }
}
