//! Table 2 — instructions per cycle of vector-only vs matrix-only.
//!
//! The motivation table: matrix instructions have lower instruction
//! throughput than vector instructions, leaving headroom an interleaved
//! hybrid can claim (paper values: vector 1.75, matrix 1.46, ideal 3.00).

use crate::fmt::{f2, Table};
use crate::runner::run_method;
use hstencil_core::{presets, Method};
use lx2_sim::MachineConfig;

/// Builds the IPC table on the r = 2 box workload at 128².
pub fn table() -> Table {
    let cfg = MachineConfig::lx2();
    let spec = presets::box2d25p();
    let mut t = Table::new("Table 2: instructions per cycle (box2d25p, 128x128)")
        .header(&["method", "IPC", "paper"]);
    let vec_ipc = run_method(&cfg, &spec, Method::VectorOnly, 128, 1, 1).ipc();
    let mat_ipc = run_method(&cfg, &spec, Method::MatrixOnly, 128, 1, 1).ipc();
    t.row(vec!["Vector-only".into(), f2(vec_ipc), "1.75".into()]);
    t.row(vec!["Matrix-only".into(), f2(mat_ipc), "1.46".into()]);
    t.row(vec!["Ideal".into(), "3.00".into(), "3.00".into()]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_ipc_exceeds_matrix_ipc() {
        // The paper's motivating asymmetry (Table 2).
        let cfg = MachineConfig::lx2();
        let spec = presets::box2d25p();
        let v = run_method(&cfg, &spec, Method::VectorOnly, 128, 1, 1).ipc();
        let m = run_method(&cfg, &spec, Method::MatrixOnly, 128, 1, 1).ipc();
        assert!(v > m, "vector IPC {v:.2} must exceed matrix IPC {m:.2}");
    }
}
