//! One module per paper artifact (DESIGN.md §4 experiment index).
//!
//! Every experiment returns [`crate::Table`]s that mirror the paper's
//! figure/table structure; binaries print them and archive the text under
//! `results/`. Set `HSTENCIL_QUICK=1` to cap the out-of-cache sizes and
//! core counts for smoke runs.

pub mod fig03_ilp;
pub mod fig12_incache;
pub mod fig13_breakdown;
pub mod fig14_ipc;
pub mod fig15_outofcache;
pub mod fig16_scaling;
pub mod fig17_m4_incache;
pub mod fig18_m4_outofcache;
pub mod tab01_utilization;
pub mod tab02_ipc;
pub mod tab03_cache_hit;
pub mod tab05_instr_ratio;
pub mod tab07_prefetch_cache;

/// Whether quick mode is active (smaller out-of-cache sweeps).
pub fn quick() -> bool {
    std::env::var("HSTENCIL_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Out-of-cache matrix sizes (paper: 1024–8192).
pub fn out_of_cache_sizes() -> Vec<usize> {
    if quick() {
        vec![1024, 2048]
    } else {
        vec![1024, 2048, 4096, 8192]
    }
}

/// Core counts for the scaling study (paper: 1–32).
pub fn core_counts() -> Vec<usize> {
    if quick() {
        vec![1, 2, 4]
    } else {
        vec![1, 2, 4, 8, 16, 32]
    }
}
