//! Figure 14 — IPC comparison of HStencil against the vector-only and
//! matrix-only methods across the 2-D 128×128 suite.

use crate::fmt::{f2, Table};
use crate::runner::run_method;
use hstencil_core::{presets, Method};
use lx2_sim::MachineConfig;

/// Builds the IPC comparison table.
pub fn table() -> Table {
    let cfg = MachineConfig::lx2();
    let mut t = Table::new("Figure 14: IPC in 2-D stencils of size 128x128").header(&[
        "stencil",
        "Vector-only",
        "Matrix-only",
        "HStencil",
    ]);
    for spec in presets::suite_2d() {
        let row = vec![
            spec.name().to_string(),
            f2(run_method(&cfg, &spec, Method::VectorOnly, 128, 1, 1).ipc()),
            f2(run_method(&cfg, &spec, Method::MatrixOnly, 128, 1, 1).ipc()),
            f2(run_method(&cfg, &spec, Method::HStencil, 128, 1, 1).ipc()),
        ];
        t.row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hstencil_ipc_tops_both_methods() {
        // Figure 14: HStencil reaches the highest IPC by keeping both
        // pipes busy (paper: up to 2.30 vs 1.825 vector / <1.60 matrix).
        let cfg = MachineConfig::lx2();
        for spec in [presets::star2d9p(), presets::box2d25p()] {
            let v = run_method(&cfg, &spec, Method::VectorOnly, 128, 1, 1).ipc();
            let m = run_method(&cfg, &spec, Method::MatrixOnly, 128, 1, 1).ipc();
            let h = run_method(&cfg, &spec, Method::HStencil, 128, 1, 1).ipc();
            assert!(
                h > v && h > m,
                "{}: h={h:.2} v={v:.2} m={m:.2}",
                spec.name()
            );
            assert!(
                h > 1.8,
                "{}: HStencil IPC should be high, got {h:.2}",
                spec.name()
            );
        }
    }
}
