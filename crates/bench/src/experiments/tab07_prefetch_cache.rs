//! Table 7 — L1 cache metrics of r = 2 box stencils with and without
//! spatial prefetch (paper: hit rate from ≈30% to ≈60%, hit times up
//! ≈2.98×).

use crate::fmt::{eng, pct, Table};
use crate::runner::run_method_opts;
use hstencil_core::{presets, Method};
use lx2_sim::MachineConfig;

/// Builds the prefetch cache-metrics table.
pub fn table() -> Table {
    let cfg = MachineConfig::lx2();
    let spec = presets::box2d25p();
    let mut t = Table::new("Table 7: L1 cache metrics of r=2 box stencils (HStencil)").header(&[
        "size",
        "hit rate w/o pf",
        "hits w/o pf",
        "hit rate w/ pf",
        "hits w/ pf",
    ]);
    for n in super::out_of_cache_sizes() {
        let off = run_method_opts(&cfg, &spec, Method::HStencil, n, 1, 0, None, Some(false));
        let on = run_method_opts(&cfg, &spec, Method::HStencil, n, 1, 0, None, Some(true));
        t.row(vec![
            format!("{n}x{n}"),
            pct(off.l1_load_hit_rate()),
            eng(off.l1_hit_times() as f64),
            pct(on.l1_load_hit_rate()),
            eng(on.l1_hit_times() as f64),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "1024² simulation; run with --release")]
    fn prefetch_raises_hit_rate_and_hit_times() {
        let cfg = MachineConfig::lx2();
        let spec = presets::box2d25p();
        let off = run_method_opts(&cfg, &spec, Method::HStencil, 1024, 1, 0, None, Some(false));
        let on = run_method_opts(&cfg, &spec, Method::HStencil, 1024, 1, 0, None, Some(true));
        assert!(
            on.l1_load_hit_rate() > off.l1_load_hit_rate(),
            "prefetch must raise the hit rate: {:.3} vs {:.3}",
            on.l1_load_hit_rate(),
            off.l1_load_hit_rate()
        );
    }
}
