//! Table 1 — matrix-unit utilization of single-register methods.
//!
//! Utilization = structurally useful MAC slots / provisioned MAC slots
//! (64 per outer product), measured dynamically on in-cache runs with
//! `reg_blocks = 1` (the paper's "single-register" qualifier).

use crate::fmt::{pct, Table};
use hstencil_core::{analysis, presets, Method};
use lx2_sim::MachineConfig;

/// Builds the utilization table (paper values shown for reference).
pub fn table() -> Table {
    let cfg = MachineConfig::lx2();
    let mut t = Table::new("Table 1: matrix-unit utilization (single-register)")
        .header(&["method", "measured", "paper"]);
    let util = |spec: &hstencil_core::StencilSpec, m: Method| {
        analysis::matrix_utilization(spec, m, &cfg, 1)
            .expect("analysis run must succeed")
            .expect("method uses outer products")
    };
    t.row(vec![
        "Outer-axis (Box)".into(),
        pct(util(&presets::box2d25p(), Method::MatrixOnly)),
        "41.7%".into(),
    ]);
    t.row(vec![
        "Outer-axis (Star)".into(),
        pct(util(&presets::star2d9p(), Method::MatrixOnly)),
        "18.3%".into(),
    ]);
    t.row(vec![
        "Outer&inner-axis (Star)".into(),
        pct(util(&presets::star2d9p(), Method::MatrixOrtho)),
        "41.7%".into(),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_three_rows() {
        let t = table();
        assert_eq!(t.len(), 3);
    }
}
