//! Figure 12 — in-cache performance of HStencil versus matrix/vector
//! methods on 128×128 micro kernels, normalized to auto-vectorization.
//!
//! Covers the 2-D star/box suite (r = 1..3), Heat-2D and the 3-D suite
//! (3-D runs as weighted accumulation over 2-D planes, §5.2.1).

use crate::fmt::{f2, Table};
use crate::runner::{dump_json, geomean, run_method, workload_3d};
use hstencil_core::{presets, Method, StencilPlan};
use lx2_sim::MachineConfig;

const METHODS: [Method; 3] = [Method::VectorOnly, Method::MatrixOnly, Method::HStencil];

/// 2-D part of the figure.
pub fn table_2d() -> Table {
    let cfg = MachineConfig::lx2();
    let mut t = Table::new("Figure 12 (2-D): in-cache speedups over auto, 128x128").header(&[
        "stencil",
        "Vector-only",
        "Matrix-only",
        "HStencil",
    ]);
    let mut per_method: Vec<Vec<f64>> = vec![Vec::new(); METHODS.len()];
    let mut json = Vec::new();
    for spec in presets::suite_2d() {
        let auto = run_method(&cfg, &spec, Method::Auto, 128, 1, 1);
        let mut row = vec![spec.name().to_string()];
        for (k, &m) in METHODS.iter().enumerate() {
            let rep = run_method(&cfg, &spec, m, 128, 1, 1);
            let s = rep.speedup_over(&auto);
            per_method[k].push(s);
            row.push(format!("{}x", f2(s)));
            json.push((format!("{}/{}", spec.name(), m.label()), rep));
        }
        json.push((format!("{}/Auto", spec.name()), auto));
        t.row(row);
    }
    dump_json("fig12_incache_2d", &json);
    let mut row = vec!["geomean".to_string()];
    for sp in &per_method {
        row.push(format!("{}x", f2(geomean(sp))));
    }
    t.row(row);
    t
}

/// 3-D part of the figure (4 planes of 96×96 — sized to stay in cache
/// like the 2-D micro kernels).
pub fn table_3d() -> Table {
    let cfg = MachineConfig::lx2();
    let mut t = Table::new("Figure 12 (3-D): in-cache speedups over auto, 4x96x96").header(&[
        "stencil",
        "Vector-only",
        "Matrix-only",
        "HStencil",
    ]);
    for spec in presets::suite_3d() {
        let grid = workload_3d(4, 96, 96, spec.radius(), 42);
        let run = |m: Method| {
            StencilPlan::new(&spec, m)
                .warmup(1)
                .run_3d(&cfg, &grid)
                .unwrap_or_else(|e| panic!("{m} on {}: {e}", spec.name()))
                .report
        };
        let auto = run(Method::Auto);
        let mut row = vec![spec.name().to_string()];
        for &m in &METHODS {
            row.push(format!("{}x", f2(run(m).speedup_over(&auto))));
        }
        t.row(row);
    }
    t
}

/// Both parts.
pub fn run_all() -> Vec<Table> {
    vec![table_2d(), table_3d()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hstencil_beats_matrix_only_and_auto_in_cache() {
        // The headline ordering of Figure 12 for the r=2 kernels.
        let cfg = MachineConfig::lx2();
        for spec in [presets::star2d9p(), presets::box2d25p()] {
            let auto = run_method(&cfg, &spec, Method::Auto, 128, 1, 1);
            let matrix = run_method(&cfg, &spec, Method::MatrixOnly, 128, 1, 1);
            let h = run_method(&cfg, &spec, Method::HStencil, 128, 1, 1);
            assert!(
                h.cycles() < matrix.cycles(),
                "{}: HStencil {} vs matrix {}",
                spec.name(),
                h.cycles(),
                matrix.cycles()
            );
            assert!(h.cycles() < auto.cycles());
        }
    }
}
