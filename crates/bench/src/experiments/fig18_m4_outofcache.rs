//! Figure 18 — out-of-cache speedups over auto on Apple M4: the base
//! kernel, plus instruction scheduling, plus spatial prefetch (paper:
//! +30% from scheduling, +20% from prefetch on average).

use crate::fmt::{f2, Table};
use crate::runner::{run_method, run_method_opts};
use hstencil_core::{presets, Method};
use lx2_sim::MachineConfig;

/// Builds the M4 out-of-cache table (r = 2 box).
pub fn table() -> Table {
    let cfg = MachineConfig::apple_m4();
    let spec = presets::box2d25p();
    let mut t = Table::new("Figure 18: out-of-cache speedups over auto on Apple M4 (box2d25p)")
        .header(&["size", "HStencil base", "+scheduling", "+sched+prefetch"]);
    for n in super::out_of_cache_sizes() {
        let auto = run_method(&cfg, &spec, Method::Auto, n, 1, 0);
        let base = run_method_opts(
            &cfg,
            &spec,
            Method::HStencil,
            n,
            1,
            0,
            Some(false),
            Some(false),
        );
        let sched = run_method_opts(
            &cfg,
            &spec,
            Method::HStencil,
            n,
            1,
            0,
            Some(true),
            Some(false),
        );
        let full = run_method_opts(
            &cfg,
            &spec,
            Method::HStencil,
            n,
            1,
            0,
            Some(true),
            Some(true),
        );
        t.row(vec![
            format!("{n}x{n}"),
            format!("{}x", f2(base.speedup_over(&auto))),
            format!("{}x", f2(sched.speedup_over(&auto))),
            format!("{}x", f2(full.speedup_over(&auto))),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn m4_scheduling_helps() {
        let cfg = MachineConfig::apple_m4();
        let spec = presets::box2d25p();
        let base = run_method_opts(
            &cfg,
            &spec,
            Method::HStencil,
            1024,
            1,
            0,
            Some(false),
            Some(false),
        );
        let sched = run_method_opts(
            &cfg,
            &spec,
            Method::HStencil,
            1024,
            1,
            0,
            Some(true),
            Some(false),
        );
        assert!(sched.cycles() < base.cycles(), "scheduling must help on M4");
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "4096² simulation; run with --release")]
    fn m4_prefetch_helps_beyond_l2() {
        // Spatial prefetch pays once the strips overflow M4's 4 MiB L2
        // (paper Figure 18's out-of-cache regime).
        let cfg = MachineConfig::apple_m4();
        let spec = presets::box2d25p();
        let sched = run_method_opts(
            &cfg,
            &spec,
            Method::HStencil,
            4096,
            1,
            0,
            Some(true),
            Some(false),
        );
        let full = run_method_opts(
            &cfg,
            &spec,
            Method::HStencil,
            4096,
            1,
            0,
            Some(true),
            Some(true),
        );
        assert!(
            full.cycles() < sched.cycles(),
            "prefetch must help at 4096: {} vs {}",
            full.cycles(),
            sched.cycles()
        );
    }
}
