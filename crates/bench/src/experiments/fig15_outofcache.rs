//! Figure 15 — out-of-cache speedups over auto-vectorization on growing
//! matrix sizes: spatial prefetch prevents the degradation the plain
//! matrix method suffers (paper: prefetch ≈ 42% over no-prefetch,
//! HStencil up to 91% over STOP).

use crate::fmt::{f2, Table};
use crate::runner::{run_method, run_method_opts};
use hstencil_core::{presets, Method};
use lx2_sim::MachineConfig;

/// Builds the out-of-cache speedup table (r = 2 box).
pub fn table() -> Table {
    let cfg = MachineConfig::lx2();
    let spec = presets::box2d25p();
    let mut t = Table::new("Figure 15: out-of-cache speedups over auto (box2d25p)").header(&[
        "size",
        "STOP",
        "HStencil w/o prefetch",
        "HStencil w/ prefetch",
    ]);
    for n in super::out_of_cache_sizes() {
        let auto = run_method(&cfg, &spec, Method::Auto, n, 1, 0);
        let stop = run_method(&cfg, &spec, Method::MatrixOnly, n, 1, 0);
        let nopf = run_method_opts(&cfg, &spec, Method::HStencil, n, 1, 0, None, Some(false));
        let pf = run_method_opts(&cfg, &spec, Method::HStencil, n, 1, 0, None, Some(true));
        t.row(vec![
            format!("{n}x{n}"),
            format!("{}x", f2(stop.speedup_over(&auto))),
            format!("{}x", f2(nopf.speedup_over(&auto))),
            format!("{}x", f2(pf.speedup_over(&auto))),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "1024² simulation; run with --release")]
    fn prefetch_helps_out_of_cache_and_hstencil_beats_stop() {
        let cfg = MachineConfig::lx2();
        let spec = presets::box2d25p();
        let n = 1024;
        let stop = run_method(&cfg, &spec, Method::MatrixOnly, n, 1, 0);
        let nopf = run_method_opts(&cfg, &spec, Method::HStencil, n, 1, 0, None, Some(false));
        let pf = run_method_opts(&cfg, &spec, Method::HStencil, n, 1, 0, None, Some(true));
        assert!(
            pf.cycles() < nopf.cycles(),
            "prefetch must help out of cache: {} vs {}",
            pf.cycles(),
            nopf.cycles()
        );
        assert!(
            pf.cycles() < stop.cycles(),
            "HStencil must beat STOP out of cache"
        );
    }
}
