//! Table 3 — L1 cache hit rates on out-of-cache stencils.
//!
//! Vector-wise processing streams rows sequentially and keeps the stream
//! prefetcher trained; tiled matrix-wise processing breaks the 1-D
//! streams and loses the prefetcher (paper: vector ≥ 96%, matrix ≤ 66%
//! and falling with size).

use crate::fmt::{pct, Table};
use crate::runner::run_method;
use hstencil_core::{presets, Method};
use lx2_sim::MachineConfig;

/// Builds the hit-rate table over the out-of-cache sizes.
pub fn table() -> Table {
    let cfg = MachineConfig::lx2();
    let spec = presets::box2d25p();
    let mut t = Table::new("Table 3: L1 hit rates on out-of-cache stencils (box2d25p)").header(&[
        "size",
        "vector method",
        "matrix method",
    ]);
    for n in super::out_of_cache_sizes() {
        let v = run_method(&cfg, &spec, Method::VectorOnly, n, 1, 0);
        let m = run_method(&cfg, &spec, Method::MatrixOnly, n, 1, 0);
        t.row(vec![
            format!("{n}x{n}"),
            pct(v.l1_load_hit_rate()),
            pct(m.l1_load_hit_rate()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "1024² simulation; run with --release")]
    fn vector_method_keeps_higher_hit_rate_out_of_cache() {
        let cfg = MachineConfig::lx2();
        let spec = presets::box2d25p();
        let v = run_method(&cfg, &spec, Method::VectorOnly, 1024, 1, 0);
        let m = run_method(&cfg, &spec, Method::MatrixOnly, 1024, 1, 0);
        assert!(
            v.l1_load_hit_rate() > m.l1_load_hit_rate(),
            "vector {:.3} must beat matrix {:.3}",
            v.l1_load_hit_rate(),
            m.l1_load_hit_rate()
        );
        assert!(
            v.l1_load_hit_rate() > 0.85,
            "vector method should stream well"
        );
    }
}
