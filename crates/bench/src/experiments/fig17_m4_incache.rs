//! Figure 17 — speedups of HStencil over auto-vectorization in 2-D
//! stencils on the Apple M4 Pro configuration (paper: box ≈ 3.07×,
//! star ≈ 1.90× on average; the auto baseline is 128-bit NEON).

use crate::fmt::{f2, Table};
use crate::runner::{geomean, run_method};
use hstencil_core::{presets, Method};
use lx2_sim::MachineConfig;

const SIZES: [usize; 5] = [64, 128, 256, 512, 1024];

/// Builds the M4 in-cache speedup table.
pub fn table() -> Table {
    let cfg = MachineConfig::apple_m4();
    let mut t = Table::new("Figure 17: HStencil speedup over auto on Apple M4 (2-D)")
        .header(&["size", "star2d9p", "box2d25p"]);
    let mut star_all = Vec::new();
    let mut box_all = Vec::new();
    for n in SIZES {
        let mut row = vec![format!("{n}x{n}")];
        for (spec, acc) in [
            (presets::star2d9p(), &mut star_all),
            (presets::box2d25p(), &mut box_all),
        ] {
            let auto = run_method(&cfg, &spec, Method::Auto, n, 1, 1);
            let h = run_method(&cfg, &spec, Method::HStencil, n, 1, 1);
            let s = h.speedup_over(&auto);
            acc.push(s);
            row.push(format!("{}x", f2(s)));
        }
        t.row(row);
    }
    t.row(vec![
        "geomean".into(),
        format!("{}x", f2(geomean(&star_all))),
        format!("{}x", f2(geomean(&box_all))),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn m4_hstencil_beats_neon_auto() {
        let cfg = MachineConfig::apple_m4();
        for spec in [presets::star2d9p(), presets::box2d25p()] {
            let auto = run_method(&cfg, &spec, Method::Auto, 128, 1, 1);
            let h = run_method(&cfg, &spec, Method::HStencil, 128, 1, 1);
            let s = h.speedup_over(&auto);
            assert!(s > 1.5, "{} speedup only {s:.2}", spec.name());
        }
    }

    #[test]
    fn m4_box_gains_exceed_star_gains() {
        // §4.1: star on M4 loses the in-place accumulation trick, so its
        // relative gains are smaller than box (paper: 1.90x vs 3.07x).
        let cfg = MachineConfig::apple_m4();
        let s_auto = run_method(&cfg, &presets::star2d9p(), Method::Auto, 128, 1, 1);
        let s_h = run_method(&cfg, &presets::star2d9p(), Method::HStencil, 128, 1, 1);
        let b_auto = run_method(&cfg, &presets::box2d25p(), Method::Auto, 128, 1, 1);
        let b_h = run_method(&cfg, &presets::box2d25p(), Method::HStencil, 128, 1, 1);
        assert!(b_h.speedup_over(&b_auto) > s_h.speedup_over(&s_auto));
    }
}
