//! Table 5 — matrix / vector instruction-cycle ratios per tile.
//!
//! Shows why §3.2.1 replacement exists: the matrix-only method never
//! touches the vector pipe, while the hybrid star kernel is vector-heavy
//! (paper: "Matrix Star & Box 40/0", "Matrix-Vector Star 16/48",
//! "Matrix-Vector Box 40/32").

use crate::fmt::{f2, Table};
use hstencil_core::{analysis, presets, Method};
use lx2_sim::MachineConfig;

/// Builds the cycle-ratio table.
pub fn table() -> Table {
    let cfg = MachineConfig::lx2();
    let mut t = Table::new("Table 5: matrix / vector occupancy cycles per 8x32 tile").header(&[
        "method",
        "matrix",
        "vector",
        "paper (m/v)",
    ]);
    let pc = |spec: &hstencil_core::StencilSpec, m: Method| {
        analysis::pipe_cycles(spec, m, &cfg, 4).expect("analysis run must succeed")
    };
    let mstar = pc(&presets::star2d9p(), Method::MatrixOnly);
    let mbox = pc(&presets::box2d25p(), Method::MatrixOnly);
    let hstar = pc(&presets::star2d9p(), Method::HStencil);
    let hbox = pc(&presets::box2d25p(), Method::HStencil);
    t.row(vec![
        "Matrix Star".into(),
        f2(mstar.matrix),
        f2(mstar.vector),
        "40 / 0".into(),
    ]);
    t.row(vec![
        "Matrix Box".into(),
        f2(mbox.matrix),
        f2(mbox.vector),
        "40 / 0".into(),
    ]);
    t.row(vec![
        "Matrix-Vector Star".into(),
        f2(hstar.matrix),
        f2(hstar.vector),
        "16 / 48".into(),
    ]);
    t.row(vec![
        "Matrix-Vector Box".into(),
        f2(hbox.matrix),
        f2(hbox.vector),
        "40 / 32".into(),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hybrid_star_is_vector_heavier_than_hybrid_box() {
        let cfg = MachineConfig::lx2();
        let hstar = analysis::pipe_cycles(&presets::star2d9p(), Method::HStencil, &cfg, 4).unwrap();
        let hbox = analysis::pipe_cycles(&presets::box2d25p(), Method::HStencil, &cfg, 4).unwrap();
        // Star offloads its inner axis to the vector pipe; box keeps the
        // matrix pipe dominant (Table 5's contrast).
        let star_ratio = hstar.vector / hstar.matrix.max(1e-9);
        let box_ratio = hbox.vector / hbox.matrix.max(1e-9);
        assert!(
            star_ratio > box_ratio,
            "star v/m {star_ratio:.2} vs box {box_ratio:.2}"
        );
    }
}
