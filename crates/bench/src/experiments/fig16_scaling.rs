//! Figure 16 — multi-core scaling of a Box-2D9P stencil on 8192×8192,
//! 1 to 32 cores (paper: HStencil 12.91 GStencil/s at 32 cores vs 7.76
//! matrix-only and 7.14 vector-only).

use crate::fmt::{f2, Table};
use crate::runner::workload_2d;
use hstencil_core::{presets, run_multicore, Method, StencilPlan};
use lx2_sim::MachineConfig;

/// Problem size (quick mode shrinks it to keep smoke runs fast).
fn size() -> usize {
    if super::quick() {
        1024
    } else {
        8192
    }
}

/// Builds the scaling table.
pub fn table() -> Table {
    let cfg = MachineConfig::lx2();
    let spec = presets::box2d9p();
    let n = size();
    let grid = workload_2d(n, n, spec.radius(), 42);
    let mut t = Table::new(format!(
        "Figure 16: scaling Box-2D9P at {n}x{n} (GStencil/s)"
    ))
    .header(&["cores", "Vector-only", "Matrix-only", "HStencil"]);
    for cores in super::core_counts() {
        let mut row = vec![cores.to_string()];
        for method in [Method::VectorOnly, Method::MatrixOnly, Method::HStencil] {
            let plan = StencilPlan::new(&spec, method).warmup(0);
            let (_, rep) = run_multicore(&plan, &spec, &cfg, &grid, cores)
                .unwrap_or_else(|e| panic!("{method} at {cores} cores: {e}"));
            row.push(f2(rep.gstencil_per_s()));
        }
        t.row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hstencil_scales_and_leads_at_high_core_counts() {
        let cfg = MachineConfig::lx2();
        let spec = presets::box2d9p();
        let grid = workload_2d(512, 512, 1, 42);
        let gs = |method: Method, cores: usize| {
            let plan = StencilPlan::new(&spec, method).warmup(0);
            run_multicore(&plan, &spec, &cfg, &grid, cores)
                .unwrap()
                .1
                .gstencil_per_s()
        };
        let h1 = gs(Method::HStencil, 1);
        let h8 = gs(Method::HStencil, 8);
        let m8 = gs(Method::MatrixOnly, 8);
        let v8 = gs(Method::VectorOnly, 8);
        assert!(h8 > 2.0 * h1, "HStencil should scale: {h1:.2} -> {h8:.2}");
        assert!(
            h8 > m8 && h8 > v8,
            "HStencil must lead: h={h8:.2} m={m8:.2} v={v8:.2}"
        );
    }
}
