//! Visualize how the §3.2.2 instruction schedule fills the pipes: emit
//! one HStencil tile with and without scheduling and render the issue
//! timeline (the lived-in version of the paper's Figure 10).
//!
//! ```sh
//! cargo run --release -p hstencil-bench --bin schedule_viz
//! ```

use hstencil_core::{presets, Kernel, KernelCtx, Method, Plane};
use lx2_isa::{Program, VLEN};
use lx2_sim::{execute_traced, Machine, MachineConfig};

fn trace_one_tile(scheduling: bool) {
    let cfg = MachineConfig::lx2();
    let spec = presets::star2d9p();
    let mut mach = Machine::new(&cfg);

    // A small private arena standing in for the grid.
    let stride = 64u64;
    let rows = 32usize;
    let region = mach.alloc(rows * stride as usize * 2, VLEN);
    for k in 0..(rows as u64 * stride) {
        mach.mem
            .write(region.base + k, (k % 97) as f64 * 0.01)
            .unwrap();
    }
    let origin = region.base + 2 * stride + 8;

    let mut opts = Method::HStencil.default_options();
    opts.scheduling = scheduling;
    opts.replacement = scheduling;
    let ctx = KernelCtx {
        h: 16,
        w: 32,
        stride,
        b0: origin + rows as u64 * stride,
        planes: vec![Plane {
            base: origin,
            table: spec.plane_table_2d(),
        }],
        radius: spec.radius(),
        opts,
    };

    let mut kernel = hstencil_core::kernels::inplace::InplaceKernel::new(true);
    kernel.setup(&ctx, &mut mach).expect("setup");
    let mut prog = Program::new();
    kernel.emit_tile(&ctx, 0, 0, &mut prog);

    // Warm the caches so the timeline shows the schedule, not cold misses.
    mach.execute(&prog).expect("warmup");
    let trace = execute_traced(&mut mach, &prog).expect("trace");
    println!(
        "== {} ==  ({} instructions, IPC {:.2}, {} bubble cycles)",
        if scheduling {
            "with scheduling"
        } else {
            "without scheduling"
        },
        trace.entries().len(),
        trace.ipc(),
        trace.bubble_cycles(),
    );
    println!("{}", trace.render_timeline(160));
}

fn main() {
    trace_one_tile(false);
    trace_one_tile(true);
    println!(
        "Legend: '#' one issue that cycle on that pipe, '2' more than one, \
         '.' idle.\nScheduling merges the prep/matrix/vector/store streams so \
         every pipe stays fed (paper Figure 10)."
    );
}
