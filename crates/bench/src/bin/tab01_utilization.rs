//! Regenerates Table 1 (matrix-unit utilization).
fn main() {
    hstencil_bench::experiments::tab01_utilization::table().emit("tab01_utilization");
    std::process::exit(hstencil_bench::runner::exit_code());
}
