//! Calibration probe: quick look at method cycle counts and IPC.
use hstencil_bench::fmt::{f2, Table};
use hstencil_bench::runner::run_method;
use hstencil_core::{presets, Method};
use lx2_sim::MachineConfig;

fn main() {
    let cfg = MachineConfig::lx2();
    for spec in [presets::star2d9p(), presets::box2d25p()] {
        let mut t = Table::new(format!("{} 128x128 (LX2)", spec.name()))
            .header(&["method", "cycles", "ipc", "cyc/pt", "util%", "L1%"]);
        let base = run_method(&cfg, &spec, Method::Auto, 128, 1, 1);
        for m in Method::ALL {
            if m == Method::MatrixOrtho && spec.name().starts_with("box") {
                continue;
            }
            let r = run_method(&cfg, &spec, m, 128, 1, 1);
            t.row(vec![
                m.label().into(),
                r.cycles().to_string(),
                f2(r.ipc()),
                format!("{:.3}", r.cycles_per_point()),
                r.matrix_utilization()
                    .map(|u| f2(u * 100.0))
                    .unwrap_or("-".into()),
                f2(r.l1_load_hit_rate() * 100.0),
            ]);
        }
        println!("{}", t.render());
        println!(
            "speedup HStencil vs auto: {:.2}x",
            run_method(&cfg, &spec, Method::HStencil, 128, 1, 1).speedup_over(&base)
        );
    }
}
