//! Regenerates Table 5 (matrix/vector instruction-cycle split).
fn main() {
    hstencil_bench::experiments::tab05_instr_ratio::table().emit("tab05_instr_ratio");
    std::process::exit(hstencil_bench::runner::exit_code());
}
