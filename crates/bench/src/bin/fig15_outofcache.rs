//! Regenerates Figure 15 (out-of-cache speedups with/without prefetch).
fn main() {
    hstencil_bench::experiments::fig15_outofcache::table().emit("fig15_outofcache");
    std::process::exit(hstencil_bench::runner::exit_code());
}
