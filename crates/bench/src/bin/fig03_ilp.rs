//! Regenerates Figure 3 (matrix/vector ILP microbenchmarks).
fn main() {
    let tables = hstencil_bench::experiments::fig03_ilp::run_all();
    tables[0].emit("fig03a_ilp_throughput");
    tables[1].emit("fig03b_ilp_overlap");
    std::process::exit(hstencil_bench::runner::exit_code());
}
