//! Runs every experiment in DESIGN.md §4 and archives the tables under
//! `results/`. Set `HSTENCIL_QUICK=1` for a fast smoke pass.
use hstencil_bench::experiments as ex;

fn main() {
    let t0 = std::time::Instant::now();
    let stamp = |name: &str| {
        eprintln!("[{:8.1?}] finished {name}", t0.elapsed());
    };
    let t = ex::fig03_ilp::run_all();
    t[0].emit("fig03a_ilp_throughput");
    t[1].emit("fig03b_ilp_overlap");
    stamp("fig03");
    ex::tab01_utilization::table().emit("tab01_utilization");
    stamp("tab01");
    ex::tab02_ipc::table().emit("tab02_ipc");
    stamp("tab02");
    ex::tab05_instr_ratio::table().emit("tab05_instr_ratio");
    stamp("tab05");
    let t = ex::fig12_incache::run_all();
    t[0].emit("fig12_incache_2d");
    t[1].emit("fig12_incache_3d");
    stamp("fig12");
    let t = ex::fig13_breakdown::run_all();
    t[0].emit("fig13a_breakdown_star");
    t[1].emit("fig13b_breakdown_box");
    stamp("fig13");
    ex::fig14_ipc::table().emit("fig14_ipc");
    stamp("fig14");
    ex::tab03_cache_hit::table().emit("tab03_cache_hit");
    stamp("tab03");
    ex::fig15_outofcache::table().emit("fig15_outofcache");
    stamp("fig15");
    ex::tab07_prefetch_cache::table().emit("tab07_prefetch_cache");
    stamp("tab07");
    ex::fig16_scaling::table().emit("fig16_scaling");
    stamp("fig16");
    ex::fig17_m4_incache::table().emit("fig17_m4_incache");
    stamp("fig17");
    ex::fig18_m4_outofcache::table().emit("fig18_m4_outofcache");
    stamp("fig18");
    eprintln!("all experiments done in {:?}", t0.elapsed());
    std::process::exit(hstencil_bench::runner::exit_code());
}
