//! Ablation sweeps over HStencil's design parameters — the knobs
//! DESIGN.md calls out: register blocks (§3.1.2), the scheduling and
//! replacement switches (§3.2), prefetch distance and Y-block size
//! (§3.3 / Algorithm 2's partition).
//!
//! ```sh
//! cargo run --release -p hstencil-bench --bin ablation
//! ```

use hstencil_bench::fmt::{f2, Table};
use hstencil_bench::runner::workload_2d;
use hstencil_core::{presets, Method, StencilPlan};
use lx2_sim::MachineConfig;

fn cycles(plan: StencilPlan, n: usize, r: usize) -> u64 {
    let grid = workload_2d(n, n, r, 42);
    plan.warmup(if n <= 256 { 1 } else { 0 })
        .verify(n <= 256)
        .run_2d(&MachineConfig::lx2(), &grid)
        .expect("ablation run")
        .report
        .cycles()
}

fn reg_blocks_sweep() -> Table {
    let spec = presets::box2d25p();
    let mut t = Table::new("Ablation: register blocks (multi-register kernel, §3.1.2)").header(&[
        "reg_blocks",
        "cycles @128",
        "speedup vs rb=1",
    ]);
    let base = cycles(
        StencilPlan::new(&spec, Method::HStencil).reg_blocks(1),
        128,
        2,
    );
    for rb in 1..=4usize {
        let c = cycles(
            StencilPlan::new(&spec, Method::HStencil).reg_blocks(rb),
            128,
            2,
        );
        t.row(vec![
            rb.to_string(),
            c.to_string(),
            format!("{}x", f2(base as f64 / c as f64)),
        ]);
    }
    t
}

fn switch_matrix() -> Table {
    let spec = presets::star2d9p();
    let mut t = Table::new("Ablation: scheduling x replacement x prefetch (star2d9p @128)")
        .header(&["sched", "repl", "prefetch", "cycles", "vs all-off"]);
    let base = cycles(
        StencilPlan::new(&spec, Method::HStencil)
            .scheduling(false)
            .replacement(false)
            .prefetch(false),
        128,
        2,
    );
    for sched in [false, true] {
        for repl in [false, true] {
            for pf in [false, true] {
                let c = cycles(
                    StencilPlan::new(&spec, Method::HStencil)
                        .scheduling(sched)
                        .replacement(repl)
                        .prefetch(pf),
                    128,
                    2,
                );
                t.row(vec![
                    sched.to_string(),
                    repl.to_string(),
                    pf.to_string(),
                    c.to_string(),
                    format!("{}x", f2(base as f64 / c as f64)),
                ]);
            }
        }
    }
    t
}

fn prefetch_dist_sweep() -> Table {
    let spec = presets::box2d25p();
    let mut t = Table::new("Ablation: prefetch distance (rows ahead) on 2048x2048").header(&[
        "distance",
        "cycles",
        "vs no prefetch",
    ]);
    let base = cycles(
        StencilPlan::new(&spec, Method::HStencil).prefetch(false),
        2048,
        2,
    );
    t.row(vec!["off".into(), base.to_string(), "1.00x".into()]);
    for dist in [1usize, 2, 4, 6, 8] {
        let c = cycles(
            StencilPlan::new(&spec, Method::HStencil)
                .prefetch(true)
                .prefetch_dist(dist),
            2048,
            2,
        );
        t.row(vec![
            dist.to_string(),
            c.to_string(),
            format!("{}x", f2(base as f64 / c as f64)),
        ]);
    }
    t
}

fn hand_vs_auto_schedule() -> Table {
    let spec = presets::star2d9p();
    let mut t = Table::new("Ablation: hand-written interleave vs automatic list scheduler")
        .header(&["variant", "cycles @128", "vs phased"]);
    let phased = cycles(
        StencilPlan::new(&spec, Method::HStencil)
            .scheduling(false)
            .replacement(false),
        128,
        2,
    );
    let hand = cycles(StencilPlan::new(&spec, Method::HStencil), 128, 2);
    let auto = cycles(
        StencilPlan::new(&spec, Method::HStencil)
            .scheduling(false)
            .replacement(false)
            .auto_schedule(true),
        128,
        2,
    );
    let both = cycles(
        StencilPlan::new(&spec, Method::HStencil).auto_schedule(true),
        128,
        2,
    );
    for (label, c) in [
        ("phased (no scheduling)", phased),
        ("auto list scheduler", auto),
        ("hand interleave (paper)", hand),
        ("hand + auto", both),
    ] {
        t.row(vec![
            label.into(),
            c.to_string(),
            format!("{}x", f2(phased as f64 / c as f64)),
        ]);
    }
    t
}

fn main() {
    reg_blocks_sweep().emit("ablation_reg_blocks");
    switch_matrix().emit("ablation_switches");
    prefetch_dist_sweep().emit("ablation_prefetch_dist");
    hand_vs_auto_schedule().emit("ablation_auto_schedule");
    std::process::exit(hstencil_bench::runner::exit_code());
}
