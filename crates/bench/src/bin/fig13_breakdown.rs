//! Regenerates Figure 13 (optimization breakdown on r=2 stencils).
fn main() {
    let tables = hstencil_bench::experiments::fig13_breakdown::run_all();
    tables[0].emit("fig13a_breakdown_star");
    tables[1].emit("fig13b_breakdown_box");
    std::process::exit(hstencil_bench::runner::exit_code());
}
