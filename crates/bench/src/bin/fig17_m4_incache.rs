//! Regenerates Figure 17 (Apple M4 in-cache speedups).
fn main() {
    hstencil_bench::experiments::fig17_m4_incache::table().emit("fig17_m4_incache");
    std::process::exit(hstencil_bench::runner::exit_code());
}
