//! Regenerates Figure 14 (IPC comparison across the 2-D suite).
fn main() {
    hstencil_bench::experiments::fig14_ipc::table().emit("fig14_ipc");
    std::process::exit(hstencil_bench::runner::exit_code());
}
