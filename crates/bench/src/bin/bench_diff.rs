//! Perf diff between two `BENCH_native.json` artifacts.
//!
//! ```text
//! bench_diff OLD.json NEW.json [--threshold=0.90] [--fail-on-regression]
//! ```
//!
//! Prints one line per (stencil, size, sweeps, threads, kernel) case
//! present in both files with the `old_median / new_median` ratio
//! (> 1.00 means NEW is faster), and flags cases whose ratio falls
//! below the threshold as regressions. Cases present in only one file
//! are listed as added/removed. Exit code is 0 unless
//! `--fail-on-regression` is passed and at least one case regressed —
//! the default is report-only, which is how `scripts/verify.sh` runs
//! it against the committed baseline (smoke samples are far too noisy
//! to gate on; the real gates live in `check_bench_json`).
//!
//! After the per-case diff, a scaling section lists every
//! (stencil, size, sweeps, kernel) config measured at more than one
//! thread count, with its t-vs-t1 wall-clock ratios in OLD and NEW side
//! by side — so a change that leaves single-thread medians intact but
//! flattens the multi-core curve is visible in the report, not just in
//! the raw per-thread rows.
//!
//! Exit codes: 0 ok/report-only, 1 regression (with
//! `--fail-on-regression`) or malformed input, 2 unreadable file.

use hstencil_testkit::Json;
use std::collections::BTreeMap;

fn fail(code: i32, msg: String) -> ! {
    eprintln!("bench_diff: {msg}");
    std::process::exit(code);
}

/// `case key -> median_s`, min over duplicate rows (a kernel can appear
/// in more than one bench group; best-vs-best is the stable comparison).
fn load(path: &str) -> BTreeMap<String, f64> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => fail(2, format!("cannot read {path}: {e}")),
    };
    let doc = match Json::parse(&text) {
        Ok(d) => d,
        Err(e) => fail(1, format!("{path}: {e}")),
    };
    let results = match doc.get("results").and_then(Json::as_array) {
        Some(r) => r,
        None => fail(1, format!("{path}: 'results' is not an array")),
    };
    let mut cases = BTreeMap::new();
    for (i, row) in results.iter().enumerate() {
        let field = |key: &str| {
            row.get(key)
                .and_then(Json::as_f64)
                .unwrap_or_else(|| fail(1, format!("{path}: results[{i}] lacks numeric '{key}'")))
        };
        let stencil = row
            .get("stencil")
            .and_then(Json::as_str)
            .unwrap_or_else(|| fail(1, format!("{path}: results[{i}] lacks 'stencil'")));
        let kernel = row.get("kernel").and_then(Json::as_str).unwrap_or("-");
        // Rows recorded before the dtype axis existed are all f64; f64
        // keeps the bare key so old and new artifacts stay comparable,
        // other dtypes get their own cases instead of colliding.
        let dtype = row.get("dtype").and_then(Json::as_str).unwrap_or("f64");
        let dtype_seg = if dtype == "f64" {
            String::new()
        } else {
            format!("/{dtype}")
        };
        let key = format!(
            "{stencil}/{}{dtype_seg}/s{}/t{}/{kernel}",
            field("size"),
            field("sweeps"),
            field("threads")
        );
        let median = field("median_s");
        cases
            .entry(key)
            .and_modify(|m: &mut f64| *m = m.min(median))
            .or_insert(median);
    }
    cases
}

fn main() {
    let mut paths = Vec::new();
    let mut threshold = 0.90f64;
    let mut fail_on_regression = false;
    for arg in std::env::args().skip(1) {
        if let Some(t) = arg.strip_prefix("--threshold=") {
            threshold = t
                .parse()
                .unwrap_or_else(|_| fail(1, format!("bad --threshold value '{t}'")));
        } else if arg == "--fail-on-regression" {
            fail_on_regression = true;
        } else if arg.starts_with("--") {
            fail(1, format!("unknown flag '{arg}'"));
        } else {
            paths.push(arg);
        }
    }
    if paths.len() != 2 {
        fail(
            1,
            "usage: bench_diff OLD.json NEW.json [--threshold=0.90] [--fail-on-regression]".into(),
        );
    }
    let (old, new) = (load(&paths[0]), load(&paths[1]));

    let mut regressions = 0usize;
    let mut compared = 0usize;
    for (key, &old_s) in &old {
        let Some(&new_s) = new.get(key) else {
            println!("removed    {key} (old {old_s:.4}s)");
            continue;
        };
        compared += 1;
        let ratio = old_s / new_s;
        let mark = if ratio < threshold {
            regressions += 1;
            "REGRESSED"
        } else if ratio > 1.0 / threshold {
            "improved "
        } else {
            "ok       "
        };
        println!("{mark}  {key}: {ratio:.2}x (old {old_s:.4}s -> new {new_s:.4}s)");
    }
    for (key, &new_s) in &new {
        if !old.contains_key(key) {
            println!("added      {key} (new {new_s:.4}s)");
        }
    }
    // Per-thread-count scaling: fold each artifact's cases into
    // (stencil/size/sweeps/kernel) -> threads -> median and report the
    // t-vs-t1 ratio curves side by side. `curves` keys look like
    // "star2d5p/4096/s1/{t}/avx2+fma" with the thread segment abstracted
    // out.
    let curves = |cases: &BTreeMap<String, f64>| -> BTreeMap<String, BTreeMap<u64, f64>> {
        let mut out: BTreeMap<String, BTreeMap<u64, f64>> = BTreeMap::new();
        for (key, &median) in cases {
            let parts: Vec<&str> = key.split('/').collect();
            // stencil/size/sweeps/threads/kernel — skip anything else.
            let [stencil, size, sweeps, threads, kernel] = parts[..] else {
                continue;
            };
            let Some(t) = threads
                .strip_prefix('t')
                .and_then(|t| t.parse::<f64>().ok())
            else {
                continue;
            };
            let base = format!("{stencil}/{size}/{sweeps}/{{t}}/{kernel}");
            out.entry(base).or_default().insert(t as u64, median);
        }
        out.retain(|_, by_t| by_t.len() > 1 && by_t.contains_key(&1));
        out
    };
    let (old_curves, new_curves) = (curves(&old), curves(&new));
    let mut bases: Vec<&String> = old_curves.keys().chain(new_curves.keys()).collect();
    bases.sort();
    bases.dedup();
    if !bases.is_empty() {
        println!("--- scaling (t-vs-t1 wall-clock ratio; higher is better) ---");
    }
    for base in bases {
        let render = |c: Option<&BTreeMap<u64, f64>>| -> String {
            let Some(by_t) = c else {
                return "absent".to_string();
            };
            let one = by_t[&1];
            by_t.iter()
                .filter(|(t, _)| **t > 1)
                .map(|(t, m)| format!("t{t} {:.2}x", one / m))
                .collect::<Vec<_>>()
                .join(", ")
        };
        println!(
            "scaling    {base}: old [{}] -> new [{}]",
            render(old_curves.get(base)),
            render(new_curves.get(base))
        );
    }
    println!(
        "bench_diff: {compared} cases compared, {regressions} below the {threshold:.2} threshold"
    );
    if fail_on_regression && regressions > 0 {
        std::process::exit(1);
    }
}
