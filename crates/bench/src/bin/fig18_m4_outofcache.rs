//! Regenerates Figure 18 (Apple M4 out-of-cache optimization stack).
fn main() {
    hstencil_bench::experiments::fig18_m4_outofcache::table().emit("fig18_m4_outofcache");
    std::process::exit(hstencil_bench::runner::exit_code());
}
