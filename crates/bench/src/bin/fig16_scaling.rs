//! Regenerates Figure 16 (multi-core scaling, Box-2D9P).
fn main() {
    hstencil_bench::experiments::fig16_scaling::table().emit("fig16_scaling");
    std::process::exit(hstencil_bench::runner::exit_code());
}
