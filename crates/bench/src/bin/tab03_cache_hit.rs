//! Regenerates Table 3 (L1 hit rates on out-of-cache stencils).
fn main() {
    hstencil_bench::experiments::tab03_cache_hit::table().emit("tab03_cache_hit");
    std::process::exit(hstencil_bench::runner::exit_code());
}
