//! Regenerates Figure 12 (in-cache speedups, 2-D and 3-D suites).
fn main() {
    let tables = hstencil_bench::experiments::fig12_incache::run_all();
    tables[0].emit("fig12_incache_2d");
    tables[1].emit("fig12_incache_3d");
    std::process::exit(hstencil_bench::runner::exit_code());
}
