//! CI gate for `BENCH_native.json` (scripts/verify.sh): the file must
//! exist, parse with the testkit JSON reader, and carry the
//! median/p10/p90 + throughput fields for at least six
//! (stencil, size, sweeps, threads) configurations.
//!
//! Optional perf gates: `--gate-temporal=SIZE:MINRATIO` fails unless
//! the star2d5p multi-sweep rows at `SIZE` show
//! `naive_median / temporal_median >= MINRATIO` (e.g. `4096:1.3` pins
//! the recorded temporal speedup; `2048:0.91` lets a smoke run tolerate
//! 10% noise but still catches the pipeline regressing to slower than
//! the naive ping-pong). `--gate-hybrid=SIZE:MINRATIO` does the same
//! for the single-sweep single-thread star2d5p rows: best avx2+fma
//! median / best hybrid8x8 median must reach MINRATIO (the acceptance
//! gate is `4096:1.10`; smoke runs use a loose `4096:0.9`). Both may be
//! passed more than once.
//!
//! `--gate-threads=SIZE:LANES:MINRATIO` gates multi-core scaling: the
//! best single-sweep star2d5p median at `LANES` threads must beat the
//! best at 1 thread by `MINRATIO` (the acceptance gate is
//! `4096:4:1.6`). When the artifact's recorded `host_threads` is below
//! `LANES` the gate is *skipped with a notice* rather than failed — a
//! 1-core recorder cannot genuinely run 4 lanes, and failing there
//! would just teach people to delete the gate. All gate flags may be
//! passed more than once.
//!
//! `--gate-f32=SIZE:MINRATIO` gates element-width scaling: the best
//! single-sweep single-thread star2d5p f64 median at `SIZE` divided by
//! the best f32 median must reach `MINRATIO` (the acceptance gate is
//! `256:1.3` — in-cache, f32 retires twice the lanes per FMA). When
//! the artifact carries *no* f32 rows at `SIZE` — recorded before the
//! `native2d_f32` group existed, or by a bench tier that skipped it —
//! the gate is skipped with a notice naming the absent group, never
//! silently passed and never failed. The pre-dtype gates above always
//! compare f64 rows only (rows without a `dtype` field are f64).
//!
//! Exit codes: 0 ok, 1 malformed/incomplete/gate failure, 2
//! missing/unreadable.

use hstencil_testkit::Json;

/// Outcome of one `--gate-f32` evaluation, factored pure so the
/// absent-group skip contract is unit-testable.
#[derive(Debug, PartialEq)]
enum F32Gate {
    /// Ratio met the bound.
    Ok(f64),
    /// The artifact has no f32 rows at this size — skip with a notice.
    Skipped(String),
    /// Rows present, ratio below the bound.
    Fail(String),
}

/// Evaluates one f32 gate over `(size, dtype, median_s)` tuples of the
/// single-sweep single-thread non-seed star2d5p rows.
fn eval_f32_gate(rows: &[(f64, String, f64)], size: f64, min_ratio: f64) -> F32Gate {
    let best = |dtype: &str| {
        rows.iter()
            .filter(|(s, d, _)| *s == size && d == dtype)
            .map(|(_, _, m)| *m)
            .min_by(f64::total_cmp)
    };
    let f32_best = match best("f32") {
        Some(m) if m > 0.0 => m,
        _ => {
            return F32Gate::Skipped(format!(
                "f32 gate {size}^2 SKIPPED (no f32 rows at this size — the artifact \
                 predates the native2d_f32 bench group or the recording tier skipped it)"
            ))
        }
    };
    let f64_best = match best("f64") {
        Some(m) if m > 0.0 => m,
        _ => {
            return F32Gate::Fail(format!(
                "f32 rows exist at {size}^2 but no f64 denominator row does"
            ))
        }
    };
    let ratio = f64_best / f32_best;
    if ratio < min_ratio {
        F32Gate::Fail(format!(
            "f32 speedup at {size}^2 is {ratio:.3}x (f64 {f64_best:.4}s / \
             f32 {f32_best:.4}s), below the {min_ratio} gate"
        ))
    } else {
        F32Gate::Ok(ratio)
    }
}

fn fail(code: i32, msg: String) -> ! {
    eprintln!("check_bench_json: {msg}");
    std::process::exit(code);
}

fn main() {
    let mut path: Option<String> = None;
    let mut gates: Vec<(f64, f64)> = Vec::new();
    let mut hybrid_gates: Vec<(f64, f64)> = Vec::new();
    let mut thread_gates: Vec<(f64, f64, f64)> = Vec::new();
    let mut f32_gates: Vec<(f64, f64)> = Vec::new();
    let parse_gate = |flag: &str, spec: &str| -> (f64, f64) {
        spec.split_once(':')
            .and_then(|(size, ratio)| Some((size.parse::<f64>().ok()?, ratio.parse::<f64>().ok()?)))
            .unwrap_or_else(|| fail(1, format!("bad {flag} spec '{spec}' (want SIZE:MINRATIO)")))
    };
    let parse_thread_gate = |spec: &str| -> (f64, f64, f64) {
        let mut it = spec.split(':');
        match (
            it.next().and_then(|s| s.parse::<f64>().ok()),
            it.next().and_then(|s| s.parse::<f64>().ok()),
            it.next().and_then(|s| s.parse::<f64>().ok()),
            it.next(),
        ) {
            (Some(size), Some(lanes), Some(ratio), None) if lanes >= 2.0 => (size, lanes, ratio),
            _ => fail(
                1,
                format!("bad --gate-threads spec '{spec}' (want SIZE:LANES:MINRATIO, LANES >= 2)"),
            ),
        }
    };
    for arg in std::env::args().skip(1) {
        if let Some(spec) = arg.strip_prefix("--gate-temporal=") {
            gates.push(parse_gate("--gate-temporal", spec));
        } else if let Some(spec) = arg.strip_prefix("--gate-hybrid=") {
            hybrid_gates.push(parse_gate("--gate-hybrid", spec));
        } else if let Some(spec) = arg.strip_prefix("--gate-threads=") {
            thread_gates.push(parse_thread_gate(spec));
        } else if let Some(spec) = arg.strip_prefix("--gate-f32=") {
            f32_gates.push(parse_gate("--gate-f32", spec));
        } else {
            path = Some(arg);
        }
    }
    let path = path.unwrap_or_else(|| "BENCH_native.json".to_string());
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => fail(2, format!("cannot read {path}: {e}")),
    };
    let doc = match Json::parse(&text) {
        Ok(d) => d,
        Err(e) => fail(1, format!("{path}: {e}")),
    };
    if doc.get("bench").and_then(Json::as_str) != Some("native_executor_v2") {
        fail(1, format!("{path}: missing or wrong 'bench' tag"));
    }
    let results = match doc.get("results").and_then(Json::as_array) {
        Some(r) => r,
        None => fail(1, format!("{path}: 'results' is not an array")),
    };
    let mut configs = std::collections::BTreeSet::new();
    // (size, kernel) -> median_s, for the star2d5p multi-sweep gates.
    let mut multisweep: Vec<(f64, String, f64)> = Vec::new();
    // (size, kernel) -> median_s for the single-sweep single-thread
    // star2d5p rows (the hybrid-kernel gate). A kernel can appear in
    // both the main and the hybrid bench group; keep every row and
    // compare best against best.
    let mut single: Vec<(f64, String, f64)> = Vec::new();
    // (size, threads) -> median_s across every single-sweep star2d5p
    // row (the scaling gate compares best-of-any-kernel at LANES
    // against best-of-any-kernel at 1 thread).
    let mut scaling: Vec<(f64, f64, f64)> = Vec::new();
    // (size, dtype) -> median_s for the single-sweep single-thread
    // non-seed star2d5p rows at every element width (the f32 gate).
    let mut widths: Vec<(f64, String, f64)> = Vec::new();
    for (i, row) in results.iter().enumerate() {
        let stencil = row
            .get("stencil")
            .and_then(Json::as_str)
            .unwrap_or_else(|| fail(1, format!("{path}: results[{i}] lacks 'stencil'")));
        for key in ["median_s", "p10_s", "p90_s", "elems_per_s"] {
            match row.get(key).and_then(Json::as_f64) {
                Some(v) if v > 0.0 && v.is_finite() => {}
                _ => fail(
                    1,
                    format!("{path}: results[{i}] ({stencil}) lacks positive '{key}'"),
                ),
            }
        }
        let size = row
            .get("size")
            .and_then(Json::as_f64)
            .unwrap_or_else(|| fail(1, format!("{path}: results[{i}] ({stencil}) lacks 'size'")));
        let sweeps = match row.get("sweeps").and_then(Json::as_f64) {
            Some(s) if s >= 1.0 => s,
            _ => fail(
                1,
                format!("{path}: results[{i}] ({stencil}) lacks positive 'sweeps'"),
            ),
        };
        let threads = row
            .get("threads")
            .and_then(Json::as_f64)
            .unwrap_or_else(|| {
                fail(
                    1,
                    format!("{path}: results[{i}] ({stencil}) lacks 'threads'"),
                )
            });
        // Rows recorded before the dtype axis existed are all f64.
        let dtype = row.get("dtype").and_then(Json::as_str).unwrap_or("f64");
        if stencil == "star2d5p" && sweeps > 1.0 && dtype == "f64" {
            let kernel = row
                .get("kernel")
                .and_then(Json::as_str)
                .unwrap_or_else(|| fail(1, format!("{path}: results[{i}] lacks 'kernel'")));
            let median = row.get("median_s").and_then(Json::as_f64).unwrap();
            multisweep.push((size, kernel.to_string(), median));
        }
        if stencil == "star2d5p" && sweeps == 1.0 && threads == 1.0 {
            if let Some(kernel) = row.get("kernel").and_then(Json::as_str) {
                let median = row.get("median_s").and_then(Json::as_f64).unwrap();
                if dtype == "f64" {
                    single.push((size, kernel.to_string(), median));
                }
                if kernel != "seed" {
                    widths.push((size, dtype.to_string(), median));
                }
            }
        }
        if stencil == "star2d5p" && sweeps == 1.0 && dtype == "f64" {
            if let Some(kernel) = row.get("kernel").and_then(Json::as_str) {
                // The seed executor ignores the pool; keep it out of
                // the scaling denominator.
                if kernel != "seed" {
                    let median = row.get("median_s").and_then(Json::as_f64).unwrap();
                    scaling.push((size, threads, median));
                }
            }
        }
        configs.insert(format!("{stencil}/{size}/s{sweeps}/{threads}"));
    }
    if configs.len() < 6 {
        fail(
            1,
            format!(
                "{path}: only {} distinct (stencil, size, sweeps, threads) configurations; need >= 6",
                configs.len()
            ),
        );
    }
    for (size, min_ratio) in &gates {
        let median = |kernel: &str| {
            multisweep
                .iter()
                .find(|(s, k, _)| s == size && k == kernel)
                .map(|(_, _, m)| *m)
        };
        let (naive, temporal) = match (median("naive"), median("temporal")) {
            (Some(n), Some(t)) if t > 0.0 => (n, t),
            _ => fail(
                1,
                format!("{path}: no star2d5p multi-sweep naive/temporal pair at size {size}"),
            ),
        };
        let ratio = naive / temporal;
        if ratio < *min_ratio {
            fail(
                1,
                format!(
                    "{path}: temporal speedup at {size}^2 is {ratio:.3}x (naive {naive:.4}s / \
                     temporal {temporal:.4}s), below the {min_ratio} gate"
                ),
            );
        }
        println!("check_bench_json: temporal gate {size}^2 ok ({ratio:.2}x >= {min_ratio})");
    }
    for (size, min_ratio) in &hybrid_gates {
        let best_median = |kernel: &str| {
            single
                .iter()
                .filter(|(s, k, _)| s == size && k == kernel)
                .map(|(_, _, m)| *m)
                .min_by(f64::total_cmp)
        };
        let (canon, hybrid) = match (best_median("avx2+fma"), best_median("hybrid8x8")) {
            (Some(c), Some(h)) if h > 0.0 => (c, h),
            _ => fail(
                1,
                format!("{path}: no star2d5p single-sweep avx2+fma/hybrid8x8 pair at size {size}"),
            ),
        };
        let ratio = canon / hybrid;
        if ratio < *min_ratio {
            fail(
                1,
                format!(
                    "{path}: hybrid speedup at {size}^2 is {ratio:.3}x (avx2+fma {canon:.4}s / \
                     hybrid8x8 {hybrid:.4}s), below the {min_ratio} gate"
                ),
            );
        }
        println!("check_bench_json: hybrid gate {size}^2 ok ({ratio:.2}x >= {min_ratio})");
    }
    let host_threads = doc.get("host_threads").and_then(Json::as_f64);
    for (size, lanes, min_ratio) in &thread_gates {
        match host_threads {
            Some(h) if h >= *lanes => {}
            _ => {
                let host = host_threads
                    .map(|h| format!("{h}"))
                    .unwrap_or_else(|| "an unrecorded number of".to_string());
                println!(
                    "check_bench_json: threads gate {size}^2 t{lanes} SKIPPED \
                     (artifact recorded on a host with {host} threads; \
                     {lanes} lanes cannot genuinely run in parallel there)"
                );
                continue;
            }
        }
        let best_at = |threads: f64| {
            scaling
                .iter()
                .filter(|(s, t, _)| *s == *size && *t == threads)
                .map(|(_, _, m)| *m)
                .min_by(f64::total_cmp)
        };
        let (one, many) = match (best_at(1.0), best_at(*lanes)) {
            (Some(o), Some(m)) if m > 0.0 => (o, m),
            _ => fail(
                1,
                format!(
                    "{path}: no star2d5p single-sweep rows at size {size} for both \
                     1 and {lanes} threads (run the scaling bench tier)"
                ),
            ),
        };
        let ratio = one / many;
        if ratio < *min_ratio {
            fail(
                1,
                format!(
                    "{path}: scaling at {size}^2 is {ratio:.3}x at {lanes} threads \
                     (t1 {one:.4}s / t{lanes} {many:.4}s), below the {min_ratio} gate"
                ),
            );
        }
        println!(
            "check_bench_json: threads gate {size}^2 t{lanes} ok ({ratio:.2}x >= {min_ratio})"
        );
    }
    for (size, min_ratio) in &f32_gates {
        match eval_f32_gate(&widths, *size, *min_ratio) {
            F32Gate::Ok(ratio) => {
                println!("check_bench_json: f32 gate {size}^2 ok ({ratio:.2}x >= {min_ratio})")
            }
            F32Gate::Skipped(notice) => println!("check_bench_json: {notice}"),
            F32Gate::Fail(msg) => fail(1, format!("{path}: {msg}")),
        }
    }
    println!(
        "check_bench_json: {path} ok ({} rows, {} configurations)",
        results.len(),
        configs.len()
    );
}

#[cfg(test)]
mod tests {
    use super::{eval_f32_gate, F32Gate};

    fn row(size: f64, dtype: &str, median: f64) -> (f64, String, f64) {
        (size, dtype.to_string(), median)
    }

    #[test]
    fn absent_f32_rows_skip_with_notice_instead_of_passing_silently() {
        let rows = [row(256.0, "f64", 1.0e-4)];
        match eval_f32_gate(&rows, 256.0, 1.3) {
            F32Gate::Skipped(notice) => {
                assert!(notice.contains("SKIPPED"), "notice: {notice}");
                assert!(notice.contains("256"), "notice names the size: {notice}");
            }
            other => panic!("expected Skipped, got {other:?}"),
        }
        // A different size with f32 rows present is unaffected.
        let rows = [row(256.0, "f64", 1.0e-4), row(512.0, "f32", 1.0e-4)];
        assert!(matches!(
            eval_f32_gate(&rows, 256.0, 1.3),
            F32Gate::Skipped(_)
        ));
    }

    #[test]
    fn ratio_uses_the_best_median_per_dtype() {
        let rows = [
            row(256.0, "f64", 2.0e-4),
            row(256.0, "f64", 1.5e-4), // best f64
            row(256.0, "f32", 3.0e-4),
            row(256.0, "f32", 1.0e-4), // best f32
        ];
        match eval_f32_gate(&rows, 256.0, 1.3) {
            F32Gate::Ok(ratio) => assert!((ratio - 1.5).abs() < 1e-12, "ratio: {ratio}"),
            other => panic!("expected Ok, got {other:?}"),
        }
    }

    #[test]
    fn ratio_below_the_bound_fails_with_both_medians_in_the_message() {
        let rows = [row(256.0, "f64", 1.0e-4), row(256.0, "f32", 1.0e-4)];
        match eval_f32_gate(&rows, 256.0, 1.3) {
            F32Gate::Fail(msg) => {
                assert!(msg.contains("1.000x"), "msg: {msg}");
                assert!(msg.contains("below the 1.3 gate"), "msg: {msg}");
            }
            other => panic!("expected Fail, got {other:?}"),
        }
    }

    #[test]
    fn missing_f64_denominator_is_a_hard_failure_not_a_skip() {
        let rows = [row(256.0, "f32", 1.0e-4)];
        assert!(matches!(eval_f32_gate(&rows, 256.0, 1.3), F32Gate::Fail(_)));
    }
}
