//! CI gate for `BENCH_native.json` (scripts/verify.sh): the file must
//! exist, parse with the testkit JSON reader, and carry the
//! median/p10/p90 + throughput fields for at least six
//! (stencil, size, threads) configurations.
//!
//! Exit codes: 0 ok, 1 malformed/incomplete, 2 missing/unreadable.

use hstencil_testkit::Json;

fn fail(code: i32, msg: String) -> ! {
    eprintln!("check_bench_json: {msg}");
    std::process::exit(code);
}

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_native.json".to_string());
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => fail(2, format!("cannot read {path}: {e}")),
    };
    let doc = match Json::parse(&text) {
        Ok(d) => d,
        Err(e) => fail(1, format!("{path}: {e}")),
    };
    if doc.get("bench").and_then(Json::as_str) != Some("native_executor_v2") {
        fail(1, format!("{path}: missing or wrong 'bench' tag"));
    }
    let results = match doc.get("results").and_then(Json::as_array) {
        Some(r) => r,
        None => fail(1, format!("{path}: 'results' is not an array")),
    };
    let mut configs = std::collections::BTreeSet::new();
    for (i, row) in results.iter().enumerate() {
        let stencil = row
            .get("stencil")
            .and_then(Json::as_str)
            .unwrap_or_else(|| fail(1, format!("{path}: results[{i}] lacks 'stencil'")));
        for key in ["median_s", "p10_s", "p90_s", "elems_per_s"] {
            match row.get(key).and_then(Json::as_f64) {
                Some(v) if v > 0.0 && v.is_finite() => {}
                _ => fail(
                    1,
                    format!("{path}: results[{i}] ({stencil}) lacks positive '{key}'"),
                ),
            }
        }
        let size = row
            .get("size")
            .and_then(Json::as_f64)
            .unwrap_or_else(|| fail(1, format!("{path}: results[{i}] ({stencil}) lacks 'size'")));
        let threads = row
            .get("threads")
            .and_then(Json::as_f64)
            .unwrap_or_else(|| {
                fail(
                    1,
                    format!("{path}: results[{i}] ({stencil}) lacks 'threads'"),
                )
            });
        configs.insert(format!("{stencil}/{size}/{threads}"));
    }
    if configs.len() < 6 {
        fail(
            1,
            format!(
                "{path}: only {} distinct (stencil, size, threads) configurations; need >= 6",
                configs.len()
            ),
        );
    }
    println!(
        "check_bench_json: {path} ok ({} rows, {} configurations)",
        results.len(),
        configs.len()
    );
}
