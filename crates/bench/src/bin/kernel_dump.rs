//! Dump the disassembly of one emitted tile for any method — the
//! "show me the kernel" tool for inspecting what each builder generates.
//!
//! ```sh
//! cargo run --release -p hstencil-bench --bin kernel_dump [method] [stencil]
//! # e.g.
//! cargo run --release -p hstencil-bench --bin kernel_dump hstencil star2d9p
//! ```

use hstencil_core::kernels::{
    auto::AutoKernel, inplace::InplaceKernel, m4star::M4StarKernel,
    naive_hybrid::NaiveHybridKernel, ortho::OrthoKernel, vector::VectorKernel, Kernel, KernelCtx,
    Plane,
};
use hstencil_core::{presets, Method, StencilSpec};
use lx2_isa::{Program, VLEN};
use lx2_sim::{Machine, MachineConfig};

fn spec_by_name(name: &str) -> StencilSpec {
    presets::suite_2d()
        .into_iter()
        .find(|s| s.name() == name)
        .unwrap_or_else(|| panic!("unknown stencil {name}; try star2d9p, box2d25p, heat2d, ..."))
}

fn kernel_for(method: Method, m4: bool) -> Box<dyn Kernel> {
    match method {
        Method::Auto => Box::new(AutoKernel::new(
            if m4 { 2 } else { 8 },
            if m4 { 8 } else { 3 },
        )),
        Method::VectorOnly => Box::new(VectorKernel::new()),
        Method::MatrixOnly => Box::new(InplaceKernel::new_stop()),
        Method::MatrixOrtho => Box::new(OrthoKernel::new()),
        Method::NaiveHybrid => Box::new(NaiveHybridKernel::new()),
        Method::HStencil => {
            if m4 {
                Box::new(M4StarKernel::new())
            } else {
                Box::new(InplaceKernel::new(true))
            }
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let method = match args.get(1).map(|s| s.to_lowercase()) {
        Some(m) => match m.as_str() {
            "auto" => Method::Auto,
            "vector" | "vector-only" => Method::VectorOnly,
            "matrix" | "stop" | "matrix-only" => Method::MatrixOnly,
            "ortho" | "mat-ortho" => Method::MatrixOrtho,
            "naive" | "naive-hybrid" => Method::NaiveHybrid,
            "hstencil" => Method::HStencil,
            other => panic!("unknown method {other}"),
        },
        None => Method::HStencil,
    };
    let spec = spec_by_name(args.get(2).map(|s| s.as_str()).unwrap_or("star2d9p"));
    let m4 = args.iter().any(|a| a == "--m4");

    let cfg = if m4 {
        MachineConfig::apple_m4()
    } else {
        MachineConfig::lx2()
    };
    let mut mach = Machine::new(&cfg);
    let stride = 64u64;
    let region = mach.alloc(64 * stride as usize, VLEN);
    let origin = region.base + 4 * stride + 8;
    let ctx = KernelCtx {
        h: 16,
        w: 32,
        stride,
        b0: origin + 32 * stride,
        planes: vec![Plane {
            base: origin,
            table: spec.plane_table_2d(),
        }],
        radius: spec.radius(),
        opts: method.default_options(),
    };

    let mut kernel = kernel_for(method, m4);
    kernel.setup(&ctx, &mut mach).expect("kernel setup");
    let mut prog = Program::new();
    kernel.emit_tile(&ctx, 0, 0, &mut prog);

    println!(
        "# {} tile for {} on {} — {} instructions",
        kernel.name(),
        spec.name(),
        cfg.name,
        prog.len()
    );
    let mix = prog.mix();
    println!(
        "# mix: {} fmopa, {} fmla, {} ext, {} prefetch, pipes v/m/l/s = {:?}\n",
        mix.fmopa, mix.fmla, mix.ext, mix.prefetch, mix.per_pipe
    );
    print!("{prog}");
}
