//! Regenerates Table 2 (IPC of vector-only vs matrix-only).
fn main() {
    hstencil_bench::experiments::tab02_ipc::table().emit("tab02_ipc");
    std::process::exit(hstencil_bench::runner::exit_code());
}
