//! Regenerates Table 7 (L1 metrics with/without spatial prefetch).
fn main() {
    hstencil_bench::experiments::tab07_prefetch_cache::table().emit("tab07_prefetch_cache");
    std::process::exit(hstencil_bench::runner::exit_code());
}
