//! # hstencil-bench
//!
//! Experiment harness regenerating every table and figure of the HStencil
//! paper's evaluation (§5). One binary per artifact — see `DESIGN.md` §4
//! for the experiment index — plus Criterion benches over the same
//! workloads.

pub mod experiments;
pub mod fmt;
pub mod runner;

pub use fmt::Table;
pub use runner::{run_method, workload_2d, workload_3d};
