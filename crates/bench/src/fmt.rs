//! Plain-text table formatting for experiment output.

use std::fmt::Write as _;
use std::path::Path;

/// A simple aligned text table with a title.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title.
    pub fn new(title: impl Into<String>) -> Self {
        Table {
            title: title.into(),
            header: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Sets the column headers.
    pub fn header(mut self, cols: &[&str]) -> Self {
        self.header = cols.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let ncols = self
            .rows
            .iter()
            .map(|r| r.len())
            .chain(std::iter::once(self.header.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; ncols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        if !self.header.is_empty() {
            let cells: Vec<String> = self
                .header
                .iter()
                .enumerate()
                .map(|(i, h)| format!("{h:>width$}", width = widths[i]))
                .collect();
            let _ = writeln!(out, "{}", cells.join("  "));
            let total: usize = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
            let _ = writeln!(out, "{}", "-".repeat(total));
        }
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:>width$}", width = widths[i]))
                .collect();
            let _ = writeln!(out, "{}", cells.join("  "));
        }
        out
    }

    /// Prints the table to stdout and archives it as `results/<id>.txt`.
    /// Write failures go to stderr and make the experiment binary exit
    /// non-zero (see [`crate::runner::exit_code`]).
    pub fn emit(&self, id: &str) {
        let text = self.render();
        println!("{text}");
        if let Err(e) = std::fs::create_dir_all("results")
            .and_then(|()| std::fs::write(Path::new("results").join(format!("{id}.txt")), &text))
        {
            eprintln!("error: failed to write results/{id}.txt: {e}");
            crate::runner::record_io_failure();
        }
    }
}

/// A horizontal bar chart for speedup-style figures (the plotting step of
/// the paper's artifact, rendered as text).
#[derive(Clone, Debug, Default)]
pub struct BarChart {
    title: String,
    bars: Vec<(String, f64)>,
    /// Reference line (e.g. the 1.0× auto baseline).
    reference: Option<f64>,
}

impl BarChart {
    /// New chart with a title.
    pub fn new(title: impl Into<String>) -> Self {
        BarChart {
            title: title.into(),
            bars: Vec::new(),
            reference: None,
        }
    }

    /// Adds a labelled bar.
    pub fn bar(&mut self, label: impl Into<String>, value: f64) {
        self.bars.push((label.into(), value));
    }

    /// Draws a reference marker at `value` (e.g. the baseline's 1.0×).
    pub fn reference(mut self, value: f64) -> Self {
        self.reference = Some(value);
        self
    }

    /// Renders the chart with bars scaled to `width` characters.
    pub fn render(&self, width: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        if self.bars.is_empty() {
            return out;
        }
        let label_w = self.bars.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
        let max = self
            .bars
            .iter()
            .map(|&(_, v)| v)
            .chain(self.reference)
            .fold(f64::MIN, f64::max)
            .max(1e-12);
        let scale = width as f64 / max;
        let ref_col = self
            .reference
            .map(|r| ((r * scale).round() as usize).min(width));
        for (label, value) in &self.bars {
            let mut cells: Vec<char> = vec![' '; width + 1];
            let len = ((value * scale).round() as usize).min(width);
            for c in cells.iter_mut().take(len) {
                *c = '#';
            }
            if let Some(rc) = ref_col {
                if cells[rc] == ' ' {
                    cells[rc] = '|';
                }
            }
            let bar: String = cells.into_iter().collect();
            let _ = writeln!(out, "{label:>label_w$} {bar} {value:.2}");
        }
        out
    }

    /// Prints the chart and archives it as `results/<id>.chart.txt`.
    /// Write failures go to stderr and make the experiment binary exit
    /// non-zero (see [`crate::runner::exit_code`]).
    pub fn emit(&self, id: &str) {
        let text = self.render(48);
        println!("{text}");
        if let Err(e) = std::fs::create_dir_all("results")
            .and_then(|()| std::fs::write(format!("results/{id}.chart.txt"), &text))
        {
            eprintln!("error: failed to write results/{id}.chart.txt: {e}");
            crate::runner::record_io_failure();
        }
    }
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a percentage with 2 decimals.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

/// Formats a count in engineering notation (like the paper's hit times).
pub fn eng(x: f64) -> String {
    if x == 0.0 {
        return "0".to_string();
    }
    let exp = x.abs().log10().floor() as i32;
    let mant = x / 10f64.powi(exp);
    format!("{mant:.1}e{exp}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo").header(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "12345".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("long-name"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn bar_chart_scales_and_marks_reference() {
        let mut c = BarChart::new("speedups").reference(1.0);
        c.bar("auto", 1.0);
        c.bar("hstencil", 4.0);
        let s = c.render(40);
        assert!(s.contains("== speedups =="));
        let hs_line = s.lines().find(|l| l.contains("hstencil")).unwrap();
        let auto_line = s.lines().find(|l| l.contains("auto")).unwrap();
        let count = |l: &str| l.matches('#').count();
        assert_eq!(count(hs_line), 40);
        assert_eq!(count(auto_line), 10);
        assert!(auto_line.contains('|') || count(auto_line) == 10);
        assert!(hs_line.contains("4.00"));
    }

    #[test]
    fn empty_chart_renders_title_only() {
        let c = BarChart::new("empty");
        assert_eq!(c.render(20).lines().count(), 1);
    }

    #[test]
    fn eng_notation() {
        assert_eq!(eng(2.5e5), "2.5e5");
        assert_eq!(eng(0.0), "0");
        assert_eq!(eng(1.7e7), "1.7e7");
    }
}
