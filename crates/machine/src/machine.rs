//! The top-level machine: memory + hierarchy + engine.

use crate::config::MachineConfig;
use crate::counters::PerfCounters;
use crate::engine::Engine;
use crate::error::SimError;
use crate::hierarchy::MemHierarchy;
use crate::mem::{Memory, Region};
use lx2_isa::{Inst, Program};

/// A complete simulated machine instance.
///
/// Owns the simulated memory (where grids live), the cache hierarchy and
/// the issue engine. Programs are executed incrementally — kernel drivers
/// feed per-tile instruction blocks and all timing/cache state persists
/// across calls.
pub struct Machine {
    cfg: MachineConfig,
    /// Simulated flat memory.
    pub mem: Memory,
    engine: Engine,
    hier: MemHierarchy,
}

impl Machine {
    /// Builds a machine for a configuration.
    pub fn new(cfg: &MachineConfig) -> Self {
        Machine {
            cfg: cfg.clone(),
            mem: Memory::new(),
            engine: Engine::new(cfg),
            hier: MemHierarchy::new(cfg),
        }
    }

    /// The machine's configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Allocates a zeroed region of simulated memory.
    pub fn alloc(&mut self, len: usize, align: usize) -> Region {
        self.mem.alloc(len, align)
    }

    /// Executes a program (appends to the machine's timeline).
    pub fn execute(&mut self, program: &Program) -> Result<(), SimError> {
        self.execute_insts(program.insts())
    }

    /// Executes a raw instruction slice.
    pub fn execute_insts(&mut self, insts: &[Inst]) -> Result<(), SimError> {
        for inst in insts {
            self.engine.step(inst, &mut self.mem, &mut self.hier)?;
        }
        Ok(())
    }

    /// Elapsed cycles since construction (completion horizon).
    pub fn elapsed_cycles(&self) -> u64 {
        self.engine.elapsed_cycles()
    }

    /// Combined performance counters (core + memory).
    pub fn counters(&self) -> PerfCounters {
        let mut c = self.engine.counters;
        c.cycles = self.elapsed_cycles();
        c.mem = self.hier.counters;
        c
    }

    /// Direct access to the engine's architectural state (for tests).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Mutable access to the engine (for tests that pre-set registers).
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }

    /// Drops all cached lines and prefetch streams, e.g. between timed
    /// phases. Counters and the cycle horizon are kept.
    pub fn clear_caches(&mut self) {
        self.hier.clear_caches();
    }

    /// Switch streaming (SME) mode; see [`Engine::set_streaming`].
    pub fn set_streaming(&mut self, on: bool) {
        self.engine.set_streaming(on);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lx2_isa::{RowMask, VReg, ZaReg};

    #[test]
    fn end_to_end_outer_product_into_memory() {
        let cfg = MachineConfig::lx2();
        let mut m = Machine::new(&cfg);
        let a = m.alloc(8, 8);
        let out = m.alloc(64, 8);
        m.mem
            .store_slice(a.base, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0])
            .unwrap();

        let mut p = Program::new();
        p.push(Inst::DupImm {
            vd: VReg::new(1),
            imm: 2.0,
        });
        p.push(Inst::Ld1d {
            vd: VReg::new(0),
            addr: a.base,
        });
        p.push(Inst::ZeroZa {
            za: ZaReg::new(0),
            mask: RowMask::ALL,
        });
        p.push(Inst::Fmopa {
            za: ZaReg::new(0),
            vn: VReg::new(1),
            vm: VReg::new(0),
            mask: RowMask::ALL,
        });
        for row in 0..8u8 {
            p.push(Inst::StZaRow {
                za: ZaReg::new(0),
                row,
                addr: out.base + row as u64 * 8,
            });
        }
        m.execute(&p).unwrap();

        // Every row of the tile is 2 * [1..8].
        for row in 0..8u64 {
            for col in 0..8u64 {
                let got = m.mem.read(out.base + row * 8 + col).unwrap();
                assert_eq!(got, 2.0 * (col as f64 + 1.0));
            }
        }
        let c = m.counters();
        assert_eq!(c.fmopa, 1);
        assert!(c.cycles > 0);
        assert!(c.mem.l1_load_accesses >= 1);
    }

    #[test]
    fn counters_accumulate_across_executes() {
        let cfg = MachineConfig::lx2();
        let mut m = Machine::new(&cfg);
        let mut p = Program::new();
        p.push(Inst::DupImm {
            vd: VReg::new(0),
            imm: 1.0,
        });
        m.execute(&p).unwrap();
        let c1 = m.counters().instructions;
        m.execute(&p).unwrap();
        assert_eq!(m.counters().instructions, c1 * 2);
    }

    #[test]
    fn clear_caches_keeps_counters() {
        let cfg = MachineConfig::lx2();
        let mut m = Machine::new(&cfg);
        let r = m.alloc(8, 8);
        let mut p = Program::new();
        p.push(Inst::Ld1d {
            vd: VReg::new(0),
            addr: r.base,
        });
        m.execute(&p).unwrap();
        let before = m.counters().mem.l1_load_accesses;
        m.clear_caches();
        assert_eq!(m.counters().mem.l1_load_accesses, before);
    }
}
