//! Set-associative cache with LRU replacement and prefetch-arrival
//! timestamps.
//!
//! Lines carry an *arrival cycle* so that in-flight prefetches can be
//! distinguished from resident data: a demand access that finds a line
//! whose arrival is still in the future is a *late prefetch* — counted as
//! a miss (matching `perf` semantics) but charged only the remaining
//! latency.

use crate::config::CacheConfig;

/// Result of probing a cache for a line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Probe {
    /// Line present; `arrival` is the cycle its data is (or was) available.
    Hit {
        /// Cycle at which the line's data arrives/arrived.
        arrival: u64,
    },
    /// Line absent.
    Miss,
}

/// A line evicted by an insertion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Evicted {
    /// Line address of the victim.
    pub line: u64,
    /// Whether the victim was dirty (needs writeback).
    pub dirty: bool,
}

#[derive(Clone, Copy, Debug)]
struct Slot {
    line: u64,
    valid: bool,
    dirty: bool,
    arrival: u64,
    last_use: u64,
}

const EMPTY: Slot = Slot {
    line: 0,
    valid: false,
    dirty: false,
    arrival: 0,
    last_use: 0,
};

/// A set-associative, write-back, LRU cache over line addresses.
#[derive(Clone, Debug)]
pub struct Cache {
    slots: Vec<Slot>,
    sets: usize,
    assoc: usize,
    tick: u64,
}

impl Cache {
    /// Builds a cache from a validated geometry.
    pub fn new(cfg: &CacheConfig) -> Self {
        cfg.validate().expect("invalid cache geometry");
        let sets = cfg.num_sets();
        Cache {
            slots: vec![EMPTY; sets * cfg.assoc],
            sets,
            assoc: cfg.assoc,
            tick: 0,
        }
    }

    #[inline]
    fn set_range(&self, line: u64) -> std::ops::Range<usize> {
        let set = (line as usize) & (self.sets - 1);
        let start = set * self.assoc;
        start..start + self.assoc
    }

    /// Probes for a line, updating LRU state on a hit.
    pub fn probe(&mut self, line: u64) -> Probe {
        self.tick += 1;
        let tick = self.tick;
        let range = self.set_range(line);
        for slot in &mut self.slots[range] {
            if slot.valid && slot.line == line {
                slot.last_use = tick;
                return Probe::Hit {
                    arrival: slot.arrival,
                };
            }
        }
        Probe::Miss
    }

    /// Probes without touching LRU state (for inspection/tests).
    pub fn peek(&self, line: u64) -> Probe {
        for slot in &self.slots[self.set_range(line)] {
            if slot.valid && slot.line == line {
                return Probe::Hit {
                    arrival: slot.arrival,
                };
            }
        }
        Probe::Miss
    }

    /// Inserts a line (fill); evicts the LRU way if the set is full.
    ///
    /// If the line is already present its arrival is moved earlier if the
    /// new fill would arrive earlier, and no eviction occurs.
    pub fn insert(&mut self, line: u64, arrival: u64, dirty: bool) -> Option<Evicted> {
        self.tick += 1;
        let tick = self.tick;
        let range = self.set_range(line);
        // Already present: refresh.
        for slot in &mut self.slots[range.clone()] {
            if slot.valid && slot.line == line {
                slot.arrival = slot.arrival.min(arrival);
                slot.dirty |= dirty;
                slot.last_use = tick;
                return None;
            }
        }
        // Free way?
        for slot in &mut self.slots[range.clone()] {
            if !slot.valid {
                *slot = Slot {
                    line,
                    valid: true,
                    dirty,
                    arrival,
                    last_use: tick,
                };
                return None;
            }
        }
        // Evict LRU.
        let victim_idx = {
            let slots = &self.slots[range.clone()];
            let mut best = 0;
            for (i, s) in slots.iter().enumerate() {
                if s.last_use < slots[best].last_use {
                    best = i;
                }
            }
            range.start + best
        };
        let victim = self.slots[victim_idx];
        self.slots[victim_idx] = Slot {
            line,
            valid: true,
            dirty,
            arrival,
            last_use: tick,
        };
        Some(Evicted {
            line: victim.line,
            dirty: victim.dirty,
        })
    }

    /// Marks a (present) line dirty; no-op if absent.
    pub fn mark_dirty(&mut self, line: u64) {
        let range = self.set_range(line);
        for slot in &mut self.slots[range] {
            if slot.valid && slot.line == line {
                slot.dirty = true;
                return;
            }
        }
    }

    /// Number of valid lines currently resident (for tests/diagnostics).
    pub fn resident_lines(&self) -> usize {
        self.slots.iter().filter(|s| s.valid).count()
    }

    /// Invalidate everything (keeps geometry).
    pub fn clear(&mut self) {
        for s in &mut self.slots {
            *s = EMPTY;
        }
        self.tick = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> Cache {
        // 4 sets x 2 ways, 64 B lines.
        Cache::new(&CacheConfig {
            size_bytes: 512,
            assoc: 2,
            line_bytes: 64,
        })
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small_cache();
        assert_eq!(c.probe(5), Probe::Miss);
        c.insert(5, 10, false);
        assert_eq!(c.probe(5), Probe::Hit { arrival: 10 });
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small_cache();
        // Lines 0, 4, 8 all map to set 0 (4 sets).
        c.insert(0, 0, false);
        c.insert(4, 0, false);
        let _ = c.probe(0); // 0 is now more recent than 4.
        let ev = c.insert(8, 0, false).expect("must evict");
        assert_eq!(ev.line, 4);
        assert_eq!(c.peek(0), Probe::Hit { arrival: 0 });
        assert_eq!(c.peek(4), Probe::Miss);
    }

    #[test]
    fn eviction_reports_dirty() {
        let mut c = small_cache();
        c.insert(0, 0, true);
        c.insert(4, 0, false);
        let ev = c.insert(8, 0, false).unwrap();
        assert!(ev.dirty);
        assert_eq!(ev.line, 0);
    }

    #[test]
    fn reinsert_keeps_earliest_arrival() {
        let mut c = small_cache();
        c.insert(3, 100, false);
        c.insert(3, 50, false);
        assert_eq!(c.peek(3), Probe::Hit { arrival: 50 });
        c.insert(3, 200, true);
        assert_eq!(c.peek(3), Probe::Hit { arrival: 50 });
    }

    #[test]
    fn mark_dirty_sets_flag() {
        let mut c = small_cache();
        c.insert(1, 0, false);
        c.mark_dirty(1);
        c.insert(5, 0, false);
        let ev = c.insert(9, 0, false).unwrap();
        assert_eq!(ev.line, 1);
        assert!(ev.dirty);
    }

    #[test]
    fn capacity_respected() {
        let mut c = small_cache();
        for line in 0..100 {
            c.insert(line, 0, false);
        }
        assert!(c.resident_lines() <= 8);
    }

    #[test]
    fn clear_empties() {
        let mut c = small_cache();
        c.insert(1, 0, false);
        c.clear();
        assert_eq!(c.resident_lines(), 0);
        assert_eq!(c.probe(1), Probe::Miss);
    }
}
