//! Two-level cache hierarchy with hardware stream prefetch and software
//! prefetch hints.
//!
//! Demand accesses walk L1 → L2 → DRAM at line granularity and return a
//! load-use latency. Lines installed by a prefetch carry a future arrival
//! cycle; a demand access that races an in-flight prefetch pays only the
//! remaining latency but still counts as a miss (`perf` semantics).

use crate::cache::{Cache, Probe};
use crate::config::MachineConfig;
use crate::counters::MemCounters;
use crate::prefetch::StreamPrefetcher;
use lx2_isa::MemKind;

/// L1 + L2 + DRAM with hardware and software prefetch.
#[derive(Clone, Debug)]
pub struct MemHierarchy {
    l1: Cache,
    l2: Cache,
    pf: StreamPrefetcher,
    /// f64 elements per cache line.
    line_elems: u64,
    l1_lat: u64,
    l2_lat: u64,
    mem_lat: u64,
    l1_fill_ii: u64,
    l2_fill_ii: u64,
    /// Cycle the L2→L1 fill port frees.
    l1_fill_free: u64,
    /// Cycle the DRAM→L2 fill port frees.
    l2_fill_free: u64,
    /// Counters for this hierarchy instance.
    pub counters: MemCounters,
    pf_buf: Vec<u64>,
}

impl MemHierarchy {
    /// Builds the hierarchy described by a machine configuration.
    pub fn new(cfg: &MachineConfig) -> Self {
        MemHierarchy {
            l1: Cache::new(&cfg.l1),
            l2: Cache::new(&cfg.l2),
            pf: StreamPrefetcher::new(cfg.hw_prefetch),
            line_elems: (cfg.l1.line_bytes / std::mem::size_of::<f64>()) as u64,
            l1_lat: cfg.l1_latency,
            l2_lat: cfg.l2_latency,
            mem_lat: cfg.mem_latency,
            l1_fill_ii: cfg.l1_fill_ii,
            l2_fill_ii: cfg.l2_fill_ii,
            l1_fill_free: 0,
            l2_fill_free: 0,
            counters: MemCounters::default(),
            pf_buf: Vec::with_capacity(16),
        }
    }

    /// Line address containing an element address.
    #[inline]
    pub fn line_of(&self, elem_addr: u64) -> u64 {
        elem_addr / self.line_elems
    }

    /// A demand access of `len` contiguous elements starting at `addr`,
    /// at cycle `now`. Returns the load-use latency (max over the lines
    /// touched). Stores are write-allocate and mark lines dirty; a store
    /// covering an entire line skips the read-for-ownership fetch
    /// (write-streaming, as real cores do for full-line vector stores).
    pub fn access(&mut self, now: u64, addr: u64, len: u64, kind: MemKind) -> u64 {
        debug_assert!(len > 0);
        let first = self.line_of(addr);
        let last = self.line_of(addr + len - 1);
        let mut lat = 0;
        for line in first..=last {
            let full_line = kind == MemKind::Write
                && addr <= line * self.line_elems
                && addr + len >= (line + 1) * self.line_elems;
            lat = lat.max(self.demand_line_ext(now, line, kind, full_line));
        }
        lat
    }

    /// A strided demand access touching `count` elements `stride` apart.
    ///
    /// Gathers issue their line accesses sequentially (the modelled cores
    /// crack them into per-element micro-ops), so the latency is the worst
    /// line plus a three-cycle serialization per additional line — the
    /// discontiguous-access penalty behind the paper's Mat-ortho numbers.
    pub fn access_strided(
        &mut self,
        now: u64,
        addr: u64,
        stride: u64,
        count: u64,
        kind: MemKind,
    ) -> u64 {
        let mut lat = 0;
        let mut lines = 0u64;
        let mut prev_line = u64::MAX;
        for k in 0..count {
            let line = self.line_of(addr + k * stride);
            if line != prev_line {
                lat = lat.max(self.demand_line(now, line, kind));
                prev_line = line;
                lines += 1;
            }
        }
        lat + 3 * lines.saturating_sub(1)
    }

    fn demand_line(&mut self, now: u64, line: u64, kind: MemKind) -> u64 {
        self.demand_line_ext(now, line, kind, false)
    }

    fn demand_line_ext(&mut self, now: u64, line: u64, kind: MemKind, full_line: bool) -> u64 {
        match kind {
            MemKind::Read => self.counters.l1_load_accesses += 1,
            MemKind::Write => self.counters.l1_store_accesses += 1,
        }

        let mut buf = std::mem::take(&mut self.pf_buf);
        debug_assert!(buf.is_empty());

        let lat = match self.l1.probe(line) {
            Probe::Hit { arrival } if arrival <= now => {
                match kind {
                    MemKind::Read => self.counters.l1_load_hits += 1,
                    MemKind::Write => self.counters.l1_store_hits += 1,
                }
                if kind == MemKind::Write {
                    self.l1.mark_dirty(line);
                }
                self.pf.observe(line, false, &mut buf);
                self.l1_lat
            }
            Probe::Hit { arrival } => {
                // Late prefetch: line in flight, pay the residue.
                self.counters.late_prefetch_hits += 1;
                if kind == MemKind::Write {
                    self.l1.mark_dirty(line);
                }
                self.pf.observe(line, true, &mut buf);
                arrival - now + self.l1_lat
            }
            Probe::Miss if full_line => {
                // Write-streaming: the whole line is overwritten, so no
                // fetch from below; install it dirty immediately.
                if let Some(ev) = self.l1.insert(line, now, true) {
                    if ev.dirty {
                        let victim = ev.line;
                        self.writeback_to_l2(now, victim);
                    }
                }
                self.l1_lat
            }
            Probe::Miss => {
                let fill_lat = self.fetch_into_l1(now, line, kind == MemKind::Write);
                self.pf.observe(line, true, &mut buf);
                fill_lat
            }
        };

        for &pf_line in &buf {
            self.prefetch_line(now, pf_line, false);
        }
        buf.clear();
        self.pf_buf = buf;
        lat
    }

    /// Fetches a missing line into L1 from L2 or DRAM; returns latency.
    ///
    /// Fills contend for finite per-level fill ports: a burst of misses
    /// serializes on the L2→L1 (and DRAM→L2) bandwidth, which is exactly
    /// what well-spread software prefetch avoids.
    fn fetch_into_l1(&mut self, now: u64, line: u64, dirty: bool) -> u64 {
        self.counters.l2_accesses += 1;
        // When the line's data becomes available at L2.
        let avail_l2 = match self.l2.probe(line) {
            Probe::Hit { arrival } if arrival <= now => {
                self.counters.l2_hits += 1;
                now
            }
            Probe::Hit { arrival } => arrival,
            Probe::Miss => {
                self.counters.dram_lines_read += 1;
                let start = (now + self.mem_lat - self.l2_fill_ii).max(self.l2_fill_free);
                let done = start + self.l2_fill_ii;
                self.l2_fill_free = done;
                if let Some(ev) = self.l2.insert(line, done, false) {
                    if ev.dirty {
                        self.counters.dram_lines_written += 1;
                    }
                }
                done
            }
        };
        let fill_start = avail_l2.max(self.l1_fill_free);
        let fill_done = fill_start + self.l1_fill_ii;
        self.l1_fill_free = fill_done;
        let lat = (fill_done - now) + self.l2_lat;
        if let Some(ev) = self.l1.insert(line, now + lat, dirty) {
            if ev.dirty {
                self.writeback_to_l2(now, ev.line);
            }
        }
        lat
    }

    fn writeback_to_l2(&mut self, now: u64, line: u64) {
        if let Some(ev) = self.l2.insert(line, now, true) {
            if ev.dirty {
                self.counters.dram_lines_written += 1;
            }
        }
    }

    /// Software prefetch hint for the line containing `addr`.
    ///
    /// Write-intent hints (`PSTL1KEEP`) install the line for ownership
    /// without fetching its contents — the stencil kernels overwrite whole
    /// lines, so pairing with the store path's write-streaming keeps the
    /// destination array read-free.
    pub fn software_prefetch(&mut self, now: u64, addr: u64, kind: MemKind) {
        let line = self.line_of(addr);
        if kind == MemKind::Write {
            self.counters.sw_prefetches += 1;
            if let Probe::Hit { .. } = self.l1.peek(line) {
                return;
            }
            if let Some(ev) = self.l1.insert(line, now + self.l1_lat, false) {
                if ev.dirty {
                    self.writeback_to_l2(now, ev.line);
                }
            }
            return;
        }
        self.prefetch_line(now, line, true);
    }

    /// Installs `line` into L1 with a future arrival; counts hw/sw issue.
    /// Prefetch fills share the demand fill ports.
    fn prefetch_line(&mut self, now: u64, line: u64, software: bool) {
        if software {
            self.counters.sw_prefetches += 1;
        } else {
            self.counters.hw_prefetches += 1;
        }
        if let Probe::Hit { .. } = self.l1.peek(line) {
            return; // Already resident or in flight.
        }
        let avail_l2 = match self.l2.probe(line) {
            Probe::Hit { arrival } if arrival <= now => now,
            Probe::Hit { arrival } => arrival,
            Probe::Miss => {
                self.counters.dram_lines_read += 1;
                let start = (now + self.mem_lat - self.l2_fill_ii).max(self.l2_fill_free);
                let done = start + self.l2_fill_ii;
                self.l2_fill_free = done;
                if let Some(ev) = self.l2.insert(line, done, false) {
                    if ev.dirty {
                        self.counters.dram_lines_written += 1;
                    }
                }
                done
            }
        };
        let fill_start = avail_l2.max(self.l1_fill_free);
        let fill_done = fill_start + self.l1_fill_ii;
        self.l1_fill_free = fill_done;
        if let Some(ev) = self.l1.insert(line, fill_done + self.l2_lat, false) {
            if ev.dirty {
                self.writeback_to_l2(now, ev.line);
            }
        }
    }

    /// Elements per cache line.
    #[inline]
    pub fn line_elems(&self) -> u64 {
        self.line_elems
    }

    /// Invalidate all cached state and forget prefetch streams (counters
    /// are kept; use a fresh hierarchy for fresh counters).
    pub fn clear_caches(&mut self) {
        self.l1.clear();
        self.l2.clear();
        self.pf.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;

    fn hier() -> MemHierarchy {
        MemHierarchy::new(&MachineConfig::lx2())
    }

    #[test]
    fn cold_miss_pays_dram_then_hits() {
        let mut h = hier();
        let lat = h.access(0, 0, 8, MemKind::Read);
        // DRAM latency plus the fill-port traversal into L1 and the
        // L2-to-core transfer.
        assert_eq!(lat, 110 + 1 + 14);
        assert_eq!(h.counters.l1_load_accesses, 1);
        assert_eq!(h.counters.l1_load_hits, 0);
        // Same line now hits (arrival passed).
        let lat = h.access(200, 0, 8, MemKind::Read);
        assert_eq!(lat, 4);
        assert_eq!(h.counters.l1_load_hits, 1);
    }

    #[test]
    fn sequential_stream_gets_prefetched() {
        let mut h = hier();
        // Stream through many consecutive lines with generous spacing so
        // prefetches arrive in time.
        let mut hits = 0;
        let total = 64u64;
        for k in 0..total {
            let now = k * 200;
            let before = h.counters.l1_load_hits;
            h.access(now, k * 8, 8, MemKind::Read);
            if h.counters.l1_load_hits > before {
                hits += 1;
            }
        }
        // First couple of lines miss while the stream trains; the rest hit.
        assert!(hits >= total - 4, "only {hits}/{total} hits");
        assert!(h.counters.hw_prefetches > 0);
    }

    #[test]
    fn strided_row_jumps_defeat_stream_prefetcher() {
        let mut h = hier();
        // Touch one line then jump a large stride, repeatedly: no stream
        // should ever train.
        for k in 0..64u64 {
            h.access(k * 200, k * 8192, 8, MemKind::Read);
        }
        assert_eq!(h.counters.l1_load_hits, 0);
    }

    #[test]
    fn late_prefetch_counts_as_miss_with_reduced_latency() {
        let mut h = hier();
        // Walk enough consecutive lines to reach the training confidence.
        for k in 0..4u64 {
            h.access(0, k * 8, 8, MemKind::Read);
        }
        // The next line's prefetch is still in flight.
        let lat = h.access(1, 32, 8, MemKind::Read);
        assert!(h.counters.late_prefetch_hits >= 1);
        assert!(lat > 4, "late prefetch should cost more than an L1 hit");
        // Demanded almost immediately, a late prefetch costs about as much
        // as the miss would have; it only wins when demanded later.
        assert!(lat <= 110 + 5 * 4 + 1 + 14 + 5, "late prefetch cost {lat}");
    }

    #[test]
    fn store_write_allocates_and_dirties() {
        let mut h = hier();
        h.access(0, 0, 8, MemKind::Write);
        assert_eq!(h.counters.l1_store_accesses, 1);
        assert_eq!(h.counters.l1_store_hits, 0);
        let lat = h.access(500, 0, 8, MemKind::Write);
        assert_eq!(lat, 4);
        assert_eq!(h.counters.l1_store_hits, 1);
    }

    #[test]
    fn software_prefetch_turns_miss_into_hit() {
        let mut h = hier();
        h.software_prefetch(0, 1024, MemKind::Read);
        assert_eq!(h.counters.sw_prefetches, 1);
        let lat = h.access(500, 1024, 8, MemKind::Read);
        assert_eq!(lat, 4);
        assert_eq!(h.counters.l1_load_hits, 1);
    }

    #[test]
    fn unaligned_access_touches_two_lines() {
        let mut h = hier();
        h.access(0, 4, 8, MemKind::Read); // elements 4..12 span lines 0 and 1
        assert_eq!(h.counters.l1_load_accesses, 2);
    }

    #[test]
    fn strided_access_touches_distinct_lines() {
        let mut h = hier();
        let lat = h.access_strided(0, 0, 1024, 8, MemKind::Read);
        assert_eq!(h.counters.l1_load_accesses, 8);
        // The eight lines contend for the DRAM and L1 fill ports, plus
        // three cycles of gather serialization per extra line.
        assert!(lat >= 110 + 3 * 7, "lat {lat}");
        assert!(lat < 110 + 8 * 6 + 14 + 3 * 7 + 8, "lat {lat}");
    }

    #[test]
    fn full_line_store_skips_the_rfo_fetch() {
        let mut h = hier();
        let dram_before = h.counters.dram_lines_read;
        // Aligned 8-element store covers the whole 64 B line.
        h.access(0, 64, 8, MemKind::Write);
        assert_eq!(
            h.counters.dram_lines_read, dram_before,
            "write-streaming must not read the line"
        );
        // A partial store (unaligned) still fetches for ownership.
        h.access(0, 132, 8, MemKind::Write);
        assert!(h.counters.dram_lines_read > dram_before);
    }

    #[test]
    fn fill_ports_serialize_miss_bursts() {
        let mut h = hier();
        // Eight simultaneous cold misses at the same cycle: each later
        // fill waits for the DRAM fill port.
        let mut lats = Vec::new();
        for k in 0..8u64 {
            lats.push(h.access(0, k * 512, 8, MemKind::Read));
        }
        assert!(
            lats.windows(2).all(|w| w[1] >= w[0]),
            "burst latencies must be nondecreasing: {lats:?}"
        );
        assert!(
            *lats.last().unwrap() >= lats[0] + 4 * 4,
            "port contention should be visible: {lats:?}"
        );
    }

    #[test]
    fn dirty_eviction_reaches_dram_eventually() {
        let mut h = hier();
        // Write far more distinct lines than L1+L2 capacity to force dirty
        // evictions all the way out.
        for k in 0..40_000u64 {
            h.access(k * 10, k * 8, 8, MemKind::Write);
        }
        assert!(h.counters.dram_lines_written > 0);
    }
}
