//! Performance counters.
//!
//! The simulated equivalents of the `perf stat` events the paper collects
//! (`instructions`, `cycles`, `L1-dcache-loads`, `L1-dcache-load-misses`),
//! plus per-pipe occupancy and structural-utilization counters that the
//! analysis layer uses for Tables 1, 2, 5 and 7.

use hstencil_testkit::{Json, ToJson};
use lx2_isa::{PipeClass, PIPE_CLASS_COUNT, TILE_ELEMS};

/// Memory-hierarchy counters.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct MemCounters {
    /// Demand load accesses that reached L1 (line granularity).
    pub l1_load_accesses: u64,
    /// Demand load accesses that hit in L1 (line present and arrived).
    pub l1_load_hits: u64,
    /// Demand store accesses that reached L1.
    pub l1_store_accesses: u64,
    /// Demand store accesses that hit in L1.
    pub l1_store_hits: u64,
    /// Demand accesses that reached L2.
    pub l2_accesses: u64,
    /// Demand accesses that hit in L2.
    pub l2_hits: u64,
    /// Lines fetched from DRAM (demand + prefetch).
    pub dram_lines_read: u64,
    /// Dirty lines written back to DRAM.
    pub dram_lines_written: u64,
    /// Hardware prefetches issued.
    pub hw_prefetches: u64,
    /// Software prefetches issued (PRFM).
    pub sw_prefetches: u64,
    /// Demand accesses that found an in-flight prefetch (counted as misses,
    /// but with reduced latency).
    pub late_prefetch_hits: u64,
}

impl MemCounters {
    /// L1 load hit rate in `[0, 1]`; 1.0 when there were no loads.
    pub fn l1_load_hit_rate(&self) -> f64 {
        if self.l1_load_accesses == 0 {
            1.0
        } else {
            self.l1_load_hits as f64 / self.l1_load_accesses as f64
        }
    }

    /// Combined L1 hit rate over loads and stores.
    pub fn l1_hit_rate(&self) -> f64 {
        let acc = self.l1_load_accesses + self.l1_store_accesses;
        if acc == 0 {
            1.0
        } else {
            (self.l1_load_hits + self.l1_store_hits) as f64 / acc as f64
        }
    }

    /// Total DRAM traffic in bytes given a line size.
    pub fn dram_bytes(&self, line_bytes: usize) -> u64 {
        (self.dram_lines_read + self.dram_lines_written) * line_bytes as u64
    }

    /// Counters accumulated since an earlier snapshot.
    pub fn delta(&self, earlier: &MemCounters) -> MemCounters {
        MemCounters {
            l1_load_accesses: self.l1_load_accesses - earlier.l1_load_accesses,
            l1_load_hits: self.l1_load_hits - earlier.l1_load_hits,
            l1_store_accesses: self.l1_store_accesses - earlier.l1_store_accesses,
            l1_store_hits: self.l1_store_hits - earlier.l1_store_hits,
            l2_accesses: self.l2_accesses - earlier.l2_accesses,
            l2_hits: self.l2_hits - earlier.l2_hits,
            dram_lines_read: self.dram_lines_read - earlier.dram_lines_read,
            dram_lines_written: self.dram_lines_written - earlier.dram_lines_written,
            hw_prefetches: self.hw_prefetches - earlier.hw_prefetches,
            sw_prefetches: self.sw_prefetches - earlier.sw_prefetches,
            late_prefetch_hits: self.late_prefetch_hits - earlier.late_prefetch_hits,
        }
    }

    /// Merge another counter set into this one.
    pub fn merge(&mut self, o: &MemCounters) {
        self.l1_load_accesses += o.l1_load_accesses;
        self.l1_load_hits += o.l1_load_hits;
        self.l1_store_accesses += o.l1_store_accesses;
        self.l1_store_hits += o.l1_store_hits;
        self.l2_accesses += o.l2_accesses;
        self.l2_hits += o.l2_hits;
        self.dram_lines_read += o.dram_lines_read;
        self.dram_lines_written += o.dram_lines_written;
        self.hw_prefetches += o.hw_prefetches;
        self.sw_prefetches += o.sw_prefetches;
        self.late_prefetch_hits += o.late_prefetch_hits;
    }
}

impl ToJson for MemCounters {
    fn to_json(&self) -> Json {
        Json::object([
            ("l1_load_accesses", self.l1_load_accesses.to_json()),
            ("l1_load_hits", self.l1_load_hits.to_json()),
            ("l1_store_accesses", self.l1_store_accesses.to_json()),
            ("l1_store_hits", self.l1_store_hits.to_json()),
            ("l2_accesses", self.l2_accesses.to_json()),
            ("l2_hits", self.l2_hits.to_json()),
            ("dram_lines_read", self.dram_lines_read.to_json()),
            ("dram_lines_written", self.dram_lines_written.to_json()),
            ("hw_prefetches", self.hw_prefetches.to_json()),
            ("sw_prefetches", self.sw_prefetches.to_json()),
            ("late_prefetch_hits", self.late_prefetch_hits.to_json()),
        ])
    }
}

/// Core pipeline and work counters.
#[derive(Clone, Copy, Default, Debug, PartialEq)]
pub struct PerfCounters {
    /// Elapsed cycles (issue horizon including in-flight latency).
    pub cycles: u64,
    /// Instructions issued.
    pub instructions: u64,
    /// Instructions per pipe class.
    pub per_pipe: [u64; PIPE_CLASS_COUNT],
    /// Sum of issue intervals per pipe class (unit-cycles of occupancy).
    pub pipe_busy: [u64; PIPE_CLASS_COUNT],
    /// Floating-point operations executed (FMA = 2).
    pub flops: u64,
    /// FMOPA instructions executed.
    pub fmopa: u64,
    /// Vector FMLA instructions executed.
    pub fmla: u64,
    /// M-MLA instructions executed.
    pub fmlag: u64,
    /// Multiply-accumulate slots in FMOPA with structurally useful operands
    /// (both lanes nonzero); drives matrix-unit utilization (Table 1).
    pub useful_matrix_macs: u64,
    /// Cycles in which at least one instruction issued.
    pub active_cycles: u64,
    /// Memory-hierarchy counters.
    pub mem: MemCounters,
}

impl PerfCounters {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Matrix-unit utilization: useful MAC slots over provisioned MAC slots
    /// (64 per FMOPA). Returns `None` if no FMOPA executed.
    pub fn matrix_utilization(&self) -> Option<f64> {
        if self.fmopa == 0 {
            None
        } else {
            Some(self.useful_matrix_macs as f64 / (self.fmopa * TILE_ELEMS as u64) as f64)
        }
    }

    /// Achieved FP64 GFLOP/s at a given core frequency.
    pub fn gflops(&self, freq_ghz: f64) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.flops as f64 / self.cycles as f64 * freq_ghz
        }
    }

    /// Occupancy cycles charged to one pipe class.
    pub fn pipe_busy_cycles(&self, class: PipeClass) -> u64 {
        self.pipe_busy[class.index()]
    }

    /// Counters accumulated since an earlier snapshot (cycles subtract,
    /// giving the elapsed cycles of the delta window).
    pub fn delta(&self, earlier: &PerfCounters) -> PerfCounters {
        let mut d = PerfCounters {
            cycles: self.cycles - earlier.cycles,
            instructions: self.instructions - earlier.instructions,
            flops: self.flops - earlier.flops,
            fmopa: self.fmopa - earlier.fmopa,
            fmla: self.fmla - earlier.fmla,
            fmlag: self.fmlag - earlier.fmlag,
            useful_matrix_macs: self.useful_matrix_macs - earlier.useful_matrix_macs,
            active_cycles: self.active_cycles - earlier.active_cycles,
            mem: self.mem.delta(&earlier.mem),
            ..Default::default()
        };
        for i in 0..PIPE_CLASS_COUNT {
            d.per_pipe[i] = self.per_pipe[i] - earlier.per_pipe[i];
            d.pipe_busy[i] = self.pipe_busy[i] - earlier.pipe_busy[i];
        }
        d
    }

    /// Merge another counter set (used by the multicore aggregator).
    pub fn merge(&mut self, o: &PerfCounters) {
        self.cycles = self.cycles.max(o.cycles);
        self.instructions += o.instructions;
        for i in 0..PIPE_CLASS_COUNT {
            self.per_pipe[i] += o.per_pipe[i];
            self.pipe_busy[i] += o.pipe_busy[i];
        }
        self.flops += o.flops;
        self.fmopa += o.fmopa;
        self.fmla += o.fmla;
        self.fmlag += o.fmlag;
        self.useful_matrix_macs += o.useful_matrix_macs;
        self.active_cycles += o.active_cycles;
        self.mem.merge(&o.mem);
    }
}

impl ToJson for PerfCounters {
    fn to_json(&self) -> Json {
        Json::object([
            ("cycles", self.cycles.to_json()),
            ("instructions", self.instructions.to_json()),
            ("per_pipe", self.per_pipe.to_json()),
            ("pipe_busy", self.pipe_busy.to_json()),
            ("flops", self.flops.to_json()),
            ("fmopa", self.fmopa.to_json()),
            ("fmla", self.fmla.to_json()),
            ("fmlag", self.fmlag.to_json()),
            ("useful_matrix_macs", self.useful_matrix_macs.to_json()),
            ("active_cycles", self.active_cycles.to_json()),
            ("mem", self.mem.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rates_empty_default_to_one() {
        let m = MemCounters::default();
        assert_eq!(m.l1_load_hit_rate(), 1.0);
        assert_eq!(m.l1_hit_rate(), 1.0);
    }

    #[test]
    fn hit_rate_math() {
        let m = MemCounters {
            l1_load_accesses: 10,
            l1_load_hits: 7,
            ..Default::default()
        };
        assert!((m.l1_load_hit_rate() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn ipc_math() {
        let c = PerfCounters {
            cycles: 100,
            instructions: 175,
            ..Default::default()
        };
        assert!((c.ipc() - 1.75).abs() < 1e-12);
    }

    #[test]
    fn utilization_none_without_fmopa() {
        assert_eq!(PerfCounters::default().matrix_utilization(), None);
    }

    #[test]
    fn utilization_math() {
        let c = PerfCounters {
            fmopa: 10,
            useful_matrix_macs: 320,
            ..Default::default()
        };
        assert!((c.matrix_utilization().unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn merge_takes_max_cycles_sums_rest() {
        let mut a = PerfCounters {
            cycles: 10,
            instructions: 5,
            ..Default::default()
        };
        let b = PerfCounters {
            cycles: 20,
            instructions: 7,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.cycles, 20);
        assert_eq!(a.instructions, 12);
    }

    #[test]
    fn counters_serialize_to_json_with_exact_integers() {
        let c = PerfCounters {
            cycles: u64::MAX,
            instructions: 3,
            ..Default::default()
        };
        let text = c.to_json().to_compact();
        assert!(text.contains("\"cycles\":18446744073709551615"));
        assert!(text.contains("\"instructions\":3"));
        assert!(text.contains("\"mem\":{\"l1_load_accesses\":0"));
        assert!(text.contains("\"per_pipe\":[0,0,0,0]"));
    }

    #[test]
    fn dram_bytes() {
        let m = MemCounters {
            dram_lines_read: 3,
            dram_lines_written: 1,
            ..Default::default()
        };
        assert_eq!(m.dram_bytes(64), 256);
    }
}
