//! # lx2-sim
//!
//! Functional **and** cycle-approximate simulator for an SME-class CPU —
//! the substrate substituting for the paper's LX2 and Apple M4 hardware
//! (see `DESIGN.md` §2 at the workspace root).
//!
//! * Functional layer: every instruction of `lx2-isa` executes exactly on
//!   simulated registers and flat f64 memory, so kernel outputs are
//!   bit-comparable against scalar references.
//! * Timing layer: in-order multi-issue with a register scoreboard,
//!   per-pipe-class execution units ([`engine`]), and a two-level cache
//!   hierarchy with hardware stream prefetch and software `PRFM`
//!   ([`hierarchy`]).
//! * Counters: the simulated equivalents of the `perf stat` events the
//!   paper reports ([`counters`]).
//!
//! ```
//! use lx2_sim::{Machine, MachineConfig};
//! use lx2_isa::{Inst, Program, VReg};
//!
//! let mut m = Machine::new(&MachineConfig::lx2());
//! let region = m.alloc(8, 8);
//! let mut p = Program::new();
//! p.push(Inst::DupImm { vd: VReg::new(0), imm: 1.5 });
//! p.push(Inst::St1d { vs: VReg::new(0), addr: region.base });
//! m.execute(&p).unwrap();
//! assert_eq!(m.mem.read(region.base).unwrap(), 1.5);
//! ```

pub mod cache;
pub mod config;
pub mod counters;
pub mod engine;
pub mod error;
pub mod hierarchy;
pub mod machine;
pub mod mem;
pub mod prefetch;
pub mod trace;

pub use config::{CacheConfig, MachineConfig, MachineKind, PrefetchConfig};
pub use counters::{MemCounters, PerfCounters};
pub use engine::{ArchState, Engine};
pub use error::SimError;
pub use hierarchy::MemHierarchy;
pub use machine::Machine;
pub use mem::{Memory, Region};
pub use trace::{execute_traced, Trace, TraceEntry};
