//! Simulator error type.

use std::fmt;

/// Errors raised by the functional simulator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimError {
    /// A memory access fell outside the allocated simulated memory.
    OutOfBounds {
        /// Offending element address.
        addr: u64,
        /// Allocated memory length in elements.
        len: u64,
    },
    /// A vector FMLA was executed on a machine without streaming-mode
    /// vector MLA units (e.g. Apple M4, paper §4.1).
    VectorFmlaUnsupported,
    /// An EXT shift amount exceeded `VLEN`.
    BadExtShift {
        /// The offending shift amount.
        shift: u8,
    },
    /// A tile row index exceeded `VLEN`.
    BadTileRow {
        /// The offending row index.
        row: u8,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::OutOfBounds { addr, len } => {
                write!(
                    f,
                    "memory access at element {addr} out of bounds (allocated {len})"
                )
            }
            SimError::VectorFmlaUnsupported => {
                write!(
                    f,
                    "vector FMLA is not available in streaming mode on this machine"
                )
            }
            SimError::BadExtShift { shift } => write!(f, "EXT shift {shift} out of range"),
            SimError::BadTileRow { row } => write!(f, "tile row {row} out of range"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = SimError::OutOfBounds { addr: 10, len: 4 };
        assert!(e.to_string().contains("element 10"));
        assert!(SimError::VectorFmlaUnsupported
            .to_string()
            .contains("streaming"));
    }
}
