//! In-order multi-issue timing engine with functional execution.
//!
//! The engine consumes instructions in program order and, for each one,
//! determines the earliest cycle at which it can issue subject to:
//!
//! 1. **Program order** — an instruction never issues before its
//!    predecessor's issue cycle (head-of-line blocking, as on the modelled
//!    in-order streaming units; this is what makes the paper's instruction
//!    scheduling measurable).
//! 2. **Operand readiness** — a register scoreboard tracks when each
//!    vector/tile register's value becomes available. Read-modify-write
//!    accumulators (FMLA destinations, FMOPA tiles) serialize on
//!    themselves, so peak matrix throughput needs `fmopa_latency`
//!    independent tiles in flight (paper Figure 3a).
//! 3. **Issue width** — at most `issue_width` instructions per cycle.
//! 4. **Unit occupancy** — each pipe class has a fixed number of units,
//!    each reusable after the instruction's issue interval.
//!
//! Functional semantics are applied in program order, so simulated results
//! are exact and independent of the timing model.

use crate::config::MachineConfig;
use crate::counters::PerfCounters;
use crate::error::SimError;
use crate::hierarchy::MemHierarchy;
use crate::mem::Memory;
use lx2_isa::{Inst, MemKind, Reg, VLEN};

/// Architectural data state: vector registers and tile registers.
#[derive(Clone)]
pub struct ArchState {
    /// Vector registers.
    pub v: [[f64; VLEN]; lx2_isa::NUM_VREGS],
    /// Tile registers, `za[tile][row][col]`.
    pub za: [[[f64; VLEN]; VLEN]; lx2_isa::NUM_ZA_TILES],
}

impl Default for ArchState {
    fn default() -> Self {
        ArchState {
            v: [[0.0; VLEN]; lx2_isa::NUM_VREGS],
            za: [[[0.0; VLEN]; VLEN]; lx2_isa::NUM_ZA_TILES],
        }
    }
}

/// The in-order issue engine.
pub struct Engine {
    cfg: MachineConfig,
    /// Architectural data state.
    pub state: ArchState,
    /// Ready cycle per vector register.
    vready: [u64; lx2_isa::NUM_VREGS],
    /// Ready cycle per tile register.
    zaready: [u64; lx2_isa::NUM_ZA_TILES],
    /// Next-free cycle per unit, grouped by pipe class.
    unit_free: [Vec<u64>; 4],
    /// Cycle of the most recent issue.
    issue_cycle: u64,
    /// Instructions already issued in `issue_cycle`.
    issued_in_cycle: usize,
    /// Completion horizon (latest result availability seen).
    horizon: u64,
    /// Whether the core is in streaming (SME) mode. Matrix instructions
    /// require streaming mode; on machines without streaming-mode vector
    /// FMLA (Apple M4), vector MLA is only legal *outside* it.
    streaming: bool,
    /// Core-side counters (memory counters live in the hierarchy).
    pub counters: PerfCounters,
}

impl Engine {
    /// New engine for a configuration.
    pub fn new(cfg: &MachineConfig) -> Self {
        cfg.validate().expect("invalid machine configuration");
        let unit_free = [
            vec![0u64; cfg.vector_units],
            vec![0u64; cfg.matrix_units],
            vec![0u64; cfg.load_units],
            vec![0u64; cfg.store_units],
        ];
        Engine {
            cfg: cfg.clone(),
            state: ArchState::default(),
            vready: [0; lx2_isa::NUM_VREGS],
            zaready: [0; lx2_isa::NUM_ZA_TILES],
            unit_free,
            issue_cycle: 0,
            issued_in_cycle: 0,
            horizon: 0,
            streaming: true,
            counters: PerfCounters::default(),
        }
    }

    /// The machine configuration this engine runs.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Switch streaming (SME) mode. Outside streaming mode vector MLA is
    /// always legal (NEON path), which is how the Apple M4
    /// auto-vectorization baseline executes.
    pub fn set_streaming(&mut self, on: bool) {
        self.streaming = on;
    }

    /// Whether the core is in streaming mode.
    pub fn streaming(&self) -> bool {
        self.streaming
    }

    /// Elapsed cycles: the completion horizon of everything issued so far.
    pub fn elapsed_cycles(&self) -> u64 {
        self.horizon.max(self.issue_cycle)
    }

    /// Cycle at which the most recent instruction issued.
    pub fn last_issue_cycle(&self) -> u64 {
        self.issue_cycle
    }

    #[inline]
    fn reg_ready(&self, reg: Reg) -> u64 {
        match reg {
            Reg::V(v) => self.vready[v.index()],
            Reg::Za(z) => self.zaready[z.index()],
        }
    }

    #[inline]
    fn set_reg_ready(&mut self, reg: Reg, t: u64) {
        match reg {
            Reg::V(v) => self.vready[v.index()] = t,
            Reg::Za(z) => self.zaready[z.index()] = t,
        }
    }

    /// Issue interval (cycles the chosen unit stays occupied).
    ///
    /// Vector loads/stores that straddle a cache-line boundary occupy the
    /// unit for two slots (they issue two line accesses); strided gathers
    /// occupy it for `ldcol_ii`.
    fn issue_interval(&self, inst: &Inst) -> u64 {
        let unaligned = |addr: u64| {
            if !addr.is_multiple_of(VLEN as u64) {
                2
            } else {
                1
            }
        };
        match inst {
            Inst::LdCol { .. } | Inst::StCol { .. } => self.cfg.ldcol_ii,
            Inst::MovaToVec { .. } | Inst::MovaFromVec { .. } => 2,
            Inst::Ld1d { addr, .. } | Inst::St1d { addr, .. } => unaligned(*addr),
            _ => 1,
        }
    }

    /// Result latency for non-memory instructions.
    fn result_latency(&self, inst: &Inst) -> u64 {
        match inst {
            Inst::Fmla { .. } | Inst::FmlaIdx { .. } | Inst::Fadd { .. } | Inst::Fmul { .. } => {
                self.cfg.fp_latency
            }
            Inst::Ext { .. } => self.cfg.ext_latency,
            Inst::DupImm { .. } => 1,
            Inst::Fmopa { .. } => self.cfg.fmopa_latency,
            Inst::Fmlag { .. } => self.cfg.fmlag_latency,
            Inst::MovaToVec { .. } | Inst::MovaFromVec { .. } => self.cfg.mova_latency,
            Inst::ZeroZa { .. } => 1,
            // Memory instructions get their latency from the hierarchy.
            _ => 0,
        }
    }

    /// Executes one instruction: timing first, then functional semantics.
    pub fn step(
        &mut self,
        inst: &Inst,
        mem: &mut Memory,
        hier: &mut MemHierarchy,
    ) -> Result<(), SimError> {
        if self.streaming
            && !self.cfg.allow_vector_fmla
            && matches!(inst, Inst::Fmla { .. } | Inst::FmlaIdx { .. })
        {
            return Err(SimError::VectorFmlaUnsupported);
        }

        // 1. Operand readiness.
        let mut ready = 0u64;
        for r in inst.reads().into_iter().flatten() {
            ready = ready.max(self.reg_ready(r));
        }
        if let Inst::Fmlag { vn0, .. } = inst {
            for k in 1..=inst.group_extra_reads() {
                ready = ready.max(self.vready[vn0.index() + k]);
            }
        }

        // 2. Find the issue cycle: in-order, width-limited, unit-limited.
        let pipe = inst.pipe();
        let unit_idx = {
            let units = &self.unit_free[pipe.index()];
            let mut best = 0;
            for (i, &f) in units.iter().enumerate() {
                if f < units[best] {
                    best = i;
                }
            }
            best
        };
        let unit_ready = self.unit_free[pipe.index()][unit_idx];
        let mut t = ready.max(unit_ready).max(self.issue_cycle);
        if t == self.issue_cycle && self.issued_in_cycle >= self.cfg.issue_width {
            t += 1;
        }

        // 3. Commit issue bookkeeping.
        if t == self.issue_cycle {
            self.issued_in_cycle += 1;
        } else {
            debug_assert!(t > self.issue_cycle);
            self.issue_cycle = t;
            self.issued_in_cycle = 1;
            self.counters.active_cycles += 1;
        }
        let ii = self.issue_interval(inst);
        self.unit_free[pipe.index()][unit_idx] = t + ii;

        // 4. Latency: memory instructions consult the hierarchy at cycle t.
        let latency = match *inst {
            Inst::Ld1d { addr, .. } => hier.access(t, addr, VLEN as u64, MemKind::Read),
            Inst::LdCol { addr, stride, .. } => {
                hier.access_strided(t, addr, stride, VLEN as u64, MemKind::Read)
            }
            Inst::St1d { addr, .. } | Inst::StZaRow { addr, .. } => {
                hier.access(t, addr, VLEN as u64, MemKind::Write)
            }
            Inst::StCol { addr, stride, .. } => {
                hier.access_strided(t, addr, stride, VLEN as u64, MemKind::Write)
            }
            Inst::Prfm { addr, kind } => {
                hier.software_prefetch(t, addr, kind);
                0
            }
            _ => self.result_latency(inst),
        };

        // 5. Scoreboard update.
        if let Some(dst) = inst.write() {
            let done = t + latency.max(1);
            self.set_reg_ready(dst, done);
            self.horizon = self.horizon.max(done);
        } else {
            // Stores/prefetches: they retire through the store buffer; the
            // horizon only advances past their issue.
            self.horizon = self.horizon.max(t + 1);
        }

        // 6. Counters.
        self.counters.instructions += 1;
        self.counters.per_pipe[pipe.index()] += 1;
        self.counters.pipe_busy[pipe.index()] += ii;
        self.counters.flops += inst.flops();
        match inst {
            Inst::Fmopa { .. } => self.counters.fmopa += 1,
            Inst::Fmla { .. } | Inst::FmlaIdx { .. } => self.counters.fmla += 1,
            Inst::Fmlag { .. } => self.counters.fmlag += 1,
            _ => {}
        }

        // 7. Functional execution (program order, exact).
        self.exec(inst, mem)?;
        self.counters.cycles = self.elapsed_cycles();
        Ok(())
    }

    /// Functional semantics.
    fn exec(&mut self, inst: &Inst, mem: &mut Memory) -> Result<(), SimError> {
        let s = &mut self.state;
        match *inst {
            Inst::Ld1d { vd, addr } => {
                s.v[vd.index()] = mem.read_vec(addr)?;
            }
            Inst::LdCol { vd, addr, stride } => {
                s.v[vd.index()] = mem.read_strided(addr, stride)?;
            }
            Inst::St1d { vs, addr } => {
                mem.write_vec(addr, &s.v[vs.index()])?;
            }
            Inst::StZaRow { za, row, addr } => {
                if row as usize >= VLEN {
                    return Err(SimError::BadTileRow { row });
                }
                let slice = s.za[za.index()][row as usize];
                mem.write_vec(addr, &slice)?;
            }
            Inst::StCol { vs, addr, stride } => {
                let v = s.v[vs.index()];
                mem.write_strided(addr, stride, &v)?;
            }
            Inst::Fmla { vd, vn, vm } => {
                let (n, m) = (s.v[vn.index()], s.v[vm.index()]);
                let d = &mut s.v[vd.index()];
                for l in 0..VLEN {
                    d[l] += n[l] * m[l];
                }
            }
            Inst::FmlaIdx { vd, vn, vm, idx } => {
                let n = s.v[vn.index()];
                let scale = s.v[vm.index()][idx as usize % VLEN];
                let d = &mut s.v[vd.index()];
                for l in 0..VLEN {
                    d[l] += n[l] * scale;
                }
            }
            Inst::Fadd { vd, vn, vm } => {
                let (n, m) = (s.v[vn.index()], s.v[vm.index()]);
                let d = &mut s.v[vd.index()];
                for l in 0..VLEN {
                    d[l] = n[l] + m[l];
                }
            }
            Inst::Fmul { vd, vn, vm } => {
                let (n, m) = (s.v[vn.index()], s.v[vm.index()]);
                let d = &mut s.v[vd.index()];
                for l in 0..VLEN {
                    d[l] = n[l] * m[l];
                }
            }
            Inst::Ext { vd, vn, vm, shift } => {
                if shift as usize > VLEN {
                    return Err(SimError::BadExtShift { shift });
                }
                let (n, m) = (s.v[vn.index()], s.v[vm.index()]);
                let mut out = [0.0; VLEN];
                for (l, slot) in out.iter_mut().enumerate() {
                    let pos = l + shift as usize;
                    *slot = if pos < VLEN { n[pos] } else { m[pos - VLEN] };
                }
                s.v[vd.index()] = out;
            }
            Inst::DupImm { vd, imm } => {
                s.v[vd.index()] = [imm; VLEN];
            }
            Inst::Fmopa { za, vn, vm, mask } => {
                let (n, m) = (s.v[vn.index()], s.v[vm.index()]);
                let tile = &mut s.za[za.index()];
                let mut nz_rows = 0u64;
                for (i, row) in tile.iter_mut().enumerate() {
                    if mask.contains(i) {
                        let a = n[i];
                        if a != 0.0 {
                            nz_rows += 1;
                        }
                        for (slot, &mv) in row.iter_mut().zip(m.iter()) {
                            *slot += a * mv;
                        }
                    }
                }
                let nz_cols = m.iter().filter(|&&x| x != 0.0).count() as u64;
                self.counters.useful_matrix_macs += nz_rows * nz_cols;
            }
            Inst::Fmlag {
                za,
                half,
                vn0,
                vm,
                idx,
            } => {
                let scale = s.v[vm.index()][idx as usize % VLEN];
                let base = vn0.index();
                let tile = za.index();
                for k in 0..VLEN / 2 {
                    let src = s.v[base + k];
                    let row = &mut s.za[tile][2 * k + half as usize % 2];
                    for l in 0..VLEN {
                        row[l] += src[l] * scale;
                    }
                }
            }
            Inst::MovaToVec { vd, za, row } => {
                if row as usize >= VLEN {
                    return Err(SimError::BadTileRow { row });
                }
                s.v[vd.index()] = s.za[za.index()][row as usize];
            }
            Inst::MovaFromVec { za, row, vs } => {
                if row as usize >= VLEN {
                    return Err(SimError::BadTileRow { row });
                }
                s.za[za.index()][row as usize] = s.v[vs.index()];
            }
            Inst::ZeroZa { za, mask } => {
                let tile = &mut s.za[za.index()];
                for (i, row) in tile.iter_mut().enumerate() {
                    if mask.contains(i) {
                        *row = [0.0; VLEN];
                    }
                }
            }
            Inst::Prfm { .. } => {}
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lx2_isa::{RowMask, VReg, ZaReg};

    fn setup() -> (Engine, Memory, MemHierarchy) {
        let cfg = MachineConfig::lx2();
        (Engine::new(&cfg), Memory::new(), MemHierarchy::new(&cfg))
    }

    fn v(i: usize) -> VReg {
        VReg::new(i)
    }
    fn za(i: usize) -> ZaReg {
        ZaReg::new(i)
    }

    #[test]
    fn dup_and_fadd_functional() {
        let (mut e, mut m, mut h) = setup();
        e.step(&Inst::DupImm { vd: v(0), imm: 2.0 }, &mut m, &mut h)
            .unwrap();
        e.step(&Inst::DupImm { vd: v(1), imm: 3.0 }, &mut m, &mut h)
            .unwrap();
        e.step(
            &Inst::Fadd {
                vd: v(2),
                vn: v(0),
                vm: v(1),
            },
            &mut m,
            &mut h,
        )
        .unwrap();
        assert_eq!(e.state.v[2], [5.0; VLEN]);
    }

    #[test]
    fn ext_concatenates() {
        let (mut e, mut m, mut h) = setup();
        e.state.v[0] = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0];
        e.state.v[1] = [8.0, 9.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0];
        e.step(
            &Inst::Ext {
                vd: v(2),
                vn: v(0),
                vm: v(1),
                shift: 3,
            },
            &mut m,
            &mut h,
        )
        .unwrap();
        assert_eq!(e.state.v[2], [3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]);
    }

    #[test]
    fn fmopa_rank1_update() {
        let (mut e, mut m, mut h) = setup();
        e.state.v[0] = [1.0, 2.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        e.state.v[1] = [10.0; VLEN];
        e.step(
            &Inst::Fmopa {
                za: za(0),
                vn: v(0),
                vm: v(1),
                mask: RowMask::ALL,
            },
            &mut m,
            &mut h,
        )
        .unwrap();
        assert_eq!(e.state.za[0][0], [10.0; VLEN]);
        assert_eq!(e.state.za[0][1], [20.0; VLEN]);
        assert_eq!(e.state.za[0][2], [0.0; VLEN]);
        // 2 nonzero rows x 8 nonzero cols.
        assert_eq!(e.counters.useful_matrix_macs, 16);
    }

    #[test]
    fn fmopa_respects_row_mask() {
        let (mut e, mut m, mut h) = setup();
        e.state.v[0] = [1.0; VLEN];
        e.state.v[1] = [1.0; VLEN];
        e.step(
            &Inst::Fmopa {
                za: za(0),
                vn: v(0),
                vm: v(1),
                mask: RowMask::single(3),
            },
            &mut m,
            &mut h,
        )
        .unwrap();
        for r in 0..VLEN {
            let expect = if r == 3 { 1.0 } else { 0.0 };
            assert_eq!(e.state.za[0][r], [expect; VLEN]);
        }
    }

    #[test]
    fn load_store_roundtrip() {
        let (mut e, mut m, mut h) = setup();
        let r = m.alloc(64, 8);
        m.store_slice(r.base, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0])
            .unwrap();
        e.step(
            &Inst::Ld1d {
                vd: v(5),
                addr: r.base,
            },
            &mut m,
            &mut h,
        )
        .unwrap();
        e.step(
            &Inst::St1d {
                vs: v(5),
                addr: r.base + 16,
            },
            &mut m,
            &mut h,
        )
        .unwrap();
        assert_eq!(m.read(r.base + 16).unwrap(), 1.0);
        assert_eq!(m.read(r.base + 23).unwrap(), 8.0);
    }

    #[test]
    fn dependent_fmla_chain_serializes_at_fp_latency() {
        let (mut e, mut m, mut h) = setup();
        let n = 16;
        for _ in 0..n {
            e.step(
                &Inst::Fmla {
                    vd: v(0),
                    vn: v(1),
                    vm: v(2),
                },
                &mut m,
                &mut h,
            )
            .unwrap();
        }
        // Chain of RMW on v0: every FMLA waits fp_latency for the last.
        let cfg = MachineConfig::lx2();
        assert!(e.elapsed_cycles() >= n * cfg.fp_latency);
    }

    #[test]
    fn independent_fmla_pipelines_on_two_units() {
        let (mut e, mut m, mut h) = setup();
        let n = 32u64;
        for k in 0..n {
            let d = v((k % 16) as usize); // 16 independent accumulators
            e.step(
                &Inst::Fmla {
                    vd: d,
                    vn: v(30),
                    vm: v(31),
                },
                &mut m,
                &mut h,
            )
            .unwrap();
        }
        // 2 vector units, II=1: ~n/2 cycles plus pipeline fill.
        assert!(
            e.elapsed_cycles() <= n / 2 + 8,
            "elapsed {}",
            e.elapsed_cycles()
        );
    }

    #[test]
    fn same_tile_fmopa_serializes_four_tiles_pipeline() {
        let cfg = MachineConfig::lx2();
        // Same tile: latency-bound chain.
        let (mut e, mut m, mut h) = setup();
        let n = 32u64;
        for _ in 0..n {
            e.step(
                &Inst::Fmopa {
                    za: za(0),
                    vn: v(0),
                    vm: v(1),
                    mask: RowMask::ALL,
                },
                &mut m,
                &mut h,
            )
            .unwrap();
        }
        let serial = e.elapsed_cycles();
        assert!(serial >= n * cfg.fmopa_latency);

        // Four tiles: throughput-bound at ~1/cycle.
        let (mut e, mut m, mut h) = setup();
        for k in 0..n {
            e.step(
                &Inst::Fmopa {
                    za: za((k % 4) as usize),
                    vn: v(0),
                    vm: v(1),
                    mask: RowMask::ALL,
                },
                &mut m,
                &mut h,
            )
            .unwrap();
        }
        let pipelined = e.elapsed_cycles();
        assert!(pipelined <= n + 8, "pipelined {pipelined}");
        assert!(
            serial >= 3 * pipelined,
            "serial {serial} vs pipelined {pipelined}"
        );
    }

    #[test]
    fn matrix_and_vector_coissue() {
        // 8 FMOPA + 8 FMLA interleaved should take barely longer than the
        // slower of the two alone (paper Figure 3b).
        let cfg = MachineConfig::lx2();
        let run = |insts: Vec<Inst>| {
            let (mut e, mut m, mut h) = setup();
            for i in &insts {
                e.step(i, &mut m, &mut h).unwrap();
            }
            e.elapsed_cycles()
        };
        let fmopa = |k: u64| Inst::Fmopa {
            za: za((k % 4) as usize),
            vn: v(0),
            vm: v(1),
            mask: RowMask::ALL,
        };
        let fmla = |k: u64| Inst::Fmla {
            vd: v(2 + (k % 8) as usize),
            vn: v(30),
            vm: v(31),
        };
        let reps = 32u64;
        let matrix_only = run((0..reps).map(fmopa).collect());
        let vector_only = run((0..reps).map(fmla).collect());
        let interleaved = run((0..reps).flat_map(|k| [fmopa(k), fmla(k)]).collect());
        let isolated = matrix_only + vector_only;
        assert!(
            interleaved as f64 <= 0.75 * isolated as f64,
            "interleaved {interleaved} vs isolated {isolated}"
        );
        let _ = cfg;
    }

    #[test]
    fn issue_width_bounds_ipc() {
        let (mut e, mut m, mut h) = setup();
        // Wide independent mix can never exceed issue_width IPC.
        for k in 0..1000usize {
            let i = match k % 4 {
                0 => Inst::DupImm {
                    vd: v(k % 8),
                    imm: 1.0,
                },
                1 => Inst::Fmla {
                    vd: v(8 + k % 8),
                    vn: v(30),
                    vm: v(31),
                },
                2 => Inst::Fmopa {
                    za: za(k % 4),
                    vn: v(0),
                    vm: v(1),
                    mask: RowMask::ALL,
                },
                _ => Inst::Ext {
                    vd: v(16 + k % 8),
                    vn: v(30),
                    vm: v(31),
                    shift: 1,
                },
            };
            e.step(&i, &mut m, &mut h).unwrap();
        }
        let ipc = e.counters.instructions as f64 / e.elapsed_cycles() as f64;
        assert!(ipc <= MachineConfig::lx2().issue_width as f64 + 1e-9);
    }

    #[test]
    fn m4_rejects_vector_fmla() {
        let cfg = MachineConfig::apple_m4();
        let mut e = Engine::new(&cfg);
        let mut m = Memory::new();
        let mut h = MemHierarchy::new(&cfg);
        let err = e.step(
            &Inst::Fmla {
                vd: v(0),
                vn: v(1),
                vm: v(2),
            },
            &mut m,
            &mut h,
        );
        assert_eq!(err, Err(SimError::VectorFmlaUnsupported));
    }

    #[test]
    fn fmlag_updates_even_rows() {
        let cfg = MachineConfig::apple_m4();
        let mut e = Engine::new(&cfg);
        let mut m = Memory::new();
        let mut h = MemHierarchy::new(&cfg);
        for k in 0..4 {
            e.state.v[8 + k] = [(k + 1) as f64; VLEN];
        }
        e.state.v[0] = [2.0; VLEN];
        e.step(
            &Inst::Fmlag {
                za: za(0),
                half: 0,
                vn0: v(8),
                vm: v(0),
                idx: 0,
            },
            &mut m,
            &mut h,
        )
        .unwrap();
        assert_eq!(e.state.za[0][0], [2.0; VLEN]);
        assert_eq!(e.state.za[0][2], [4.0; VLEN]);
        assert_eq!(e.state.za[0][4], [6.0; VLEN]);
        assert_eq!(e.state.za[0][6], [8.0; VLEN]);
        assert_eq!(e.state.za[0][1], [0.0; VLEN]);
    }

    #[test]
    fn bad_ext_shift_rejected() {
        let (mut e, mut m, mut h) = setup();
        let err = e.step(
            &Inst::Ext {
                vd: v(0),
                vn: v(1),
                vm: v(2),
                shift: 9,
            },
            &mut m,
            &mut h,
        );
        assert_eq!(err, Err(SimError::BadExtShift { shift: 9 }));
    }
}
