//! Machine configurations.
//!
//! Two presets mirror the paper's evaluation platforms:
//!
//! * [`MachineConfig::lx2`] — the "LX2" high-performance CPU: 512-bit SVL,
//!   8×8 f64 tiles, vector MLA available, outer-product peak ≈ 4× vector
//!   MLA peak (paper §2.1).
//! * [`MachineConfig::apple_m4`] — Apple M4: same tile geometry, but no
//!   streaming-mode vector FMLA (multi-vector matrix MLA instead) and no
//!   architectural support for in-place accumulation (paper §4).

/// Which modelled CPU a configuration describes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MachineKind {
    /// The LX2 high-performance CPU (SVE-512 + SME-style tiles).
    Lx2,
    /// Apple M4 (SME tiles, no streaming vector FMLA).
    AppleM4,
}

/// Geometry of one cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity (ways per set).
    pub assoc: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
}

impl CacheConfig {
    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.size_bytes / self.line_bytes / self.assoc
    }

    /// Validates that the geometry is consistent (power-of-two sets,
    /// capacity divisible by line and way sizes).
    pub fn validate(&self) -> Result<(), String> {
        if self.line_bytes == 0 || !self.line_bytes.is_power_of_two() {
            return Err(format!(
                "line size {} must be a power of two",
                self.line_bytes
            ));
        }
        if self.assoc == 0 {
            return Err("associativity must be nonzero".into());
        }
        if !self.size_bytes.is_multiple_of(self.line_bytes * self.assoc) {
            return Err(format!(
                "capacity {} not divisible by line*assoc {}",
                self.size_bytes,
                self.line_bytes * self.assoc
            ));
        }
        let sets = self.num_sets();
        if !sets.is_power_of_two() {
            return Err(format!("set count {sets} must be a power of two"));
        }
        Ok(())
    }
}

/// Hardware stream-prefetcher parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PrefetchConfig {
    /// Whether the hardware prefetcher is active.
    pub enabled: bool,
    /// Number of concurrently tracked streams.
    pub streams: usize,
    /// Confidence (consecutive-line matches) needed before prefetching.
    pub min_confidence: u32,
    /// How many lines ahead of the demand stream to run.
    pub degree: u64,
    /// Lines per page; prefetch never crosses a page boundary.
    pub page_lines: u64,
}

/// Full description of a modelled machine.
///
/// Latencies are in core cycles; units are the number of parallel execution
/// units per pipe class. Issue is in-order, up to `issue_width` per cycle.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Human-readable name.
    pub name: &'static str,
    /// Which platform this models.
    pub kind: MachineKind,
    /// Maximum instructions issued per cycle.
    pub issue_width: usize,
    /// Parallel vector FP/permute units.
    pub vector_units: usize,
    /// Parallel matrix compute units.
    pub matrix_units: usize,
    /// Parallel load units.
    pub load_units: usize,
    /// Parallel store units.
    pub store_units: usize,
    /// Vector FMLA/FADD/FMUL result latency.
    pub fp_latency: u64,
    /// EXT (permute) result latency.
    pub ext_latency: u64,
    /// FMOPA accumulate latency (same-tile chains serialize at this, so
    /// peak matrix throughput needs this many independent tiles in flight).
    pub fmopa_latency: u64,
    /// M-MLA (multi-vector matrix MLA) accumulate latency.
    pub fmlag_latency: u64,
    /// Tile-slice ↔ vector transfer latency ("two times more cycles than
    /// outer product instructions", paper §3.1.1).
    pub mova_latency: u64,
    /// Issue interval occupied on the load unit by a strided gather.
    pub ldcol_ii: u64,
    /// Whether streaming-mode vector FMLA is architecturally available.
    pub allow_vector_fmla: bool,
    /// f64 lanes of the *baseline* (auto-vectorization) vector ISA:
    /// 8 on LX2 (SVE-512); 2 on Apple M4, whose compiler baseline is
    /// 128-bit NEON (paper §5.4).
    pub baseline_vector_lanes: usize,
    /// Independent accumulator chains the baseline sustains — a stand-in
    /// for the out-of-order window (3 on LX2's narrow core, 8 on the
    /// very wide M4).
    pub baseline_unroll: usize,
    /// Whether in-place accumulation (vector → tile via outer product with
    /// a unit coefficient) is architecturally viable.
    pub allow_inplace_accum: bool,
    /// L1 data cache geometry.
    pub l1: CacheConfig,
    /// Unified L2 geometry.
    pub l2: CacheConfig,
    /// Load-use latency on an L1 hit.
    pub l1_latency: u64,
    /// Load-use latency on an L2 hit.
    pub l2_latency: u64,
    /// Load-use latency on a DRAM access.
    pub mem_latency: u64,
    /// L2→L1 fill-port occupancy per line (finite miss bandwidth).
    pub l1_fill_ii: u64,
    /// DRAM→L2 fill-port occupancy per line.
    pub l2_fill_ii: u64,
    /// Hardware prefetcher parameters.
    pub hw_prefetch: PrefetchConfig,
    /// Nominal core frequency, used only to convert cycles to seconds for
    /// GStencil/s style reporting.
    pub freq_ghz: f64,
    /// Socket-wide DRAM bandwidth in bytes per core cycle (shared across
    /// cores in the multicore model).
    pub dram_bw_bytes_per_cycle: f64,
}

impl MachineConfig {
    /// The LX2 high-performance CPU preset.
    pub fn lx2() -> Self {
        MachineConfig {
            name: "LX2",
            kind: MachineKind::Lx2,
            issue_width: 4,
            vector_units: 2,
            matrix_units: 1,
            load_units: 2,
            store_units: 1,
            fp_latency: 4,
            ext_latency: 2,
            fmopa_latency: 4,
            fmlag_latency: 4,
            mova_latency: 8,
            ldcol_ii: 8,
            allow_vector_fmla: true,
            baseline_vector_lanes: 8,
            baseline_unroll: 3,
            allow_inplace_accum: true,
            l1: CacheConfig {
                size_bytes: 64 * 1024,
                assoc: 8,
                line_bytes: 64,
            },
            l2: CacheConfig {
                size_bytes: 1024 * 1024,
                assoc: 8,
                line_bytes: 64,
            },
            l1_latency: 4,
            l2_latency: 14,
            mem_latency: 110,
            l1_fill_ii: 1,
            l2_fill_ii: 4,
            hw_prefetch: PrefetchConfig {
                enabled: true,
                streams: 16,
                min_confidence: 4,
                degree: 8,
                page_lines: 64,
            },
            freq_ghz: 2.5,
            dram_bw_bytes_per_cycle: 80.0,
        }
    }

    /// The Apple M4 (Pro) preset: 128 KiB L1D, 4 MiB shared L2 (paper
    /// §5.4); no streaming-mode vector FMLA, no in-place accumulation.
    pub fn apple_m4() -> Self {
        MachineConfig {
            name: "Apple M4",
            kind: MachineKind::AppleM4,
            // The M4 is a much wider core than LX2; its scalar/NEON
            // engine keeps baselines competitive even at 128-bit width.
            issue_width: 8,
            vector_units: 4,
            matrix_units: 1,
            load_units: 3,
            store_units: 2,
            fp_latency: 4,
            ext_latency: 2,
            fmopa_latency: 4,
            fmlag_latency: 4,
            mova_latency: 8,
            ldcol_ii: 8,
            allow_vector_fmla: false,
            baseline_vector_lanes: 2,
            baseline_unroll: 6,
            allow_inplace_accum: false,
            l1: CacheConfig {
                size_bytes: 128 * 1024,
                assoc: 8,
                line_bytes: 64,
            },
            l2: CacheConfig {
                size_bytes: 4 * 1024 * 1024,
                assoc: 16,
                line_bytes: 64,
            },
            l1_latency: 4,
            l2_latency: 16,
            mem_latency: 120,
            l1_fill_ii: 1,
            l2_fill_ii: 4,
            hw_prefetch: PrefetchConfig {
                enabled: true,
                streams: 16,
                min_confidence: 4,
                degree: 8,
                page_lines: 64,
            },
            freq_ghz: 4.0,
            dram_bw_bytes_per_cycle: 68.0,
        }
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.issue_width == 0 {
            return Err("issue width must be nonzero".into());
        }
        if self.vector_units == 0
            || self.matrix_units == 0
            || self.load_units == 0
            || self.store_units == 0
        {
            return Err("every pipe class needs at least one unit".into());
        }
        if self.baseline_vector_lanes == 0 || self.baseline_vector_lanes > lx2_isa::VLEN {
            return Err("baseline vector lanes must be in 1..=VLEN".into());
        }
        self.l1.validate().map_err(|e| format!("L1: {e}"))?;
        self.l2.validate().map_err(|e| format!("L2: {e}"))?;
        if self.l1.line_bytes != self.l2.line_bytes {
            return Err("L1 and L2 line sizes must match".into());
        }
        if !(self.l1_latency <= self.l2_latency && self.l2_latency <= self.mem_latency) {
            return Err("latencies must be monotonically increasing down the hierarchy".into());
        }
        Ok(())
    }

    /// Peak FP64 flops per cycle of the matrix units (FMA = 2 flops).
    pub fn matrix_peak_flops_per_cycle(&self) -> f64 {
        (self.matrix_units * 2 * lx2_isa::TILE_ELEMS) as f64
    }

    /// Peak FP64 flops per cycle of the vector units.
    pub fn vector_peak_flops_per_cycle(&self) -> f64 {
        (self.vector_units * 2 * lx2_isa::VLEN) as f64
    }

    /// Units available for a pipe class.
    pub fn units(&self, class: lx2_isa::PipeClass) -> usize {
        match class {
            lx2_isa::PipeClass::VectorFp => self.vector_units,
            lx2_isa::PipeClass::Matrix => self.matrix_units,
            lx2_isa::PipeClass::Load => self.load_units,
            lx2_isa::PipeClass::Store => self.store_units,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        MachineConfig::lx2().validate().unwrap();
        MachineConfig::apple_m4().validate().unwrap();
    }

    #[test]
    fn outer_product_is_4x_mla_peak() {
        // Paper §2.1: "the outer product instruction reaches approximately
        // four times the theoretical double-precision performance of MLA".
        let cfg = MachineConfig::lx2();
        let ratio = cfg.matrix_peak_flops_per_cycle() / cfg.vector_peak_flops_per_cycle();
        assert_eq!(ratio, 4.0);
    }

    #[test]
    fn m4_lacks_streaming_vector_fmla() {
        let cfg = MachineConfig::apple_m4();
        assert!(!cfg.allow_vector_fmla);
        assert!(!cfg.allow_inplace_accum);
        assert!(MachineConfig::lx2().allow_vector_fmla);
    }

    #[test]
    fn cache_geometry() {
        let c = CacheConfig {
            size_bytes: 64 * 1024,
            assoc: 4,
            line_bytes: 64,
        };
        assert_eq!(c.num_sets(), 256);
        c.validate().unwrap();
    }

    #[test]
    fn bad_cache_geometry_rejected() {
        let c = CacheConfig {
            size_bytes: 60 * 1024,
            assoc: 4,
            line_bytes: 64,
        };
        assert!(c.validate().is_err());
        let c = CacheConfig {
            size_bytes: 64 * 1024,
            assoc: 4,
            line_bytes: 60,
        };
        assert!(c.validate().is_err());
        let c = CacheConfig {
            size_bytes: 64 * 1024,
            assoc: 0,
            line_bytes: 64,
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn units_lookup() {
        let cfg = MachineConfig::lx2();
        assert_eq!(cfg.units(lx2_isa::PipeClass::VectorFp), 2);
        assert_eq!(cfg.units(lx2_isa::PipeClass::Matrix), 1);
        assert_eq!(cfg.units(lx2_isa::PipeClass::Load), 2);
        assert_eq!(cfg.units(lx2_isa::PipeClass::Store), 1);
    }
}
