//! Simulated flat f64 memory with a bump allocator.
//!
//! Addresses everywhere in the simulator are **element indices** into this
//! memory (1 element = 8 bytes); the cache hierarchy converts to line
//! addresses internally.

use crate::error::SimError;
use lx2_isa::VLEN;

/// Flat simulated memory.
#[derive(Clone, Debug, Default)]
pub struct Memory {
    data: Vec<f64>,
}

/// A region returned by [`Memory::alloc`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Region {
    /// First element address of the region.
    pub base: u64,
    /// Length in elements.
    pub len: u64,
}

impl Memory {
    /// Empty memory.
    pub fn new() -> Self {
        Memory { data: Vec::new() }
    }

    /// Allocates `len` elements aligned to `align` elements (must be a
    /// power of two), zero-initialized.
    pub fn alloc(&mut self, len: usize, align: usize) -> Region {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let base = (self.data.len() + align - 1) & !(align - 1);
        self.data.resize(base + len, 0.0);
        Region {
            base: base as u64,
            len: len as u64,
        }
    }

    /// Total allocated length in elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing is allocated.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read one element.
    #[inline]
    pub fn read(&self, addr: u64) -> Result<f64, SimError> {
        self.data
            .get(addr as usize)
            .copied()
            .ok_or(SimError::OutOfBounds {
                addr,
                len: self.data.len() as u64,
            })
    }

    /// Write one element.
    #[inline]
    pub fn write(&mut self, addr: u64, value: f64) -> Result<(), SimError> {
        let len = self.data.len() as u64;
        match self.data.get_mut(addr as usize) {
            Some(slot) => {
                *slot = value;
                Ok(())
            }
            None => Err(SimError::OutOfBounds { addr, len }),
        }
    }

    /// Read a contiguous vector of `VLEN` elements.
    #[inline]
    pub fn read_vec(&self, addr: u64) -> Result<[f64; VLEN], SimError> {
        let start = addr as usize;
        let end = start + VLEN;
        if end > self.data.len() {
            return Err(SimError::OutOfBounds {
                addr: end as u64 - 1,
                len: self.data.len() as u64,
            });
        }
        let mut out = [0.0; VLEN];
        out.copy_from_slice(&self.data[start..end]);
        Ok(out)
    }

    /// Write a contiguous vector of `VLEN` elements.
    #[inline]
    pub fn write_vec(&mut self, addr: u64, value: &[f64; VLEN]) -> Result<(), SimError> {
        let start = addr as usize;
        let end = start + VLEN;
        if end > self.data.len() {
            return Err(SimError::OutOfBounds {
                addr: end as u64 - 1,
                len: self.data.len() as u64,
            });
        }
        self.data[start..end].copy_from_slice(value);
        Ok(())
    }

    /// Read `VLEN` elements separated by `stride` (a column gather).
    #[inline]
    pub fn read_strided(&self, addr: u64, stride: u64) -> Result<[f64; VLEN], SimError> {
        let mut out = [0.0; VLEN];
        for (l, slot) in out.iter_mut().enumerate() {
            *slot = self.read(addr + l as u64 * stride)?;
        }
        Ok(out)
    }

    /// Write `VLEN` elements separated by `stride` (a column scatter).
    #[inline]
    pub fn write_strided(
        &mut self,
        addr: u64,
        stride: u64,
        value: &[f64; VLEN],
    ) -> Result<(), SimError> {
        for (l, &v) in value.iter().enumerate() {
            self.write(addr + l as u64 * stride, v)?;
        }
        Ok(())
    }

    /// Bulk copy a host slice into simulated memory at `addr`.
    pub fn store_slice(&mut self, addr: u64, src: &[f64]) -> Result<(), SimError> {
        let start = addr as usize;
        let end = start + src.len();
        if end > self.data.len() {
            return Err(SimError::OutOfBounds {
                addr: end as u64 - 1,
                len: self.data.len() as u64,
            });
        }
        self.data[start..end].copy_from_slice(src);
        Ok(())
    }

    /// Bulk copy simulated memory at `addr` into a host slice.
    pub fn load_slice(&self, addr: u64, dst: &mut [f64]) -> Result<(), SimError> {
        let start = addr as usize;
        let end = start + dst.len();
        if end > self.data.len() {
            return Err(SimError::OutOfBounds {
                addr: end as u64 - 1,
                len: self.data.len() as u64,
            });
        }
        dst.copy_from_slice(&self.data[start..end]);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_aligned_and_zeroed() {
        let mut m = Memory::new();
        let _pad = m.alloc(3, 1);
        let r = m.alloc(16, 8);
        assert_eq!(r.base % 8, 0);
        for a in r.base..r.base + r.len {
            assert_eq!(m.read(a).unwrap(), 0.0);
        }
    }

    #[test]
    fn scalar_roundtrip() {
        let mut m = Memory::new();
        let r = m.alloc(4, 1);
        m.write(r.base + 2, 3.5).unwrap();
        assert_eq!(m.read(r.base + 2).unwrap(), 3.5);
    }

    #[test]
    fn oob_read_rejected() {
        let m = Memory::new();
        assert!(m.read(0).is_err());
    }

    #[test]
    fn vec_roundtrip() {
        let mut m = Memory::new();
        let r = m.alloc(VLEN * 2, VLEN);
        let v = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        m.write_vec(r.base + 1, &v).unwrap();
        assert_eq!(m.read_vec(r.base + 1).unwrap(), v);
    }

    #[test]
    fn vec_oob_rejected() {
        let mut m = Memory::new();
        let r = m.alloc(VLEN, 1);
        assert!(m.read_vec(r.base + 1).is_err());
        assert!(m.write_vec(r.base + 1, &[0.0; VLEN]).is_err());
    }

    #[test]
    fn strided_roundtrip() {
        let mut m = Memory::new();
        let r = m.alloc(VLEN * 10, 1);
        let v = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        m.write_strided(r.base, 10, &v).unwrap();
        assert_eq!(m.read_strided(r.base, 10).unwrap(), v);
        assert_eq!(m.read(r.base + 30).unwrap(), 4.0);
    }

    #[test]
    fn slice_roundtrip() {
        let mut m = Memory::new();
        let r = m.alloc(8, 1);
        m.store_slice(r.base, &[9.0, 8.0, 7.0]).unwrap();
        let mut out = [0.0; 3];
        m.load_slice(r.base, &mut out).unwrap();
        assert_eq!(out, [9.0, 8.0, 7.0]);
    }
}
