//! Hardware stream prefetcher.
//!
//! Models the commodity-CPU prefetcher the paper describes in §2.3.3 and
//! §3.3: a table of forward *streams* detected from consecutive line
//! accesses. It excels at 1-D sequential sweeps (the vector method) and
//! copes poorly with the short row bursts + large row jumps of tiled
//! matrix processing — exactly the asymmetry behind Table 3.

use crate::config::PrefetchConfig;

#[derive(Clone, Copy, Debug)]
struct Stream {
    /// Next line the demand stream is expected to touch.
    expect: u64,
    /// Highest line already requested by this stream.
    prefetched_until: u64,
    /// Consecutive-line matches observed.
    confidence: u32,
    /// LRU tick.
    last_use: u64,
    valid: bool,
}

/// Forward-only stream prefetcher with an LRU stream table.
#[derive(Clone, Debug)]
pub struct StreamPrefetcher {
    cfg: PrefetchConfig,
    table: Vec<Stream>,
    tick: u64,
}

impl StreamPrefetcher {
    /// Builds a prefetcher from its configuration.
    pub fn new(cfg: PrefetchConfig) -> Self {
        let empty = Stream {
            expect: 0,
            prefetched_until: 0,
            confidence: 0,
            last_use: 0,
            valid: false,
        };
        StreamPrefetcher {
            cfg,
            table: vec![empty; cfg.streams.max(1)],
            tick: 0,
        }
    }

    /// Observes a demand access to `line`; appends any lines that should be
    /// prefetched to `out`.
    ///
    /// Streams advance on *any* demand access (hit or miss) so that a
    /// trained stream keeps running ahead; new streams are only allocated
    /// on misses (`was_miss`), mirroring common hardware policy.
    pub fn observe(&mut self, line: u64, was_miss: bool, out: &mut Vec<u64>) {
        if !self.cfg.enabled {
            return;
        }
        self.tick += 1;
        let tick = self.tick;

        // Try to match an existing stream expecting this line.
        for s in &mut self.table {
            if s.valid && line == s.expect {
                s.confidence += 1;
                s.expect = line + 1;
                s.last_use = tick;
                if s.confidence >= self.cfg.min_confidence {
                    // Hardware prefetchers do not cross page boundaries:
                    // the stream is clipped to the current 4 KiB page and
                    // must retrain after every crossing. Long 1-D row
                    // sweeps barely notice; short strip-major bursts never
                    // get ahead (paper §2.3.3).
                    let page_end = (line / self.cfg.page_lines + 1) * self.cfg.page_lines - 1;
                    let target = (line + self.cfg.degree).min(page_end);
                    let from = s.prefetched_until.max(line) + 1;
                    for l in from..=target {
                        out.push(l);
                    }
                    if target > s.prefetched_until {
                        s.prefetched_until = target;
                    }
                }
                return;
            }
        }

        // No stream matched: allocate on a miss (replace LRU entry).
        if was_miss {
            let victim = self
                .table
                .iter_mut()
                .min_by_key(|s| if s.valid { s.last_use } else { 0 })
                .expect("stream table is non-empty");
            *victim = Stream {
                expect: line + 1,
                prefetched_until: line,
                confidence: 1,
                last_use: tick,
                valid: true,
            };
        }
    }

    /// Number of currently trained streams (confidence reached).
    pub fn trained_streams(&self) -> usize {
        self.table
            .iter()
            .filter(|s| s.valid && s.confidence >= self.cfg.min_confidence)
            .count()
    }

    /// Forget all streams.
    pub fn clear(&mut self) {
        for s in &mut self.table {
            s.valid = false;
            s.confidence = 0;
        }
        self.tick = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(streams: usize, degree: u64) -> PrefetchConfig {
        PrefetchConfig {
            enabled: true,
            streams,
            min_confidence: 2,
            degree,
            page_lines: 64,
        }
    }

    #[test]
    fn sequential_stream_triggers_prefetch() {
        let mut pf = StreamPrefetcher::new(cfg(4, 4));
        let mut out = Vec::new();
        pf.observe(100, true, &mut out); // allocate
        assert!(out.is_empty());
        pf.observe(101, true, &mut out); // confidence 2 -> prefetch 102..=105
        assert_eq!(out, vec![102, 103, 104, 105]);
        out.clear();
        pf.observe(102, false, &mut out); // advance; only new lines beyond 105
        assert_eq!(out, vec![106]);
    }

    #[test]
    fn random_accesses_never_prefetch() {
        let mut pf = StreamPrefetcher::new(cfg(4, 4));
        let mut out = Vec::new();
        for line in [10u64, 500, 3, 999, 42, 7777] {
            pf.observe(line, true, &mut out);
        }
        assert!(out.is_empty());
        assert_eq!(pf.trained_streams(), 0);
    }

    #[test]
    fn multiple_streams_tracked_independently() {
        let mut pf = StreamPrefetcher::new(cfg(4, 2));
        let mut out = Vec::new();
        // Interleave two streams at distant bases.
        for step in 0..4u64 {
            pf.observe(1000 + step, true, &mut out);
            pf.observe(9000 + step, true, &mut out);
        }
        assert_eq!(pf.trained_streams(), 2);
        assert!(out.contains(&1003));
        assert!(out.contains(&9003));
    }

    #[test]
    fn table_thrash_loses_streams() {
        // One-entry table: alternating streams evict each other before
        // reaching confidence.
        let mut pf = StreamPrefetcher::new(cfg(1, 4));
        let mut out = Vec::new();
        for step in 0..6u64 {
            pf.observe(1000 + step, true, &mut out);
            pf.observe(9000 + step, true, &mut out);
        }
        assert!(out.is_empty());
    }

    #[test]
    fn disabled_prefetcher_is_silent() {
        let mut pf = StreamPrefetcher::new(PrefetchConfig {
            enabled: false,
            streams: 4,
            min_confidence: 1,
            degree: 8,
            page_lines: 64,
        });
        let mut out = Vec::new();
        for l in 0..16 {
            pf.observe(l, true, &mut out);
        }
        assert!(out.is_empty());
    }

    #[test]
    fn prefetch_stops_at_page_boundary() {
        // Lines 62, 63 train a stream near the end of page 0 (lines 0..64):
        // prefetches must not spill into page 1.
        let mut pf = StreamPrefetcher::new(cfg(4, 8));
        let mut out = Vec::new();
        pf.observe(61, true, &mut out);
        pf.observe(62, true, &mut out);
        assert!(
            out.iter().all(|&l| l < 64),
            "prefetches crossed the page: {out:?}"
        );
        assert_eq!(out, vec![63]);
        out.clear();
        // Crossing the boundary by demand retrains within the new page.
        pf.observe(63, false, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn hits_keep_stream_running_ahead() {
        let mut pf = StreamPrefetcher::new(cfg(4, 3));
        let mut out = Vec::new();
        pf.observe(0, true, &mut out);
        pf.observe(1, true, &mut out);
        out.clear();
        // Later accesses hit (prefetched) but the stream must keep advancing.
        pf.observe(2, false, &mut out);
        pf.observe(3, false, &mut out);
        assert_eq!(out, vec![5, 6]);
    }
}
