//! Pipeline tracing: record per-instruction issue cycles and render a
//! text timeline of pipe occupancy — the tool used to inspect how well a
//! kernel's instruction schedule overlaps the matrix, vector and memory
//! pipes (the paper's Figure 10 visualized from real executions).

use crate::machine::Machine;
use crate::SimError;
use lx2_isa::{Inst, PipeClass, Program, PIPE_CLASS_COUNT};
use std::fmt;

/// One traced instruction.
#[derive(Clone, Debug)]
pub struct TraceEntry {
    /// The instruction.
    pub inst: Inst,
    /// Cycle it issued.
    pub issue: u64,
    /// Pipe it issued to.
    pub pipe: PipeClass,
}

/// A recorded execution trace.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    entries: Vec<TraceEntry>,
}

impl Trace {
    /// The traced instructions in program order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// First issue cycle (0 if empty).
    pub fn start_cycle(&self) -> u64 {
        self.entries.first().map(|e| e.issue).unwrap_or(0)
    }

    /// Last issue cycle (0 if empty).
    pub fn end_cycle(&self) -> u64 {
        self.entries.last().map(|e| e.issue).unwrap_or(0)
    }

    /// Instructions per cycle over the traced window.
    pub fn ipc(&self) -> f64 {
        let span = self.end_cycle().saturating_sub(self.start_cycle()) + 1;
        self.entries.len() as f64 / span as f64
    }

    /// Cycles in the window where no instruction issued (pipeline bubbles).
    pub fn bubble_cycles(&self) -> u64 {
        if self.entries.is_empty() {
            return 0;
        }
        let mut issued: Vec<u64> = self.entries.iter().map(|e| e.issue).collect();
        issued.dedup();
        let span = self.end_cycle() - self.start_cycle() + 1;
        span - issued.len() as u64
    }

    /// Instructions per pipe class.
    pub fn per_pipe(&self) -> [usize; PIPE_CLASS_COUNT] {
        let mut out = [0; PIPE_CLASS_COUNT];
        for e in &self.entries {
            out[e.pipe.index()] += 1;
        }
        out
    }

    /// Renders an occupancy timeline: one row per pipe class, one column
    /// per cycle (clamped to `max_cycles`), `#` where an instruction of
    /// that class issued.
    pub fn render_timeline(&self, max_cycles: usize) -> String {
        let start = self.start_cycle();
        let span = ((self.end_cycle() - start + 1) as usize).min(max_cycles);
        let mut rows = vec![vec![b'.'; span]; PIPE_CLASS_COUNT];
        for e in &self.entries {
            let c = (e.issue - start) as usize;
            if c < span {
                let cell = &mut rows[e.pipe.index()][c];
                *cell = if *cell == b'.' { b'#' } else { b'2' };
            }
        }
        let mut out = String::new();
        out.push_str(&format!(
            "cycles {start}..{} (showing {span})\n",
            self.end_cycle()
        ));
        for (k, row) in rows.iter().enumerate() {
            let name = PipeClass::ALL[k].name();
            out.push_str(&format!("{name:>7} |{}|\n", String::from_utf8_lossy(row)));
        }
        out
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.entries {
            writeln!(f, "{:>8}  [{:>6}]  {}", e.issue, e.pipe, e.inst)?;
        }
        Ok(())
    }
}

/// Executes `program` on `machine`, recording each instruction's issue
/// cycle. (Stepping one instruction at a time; use only for inspection,
/// not for bulk simulation.)
pub fn execute_traced(machine: &mut Machine, program: &Program) -> Result<Trace, SimError> {
    let mut trace = Trace::default();
    for inst in program.insts() {
        machine.execute_insts(std::slice::from_ref(inst))?;
        trace.entries.push(TraceEntry {
            inst: *inst,
            issue: machine.engine().last_issue_cycle(),
            pipe: inst.pipe(),
        });
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MachineConfig;
    use lx2_isa::{RowMask, VReg, ZaReg};

    fn trace_of(insts: Vec<Inst>) -> Trace {
        let mut m = Machine::new(&MachineConfig::lx2());
        let _mem = m.alloc(64, 8);
        let p: Program = insts.into_iter().collect();
        execute_traced(&mut m, &p).unwrap()
    }

    #[test]
    fn issue_cycles_are_monotonic() {
        let t = trace_of(
            (0..32)
                .map(|k| Inst::Fmla {
                    vd: VReg::new(k % 8),
                    vn: VReg::new(30),
                    vm: VReg::new(31),
                })
                .collect(),
        );
        assert!(t.entries().windows(2).all(|w| w[0].issue <= w[1].issue));
        assert_eq!(t.entries().len(), 32);
    }

    #[test]
    fn interleaved_streams_show_coissue() {
        // A matrix+vector interleave should issue pairs in the same cycle
        // at least some of the time.
        let insts: Vec<Inst> = (0..16)
            .flat_map(|k| {
                [
                    Inst::Fmopa {
                        za: ZaReg::new(k % 4),
                        vn: VReg::new(0),
                        vm: VReg::new(1),
                        mask: RowMask::ALL,
                    },
                    Inst::Fmla {
                        vd: VReg::new(2 + k % 8),
                        vn: VReg::new(30),
                        vm: VReg::new(31),
                    },
                ]
            })
            .collect();
        let t = trace_of(insts);
        let coissued = t
            .entries()
            .windows(2)
            .filter(|w| w[0].issue == w[1].issue && w[0].pipe != w[1].pipe)
            .count();
        assert!(coissued > 4, "expected co-issue, saw {coissued}");
    }

    #[test]
    fn dependent_chain_shows_bubbles() {
        let t = trace_of(
            (0..16)
                .map(|_| Inst::Fmla {
                    vd: VReg::new(0),
                    vn: VReg::new(1),
                    vm: VReg::new(2),
                })
                .collect(),
        );
        assert!(
            t.bubble_cycles() > 16,
            "chain must stall: {}",
            t.bubble_cycles()
        );
        assert!(t.ipc() < 0.5);
    }

    #[test]
    fn timeline_renders_all_pipes() {
        let t = trace_of(vec![
            Inst::Ld1d {
                vd: VReg::new(0),
                addr: 0,
            },
            Inst::DupImm {
                vd: VReg::new(1),
                imm: 1.0,
            },
            Inst::Fmopa {
                za: ZaReg::new(0),
                vn: VReg::new(1),
                vm: VReg::new(1),
                mask: RowMask::ALL,
            },
            Inst::St1d {
                vs: VReg::new(1),
                addr: 8,
            },
        ]);
        let s = t.render_timeline(64);
        for name in ["vector", "matrix", "load", "store"] {
            assert!(s.contains(name), "missing {name} row:\n{s}");
        }
        assert!(s.contains('#'));
        let pp = t.per_pipe();
        assert_eq!(pp.iter().sum::<usize>(), 4);
    }

    #[test]
    fn display_lists_every_instruction() {
        let t = trace_of(vec![
            Inst::DupImm {
                vd: VReg::new(0),
                imm: 2.0,
            },
            Inst::DupImm {
                vd: VReg::new(1),
                imm: 3.0,
            },
        ]);
        let s = t.to_string();
        assert_eq!(s.lines().count(), 2);
        assert!(s.contains("dup"));
    }
}
