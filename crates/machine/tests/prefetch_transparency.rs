//! Prefetch is a hint, never semantics: neither `PRFM` instructions nor
//! the hardware stream prefetcher may change any architecturally
//! visible state — registers (observed through a register dump to
//! memory) and memory must be bit-identical with prefetching on or off.
//! Only the counters may move.

use hstencil_testkit::prop::{self, any_u64, Config};
use hstencil_testkit::prop_assert;
use hstencil_testkit::rng::{Rng, Xoshiro256};
use lx2_isa::{Inst, MemKind, Program, VReg, VLEN};
use lx2_sim::{Machine, MachineConfig, PerfCounters};

const DATA_ELEMS: usize = 512;
const SCRATCH_ELEMS: usize = 256;

fn v(k: u64) -> VReg {
    VReg::new(k as usize)
}

struct Layout {
    data: u64,
    scratch: u64,
    dump: u64,
}

fn setup(cfg: &MachineConfig, seed: u64) -> (Machine, Layout) {
    let mut mach = Machine::new(cfg);
    let data = mach.alloc(DATA_ELEMS, VLEN).base;
    let scratch = mach.alloc(SCRATCH_ELEMS, VLEN).base;
    let dump = mach.alloc(8 * VLEN, VLEN).base;
    let mut rng = Xoshiro256::seed_from_u64(seed ^ 0xDA7A);
    let init: Vec<f64> = (0..DATA_ELEMS).map(|_| rng.gen_unit_f64() - 0.5).collect();
    mach.mem.store_slice(data, &init).unwrap();
    (
        mach,
        Layout {
            data,
            scratch,
            dump,
        },
    )
}

/// A random compute/memory program over the fixed layout. When
/// `with_prfm` is set, prefetch hints are interleaved with the same
/// rng decisions, so the architectural instruction stream is identical.
fn random_program(seed: u64, lay: &Layout, with_prfm: bool) -> (Program, u64) {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut prog = Program::with_capacity(256);
    let mut prfm = 0u64;
    for _ in 0..48 {
        if rng.gen_bool(0.4) {
            // Hint ahead of a random data line; architecturally a no-op.
            let kind = if rng.gen_bool(0.5) {
                MemKind::Read
            } else {
                MemKind::Write
            };
            let addr = lay.data + rng.gen_range(0..(DATA_ELEMS - VLEN) as u64);
            if with_prfm {
                prfm += 1;
                prog.push(Inst::Prfm { addr, kind });
            }
        }
        match rng.gen_range(0u32..4) {
            0 => prog.push(Inst::Ld1d {
                vd: v(rng.gen_range(0..8)),
                addr: lay.data + rng.gen_range(0..(DATA_ELEMS - VLEN) as u64),
            }),
            1 => prog.push(Inst::St1d {
                vs: v(rng.gen_range(0..8)),
                addr: lay.scratch + VLEN as u64 * rng.gen_range(0..(SCRATCH_ELEMS / VLEN) as u64),
            }),
            2 => prog.push(Inst::DupImm {
                vd: v(rng.gen_range(0..8)),
                imm: rng.gen_range(-4i64..5) as f64 * 0.5,
            }),
            _ => prog.push(Inst::Fmla {
                vd: v(rng.gen_range(0..8)),
                vn: v(rng.gen_range(0..8)),
                vm: v(rng.gen_range(0..8)),
            }),
        }
    }
    // Dump every vector register so register state is memory-observable.
    for k in 0..8u64 {
        prog.push(Inst::St1d {
            vs: v(k),
            addr: lay.dump + k * VLEN as u64,
        });
    }
    (prog, prfm)
}

/// Runs `seed`'s program and returns all observable memory plus the
/// counter delta of the run.
fn observe(cfg: &MachineConfig, seed: u64, with_prfm: bool) -> (Vec<u64>, u64, PerfCounters) {
    let (mut mach, lay) = setup(cfg, seed);
    let (prog, prfm) = random_program(seed, &lay, with_prfm);
    let before = mach.counters();
    mach.execute(&prog).unwrap();
    let delta = mach.counters().delta(&before);
    let total = DATA_ELEMS + SCRATCH_ELEMS + 8 * VLEN;
    let mut memory = vec![0.0f64; total];
    mach.mem.load_slice(lay.data, &mut memory).unwrap();
    (memory.iter().map(|x| x.to_bits()).collect(), prfm, delta)
}

#[test]
fn prfm_never_changes_results_only_counters() {
    let cfg = MachineConfig::lx2();
    prop::check(&Config::with_cases(12), &any_u64(), |&seed| {
        let (mem_plain, _, c_plain) = observe(&cfg, seed, false);
        let (mem_hinted, prfm, c_hinted) = observe(&cfg, seed, true);
        prop_assert!(
            mem_plain == mem_hinted,
            "PRFM changed architectural state (seed {seed:#x})"
        );
        prop_assert!(
            c_plain.mem.sw_prefetches == 0,
            "plain run counted {} software prefetches",
            c_plain.mem.sw_prefetches
        );
        prop_assert!(
            c_hinted.mem.sw_prefetches == prfm,
            "{} PRFM issued but {} counted",
            prfm,
            c_hinted.mem.sw_prefetches
        );
        prop_assert!(
            c_plain.flops == c_hinted.flops,
            "hints altered the flop count"
        );
        Ok(())
    });
}

#[test]
fn hardware_prefetcher_never_changes_results_only_counters() {
    let mut on = MachineConfig::lx2();
    on.hw_prefetch.enabled = true;
    let mut off = on.clone();
    off.hw_prefetch.enabled = false;
    prop::check(&Config::with_cases(12), &any_u64(), |&seed| {
        let (mem_on, _, _c_on) = observe(&on, seed, false);
        let (mem_off, _, c_off) = observe(&off, seed, false);
        prop_assert!(
            mem_on == mem_off,
            "hardware prefetcher changed architectural state (seed {seed:#x})"
        );
        prop_assert!(
            c_off.mem.hw_prefetches == 0,
            "disabled prefetcher still issued {} prefetches",
            c_off.mem.hw_prefetches
        );
        Ok(())
    });
}

#[test]
fn sequential_scans_train_the_hardware_prefetcher() {
    // A long ascending scan must actually trigger the stream prefetcher
    // when it is enabled — otherwise the transparency test above would
    // pass vacuously.
    let mut cfg = MachineConfig::lx2();
    cfg.hw_prefetch.enabled = true;
    let (mut mach, lay) = setup(&cfg, 1);
    let mut prog = Program::with_capacity(80);
    for i in 0..(DATA_ELEMS / VLEN) as u64 {
        prog.push(Inst::Ld1d {
            vd: v(i % 8),
            addr: lay.data + i * VLEN as u64,
        });
    }
    let before = mach.counters();
    mach.execute(&prog).unwrap();
    let delta = mach.counters().delta(&before);
    assert!(
        delta.mem.hw_prefetches > 0,
        "sequential scan of {DATA_ELEMS} elements trained no prefetch stream"
    );
}
