//! The automatic list scheduler must preserve semantics exactly: for any
//! program, the scheduled version reaches a bit-identical architectural
//! and memory state — and should not be slower on the modelled machine.
//!
//! Runs on the in-repo `hstencil-testkit` property harness; a failure
//! prints a `TESTKIT_SEED=0x...` line that replays the exact case.

use hstencil_testkit::prop::{self, any_u8, one_of, range, vec_of, Config, Strategy};
use hstencil_testkit::prop_assert_eq;
use lx2_isa::{list_schedule, Inst, MemKind, Program, RowMask, ScheduleParams, VReg, ZaReg};
use lx2_sim::{Machine, MachineConfig};

fn arb_vreg() -> impl Strategy<Value = VReg> {
    range(0usize..lx2_isa::NUM_VREGS).map(VReg::new)
}

fn arb_za() -> impl Strategy<Value = ZaReg> {
    range(0usize..lx2_isa::NUM_ZA_TILES).map(ZaReg::new)
}

/// Addresses in a small arena (0..448, 8-aligned so no OOB).
fn arb_addr() -> impl Strategy<Value = u64> {
    range(0u64..56).map(|a| a * 8)
}

/// Instructions over the arena, mixing compute and memory.
fn arb_inst() -> impl Strategy<Value = Inst> {
    one_of(vec![
        Box::new((arb_vreg(), arb_addr()).map(|(vd, addr)| Inst::Ld1d { vd, addr }))
            as Box<dyn Strategy<Value = Inst>>,
        Box::new((arb_vreg(), arb_addr()).map(|(vs, addr)| Inst::St1d { vs, addr })),
        Box::new(
            (arb_za(), range(0u8..8), arb_addr()).map(|(za, row, addr)| Inst::StZaRow {
                za,
                row,
                addr,
            }),
        ),
        Box::new(
            (arb_vreg(), arb_vreg(), arb_vreg()).map(|(vd, vn, vm)| Inst::Fmla { vd, vn, vm }),
        ),
        Box::new(
            (arb_vreg(), arb_vreg(), arb_vreg(), range(0u8..8))
                .map(|(vd, vn, vm, idx)| Inst::FmlaIdx { vd, vn, vm, idx }),
        ),
        Box::new(
            (arb_vreg(), arb_vreg(), arb_vreg()).map(|(vd, vn, vm)| Inst::Fadd { vd, vn, vm }),
        ),
        Box::new(
            (arb_vreg(), arb_vreg(), arb_vreg(), range(0u8..9))
                .map(|(vd, vn, vm, shift)| Inst::Ext { vd, vn, vm, shift }),
        ),
        Box::new((arb_vreg(), range(-4.0f64..4.0)).map(|(vd, imm)| Inst::DupImm { vd, imm })),
        Box::new(
            (arb_za(), arb_vreg(), arb_vreg(), any_u8()).map(|(za, vn, vm, m)| Inst::Fmopa {
                za,
                vn,
                vm,
                mask: RowMask::from_bits(m),
            }),
        ),
        Box::new((arb_za(), any_u8()).map(|(za, m)| Inst::ZeroZa {
            za,
            mask: RowMask::from_bits(m),
        })),
        Box::new(arb_addr().map(|addr| Inst::Prfm {
            addr,
            kind: MemKind::Read,
        })),
    ])
}

fn run_state(insts: &[Inst]) -> (Vec<f64>, [[f64; 8]; 32], u64) {
    let cfg = MachineConfig::lx2();
    let mut m = Machine::new(&cfg);
    let region = m.alloc(512, 8);
    // Distinct memory contents so reorderings that break aliasing show.
    for k in 0..512u64 {
        m.mem.write(region.base + k, (k as f64).sin()).unwrap();
    }
    let p: Program = insts.iter().copied().collect();
    m.execute(&p).expect("program executes");
    let mut mem = vec![0.0; 512];
    m.mem.load_slice(region.base, &mut mem).unwrap();
    (mem, m.engine().state.v, m.elapsed_cycles())
}

#[test]
fn scheduling_preserves_final_state() {
    let cfg = Config::with_cases(48);
    prop::check(&cfg, &vec_of(arb_inst(), 1..120), |insts| {
        let scheduled = list_schedule(insts, &ScheduleParams::default());
        prop_assert_eq!(scheduled.len(), insts.len());
        let (mem_a, regs_a, _) = run_state(insts);
        let (mem_b, regs_b, _) = run_state(&scheduled);
        prop_assert_eq!(mem_a, mem_b, "memory diverged");
        prop_assert_eq!(regs_a, regs_b, "registers diverged");
        Ok(())
    });
}

#[test]
fn scheduler_speeds_up_a_phased_program() {
    // A deliberately phase-ordered block (all loads, all matrix, all
    // vector, all stores) — the §3.2.2 "before" picture.
    let mut insts = Vec::new();
    for k in 0..16u64 {
        insts.push(Inst::Ld1d {
            vd: VReg::new((k % 12) as usize),
            addr: k * 8,
        });
    }
    for k in 0..16usize {
        insts.push(Inst::Fmopa {
            za: ZaReg::new(k % 4),
            vn: VReg::new(k % 12),
            vm: VReg::new((k + 1) % 12),
            mask: RowMask::ALL,
        });
    }
    for k in 0..16usize {
        insts.push(Inst::Fmla {
            vd: VReg::new(16 + k % 8),
            vn: VReg::new(k % 12),
            vm: VReg::new((k + 3) % 12),
        });
    }
    for k in 0..8u64 {
        insts.push(Inst::StZaRow {
            za: ZaReg::new((k % 4) as usize),
            row: (k % 8) as u8,
            addr: 256 + k * 8,
        });
    }
    let scheduled = list_schedule(&insts, &ScheduleParams::default());
    let (_, _, before) = run_state(&insts);
    let (_, _, after) = run_state(&scheduled);
    assert!(
        after <= before,
        "scheduled {after} cycles should not exceed phased {before}"
    );
}
