//! Microbenchmark-level claims from the paper's §2, asserted against the
//! simulated machine.

use lx2_isa::{Inst, Program, RowMask, VReg, ZaReg};
use lx2_sim::{Machine, MachineConfig};

fn run(cfg: &MachineConfig, p: &Program) -> u64 {
    let mut m = Machine::new(cfg);
    m.execute(p).expect("run");
    m.elapsed_cycles()
}

fn fmopa(tile: usize, mask: RowMask) -> Inst {
    Inst::Fmopa {
        za: ZaReg::new(tile),
        vn: VReg::new(0),
        vm: VReg::new(1),
        mask,
    }
}

fn fmla(acc: usize) -> Inst {
    Inst::Fmla {
        vd: VReg::new(2 + acc),
        vn: VReg::new(30),
        vm: VReg::new(31),
    }
}

/// §2.1: "the outer product instruction reaches approximately four times
/// the theoretical double-precision performance of MLA".
#[test]
fn outer_product_flops_are_4x_mla_flops() {
    let cfg = MachineConfig::lx2();
    let reps = 2048u64;
    // Peak-throughput configurations for both units.
    let matrix: Program = (0..reps)
        .map(|k| fmopa(k as usize % 4, RowMask::ALL))
        .collect();
    let vector: Program = (0..reps).map(|k| fmla(k as usize % 8)).collect();
    let (mc, vc) = (run(&cfg, &matrix), run(&cfg, &vector));
    let matrix_flops_per_cycle = reps as f64 * 128.0 / mc as f64;
    let vector_flops_per_cycle = reps as f64 * 16.0 / vc as f64;
    let ratio = matrix_flops_per_cycle / vector_flops_per_cycle;
    assert!(
        (3.5..=4.5).contains(&ratio),
        "outer product should be ~4x MLA, got {ratio:.2}"
    );
}

/// §2.1: "MLA instructions may outperform the outer product instructions
/// ... where the utilization of the matrix unit is lower than 1/4."
#[test]
fn mla_wins_below_quarter_utilization() {
    let cfg = MachineConfig::lx2();
    let reps = 1024u64;
    // One useful row per outer product = 1/8 utilization: 8 lanes of
    // useful work per instruction — exactly one MLA's worth.
    let sparse: Program = (0..reps)
        .map(|k| fmopa(k as usize % 4, RowMask::single(k as usize % 8)))
        .collect();
    let vector: Program = (0..reps).map(|k| fmla(k as usize % 8)).collect();
    let sparse_cycles = run(&cfg, &sparse);
    let vector_cycles = run(&cfg, &vector);
    // Same useful flops; the vector path is at least as fast (two units).
    assert!(
        vector_cycles <= sparse_cycles,
        "MLA ({vector_cycles}) should win at 1/8 utilization vs masked FMOPA ({sparse_cycles})"
    );
}

/// §3.1.1: the tile-to-vector transfer path costs more than accumulating
/// through an outer product — the motivation for in-place accumulation.
#[test]
fn mova_accumulation_costs_more_than_fmopa_accumulation() {
    let cfg = MachineConfig::lx2();
    let reps = 256u64;
    // In-place: accumulate a vector into one tile row via outer product.
    let inplace: Program = (0..reps)
        .map(|k| fmopa(((k % 4) + 4) as usize, RowMask::single(k as usize % 8)))
        .collect();
    // Naive: move the row out, add, move it back.
    let naive: Program = (0..reps)
        .flat_map(|k| {
            let row = (k % 8) as u8;
            [
                Inst::MovaToVec {
                    vd: VReg::new(10),
                    za: ZaReg::new(0),
                    row,
                },
                Inst::Fadd {
                    vd: VReg::new(10),
                    vn: VReg::new(10),
                    vm: VReg::new(11),
                },
                Inst::MovaFromVec {
                    za: ZaReg::new(0),
                    row,
                    vs: VReg::new(10),
                },
            ]
        })
        .collect();
    let (ic, nc) = (run(&cfg, &inplace), run(&cfg, &naive));
    assert!(
        nc >= 2 * ic,
        "naive mova+add+mova ({nc}) should cost well over the in-place path ({ic})"
    );
}

/// Store bursts serialize on the single store pipe; scattering them among
/// compute lets the pipe drain for free (the §3.2.2 store argument).
#[test]
fn store_bursts_cost_more_than_scattered_stores() {
    let cfg = MachineConfig::lx2();
    let build = |scattered: bool| -> Program {
        let mut p = Program::new();
        let stores: Vec<Inst> = (0..64u64)
            .map(|k| Inst::StZaRow {
                za: ZaReg::new(0),
                row: (k % 8) as u8,
                addr: k * 8,
            })
            .collect();
        let compute: Vec<Inst> = (0..64u64).map(|k| fmla(k as usize % 8)).collect();
        if scattered {
            for (s, c) in stores.into_iter().zip(compute) {
                p.push(c);
                p.push(s);
            }
        } else {
            p.extend(compute);
            p.extend(stores);
        }
        p
    };
    let mut m1 = Machine::new(&cfg);
    let _r1 = m1.alloc(1024, 8);
    m1.execute(&build(false)).unwrap();
    let burst = m1.elapsed_cycles();
    let mut m2 = Machine::new(&cfg);
    let _r2 = m2.alloc(1024, 8);
    m2.execute(&build(true)).unwrap();
    let scattered = m2.elapsed_cycles();
    assert!(
        scattered <= burst,
        "scattered stores ({scattered}) should not exceed the burst ({burst})"
    );
}

/// Table 2's premise: a vector instruction stream sustains a higher IPC
/// than a matrix instruction stream of the same length.
#[test]
fn vector_stream_ipc_exceeds_matrix_stream_ipc() {
    let cfg = MachineConfig::lx2();
    let reps = 1024u64;
    let matrix: Program = (0..reps)
        .map(|k| fmopa(k as usize % 4, RowMask::ALL))
        .collect();
    let vector: Program = (0..reps).map(|k| fmla(k as usize % 8)).collect();
    let m_ipc = reps as f64 / run(&cfg, &matrix) as f64;
    let v_ipc = reps as f64 / run(&cfg, &vector) as f64;
    assert!(
        v_ipc > m_ipc,
        "vector IPC {v_ipc:.2} vs matrix IPC {m_ipc:.2}"
    );
}
