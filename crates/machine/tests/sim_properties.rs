//! Property-based tests of the simulator substrate: cache invariants,
//! timing monotonicity, and functional instruction semantics.
//!
//! Runs on the in-repo `hstencil-testkit` property harness; a failure
//! prints a `TESTKIT_SEED=0x...` line that replays the exact case.

use hstencil_testkit::prop::{self, any_bool, any_u8, one_of, range, vec_of, Config, Strategy};
use hstencil_testkit::{prop_assert, prop_assert_eq};
use lx2_isa::{Inst, MemKind, Program, RowMask, VReg, ZaReg, VLEN};
use lx2_sim::{cache::Cache, CacheConfig, Machine, MachineConfig};

fn arb_vreg() -> impl Strategy<Value = VReg> {
    range(0usize..lx2_isa::NUM_VREGS).map(VReg::new)
}

fn arb_za() -> impl Strategy<Value = ZaReg> {
    range(0usize..lx2_isa::NUM_ZA_TILES).map(ZaReg::new)
}

/// Register-only compute instructions (no memory operands).
fn arb_compute_inst() -> impl Strategy<Value = Inst> {
    one_of(vec![
        Box::new((arb_vreg(), arb_vreg(), arb_vreg()).map(|(vd, vn, vm)| Inst::Fmla { vd, vn, vm }))
            as Box<dyn Strategy<Value = Inst>>,
        Box::new(
            (arb_vreg(), arb_vreg(), arb_vreg(), range(0u8..8))
                .map(|(vd, vn, vm, idx)| Inst::FmlaIdx { vd, vn, vm, idx }),
        ),
        Box::new(
            (arb_vreg(), arb_vreg(), arb_vreg()).map(|(vd, vn, vm)| Inst::Fadd { vd, vn, vm }),
        ),
        Box::new(
            (arb_vreg(), arb_vreg(), arb_vreg(), range(0u8..9))
                .map(|(vd, vn, vm, shift)| Inst::Ext { vd, vn, vm, shift }),
        ),
        Box::new((arb_vreg(), range(-8.0f64..8.0)).map(|(vd, imm)| Inst::DupImm { vd, imm })),
        Box::new(
            (arb_za(), arb_vreg(), arb_vreg(), any_u8()).map(|(za, vn, vm, m)| Inst::Fmopa {
                za,
                vn,
                vm,
                mask: RowMask::from_bits(m),
            }),
        ),
        Box::new((arb_za(), any_u8()).map(|(za, m)| Inst::ZeroZa {
            za,
            mask: RowMask::from_bits(m),
        })),
        Box::new(
            (arb_vreg(), arb_za(), range(0u8..8)).map(|(vd, za, row)| Inst::MovaToVec {
                vd,
                za,
                row,
            }),
        ),
        Box::new(
            (arb_za(), range(0u8..8), arb_vreg()).map(|(za, row, vs)| Inst::MovaFromVec {
                za,
                row,
                vs,
            }),
        ),
    ])
}

#[test]
fn cache_never_exceeds_capacity_and_tracks_hits() {
    let cfg = Config::with_cases(64);
    prop::check(&cfg, &vec_of(range(0u64..64), 1..200), |lines| {
        let cfg = CacheConfig {
            size_bytes: 1024,
            assoc: 2,
            line_bytes: 64,
        };
        let mut c = Cache::new(&cfg);
        let capacity = cfg.size_bytes / cfg.line_bytes;
        for &l in lines {
            let _ = c.probe(l);
            c.insert(l, 0, false);
            prop_assert!(c.resident_lines() <= capacity);
            // Just-inserted lines must be present.
            let present = matches!(c.peek(l), lx2_sim::cache::Probe::Hit { .. });
            prop_assert!(present, "line {} missing right after insert", l);
        }
        Ok(())
    });
}

#[test]
fn timing_is_monotonic_and_counters_consistent() {
    let cfg = Config::with_cases(64);
    prop::check(&cfg, &vec_of(arb_compute_inst(), 1..150), |insts| {
        let cfg = MachineConfig::lx2();
        let mut m = Machine::new(&cfg);
        let mut prev_cycles = 0;
        for inst in insts {
            m.execute_insts(std::slice::from_ref(inst)).unwrap();
            let c = m.counters();
            prop_assert!(c.cycles >= prev_cycles, "time went backwards");
            prev_cycles = c.cycles;
        }
        let c = m.counters();
        prop_assert_eq!(c.instructions, insts.len() as u64);
        // IPC can never exceed the issue width.
        prop_assert!(c.ipc() <= cfg.issue_width as f64 + 1e-9);
        // Per-pipe instruction counts sum to the total.
        let pipe_sum: u64 = c.per_pipe.iter().sum();
        prop_assert_eq!(pipe_sum, c.instructions);
        Ok(())
    });
}

#[test]
fn functional_state_is_independent_of_machine_config() {
    let cfg = Config::with_cases(64);
    prop::check(&cfg, &vec_of(arb_compute_inst(), 1..100), |insts| {
        // The same program must produce identical architectural state on
        // machines with different timing parameters.
        let mut fast = MachineConfig::lx2();
        fast.fp_latency = 1;
        fast.fmopa_latency = 1;
        fast.issue_width = 8;
        fast.vector_units = 4;
        let mut m1 = Machine::new(&MachineConfig::lx2());
        let mut m2 = Machine::new(&fast);
        for inst in insts {
            m1.execute_insts(std::slice::from_ref(inst)).unwrap();
            m2.execute_insts(std::slice::from_ref(inst)).unwrap();
        }
        prop_assert_eq!(&m1.engine().state.v, &m2.engine().state.v);
        prop_assert_eq!(&m1.engine().state.za, &m2.engine().state.za);
        Ok(())
    });
}

#[test]
fn memory_roundtrip_through_machine() {
    let cfg = Config::with_cases(64);
    let strat = (
        vec_of(range(-100.0f64..100.0), VLEN..VLEN + 1),
        range(0u64..32),
    );
    prop::check(&cfg, &strat, |(values, offset)| {
        let cfg = MachineConfig::lx2();
        let mut m = Machine::new(&cfg);
        let region = m.alloc(128, VLEN);
        m.mem.store_slice(region.base + offset, values).unwrap();
        let mut p = Program::new();
        p.push(Inst::Ld1d {
            vd: VReg::new(3),
            addr: region.base + offset,
        });
        p.push(Inst::St1d {
            vs: VReg::new(3),
            addr: region.base + 64,
        });
        m.execute(&p).unwrap();
        let mut out = [0.0; VLEN];
        m.mem.load_slice(region.base + 64, &mut out).unwrap();
        prop_assert_eq!(&out.to_vec(), values);
        Ok(())
    });
}

#[test]
fn hit_plus_miss_equals_accesses() {
    let cfg = Config::with_cases(64);
    let strat = (
        vec_of(range(0u64..4096), 1..300),
        vec_of(any_bool(), 300..301),
    );
    prop::check(&cfg, &strat, |(addrs, kinds)| {
        let cfg = MachineConfig::lx2();
        let mut m = Machine::new(&cfg);
        let _region = m.alloc(8192, 8);
        let mut p = Program::new();
        for (i, &a) in addrs.iter().enumerate() {
            let aligned = a & !7;
            if kinds[i % kinds.len()] {
                p.push(Inst::Ld1d {
                    vd: VReg::new(i % 8),
                    addr: aligned,
                });
            } else {
                p.push(Inst::Prfm {
                    addr: aligned,
                    kind: MemKind::Read,
                });
            }
        }
        m.execute(&p).unwrap();
        let mem = m.counters().mem;
        prop_assert!(mem.l1_load_hits <= mem.l1_load_accesses);
        prop_assert!(mem.l2_hits <= mem.l2_accesses);
        Ok(())
    });
}

#[test]
fn fmopa_equals_manual_outer_product() {
    let cfg = Config::with_cases(64);
    let strat = (
        vec_of(range(-4.0f64..4.0), VLEN..VLEN + 1),
        vec_of(range(-4.0f64..4.0), VLEN..VLEN + 1),
        any_u8(),
    );
    prop::check(&cfg, &strat, |(row, col, mask_bits)| {
        let cfg = MachineConfig::lx2();
        let mut m = Machine::new(&cfg);
        {
            let st = &mut m.engine_mut().state;
            st.v[0].copy_from_slice(col);
            st.v[1].copy_from_slice(row);
        }
        let mask = RowMask::from_bits(*mask_bits);
        let p: Program = std::iter::once(Inst::Fmopa {
            za: ZaReg::new(0),
            vn: VReg::new(0),
            vm: VReg::new(1),
            mask,
        })
        .collect();
        m.execute(&p).unwrap();
        let za = &m.engine().state.za[0];
        for i in 0..VLEN {
            for j in 0..VLEN {
                let expect = if mask.contains(i) {
                    col[i] * row[j]
                } else {
                    0.0
                };
                prop_assert!((za[i][j] - expect).abs() < 1e-12);
            }
        }
        Ok(())
    });
}
