//! Failure injection: malformed programs must surface typed errors, never
//! corrupt state or panic.

use lx2_isa::{assemble, Inst, MemKind, Program, RowMask, VReg, ZaReg};
use lx2_sim::{Machine, MachineConfig, SimError};

fn machine() -> Machine {
    let mut m = Machine::new(&MachineConfig::lx2());
    m.alloc(1024, 8);
    m
}

#[test]
fn oob_load_is_reported_not_panicked() {
    let mut m = machine();
    let p: Program = std::iter::once(Inst::Ld1d {
        vd: VReg::new(0),
        addr: 10_000_000,
    })
    .collect();
    match m.execute(&p) {
        Err(SimError::OutOfBounds { addr, .. }) => assert!(addr >= 10_000_000),
        other => panic!("expected OutOfBounds, got {other:?}"),
    }
}

#[test]
fn oob_store_is_reported() {
    let mut m = machine();
    let p: Program = std::iter::once(Inst::St1d {
        vs: VReg::new(0),
        addr: u64::MAX - 16,
    })
    .collect();
    assert!(matches!(m.execute(&p), Err(SimError::OutOfBounds { .. })));
}

#[test]
fn partial_execution_keeps_earlier_effects() {
    // The instruction before the fault must have committed.
    let mut m = machine();
    let mut p = Program::new();
    p.push(Inst::DupImm {
        vd: VReg::new(3),
        imm: 9.0,
    });
    p.push(Inst::Ld1d {
        vd: VReg::new(4),
        addr: 99_999_999,
    });
    assert!(m.execute(&p).is_err());
    assert_eq!(m.engine().state.v[3], [9.0; 8]);
}

#[test]
fn streaming_mode_violations_are_typed() {
    let cfg = MachineConfig::apple_m4();
    let mut m = Machine::new(&cfg);
    m.alloc(64, 8);
    let fmla: Program = std::iter::once(Inst::Fmla {
        vd: VReg::new(0),
        vn: VReg::new(1),
        vm: VReg::new(2),
    })
    .collect();
    assert_eq!(m.execute(&fmla), Err(SimError::VectorFmlaUnsupported));
    // Outside streaming mode the same instruction is legal (NEON path).
    m.set_streaming(false);
    assert!(m.execute(&fmla).is_ok());
}

#[test]
fn bad_ext_and_tile_rows_are_typed() {
    let mut m = machine();
    let bad_ext: Program = std::iter::once(Inst::Ext {
        vd: VReg::new(0),
        vn: VReg::new(1),
        vm: VReg::new(2),
        shift: 12,
    })
    .collect();
    assert_eq!(
        m.execute(&bad_ext),
        Err(SimError::BadExtShift { shift: 12 })
    );

    let bad_row: Program = std::iter::once(Inst::StZaRow {
        za: ZaReg::new(0),
        row: 9,
        addr: 0,
    })
    .collect();
    assert_eq!(m.execute(&bad_row), Err(SimError::BadTileRow { row: 9 }));
}

#[test]
fn prefetch_of_wild_addresses_is_harmless() {
    // PRFM is a hint: no architectural fault even far out of bounds.
    let mut m = machine();
    let p: Program = (0..16u64)
        .map(|k| Inst::Prfm {
            addr: k * 123_456_789,
            kind: MemKind::Read,
        })
        .collect();
    m.execute(&p).expect("prefetch hints never fault");
    assert_eq!(m.counters().mem.sw_prefetches, 16);
}

#[test]
fn counters_survive_a_fault() {
    let mut m = machine();
    let mut p = Program::new();
    for k in 0..8 {
        p.push(Inst::Fmopa {
            za: ZaReg::new(k % 4),
            vn: VReg::new(0),
            vm: VReg::new(1),
            mask: RowMask::ALL,
        });
    }
    p.push(Inst::Ld1d {
        vd: VReg::new(0),
        addr: 1 << 40,
    });
    assert!(m.execute(&p).is_err());
    let c = m.counters();
    assert_eq!(c.fmopa, 8);
    assert!(c.cycles > 0);
}

#[test]
fn assembler_errors_do_not_half_build_programs() {
    let bad = "dup v0, #1\nfmopa za0<all>, v1\n"; // missing operand
    let err = assemble(bad).unwrap_err();
    assert_eq!(err.line, 2);
}
