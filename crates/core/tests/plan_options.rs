//! Plan-layer behaviour: option plumbing, method defaults, kernel
//! selection, and determinism guarantees.

use hstencil_core::{presets, Grid2d, Method, StencilPlan};
use lx2_sim::MachineConfig;

fn grid(n: usize, halo: usize) -> Grid2d {
    Grid2d::from_fn(n, n, halo, |i, j| ((i * 61 + j * 17) % 103) as f64 * 0.01)
}

#[test]
fn runs_are_deterministic() {
    let spec = presets::star2d9p();
    let g = grid(64, 2);
    let cfg = MachineConfig::lx2();
    let a = StencilPlan::new(&spec, Method::HStencil)
        .run_2d(&cfg, &g)
        .unwrap();
    let b = StencilPlan::new(&spec, Method::HStencil)
        .run_2d(&cfg, &g)
        .unwrap();
    assert_eq!(a.report.cycles(), b.report.cycles());
    assert_eq!(
        a.report.counters.instructions,
        b.report.counters.instructions
    );
    assert_eq!(a.output.max_interior_diff(&b.output), 0.0);
}

#[test]
fn scheduling_reduces_cycles_not_instructions_much() {
    let spec = presets::box2d25p();
    let g = grid(128, 2);
    let cfg = MachineConfig::lx2();
    let off = StencilPlan::new(&spec, Method::HStencil)
        .scheduling(false)
        .prefetch(false)
        .run_2d(&cfg, &g)
        .unwrap()
        .report;
    let on = StencilPlan::new(&spec, Method::HStencil)
        .scheduling(true)
        .prefetch(false)
        .run_2d(&cfg, &g)
        .unwrap()
        .report;
    assert!(
        on.cycles() < off.cycles(),
        "scheduling must speed things up"
    );
    // Scheduling is a reordering: the instruction count stays similar
    // (replacement may shift a few between pipes).
    let ratio = on.counters.instructions as f64 / off.counters.instructions as f64;
    assert!(
        (0.8..=1.2).contains(&ratio),
        "instruction count drifted: {ratio:.2}"
    );
}

#[test]
fn reg_blocks_monotonically_help_matrix_kernels() {
    let spec = presets::box2d25p();
    let g = grid(128, 2);
    let cfg = MachineConfig::lx2();
    let mut prev = u64::MAX;
    for rb in 1..=4usize {
        let c = StencilPlan::new(&spec, Method::HStencil)
            .reg_blocks(rb)
            .run_2d(&cfg, &g)
            .unwrap()
            .report
            .cycles();
        assert!(c <= prev, "rb={rb} got slower: {c} vs {prev}");
        prev = c;
    }
}

#[test]
fn prefetch_dist_roundtrips_through_options() {
    let spec = presets::star2d5p();
    let plan = StencilPlan::new(&spec, Method::HStencil).prefetch_dist(7);
    assert_eq!(plan.options().prefetch_dist, 7);
    let plan = plan.reg_blocks(9); // clamped
    assert_eq!(plan.options().reg_blocks, 4);
}

#[test]
fn method_selects_expected_kernel() {
    let g = grid(32, 2);
    let lx2 = MachineConfig::lx2();
    let m4 = MachineConfig::apple_m4();
    let star = presets::star2d9p();
    let bx = presets::box2d25p();
    let kernel = |spec: &hstencil_core::StencilSpec, m: Method, cfg: &MachineConfig| {
        StencilPlan::new(spec, m)
            .run_2d(cfg, &g)
            .unwrap()
            .report
            .kernel
    };
    assert_eq!(kernel(&star, Method::HStencil, &lx2), "hstencil-inplace");
    assert_eq!(kernel(&star, Method::HStencil, &m4), "hstencil-m4-star");
    assert_eq!(kernel(&bx, Method::HStencil, &m4), "hstencil-inplace");
    assert_eq!(kernel(&bx, Method::MatrixOnly, &lx2), "matrix-only-stop");
    assert_eq!(kernel(&star, Method::VectorOnly, &lx2), "vector-only");
    assert_eq!(kernel(&star, Method::Auto, &lx2), "auto-vectorized");
}

#[test]
fn verification_catches_an_injected_fault() {
    // Sanity-check that verify(true) is actually comparing: a spec whose
    // table disagrees with what we ask the reference to compute must fail.
    // (Simulate by checking that verification *passes* normally and that
    // the machinery reports mismatches via first_mismatch.)
    let spec = presets::box2d9p();
    let g = grid(32, 1);
    let out = StencilPlan::new(&spec, Method::HStencil)
        .verify(true)
        .run_2d(&MachineConfig::lx2(), &g)
        .unwrap();
    let mut tampered = out.output.clone();
    tampered.set(5, 5, tampered.at(5, 5) + 1.0);
    assert!(out.output.first_mismatch(&tampered, 1e-9).is_some());
}

#[test]
fn m4_auto_is_narrower_and_slower_than_lx2_auto() {
    let spec = presets::box2d25p();
    let g = grid(64, 2);
    let lx2 = StencilPlan::new(&spec, Method::Auto)
        .run_2d(&MachineConfig::lx2(), &g)
        .unwrap()
        .report;
    let m4 = StencilPlan::new(&spec, Method::Auto)
        .run_2d(&MachineConfig::apple_m4(), &g)
        .unwrap()
        .report;
    // The NEON baseline re-executes ~4x the vector work.
    assert!(
        m4.counters.instructions > 3 * lx2.counters.instructions,
        "m4 {} vs lx2 {}",
        m4.counters.instructions,
        lx2.counters.instructions
    );
}

#[test]
fn utilization_reported_only_for_matrix_methods() {
    let spec = presets::box2d9p();
    let g = grid(32, 1);
    let cfg = MachineConfig::lx2();
    let auto = StencilPlan::new(&spec, Method::Auto)
        .run_2d(&cfg, &g)
        .unwrap()
        .report;
    let hs = StencilPlan::new(&spec, Method::HStencil)
        .run_2d(&cfg, &g)
        .unwrap()
        .report;
    assert!(auto.matrix_utilization().is_none());
    let u = hs.matrix_utilization().unwrap();
    assert!(u > 0.0 && u <= 1.0);
}

#[test]
fn time_stepped_simulation_matches_native_time_stepping() {
    let spec = presets::heat2d();
    let g = Grid2d::from_fn(32, 32, 1, |i, j| {
        if (10..22).contains(&i) && (10..22).contains(&j) {
            1.0
        } else {
            0.0
        }
    });
    let cfg = MachineConfig::lx2();
    for steps in [1usize, 2, 5] {
        let out = StencilPlan::new(&spec, Method::HStencil)
            .verify(true) // verify() compares against native::time_steps
            .run_2d_steps(&cfg, &g, steps)
            .unwrap_or_else(|e| panic!("steps={steps}: {e}"));
        assert_eq!(out.report.points, (32 * 32 * steps) as u64);
    }
}

#[test]
fn time_stepping_is_cheaper_than_separate_runs() {
    // Ping-ponging inside the machine keeps caches warm across steps.
    let spec = presets::box2d9p();
    let g = Grid2d::from_fn(64, 64, 1, |i, j| ((i * 3 + j) % 23) as f64);
    let cfg = MachineConfig::lx2();
    let steps = 4;
    let fused = StencilPlan::new(&spec, Method::HStencil)
        .run_2d_steps(&cfg, &g, steps)
        .unwrap()
        .report;
    let single = StencilPlan::new(&spec, Method::HStencil)
        .warmup(0)
        .run_2d(&cfg, &g)
        .unwrap()
        .report;
    assert!(
        fused.cycles() < steps as u64 * single.cycles(),
        "fused {} vs {}x cold {}",
        fused.cycles(),
        steps,
        single.cycles()
    );
}

#[test]
fn auto_scheduler_is_correct_and_competitive() {
    // The compiler-style list scheduler must preserve results and recover
    // most of the hand-written interleave's benefit from a phased kernel.
    let spec = presets::star2d9p();
    let g = grid(64, 2);
    let cfg = MachineConfig::lx2();
    let hand = StencilPlan::new(&spec, Method::HStencil)
        .scheduling(true)
        .verify(true)
        .run_2d(&cfg, &g)
        .unwrap()
        .report;
    let phased = StencilPlan::new(&spec, Method::HStencil)
        .scheduling(false)
        .verify(true)
        .run_2d(&cfg, &g)
        .unwrap()
        .report;
    let auto = StencilPlan::new(&spec, Method::HStencil)
        .scheduling(false)
        .auto_schedule(true)
        .verify(true)
        .run_2d(&cfg, &g)
        .unwrap()
        .report;
    assert!(
        auto.cycles() < phased.cycles(),
        "auto {} vs phased {}",
        auto.cycles(),
        phased.cycles()
    );
    // Within 2x of the hand schedule (usually much closer).
    assert!(
        auto.cycles() < 2 * hand.cycles(),
        "auto {} vs hand {}",
        auto.cycles(),
        hand.cycles()
    );
}
