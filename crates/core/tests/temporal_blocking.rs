//! Temporal blocking (ghost-zone fused time steps): correctness against
//! serial time stepping and the cache-traffic payoff.

use hstencil_core::{presets, reference, Grid2d, Method, StencilPlan};
use lx2_sim::MachineConfig;

fn grid(h: usize, w: usize, halo: usize) -> Grid2d {
    Grid2d::from_fn(h, w, halo, |i, j| {
        ((i * 47 + j * 29 + 3) % 173) as f64 * 0.011 - 0.9
    })
}

fn serial_steps(spec: &hstencil_core::StencilSpec, g: &Grid2d, steps: usize) -> Grid2d {
    let mut cur = g.clone();
    let mut next = g.clone();
    for _ in 0..steps {
        reference::apply_2d(spec, &cur, &mut next);
        std::mem::swap(&mut cur, &mut next);
    }
    cur
}

#[test]
fn temporal_blocking_matches_serial_time_stepping() {
    let cfg = MachineConfig::lx2();
    for spec in [presets::star2d9p(), presets::box2d9p(), presets::heat2d()] {
        for t_block in [1usize, 2, 3] {
            let g = grid(48, 96, spec.radius());
            let out = StencilPlan::new(&spec, Method::HStencil)
                .run_2d_temporal(&cfg, &g, t_block, 64)
                .unwrap_or_else(|e| panic!("{} T={t_block}: {e}", spec.name()));
            let want = serial_steps(&spec, &g, t_block);
            let diff = want.max_interior_diff(&out.output);
            assert!(diff < 1e-9, "{} T={t_block}: diff {diff}", spec.name());
        }
    }
}

#[test]
fn temporal_blocking_verify_flag_works() {
    let cfg = MachineConfig::lx2();
    let spec = presets::box2d25p();
    let g = grid(40, 72, 2);
    StencilPlan::new(&spec, Method::HStencil)
        .verify(true)
        .run_2d_temporal(&cfg, &g, 2, 40)
        .expect("verified temporal run");
}

#[test]
fn odd_strip_and_grid_shapes_are_covered() {
    let cfg = MachineConfig::lx2();
    let spec = presets::star2d5p();
    for (h, w, strip) in [(24usize, 70usize, 48usize), (9, 40, 33), (32, 64, 100)] {
        let g = grid(h, w, 1);
        let out = StencilPlan::new(&spec, Method::HStencil)
            .run_2d_temporal(&cfg, &g, 2, strip)
            .unwrap_or_else(|e| panic!("{h}x{w} strip {strip}: {e}"));
        let want = serial_steps(&spec, &g, 2);
        assert!(
            want.max_interior_diff(&out.output) < 1e-9,
            "{h}x{w} strip {strip}"
        );
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "out-of-cache simulation; run with --release"
)]
fn temporal_blocking_cuts_dram_traffic_out_of_cache() {
    // The point of the technique: intermediate sweeps stay cache-resident.
    // Strips must be sized so strip x height x buffers fits L2.
    let cfg = MachineConfig::lx2();
    let spec = presets::box2d9p();
    let g = grid(256, 2048, 1);
    let t = 4;
    let fused = StencilPlan::new(&spec, Method::HStencil)
        .run_2d_temporal(&cfg, &g, t, 64)
        .unwrap()
        .report;
    let separate = StencilPlan::new(&spec, Method::HStencil)
        .warmup(0)
        .run_2d_steps(&cfg, &g, t)
        .unwrap()
        .report;
    let fused_dram = fused.counters.mem.dram_bytes(64);
    let sep_dram = separate.counters.mem.dram_bytes(64);
    // The compulsory floor is ~2 grid volumes for fused vs ~2t for
    // separate; hardware-prefetcher overfetch narrows the observed gap.
    // (Single-core *cycles* do not improve here — the simulator hides
    // memory latency well, so traffic only costs wall-clock once the
    // shared bandwidth ceiling binds, i.e. in multicore runs.)
    assert!(
        (fused_dram as f64) < 0.92 * sep_dram as f64,
        "fused {fused_dram} vs separate {sep_dram} DRAM bytes"
    );
}

#[test]
fn row_major_methods_are_rejected() {
    let cfg = MachineConfig::lx2();
    let spec = presets::star2d5p();
    let g = grid(32, 64, 1);
    let err = StencilPlan::new(&spec, Method::VectorOnly).run_2d_temporal(&cfg, &g, 2, 32);
    assert!(matches!(
        err,
        Err(hstencil_core::PlanError::MethodUnsupported { .. })
    ));
}

#[test]
fn stop_also_supports_temporal_blocking() {
    let cfg = MachineConfig::lx2();
    let spec = presets::box2d9p();
    let g = grid(32, 64, 1);
    let out = StencilPlan::new(&spec, Method::MatrixOnly)
        .run_2d_temporal(&cfg, &g, 2, 32)
        .unwrap();
    let want = serial_steps(&spec, &g, 2);
    assert!(want.max_interior_diff(&out.output) < 1e-9);
}
