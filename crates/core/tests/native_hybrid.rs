//! Property suite for the hybrid 8×8 register-tile kernel
//! (`Dispatch::Hybrid`, DESIGN.md §10) and the seeded autotuner
//! (`native::tune`).
//!
//! The hybrid chain reassociates the canonical tap sum (vertical rank-1
//! updates + folded inner-MLA partial), so it is compared to the
//! reference under a small absolute tolerance — but it must be
//! **bit-identical to itself** across every band/tile/thread
//! decomposition, which is what makes it legal everywhere the canonical
//! kernels run.

use hstencil_core::native::{self, tune, Temporal};
use hstencil_core::{presets, reference, Dispatch, Grid2d, Pattern, StencilSpec, ThreadPool};
use hstencil_testkit::{Rng, SplitMix64, Xoshiro256};

fn random_grid(h: usize, w: usize, halo: usize, seed: u64) -> Grid2d {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    Grid2d::from_fn(h, w, halo, |_, _| rng.gen_range(-1.0..1.0))
}

/// Star and box specs at radii 1–4 (the vectorized range plus presets).
fn suite_r1_to_r4() -> Vec<StencilSpec> {
    let mut v = vec![
        presets::star2d5p(),
        presets::box2d9p(),
        presets::star2d13p(),
        presets::box2d25p(),
    ];
    // Radius-4 star: 17 points, coefficients summing to 1.
    let h = [0.01, 0.02, 0.04, 0.08, 0.52, 0.08, 0.04, 0.02, 0.01];
    let vtaps = [0.015, 0.025, 0.035, 0.045, 0.0, 0.045, 0.035, 0.025, 0.015];
    v.push(StencilSpec::star_2d("star2d17p-r4", 4, 0.52, &h, &vtaps));
    // Radius-4 box: 81 points, smooth decaying coefficients.
    let n = 9usize;
    let mut table = vec![0.0; n * n];
    let mut norm = 0.0;
    for (idx, t) in table.iter_mut().enumerate() {
        let (di, dj) = ((idx / n) as isize - 4, (idx % n) as isize - 4);
        *t = 1.0 / (1.0 + (di * di + dj * dj) as f64);
        norm += *t;
    }
    for t in table.iter_mut() {
        *t /= norm;
    }
    v.push(StencilSpec::new_2d("box2d81p-r4", Pattern::Box, 4, table));
    v
}

#[test]
fn hybrid_matches_reference_on_awkward_shapes() {
    // Heights below one 8-row group, widths off the 8-lane grid, and
    // widths straddling the hybrid column-tile boundary (~680 cols for
    // a radius-1 star) all take different code paths; every one must
    // agree with the scalar reference.
    let shapes = [
        (1usize, 9usize),
        (3, 5),
        (5, 8),
        (7, 33),
        (8, 7),
        (9, 16),
        (12, 63),
        (16, 65),
        (20, 679),
        (11, 681),
    ];
    for spec in suite_r1_to_r4() {
        for &(h, w) in &shapes {
            if h <= spec.radius() || w <= spec.radius() {
                continue; // the grid layer rejects these as degenerate
            }
            let a = random_grid(h, w, spec.radius(), 0xA5A5 + h as u64 * 131 + w as u64);
            let mut want = Grid2d::zeros(h, w, spec.radius());
            let mut got = Grid2d::zeros(h, w, spec.radius());
            reference::apply_2d(&spec, &a, &mut want);
            native::try_apply_2d_with(Dispatch::Hybrid, &spec, &a, &mut got).expect("valid shape");
            let diff = want.max_interior_diff(&got);
            assert!(diff < 1e-12, "{} {h}x{w}: diff={diff:e}", spec.name());
        }
    }
}

#[test]
fn hybrid_staged_nt_path_matches_reference() {
    // Bands whose working set passes the staging threshold (~4 MiB)
    // retire rows through the ping-pong NT drain instead of storing
    // directly; an awkward width keeps chunk seams, the scalar column
    // tail, and the drain's alignment heads all in play.
    let (h, w) = (520usize, 517usize); // 2*h*w*8 ≈ 4.3 MiB > 4 MiB
    for spec in [presets::star2d5p(), presets::box2d9p()] {
        let a = random_grid(h, w, spec.radius(), 0x57A6E);
        let mut want = Grid2d::zeros(h, w, spec.radius());
        let mut got = Grid2d::zeros(h, w, spec.radius());
        reference::apply_2d(&spec, &a, &mut want);
        native::apply_2d_with(Dispatch::Hybrid, &spec, &a, &mut got);
        let diff = want.max_interior_diff(&got);
        assert!(diff < 1e-12, "{} staged: diff={diff:e}", spec.name());
    }
}

#[test]
fn hybrid_staged_and_direct_stores_are_bit_identical() {
    // A serial sweep stages (band = whole grid, past the threshold);
    // a 4-way parallel sweep does not (each band is ~1/4 of it). The
    // NT drain is a bit-preserving copy, so the outputs must agree to
    // the last ULP — this pins the staging boundary itself.
    let pool = ThreadPool::new();
    let spec = presets::star2d5p();
    let (h, w) = (640usize, 600usize);
    let a = random_grid(h, w, spec.radius(), 0xD1A1);
    let mut staged = Grid2d::zeros(h, w, spec.radius());
    native::apply_2d_with(Dispatch::Hybrid, &spec, &a, &mut staged);
    let mut direct = Grid2d::zeros(h, w, spec.radius());
    native::apply_2d_parallel_in(&pool, Dispatch::Hybrid, &spec, &a, &mut direct, 4);
    assert_eq!(staged.max_interior_diff(&direct), 0.0);
}

#[test]
fn hybrid_is_bit_identical_across_decompositions() {
    // Serial, pool-parallel, and forced temporal-pipeline hybrid sweeps
    // must agree bit-for-bit: the hybrid chain is the same for every
    // band/tile split, so decomposition can never change a ULP.
    let pool = ThreadPool::new();
    for spec in suite_r1_to_r4() {
        let (h, w) = (37, 53);
        let a = random_grid(h, w, spec.radius(), 0xBEE5);
        let mut serial = Grid2d::zeros(h, w, spec.radius());
        native::apply_2d_with(Dispatch::Hybrid, &spec, &a, &mut serial);
        for threads in [2usize, 3, 5] {
            let mut par = Grid2d::zeros(h, w, spec.radius());
            native::apply_2d_parallel_in(&pool, Dispatch::Hybrid, &spec, &a, &mut par, threads);
            assert_eq!(
                serial.max_interior_diff(&par),
                0.0,
                "{} threads={threads}",
                spec.name()
            );
        }
        let temporal = native::time_steps_temporal_in(
            &pool,
            Dispatch::Hybrid,
            &spec,
            &a,
            1,
            3,
            Temporal {
                t_block: Some(1),
                force_pipeline: true,
                tile: Some((8, 16)),
            },
        );
        assert_eq!(
            serial.max_interior_diff(&temporal),
            0.0,
            "{} temporal pipeline",
            spec.name()
        );
    }
}

#[test]
fn hybrid_multi_sweep_is_bit_identical_to_repeated_sweeps() {
    let pool = ThreadPool::new();
    let spec = presets::star2d9p();
    let a = random_grid(23, 31, spec.radius(), 0xD00D);
    let mut want = a.clone();
    let mut ping = a.clone();
    for _ in 0..6 {
        native::apply_2d_with(Dispatch::Hybrid, &spec, &want, &mut ping);
        std::mem::swap(&mut want, &mut ping);
    }
    let got = native::time_steps_temporal_in(
        &pool,
        Dispatch::Hybrid,
        &spec,
        &a,
        6,
        3,
        Temporal {
            t_block: Some(3),
            force_pipeline: true,
            tile: None,
        },
    );
    assert_eq!(want.max_interior_diff(&got), 0.0);
}

/// Synthetic, fully deterministic cost model for the tuner: each
/// candidate's cost is a pure hash of (seed, candidate) — stands in for
/// the wall clock so the determinism property does not depend on timing
/// noise.
fn synthetic_cost(seed: u64, c: &tune::Candidate) -> f64 {
    let mut mix = SplitMix64::new(
        seed ^ (c.tile.0 as u64) << 32
            ^ (c.tile.1 as u64) << 16
            ^ (c.t_block as u64) << 8
            ^ c.dispatch.label().len() as u64,
    );
    mix.gen_range(0.0..1.0)
}

#[test]
fn tuner_is_deterministic_for_a_fixed_seed() {
    let seed = 0x5EED_u64;
    for class in [tune::ShapeClass::Resident, tune::ShapeClass::Streaming] {
        let mut m1 = |c: &tune::Candidate| synthetic_cost(seed, c);
        let mut m2 = |c: &tune::Candidate| synthetic_cost(seed, c);
        let p1 = tune::run_tuner_with(class, &mut m1);
        let p2 = tune::run_tuner_with(class, &mut m2);
        assert_eq!(p1, p2, "same seed must pick the same plan");

        // ... and the *persisted* artifact is byte-identical too.
        let key = "star/r1/streaming/f64/t1".to_string();
        let mut s1 = tune::PlanSet::default();
        let mut s2 = tune::PlanSet::default();
        s1.insert(key.clone(), p1);
        s2.insert(key, p2);
        assert_eq!(s1.render(), s2.render());
    }
}

#[test]
fn plan_cache_round_trips_through_disk_with_identical_decisions() {
    let mut set = tune::PlanSet::default();
    let mut m = |c: &tune::Candidate| synthetic_cost(7, c);
    set.insert(
        "star/r1/streaming/f64/t1".into(),
        tune::run_tuner_with(tune::ShapeClass::Streaming, &mut m),
    );
    set.insert(
        "box/r2/resident/f64/t4".into(),
        tune::run_tuner_with(tune::ShapeClass::Resident, &mut m),
    );
    let path = std::env::temp_dir().join(format!("hstencil-tune-rt-{}.json", std::process::id()));
    std::fs::write(&path, set.render()).unwrap();
    let back = tune::PlanSet::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(back, set);
    for key in ["star/r1/streaming/f64/t1", "box/r2/resident/f64/t4"] {
        let (a, b) = (set.get(key).unwrap(), back.get(key).unwrap());
        assert_eq!(a.dispatch, b.dispatch, "{key}: dispatch decision drifted");
        assert_eq!((a.tile, a.t_block), (b.tile, b.t_block), "{key}");
    }
}

#[test]
fn tuner_candidates_cover_both_kernel_families() {
    for class in [tune::ShapeClass::Resident, tune::ShapeClass::Streaming] {
        let cands = tune::candidates(class);
        assert!(cands.iter().any(|c| c.dispatch == Dispatch::Hybrid));
        assert!(cands.iter().any(|c| c.dispatch != Dispatch::Hybrid));
        // Deterministic enumeration order (the tie-break contract).
        assert_eq!(cands, tune::candidates(class));
    }
}
