//! Oversubscription and tile-boundary coverage for the native executor:
//! the persistent pool with more lanes than cores, and interior widths
//! straddling the 8-lane vector tile (multiples of 8, ±1).

use hstencil_core::{native, presets, reference, Dispatch, Grid2d, Grid3d, ThreadPool};

fn noisy2(h: usize, w: usize, halo: usize, seed: u64) -> Grid2d {
    Grid2d::from_fn(h, w, halo, |i, j| {
        let x = (seed as i64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15u64 as i64)
            .wrapping_add((i * 131 + j) as i64);
        (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64
    })
}

fn interior_bits(g: &Grid2d) -> Vec<u64> {
    let mut out = Vec::with_capacity(g.h() * g.w());
    for i in 0..g.h() as isize {
        for j in 0..g.w() as isize {
            out.push(g.at(i, j).to_bits());
        }
    }
    out
}

#[test]
fn oversubscribed_pool_matches_the_serial_sweep_bit_for_bit() {
    // Band partitioning never changes a cell's accumulation chain, so
    // any lane count — including far more lanes than this machine has
    // cores — must reproduce the single-threaded answer exactly.
    let pool = ThreadPool::new();
    let dispatch = Dispatch::detect();
    let spec = presets::star2d5p();
    let a = noisy2(48, 40, spec.radius(), 0xA11);
    let mut serial = a.clone();
    native::apply_2d_with(dispatch, &spec, &a, &mut serial);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    for threads in [1, 2, 3, cores, 2 * cores, 32, 64, 127] {
        let mut out = a.clone();
        native::apply_2d_parallel_in(&pool, dispatch, &spec, &a, &mut out, threads);
        assert_eq!(
            interior_bits(&serial),
            interior_bits(&out),
            "threads={threads} (cores={cores}) diverged from serial"
        );
    }
    // Lane 0 always runs on the caller, so even the 127-lane sweep
    // spawned at most 126 workers — and repeats reuse them.
    let spawned = pool.spawned_threads();
    assert!(spawned <= 126, "pool spawned {spawned} threads");
    for _ in 0..8 {
        let mut out = a.clone();
        native::apply_2d_parallel_in(&pool, dispatch, &spec, &a, &mut out, 64);
    }
    assert_eq!(
        pool.spawned_threads(),
        spawned,
        "oversubscribed sweeps kept spawning threads instead of reusing the pool"
    );
}

#[test]
fn oversubscription_matches_in_3d_too() {
    let pool = ThreadPool::new();
    let spec = presets::star3d7p();
    let a = Grid3d::from_fn(6, 9, 17, spec.radius(), |k, i, j| {
        ((k * 131 + i * 31 + j * 7).rem_euclid(23)) as f64 * 0.0625 - 0.5
    });
    let mut want = a.clone();
    native::apply_3d_with(Dispatch::detect(), &spec, &a, &mut want);
    for threads in [5, 48] {
        let mut out = a.clone();
        native::apply_3d_parallel_in(&pool, Dispatch::detect(), &spec, &a, &mut out, threads);
        assert_eq!(want.max_interior_diff(&out), 0.0, "threads={threads}");
    }
}

#[test]
fn tile_boundary_widths_match_the_reference() {
    // Widths at multiples of the 8-lane tile and one off either side:
    // these exercise the full-tile fast path, the scalar remainder
    // column, and the transition between them.
    let widths = [7usize, 8, 9, 15, 16, 17, 23, 24, 25, 31, 32, 33];
    for spec in [
        presets::star2d5p(),
        presets::box2d25p(),
        presets::star2d13p(),
    ] {
        let r = spec.radius();
        for &w in &widths {
            for h in [r + 2, 8, 13] {
                if h.min(w) <= r {
                    continue;
                }
                let a = noisy2(h, w, r, (w * 1000 + h) as u64);
                let mut want = a.clone();
                reference::apply_2d(&spec, &a, &mut want);
                for dispatch in Dispatch::candidates() {
                    let mut got = a.clone();
                    native::try_apply_2d_with(dispatch, &spec, &a, &mut got).unwrap();
                    let diff = want.max_interior_diff(&got);
                    assert!(
                        diff <= 1e-12,
                        "{} {}x{w} via {}: diff {diff:e}",
                        spec.name(),
                        h,
                        dispatch.label()
                    );
                }
            }
        }
    }
}

#[test]
fn dispatch_paths_agree_bitwise_at_tile_boundaries() {
    // Scalar and AVX2 share the same per-cell accumulation order, so
    // where both are available they must agree to the last bit — at
    // every width straddling a tile boundary.
    let candidates = Dispatch::candidates();
    if candidates.len() < 2 {
        eprintln!("skipping: only {:?} available", candidates);
        return;
    }
    let spec = presets::box2d9p();
    for w in [7usize, 8, 9, 16, 17, 24, 25, 33] {
        let a = noisy2(11, w, spec.radius(), w as u64);
        let mut first: Option<(Dispatch, Vec<u64>)> = None;
        for &dispatch in &candidates {
            let mut out = a.clone();
            native::apply_2d_with(dispatch, &spec, &a, &mut out);
            let bits = interior_bits(&out);
            match &first {
                None => first = Some((dispatch, bits)),
                Some((d0, want)) => assert_eq!(
                    want,
                    &bits,
                    "w={w}: {} and {} disagree bitwise",
                    d0.label(),
                    dispatch.label()
                ),
            }
        }
    }
}
