//! Property-based tests: every kernel must match the scalar reference on
//! *arbitrary* coefficient tables, grid contents and option combinations.
//!
//! Runs on the in-repo `hstencil-testkit` property harness; a failure
//! prints a `TESTKIT_SEED=0x...` line that replays the exact case (see
//! README.md "Hermetic / offline build").

use hstencil_core::{reference, Grid2d, Method, Pattern, StencilPlan, StencilSpec};
use hstencil_testkit::prop::{self, any_bool, any_u64, range, vec_of, Config, Strategy};
use hstencil_testkit::prop_assert;
use lx2_sim::MachineConfig;

/// Strategy: a dense 2-D coefficient table of the given radius with
/// values in [-1, 1] and a controllable sparsity pattern.
fn table_strategy(radius: usize, star_only: bool) -> impl Strategy<Value = Vec<f64>> {
    let n = 2 * radius + 1;
    vec_of(range(-1.0f64..1.0), n * n..n * n + 1).map(move |mut v| {
        if star_only {
            for di in 0..n {
                for dj in 0..n {
                    if di != radius && dj != radius {
                        v[di * n + dj] = 0.0;
                    }
                }
            }
        }
        v
    })
}

fn grid_strategy(h: usize, w: usize, halo: usize) -> impl Strategy<Value = Grid2d> {
    let len = (h + 2 * halo) * (w + 2 * halo);
    vec_of(range(-10.0f64..10.0), len..len + 1).map(move |vals| {
        let mut it = vals.into_iter();
        Grid2d::from_fn(h, w, halo, |_, _| it.next().unwrap_or(0.5))
    })
}

fn check_method(
    method: Method,
    spec: &StencilSpec,
    grid: &Grid2d,
    scheduling: bool,
    prefetch: bool,
    rb: usize,
) -> Result<(), String> {
    let plan = StencilPlan::new(spec, method)
        .scheduling(scheduling)
        .replacement(scheduling)
        .prefetch(prefetch)
        .reg_blocks(rb)
        .warmup(0);
    let out = plan
        .run_2d(&MachineConfig::lx2(), grid)
        .map_err(|e| format!("{method}: {e}"))?;
    let mut want = grid.clone();
    reference::apply_2d(spec, grid, &mut want);
    let diff = want.max_interior_diff(&out.output);
    prop_assert!(diff < 1e-9, "{method} diverges by {diff}");
    Ok(())
}

#[test]
fn hstencil_matches_reference_on_random_tables() {
    let cfg = Config::with_cases(24);
    let strat = (
        table_strategy(2, false),
        grid_strategy(16, 24, 2),
        any_bool(),
        any_bool(),
        range(1usize..5),
    );
    prop::check(&cfg, &strat, |(table, grid, scheduling, prefetch, rb)| {
        let spec = StencilSpec::new_2d("prop-box", Pattern::Box, 2, table.clone());
        check_method(Method::HStencil, &spec, grid, *scheduling, *prefetch, *rb)
    });
}

#[test]
fn hstencil_matches_reference_on_random_star_tables() {
    let cfg = Config::with_cases(24);
    let strat = (
        table_strategy(2, true),
        grid_strategy(16, 24, 2),
        any_bool(),
        range(1usize..5),
    );
    prop::check(&cfg, &strat, |(table, grid, scheduling, rb)| {
        let spec = StencilSpec::new_2d("prop-star", Pattern::Star, 2, table.clone());
        check_method(Method::HStencil, &spec, grid, *scheduling, false, *rb)
    });
}

#[test]
fn stop_matches_reference_on_random_tables() {
    let cfg = Config::with_cases(24);
    let strat = (
        table_strategy(1, false),
        grid_strategy(16, 16, 1),
        range(1usize..5),
    );
    prop::check(&cfg, &strat, |(table, grid, rb)| {
        let spec = StencilSpec::new_2d("prop-box", Pattern::Box, 1, table.clone());
        check_method(Method::MatrixOnly, &spec, grid, false, false, *rb)
    });
}

#[test]
fn vector_matches_reference_on_random_tables() {
    let cfg = Config::with_cases(24);
    let strat = (
        table_strategy(2, false),
        grid_strategy(16, 24, 2),
        range(1usize..5),
    );
    prop::check(&cfg, &strat, |(table, grid, rb)| {
        let spec = StencilSpec::new_2d("prop-box", Pattern::Box, 2, table.clone());
        check_method(Method::VectorOnly, &spec, grid, false, false, *rb)
    });
}

#[test]
fn auto_matches_reference_on_random_tables() {
    let cfg = Config::with_cases(24);
    let strat = (table_strategy(1, false), grid_strategy(12, 16, 1));
    prop::check(&cfg, &strat, |(table, grid)| {
        let spec = StencilSpec::new_2d("prop-box", Pattern::Box, 1, table.clone());
        check_method(Method::Auto, &spec, grid, false, false, 1)
    });
}

#[test]
fn naive_hybrid_matches_reference_on_random_star_tables() {
    let cfg = Config::with_cases(24);
    let strat = (table_strategy(2, true), grid_strategy(16, 16, 2));
    prop::check(&cfg, &strat, |(table, grid)| {
        let spec = StencilSpec::new_2d("prop-star", Pattern::Star, 2, table.clone());
        check_method(Method::NaiveHybrid, &spec, grid, false, false, 4)
    });
}

#[test]
fn ortho_matches_reference_on_random_star_tables() {
    let cfg = Config::with_cases(24);
    let strat = (table_strategy(2, true), grid_strategy(16, 16, 2));
    prop::check(&cfg, &strat, |(table, grid)| {
        let spec = StencilSpec::new_2d("prop-star", Pattern::Star, 2, table.clone());
        check_method(Method::MatrixOrtho, &spec, grid, false, false, 2)
    });
}

#[test]
fn m4_kernels_match_reference() {
    let cfg = Config::with_cases(24);
    let strat = (
        table_strategy(2, true),
        grid_strategy(16, 16, 2),
        any_bool(),
    );
    prop::check(&cfg, &strat, |(table, grid, scheduling)| {
        let spec = StencilSpec::new_2d("prop-star", Pattern::Star, 2, table.clone());
        let plan = StencilPlan::new(&spec, Method::HStencil)
            .scheduling(*scheduling)
            .warmup(0);
        let out = plan
            .run_2d(&MachineConfig::apple_m4(), grid)
            .map_err(|e| format!("m4: {e}"))?;
        let mut want = grid.clone();
        reference::apply_2d(&spec, grid, &mut want);
        prop_assert!(want.max_interior_diff(&out.output) < 1e-9);
        Ok(())
    });
}

#[test]
fn arbitrary_grid_shapes_are_covered() {
    let cfg = Config::with_cases(24);
    let strat = (range(8usize..40), range(8usize..70), any_u64());
    prop::check(&cfg, &strat, |&(h, w, seed)| {
        let spec = hstencil_core::presets::star2d5p();
        let mut state = seed;
        let grid = Grid2d::from_fn(h, w, 1, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (1u64 << 31) as f64 - 1.0
        });
        check_method(Method::HStencil, &spec, &grid, true, true, 4)?;
        check_method(Method::MatrixOnly, &spec, &grid, false, false, 4)
    });
}

#[test]
fn linearity_of_the_stencil_operator() {
    let cfg = Config::with_cases(24);
    let strat = (table_strategy(1, false), any_u64(), range(-3.0f64..3.0));
    prop::check(&cfg, &strat, |(table, seed, alpha)| {
        // Stencils are linear: S(alpha * A) == alpha * S(A).
        let spec = StencilSpec::new_2d("prop-box", Pattern::Box, 1, table.clone());
        let alpha = *alpha;
        let mut state = *seed;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(99);
            ((state >> 33) as f64) / (1u64 << 31) as f64 - 1.0
        };
        let a = Grid2d::from_fn(16, 16, 1, |_, _| next());
        let scaled = Grid2d::from_fn(16, 16, 1, |i, j| alpha * a.at(i, j));
        let plan = StencilPlan::new(&spec, Method::HStencil).warmup(0);
        let cfg = MachineConfig::lx2();
        let out_a = plan.run_2d(&cfg, &a).unwrap().output;
        let out_scaled = plan.run_2d(&cfg, &scaled).unwrap().output;
        for i in 0..16isize {
            for j in 0..16isize {
                let diff = (out_scaled.at(i, j) - alpha * out_a.at(i, j)).abs();
                prop_assert!(diff < 1e-9, "nonlinearity {diff} at ({i},{j})");
            }
        }
        Ok(())
    });
}
