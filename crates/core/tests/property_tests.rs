//! Property-based tests: every kernel must match the scalar reference on
//! *arbitrary* coefficient tables, grid contents and option combinations.

use hstencil_core::{reference, Grid2d, Method, Pattern, StencilPlan, StencilSpec};
use lx2_sim::MachineConfig;
use proptest::prelude::*;

/// Strategy: a dense 2-D coefficient table of the given radius with
/// values in [-1, 1] and a controllable sparsity pattern.
fn table_strategy(radius: usize, star_only: bool) -> impl Strategy<Value = Vec<f64>> {
    let n = 2 * radius + 1;
    proptest::collection::vec(-1.0f64..1.0, n * n).prop_map(move |mut v| {
        if star_only {
            for di in 0..n {
                for dj in 0..n {
                    if di != radius && dj != radius {
                        v[di * n + dj] = 0.0;
                    }
                }
            }
        }
        v
    })
}

fn grid_strategy(h: usize, w: usize, halo: usize) -> impl Strategy<Value = Grid2d> {
    proptest::collection::vec(-10.0f64..10.0, (h + 2 * halo) * (w + 2 * halo)).prop_map(
        move |vals| {
            let mut it = vals.into_iter();
            Grid2d::from_fn(h, w, halo, |_, _| it.next().unwrap_or(0.5))
        },
    )
}

fn check_method(
    method: Method,
    spec: &StencilSpec,
    grid: &Grid2d,
    scheduling: bool,
    prefetch: bool,
    rb: usize,
) -> Result<(), TestCaseError> {
    let plan = StencilPlan::new(spec, method)
        .scheduling(scheduling)
        .replacement(scheduling)
        .prefetch(prefetch)
        .reg_blocks(rb)
        .warmup(0);
    let out = plan
        .run_2d(&MachineConfig::lx2(), grid)
        .map_err(|e| TestCaseError::fail(format!("{method}: {e}")))?;
    let mut want = grid.clone();
    reference::apply_2d(spec, grid, &mut want);
    let diff = want.max_interior_diff(&out.output);
    prop_assert!(diff < 1e-9, "{method} diverges by {diff}");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn hstencil_matches_reference_on_random_tables(
        table in table_strategy(2, false),
        grid in grid_strategy(16, 24, 2),
        scheduling in any::<bool>(),
        prefetch in any::<bool>(),
        rb in 1usize..=4,
    ) {
        let spec = StencilSpec::new_2d("prop-box", Pattern::Box, 2, table);
        check_method(Method::HStencil, &spec, &grid, scheduling, prefetch, rb)?;
    }

    #[test]
    fn hstencil_matches_reference_on_random_star_tables(
        table in table_strategy(2, true),
        grid in grid_strategy(16, 24, 2),
        scheduling in any::<bool>(),
        rb in 1usize..=4,
    ) {
        let spec = StencilSpec::new_2d("prop-star", Pattern::Star, 2, table);
        check_method(Method::HStencil, &spec, &grid, scheduling, false, rb)?;
    }

    #[test]
    fn stop_matches_reference_on_random_tables(
        table in table_strategy(1, false),
        grid in grid_strategy(16, 16, 1),
        rb in 1usize..=4,
    ) {
        let spec = StencilSpec::new_2d("prop-box", Pattern::Box, 1, table);
        check_method(Method::MatrixOnly, &spec, &grid, false, false, rb)?;
    }

    #[test]
    fn vector_matches_reference_on_random_tables(
        table in table_strategy(2, false),
        grid in grid_strategy(16, 24, 2),
        rb in 1usize..=4,
    ) {
        let spec = StencilSpec::new_2d("prop-box", Pattern::Box, 2, table);
        check_method(Method::VectorOnly, &spec, &grid, false, false, rb)?;
    }

    #[test]
    fn auto_matches_reference_on_random_tables(
        table in table_strategy(1, false),
        grid in grid_strategy(12, 16, 1),
    ) {
        let spec = StencilSpec::new_2d("prop-box", Pattern::Box, 1, table);
        check_method(Method::Auto, &spec, &grid, false, false, 1)?;
    }

    #[test]
    fn naive_hybrid_matches_reference_on_random_star_tables(
        table in table_strategy(2, true),
        grid in grid_strategy(16, 16, 2),
    ) {
        let spec = StencilSpec::new_2d("prop-star", Pattern::Star, 2, table);
        check_method(Method::NaiveHybrid, &spec, &grid, false, false, 4)?;
    }

    #[test]
    fn ortho_matches_reference_on_random_star_tables(
        table in table_strategy(2, true),
        grid in grid_strategy(16, 16, 2),
    ) {
        let spec = StencilSpec::new_2d("prop-star", Pattern::Star, 2, table);
        check_method(Method::MatrixOrtho, &spec, &grid, false, false, 2)?;
    }

    #[test]
    fn m4_kernels_match_reference(
        table in table_strategy(2, true),
        grid in grid_strategy(16, 16, 2),
        scheduling in any::<bool>(),
    ) {
        let spec = StencilSpec::new_2d("prop-star", Pattern::Star, 2, table);
        let plan = StencilPlan::new(&spec, Method::HStencil)
            .scheduling(scheduling)
            .warmup(0);
        let out = plan
            .run_2d(&MachineConfig::apple_m4(), &grid)
            .map_err(|e| TestCaseError::fail(format!("m4: {e}")))?;
        let mut want = grid.clone();
        reference::apply_2d(&spec, &grid, &mut want);
        prop_assert!(want.max_interior_diff(&out.output) < 1e-9);
    }

    #[test]
    fn arbitrary_grid_shapes_are_covered(
        h in 8usize..40,
        w in 8usize..70,
        seed in any::<u64>(),
    ) {
        let spec = hstencil_core::presets::star2d5p();
        let mut state = seed;
        let grid = Grid2d::from_fn(h, w, 1, |_, _| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (1u64 << 31) as f64 - 1.0
        });
        check_method(Method::HStencil, &spec, &grid, true, true, 4)?;
        check_method(Method::MatrixOnly, &spec, &grid, false, false, 4)?;
    }

    #[test]
    fn linearity_of_the_stencil_operator(
        table in table_strategy(1, false),
        seed in any::<u64>(),
        alpha in -3.0f64..3.0,
    ) {
        // Stencils are linear: S(alpha * A) == alpha * S(A).
        let spec = StencilSpec::new_2d("prop-box", Pattern::Box, 1, table);
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(99);
            ((state >> 33) as f64) / (1u64 << 31) as f64 - 1.0
        };
        let a = Grid2d::from_fn(16, 16, 1, |_, _| next());
        let scaled = Grid2d::from_fn(16, 16, 1, |i, j| alpha * a.at(i, j));
        let plan = StencilPlan::new(&spec, Method::HStencil).warmup(0);
        let cfg = MachineConfig::lx2();
        let out_a = plan.run_2d(&cfg, &a).unwrap().output;
        let out_scaled = plan.run_2d(&cfg, &scaled).unwrap().output;
        for i in 0..16isize {
            for j in 0..16isize {
                let diff = (out_scaled.at(i, j) - alpha * out_a.at(i, j)).abs();
                prop_assert!(diff < 1e-9, "nonlinearity {diff} at ({i},{j})");
            }
        }
    }
}
