//! Property suite for the temporally-tiled native multi-sweep executor
//! (DESIGN.md §9): for **any** stencil, grid shape, fused depth
//! `t_block ∈ {1..4}`, band count, sweep count and trapezoid tile size,
//! the pipeline must be **bit-identical** to `sweeps` sequential
//! `apply_2d` calls — temporal tiling only reorders the memory
//! schedule, never a single FMA.
//!
//! A failure prints a `TESTKIT_SEED=0x...` line that replays the exact
//! case (see README.md "Reproducing a property-test failure").

use hstencil_core::native::{self, pool::ThreadPool, Dispatch, Temporal};
use hstencil_core::{Grid2d, Pattern, StencilSpec};
use hstencil_testkit::prop::{self, range, vec_of, Config, Strategy};
use hstencil_testkit::prop_assert;

/// A generated multi-sweep case: shapes stress sub-vector widths, bands
/// taller than the grid, ghost widths larger than the tile, and fused
/// depths that do not divide the sweep count.
#[derive(Clone, Debug)]
struct Case {
    spec: StencilSpec,
    grid: Grid2d,
    sweeps: usize,
    t_block: usize,
    threads: usize,
    tile: Option<(usize, usize)>,
}

fn case_strategy() -> impl Strategy<Value = Case> {
    let dims = (
        range(1usize..25), // h
        range(1usize..41), // w
        range(1usize..4),  // radius 1..=3
        range(0usize..3),  // halo slack beyond the radius
        range(1usize..9),  // threads (band count)
        range(0usize..2),  // star (0) or box (1)
    );
    let sched = (
        range(0usize..10), // sweeps
        range(1usize..5),  // t_block 1..=4
        range(0usize..4),  // tile override selector
    );
    (dims, sched, vec_of(range(-2.0f64..2.0), 0..50)).map(
        |((h, w, r, slack, threads, pattern), (sweeps, t_block, tile_sel), coeffs)| {
            let (h, w) = (h.max(r + 1), w.max(r + 1));
            let n = 2 * r + 1;
            let mut table = vec![0.0; n * n];
            let pick = |k: usize| coeffs.get(k % coeffs.len().max(1)).copied().unwrap_or(0.4);
            if pattern == 0 {
                for k in 0..n {
                    table[r * n + k] = pick(k);
                    table[k * n + r] = pick(n + k);
                }
            } else {
                for (k, t) in table.iter_mut().enumerate() {
                    *t = pick(k);
                }
            }
            let spec = if pattern == 0 {
                StencilSpec::new_2d("prop-star", Pattern::Star, r, table)
            } else {
                StencilSpec::new_2d("prop-box", Pattern::Box, r, table)
            };
            let halo = r + slack;
            let mut v = 0.23;
            let grid = Grid2d::from_fn(h, w, halo, |i, j| {
                v = (v * 1.3 + 0.7 + (i as f64) * 0.01 + (j as f64) * 0.003) % 5.0 - 2.5;
                v
            });
            // Tiles deliberately smaller than the ghost width force the
            // clamped-overlap paths; `None` exercises the tuned default.
            let tile = [None, Some((2, 4)), Some((5, 9)), Some((16, 8))][tile_sel];
            Case {
                spec,
                grid,
                sweeps,
                t_block,
                threads,
                tile,
            }
        },
    )
}

#[test]
fn temporal_pipeline_is_bit_identical_to_repeated_apply_2d() {
    let cfg = Config::with_cases(48);
    let pool = ThreadPool::new();
    prop::check(&cfg, &case_strategy(), |case| {
        let mut cur = case.grid.clone();
        let mut next = case.grid.clone();
        for _ in 0..case.sweeps {
            native::apply_2d(&case.spec, &cur, &mut next);
            std::mem::swap(&mut cur, &mut next);
        }
        let got = native::time_steps_temporal_in(
            &pool,
            Dispatch::detect(),
            &case.spec,
            &case.grid,
            case.sweeps,
            case.threads,
            Temporal {
                t_block: Some(case.t_block),
                force_pipeline: true,
                tile: case.tile,
            },
        );
        let diff = cur.max_interior_diff(&got);
        prop_assert!(
            diff == 0.0,
            "temporal differs by {diff:e}: {}x{} r={} sweeps={} t_block={} threads={} tile={:?}",
            case.grid.h(),
            case.grid.w(),
            case.spec.radius(),
            case.sweeps,
            case.t_block,
            case.threads,
            case.tile
        );
        Ok(())
    });
}

#[test]
fn auto_depth_pipeline_matches_naive_ping_pong() {
    // The auto policy (depth from the cache budget, fallback for small
    // working sets) must agree with the naive path on a grid big enough
    // to actually take the pipeline.
    let cfg = Config::with_cases(6);
    let pool = ThreadPool::new();
    prop::check(&cfg, &range(1usize..6), |&sweeps| {
        let spec = hstencil_core::presets::star2d5p();
        let grid = Grid2d::from_fn(140, 150, 1, |i, j| ((i * 13 + j * 7) % 23) as f64 * 0.11);
        let want = native::time_steps_in(&pool, Dispatch::detect(), &spec, &grid, sweeps, 2);
        let got = native::time_steps_temporal_in(
            &pool,
            Dispatch::detect(),
            &spec,
            &grid,
            sweeps,
            2,
            Temporal {
                t_block: None,
                force_pipeline: true,
                tile: None,
            },
        );
        let diff = want.max_interior_diff(&got);
        prop_assert!(diff == 0.0, "sweeps={sweeps} differs by {diff:e}");
        Ok(())
    });
}
