//! Property suite for the native executor v2: the SIMD and scalar
//! dispatch paths must produce **bit-identical** grids on every input —
//! awkward widths below one SIMD vector, widths that are not a multiple
//! of the lane count, radii 1–4, halos larger than the radius, any
//! coefficient table, any thread count — and the scalar path must agree
//! with the `reference` ground truth.
//!
//! A failure prints a `TESTKIT_SEED=0x...` line that replays the exact
//! case (see README.md "Reproducing a property-test failure").

use hstencil_core::native::{self, pool::ThreadPool, Dispatch};
use hstencil_core::{reference, Grid2d, Grid3d, Pattern, StencilSpec};
use hstencil_testkit::prop::{self, range, vec_of, Config, Strategy};
use hstencil_testkit::prop_assert;

/// A generated 2-D case: shape chosen to stress kernel edges (widths
/// 1..=40 cover sub-vector rows, 4-lane tails and 8-lane unroll tails).
#[derive(Clone, Debug)]
struct Case2d {
    spec: StencilSpec,
    grid: Grid2d,
    threads: usize,
}

fn case_2d_strategy() -> impl Strategy<Value = Case2d> {
    let dims = (
        range(1usize..25), // h
        range(1usize..41), // w
        range(1usize..5),  // radius 1..=4
        range(0usize..3),  // halo slack beyond the radius
        range(1usize..9),  // threads
        range(0usize..2),  // star (0) or box (1)
    );
    (
        dims,
        vec_of(range(-2.0f64..2.0), 0..82),
        range(-4.0f64..4.0),
    )
        .map(|((h, w, r, slack, threads, pattern), coeffs, fill_scale)| {
            // The executors now reject radius >= min interior with a
            // typed GridError (covered by the degenerate-shape corpus in
            // hstencil-conformance); keep this strategy inside the valid
            // envelope while still reaching the smallest legal shapes.
            let (h, w) = (h.max(r + 1), w.max(r + 1));
            let n = 2 * r + 1;
            let mut table = vec![0.0; n * n];
            let pick = |k: usize| coeffs.get(k % coeffs.len().max(1)).copied().unwrap_or(0.7);
            if pattern == 0 {
                for k in 0..n {
                    table[r * n + k] = pick(k);
                    table[k * n + r] = pick(n + k);
                }
            } else {
                for (k, t) in table.iter_mut().enumerate() {
                    *t = pick(k);
                }
            }
            let spec = if pattern == 0 {
                StencilSpec::new_2d("prop-star", Pattern::Star, r, table)
            } else {
                StencilSpec::new_2d("prop-box", Pattern::Box, r, table)
            };
            let halo = r + slack;
            let mut v = fill_scale;
            let grid = Grid2d::from_fn(h, w, halo, |i, j| {
                v = (v * 1.3 + 0.7 + (i as f64) * 0.01 + (j as f64) * 0.003) % 5.0 - 2.5;
                v
            });
            Case2d {
                spec,
                grid,
                threads,
            }
        })
}

#[test]
fn simd_and_scalar_paths_are_bit_identical_2d() {
    let cfg = Config::with_cases(48);
    prop::check(&cfg, &case_2d_strategy(), |case| {
        let (h, w, halo) = (case.grid.h(), case.grid.w(), case.grid.halo());
        let mut scalar = Grid2d::zeros(h, w, halo);
        native::apply_2d_with(Dispatch::Scalar, &case.spec, &case.grid, &mut scalar);
        for d in Dispatch::candidates() {
            let mut got = Grid2d::zeros(h, w, halo);
            native::apply_2d_with(d, &case.spec, &case.grid, &mut got);
            let diff = scalar.max_interior_diff(&got);
            prop_assert!(
                diff == 0.0,
                "{:?} differs from scalar by {diff:e} on {h}x{w} r={} halo={halo}",
                d,
                case.spec.radius()
            );
        }
        Ok(())
    });
}

#[test]
fn parallel_pool_sweeps_are_bit_identical_2d() {
    let cfg = Config::with_cases(32);
    let pool = ThreadPool::new();
    prop::check(&cfg, &case_2d_strategy(), |case| {
        let (h, w, halo) = (case.grid.h(), case.grid.w(), case.grid.halo());
        let mut serial = Grid2d::zeros(h, w, halo);
        native::apply_2d_with(Dispatch::detect(), &case.spec, &case.grid, &mut serial);
        let mut par = Grid2d::zeros(h, w, halo);
        native::apply_2d_parallel_in(
            &pool,
            Dispatch::detect(),
            &case.spec,
            &case.grid,
            &mut par,
            case.threads,
        );
        let diff = serial.max_interior_diff(&par);
        prop_assert!(
            diff == 0.0,
            "threads={} differs from serial by {diff:e} on {h}x{w}",
            case.threads
        );
        Ok(())
    });
}

#[test]
fn scalar_path_matches_reference_2d() {
    let cfg = Config::with_cases(32);
    prop::check(&cfg, &case_2d_strategy(), |case| {
        let (h, w, halo) = (case.grid.h(), case.grid.w(), case.grid.halo());
        let mut want = Grid2d::zeros(h, w, halo);
        reference::apply_2d(&case.spec, &case.grid, &mut want);
        let mut got = Grid2d::zeros(h, w, halo);
        native::apply_2d_with(Dispatch::Scalar, &case.spec, &case.grid, &mut got);
        // FMA rounds once per tap, the reference rounds twice — equal up
        // to accumulation epsilon, never bit-guaranteed.
        let diff = want.max_interior_diff(&got);
        prop_assert!(diff < 1e-10, "scalar diverges from reference by {diff:e}");
        Ok(())
    });
}

/// A generated 3-D case (small shapes, radii 1–2 to bound runtime).
#[derive(Clone, Debug)]
struct Case3d {
    spec: StencilSpec,
    grid: Grid3d,
    threads: usize,
}

fn case_3d_strategy() -> impl Strategy<Value = Case3d> {
    let dims = (
        range(1usize..7),  // d
        range(1usize..9),  // h
        range(1usize..23), // w
        range(1usize..3),  // radius 1..=2
        range(0usize..2),  // halo slack
        range(1usize..7),  // threads
    );
    (dims, vec_of(range(-1.5f64..1.5), 1..28)).map(|((d, h, w, r, slack, threads), coeffs)| {
        // Stay inside the valid envelope (radius < min interior); the
        // degenerate shapes are the conformance corpus's job now.
        let (d, h, w) = (d.max(r + 1), h.max(r + 1), w.max(r + 1));
        let n = 2 * r + 1;
        let mut table = vec![0.0; n * n * n];
        // Star core plus a few box corners so both row groupings and
        // sparse planes get exercised.
        let idx = |dk: usize, di: usize, dj: usize| (dk * n + di) * n + dj;
        let pick = |k: usize| coeffs[k % coeffs.len()];
        for q in 0..n {
            table[idx(q, r, r)] = pick(q);
            table[idx(r, q, r)] = pick(n + q);
            table[idx(r, r, q)] = pick(2 * n + q);
        }
        table[idx(0, 0, 0)] = pick(3 * n);
        table[idx(n - 1, n - 1, n - 1)] = pick(3 * n + 1);
        let spec = StencilSpec::new_3d("prop-3d", Pattern::Box, r, table);
        let halo = r + slack;
        let mut v = 0.37;
        let grid = Grid3d::from_fn(d, h, w, halo, |k, i, j| {
            v = (v * 1.7 + 0.3 + (k as f64) * 0.02 + (i as f64) * 0.005 + (j as f64) * 0.001) % 3.0
                - 1.5;
            v
        });
        Case3d {
            spec,
            grid,
            threads,
        }
    })
}

#[test]
fn simd_and_scalar_paths_are_bit_identical_3d() {
    let cfg = Config::with_cases(32);
    prop::check(&cfg, &case_3d_strategy(), |case| {
        let (d, h, w, halo) = (
            case.grid.d(),
            case.grid.h(),
            case.grid.w(),
            case.grid.halo(),
        );
        let mut scalar = Grid3d::zeros(d, h, w, halo);
        native::apply_3d_with(Dispatch::Scalar, &case.spec, &case.grid, &mut scalar);
        for disp in Dispatch::candidates() {
            let mut got = Grid3d::zeros(d, h, w, halo);
            native::apply_3d_with(disp, &case.spec, &case.grid, &mut got);
            let diff = scalar.max_interior_diff(&got);
            prop_assert!(
                diff == 0.0,
                "{disp:?} differs from scalar by {diff:e} on {d}x{h}x{w}"
            );
        }
        Ok(())
    });
}

#[test]
fn apply_3d_matches_reference_and_parallel_is_bit_identical() {
    let cfg = Config::with_cases(24);
    let pool = ThreadPool::new();
    prop::check(&cfg, &case_3d_strategy(), |case| {
        let (d, h, w, halo) = (
            case.grid.d(),
            case.grid.h(),
            case.grid.w(),
            case.grid.halo(),
        );
        let mut want = Grid3d::zeros(d, h, w, halo);
        reference::apply_3d(&case.spec, &case.grid, &mut want);
        let mut got = Grid3d::zeros(d, h, w, halo);
        native::apply_3d_with(Dispatch::Scalar, &case.spec, &case.grid, &mut got);
        let diff = want.max_interior_diff(&got);
        prop_assert!(diff < 1e-10, "scalar diverges from reference by {diff:e}");
        let mut par = Grid3d::zeros(d, h, w, halo);
        native::apply_3d_parallel_in(
            &pool,
            Dispatch::Scalar,
            &case.spec,
            &case.grid,
            &mut par,
            case.threads,
        );
        let pdiff = got.max_interior_diff(&par);
        prop_assert!(
            pdiff == 0.0,
            "threads={} diverges by {pdiff:e}",
            case.threads
        );
        Ok(())
    });
}

#[test]
fn time_steps_reuses_pool_threads_across_sweeps_and_calls() {
    let spec = hstencil_core::presets::star2d5p();
    let grid = Grid2d::from_fn(40, 40, 1, |i, j| ((i * 7 + j * 3) % 11) as f64);
    let pool = ThreadPool::new();
    for round in 1..=3 {
        let _ = native::time_steps_in(&pool, Dispatch::detect(), &spec, &grid, 20, 4);
        assert_eq!(
            pool.spawned_threads(),
            3,
            "round {round}: pool must never respawn workers"
        );
    }
}
