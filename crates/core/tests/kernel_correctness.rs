//! End-to-end correctness: every method's simulated output must match the
//! scalar reference on every benchmark preset.

use hstencil_core::{presets, Grid2d, Grid3d, Method, StencilPlan};
use lx2_sim::MachineConfig;

fn test_grid(h: usize, w: usize, halo: usize) -> Grid2d {
    Grid2d::from_fn(h, w, halo, |i, j| {
        0.01 * ((i * 131 + j * 37 + 11) % 251) as f64 - 1.0
    })
}

fn check(method: Method, spec: &hstencil_core::StencilSpec, h: usize, w: usize) {
    let grid = test_grid(h, w, spec.radius());
    let plan = StencilPlan::new(spec, method).verify(true).warmup(0);
    let out = plan.run_2d(&MachineConfig::lx2(), &grid);
    match out {
        Ok(o) => assert!(o.report.cycles() > 0, "{method} {} no cycles", spec.name()),
        Err(e) => panic!("{method} on {} {h}x{w}: {e}", spec.name()),
    }
}

#[test]
fn hstencil_all_presets() {
    for spec in presets::suite_2d() {
        check(Method::HStencil, &spec, 32, 40);
    }
}

#[test]
fn matrix_only_all_presets() {
    for spec in presets::suite_2d() {
        check(Method::MatrixOnly, &spec, 32, 40);
    }
}

#[test]
fn vector_only_all_presets() {
    for spec in presets::suite_2d() {
        check(Method::VectorOnly, &spec, 32, 40);
    }
}

#[test]
fn auto_all_presets() {
    for spec in presets::suite_2d() {
        check(Method::Auto, &spec, 32, 40);
    }
}

#[test]
fn naive_hybrid_all_presets() {
    for spec in presets::suite_2d() {
        check(Method::NaiveHybrid, &spec, 32, 40);
    }
}

#[test]
fn ortho_star_presets() {
    for spec in [
        presets::star2d5p(),
        presets::star2d9p(),
        presets::star2d13p(),
        presets::heat2d(),
    ] {
        check(Method::MatrixOrtho, &spec, 32, 40);
    }
}

#[test]
fn odd_sizes_overlap_tiles() {
    // Non-multiple-of-8 sizes exercise the overlapped remainder tiles.
    for spec in [presets::star2d9p(), presets::box2d9p()] {
        for (h, w) in [(8, 8), (9, 17), (24, 33), (31, 70)] {
            check(Method::HStencil, &spec, h, w);
            check(Method::MatrixOnly, &spec, h, w);
        }
    }
}

#[test]
fn m4_hstencil_star_and_box() {
    let cfg = MachineConfig::apple_m4();
    for spec in [
        presets::star2d5p(),
        presets::star2d9p(),
        presets::box2d9p(),
        presets::box2d25p(),
    ] {
        let grid = test_grid(32, 40, spec.radius());
        let plan = StencilPlan::new(&spec, Method::HStencil)
            .verify(true)
            .warmup(0);
        plan.run_2d(&cfg, &grid)
            .unwrap_or_else(|e| panic!("{}: {e}", spec.name()));
    }
}

#[test]
fn m4_auto_neon_baseline() {
    let cfg = MachineConfig::apple_m4();
    let spec = presets::star2d9p();
    let grid = test_grid(16, 24, 2);
    let plan = StencilPlan::new(&spec, Method::Auto).verify(true).warmup(0);
    let out = plan.run_2d(&cfg, &grid).unwrap();
    assert!(out.report.cycles() > 0);
}

#[test]
fn hstencil_3d_presets() {
    for spec in presets::suite_3d() {
        let grid = Grid3d::from_fn(6, 16, 24, spec.radius(), |k, i, j| {
            0.01 * ((k * 7 + i * 13 + j * 29) % 101) as f64
        });
        let plan = StencilPlan::new(&spec, Method::HStencil)
            .verify(true)
            .warmup(0);
        plan.run_3d(&MachineConfig::lx2(), &grid)
            .unwrap_or_else(|e| panic!("{}: {e}", spec.name()));
    }
}

#[test]
fn matrix_only_3d() {
    let spec = presets::box3d27p();
    let grid = Grid3d::from_fn(4, 16, 16, 1, |k, i, j| ((k + i + j) % 17) as f64 * 0.1);
    let plan = StencilPlan::new(&spec, Method::MatrixOnly)
        .verify(true)
        .warmup(0);
    plan.run_3d(&MachineConfig::lx2(), &grid).unwrap();
}

#[test]
fn option_combinations_stay_correct() {
    let spec = presets::star2d9p();
    let grid = test_grid(24, 40, 2);
    for sched in [false, true] {
        for repl in [false, true] {
            for pf in [false, true] {
                for rb in [1, 2, 4] {
                    let plan = StencilPlan::new(&spec, Method::HStencil)
                        .scheduling(sched)
                        .replacement(repl)
                        .prefetch(pf)
                        .reg_blocks(rb)
                        .verify(true)
                        .warmup(0);
                    plan.run_2d(&MachineConfig::lx2(), &grid)
                        .unwrap_or_else(|e| {
                            panic!("sched={sched} repl={repl} pf={pf} rb={rb}: {e}")
                        });
                }
            }
        }
    }
}

#[test]
fn vector_only_rejected_on_m4() {
    let spec = presets::star2d5p();
    let grid = test_grid(16, 16, 1);
    let plan = StencilPlan::new(&spec, Method::VectorOnly).warmup(0);
    let err = plan.run_2d(&MachineConfig::apple_m4(), &grid);
    assert!(matches!(
        err,
        Err(hstencil_core::PlanError::MethodUnsupported { .. })
    ));
}
