//! Multi-core concurrency contracts of the native executor: concurrent
//! callers on the shared global pool, and bit-identity of every kernel
//! family across thread counts — including both sides of the hybrid
//! kernel's lane-aware staged-NT store policy.

use hstencil_core::native::{self, pool::ThreadPool, Dispatch};
use hstencil_core::{presets, Grid2d};

fn random_grid(h: usize, w: usize, halo: usize, seed: u64) -> Grid2d {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    Grid2d::from_fn(h, w, halo, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f64) / (1u64 << 31) as f64 - 1.0
    })
}

fn kernels() -> Vec<Dispatch> {
    let mut v = vec![Dispatch::Scalar, Dispatch::Hybrid];
    if Dispatch::avx2_available() {
        v.push(Dispatch::Avx2Fma);
    }
    v
}

#[test]
fn concurrent_callers_share_the_global_pool_without_cross_talk() {
    // Two OS threads drive `apply_2d_parallel_in` on the process-wide
    // pool at once. The workers Mutex must serialize the runs so each
    // caller's bands land in its own output — nothing exercised this
    // before, although every library user shares ThreadPool::global().
    let spec = presets::star2d5p();
    let a = random_grid(96, 64, 1, 7);
    let mut want = Grid2d::zeros(96, 64, 1);
    native::apply_2d_with(Dispatch::detect(), &spec, &a, &mut want);
    std::thread::scope(|s| {
        for caller in 0..2usize {
            let (spec, a, want) = (&spec, &a, &want);
            s.spawn(move || {
                for round in 0..20 {
                    let mut got = Grid2d::zeros(96, 64, 1);
                    native::apply_2d_parallel_in(
                        ThreadPool::global(),
                        Dispatch::detect(),
                        spec,
                        a,
                        &mut got,
                        4,
                    );
                    assert_eq!(
                        want.max_interior_diff(&got),
                        0.0,
                        "caller {caller} round {round}"
                    );
                }
            });
        }
    });
}

#[test]
fn every_kernel_is_bit_identical_across_thread_counts() {
    // 800 x 1200 (double-buffered working set ~15 MiB) keeps per-lane
    // bands above the hybrid staged-NT threshold at 1-2 lanes (the
    // staged drain + per-band sfence path) while 3+ lanes fall back to
    // direct stores under the auto NT policy — so one sweep over the
    // thread counts covers both store paths of every kernel family, and
    // all of them must agree bit for bit with the serial sweep.
    let spec = presets::star2d5p();
    let a = random_grid(800, 1200, 1, 23);
    let all = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    for d in kernels() {
        let mut serial = Grid2d::zeros(800, 1200, 1);
        native::apply_2d_with(d, &spec, &a, &mut serial);
        for threads in [1usize, 2, 3, all] {
            let mut par = Grid2d::zeros(800, 1200, 1);
            native::apply_2d_parallel_in(ThreadPool::global(), d, &spec, &a, &mut par, threads);
            assert_eq!(
                serial.max_interior_diff(&par),
                0.0,
                "{} threads={threads}",
                d.label()
            );
        }
    }
}

#[test]
fn temporal_pipeline_is_bit_identical_across_thread_counts_per_kernel() {
    // The fused multi-sweep schedule at every kernel family and thread
    // count must match plain repeated sweeps exactly (the temporal
    // executor's own suite pins small grids; this adds the streaming
    // shape where the hybrid path stages NT stores).
    let spec = presets::box2d9p();
    let a = random_grid(640, 1024, 1, 41);
    let sweeps = 3usize;
    let all = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    for d in kernels() {
        let mut want = a.clone();
        let mut ping = a.clone();
        for _ in 0..sweeps {
            native::apply_2d_with(d, &spec, &want, &mut ping);
            std::mem::swap(&mut want, &mut ping);
        }
        for threads in [1usize, 2, 3, all] {
            let got = native::time_steps_temporal_in(
                ThreadPool::global(),
                d,
                &spec,
                &a,
                sweeps,
                threads,
                native::Temporal {
                    t_block: Some(2),
                    force_pipeline: true,
                    tile: None,
                },
            );
            assert_eq!(
                want.max_interior_diff(&got),
                0.0,
                "{} threads={threads}",
                d.label()
            );
        }
    }
}
