//! `HSTENCIL_DISPATCH` / `HSTENCIL_THREADS` overrides, end to end.
//! Lives in its own test binary because the overrides are read once per
//! process (`OnceLock`): the env vars must be set before the first
//! dispatch/thread decision, no other test in this binary may want a
//! different value, and — since tests run concurrently — *every* test
//! here sets *both* vars (to the same values) before touching any
//! override-reading API.

use hstencil_core::native::{self, pool::ThreadPool, threads, Dispatch};
use hstencil_core::{presets, Grid2d};

fn pin_env() {
    std::env::set_var("HSTENCIL_DISPATCH", "scalar");
    std::env::set_var("HSTENCIL_THREADS", "2");
}

#[test]
fn scalar_override_pins_every_width_and_stays_bit_identical() {
    // Set before any dispatch decision in this process.
    pin_env();

    // The override trumps the size heuristic at every width, including
    // ones the heuristic would send to AVX2.
    for w in [1usize, 4, 8, 256, 4096] {
        assert_eq!(Dispatch::for_width(w), Dispatch::Scalar, "w={w}");
    }

    // And the pinned path is exactly the scalar kernel: apply_2d (which
    // routes through for_width) must agree bit-for-bit with forcing
    // scalar explicitly.
    let spec = presets::star2d5p();
    let grid = Grid2d::from_fn(33, 47, 1, |i, j| {
        ((i * 11 + j * 5) % 17) as f64 * 0.31 - 2.0
    });
    let mut via_env = Grid2d::zeros(33, 47, 1);
    native::apply_2d(&spec, &grid, &mut via_env);
    let mut forced = Grid2d::zeros(33, 47, 1);
    native::apply_2d_with(Dispatch::Scalar, &spec, &grid, &mut forced);
    assert_eq!(via_env.max_interior_diff(&forced), 0.0);
}

#[test]
fn threads_override_pins_the_lane_count_process_wide() {
    // Set before any thread-count decision in this process.
    pin_env();

    // The pin trumps every caller request, including "fewer".
    assert_eq!(threads::resolve(1), 2);
    assert_eq!(threads::resolve(7), 2);
    assert_eq!(threads::auto(), 2);

    // End to end: a 5-thread request on the auto entry point runs 2
    // lanes on the shared pool (1 spawned worker — this binary's only
    // user of the global pool), and the result stays bit-identical to
    // the serial sweep; the override can only ever change speed.
    let spec = presets::star2d5p();
    let grid = Grid2d::from_fn(64, 40, 1, |i, j| {
        ((i * 13 + j * 7) % 23) as f64 * 0.17 - 1.5
    });
    let mut par = Grid2d::zeros(64, 40, 1);
    native::apply_2d_parallel(&spec, &grid, &mut par, 5);
    let mut serial = Grid2d::zeros(64, 40, 1);
    native::apply_2d_with(Dispatch::Scalar, &spec, &grid, &mut serial);
    assert_eq!(serial.max_interior_diff(&par), 0.0);
    assert_eq!(
        ThreadPool::global().spawned_threads(),
        1,
        "HSTENCIL_THREADS=2 must cap the lane count at 2 (1 worker + caller)"
    );
}
