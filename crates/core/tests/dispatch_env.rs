//! `HSTENCIL_DISPATCH` override, end to end. Lives in its own test
//! binary because the override is read once per process (`OnceLock`):
//! the env var must be set before the first dispatch decision, and no
//! other test in this binary may want a different value.

use hstencil_core::native::{self, Dispatch};
use hstencil_core::{presets, Grid2d};

#[test]
fn scalar_override_pins_every_width_and_stays_bit_identical() {
    // Set before any dispatch decision in this process.
    std::env::set_var("HSTENCIL_DISPATCH", "scalar");

    // The override trumps the size heuristic at every width, including
    // ones the heuristic would send to AVX2.
    for w in [1usize, 4, 8, 256, 4096] {
        assert_eq!(Dispatch::for_width(w), Dispatch::Scalar, "w={w}");
    }

    // And the pinned path is exactly the scalar kernel: apply_2d (which
    // routes through for_width) must agree bit-for-bit with forcing
    // scalar explicitly.
    let spec = presets::star2d5p();
    let grid = Grid2d::from_fn(33, 47, 1, |i, j| {
        ((i * 11 + j * 5) % 17) as f64 * 0.31 - 2.0
    });
    let mut via_env = Grid2d::zeros(33, 47, 1);
    native::apply_2d(&spec, &grid, &mut via_env);
    let mut forced = Grid2d::zeros(33, 47, 1);
    native::apply_2d_with(Dispatch::Scalar, &spec, &grid, &mut forced);
    assert_eq!(via_env.max_interior_diff(&forced), 0.0);
}
