//! Cross-validation: the host-native executor and the simulated kernels
//! are independent implementations of the same mathematics — they must
//! agree bit-for-bit (modulo FP summation order) on sizeable workloads.

use hstencil_core::{native, presets, Grid2d, Method, StencilPlan};
use lx2_sim::MachineConfig;

fn noisy_grid(h: usize, w: usize, halo: usize, seed: u64) -> Grid2d {
    let mut s = seed;
    Grid2d::from_fn(h, w, halo, |_, _| {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((s >> 33) as f64) / (1u64 << 30) as f64 - 2.0
    })
}

#[test]
fn native_and_simulated_agree_on_large_grids() {
    let cfg = MachineConfig::lx2();
    for spec in [presets::star2d9p(), presets::box2d25p(), presets::heat2d()] {
        let a = noisy_grid(192, 320, spec.radius(), 0xFEED);
        let mut native_out = a.clone();
        native::apply_2d_parallel(&spec, &a, &mut native_out, 2);
        for method in [Method::HStencil, Method::MatrixOnly, Method::VectorOnly] {
            let sim = StencilPlan::new(&spec, method)
                .warmup(0)
                .run_2d(&cfg, &a)
                .unwrap_or_else(|e| panic!("{method} on {}: {e}", spec.name()));
            let diff = native_out.max_interior_diff(&sim.output);
            assert!(
                diff < 1e-9,
                "{method} on {}: native vs simulated diff {diff}",
                spec.name()
            );
        }
    }
}

#[test]
fn m4_and_lx2_simulations_agree_with_native() {
    let spec = presets::star2d9p();
    let a = noisy_grid(96, 160, 2, 0xBEEF);
    let mut native_out = a.clone();
    native::apply_2d(&spec, &a, &mut native_out);
    for cfg in [MachineConfig::lx2(), MachineConfig::apple_m4()] {
        let sim = StencilPlan::new(&spec, Method::HStencil)
            .warmup(0)
            .run_2d(&cfg, &a)
            .unwrap();
        assert!(
            native_out.max_interior_diff(&sim.output) < 1e-9,
            "{} disagrees with native",
            cfg.name
        );
    }
}

#[test]
fn extreme_values_survive_the_pipeline() {
    // Large magnitudes, denormal-ish smalls, negative zero.
    let spec = presets::box2d9p();
    let a = Grid2d::from_fn(24, 24, 1, |i, j| match (i + 2 * j) % 5 {
        0 => 1e15,
        1 => -1e15,
        2 => 1e-300,
        3 => -0.0,
        _ => std::f64::consts::PI,
    });
    let mut want = a.clone();
    hstencil_core::reference::apply_2d(&spec, &a, &mut want);
    let sim = StencilPlan::new(&spec, Method::HStencil)
        .warmup(0)
        .run_2d(&MachineConfig::lx2(), &a)
        .unwrap();
    // Relative tolerance on huge magnitudes.
    assert!(want.first_mismatch(&sim.output, 1e-9).is_none());
}
