//! Stencil execution plans: stencil × method × options × machine.

use crate::error::PlanError;
use crate::grid::{Grid2d, Grid3d};
use crate::kernels::{
    auto::AutoKernel, inplace::InplaceKernel, m4star::M4StarKernel,
    naive_hybrid::NaiveHybridKernel, ortho::OrthoKernel, tile_starts, vector::VectorKernel, Kernel,
    KernelCtx, KernelOptions, Plane, Traversal, MAX_RADIUS,
};
use crate::method::Method;
use crate::reference;
use crate::report::RunReport;
use crate::stencil::StencilSpec;
use lx2_isa::{schedule_program, Program, ScheduleParams, VLEN};
use lx2_sim::{Machine, MachineConfig};

/// Result of a simulated stencil run.
pub struct RunOutcome {
    /// The computed output grid.
    pub output: Grid2d,
    /// Measurements from the timed sweeps.
    pub report: RunReport,
}

/// Result of a simulated 3-D stencil run.
pub struct RunOutcome3d {
    /// The computed output grid.
    pub output: Grid3d,
    /// Measurements from the timed sweeps.
    pub report: RunReport,
}

/// A reusable description of *how* to run a stencil.
#[derive(Clone)]
pub struct StencilPlan {
    spec: StencilSpec,
    method: Method,
    opts: KernelOptions,
    sweeps: usize,
    warmup: usize,
    verify: bool,
}

impl StencilPlan {
    /// Plan `spec` with `method` and the method's published options.
    pub fn new(spec: &StencilSpec, method: Method) -> Self {
        StencilPlan {
            spec: spec.clone(),
            method,
            opts: method.default_options(),
            sweeps: 1,
            warmup: 1,
            verify: false,
        }
    }

    /// Overrides the instruction-scheduling switch.
    pub fn scheduling(mut self, on: bool) -> Self {
        self.opts.scheduling = on;
        self
    }

    /// Overrides the vector-instruction-replacement switch.
    pub fn replacement(mut self, on: bool) -> Self {
        self.opts.replacement = on;
        self
    }

    /// Overrides the spatial-prefetch switch.
    pub fn prefetch(mut self, on: bool) -> Self {
        self.opts.prefetch = on;
        self
    }

    /// Post-schedules every emitted tile with the automatic list
    /// scheduler (ablation against the hand-written interleave).
    pub fn auto_schedule(mut self, on: bool) -> Self {
        self.opts.auto_schedule = on;
        self
    }

    /// Overrides how many rows ahead spatial prefetch runs.
    pub fn prefetch_dist(mut self, rows: usize) -> Self {
        self.opts.prefetch_dist = rows;
        self
    }

    /// Overrides the register-block (j-unroll) count.
    pub fn reg_blocks(mut self, rb: usize) -> Self {
        self.opts.reg_blocks = rb.clamp(1, 4);
        self
    }

    /// Number of timed sweeps.
    pub fn sweeps(mut self, n: usize) -> Self {
        self.sweeps = n.max(1);
        self
    }

    /// Number of untimed warm-up sweeps (cache/prefetcher warm state).
    pub fn warmup(mut self, n: usize) -> Self {
        self.warmup = n;
        self
    }

    /// Verify the simulated output against the scalar reference.
    pub fn verify(mut self, on: bool) -> Self {
        self.verify = on;
        self
    }

    /// The method this plan runs.
    pub fn method(&self) -> Method {
        self.method
    }

    /// The effective kernel options.
    pub fn options(&self) -> &KernelOptions {
        &self.opts
    }

    fn build_kernel(
        &self,
        cfg: &MachineConfig,
        has_vector_terms: bool,
    ) -> Result<Box<dyn Kernel>, PlanError> {
        let unsupported = |reason: &'static str| PlanError::MethodUnsupported {
            method: self.method.label(),
            machine: cfg.name,
            reason,
        };
        Ok(match self.method {
            Method::Auto => Box::new(AutoKernel::new(
                cfg.baseline_vector_lanes,
                cfg.baseline_unroll,
            )),
            Method::VectorOnly => {
                if !cfg.allow_vector_fmla {
                    return Err(unsupported("no streaming-mode vector MLA units"));
                }
                Box::new(VectorKernel::new())
            }
            Method::MatrixOnly => Box::new(InplaceKernel::new_stop()),
            Method::MatrixOrtho => Box::new(OrthoKernel::new()),
            Method::NaiveHybrid => {
                if !cfg.allow_vector_fmla && has_vector_terms {
                    return Err(unsupported("no streaming-mode vector MLA units"));
                }
                Box::new(NaiveHybridKernel::new())
            }
            Method::HStencil => {
                if cfg.allow_vector_fmla {
                    Box::new(InplaceKernel::new(true))
                } else if has_vector_terms {
                    Box::new(M4StarKernel::new())
                } else {
                    // Box stencils never need vector MLA: the in-place
                    // kernel runs unchanged on M4.
                    Box::new(InplaceKernel::new(false))
                }
            }
        })
    }

    fn validate_shape(&self, h: usize, w: usize, halo: usize) -> Result<(), PlanError> {
        if self.spec.radius() > MAX_RADIUS {
            return Err(PlanError::RadiusTooLarge {
                radius: self.spec.radius(),
                max: MAX_RADIUS,
            });
        }
        if halo < self.spec.radius() {
            return Err(PlanError::GridTooSmall {
                min: self.spec.radius(),
                got: halo,
            });
        }
        if h < VLEN || w < VLEN {
            return Err(PlanError::GridTooSmall {
                min: VLEN,
                got: h.min(w),
            });
        }
        Ok(())
    }

    fn run_sweep(
        kernel: &mut dyn Kernel,
        ctx: &KernelCtx,
        mach: &mut Machine,
        prog: &mut Program,
    ) -> Result<(), PlanError> {
        let tr = kernel.tile_rows(ctx);
        let tc = kernel.tile_cols(ctx);
        let sched_params = ctx.opts.auto_schedule.then(|| ScheduleParams {
            issue_width: mach.config().issue_width,
            units: [
                mach.config().vector_units,
                mach.config().matrix_units,
                mach.config().load_units,
                mach.config().store_units,
            ],
            latency: [mach.config().fp_latency, mach.config().fmopa_latency, 4, 1],
        });
        let exec = |mach: &mut Machine, prog: &Program| -> Result<(), PlanError> {
            match &sched_params {
                Some(params) => mach.execute(&schedule_program(prog, params))?,
                None => mach.execute(prog)?,
            }
            Ok(())
        };
        match kernel.traversal() {
            Traversal::RowMajor => {
                for &i0 in &tile_starts(ctx.h, tr) {
                    for &j0 in &tile_starts(ctx.w, tc) {
                        prog.clear();
                        kernel.emit_tile(ctx, i0, j0, prog);
                        exec(mach, prog)?;
                    }
                }
            }
            Traversal::StripMajor => {
                // Y-blocked strips (Algorithm 2's partition): the strip
                // working set stays cache-sized regardless of grid height.
                let yb = ctx.opts.y_block.max(tr);
                let mut y0 = 0;
                while y0 < ctx.h {
                    let yh = yb.min(ctx.h - y0);
                    let rows: Vec<usize> = if yh >= tr {
                        tile_starts(yh, tr).iter().map(|r| r + y0).collect()
                    } else {
                        // Short trailing block: overlap backwards.
                        vec![ctx.h - tr]
                    };
                    for &j0 in &tile_starts(ctx.w, tc) {
                        for &i0 in &rows {
                            prog.clear();
                            kernel.emit_tile(ctx, i0, j0, prog);
                            exec(mach, prog)?;
                        }
                    }
                    y0 += yh;
                }
            }
        }
        Ok(())
    }

    /// Runs a 2-D stencil on a fresh simulated machine.
    pub fn run_2d(&self, cfg: &MachineConfig, input: &Grid2d) -> Result<RunOutcome, PlanError> {
        assert_eq!(self.spec.dims(), 2, "run_2d requires a 2-D stencil");
        self.validate_shape(input.h(), input.w(), input.halo())?;
        let table = self.spec.plane_table_2d();
        let has_vterms = !table.split_matrix_vector().1.is_empty();
        let mut kernel = self.build_kernel(cfg, has_vterms)?;

        let mut mach = Machine::new(cfg);
        if matches!(self.method, Method::Auto | Method::VectorOnly) && !cfg.allow_vector_fmla {
            // NEON path: the baseline executes outside streaming mode.
            mach.set_streaming(false);
        }
        let len = input.raw().len();
        let ra = mach.alloc(len, VLEN);
        let rb = mach.alloc(len, VLEN);
        mach.mem.store_slice(ra.base, input.raw())?;
        // Seed B with the input so halo cells carry boundary values.
        mach.mem.store_slice(rb.base, input.raw())?;

        let ctx = KernelCtx {
            h: input.h(),
            w: input.w(),
            stride: input.stride() as u64,
            b0: rb.base + input.origin() as u64,
            planes: vec![Plane {
                base: ra.base + input.origin() as u64,
                table,
            }],
            radius: self.spec.radius(),
            opts: self.opts,
        };
        kernel.setup(&ctx, &mut mach)?;

        let mut prog = Program::with_capacity(4096);
        for _ in 0..self.warmup {
            Self::run_sweep(kernel.as_mut(), &ctx, &mut mach, &mut prog)?;
        }
        let before = mach.counters();
        for _ in 0..self.sweeps {
            Self::run_sweep(kernel.as_mut(), &ctx, &mut mach, &mut prog)?;
        }
        let counters = mach.counters().delta(&before);

        let mut output = input.clone();
        mach.mem.load_slice(rb.base, output.raw_mut())?;

        if self.verify {
            let mut want = input.clone();
            reference::apply_2d(&self.spec, input, &mut want);
            if let Some((i, j, expected, got)) = want.first_mismatch(&output, 1e-9) {
                return Err(PlanError::VerificationFailed {
                    i,
                    j,
                    expected,
                    got,
                });
            }
        }

        let report = RunReport {
            method: self.method.label(),
            kernel: kernel.name(),
            stencil: self.spec.name().to_string(),
            counters,
            points: (input.h() * input.w() * self.sweeps) as u64,
            freq_ghz: cfg.freq_ghz,
        };
        Ok(RunOutcome { output, report })
    }

    /// Runs `steps` time steps of a 2-D stencil, ping-ponging the two
    /// buffers inside the simulated machine (no host round-trips between
    /// steps). The halo is re-pinned to the input's boundary each step
    /// (Dirichlet boundary), matching [`crate::native::time_steps`].
    pub fn run_2d_steps(
        &self,
        cfg: &MachineConfig,
        input: &Grid2d,
        steps: usize,
    ) -> Result<RunOutcome, PlanError> {
        assert_eq!(self.spec.dims(), 2, "run_2d_steps requires a 2-D stencil");
        assert!(steps >= 1);
        self.validate_shape(input.h(), input.w(), input.halo())?;
        let table = self.spec.plane_table_2d();
        let has_vterms = !table.split_matrix_vector().1.is_empty();
        let mut kernel = self.build_kernel(cfg, has_vterms)?;

        let mut mach = Machine::new(cfg);
        if matches!(self.method, Method::Auto | Method::VectorOnly) && !cfg.allow_vector_fmla {
            mach.set_streaming(false);
        }
        let len = input.raw().len();
        let ra = mach.alloc(len, VLEN);
        let rb = mach.alloc(len, VLEN);
        mach.mem.store_slice(ra.base, input.raw())?;
        mach.mem.store_slice(rb.base, input.raw())?;

        let mut ctx = KernelCtx {
            h: input.h(),
            w: input.w(),
            stride: input.stride() as u64,
            b0: rb.base + input.origin() as u64,
            planes: vec![Plane {
                base: ra.base + input.origin() as u64,
                table,
            }],
            radius: self.spec.radius(),
            opts: self.opts,
        };
        kernel.setup(&ctx, &mut mach)?;

        let before = mach.counters();
        let mut prog = Program::with_capacity(4096);
        let mut reads_a = true;
        for _ in 0..steps {
            Self::run_sweep(kernel.as_mut(), &ctx, &mut mach, &mut prog)?;
            // Ping-pong: the freshly written buffer becomes the input.
            std::mem::swap(&mut ctx.planes[0].base, &mut ctx.b0);
            reads_a = !reads_a;
        }
        let counters = mach.counters().delta(&before);

        // The final result is the buffer written by the last sweep, which
        // `ctx.planes[0].base` now points at.
        let final_base = if reads_a { ra.base } else { rb.base };
        let mut output = input.clone();
        mach.mem.load_slice(final_base, output.raw_mut())?;

        if self.verify {
            let want = crate::native::time_steps(&self.spec, input, steps, 1);
            if let Some((i, j, expected, got)) = want.first_mismatch(&output, 1e-9) {
                return Err(PlanError::VerificationFailed {
                    i,
                    j,
                    expected,
                    got,
                });
            }
        }

        let report = RunReport {
            method: self.method.label(),
            kernel: kernel.name(),
            stencil: self.spec.name().to_string(),
            counters,
            points: (input.h() * input.w() * steps) as u64,
            freq_ghz: cfg.freq_ghz,
        };
        Ok(RunOutcome { output, report })
    }

    /// Runs `t_block` fused time steps with **temporal blocking**
    /// (overlapped/ghost-zone tiling): the grid is cut into column strips
    /// of `strip_cols`; each strip advances all `t_block` steps while its
    /// data is cache-resident, recomputing a `(t_block-1)·r`-wide ghost
    /// zone at strip borders so strips stay independent. Intermediate
    /// buffers never round-trip to DRAM between steps — the temporal
    /// extension of the paper's spatial blocking (its related work \[19\]).
    ///
    /// Only strip-major (matrix-unit) methods support temporal blocking.
    pub fn run_2d_temporal(
        &self,
        cfg: &MachineConfig,
        input: &Grid2d,
        t_block: usize,
        strip_cols: usize,
    ) -> Result<RunOutcome, PlanError> {
        assert_eq!(
            self.spec.dims(),
            2,
            "run_2d_temporal requires a 2-D stencil"
        );
        assert!(t_block >= 1);
        self.validate_shape(input.h(), input.w(), input.halo())?;
        let r = self.spec.radius();
        let table = self.spec.plane_table_2d();
        let has_vterms = !table.split_matrix_vector().1.is_empty();
        let mut kernel = self.build_kernel(cfg, has_vterms)?;
        if kernel.traversal() != Traversal::StripMajor {
            return Err(PlanError::MethodUnsupported {
                method: self.method.label(),
                machine: cfg.name,
                reason: "temporal blocking requires a strip-major (matrix-unit) method",
            });
        }

        let mut mach = Machine::new(cfg);
        let len = input.raw().len();
        let ra = mach.alloc(len, VLEN);
        let rt1 = mach.alloc(len, VLEN);
        let rt2 = mach.alloc(len, VLEN);
        let rout = mach.alloc(len, VLEN);
        mach.mem.store_slice(ra.base, input.raw())?;
        // Seed the temporaries and the output with the input so every
        // step sees the fixed (Dirichlet) boundary in its halo.
        mach.mem.store_slice(rt1.base, input.raw())?;
        mach.mem.store_slice(rt2.base, input.raw())?;
        mach.mem.store_slice(rout.base, input.raw())?;

        let origin = input.origin() as u64;
        let mut ctx = KernelCtx {
            h: input.h(),
            w: input.w(),
            stride: input.stride() as u64,
            b0: rt1.base + origin,
            planes: vec![Plane {
                base: ra.base + origin,
                table,
            }],
            radius: r,
            opts: self.opts,
        };
        kernel.setup(&ctx, &mut mach)?;

        let tc = kernel.tile_cols(&ctx);
        let tr = kernel.tile_rows(&ctx);
        let strip_cols = strip_cols.max(tc).min(input.w());
        let before = mach.counters();
        let mut prog = Program::with_capacity(4096);

        // Buffer bases: A feeds step 0, T1/T2 ping-pong the intermediate
        // steps, and the *last* step always writes the dedicated output
        // buffer — intermediate ghost writes of later strips must never
        // touch columns another strip has already finalized.
        let read_base = |t: usize| -> u64 {
            if t == 0 {
                ra.base
            } else if t % 2 == 1 {
                rt1.base
            } else {
                rt2.base
            }
        };
        let write_base = |t: usize| -> u64 {
            if t == t_block - 1 {
                rout.base
            } else {
                read_base(t + 1)
            }
        };

        let w = input.w();
        let h = input.h();
        // Strip starts with an overlapped remainder (idempotent rewrites),
        // mirroring the tile logic.
        for &strip_lo in &tile_starts(w, strip_cols) {
            let strip_hi = (strip_lo + strip_cols).min(w);
            for t in 0..t_block {
                let ghost = (t_block - 1 - t) * r;
                let lo = strip_lo.saturating_sub(ghost);
                let hi = (strip_hi + ghost).min(w);
                ctx.planes[0].base = read_base(t) + origin;
                ctx.b0 = write_base(t) + origin;
                // Tile the sub-range with overlapped remainders.
                let width = hi - lo;
                if width < tc || h < tr {
                    return Err(PlanError::GridTooSmall {
                        min: tc,
                        got: width,
                    });
                }
                for &dj in &tile_starts(width, tc) {
                    for &i0 in &tile_starts(h, tr) {
                        prog.clear();
                        kernel.emit_tile(&ctx, i0, lo + dj, &mut prog);
                        mach.execute(&prog)?;
                    }
                }
            }
        }
        let counters = mach.counters().delta(&before);

        let mut output = input.clone();
        mach.mem.load_slice(rout.base, output.raw_mut())?;

        if self.verify {
            let want = crate::native::time_steps(&self.spec, input, t_block, 1);
            if let Some((i, j, expected, got)) = want.first_mismatch(&output, 1e-9) {
                return Err(PlanError::VerificationFailed {
                    i,
                    j,
                    expected,
                    got,
                });
            }
        }

        let report = RunReport {
            method: self.method.label(),
            kernel: kernel.name(),
            stencil: self.spec.name().to_string(),
            counters,
            points: (h * w * t_block) as u64,
            freq_ghz: cfg.freq_ghz,
        };
        Ok(RunOutcome { output, report })
    }

    /// Runs a 3-D stencil: each output plane accumulates the `2r+1`
    /// weighted 2-D contributions of its neighbouring input planes.
    pub fn run_3d(&self, cfg: &MachineConfig, input: &Grid3d) -> Result<RunOutcome3d, PlanError> {
        assert_eq!(self.spec.dims(), 3, "run_3d requires a 3-D stencil");
        self.validate_shape(input.h(), input.w(), input.halo())?;
        let r = self.spec.radius() as isize;
        let tables: Vec<_> = (-r..=r).map(|dk| self.spec.plane_table_3d(dk)).collect();
        let has_vterms = tables.iter().any(|t| !t.split_matrix_vector().1.is_empty());
        let mut kernel = self.build_kernel(cfg, has_vterms)?;

        let mut mach = Machine::new(cfg);
        if matches!(self.method, Method::Auto | Method::VectorOnly) && !cfg.allow_vector_fmla {
            mach.set_streaming(false);
        }
        let len = input.raw().len();
        let ra = mach.alloc(len, VLEN);
        let rbuf = mach.alloc(len, VLEN);
        mach.mem.store_slice(ra.base, input.raw())?;
        mach.mem.store_slice(rbuf.base, input.raw())?;

        let plane_stride = input.plane_stride() as u64;
        let origin = input.origin() as u64;
        let mut ctx = KernelCtx {
            h: input.h(),
            w: input.w(),
            stride: input.stride() as u64,
            b0: rbuf.base + origin,
            planes: tables
                .iter()
                .enumerate()
                .map(|(idx, t)| Plane {
                    base: (ra.base + origin)
                        .wrapping_add_signed((idx as i64 - r as i64) * plane_stride as i64),
                    table: t.clone(),
                })
                .collect(),
            radius: self.spec.radius(),
            opts: self.opts,
        };
        kernel.setup(&ctx, &mut mach)?;

        let mut prog = Program::with_capacity(4096);
        let pass = |mach: &mut Machine,
                    kernel: &mut dyn Kernel,
                    ctx: &mut KernelCtx,
                    prog: &mut Program|
         -> Result<(), PlanError> {
            for k in 0..input.d() as i64 {
                for (idx, plane) in ctx.planes.iter_mut().enumerate() {
                    let dk = idx as i64 - r as i64;
                    plane.base =
                        (ra.base + origin).wrapping_add_signed((k + dk) * plane_stride as i64);
                }
                ctx.b0 = (rbuf.base + origin).wrapping_add_signed(k * plane_stride as i64);
                Self::run_sweep(kernel, ctx, mach, prog)?;
            }
            Ok(())
        };
        for _ in 0..self.warmup {
            pass(&mut mach, kernel.as_mut(), &mut ctx, &mut prog)?;
        }
        let before = mach.counters();
        for _ in 0..self.sweeps {
            pass(&mut mach, kernel.as_mut(), &mut ctx, &mut prog)?;
        }
        let counters = mach.counters().delta(&before);

        let mut output = input.clone();
        mach.mem.load_slice(rbuf.base, output.raw_mut())?;

        if self.verify {
            let mut want = input.clone();
            reference::apply_3d(&self.spec, input, &mut want);
            let diff = want.max_interior_diff(&output);
            if diff > 1e-9 {
                return Err(PlanError::VerificationFailed {
                    i: 0,
                    j: 0,
                    expected: 0.0,
                    got: diff,
                });
            }
        }

        let report = RunReport {
            method: self.method.label(),
            kernel: kernel.name(),
            stencil: self.spec.name().to_string(),
            counters,
            points: (input.d() * input.h() * input.w() * self.sweeps) as u64,
            freq_ghz: cfg.freq_ghz,
        };
        Ok(RunOutcome3d { output, report })
    }
}
