//! Static and dynamic analyses behind the paper's Tables 1, 2 and 5.

use crate::error::PlanError;
use crate::grid::Grid2d;
use crate::method::Method;
use crate::plan::StencilPlan;
use crate::report::RunReport;
use crate::stencil::StencilSpec;
use lx2_isa::PipeClass;
use lx2_sim::MachineConfig;

/// Matrix-unit utilization of a method on a stencil (Table 1): useful MAC
/// slots over provisioned MAC slots (64 per outer product), measured by
/// running the kernel on a small random in-cache grid.
pub fn matrix_utilization(
    spec: &StencilSpec,
    method: Method,
    cfg: &MachineConfig,
    reg_blocks: usize,
) -> Result<Option<f64>, PlanError> {
    let report = small_run(spec, method, cfg, reg_blocks)?;
    Ok(report.matrix_utilization())
}

/// Per-pipe occupancy cycles of a method on a stencil (Table 5), per
/// output tile of `8 × 8·reg_blocks` points.
#[derive(Clone, Copy, Debug)]
pub struct PipeCycles {
    /// Matrix-pipe occupancy cycles per tile.
    pub matrix: f64,
    /// Vector-pipe occupancy cycles per tile (normalized by unit count).
    pub vector: f64,
    /// Load-pipe occupancy cycles per tile.
    pub load: f64,
    /// Store-pipe occupancy cycles per tile.
    pub store: f64,
}

/// Measures the matrix/vector instruction-cycle split (Table 5).
pub fn pipe_cycles(
    spec: &StencilSpec,
    method: Method,
    cfg: &MachineConfig,
    reg_blocks: usize,
) -> Result<PipeCycles, PlanError> {
    let report = small_run(spec, method, cfg, reg_blocks)?;
    let tiles = report.points as f64 / (8.0 * 8.0 * reg_blocks as f64);
    let busy = |c: PipeClass, units: usize| {
        report.counters.pipe_busy_cycles(c) as f64 / units as f64 / tiles
    };
    Ok(PipeCycles {
        matrix: busy(PipeClass::Matrix, cfg.matrix_units),
        vector: busy(PipeClass::VectorFp, cfg.vector_units),
        load: busy(PipeClass::Load, cfg.load_units),
        store: busy(PipeClass::Store, cfg.store_units),
    })
}

/// Runs a method on a small in-cache grid and returns the report
/// (shared helper for the analysis tables).
pub fn small_run(
    spec: &StencilSpec,
    method: Method,
    cfg: &MachineConfig,
    reg_blocks: usize,
) -> Result<RunReport, PlanError> {
    assert_eq!(spec.dims(), 2, "analysis helpers use 2-D stencils");
    let grid = Grid2d::from_fn(64, 64, spec.radius(), |i, j| {
        // Nonzero everywhere so structural zeros dominate the useful-MAC
        // count.
        1.0 + 0.001 * ((i * 131 + j * 37) % 251) as f64
    });
    let out = StencilPlan::new(spec, method)
        .reg_blocks(reg_blocks)
        .verify(true)
        .run_2d(cfg, &grid)?;
    Ok(out.report)
}

/// Roofline placement of a run: achieved flops versus the compute and
/// memory ceilings of the machine.
#[derive(Clone, Copy, Debug)]
pub struct Roofline {
    /// FLOP per DRAM byte actually moved.
    pub arithmetic_intensity: f64,
    /// Achieved FP64 GFLOP/s.
    pub achieved_gflops: f64,
    /// Compute ceiling (matrix + vector peak) in GFLOP/s.
    pub compute_ceiling_gflops: f64,
    /// Memory ceiling at this intensity in GFLOP/s.
    pub memory_ceiling_gflops: f64,
}

impl Roofline {
    /// Whether the run sits under the memory roof (bandwidth-bound
    /// region) rather than the compute roof.
    pub fn memory_bound(&self) -> bool {
        self.memory_ceiling_gflops < self.compute_ceiling_gflops
    }

    /// Fraction of the applicable roof actually achieved.
    pub fn efficiency(&self) -> f64 {
        let roof = self.memory_ceiling_gflops.min(self.compute_ceiling_gflops);
        if roof == 0.0 {
            0.0
        } else {
            self.achieved_gflops / roof
        }
    }
}

/// Places a run report on the machine's roofline.
pub fn roofline(report: &RunReport, cfg: &MachineConfig) -> Roofline {
    let dram_bytes = report.counters.mem.dram_bytes(cfg.l1.line_bytes).max(1) as f64;
    let flops = report.counters.flops as f64;
    let intensity = flops / dram_bytes;
    let compute =
        (cfg.matrix_peak_flops_per_cycle() + cfg.vector_peak_flops_per_cycle()) * cfg.freq_ghz;
    let bw_gbytes = cfg.dram_bw_bytes_per_cycle * cfg.freq_ghz;
    Roofline {
        arithmetic_intensity: intensity,
        achieved_gflops: report.gflops(),
        compute_ceiling_gflops: compute,
        memory_ceiling_gflops: intensity * bw_gbytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stencil::presets;

    #[test]
    fn box_utilization_exceeds_star_outer_axis() {
        // Table 1: outer-axis box ≈ 41.7%, outer-axis star < 20%.
        let cfg = MachineConfig::lx2();
        let ubox = matrix_utilization(&presets::box2d25p(), Method::MatrixOnly, &cfg, 1)
            .unwrap()
            .unwrap();
        let ustar = matrix_utilization(&presets::star2d9p(), Method::MatrixOnly, &cfg, 1)
            .unwrap()
            .unwrap();
        assert!(ubox > 0.30 && ubox < 0.55, "box utilization {ubox}");
        assert!(ustar < 0.25, "star utilization {ustar}");
        assert!(ubox > ustar * 1.5);
    }

    #[test]
    fn ortho_recovers_star_utilization() {
        // Table 1: outer&inner-axis star ≈ outer-axis box.
        let cfg = MachineConfig::lx2();
        let uortho = matrix_utilization(&presets::star2d9p(), Method::MatrixOrtho, &cfg, 1)
            .unwrap()
            .unwrap();
        let ustar = matrix_utilization(&presets::star2d9p(), Method::MatrixOnly, &cfg, 1)
            .unwrap()
            .unwrap();
        assert!(uortho > ustar, "ortho {uortho} vs outer-axis {ustar}");
    }

    #[test]
    fn matrix_only_uses_no_vector_pipe() {
        // Table 5: "Matrix Star & Box: 40 / 0".
        let cfg = MachineConfig::lx2();
        let pc = pipe_cycles(&presets::box2d25p(), Method::MatrixOnly, &cfg, 4).unwrap();
        assert_eq!(pc.vector, 0.0);
        assert!(pc.matrix > 0.0);
    }

    #[test]
    fn roofline_in_cache_is_compute_side() {
        let cfg = MachineConfig::lx2();
        let rep = small_run(&presets::box2d25p(), Method::HStencil, &cfg, 4).unwrap();
        let r = roofline(&rep, &cfg);
        // A warm 64x64 run barely touches DRAM: very high intensity.
        assert!(
            r.arithmetic_intensity > 10.0,
            "intensity {}",
            r.arithmetic_intensity
        );
        assert!(!r.memory_bound());
        assert!(r.achieved_gflops > 0.0);
        assert!(r.efficiency() > 0.0 && r.efficiency() <= 1.0);
    }

    #[test]
    fn roofline_out_of_cache_drops_intensity() {
        let cfg = MachineConfig::lx2();
        let grid = Grid2d::from_fn(1024, 1024, 2, |i, j| ((i + j) % 17) as f64);
        let spec = presets::box2d25p();
        let rep = StencilPlan::new(&spec, Method::HStencil)
            .warmup(0)
            .run_2d(&cfg, &grid)
            .unwrap()
            .report;
        let r = roofline(&rep, &cfg);
        // One cold sweep moves the whole grid: intensity near
        // flops/point / bytes/point = 50 / ~16-40.
        assert!(
            r.arithmetic_intensity < 10.0,
            "intensity {}",
            r.arithmetic_intensity
        );
    }

    #[test]
    fn hybrid_star_uses_both_pipes() {
        // Table 5: "Matrix-Vector Star: 16 / 48" — vector-heavy.
        let cfg = MachineConfig::lx2();
        let pc = pipe_cycles(&presets::star2d9p(), Method::HStencil, &cfg, 4).unwrap();
        assert!(pc.matrix > 0.0);
        assert!(pc.vector > 0.0);
    }
}
