//! Stencil computation methods (paper Table 6).

use crate::kernels::KernelOptions;

/// The computation strategy for a stencil sweep.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Method {
    /// Compiler auto-vectorization baseline (`Auto` in the paper).
    Auto,
    /// Expert-optimized vector-MLA solution (`Vector-only`).
    VectorOnly,
    /// State-of-the-art matrix-only outer-product solution, STOP
    /// (`Matrix-only`).
    MatrixOnly,
    /// Outer+inner-axis outer products (`Mat-ortho`, Figure 13 baseline).
    MatrixOrtho,
    /// Naive matrix-vector method with a store/reload accumulation
    /// round-trip (Figure 7).
    NaiveHybrid,
    /// The full HStencil hybrid with in-place accumulation.
    HStencil,
}

impl Method {
    /// Display label matching the paper's method table.
    pub fn label(self) -> &'static str {
        match self {
            Method::Auto => "Auto",
            Method::VectorOnly => "Vector-only",
            Method::MatrixOnly => "Matrix-only",
            Method::MatrixOrtho => "Mat-ortho",
            Method::NaiveHybrid => "Naive-hybrid",
            Method::HStencil => "HStencil",
        }
    }

    /// All methods, in presentation order.
    pub const ALL: [Method; 6] = [
        Method::Auto,
        Method::VectorOnly,
        Method::MatrixOnly,
        Method::MatrixOrtho,
        Method::NaiveHybrid,
        Method::HStencil,
    ];

    /// Default kernel options: HStencil enables the full optimization
    /// stack; every comparison method runs as published (no scheduling,
    /// no replacement, no spatial prefetch).
    pub fn default_options(self) -> KernelOptions {
        match self {
            Method::HStencil => KernelOptions::default(),
            Method::Auto => KernelOptions {
                reg_blocks: 1,
                ..KernelOptions::baseline()
            },
            _ => KernelOptions::baseline(),
        }
    }
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_unique() {
        let labels: std::collections::HashSet<_> = Method::ALL.iter().map(|m| m.label()).collect();
        assert_eq!(labels.len(), Method::ALL.len());
    }

    #[test]
    fn hstencil_defaults_enable_everything() {
        let o = Method::HStencil.default_options();
        assert!(o.scheduling && o.replacement && o.prefetch);
        let o = Method::MatrixOnly.default_options();
        assert!(!o.scheduling && !o.prefetch);
    }
}
