//! Multi-core stencil execution (paper §5.3.2, Figure 16).
//!
//! The grid's rows are partitioned into contiguous bands, one simulated
//! core per OS thread, each with private L1/L2. Aggregate time is the
//! slowest core's cycle count, floored by the socket-wide DRAM bandwidth
//! over the combined memory traffic — the saturation model behind the
//! scaling curve.

use crate::error::PlanError;
use crate::grid::Grid2d;
use crate::plan::StencilPlan;
use crate::report::RunReport;
use crate::stencil::StencilSpec;
use lx2_sim::{MachineConfig, PerfCounters};

/// Aggregate measurements from a multi-core run.
#[derive(Clone, Debug)]
pub struct MulticoreReport {
    /// Number of simulated cores.
    pub cores: usize,
    /// Wall cycles: slowest core, floored by the bandwidth bound.
    pub elapsed_cycles: u64,
    /// Cycles the DRAM bandwidth alone would require.
    pub bandwidth_bound_cycles: u64,
    /// Total points updated.
    pub points: u64,
    /// Core frequency for conversions.
    pub freq_ghz: f64,
    /// Per-core counters.
    pub per_core: Vec<PerfCounters>,
}

impl MulticoreReport {
    /// Aggregate throughput in GStencil/s.
    pub fn gstencil_per_s(&self) -> f64 {
        if self.elapsed_cycles == 0 {
            0.0
        } else {
            self.points as f64 * self.freq_ghz / self.elapsed_cycles as f64
        }
    }

    /// Whether the run was limited by DRAM bandwidth rather than compute.
    pub fn bandwidth_bound(&self) -> bool {
        self.bandwidth_bound_cycles >= self.elapsed_cycles
    }

    /// Parallel speedup versus a single-core report of the same workload.
    pub fn speedup_over(&self, single: &MulticoreReport) -> f64 {
        single.elapsed_cycles as f64 * self.points as f64
            / (self.elapsed_cycles as f64 * single.points as f64)
    }
}

/// Runs one sweep of a 2-D stencil across `cores` simulated cores and
/// returns the aggregate report plus the assembled output grid.
pub fn run_multicore(
    plan: &StencilPlan,
    spec: &StencilSpec,
    cfg: &MachineConfig,
    input: &Grid2d,
    cores: usize,
) -> Result<(Grid2d, MulticoreReport), PlanError> {
    assert!(cores >= 1);
    assert_eq!(spec.dims(), 2);
    let h = input.h();
    let w = input.w();
    let r = spec.radius();
    // Band boundaries aligned to tile rows.
    let tiles = h / 8;
    assert!(tiles >= cores, "need at least one 8-row tile per core");
    let bands: Vec<(usize, usize)> = (0..cores)
        .map(|c| {
            let lo = c * tiles / cores * 8;
            let hi = if c == cores - 1 {
                h
            } else {
                (c + 1) * tiles / cores * 8
            };
            (lo, hi)
        })
        .collect();

    let results: Vec<Result<(usize, usize, Grid2d, RunReport), PlanError>> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = bands
                .iter()
                .map(|&(lo, hi)| {
                    let plan = plan.clone();
                    scope.spawn(move || {
                        // Each core sees its band plus an `r`-row halo
                        // pulled from the neighbouring bands.
                        let band_h = hi - lo;
                        let band =
                            Grid2d::from_fn(band_h, w, r, |i, j| input.at(lo as isize + i, j));
                        let out = plan.run_2d(cfg, &band)?;
                        Ok((lo, hi, out.output, out.report))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("core thread panicked"))
                .collect()
        });

    let mut output = input.clone();
    let mut per_core = Vec::with_capacity(cores);
    let mut max_cycles = 0u64;
    let mut total_dram_bytes = 0u64;
    for res in results {
        let (lo, _hi, band_out, report) = res?;
        for i in 0..band_out.h() as isize {
            for j in 0..w as isize {
                output.set(lo as isize + i, j, band_out.at(i, j));
            }
        }
        max_cycles = max_cycles.max(report.counters.cycles);
        total_dram_bytes += report.counters.mem.dram_bytes(cfg.l1.line_bytes);
        per_core.push(report.counters);
    }

    let bandwidth_bound_cycles =
        (total_dram_bytes as f64 / cfg.dram_bw_bytes_per_cycle).ceil() as u64;
    let report = MulticoreReport {
        cores,
        elapsed_cycles: max_cycles.max(bandwidth_bound_cycles),
        bandwidth_bound_cycles,
        points: (h * w) as u64,
        freq_ghz: cfg.freq_ghz,
        per_core,
    };
    Ok((output, report))
}

/// Runs `sweeps` time steps across `cores` simulated cores with a halo
/// exchange between steps (bulk-synchronous parallel: compute a sweep,
/// swap buffers, refresh band halos from neighbours, repeat).
///
/// Returns the final grid and the aggregate report summed over steps.
pub fn run_multicore_steps(
    plan: &StencilPlan,
    spec: &StencilSpec,
    cfg: &MachineConfig,
    input: &Grid2d,
    cores: usize,
    sweeps: usize,
) -> Result<(Grid2d, MulticoreReport), PlanError> {
    assert!(sweeps >= 1);
    let mut cur = input.clone();
    let mut total: Option<MulticoreReport> = None;
    for _ in 0..sweeps {
        let (mut next, rep) = run_multicore(plan, spec, cfg, &cur, cores)?;
        // Halo exchange: carry the (fixed) physical boundary forward.
        let r = input.halo() as isize;
        let (h, w) = (input.h() as isize, input.w() as isize);
        for i in -r..h + r {
            for j in -r..w + r {
                let boundary = i < 0 || i >= h || j < 0 || j >= w;
                if boundary {
                    next.set(i, j, input.at(i, j));
                }
            }
        }
        total = Some(match total {
            None => rep,
            Some(mut acc) => {
                acc.elapsed_cycles += rep.elapsed_cycles;
                acc.bandwidth_bound_cycles += rep.bandwidth_bound_cycles;
                acc.points += rep.points;
                for (a, b) in acc.per_core.iter_mut().zip(rep.per_core.iter()) {
                    a.merge(b);
                }
                acc
            }
        });
        cur = next;
    }
    Ok((cur, total.expect("at least one sweep")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::method::Method;
    use crate::reference;
    use crate::stencil::presets;

    #[test]
    fn multicore_output_matches_reference() {
        let spec = presets::box2d9p();
        let input = Grid2d::from_fn(48, 64, 1, |i, j| ((i * 31 + j * 17) % 97) as f64 * 0.01);
        let plan = StencilPlan::new(&spec, Method::HStencil).warmup(0);
        let cfg = MachineConfig::lx2();
        for cores in [1, 2, 3] {
            let (out, report) = run_multicore(&plan, &spec, &cfg, &input, cores).unwrap();
            let mut want = input.clone();
            reference::apply_2d(&spec, &input, &mut want);
            assert!(want.max_interior_diff(&out) < 1e-9, "cores={cores}");
            assert_eq!(report.cores, cores);
            assert!(report.elapsed_cycles > 0);
        }
    }

    #[test]
    fn multicore_steps_match_serial_time_stepping() {
        let spec = presets::heat2d();
        let input = Grid2d::from_fn(32, 32, 1, |i, j| {
            if (12..20).contains(&i) && (12..20).contains(&j) {
                1.0
            } else {
                0.0
            }
        });
        let plan = StencilPlan::new(&spec, Method::HStencil).warmup(0);
        let cfg = MachineConfig::lx2();
        let sweeps = 4;
        let (par, rep) = run_multicore_steps(&plan, &spec, &cfg, &input, 3, sweeps).unwrap();
        // Serial reference time stepping with the same fixed boundary.
        let mut cur = input.clone();
        let mut next = input.clone();
        for _ in 0..sweeps {
            reference::apply_2d(&spec, &cur, &mut next);
            std::mem::swap(&mut cur, &mut next);
        }
        assert!(cur.max_interior_diff(&par) < 1e-9);
        assert_eq!(rep.points, (32 * 32 * sweeps) as u64);
    }

    #[test]
    fn more_cores_do_not_slow_down() {
        let spec = presets::star2d5p();
        let input = Grid2d::from_fn(64, 64, 1, |i, j| (i + j) as f64);
        let plan = StencilPlan::new(&spec, Method::HStencil).warmup(0);
        let cfg = MachineConfig::lx2();
        let (_, one) = run_multicore(&plan, &spec, &cfg, &input, 1).unwrap();
        let (_, four) = run_multicore(&plan, &spec, &cfg, &input, 4).unwrap();
        assert!(four.elapsed_cycles <= one.elapsed_cycles);
        assert!(four.gstencil_per_s() >= one.gstencil_per_s());
    }
}
