//! Run reports: the simulated equivalents of the paper's measurements.

use hstencil_testkit::{Json, ToJson};
use lx2_sim::PerfCounters;

/// Measurements from one timed stencil run.
///
/// ```
/// use hstencil_core::{presets, Grid2d, Method, StencilPlan};
/// use lx2_sim::MachineConfig;
/// let spec = presets::box2d9p();
/// let grid = Grid2d::from_fn(32, 32, 1, |i, j| (i + j) as f64);
/// let report = StencilPlan::new(&spec, Method::HStencil)
///     .run_2d(&MachineConfig::lx2(), &grid)
///     .unwrap()
///     .report;
/// assert!(report.ipc() > 0.0);
/// assert!(report.gstencil_per_s() > 0.0);
/// assert_eq!(report.points, 32 * 32);
/// ```
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Method label.
    pub method: &'static str,
    /// Kernel name.
    pub kernel: &'static str,
    /// Stencil name.
    pub stencil: String,
    /// Counter deltas over the timed sweeps.
    pub counters: PerfCounters,
    /// Grid points updated during the timed sweeps.
    pub points: u64,
    /// Core frequency used for time conversions.
    pub freq_ghz: f64,
}

impl RunReport {
    /// Elapsed cycles of the timed window.
    pub fn cycles(&self) -> u64 {
        self.counters.cycles
    }

    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        self.counters.ipc()
    }

    /// Simulated wall time in milliseconds.
    pub fn time_ms(&self) -> f64 {
        self.counters.cycles as f64 / (self.freq_ghz * 1e6)
    }

    /// Throughput in giga stencil-point updates per second.
    pub fn gstencil_per_s(&self) -> f64 {
        if self.counters.cycles == 0 {
            0.0
        } else {
            self.points as f64 * self.freq_ghz / self.counters.cycles as f64
        }
    }

    /// Achieved GFLOP/s.
    pub fn gflops(&self) -> f64 {
        self.counters.gflops(self.freq_ghz)
    }

    /// L1 load hit rate.
    pub fn l1_load_hit_rate(&self) -> f64 {
        self.counters.mem.l1_load_hit_rate()
    }

    /// L1 load hits (the paper's "hit times").
    pub fn l1_hit_times(&self) -> u64 {
        self.counters.mem.l1_load_hits
    }

    /// Matrix-unit utilization, if any outer products ran.
    pub fn matrix_utilization(&self) -> Option<f64> {
        self.counters.matrix_utilization()
    }

    /// Cycles per updated point.
    pub fn cycles_per_point(&self) -> f64 {
        if self.points == 0 {
            0.0
        } else {
            self.counters.cycles as f64 / self.points as f64
        }
    }

    /// Speedup of this run over a baseline run of the same workload.
    pub fn speedup_over(&self, baseline: &RunReport) -> f64 {
        assert_eq!(
            self.points, baseline.points,
            "speedup requires matching workloads"
        );
        baseline.counters.cycles as f64 / self.counters.cycles as f64
    }
}

impl ToJson for RunReport {
    fn to_json(&self) -> Json {
        Json::object([
            ("method", self.method.to_json()),
            ("kernel", self.kernel.to_json()),
            ("stencil", self.stencil.to_json()),
            ("counters", self.counters.to_json()),
            ("points", self.points.to_json()),
            ("freq_ghz", self.freq_ghz.to_json()),
        ])
    }
}

impl std::fmt::Display for RunReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<12} {:<20} {:>12} cycles  ipc {:>5.2}  {:>7.3} GStencil/s  L1 {:>6.2}%",
            self.method,
            self.stencil,
            self.cycles(),
            self.ipc(),
            self.gstencil_per_s(),
            self.l1_load_hit_rate() * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(cycles: u64, points: u64) -> RunReport {
        RunReport {
            method: "HStencil",
            kernel: "test",
            stencil: "star2d5p".into(),
            counters: PerfCounters {
                cycles,
                instructions: 2 * cycles,
                ..Default::default()
            },
            points,
            freq_ghz: 2.5,
        }
    }

    #[test]
    fn throughput_math() {
        let r = report(1000, 4000);
        // 4000 points / (1000 cycles / 2.5 GHz) = 10 Gpoints/s.
        assert!((r.gstencil_per_s() - 10.0).abs() < 1e-12);
        assert!((r.cycles_per_point() - 0.25).abs() < 1e-12);
        assert!((r.ipc() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn speedup_ratio() {
        let fast = report(500, 4000);
        let slow = report(2000, 4000);
        assert!((fast.speedup_over(&slow) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn report_serializes_to_json() {
        let text = report(1000, 4000).to_json().to_pretty();
        assert!(text.contains("\"method\": \"HStencil\""));
        assert!(text.contains("\"points\": 4000"));
        assert!(text.contains("\"cycles\": 1000"));
        assert!(text.contains("\"freq_ghz\": 2.5"));
    }

    #[test]
    #[should_panic]
    fn speedup_requires_same_points() {
        let a = report(500, 4000);
        let b = report(500, 8000);
        let _ = a.speedup_over(&b);
    }
}
