//! Padded 2-D and 3-D grids, generic over the element type.
//!
//! Grids carry a halo of `halo` cells on every side (boundary values read
//! by the stencil but never written), and are laid out so the interior
//! origin of every row is aligned to a vector boundary — kernels can then
//! use aligned `LD1D` for block loads and `EXT` for shifts.
//!
//! [`Grid2dT`] / [`Grid3dT`] are generic over [`Element`] (`f64` or
//! `f32`); the [`Grid2d`] / [`Grid3d`] aliases pin the reference `f64`
//! instantiation every pre-existing call site uses.

use crate::element::Element;
use lx2_isa::VLEN;
use std::fmt;

fn round_up(x: usize, to: usize) -> usize {
    x.div_ceil(to) * to
}

/// Typed rejection of grid/stencil shape combinations that the apply
/// entry points cannot execute meaningfully.
///
/// Before this existed, degenerate shapes were a caller contract: a halo
/// narrower than the stencil radius would in release builds silently
/// read cells of the *neighbouring row* (the padded layout keeps the
/// index in bounds), and a radius reaching past the interior relies on
/// boundary data no solver initialises. Both are now first-class errors
/// the conformance fuzzer's degenerate-shape corpus exercises.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GridError {
    /// The grid's halo is narrower than the stencil radius; neighbour
    /// reads would wrap into adjacent rows of the padded layout.
    HaloTooSmall {
        /// Halo width of the offending grid.
        halo: usize,
        /// Stencil radius that the halo must cover.
        radius: usize,
    },
    /// The stencil radius is at least as large as an interior dimension,
    /// so every output cell depends on *both* opposing boundaries at
    /// once — outside the paper's (and the kernels') operating envelope.
    RadiusExceedsInterior {
        /// Stencil radius.
        radius: usize,
        /// Smallest interior dimension.
        interior: usize,
    },
    /// Input and output grids have different interior shapes
    /// (`d` is 1 for 2-D grids).
    ShapeMismatch {
        /// Input interior `[d, h, w]`.
        a: [usize; 3],
        /// Output interior `[d, h, w]`.
        b: [usize; 3],
    },
}

impl fmt::Display for GridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GridError::HaloTooSmall { halo, radius } => write!(
                f,
                "halo {halo} narrower than stencil radius {radius}: \
                 neighbour reads would alias adjacent rows"
            ),
            GridError::RadiusExceedsInterior { radius, interior } => write!(
                f,
                "stencil radius {radius} reaches across the whole \
                 interior (smallest dimension {interior})"
            ),
            GridError::ShapeMismatch { a, b } => {
                write!(f, "interior shapes differ: input {a:?} vs output {b:?}")
            }
        }
    }
}

impl std::error::Error for GridError {}

/// A 2-D grid with halo padding and vector-aligned rows, generic over
/// the element type ([`Grid2d`] is the `f64` alias).
///
/// ```
/// use hstencil_core::Grid2d;
/// let g = Grid2d::from_fn(8, 8, 1, |i, j| (i * 10 + j) as f64);
/// assert_eq!(g.at(2, 3), 23.0);
/// assert_eq!(g.at(-1, -1), -11.0); // halo coordinates are valid
/// assert_eq!(g.stride() % 8, 0);   // rows are vector aligned
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Grid2dT<E: Element> {
    h: usize,
    w: usize,
    halo: usize,
    stride: usize,
    left: usize,
    data: Vec<E>,
}

/// The reference `f64` 2-D grid every pre-existing call site uses.
pub type Grid2d = Grid2dT<f64>;

impl<E: Element> Grid2dT<E> {
    /// Builds a zeroed grid with interior `h x w` and halo width `halo`.
    pub fn zeros(h: usize, w: usize, halo: usize) -> Self {
        let left = round_up(halo, VLEN);
        let stride = round_up(left + w + halo, VLEN);
        let rows = h + 2 * halo;
        Grid2dT {
            h,
            w,
            halo,
            stride,
            left,
            data: vec![E::ZERO; rows * stride],
        }
    }

    /// Builds a grid by evaluating `f(i, j)` over interior *and* halo
    /// cells (`i, j` may be negative or exceed the interior).
    pub fn from_fn(h: usize, w: usize, halo: usize, mut f: impl FnMut(isize, isize) -> E) -> Self {
        let mut g = Grid2dT::zeros(h, w, halo);
        let r = halo as isize;
        for i in -r..(h as isize + r) {
            for j in -r..(w as isize + r) {
                let v = f(i, j);
                g.set(i, j, v);
            }
        }
        g
    }

    /// Element-wise conversion from another element type (round-to-
    /// nearest through `f64`) — how the conformance harness derives the
    /// `f32` image of an `f64` instance input.
    pub fn convert_from<S: Element>(src: &Grid2dT<S>) -> Self {
        Grid2dT::from_fn(src.h, src.w, src.halo, |i, j| {
            E::from_f64(src.at(i, j).to_f64())
        })
    }

    /// Interior height.
    pub fn h(&self) -> usize {
        self.h
    }

    /// Interior width.
    pub fn w(&self) -> usize {
        self.w
    }

    /// Halo width.
    pub fn halo(&self) -> usize {
        self.halo
    }

    /// Row stride in elements of the padded layout.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Flat offset of interior cell `(0, 0)` within [`Grid2dT::raw`].
    pub fn origin(&self) -> usize {
        self.halo * self.stride + self.left
    }

    /// Flat index of interior cell `(i, j)`; halo coordinates allowed.
    #[inline]
    pub fn index(&self, i: isize, j: isize) -> usize {
        debug_assert!(i >= -(self.halo as isize) && i < (self.h + self.halo) as isize);
        debug_assert!(j >= -(self.halo as isize) && j < (self.w + self.halo) as isize);
        (self.origin() as isize + i * self.stride as isize + j) as usize
    }

    /// Value at `(i, j)` (halo coordinates allowed).
    #[inline]
    pub fn at(&self, i: isize, j: isize) -> E {
        self.data[self.index(i, j)]
    }

    /// Sets the value at `(i, j)` (halo coordinates allowed).
    #[inline]
    pub fn set(&mut self, i: isize, j: isize, v: E) {
        let idx = self.index(i, j);
        self.data[idx] = v;
    }

    /// The full padded backing array.
    pub fn raw(&self) -> &[E] {
        &self.data
    }

    /// Mutable access to the padded backing array.
    pub fn raw_mut(&mut self) -> &mut [E] {
        &mut self.data
    }

    /// A zeroed grid of the same shape whose *halo* cells are copied
    /// from `self` — the cheap way to build a ping-pong destination that
    /// carries a Dirichlet boundary without paying for a full interior
    /// copy (`O(perimeter * halo)` instead of `O(h * w)`).
    pub fn halo_image(&self) -> Self {
        let mut g = Grid2dT::zeros(self.h, self.w, self.halo);
        let r = self.halo as isize;
        let (h, w) = (self.h as isize, self.w as isize);
        for i in (-r..0).chain(h..h + r) {
            for j in -r..w + r {
                g.set(i, j, self.at(i, j));
            }
        }
        for i in 0..h {
            for j in (-r..0).chain(w..w + r) {
                g.set(i, j, self.at(i, j));
            }
        }
        g
    }

    /// Checks that this grid can serve as input or output of a stencil
    /// sweep of `radius`, and that `out` matches its interior shape.
    ///
    /// Returns the first violated constraint as a typed [`GridError`]
    /// instead of panicking (or, worse, silently aliasing rows in a
    /// release build) — the contract the conformance fuzzer's
    /// degenerate-shape corpus pins down.
    pub fn check_stencil(&self, radius: usize, out: &Self) -> Result<(), GridError> {
        if (self.h, self.w) != (out.h, out.w) {
            return Err(GridError::ShapeMismatch {
                a: [1, self.h, self.w],
                b: [1, out.h, out.w],
            });
        }
        let halo = self.halo.min(out.halo);
        if halo < radius {
            return Err(GridError::HaloTooSmall { halo, radius });
        }
        let interior = self.h.min(self.w);
        if radius > 0 && radius >= interior {
            return Err(GridError::RadiusExceedsInterior { radius, interior });
        }
        Ok(())
    }

    /// Maximum absolute interior difference against another grid of the
    /// same interior shape (widened to `f64`).
    pub fn max_interior_diff(&self, other: &Self) -> f64 {
        assert_eq!((self.h, self.w), (other.h, other.w));
        let mut worst: f64 = 0.0;
        for i in 0..self.h as isize {
            for j in 0..self.w as isize {
                worst = worst.max((self.at(i, j).to_f64() - other.at(i, j).to_f64()).abs());
            }
        }
        worst
    }

    /// First interior cell whose difference exceeds `tol`, if any.
    pub fn first_mismatch(&self, other: &Self, tol: f64) -> Option<(usize, usize, f64, f64)> {
        assert_eq!((self.h, self.w), (other.h, other.w));
        for i in 0..self.h as isize {
            for j in 0..self.w as isize {
                let (a, b) = (self.at(i, j).to_f64(), other.at(i, j).to_f64());
                if (a - b).abs() > tol * (1.0 + a.abs().max(b.abs())) {
                    return Some((i as usize, j as usize, a, b));
                }
            }
        }
        None
    }
}

/// A 3-D grid (`d` planes of `h x w`) with halo padding on every side,
/// generic over the element type ([`Grid3d`] is the `f64` alias).
#[derive(Clone, Debug, PartialEq)]
pub struct Grid3dT<E: Element> {
    d: usize,
    h: usize,
    w: usize,
    halo: usize,
    stride: usize,
    left: usize,
    plane_stride: usize,
    data: Vec<E>,
}

/// The reference `f64` 3-D grid every pre-existing call site uses.
pub type Grid3d = Grid3dT<f64>;

impl<E: Element> Grid3dT<E> {
    /// Builds a zeroed grid with interior `d x h x w` and halo `halo`.
    pub fn zeros(d: usize, h: usize, w: usize, halo: usize) -> Self {
        let left = round_up(halo, VLEN);
        let stride = round_up(left + w + halo, VLEN);
        let rows = h + 2 * halo;
        let plane_stride = rows * stride;
        let planes = d + 2 * halo;
        Grid3dT {
            d,
            h,
            w,
            halo,
            stride,
            left,
            plane_stride,
            data: vec![E::ZERO; planes * plane_stride],
        }
    }

    /// Builds a grid by evaluating `f(k, i, j)` over interior and halo.
    pub fn from_fn(
        d: usize,
        h: usize,
        w: usize,
        halo: usize,
        mut f: impl FnMut(isize, isize, isize) -> E,
    ) -> Self {
        let mut g = Grid3dT::zeros(d, h, w, halo);
        let r = halo as isize;
        for k in -r..(d as isize + r) {
            for i in -r..(h as isize + r) {
                for j in -r..(w as isize + r) {
                    let v = f(k, i, j);
                    g.set(k, i, j, v);
                }
            }
        }
        g
    }

    /// Element-wise conversion from another element type (round-to-
    /// nearest through `f64`).
    pub fn convert_from<S: Element>(src: &Grid3dT<S>) -> Self {
        Grid3dT::from_fn(src.d, src.h, src.w, src.halo, |k, i, j| {
            E::from_f64(src.at(k, i, j).to_f64())
        })
    }

    /// Interior depth (number of planes).
    pub fn d(&self) -> usize {
        self.d
    }

    /// Interior height.
    pub fn h(&self) -> usize {
        self.h
    }

    /// Interior width.
    pub fn w(&self) -> usize {
        self.w
    }

    /// Halo width.
    pub fn halo(&self) -> usize {
        self.halo
    }

    /// Row stride in elements.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Plane stride in elements.
    pub fn plane_stride(&self) -> usize {
        self.plane_stride
    }

    /// Flat offset of interior cell `(0, 0, 0)`.
    pub fn origin(&self) -> usize {
        self.halo * self.plane_stride + self.halo * self.stride + self.left
    }

    /// Flat index of `(k, i, j)` (halo coordinates allowed).
    #[inline]
    pub fn index(&self, k: isize, i: isize, j: isize) -> usize {
        (self.origin() as isize + k * self.plane_stride as isize + i * self.stride as isize + j)
            as usize
    }

    /// Value at `(k, i, j)`.
    #[inline]
    pub fn at(&self, k: isize, i: isize, j: isize) -> E {
        self.data[self.index(k, i, j)]
    }

    /// Sets the value at `(k, i, j)`.
    #[inline]
    pub fn set(&mut self, k: isize, i: isize, j: isize, v: E) {
        let idx = self.index(k, i, j);
        self.data[idx] = v;
    }

    /// The full padded backing array.
    pub fn raw(&self) -> &[E] {
        &self.data
    }

    /// Mutable access to the padded backing array.
    pub fn raw_mut(&mut self) -> &mut [E] {
        &mut self.data
    }

    /// A zeroed grid of the same shape whose *halo* cells are copied
    /// from `self` (the 3-D analogue of [`Grid2dT::halo_image`]).
    pub fn halo_image(&self) -> Self {
        let mut g = Grid3dT::zeros(self.d, self.h, self.w, self.halo);
        let r = self.halo as isize;
        let (d, h, w) = (self.d as isize, self.h as isize, self.w as isize);
        for k in (-r..0).chain(d..d + r) {
            for i in -r..h + r {
                for j in -r..w + r {
                    g.set(k, i, j, self.at(k, i, j));
                }
            }
        }
        for k in 0..d {
            for i in (-r..0).chain(h..h + r) {
                for j in -r..w + r {
                    g.set(k, i, j, self.at(k, i, j));
                }
            }
            for i in 0..h {
                for j in (-r..0).chain(w..w + r) {
                    g.set(k, i, j, self.at(k, i, j));
                }
            }
        }
        g
    }

    /// The 3-D analogue of [`Grid2dT::check_stencil`].
    pub fn check_stencil(&self, radius: usize, out: &Self) -> Result<(), GridError> {
        if (self.d, self.h, self.w) != (out.d, out.h, out.w) {
            return Err(GridError::ShapeMismatch {
                a: [self.d, self.h, self.w],
                b: [out.d, out.h, out.w],
            });
        }
        let halo = self.halo.min(out.halo);
        if halo < radius {
            return Err(GridError::HaloTooSmall { halo, radius });
        }
        let interior = self.d.min(self.h).min(self.w);
        if radius > 0 && radius >= interior {
            return Err(GridError::RadiusExceedsInterior { radius, interior });
        }
        Ok(())
    }

    /// Maximum absolute interior difference against another grid
    /// (widened to `f64`).
    pub fn max_interior_diff(&self, other: &Self) -> f64 {
        assert_eq!((self.d, self.h, self.w), (other.d, other.h, other.w));
        let mut worst: f64 = 0.0;
        for k in 0..self.d as isize {
            for i in 0..self.h as isize {
                for j in 0..self.w as isize {
                    worst =
                        worst.max((self.at(k, i, j).to_f64() - other.at(k, i, j).to_f64()).abs());
                }
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interior_origin_is_vector_aligned() {
        for halo in 1..=3 {
            for w in [8usize, 24, 64, 100] {
                let g = Grid2d::zeros(16, w, halo);
                assert_eq!(g.origin() % VLEN, 0, "halo {halo} w {w}");
                assert_eq!(g.stride() % VLEN, 0);
            }
        }
    }

    #[test]
    fn rows_fit_with_right_halo() {
        let g = Grid2d::zeros(8, 100, 3);
        // Access to the extreme halo corners must be in bounds.
        let _ = g.at(-3, -3);
        let _ = g.at(10, 102);
    }

    #[test]
    fn from_fn_covers_halo() {
        let g = Grid2d::from_fn(8, 8, 2, |i, j| (i * 100 + j) as f64);
        assert_eq!(g.at(-2, -2), -202.0);
        assert_eq!(g.at(9, 9), 909.0);
        assert_eq!(g.at(0, 0), 0.0);
        assert_eq!(g.at(3, 4), 304.0);
    }

    #[test]
    fn set_then_get() {
        let mut g = Grid2d::zeros(8, 8, 1);
        g.set(3, 5, 2.5);
        assert_eq!(g.at(3, 5), 2.5);
        g.set(-1, 8, 7.0);
        assert_eq!(g.at(-1, 8), 7.0);
    }

    #[test]
    fn max_diff_and_mismatch() {
        let a = Grid2d::from_fn(4, 4, 1, |i, j| (i + j) as f64);
        let mut b = a.clone();
        assert_eq!(a.max_interior_diff(&b), 0.0);
        assert!(a.first_mismatch(&b, 1e-12).is_none());
        b.set(2, 3, 100.0);
        assert!(a.max_interior_diff(&b) > 90.0);
        let (i, j, _, _) = a.first_mismatch(&b, 1e-9).unwrap();
        assert_eq!((i, j), (2, 3));
    }

    #[test]
    fn halo_image_copies_halo_zeros_interior() {
        let g = Grid2d::from_fn(6, 9, 2, |i, j| (i * 100 + j) as f64);
        let img = g.halo_image();
        for i in -2..8i64 {
            for j in -2..11i64 {
                let (i, j) = (i as isize, j as isize);
                let interior = (0..6).contains(&i) && (0..9).contains(&j);
                let want = if interior { 0.0 } else { g.at(i, j) };
                assert_eq!(img.at(i, j), want, "({i},{j})");
            }
        }
    }

    #[test]
    fn halo_image_3d_copies_halo_zeros_interior() {
        let g = Grid3d::from_fn(3, 4, 5, 1, |k, i, j| (k * 100 + i * 10 + j) as f64);
        let img = g.halo_image();
        for k in -1..4isize {
            for i in -1..5isize {
                for j in -1..6isize {
                    let interior =
                        (0..3).contains(&k) && (0..4).contains(&i) && (0..5).contains(&j);
                    let want = if interior { 0.0 } else { g.at(k, i, j) };
                    assert_eq!(img.at(k, i, j), want, "({k},{i},{j})");
                }
            }
        }
    }

    #[test]
    fn check_stencil_rejects_degenerate_shapes() {
        let a = Grid2d::zeros(8, 8, 1);
        let b = Grid2d::zeros(8, 8, 1);
        assert_eq!(a.check_stencil(1, &b), Ok(()));
        // Halo narrower than radius: the silent wrong-row read path.
        assert_eq!(
            a.check_stencil(2, &b),
            Err(GridError::HaloTooSmall { halo: 1, radius: 2 })
        );
        // The *narrower* of the two halos governs.
        let wide = Grid2d::zeros(8, 8, 3);
        assert_eq!(
            wide.check_stencil(2, &b),
            Err(GridError::HaloTooSmall { halo: 1, radius: 2 })
        );
        // Radius reaching across the interior.
        let tiny = Grid2d::zeros(2, 16, 3);
        let tiny_b = Grid2d::zeros(2, 16, 3);
        assert_eq!(
            tiny.check_stencil(3, &tiny_b),
            Err(GridError::RadiusExceedsInterior {
                radius: 3,
                interior: 2
            })
        );
        // Shape mismatch wins over everything else.
        let other = Grid2d::zeros(8, 9, 1);
        assert_eq!(
            a.check_stencil(1, &other),
            Err(GridError::ShapeMismatch {
                a: [1, 8, 8],
                b: [1, 8, 9]
            })
        );
        // Radius 0 is degenerate-but-legal (pure pointwise scaling).
        let dot = Grid2d::zeros(1, 1, 0);
        let dot_b = Grid2d::zeros(1, 1, 0);
        assert_eq!(dot.check_stencil(0, &dot_b), Ok(()));
    }

    #[test]
    fn check_stencil_3d_covers_depth() {
        let a = Grid3d::zeros(2, 8, 8, 3);
        let b = Grid3d::zeros(2, 8, 8, 3);
        assert_eq!(a.check_stencil(1, &b), Ok(()));
        assert_eq!(
            a.check_stencil(2, &b),
            Err(GridError::RadiusExceedsInterior {
                radius: 2,
                interior: 2
            })
        );
        let shallow = Grid3d::zeros(2, 8, 8, 1);
        assert_eq!(
            a.check_stencil(2, &shallow),
            Err(GridError::HaloTooSmall { halo: 1, radius: 2 })
        );
    }

    #[test]
    fn grid_error_messages_are_actionable() {
        let e = GridError::HaloTooSmall { halo: 1, radius: 3 };
        assert!(e.to_string().contains("halo 1"));
        let e = GridError::RadiusExceedsInterior {
            radius: 3,
            interior: 2,
        };
        assert!(e.to_string().contains("radius 3"));
    }

    #[test]
    fn grid3d_layout() {
        let g = Grid3d::zeros(4, 8, 16, 2);
        assert_eq!(g.origin() % VLEN, 0);
        assert_eq!(g.plane_stride() % VLEN, 0);
        let _ = g.at(-2, -2, -2);
        let _ = g.at(5, 9, 17);
    }

    #[test]
    fn grid3d_from_fn() {
        let g = Grid3d::from_fn(3, 3, 3, 1, |k, i, j| (k * 10000 + i * 100 + j) as f64);
        assert_eq!(g.at(2, 1, 0), 20100.0);
        assert_eq!(g.at(-1, -1, -1), -10101.0);
    }

    #[test]
    fn f32_grid_shares_the_layout_and_converts_exactly_back() {
        let g64 = Grid2d::from_fn(6, 9, 2, |i, j| (i * 100 + j) as f64 + 0.5);
        let g32 = Grid2dT::<f32>::convert_from(&g64);
        assert_eq!((g32.h(), g32.w(), g32.halo()), (6, 9, 2));
        assert_eq!(g32.stride(), g64.stride(), "layout is dtype-independent");
        // Small integers + 0.5 are exactly representable in f32, so the
        // round trip is lossless here.
        let back = Grid2d::convert_from(&g32);
        assert_eq!(back.max_interior_diff(&g64), 0.0);
        assert_eq!(g32.at(-2, -2), -201.5f32);
    }
}
