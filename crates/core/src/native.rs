//! Optimized pure-Rust executor.
//!
//! For users who want stencil *answers* on the host machine rather than a
//! simulation: a cache-blocked, auto-vectorizable implementation with
//! optional row-parallelism over OS threads. Verified against
//! [`crate::reference`] by tests; used by the examples for large
//! time-stepped workloads.

use crate::grid::Grid2d;
use crate::stencil::StencilSpec;

/// One sweep of a 2-D stencil using tight inner loops the compiler can
/// auto-vectorize. Single-threaded.
pub fn apply_2d(spec: &StencilSpec, a: &Grid2d, b: &mut Grid2d) {
    assert_eq!(spec.dims(), 2);
    assert_eq!((a.h(), a.w()), (b.h(), b.w()));
    assert!(a.halo() >= spec.radius() && b.halo() >= spec.radius());
    let r = spec.radius() as isize;
    // Collect nonzero taps once.
    let taps: Vec<(isize, isize, f64)> = (-r..=r)
        .flat_map(|di| (-r..=r).map(move |dj| (di, dj, 0.0)))
        .filter_map(|(di, dj, _)| {
            let c = spec.c2(di, dj);
            (c != 0.0).then_some((di, dj, c))
        })
        .collect();

    let (h, w) = (a.h(), a.w());
    let stride = a.stride() as isize;
    let a_org = a.origin() as isize;
    let b_org = b.origin() as isize;
    let b_stride = b.stride() as isize;
    let a_raw = a.raw();
    let out = b.raw_mut();

    for i in 0..h as isize {
        let row_out = (b_org + i * b_stride) as usize;
        let dst = &mut out[row_out..row_out + w];
        // First tap initializes, the rest accumulate — keeps the inner
        // loops branch-free and vectorizable.
        let (di0, dj0, c0) = taps[0];
        let src0 = (a_org + (i + di0) * stride + dj0) as usize;
        let s0 = &a_raw[src0..src0 + w];
        for (d, &s) in dst.iter_mut().zip(s0) {
            *d = c0 * s;
        }
        for &(di, dj, c) in &taps[1..] {
            let src = (a_org + (i + di) * stride + dj) as usize;
            let s = &a_raw[src..src + w];
            for (d, &sv) in dst.iter_mut().zip(s) {
                *d += c * sv;
            }
        }
    }
}

/// One sweep of a 2-D stencil with rows distributed over `threads` OS
/// threads (scoped; no detached state).
pub fn apply_2d_parallel(spec: &StencilSpec, a: &Grid2d, b: &mut Grid2d, threads: usize) {
    assert_eq!(spec.dims(), 2);
    assert!(threads >= 1);
    if threads == 1 || a.h() < 2 * threads {
        apply_2d(spec, a, b);
        return;
    }
    let r = spec.radius() as isize;
    let taps: Vec<(isize, isize, f64)> = (-r..=r)
        .flat_map(|di| (-r..=r).map(move |dj| (di, dj)))
        .filter_map(|(di, dj)| {
            let c = spec.c2(di, dj);
            (c != 0.0).then_some((di, dj, c))
        })
        .collect();

    let (h, w) = (a.h(), a.w());
    let stride = a.stride() as isize;
    let a_org = a.origin() as isize;
    let b_org = b.origin() as isize;
    let b_stride = b.stride() as isize;
    let a_raw = a.raw();

    // Split the output rows into disjoint row-band slices of the backing
    // array so each thread owns its band exclusively.
    let rows_per = h.div_ceil(threads);
    let out = b.raw_mut();

    std::thread::scope(|scope| {
        let mut rest = out;
        let mut consumed = 0usize;
        for t in 0..threads {
            let i_lo = t * rows_per;
            if i_lo >= h {
                break;
            }
            let i_hi = ((t + 1) * rows_per).min(h);
            // Elements of `out` this band writes: rows i_lo..i_hi.
            let start = b_org as usize + i_lo * b_stride as usize;
            let end = b_org as usize + (i_hi - 1) * b_stride as usize + w;
            let (_, tail) = rest.split_at_mut(start - consumed);
            let (band, tail2) = tail.split_at_mut(end - start);
            rest = tail2;
            consumed = end;
            let taps = &taps;
            scope.spawn(move || {
                for i in i_lo as isize..i_hi as isize {
                    let row_off = ((i - i_lo as isize) * b_stride) as usize;
                    let dst = &mut band[row_off..row_off + w];
                    let (di0, dj0, c0) = taps[0];
                    let src0 = (a_org + (i + di0) * stride + dj0) as usize;
                    let s0 = &a_raw[src0..src0 + w];
                    for (d, &s) in dst.iter_mut().zip(s0) {
                        *d = c0 * s;
                    }
                    for &(di, dj, c) in &taps[1..] {
                        let src = (a_org + (i + di) * stride + dj) as usize;
                        let s = &a_raw[src..src + w];
                        for (d, &sv) in dst.iter_mut().zip(s) {
                            *d += c * sv;
                        }
                    }
                }
            });
        }
    });
}

/// Runs `sweeps` time steps, ping-ponging between two buffers; returns the
/// final state. Halo values are carried over between steps (Dirichlet
/// boundary held at the initial halo).
pub fn time_steps(spec: &StencilSpec, init: &Grid2d, sweeps: usize, threads: usize) -> Grid2d {
    let mut cur = init.clone();
    let mut next = init.clone();
    for _ in 0..sweeps {
        apply_2d_parallel(spec, &cur, &mut next, threads);
        std::mem::swap(&mut cur, &mut next);
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use crate::stencil::presets;

    fn random_grid(h: usize, w: usize, halo: usize, seed: u64) -> Grid2d {
        // Small deterministic LCG; avoids pulling rand into the lib.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        Grid2d::from_fn(h, w, halo, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (1u64 << 31) as f64 - 1.0
        })
    }

    #[test]
    fn native_matches_reference_all_presets() {
        for spec in presets::suite_2d() {
            let a = random_grid(24, 40, spec.radius(), 7);
            let mut want = Grid2d::zeros(24, 40, spec.radius());
            let mut got = Grid2d::zeros(24, 40, spec.radius());
            reference::apply_2d(&spec, &a, &mut want);
            apply_2d(&spec, &a, &mut got);
            assert!(
                want.max_interior_diff(&got) < 1e-12,
                "{} diverges",
                spec.name()
            );
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let spec = presets::box2d25p();
        let a = random_grid(64, 48, 2, 11);
        let mut serial = Grid2d::zeros(64, 48, 2);
        let mut par = Grid2d::zeros(64, 48, 2);
        apply_2d(&spec, &a, &mut serial);
        for threads in [2, 3, 4, 7] {
            apply_2d_parallel(&spec, &a, &mut par, threads);
            assert_eq!(serial.max_interior_diff(&par), 0.0, "threads={threads}");
        }
    }

    #[test]
    fn parallel_falls_back_for_tiny_grids() {
        let spec = presets::star2d5p();
        let a = random_grid(8, 8, 1, 3);
        let mut out = Grid2d::zeros(8, 8, 1);
        apply_2d_parallel(&spec, &a, &mut out, 16);
        let mut want = Grid2d::zeros(8, 8, 1);
        reference::apply_2d(&spec, &a, &mut want);
        assert!(want.max_interior_diff(&out) < 1e-12);
    }

    #[test]
    fn time_steps_preserve_constant_field() {
        let spec = presets::heat2d();
        let a = Grid2d::from_fn(16, 16, 1, |_, _| 5.0);
        let out = time_steps(&spec, &a, 10, 2);
        assert!((out.at(8, 8) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn heat_steps_decay_towards_boundary() {
        let spec = presets::heat2d();
        let mut a = Grid2d::zeros(16, 16, 1);
        a.set(8, 8, 1000.0);
        let out = time_steps(&spec, &a, 50, 1);
        assert!(out.at(8, 8) < 1000.0);
        assert!(out.at(8, 8) > 0.0);
        // Total heat leaks through the cold boundary, never grows.
        let total: f64 = (0..16)
            .flat_map(|i| (0..16).map(move |j| (i, j)))
            .map(|(i, j)| out.at(i, j))
            .sum();
        assert!(total <= 1000.0 + 1e-9);
    }
}
