//! Hybrid 8×8 register-tile micro-kernel — the native x86 port of the
//! paper's Algorithm 2 (interleaved outer product + MLA with in-place
//! accumulation and store scattering, §3.2 / Figure 8).
//!
//! # Schedule
//!
//! One call computes an 8-row × 8-column f64 output tile held entirely
//! in sixteen ymm accumulators (two 4-lane vectors per output row).
//! The kernel sweeps the `8 + 2r` contributing input rows top to
//! bottom, one row per *step*:
//!
//! 1. **Outer-axis rank-1 update** — the freshly loaded input row
//!    vector pair is broadcast-FMA'd into every accumulator row it
//!    touches: input row `i0 + s - r` is tap `di = s - k - r` of output
//!    row `i0 + k`, so step `s` updates output rows
//!    `max(s-2r, 0) ..= min(s, 7)`. Each input row is loaded **once**
//!    for all vertical taps of all eight output rows — the outer-product
//!    analogue of the paper's matrix half.
//! 2. **Inner-axis MLA** — when step `s >= 2r`, output row `k = s - 2r`
//!    has just consumed its last contributing input row (`i0 + k + r`).
//!    Its horizontal (`dj != 0`) taps are applied as shifted unaligned
//!    vector loads FMA'd into a separate vector partial sum, exactly
//!    the paper's vector-unit MLA half.
//! 3. **In-place accumulation fold** — the partial sum folds into the
//!    resident accumulator with a single `fma(1.0, partial, acc)`; the
//!    tile never round-trips through memory between the two halves.
//! 4. **Store scattering** — the folded row is stored immediately and
//!    its accumulators are dead from then on; rows retire one step
//!    apart instead of all at once at the end. On cache-resident bands
//!    the store is a plain `storeu` straight into the destination. On
//!    streaming bands (working set past [`STAGE_MIN_BAND_BYTES`]) rows
//!    retire into one of two ping-pong staging buffers while the
//!    previous group's buffer drains to the destination through
//!    sequential non-temporal stores interleaved into the current
//!    group's compute ([`avx2::Drain`]), halving the DRAM store traffic
//!    (no read-for-ownership on the destination). Scattering NT stores
//!    *directly* from the register tile — eight interleaved row
//!    streams — thrashes the write-combining buffers and is ~10×
//!    slower on the recorded bench host; one open NT stream at a time
//!    is the shape WC hardware likes. The staging decision is
//!    **lane-aware** ([`staged_store_policy`]): each concurrent band
//!    adds its own NT stream, and past [`MAX_NT_LANES`] streams the
//!    DRAM-bus collision outweighs the saved read-for-ownership, so
//!    saturated sweeps fall back to plain stores per band.
//!    `HSTENCIL_NT=direct|staged` pins the choice; each staging lane
//!    fences its own stores once per band before the pool barrier.
//!
//! # Element genericity
//!
//! The tap split ([`TapsHybrid`]) and the scalar hybrid chain
//! ([`scalar_point_hybrid`]) are generic over
//! [`Element`](crate::element::Element); coefficients are narrowed from
//! the f64 master spec once at construction. The AVX2 register tile
//! ([`sweep_band_hybrid`]) stays f64-only — it is the hand-tuned bench
//! kernel and its body is untouched by the trait refactor. Other
//! element types run [`sweep_band_hybrid_staged`]: the same schedule
//! and accumulation order computed by the scalar chain, with completed
//! row groups retired through a generic staged NT drain
//! ([`stage::Drain`]) under the same lane-aware policy.
//!
//! # Accumulation order (the hybrid chain)
//!
//! Every hybrid code path — the AVX2 tile, the column-tail scalar loop,
//! partial row groups shorter than 8, and the non-x86 fallback —
//! computes the *same* chain per element ([`scalar_point_hybrid`]):
//! vertical taps in `di`-ascending order into `acc`, inner taps in
//! `(di, dj)`-ascending order into `part` from `0.0`, then
//! `fma(1.0, part, acc)`. `_mm256_fmadd_pd` and `f64::mul_add` both
//! round once per step, so the vector and scalar hybrid paths are
//! **bit-identical** to each other and the kernel is invariant to band,
//! tile and thread decomposition by construction.
//!
//! The hybrid chain differs from the canonical `(di, dj)`-ascending
//! chain of [`super::kernel2d`] (it reassociates the sum), so results
//! are ULP-bounded — not bit-exact — against [`Dispatch::Scalar`] /
//! [`Dispatch::Avx2Fma`]; the conformance registry checks it under the
//! differential ULP oracle like the simulated methods.
//!
//! [`Dispatch::Scalar`]: super::Dispatch::Scalar
//! [`Dispatch::Avx2Fma`]: super::Dispatch::Avx2Fma

use super::tile;
use crate::element::Element;
use crate::stencil::StencilSpec;
use std::sync::OnceLock;

/// Radii with a monomorphized AVX2 tile body; larger radii take the
/// scalar hybrid chain (bit-identical, just slower).
pub(crate) const MAX_VECTOR_RADIUS: usize = 4;

/// Taps of a 2-D stencil split the way Algorithm 2 consumes them:
/// outer-axis (vertical, `dj == 0`) coefficients for the rank-1
/// updates, inner-axis (`dj != 0`) taps for the vector MLA partial.
/// Coefficients are narrowed from the f64 master spec once here, so
/// every downstream path of one element type sees identical constants.
pub(crate) struct TapsHybrid<E: Element> {
    /// Radius.
    pub r: isize,
    /// `vert[di + r]` is the coefficient at `(di, 0)`; zeros are
    /// skipped by both paths.
    pub vert: Vec<E>,
    /// `(di, dj, c)` taps with `dj != 0`, `(di, dj)` ascending, nonzero
    /// only (filtered on the f64 master coefficient, before narrowing).
    pub inner: Vec<(isize, isize, E)>,
}

impl<E: Element> TapsHybrid<E> {
    pub fn new(spec: &StencilSpec) -> TapsHybrid<E> {
        assert_eq!(spec.dims(), 2);
        let r = spec.radius() as isize;
        let vert = (-r..=r).map(|di| E::from_f64(spec.c2(di, 0))).collect();
        let mut inner = Vec::new();
        for di in -r..=r {
            for dj in -r..=r {
                let c = spec.c2(di, dj);
                if dj != 0 && c != 0.0 {
                    inner.push((di, dj, E::from_f64(c)));
                }
            }
        }
        TapsHybrid { r, vert, inner }
    }

    /// Grid rows that must stay cache-resident while a column tile
    /// streams. The 8 output rows live in registers, so this is only
    /// the input-row reuse window — a row loaded for the rank-1 update
    /// is re-read by the inner MLA of the rows retiring within the next
    /// `2r` steps — plus one output row in the store stream.
    pub fn reuse_rows(&self) -> usize {
        2 * self.r as usize + 2
    }
}

/// The hybrid chain for one element — the bit-identity contract every
/// hybrid code path computes (see module docs).
#[inline]
pub(crate) fn scalar_point_hybrid<E: Element>(
    taps: &TapsHybrid<E>,
    a: &[E],
    base: isize,
    stride: isize,
) -> E {
    let r = taps.r;
    let mut acc = E::ZERO;
    for (t, &c) in taps.vert.iter().enumerate() {
        if c.to_f64() != 0.0 {
            acc = c.mul_add(a[(base + (t as isize - r) * stride) as usize], acc);
        }
    }
    let mut part = E::ZERO;
    for &(di, dj, c) in &taps.inner {
        part = c.mul_add(a[(base + di * stride + dj) as usize], part);
    }
    E::ONE.mul_add(part, acc)
}

/// One output row of the hybrid chain — the row body behind
/// `HybridTile::execute` in [`super::kernel`].
#[inline]
pub(crate) fn scalar_row_hybrid<E: Element>(
    taps: &TapsHybrid<E>,
    a: &[E],
    base: isize,
    stride: isize,
    dst: &mut [E],
) {
    for (j, d) in dst.iter_mut().enumerate() {
        *d = scalar_point_hybrid(taps, a, base + j as isize, stride);
    }
}

/// Band working set (input + output bytes) above which the AVX2 path
/// retires rows into an L2 staging buffer and streams each completed
/// row to `dst` with sequential non-temporal stores. Streaming the
/// copy halves the DRAM store traffic (no read-for-ownership on
/// `dst`); one sequential NT stream per row is the shape this host's
/// write-combining buffers like — scattering NT stores across the
/// eight open rows of a register tile is ~10× *slower* (see the module
/// docs). Matches the autotuner's resident/streaming boundary so
/// cache-resident bands keep plain stores and stay warm for the next
/// sweep.
const STAGE_MIN_BAND_BYTES: usize = 4 << 20;

/// Concurrent lanes beyond which the auto store policy abandons staged
/// NT stores. Each lane's drain keeps one open sequential
/// write-combining stream; up to two streams the memory controller
/// services them as long bursts, but past that the interleaved NT
/// traffic from sibling bands collides on the DRAM bus badly enough
/// that plain (allocating) stores win back the read-for-ownership cost
/// — DESIGN.md §10's contention caveat turned into a measured policy.
const MAX_NT_LANES: usize = 2;

/// Non-temporal store policy for streaming hybrid bands
/// (`HSTENCIL_NT`): `auto` (default) stages when the band working set
/// is streaming-sized *and* at most [`MAX_NT_LANES`] lanes run
/// concurrently; `direct` / `staged` pin the path either way. Like
/// `HSTENCIL_DISPATCH`, the policy only moves stores — both paths
/// retire bit-identical values.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum NtPolicy {
    /// Band-size and lane-count aware heuristic (the default).
    Auto,
    /// Always plain stores, never a staging buffer.
    Direct,
    /// Always stage + NT-drain (when the vector tile runs at all).
    Staged,
}

impl NtPolicy {
    /// Parses an `HSTENCIL_NT` value; `None` means "keep auto".
    pub(crate) fn from_env_str(v: &str) -> Option<NtPolicy> {
        match v.trim().to_ascii_lowercase().as_str() {
            "direct" => Some(NtPolicy::Direct),
            "staged" => Some(NtPolicy::Staged),
            _ => None,
        }
    }

    /// [`NtPolicy::from_env_str`] plus a warning for values that are
    /// neither a known policy nor the explicit `auto`/empty spellings —
    /// same convention as `HSTENCIL_DISPATCH`/`HSTENCIL_PREFETCH`.
    pub(crate) fn from_env_str_warn(v: &str) -> (Option<NtPolicy>, Option<String>) {
        let parsed = NtPolicy::from_env_str(v);
        if parsed.is_some() {
            return (parsed, None);
        }
        let warn = match v.trim().to_ascii_lowercase().as_str() {
            "" | "auto" => None,
            _ => Some(format!(
                "hstencil: ignoring malformed HSTENCIL_NT={v:?} \
                 (expected auto|direct|staged); using the lane-aware auto policy"
            )),
        };
        (None, warn)
    }

    /// The process-wide `HSTENCIL_NT` override (env read once through
    /// [`super::env::cached`]; malformed values warn on stderr once and
    /// keep the auto policy).
    fn env_override() -> Option<NtPolicy> {
        static OVERRIDE: OnceLock<Option<NtPolicy>> = OnceLock::new();
        super::env::cached(&OVERRIDE, "HSTENCIL_NT", |v| {
            NtPolicy::from_env_str_warn(v.unwrap_or(""))
        })
    }
}

/// Whether a band of `band_bytes` working set swept by one of `lanes`
/// concurrent lanes should retire rows through the staged NT drain
/// under `policy` (`None` = auto). Pure so the policy table is unit
/// testable without touching the environment.
pub(crate) fn staged_store_policy(
    policy: Option<NtPolicy>,
    lanes: usize,
    band_bytes: usize,
) -> bool {
    match policy.unwrap_or(NtPolicy::Auto) {
        NtPolicy::Direct => false,
        NtPolicy::Staged => true,
        NtPolicy::Auto => band_bytes > STAGE_MIN_BAND_BYTES && lanes <= MAX_NT_LANES,
    }
}

/// Sweeps output rows `i_lo .. i_hi` of a band with the hybrid chain —
/// the [`super::Dispatch::Hybrid`] counterpart of
/// [`super::kernel2d::sweep_band_2d`] (same slice/offset contract:
/// `dst[0]` is element `(i_lo, 0)`, rows `b_stride` apart, `a_org` the
/// flat index of `(0, 0)` in `a`).
///
/// Row groups of 8 inside a column tile take the AVX2 register-tile
/// path where available; the leftover `i_hi - i_lo mod 8` rows, column
/// tails narrower than one 8-lane step, radii above
/// [`MAX_VECTOR_RADIUS`] and non-x86 hosts all run
/// [`scalar_point_hybrid`] — bit-identical, so the split is invisible
/// in the output.
#[allow(clippy::too_many_arguments)]
pub(crate) fn sweep_band_hybrid(
    taps: &TapsHybrid<f64>,
    a: &[f64],
    a_org: isize,
    a_stride: isize,
    w: usize,
    dst: &mut [f64],
    b_stride: usize,
    i_lo: usize,
    i_hi: usize,
    lanes: usize,
) {
    // Unlike the 2×8 kernel's `rows_in_flight`, the reuse window here
    // is tiny (outputs live in registers), so the 4096² bench case gets
    // full-width tiles — long uninterrupted DRAM streams. Tiling it
    // into narrow strips costs ~35% of the kernel's bandwidth.
    let cb = tile::col_block(w, taps.reuse_rows(), std::mem::size_of::<f64>());
    #[cfg(target_arch = "x86_64")]
    let vector_ok =
        super::Dispatch::avx2_available() && taps.r as usize <= MAX_VECTOR_RADIUS && cb >= 8;
    // Two ping-pong staging buffers: while a group computes into one,
    // the previous group's rows drain from the other — the NT stream
    // overlaps the next tile's loads instead of running as a serial
    // copy phase after each group (which costs ~25% wall-clock: the
    // bus then alternates read-only and write-only half-phases).
    #[cfg(target_arch = "x86_64")]
    let mut stage = {
        let band_bytes = 2 * (i_hi - i_lo) * w * std::mem::size_of::<f64>();
        if vector_ok && staged_store_policy(NtPolicy::env_override(), lanes, band_bytes) {
            vec![0.0f64; 2 * 8 * cb]
        } else {
            Vec::new()
        }
    };
    #[cfg(not(target_arch = "x86_64"))]
    let _ = lanes;
    let mut j0 = 0usize;
    while j0 < w {
        let jw = cb.min(w - j0);
        let mut i = i_lo;
        #[cfg(target_arch = "x86_64")]
        if vector_ok && jw >= 8 {
            let pf = super::prefetch::Prefetch::config();
            if stage.is_empty() {
                while i + 8 <= i_hi {
                    // SAFETY: AVX2+FMA verified above; all loads stay
                    // inside the halo the caller's shape check
                    // guarantees; `out` covers the full 8 x jw tile.
                    unsafe {
                        let out = dst.as_mut_ptr().add((i - i_lo) * b_stride + j0);
                        let mut drain = avx2::Drain::idle();
                        avx2::group8(
                            taps, a, a_org, a_stride, j0, jw, out, b_stride, i, pf, &mut drain,
                        );
                    }
                    i += 8;
                }
            } else {
                let (s0, s1) = stage.split_at_mut(8 * cb);
                let bufs = [s0.as_mut_ptr(), s1.as_mut_ptr()];
                let mut cur = 0usize;
                let mut drain = avx2::Drain::idle();
                while i + 8 <= i_hi {
                    // SAFETY: as above; the drain's source is the *other*
                    // staging buffer, never the one being written.
                    unsafe {
                        avx2::group8(
                            taps, a, a_org, a_stride, j0, jw, bufs[cur], jw, i, pf, &mut drain,
                        );
                        drain.finish();
                        drain = avx2::Drain::new(
                            bufs[cur],
                            dst.as_mut_ptr().add((i - i_lo) * b_stride + j0),
                            b_stride,
                            jw,
                        );
                    }
                    cur ^= 1;
                    i += 8;
                }
                // SAFETY: drains the last group's staging buffer.
                unsafe { drain.finish() };
            }
        }
        for ii in i..i_hi {
            let base = a_org + ii as isize * a_stride + j0 as isize;
            let off = (ii - i_lo) * b_stride + j0;
            for (jj, d) in dst[off..off + jw].iter_mut().enumerate() {
                *d = scalar_point_hybrid(taps, a, base + jj as isize, a_stride);
            }
        }
        j0 += jw;
    }
    #[cfg(target_arch = "x86_64")]
    if !stage.is_empty() {
        // One sfence per band, on the lane that issued the NT stores:
        // weakly-ordered stores must be globally visible before this
        // lane reaches the pool's done-channel barrier (the barrier
        // orders the channel message, not the WC buffers), and the
        // fence must run on the storing thread — a single fence after
        // the join could not flush sibling lanes' write-combining
        // buffers. Per-band (not per-tile) placement keeps it off the
        // hot path. SAFETY: sfence is unconditionally available on
        // x86-64.
        unsafe { std::arch::x86_64::_mm_sfence() };
    }
}

/// The element-generic hybrid band sweep — same slice/offset contract
/// and accumulation order as [`sweep_band_hybrid`], computed by the
/// scalar hybrid chain (no vectorized tile body exists for non-f64
/// elements yet; DESIGN.md §12 records the gap). What *is* shared with
/// the f64 fast path is the store schedule: under the same lane-aware
/// [`staged_store_policy`], completed 8-row groups retire through the
/// generic ping-pong staged NT drain ([`stage::Drain`]), so streaming
/// f32 bands still skip the destination read-for-ownership.
#[allow(clippy::too_many_arguments)]
pub(crate) fn sweep_band_hybrid_staged<E: super::kernel::NativeElement>(
    taps: &TapsHybrid<E>,
    a: &[E],
    a_org: isize,
    a_stride: isize,
    w: usize,
    dst: &mut [E],
    b_stride: usize,
    i_lo: usize,
    i_hi: usize,
    lanes: usize,
) {
    let cb = tile::col_block(w, taps.reuse_rows(), std::mem::size_of::<E>());
    #[cfg(target_arch = "x86_64")]
    let mut stage_buf = {
        let band_bytes = 2 * (i_hi - i_lo) * w * std::mem::size_of::<E>();
        // NT stores need AVX (`vmovntps`/`vmovntpd` through
        // `NativeElement::stream_chunk`); gate on the same detection
        // the f64 path uses.
        if super::Dispatch::avx2_available()
            && staged_store_policy(NtPolicy::env_override(), lanes, band_bytes)
        {
            vec![E::ZERO; 2 * 8 * cb]
        } else {
            Vec::new()
        }
    };
    #[cfg(not(target_arch = "x86_64"))]
    let _ = lanes;
    let mut j0 = 0usize;
    while j0 < w {
        let jw = cb.min(w - j0);
        let mut i = i_lo;
        #[cfg(target_arch = "x86_64")]
        if !stage_buf.is_empty() && jw > 0 {
            let (s0, s1) = stage_buf.split_at_mut(8 * cb);
            let bufs = [s0.as_mut_ptr(), s1.as_mut_ptr()];
            let mut cur = 0usize;
            let mut drain = stage::Drain::<E>::idle();
            while i + 8 <= i_hi {
                for k in 0..8usize {
                    let base = a_org + (i + k) as isize * a_stride + j0 as isize;
                    // SAFETY: `bufs[cur]` covers the full 8 x jw group;
                    // the drain's source is the *other* staging buffer.
                    // One drain chunk per computed row keeps the NT
                    // stream advancing at production rate, like the
                    // f64 tile's per-step `drain.step(64)`.
                    unsafe {
                        let out = std::slice::from_raw_parts_mut(bufs[cur].add(k * jw), jw);
                        scalar_row_hybrid(taps, a, base, a_stride, out);
                        drain.step(jw);
                    }
                }
                // SAFETY: finishes the previous group, then re-arms the
                // drain on the group just computed.
                unsafe {
                    drain.finish();
                    drain = stage::Drain::new(
                        bufs[cur],
                        dst.as_mut_ptr().add((i - i_lo) * b_stride + j0),
                        b_stride,
                        jw,
                    );
                }
                cur ^= 1;
                i += 8;
            }
            // SAFETY: drains the last group's staging buffer.
            unsafe { drain.finish() };
        }
        for ii in i..i_hi {
            let base = a_org + ii as isize * a_stride + j0 as isize;
            let off = (ii - i_lo) * b_stride + j0;
            for (jj, d) in dst[off..off + jw].iter_mut().enumerate() {
                *d = scalar_point_hybrid(taps, a, base + jj as isize, a_stride);
            }
        }
        j0 += jw;
    }
    #[cfg(target_arch = "x86_64")]
    if !stage_buf.is_empty() {
        // Same fence contract as the f64 path: flush this lane's
        // write-combining buffers before the pool barrier. SAFETY:
        // sfence is unconditionally available on x86-64.
        unsafe { std::arch::x86_64::_mm_sfence() };
    }
}

/// Element-generic staged NT drain — the [`avx2::Drain`] schedule
/// (scalar head to 32-byte alignment, chunked NT middle, scalar tail,
/// row-major so consecutive steps extend one open WC stream) with the
/// NT middle delegated to `NativeElement::stream_chunk` so one body
/// serves every element width. The f64 fast path keeps its hand-tuned
/// monomorphic drain; this one backs [`sweep_band_hybrid_staged`].
#[cfg(target_arch = "x86_64")]
pub(crate) mod stage {
    use super::super::kernel::NativeElement;

    /// In-flight drain of one staged 8-row group (see the f64
    /// `avx2::Drain` for the schedule rationale).
    pub(crate) struct Drain<E> {
        src: *const E,
        dst: *mut E,
        dst_stride: usize,
        jw: usize,
        k: usize,
        j: usize,
    }

    impl<E: NativeElement> Drain<E> {
        /// A drain with nothing to do (before the first group).
        pub(crate) fn idle() -> Drain<E> {
            Drain {
                src: std::ptr::null(),
                dst: std::ptr::null_mut(),
                dst_stride: 0,
                jw: 0,
                k: 8,
                j: 0,
            }
        }

        /// Drain for a completed `8 x jw` staging group: staging row
        /// `k` (stride `jw` from `src`) goes to `dst + k * dst_stride`.
        pub(crate) fn new(src: *const E, dst: *mut E, dst_stride: usize, jw: usize) -> Drain<E> {
            Drain {
                src,
                dst,
                dst_stride,
                jw,
                k: 0,
                j: 0,
            }
        }

        /// Copies up to `max_elems` (clipped at the current row's end)
        /// with sequential NT stores: scalar head until `dst` is
        /// 32-byte aligned, `NativeElement::stream_chunk` middle,
        /// scalar tail. Mid-row chunks are trimmed to end on a 32-byte
        /// boundary so chunk seams never mix scalar and NT stores in
        /// one cache line (each seam would cost a partial
        /// write-combining flush).
        ///
        /// # Safety
        /// The source/destination ranges promised to [`Drain::new`]
        /// must still be valid and disjoint, and the caller must have
        /// verified AVX support (the policy gate in
        /// [`super::sweep_band_hybrid_staged`] does).
        pub(crate) unsafe fn step(&mut self, max_elems: usize) {
            if self.k >= 8 {
                return;
            }
            let elem = std::mem::size_of::<E>();
            let mut n = max_elems.min(self.jw - self.j);
            let src = self.src.add(self.k * self.jw + self.j);
            let dst = self.dst.add(self.k * self.dst_stride + self.j);
            if self.j + n < self.jw {
                n -= ((dst.add(n) as usize) & 31) / elem;
            }
            let mut i = 0usize;
            while i < n && (dst.add(i) as usize) & 31 != 0 {
                *dst.add(i) = *src.add(i);
                i += 1;
            }
            let lane = 32 / elem;
            let mid = (n - i) / lane * lane;
            if mid > 0 {
                E::stream_chunk(dst.add(i), src.add(i), mid);
                i += mid;
            }
            while i < n {
                *dst.add(i) = *src.add(i);
                i += 1;
            }
            self.j += n;
            if self.j >= self.jw {
                self.j = 0;
                self.k += 1;
            }
        }

        /// Drains everything still pending.
        ///
        /// # Safety
        /// Same contract as [`Drain::step`].
        pub(crate) unsafe fn finish(&mut self) {
            while self.k < 8 {
                self.step(self.jw.max(1));
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::super::prefetch::Prefetch;
    use super::{scalar_point_hybrid, TapsHybrid, MAX_VECTOR_RADIUS};
    use std::arch::x86_64::*;

    /// In-flight non-temporal drain of one staged 8-row group. The
    /// compute loop calls [`Drain::step`] once per 8-column step, so
    /// the previous group streams out at exactly the rate the current
    /// group is produced; [`Drain::finish`] flushes whatever a clipped
    /// chunk or a short column tile left over.
    pub(super) struct Drain {
        src: *const f64,
        dst: *mut f64,
        dst_stride: usize,
        jw: usize,
        k: usize,
        j: usize,
    }

    impl Drain {
        /// A drain with nothing to do (before the first group, and for
        /// the direct-store path).
        pub(super) fn idle() -> Drain {
            Drain {
                src: std::ptr::null(),
                dst: std::ptr::null_mut(),
                dst_stride: 0,
                jw: 0,
                k: 8,
                j: 0,
            }
        }

        /// Drain for a completed `8 x jw` staging group: staging row
        /// `k` (stride `jw` from `src`) goes to `dst + k * dst_stride`.
        pub(super) fn new(src: *const f64, dst: *mut f64, dst_stride: usize, jw: usize) -> Drain {
            Drain {
                src,
                dst,
                dst_stride,
                jw,
                k: 0,
                j: 0,
            }
        }

        /// Copies up to `max_elems` (clipped at the current row's end)
        /// with sequential NT stores: scalar head until `dst` is
        /// 32-byte aligned, `movntpd` middle, scalar tail. Row-major
        /// order means consecutive steps extend one open WC stream.
        ///
        /// # Safety
        /// The source/destination ranges promised to [`Drain::new`]
        /// must still be valid and disjoint.
        #[target_feature(enable = "avx2")]
        pub(super) unsafe fn step(&mut self, max_elems: usize) {
            if self.k >= 8 {
                return;
            }
            let mut n = max_elems.min(self.jw - self.j);
            let src = self.src.add(self.k * self.jw + self.j);
            let dst = self.dst.add(self.k * self.dst_stride + self.j);
            if self.j + n < self.jw {
                // Mid-row chunks must end on a 32-byte boundary:
                // otherwise every chunk seam mixes scalar and NT stores
                // in one cache line and each seam costs a partial
                // write-combining flush (measured ~2x slower overall).
                n -= (dst.add(n) as usize & 31) >> 3;
            }
            let mut i = 0usize;
            while i < n && (dst.add(i) as usize) & 31 != 0 {
                *dst.add(i) = *src.add(i);
                i += 1;
            }
            while i + 4 <= n {
                _mm256_stream_pd(dst.add(i), _mm256_loadu_pd(src.add(i)));
                i += 4;
            }
            while i < n {
                *dst.add(i) = *src.add(i);
                i += 1;
            }
            self.j += n;
            if self.j >= self.jw {
                self.j = 0;
                self.k += 1;
            }
        }

        /// Drains everything still pending.
        ///
        /// # Safety
        /// Same contract as [`Drain::step`].
        #[target_feature(enable = "avx2")]
        pub(super) unsafe fn finish(&mut self) {
            while self.k < 8 {
                self.step(self.jw.max(1));
            }
        }
    }

    /// One 8-row group of a column tile: columns `j0 .. j0 + jw` of
    /// output rows `i0 .. i0 + 8`. Tile element `(k, j)` (`j` relative
    /// to `j0`) is stored at `out[k * out_stride + j]` — the caller
    /// points `out` either directly into the band destination or at a
    /// staging buffer. Radius is monomorphized so the step loop fully
    /// unrolls and the accumulator indices become constants. `drain`
    /// (the previous group's staged rows) is advanced by 64 elements
    /// per 8-column step, interleaving the NT stream with the loads.
    ///
    /// # Safety
    /// Caller must have verified AVX2 + FMA support and the band/halo
    /// shape contract of [`super::sweep_band_hybrid`]; `out` must be
    /// valid for the full `8 x jw` tile at stride `out_stride`; and
    /// `drain`'s ranges must be valid and disjoint from `out`.
    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn group8(
        taps: &TapsHybrid<f64>,
        a: &[f64],
        a_org: isize,
        a_stride: isize,
        j0: usize,
        jw: usize,
        out: *mut f64,
        out_stride: usize,
        i0: usize,
        pf: Prefetch,
        drain: &mut Drain,
    ) {
        match taps.r {
            1 => group8_r::<1>(
                taps, a, a_org, a_stride, j0, jw, out, out_stride, i0, pf, drain,
            ),
            2 => group8_r::<2>(
                taps, a, a_org, a_stride, j0, jw, out, out_stride, i0, pf, drain,
            ),
            3 => group8_r::<3>(
                taps, a, a_org, a_stride, j0, jw, out, out_stride, i0, pf, drain,
            ),
            4 => group8_r::<4>(
                taps, a, a_org, a_stride, j0, jw, out, out_stride, i0, pf, drain,
            ),
            _ => unreachable!("sweep_band_hybrid guards r <= MAX_VECTOR_RADIUS"),
        }
    }

    /// Figure-8 → ymm mapping: `acc[2k]` holds columns `j..j+4` and
    /// `acc[2k+1]` columns `j+4..j+8` of output row `i0 + k`. Steps
    /// `s = 0 .. 8 + 2R` each load input row `i0 + s - R` once,
    /// broadcast-FMA it into rows `max(s-2R,0)..=min(s,7)`, then retire
    /// row `s - 2R` (inner MLA partial, fold, store) as soon as it
    /// exists — so at most `2R + 1` of the 16 accumulators are hot at
    /// any step once the pipeline drains.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn group8_r<const R: usize>(
        taps: &TapsHybrid<f64>,
        a: &[f64],
        a_org: isize,
        a_stride: isize,
        j0: usize,
        jw: usize,
        out: *mut f64,
        out_stride: usize,
        i0: usize,
        pf: Prefetch,
        drain: &mut Drain,
    ) {
        debug_assert!(R <= MAX_VECTOR_RADIUS && taps.r as usize == R);
        let ap = a.as_ptr();
        // Hoist every coefficient broadcast out of the column loop: a
        // `set1` from memory inside the unrolled steps costs a load
        // per tap per step; here it is one per tap per 8-row group.
        let mut vmask = [false; 2 * MAX_VECTOR_RADIUS + 1];
        let mut cvb = [_mm256_setzero_pd(); 2 * MAX_VECTOR_RADIUS + 1];
        for t in 0..=(2 * R) {
            vmask[t] = taps.vert[t] != 0.0;
            cvb[t] = _mm256_set1_pd(taps.vert[t]);
        }
        // Inner taps as (flat offset, broadcast coefficient) pairs; 72
        // slots covers the densest vectorized stencil (radius-4 box).
        const MAX_INNER: usize =
            (2 * MAX_VECTOR_RADIUS + 1) * (2 * MAX_VECTOR_RADIUS + 1) - (2 * MAX_VECTOR_RADIUS + 1);
        debug_assert!(taps.inner.len() <= MAX_INNER);
        let mut innb = [(0isize, _mm256_setzero_pd()); MAX_INNER];
        let n_inner = taps.inner.len().min(MAX_INNER);
        for (slot, &(di, dj, c)) in innb.iter_mut().zip(&taps.inner) {
            *slot = (di * a_stride + dj, _mm256_set1_pd(c));
        }
        let ones = _mm256_set1_pd(1.0);
        // Flat index of input element (i0, j0).
        let base = a_org + i0 as isize * a_stride + j0 as isize;
        let mut j = 0usize;
        while j + 8 <= jw {
            let mut acc = [_mm256_setzero_pd(); 16];
            // The step loop MUST unroll with literal step indices: a
            // rolled loop makes `acc[2 * k]` a runtime index, LLVM
            // cannot SROA the array, and the whole 16-register tile
            // spills to the stack (measured ~20% slower on the 4096²
            // bench case). The macro emits one body per literal; steps
            // past `8 + 2R` fold away because every condition on `S`
            // is a compile-time constant.
            macro_rules! step {
                ($($s:literal)*) => {$(
                    if $s < 8 + 2 * R {
                        const { assert!($s < 16 + 2 * MAX_VECTOR_RADIUS) };
                        let s: usize = $s;
                        let p =
                            ap.offset(base + (s as isize - R as isize) * a_stride + j as isize);
                        if pf.dst_cols > 0 {
                            // Hint the tail of the row currently
                            // streaming; the store side needs no hint
                            // (plain stores allocate).
                            _mm_prefetch::<_MM_HINT_T0>(p.wrapping_add(pf.dst_cols) as *const i8);
                        }
                        let v0 = _mm256_loadu_pd(p);
                        let v1 = _mm256_loadu_pd(p.add(4));
                        for t in 0..=(2 * R) {
                            if vmask[t] && s >= t && s - t < 8 {
                                let k = s - t;
                                acc[2 * k] = _mm256_fmadd_pd(cvb[t], v0, acc[2 * k]);
                                acc[2 * k + 1] = _mm256_fmadd_pd(cvb[t], v1, acc[2 * k + 1]);
                            }
                        }
                        if s >= 2 * R {
                            let k = s - 2 * R;
                            let row = base + k as isize * a_stride + j as isize;
                            let mut p0 = _mm256_setzero_pd();
                            let mut p1 = _mm256_setzero_pd();
                            for &(off, cv) in &innb[..n_inner] {
                                let q = ap.offset(row + off);
                                p0 = _mm256_fmadd_pd(cv, _mm256_loadu_pd(q), p0);
                                p1 = _mm256_fmadd_pd(cv, _mm256_loadu_pd(q.add(4)), p1);
                            }
                            let o0 = _mm256_fmadd_pd(ones, p0, acc[2 * k]);
                            let o1 = _mm256_fmadd_pd(ones, p1, acc[2 * k + 1]);
                            let off = k * out_stride + j;
                            _mm256_storeu_pd(out.add(off), o0);
                            _mm256_storeu_pd(out.add(off + 4), o1);
                        }
                    }
                )*};
            }
            step!(0 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15);
            // One production-rate chunk of the previous group's NT
            // drain (64 elements = the 8 x 8 tile just computed).
            drain.step(64);
            j += 8;
        }
        // Column tail (< 8 columns): the scalar hybrid chain, element by
        // element — bit-identical to the vector tile.
        while j < jw {
            for k in 0..8usize {
                *out.add(k * out_stride + j) = scalar_point_hybrid(
                    taps,
                    a,
                    base + k as isize * a_stride + j as isize,
                    a_stride,
                );
            }
            j += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stencil::presets;

    #[test]
    fn taps_split_covers_every_nonzero_once() {
        for spec in presets::suite_2d() {
            let taps = TapsHybrid::<f64>::new(&spec);
            let nv = taps.vert.iter().filter(|&&c| c != 0.0).count();
            assert_eq!(nv + taps.inner.len(), spec.points(), "{}", spec.name());
            // Inner taps sorted, nonzero, never on the vertical axis.
            let mut sorted = taps.inner.clone();
            sorted.sort_by_key(|&(di, dj, _)| (di, dj));
            assert_eq!(sorted, taps.inner, "{}", spec.name());
            assert!(taps.inner.iter().all(|&(_, dj, c)| dj != 0 && c != 0.0));
        }
    }

    #[test]
    fn scalar_hybrid_chain_matches_direct_sum_closely() {
        // Sanity (not bit-exactness, which is vs the vector path): the
        // hybrid chain is a reassociation of the same tap sum.
        let spec = presets::box2d9p();
        let taps = TapsHybrid::<f64>::new(&spec);
        let stride = 8isize;
        let a: Vec<f64> = (0..64).map(|i| (i as f64).sin()).collect();
        let base = 3 * stride + 3;
        let got = scalar_point_hybrid(&taps, &a, base, stride);
        let mut want = 0.0;
        for di in -1..=1isize {
            for dj in -1..=1isize {
                want += spec.c2(di, dj) * a[(base + di * stride + dj) as usize];
            }
        }
        assert!((got - want).abs() < 1e-12);
    }

    #[test]
    fn f32_taps_narrow_the_f64_master_coefficients() {
        for spec in presets::suite_2d() {
            let t64 = TapsHybrid::<f64>::new(&spec);
            let t32 = TapsHybrid::<f32>::new(&spec);
            assert_eq!(t32.vert.len(), t64.vert.len(), "{}", spec.name());
            for (c32, c64) in t32.vert.iter().zip(&t64.vert) {
                assert_eq!(*c32, *c64 as f32, "{}", spec.name());
            }
            assert_eq!(t32.inner.len(), t64.inner.len(), "{}", spec.name());
            for (&(di32, dj32, c32), &(di64, dj64, c64)) in t32.inner.iter().zip(&t64.inner) {
                assert_eq!((di32, dj32), (di64, dj64), "{}", spec.name());
                assert_eq!(c32, c64 as f32, "{}", spec.name());
            }
        }
    }

    #[test]
    fn reuse_rows_counts_the_inner_mla_window() {
        let taps = TapsHybrid::<f64>::new(&presets::star2d5p());
        assert_eq!(taps.reuse_rows(), 4); // 2r+1 input rows + 1 store stream
    }

    #[test]
    fn nt_env_parsing() {
        assert_eq!(NtPolicy::from_env_str("direct"), Some(NtPolicy::Direct));
        assert_eq!(NtPolicy::from_env_str(" STAGED "), Some(NtPolicy::Staged));
        assert_eq!(NtPolicy::from_env_str("auto"), None);
        assert_eq!(NtPolicy::from_env_str(""), None);
        assert_eq!(NtPolicy::from_env_str("bogus"), None);
    }

    #[test]
    fn nt_malformed_values_warn_with_value_and_default() {
        let (parsed, warn) = NtPolicy::from_env_str_warn("bogus");
        assert_eq!(parsed, None);
        let warn = warn.expect("malformed value must produce a warning");
        assert!(warn.contains("HSTENCIL_NT"), "{warn}");
        assert!(warn.contains("\"bogus\""), "names the bad value: {warn}");
        assert!(warn.contains("auto policy"), "names the default: {warn}");
        // The intentional "keep auto" spellings stay silent.
        assert_eq!(NtPolicy::from_env_str_warn("auto"), (None, None));
        assert_eq!(NtPolicy::from_env_str_warn(""), (None, None));
        assert!(NtPolicy::from_env_str_warn("direct").1.is_none());
        assert!(NtPolicy::from_env_str_warn("staged").1.is_none());
    }

    #[test]
    fn staged_store_policy_is_band_and_lane_aware() {
        let big = STAGE_MIN_BAND_BYTES + 1;
        let small = STAGE_MIN_BAND_BYTES;
        // Auto: streaming bands stage while at most MAX_NT_LANES
        // concurrent NT streams exist; more lanes fall back to direct.
        assert!(staged_store_policy(None, 1, big));
        assert!(staged_store_policy(None, 2, big));
        assert!(!staged_store_policy(None, 3, big), "NT streams collide");
        assert!(!staged_store_policy(None, 8, big));
        // Auto: cache-resident bands never stage, at any lane count.
        assert!(!staged_store_policy(None, 1, small));
        assert!(!staged_store_policy(None, 2, small));
        // Pins trump both dimensions.
        for lanes in [1usize, 2, 3, 16] {
            for bytes in [small, big] {
                assert!(!staged_store_policy(Some(NtPolicy::Direct), lanes, bytes));
                assert!(staged_store_policy(Some(NtPolicy::Staged), lanes, bytes));
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn generic_drain_streams_rows_bit_exactly() {
        if !super::super::Dispatch::avx2_available() {
            eprintln!("skipping: host has no AVX for NT stores");
            return;
        }
        // Odd jw and a stride wider than jw exercise the scalar
        // head/tail around the chunked NT middle at both widths.
        fn check<E: super::super::kernel::NativeElement>(mk: impl Fn(usize) -> E) {
            let (rows, jw, dst_stride) = (8usize, 13usize, 20usize);
            let src: Vec<E> = (0..rows * jw).map(&mk).collect();
            let mut dst = vec![E::ZERO; rows * dst_stride];
            let mut drain = stage::Drain::new(src.as_ptr(), dst.as_mut_ptr(), dst_stride, jw);
            // SAFETY: ranges built above; AVX verified at entry.
            unsafe {
                drain.step(5); // partial row
                drain.step(3); // still partial
                drain.finish();
                std::arch::x86_64::_mm_sfence();
            }
            for k in 0..rows {
                for j in 0..jw {
                    assert_eq!(
                        dst[k * dst_stride + j].to_f64(),
                        src[k * jw + j].to_f64(),
                        "row {k} col {j}"
                    );
                }
            }
        }
        check::<f32>(|i| (i as f32).sin());
        check::<f64>(|i| (i as f64).sin());
    }

    #[test]
    fn generic_staged_sweep_matches_the_scalar_chain_pointwise() {
        // Small band => the auto policy keeps direct stores, but the
        // full tile/band walk (column blocking, row indexing) runs; the
        // result must equal the per-point hybrid chain exactly.
        let spec = presets::star2d5p();
        let taps = TapsHybrid::<f32>::new(&spec);
        let r = spec.radius();
        let (h, w) = (11usize, 23usize);
        let a_stride = (w + 2 * r) as isize;
        let a: Vec<f32> = (0..(h + 2 * r) * (w + 2 * r))
            .map(|i| (i as f32 * 0.37).cos())
            .collect();
        let a_org = r as isize * a_stride + r as isize;
        let mut dst = vec![0.0f32; h * w];
        sweep_band_hybrid_staged(&taps, &a, a_org, a_stride, w, &mut dst, w, 0, h, 1);
        for i in 0..h {
            for j in 0..w {
                let base = a_org + i as isize * a_stride + j as isize;
                let want = scalar_point_hybrid(&taps, &a, base, a_stride);
                assert_eq!(dst[i * w + j], want, "({i}, {j})");
            }
        }
    }
}
