//! Temporally-tiled native multi-sweep executor (DESIGN.md §9).
//!
//! [`super::time_steps_in`] ping-pongs whole-grid sweeps: every time
//! step streams the full grid from DRAM and back, so an out-of-cache
//! multi-sweep run pays `2 * sweeps` grid transfers for work that is
//! almost free once the data is in cache. This module fuses `t_block`
//! consecutive time steps into one *superstep* so each cell's bytes
//! cross the memory bus once per superstep instead of once per sweep —
//! the native analogue of the in-place accumulation the paper uses to
//! kill redundant grid round-trips (HStencil §3), generalised over time
//! like the temporal blocking already modelled by the simulated
//! `plan::run_2d_temporal` path.
//!
//! # Trapezoidal (overlapped) tiles
//!
//! A superstep decomposes the grid into `th x tw` base tiles. For a
//! tile `[tr0, tr1) x [tc0, tc1)` advanced by `steps` fused time steps,
//! level `s` (`s = 1..=steps`) computes the base region expanded by the
//! *ghost width* `g(s) = r * (steps - s)` on every side, clamped to the
//! interior:
//!
//! ```text
//!   rows [max(tr0 - g(s), 0), min(tr1 + g(s), h))
//!   cols [max(tc0 - g(s), 0), min(tc1 + g(s), w))
//! ```
//!
//! One row of level `s` needs rows/cols `±r` of level `s-1`, and
//! `g(s) + r = g(s-1)` exactly, so by induction every interior cell a
//! level reads was computed by the previous level of the *same* tile —
//! tiles never exchange intermediate data, they *recompute* the shared
//! ghost cells (the classic overlapped/trapezoidal time-tiling
//! trade: `O(g/th + g/tw)` redundant compute buys one DRAM round-trip
//! per superstep instead of one per sweep).
//!
//! Level 1 reads the global `cur` grid directly; level `steps` writes
//! its base region straight into the global `next` grid; the
//! intermediate levels ping-pong between two per-lane scratch buffers
//! (`Scratch`) sized by `tile::temporal_block` to stay L2-resident.
//!
//! ## Dirichlet frame
//!
//! Boundary cells (outside `[0,h) x [0,w)`) are held at the initial
//! halo values for every time step, exactly like the naive path. Reads
//! that reach outside the interior therefore always want `cur`'s halo
//! image, so tiles touching the boundary pre-fill the out-of-interior
//! cells of their scratch extent from `cur` once per superstep; the
//! clamped level regions never overwrite them.
//!
//! ## Bit-identity
//!
//! Every cell at every level is produced by the *same* canonical FMA
//! chain (`kernel2d::sweep_band_2d`) reading bit-identical inputs —
//! the kernels are already invariant to band/tile decomposition (pinned
//! by the dispatch bit-identity suite) — so by induction over levels a
//! superstep is **bit-identical** to `steps` sequential
//! [`super::apply_2d`] calls, pinned by the `native_temporal` property
//! suite and the conformance registry's `native-temporal` variant.
//!
//! ## Parallel structure
//!
//! Bands of tile rows go to pool lanes. A lane only reads the shared,
//! immutable `cur` grid plus its own scratch, and writes its own
//! disjoint rows of `next` — ghost recomputation replaces any
//! mid-superstep halo exchange, and the pool barrier between supersteps
//! is the only synchronisation.

use super::kernel::NativeElement;
use super::kernel2d::{self, Taps2};
use super::pool::ThreadPool;
use super::tile;
use super::Dispatch;
use crate::grid::Grid2dT;
use crate::stencil::StencilSpec;
use lx2_isa::VLEN;
use std::sync::Mutex;

/// Tuning knobs for [`time_steps_temporal_in`]. `Default` picks the
/// fused depth from the scratch cache budget and falls back to the
/// naive ping-pong when the whole working set is cache-resident anyway.
#[derive(Clone, Copy, Debug, Default)]
pub struct Temporal {
    /// Fused time steps per superstep; `None` sizes the trapezoid depth
    /// so the scratch buffers fit the L2 budget (capped at 8).
    pub t_block: Option<usize>,
    /// Run the tiled pipeline even when the working set fits in cache
    /// or the fused depth is 1 (used by the conformance variant and the
    /// benchmark so every size measures the same code path).
    pub force_pipeline: bool,
    /// Base tile `(rows, cols)` override; `None` uses the tuned
    /// defaults. Tiny tiles are valid (heavy ghost overlap, used by the
    /// tests to stress clamping) — results never change.
    pub tile: Option<(usize, usize)>,
}

/// Ping-pong working sets at most this large stay on the naive path:
/// both grids fit comfortably in cache, so fusing time steps cannot
/// reduce DRAM traffic and would only add ghost-recompute overhead.
const PIPELINE_MIN_WORKING_SET: usize = 4 * 1024 * 1024;

/// One lane's pair of scratch ping-pong buffers for the intermediate
/// time levels, sized for the widest (level-1) extent of a tile plus
/// the `r`-wide Dirichlet frame, rows `stride` elements apart.
struct Scratch<E> {
    stride: usize,
    bufs: [Vec<E>; 2],
}

impl<E: NativeElement> Scratch<E> {
    fn new(h: usize, w: usize, r: usize, t: usize, th: usize, tw: usize) -> Scratch<E> {
        if t <= 1 {
            return Scratch {
                stride: 0,
                bufs: [Vec::new(), Vec::new()],
            };
        }
        let g = r * (t - 1);
        let rows = (th + 2 * g).min(h + 2 * r);
        let cols = (tw + 2 * g).min(w + 2 * r);
        let stride = cols.div_ceil(VLEN) * VLEN;
        let len = rows * stride;
        Scratch {
            stride,
            bufs: [vec![E::ZERO; len], vec![E::ZERO; len]],
        }
    }
}

/// Advances one base tile `[tr0, tr1) x [tc0, tc1)` by `steps >= 2`
/// fused time steps: level 1 reads the global `src`, intermediate
/// levels ping-pong through `scratch`, level `steps` writes the base
/// region into `band_dst` (`band_dst[0]` = element `(band_lo, 0)`, rows
/// `dst_stride` apart).
#[allow(clippy::too_many_arguments)]
fn tile_pipeline<E: NativeElement>(
    dispatch: Dispatch,
    taps: &Taps2<E>,
    src: &[E],
    src_org: isize,
    src_stride: isize,
    h: usize,
    w: usize,
    band_dst: &mut [E],
    dst_stride: usize,
    band_lo: usize,
    (tr0, tr1): (isize, isize),
    (tc0, tc1): (isize, isize),
    steps: usize,
    scratch: &mut Scratch<E>,
    lanes: usize,
) {
    debug_assert!(steps >= 2);
    let r = taps.r;
    let (hi, wi) = (h as isize, w as isize);
    let g1 = r * (steps as isize - 1);
    // Scratch extent: the widest computed region plus the reads that
    // reach `r` beyond it, clamped to the grid plus its halo ring.
    let rr0 = (tr0 - g1).max(-r);
    let rr1 = (tr1 + g1).min(hi + r);
    let cc0 = (tc0 - g1).max(-r);
    let cc1 = (tc1 + g1).min(wi + r);
    let ss = scratch.stride as isize;
    let idx = |j: isize, i: isize| ((j - rr0) * ss + (i - cc0)) as usize;

    // Dirichlet frame: scratch cells outside the interior hold `src`'s
    // halo image for the whole superstep (levels only write clamped
    // interior regions, so one fill per tile suffices for both
    // buffers).
    if rr0 < 0 || rr1 > hi || cc0 < 0 || cc1 > wi {
        for buf in scratch.bufs.iter_mut() {
            for j in rr0..rr1 {
                let row = src_org + j * src_stride;
                let mut fill = |g0: isize, g1c: isize| {
                    buf[idx(j, g0)..idx(j, g1c)]
                        .copy_from_slice(&src[(row + g0) as usize..(row + g1c) as usize]);
                };
                if j < 0 || j >= hi {
                    fill(cc0, cc1);
                } else {
                    if cc0 < 0 {
                        fill(cc0, 0);
                    }
                    if cc1 > wi {
                        fill(wi, cc1);
                    }
                }
            }
        }
    }

    let (head, tail) = scratch.bufs.split_at_mut(1);
    let (buf_even, buf_odd) = (&mut head[0], &mut tail[0]);
    for s in 1..=steps {
        let gs = r * (steps - s) as isize;
        let (a0, a1, c0, c1) = if s == steps {
            (tr0, tr1, tc0, tc1)
        } else {
            (
                (tr0 - gs).max(0),
                (tr1 + gs).min(hi),
                (tc0 - gs).max(0),
                (tc1 + gs).min(wi),
            )
        };
        let wspan = (c1 - c0) as usize;
        // Level s writes buffer s % 2 and reads buffer (s - 1) % 2.
        let (read_buf, write_buf) = if s % 2 == 0 {
            (&*buf_odd, &mut *buf_even)
        } else {
            (&*buf_even, &mut *buf_odd)
        };
        if s == 1 {
            let off = idx(a0, c0);
            kernel2d::sweep_band_2d(
                dispatch,
                taps,
                src,
                src_org + c0,
                src_stride,
                wspan,
                &mut write_buf[off..],
                scratch.stride,
                a0 as usize,
                a1 as usize,
                lanes,
            );
        } else {
            let a_org = -rr0 * ss + (c0 - cc0);
            if s == steps {
                let off = (tr0 as usize - band_lo) * dst_stride + tc0 as usize;
                kernel2d::sweep_band_2d(
                    dispatch,
                    taps,
                    read_buf,
                    a_org,
                    ss,
                    wspan,
                    &mut band_dst[off..],
                    dst_stride,
                    tr0 as usize,
                    tr1 as usize,
                    lanes,
                );
            } else {
                let off = idx(a0, c0);
                kernel2d::sweep_band_2d(
                    dispatch,
                    taps,
                    read_buf,
                    a_org,
                    ss,
                    wspan,
                    &mut write_buf[off..],
                    scratch.stride,
                    a0 as usize,
                    a1 as usize,
                    lanes,
                );
            }
        }
    }
}

/// Advances band rows `[lo, hi)` by `steps` fused time steps: reads the
/// level-0 grid `src`, writes level `steps` into `dst` (`dst[0]` =
/// element `(lo, 0)`, rows `dst_stride` apart), walking the band in
/// `th x tw` trapezoid tiles.
#[allow(clippy::too_many_arguments)]
fn band_pipeline<E: NativeElement>(
    dispatch: Dispatch,
    taps: &Taps2<E>,
    src: &[E],
    src_org: isize,
    src_stride: isize,
    h: usize,
    w: usize,
    dst: &mut [E],
    dst_stride: usize,
    lo: usize,
    hi: usize,
    steps: usize,
    (th, tw): (usize, usize),
    scratch: &mut Scratch<E>,
    lanes: usize,
) {
    debug_assert!(steps >= 1);
    if steps == 1 {
        // Depth-1 superstep: a plain banded sweep, no scratch involved.
        kernel2d::sweep_band_2d(
            dispatch, taps, src, src_org, src_stride, w, dst, dst_stride, lo, hi, lanes,
        );
        return;
    }
    let mut tr0 = lo;
    while tr0 < hi {
        let tr1 = (tr0 + th).min(hi);
        let mut tc0 = 0usize;
        while tc0 < w {
            let tc1 = (tc0 + tw).min(w);
            tile_pipeline(
                dispatch,
                taps,
                src,
                src_org,
                src_stride,
                h,
                w,
                dst,
                dst_stride,
                lo,
                (tr0 as isize, tr1 as isize),
                (tc0 as isize, tc1 as isize),
                steps,
                scratch,
                lanes,
            );
            tc0 = tc1;
        }
        tr0 = tr1;
    }
}

/// One superstep: every band advances `steps` fused time steps from
/// `src` into `dst`. Bands own disjoint `split_at_mut` row ranges of
/// `dst` and private scratch; the pool barrier at the end is the only
/// cross-band synchronisation (the "halo exchange" is each band's
/// ghost recomputation over the shared `src` rows its trapezoids
/// cover).
#[allow(clippy::too_many_arguments)]
fn superstep<E: NativeElement>(
    pool: &ThreadPool,
    dispatch: Dispatch,
    taps: &Taps2<E>,
    src: &Grid2dT<E>,
    dst: &mut Grid2dT<E>,
    steps: usize,
    tile_hw: (usize, usize),
    scratch: &[Mutex<Scratch<E>>],
) {
    let nb = scratch.len();
    let (h, w) = (src.h(), src.w());
    let src_raw = src.raw();
    let (src_org, src_stride) = (src.origin() as isize, src.stride() as isize);
    let (b_org, b_stride) = (dst.origin(), dst.stride());
    if nb == 1 {
        let end = b_org + (h - 1) * b_stride + w;
        let dslice = &mut dst.raw_mut()[b_org..end];
        let mut sc = scratch[0].lock().unwrap_or_else(|e| e.into_inner());
        band_pipeline(
            dispatch, taps, src_raw, src_org, src_stride, h, w, dslice, b_stride, 0, h, steps,
            tile_hw, &mut sc, 1,
        );
        return;
    }

    struct Band<'a, E> {
        dst: &'a mut [E],
        lo: usize,
        hi: usize,
    }

    let mut bands: Vec<Option<Band<E>>> = Vec::with_capacity(nb);
    let mut rest = dst.raw_mut();
    let mut consumed = 0usize;
    for t in 0..nb {
        let (lo, hi) = super::lane_span(h, nb, t);
        if lo >= hi {
            break;
        }
        let start = b_org + lo * b_stride;
        let end = b_org + (hi - 1) * b_stride + w;
        let (_, tail) = rest.split_at_mut(start - consumed);
        let (band, tail2) = tail.split_at_mut(end - start);
        rest = tail2;
        consumed = end;
        bands.push(Some(Band { dst: band, lo, hi }));
    }
    let lanes = bands.len();
    let bands = Mutex::new(bands);
    pool.run(lanes, &|lane, _| {
        // A poisoned lock just means another lane panicked; the slots
        // are still per-lane disjoint, so don't cascade the panic.
        let band = bands.lock().unwrap_or_else(|e| e.into_inner())[lane].take();
        if let Some(band) = band {
            let mut sc = scratch[lane].lock().unwrap_or_else(|e| e.into_inner());
            band_pipeline(
                dispatch, taps, src_raw, src_org, src_stride, h, w, band.dst, b_stride, band.lo,
                band.hi, steps, tile_hw, &mut sc, lanes,
            );
        }
    });
}

/// [`time_steps_temporal_in`] on the shared pool with auto-tuned
/// settings — the default multi-sweep entry point
/// ([`super::time_steps`] routes here).
pub fn time_steps_temporal<E: NativeElement>(
    spec: &StencilSpec,
    init: &Grid2dT<E>,
    sweeps: usize,
    threads: usize,
) -> Grid2dT<E> {
    let threads = super::threads::resolve(threads);
    time_steps_temporal_in(
        ThreadPool::global(),
        Dispatch::for_sweep_dtype(spec, init.h(), init.w(), threads, E::DTYPE),
        spec,
        init,
        sweeps,
        threads,
        Temporal::default(),
    )
}

/// Runs `sweeps` time steps through the temporally-tiled pipeline on an
/// explicit pool, dispatch path and [`Temporal`] configuration; returns
/// the final state. Bit-identical to [`super::time_steps_in`] (and so
/// to `sweeps` sequential [`super::apply_2d`] calls) for every
/// configuration — tiling and banding only change the memory schedule,
/// never a single FMA.
///
/// Cache-resident working sets and depth-1 blocks are delegated to the
/// naive ping-pong unless `cfg.force_pipeline` is set.
pub fn time_steps_temporal_in<E: NativeElement>(
    pool: &ThreadPool,
    dispatch: Dispatch,
    spec: &StencilSpec,
    init: &Grid2dT<E>,
    sweeps: usize,
    threads: usize,
    cfg: Temporal,
) -> Grid2dT<E> {
    assert!(threads >= 1);
    assert_eq!(spec.dims(), 2);
    if sweeps == 0 {
        return init.clone();
    }
    init.check_stencil(spec.radius(), init)
        .unwrap_or_else(|e| panic!("native temporal sweep: {e}"));
    let r = spec.radius();
    let (h, w) = (init.h(), init.w());
    // Explicit cfg overrides trump the autotuner's cached plan, which
    // trumps the static defaults. The plan is only consulted when a
    // knob is actually open, so callers that pin both (the tuner's own
    // measurement loop included) never touch the cache.
    let plan = if cfg.tile.is_none() || cfg.t_block.is_none() {
        super::tune::plan_for(spec, h, w, threads, E::DTYPE)
    } else {
        None
    };
    let (th, tw) = cfg
        .tile
        .or(plan.map(|p| p.tile))
        .unwrap_or((tile::TEMPORAL_TILE_ROWS, tile::TEMPORAL_TILE_COLS));
    assert!(th >= 1 && tw >= 1, "temporal tile must be non-empty");
    let t_block = cfg
        .t_block
        .or(plan.map(|p| p.t_block))
        .unwrap_or_else(|| tile::temporal_block(sweeps, r, th, tw))
        .clamp(1, sweeps);
    let working_set = 2 * (h + 2 * init.halo()) * init.stride() * std::mem::size_of::<E>();
    if !cfg.force_pipeline && (t_block == 1 || working_set <= PIPELINE_MIN_WORKING_SET) {
        return super::time_steps_in(pool, dispatch, spec, init, sweeps, threads);
    }

    let taps = Taps2::<E>::new(spec);
    let nb = if threads == 1 || h < 2 * threads {
        1
    } else {
        threads
    };
    let scratch: Vec<Mutex<Scratch<E>>> = (0..nb)
        .map(|_| Mutex::new(Scratch::new(h, w, r, t_block, th, tw)))
        .collect();

    // First superstep reads `init` directly; the second buffer is only
    // allocated if a second superstep exists (same shape as the naive
    // path: two halo images beyond the input, never a full clone).
    let mut done = t_block;
    let mut cur = init.halo_image();
    superstep(
        pool,
        dispatch,
        &taps,
        init,
        &mut cur,
        t_block,
        (th, tw),
        &scratch,
    );
    if done < sweeps {
        let mut ping = init.halo_image();
        while done < sweeps {
            let t = t_block.min(sweeps - done);
            superstep(
                pool,
                dispatch,
                &taps,
                &cur,
                &mut ping,
                t,
                (th, tw),
                &scratch,
            );
            std::mem::swap(&mut cur, &mut ping);
            done += t;
        }
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Grid2d;
    use crate::native;
    use crate::stencil::presets;

    fn random_grid(h: usize, w: usize, halo: usize, seed: u64) -> Grid2d {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        Grid2d::from_fn(h, w, halo, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (1u64 << 31) as f64 - 1.0
        })
    }

    fn naive(spec: &StencilSpec, init: &Grid2d, sweeps: usize) -> Grid2d {
        let mut cur = init.clone();
        let mut next = init.clone();
        for _ in 0..sweeps {
            native::apply_2d(spec, &cur, &mut next);
            std::mem::swap(&mut cur, &mut next);
        }
        cur
    }

    #[test]
    fn forced_pipeline_is_bit_identical_across_depths_and_bands() {
        let pool = ThreadPool::new();
        for spec in presets::suite_2d() {
            let init = random_grid(21, 29, spec.radius(), 97);
            for sweeps in [1usize, 2, 5, 9] {
                let want = naive(&spec, &init, sweeps);
                for t_block in 1..=4 {
                    for threads in [1usize, 2, 5] {
                        let got = time_steps_temporal_in(
                            &pool,
                            Dispatch::detect(),
                            &spec,
                            &init,
                            sweeps,
                            threads,
                            Temporal {
                                t_block: Some(t_block),
                                force_pipeline: true,
                                tile: None,
                            },
                        );
                        assert_eq!(
                            want.max_interior_diff(&got),
                            0.0,
                            "{} sweeps={sweeps} t_block={t_block} threads={threads}",
                            spec.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn tiny_tiles_and_deep_blocks_are_bit_identical() {
        // Tiles far smaller than the ghost width force heavy overlap
        // and clamping in both dimensions; results never change.
        let pool = ThreadPool::new();
        for spec in [presets::star2d5p(), presets::star2d9p()] {
            let init = random_grid(23, 31, spec.radius(), 41);
            let want = naive(&spec, &init, 6);
            for tile_hw in [(4usize, 8usize), (8, 16), (64, 64)] {
                let got = time_steps_temporal_in(
                    &pool,
                    Dispatch::detect(),
                    &spec,
                    &init,
                    6,
                    3,
                    Temporal {
                        t_block: Some(4),
                        force_pipeline: true,
                        tile: Some(tile_hw),
                    },
                );
                assert_eq!(
                    want.max_interior_diff(&got),
                    0.0,
                    "{} tile={tile_hw:?}",
                    spec.name()
                );
            }
        }
    }

    #[test]
    fn auto_policy_matches_naive_on_small_grids() {
        // Below the cache threshold the auto path must delegate to (and
        // agree with) the naive ping-pong.
        let spec = presets::box2d9p();
        let init = random_grid(32, 32, 1, 11);
        let got = time_steps_temporal(&spec, &init, 6, 2);
        assert_eq!(naive(&spec, &init, 6).max_interior_diff(&got), 0.0);
    }

    #[test]
    fn zero_sweeps_returns_the_input() {
        let spec = presets::star2d5p();
        let init = random_grid(8, 8, 1, 5);
        let out = time_steps_temporal(&spec, &init, 0, 3);
        assert_eq!(init.max_interior_diff(&out), 0.0);
    }

    #[test]
    fn band_taller_than_grid_and_wide_halos_still_agree() {
        // Bands narrower than the ghost width force heavy clamping of
        // the per-level ranges; extra halo beyond the radius must be
        // carried through untouched.
        let pool = ThreadPool::new();
        let spec = presets::star2d9p(); // radius 2
        let init = random_grid(11, 13, 4, 31);
        let want = naive(&spec, &init, 7);
        let got = time_steps_temporal_in(
            &pool,
            Dispatch::detect(),
            &spec,
            &init,
            7,
            4,
            Temporal {
                t_block: Some(4),
                force_pipeline: true,
                tile: None,
            },
        );
        assert_eq!(want.max_interior_diff(&got), 0.0);
    }
}
