//! `HSTENCIL_THREADS` — process-wide lane-count override for the
//! native executor's auto entry points.
//!
//! Before this module every caller of `apply_2d_parallel` /
//! `apply_3d_parallel` / `time_steps` hard-coded a thread count, so the
//! only way to run a binary saturated (or pinned single-threaded for a
//! clean baseline) was to edit and rebuild it. `HSTENCIL_THREADS=<n>`
//! now pins the lane count process-wide with the same conventions as
//! `HSTENCIL_PREFETCH` / `HSTENCIL_DISPATCH`:
//!
//! * the variable is read **once** per process ([`env_override`]),
//! * `auto` (or empty/unset) keeps the caller's request,
//! * a malformed value (including `0` — a zero-lane sweep cannot run)
//!   warns **once** on stderr, naming the bad value and the fallback,
//!   and keeps the caller's request.
//!
//! Like `HSTENCIL_DISPATCH`, the override applies to the *auto* entry
//! points only: the explicit-pool `*_in` variants always honor their
//! `threads` argument, so the bench scaling tier and the conformance
//! registry can measure exact lane counts regardless of environment.
//! Thread count can never change results — every kernel is invariant to
//! band decomposition (pinned by the bit-identity suites) — so the
//! override only moves speed.

use std::sync::OnceLock;

/// Parses an `HSTENCIL_THREADS` value: a positive integer pins the lane
/// count, `auto`/empty/unset keeps the caller's request (`None`), and
/// anything else (including `0`) is malformed — `None` plus a warning
/// that names the value and the fallback.
pub fn from_env_str_warn(v: Option<&str>) -> (Option<usize>, Option<String>) {
    let s = match v.map(str::trim) {
        None | Some("") => return (None, None),
        Some(s) if s.eq_ignore_ascii_case("auto") => return (None, None),
        Some(s) => s,
    };
    match s.parse::<usize>() {
        Ok(n) if n >= 1 => (Some(n), None),
        _ => (
            None,
            Some(format!(
                "hstencil: ignoring malformed HSTENCIL_THREADS={s:?} \
                 (expected auto|<positive lane count>); using the caller's thread count"
            )),
        ),
    }
}

/// [`from_env_str_warn`] without the warning text.
pub fn from_env_str(v: Option<&str>) -> Option<usize> {
    from_env_str_warn(v).0
}

/// The process-wide `HSTENCIL_THREADS` override (env read once through
/// `super::env::cached`; malformed values warn on stderr once and
/// keep the caller's count).
pub fn env_override() -> Option<usize> {
    static OVERRIDE: OnceLock<Option<usize>> = OnceLock::new();
    super::env::cached(&OVERRIDE, "HSTENCIL_THREADS", from_env_str_warn)
}

/// The lane count an auto entry point should run with: the
/// `HSTENCIL_THREADS` pin when set, otherwise the caller's request.
pub fn resolve(requested: usize) -> usize {
    env_override().unwrap_or(requested)
}

/// The lane count for callers with no opinion of their own: the
/// `HSTENCIL_THREADS` pin when set, otherwise every hardware thread
/// ([`std::thread::available_parallelism`]). This is what the bench
/// scaling tier uses as its "all cores" point.
pub fn auto() -> usize {
    env_override().unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_parsing() {
        assert_eq!(from_env_str(None), None);
        assert_eq!(from_env_str(Some("")), None);
        assert_eq!(from_env_str(Some("auto")), None);
        assert_eq!(from_env_str(Some(" AUTO ")), None);
        assert_eq!(from_env_str(Some("1")), Some(1));
        assert_eq!(from_env_str(Some(" 8 ")), Some(8));
        assert_eq!(from_env_str(Some("0")), None);
        assert_eq!(from_env_str(Some("-2")), None);
        assert_eq!(from_env_str(Some("lots")), None);
    }

    #[test]
    fn malformed_values_warn_with_value_and_fallback() {
        for bad in ["bogus", "0", "-1", "1.5"] {
            let (parsed, warn) = from_env_str_warn(Some(bad));
            assert_eq!(parsed, None, "{bad}");
            let warn = warn.expect("malformed value must produce a warning");
            assert!(warn.contains("HSTENCIL_THREADS"), "{warn}");
            assert!(
                warn.contains(&format!("{bad:?}")),
                "names the value: {warn}"
            );
            assert!(warn.contains("caller's thread count"), "fallback: {warn}");
        }
        // Well-formed and intentionally-empty values stay silent.
        for ok in [None, Some(""), Some("auto"), Some("4")] {
            assert!(from_env_str_warn(ok).1.is_none(), "{ok:?}");
        }
    }
}
