//! Seeded autotuner with a persisted plan cache (DESIGN.md §10).
//!
//! PR 4 hard-coded the native executor's scheduling choices: which
//! micro-kernel family runs a sweep ([`Dispatch::for_width`]), the
//! temporal trapezoid tile and the fused depth (`tile.rs` defaults).
//! This module makes them data-driven: a [`Plan`] per
//! **(pattern, radius, shape class, dtype, thread count)** key records
//! the dispatch, the temporal tile geometry and the `t_block` that
//! measured fastest on *this* host, persisted as JSON so later
//! processes (and the bench suite) reuse the decision without
//! re-measuring. The thread count is part of the key because the
//! winning schedule changes with lane count (concurrent NT streams,
//! per-lane cache share): before schema v2 a dispatch tuned
//! single-threaded silently governed saturated sweeps. The element
//! type is part of the key (schema v3) because the winning schedule
//! changes with element width too — an f32 sweep crosses the
//! streaming threshold at twice the grid area and has no hybrid
//! vector body, so an f64 plan must never govern it. v1 files (no
//! thread dimension) *and* v2 files (no dtype dimension) are rejected
//! as stale on load and re-tuned, never misapplied; within a current
//! document a row whose key carries a malformed dtype segment is
//! dropped row-wise, not the whole file.
//!
//! # Modes (`HSTENCIL_TUNE`, read once per process)
//!
//! * **`off`** — never consult or write a plan; every decision falls
//!   back to the PR 4 heuristics bit-for-bit (the escape hatch the
//!   acceptance criteria pin).
//! * **`force`** — on the first sweep per key, micro-benchmark the
//!   candidate grid ([`candidates`]) with the testkit timer, memoize
//!   the winner and persist the whole set to the default cache path.
//! * **`<path>`** — consult (never write) the plan file at `path`.
//! * **unset/empty** — consult (never write) the default cache path,
//!   `target/hstencil-tune.json`; a missing file simply means "no
//!   plans". Tier-1 `cargo test` therefore never runs the tuner: only
//!   an explicit `HSTENCIL_TUNE=force` measures anything.
//!
//! # Determinism
//!
//! Candidate enumeration is a fixed cross product, the measurement grid
//! is seeded from `TESTKIT_SEED` (testkit Xoshiro256**), ties keep the
//! first candidate, and [`run_tuner_with`] takes the measurement
//! function as an argument — the determinism property test injects a
//! synthetic cost model and asserts the same seed yields the same
//! persisted plan, byte for byte, without depending on wall-clock
//! noise.
//!
//! Plans are host-specific (they encode measured speed, and a plan
//! recorded with AVX2 degrades gracefully to "no plan" when the file
//! moves to a machine without it).
//!
//! [`Dispatch::for_width`]: super::Dispatch::for_width

use super::pool::ThreadPool;
use super::temporal::{self, Temporal};
use super::tile;
use super::Dispatch;
use crate::element::Dtype;
use crate::grid::Grid2d;
use crate::stencil::{Pattern, StencilSpec};
use hstencil_testkit::{Json, Rng, Summary, ToJson, Xoshiro256};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock};

/// Working-set classes a plan is keyed on. The boundary matches the
/// temporal executor's pipeline threshold: two grids above ~4 MiB no
/// longer fit the private caches of this host class.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ShapeClass {
    /// Both ping-pong grids fit in cache.
    Resident,
    /// The sweep streams from DRAM/L3.
    Streaming,
}

impl ShapeClass {
    /// Classifies an `h x w` double-buffered working set of `dtype`
    /// elements. The boundary is in *bytes*, so an f32 grid stays
    /// resident at twice the f64 area.
    pub fn of_dtype(h: usize, w: usize, dtype: Dtype) -> ShapeClass {
        if 2 * h * w * dtype.size() > 4 * 1024 * 1024 {
            ShapeClass::Streaming
        } else {
            ShapeClass::Resident
        }
    }

    /// [`ShapeClass::of_dtype`] at the reference `f64` width.
    pub fn of(h: usize, w: usize) -> ShapeClass {
        ShapeClass::of_dtype(h, w, Dtype::F64)
    }

    fn label(self) -> &'static str {
        match self {
            ShapeClass::Resident => "resident",
            ShapeClass::Streaming => "streaming",
        }
    }
}

/// The cache key: stencil pattern, radius, shape class, element type,
/// thread count.
pub fn plan_key(spec: &StencilSpec, class: ShapeClass, dtype: Dtype, threads: usize) -> String {
    let pattern = match spec.pattern() {
        Pattern::Star => "star",
        Pattern::Box => "box",
    };
    format!(
        "{pattern}/r{}/{}/{}/t{threads}",
        spec.radius(),
        class.label(),
        dtype.label()
    )
}

/// True when `key` carries the full schema-v3 shape: a dtype segment
/// that [`Dtype::from_label`] recognises, followed by the `/t<lanes>`
/// thread dimension. v1 keys (neither), v2 keys (no dtype) and
/// hand-edited keys with a malformed dtype all fail this and are
/// dropped row-wise on parse.
fn key_has_v3_shape(key: &str) -> bool {
    let mut segs = key.rsplit('/');
    let threads_ok = segs
        .next()
        .and_then(|seg| seg.strip_prefix('t'))
        .is_some_and(|n| !n.is_empty() && n.bytes().all(|b| b.is_ascii_digit()));
    let dtype_ok = segs.next().is_some_and(|d| Dtype::from_label(d).is_some());
    threads_ok && dtype_ok
}

/// One tuned decision: which kernel family sweeps, and the temporal
/// executor's tile geometry / fused depth.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Plan {
    /// Kernel family for sweeps under this key.
    pub dispatch: Dispatch,
    /// Temporal trapezoid base tile `(rows, cols)`.
    pub tile: (usize, usize),
    /// Fused time steps per temporal superstep.
    pub t_block: usize,
}

impl Plan {
    fn to_json(self, key: &str) -> Json {
        Json::object([
            ("key", key.to_json()),
            ("dispatch", self.dispatch.label().to_json()),
            ("tile_rows", self.tile.0.to_json()),
            ("tile_cols", self.tile.1.to_json()),
            ("t_block", self.t_block.to_json()),
        ])
    }

    fn from_json(row: &Json) -> Option<(String, Plan)> {
        let key = row.get("key")?.as_str()?.to_string();
        let dispatch = Dispatch::from_env_str(row.get("dispatch")?.as_str()?)?;
        let tile_rows = row.get("tile_rows")?.as_f64()? as usize;
        let tile_cols = row.get("tile_cols")?.as_f64()? as usize;
        let t_block = row.get("t_block")?.as_f64()? as usize;
        if tile_rows == 0 || tile_cols == 0 || t_block == 0 {
            return None;
        }
        Some((
            key,
            Plan {
                dispatch,
                tile: (tile_rows, tile_cols),
                t_block,
            },
        ))
    }
}

/// The persisted schema version. v1 keys had no thread dimension, so a
/// plan tuned at one lane count governed every other; v2 added
/// `/t<lanes>` but no element type, so an f64 plan governed f32 sweeps;
/// v3 inserts the dtype segment. v1 *and* v2 documents are rejected as
/// stale (and re-tuned), never misapplied.
pub const SCHEMA_VERSION: u64 = 3;

/// The persisted plan cache: key → [`Plan`], with a JSON round-trip via
/// the testkit value model.
#[derive(Default, Clone, Debug, PartialEq)]
pub struct PlanSet {
    plans: BTreeMap<String, Plan>,
}

impl PlanSet {
    /// The plan stored under `key`, if any.
    pub fn get(&self, key: &str) -> Option<Plan> {
        self.plans.get(key).copied()
    }

    /// Stores (or replaces) the plan under `key`.
    pub fn insert(&mut self, key: String, plan: Plan) {
        self.plans.insert(key, plan);
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// True when no plan is cached.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }

    /// Serializes the set (stable order — `BTreeMap` keys — so equal
    /// sets render byte-identically).
    pub fn render(&self) -> String {
        let doc = Json::object([
            ("tool", "hstencil-tune".to_json()),
            ("version", SCHEMA_VERSION.to_json()),
            (
                "plans",
                Json::array(self.plans.iter().map(|(k, p)| p.to_json(k))),
            ),
        ]);
        doc.to_pretty() + "\n"
    }

    /// Parses a rendered set. Documents from another schema version are
    /// an error — v1 files (no thread dimension) and v2 files (no dtype
    /// dimension) are stale rather than portable: silently keeping them
    /// would let a plan tuned at one lane count or element width govern
    /// every other. Within a current document, unknown keys are
    /// ignored, rows whose key lacks the v3 shape (including a
    /// malformed dtype segment) are dropped row-wise — never the whole
    /// file — and entries whose dispatch cannot run on this host are
    /// dropped (a plan file is host-specific, not portable).
    pub fn parse(text: &str) -> Result<PlanSet, String> {
        let doc = Json::parse(text).map_err(|e| e.to_string())?;
        if doc.get("tool").and_then(Json::as_str) != Some("hstencil-tune") {
            return Err("missing or wrong 'tool' tag".into());
        }
        let version = doc.get("version").and_then(Json::as_f64);
        if version != Some(SCHEMA_VERSION as f64) {
            return Err(format!(
                "stale or unknown schema version {version:?} (want {SCHEMA_VERSION};                  pre-dtype-key plans must be re-tuned, not reused)"
            ));
        }
        let rows = doc
            .get("plans")
            .and_then(Json::as_array)
            .ok_or("'plans' is not an array")?;
        let mut set = PlanSet::default();
        for row in rows {
            if let Some((key, plan)) = Plan::from_json(row) {
                if key_has_v3_shape(&key) {
                    set.plans.insert(key, plan);
                }
            }
        }
        Ok(set)
    }
}

/// One point of the tuner's search grid.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Candidate {
    /// Kernel family.
    pub dispatch: Dispatch,
    /// Temporal trapezoid base tile `(rows, cols)`.
    pub tile: (usize, usize),
    /// Fused time steps per superstep.
    pub t_block: usize,
}

/// The deterministic candidate grid for one shape class:
/// {best canonical kernel, hybrid 8×8} × tile geometries × `t_block`
/// depths. Order is fixed — the tuner breaks cost ties by keeping the
/// earliest candidate, so enumeration order is part of the determinism
/// contract.
pub fn candidates(class: ShapeClass) -> Vec<Candidate> {
    let dispatches = [
        if Dispatch::avx2_available() {
            Dispatch::Avx2Fma
        } else {
            Dispatch::Scalar
        },
        Dispatch::Hybrid,
    ];
    let tiles = tile::temporal_tile_candidates();
    let t_blocks: &[usize] = match class {
        // Cache-resident runs gain nothing from deep fusion.
        ShapeClass::Resident => &[1, 4],
        ShapeClass::Streaming => &[4, 8],
    };
    let mut out = Vec::new();
    for &dispatch in &dispatches {
        for &tile in &tiles {
            for &t_block in t_blocks {
                out.push(Candidate {
                    dispatch,
                    tile,
                    t_block,
                });
            }
        }
    }
    out
}

/// Picks the cheapest candidate under `measure` (lower is better; ties
/// keep the earliest). The measurement function is injected so the
/// property suite can drive the tuner with a synthetic, fully
/// deterministic cost model; production uses [`measure_wall_clock`].
pub fn run_tuner_with(class: ShapeClass, measure: &mut dyn FnMut(&Candidate) -> f64) -> Plan {
    let mut best: Option<(f64, Candidate)> = None;
    for cand in candidates(class) {
        let cost = measure(&cand);
        if best.is_none_or(|(b, _)| cost < b) {
            best = Some((cost, cand));
        }
    }
    let (_, c) = best.expect("candidate grid is never empty");
    Plan {
        dispatch: c.dispatch,
        tile: c.tile,
        t_block: c.t_block,
    }
}

/// The `TESTKIT_SEED` override, or the testkit default.
fn tune_seed() -> u64 {
    std::env::var("TESTKIT_SEED")
        .ok()
        .and_then(|t| {
            let t = t.trim();
            t.strip_prefix("0x")
                .map(|h| u64::from_str_radix(h, 16).ok())
                .unwrap_or_else(|| t.parse().ok())
        })
        .unwrap_or(0x5EED_0001)
}

/// Wall-clock cost of one candidate: a `t_block`-deep forced temporal
/// superstep over a representative grid of the key's shape class
/// (normalized per fused sweep), timed with the testkit bench summary
/// (median of 3). Exercises the candidate's kernel, tile geometry and
/// fused depth in one number — at the key's own `threads`, so a plan
/// records the schedule that actually won at that lane count.
pub fn measure_wall_clock(
    spec: &StencilSpec,
    class: ShapeClass,
    threads: usize,
) -> impl FnMut(&Candidate) -> f64 {
    let (h, w) = match class {
        ShapeClass::Resident => (192usize, 192usize),
        ShapeClass::Streaming => (1280usize, 1280usize),
    };
    let mut rng = Xoshiro256::seed_from_u64(tune_seed());
    let grid = Grid2d::from_fn(h, w, spec.radius(), |_, _| rng.gen_range(-1.0..1.0));
    let spec = spec.clone();
    move |cand| {
        let sweeps = cand.t_block;
        let samples: Vec<f64> = (0..3)
            .map(|_| {
                let t0 = std::time::Instant::now();
                let out = temporal::time_steps_temporal_in(
                    ThreadPool::global(),
                    cand.dispatch,
                    &spec,
                    &grid,
                    sweeps,
                    threads,
                    Temporal {
                        t_block: Some(cand.t_block),
                        force_pipeline: true,
                        tile: Some(cand.tile),
                    },
                );
                std::hint::black_box(&out);
                t0.elapsed().as_secs_f64()
            })
            .collect();
        Summary::from_samples(&samples).median / sweeps as f64
    }
}

/// How the process resolved `HSTENCIL_TUNE`.
enum Mode {
    Off,
    Force,
    File(PathBuf),
}

fn default_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/hstencil-tune.json")
}

fn mode() -> &'static Mode {
    static MODE: OnceLock<Mode> = OnceLock::new();
    MODE.get_or_init(|| match std::env::var("HSTENCIL_TUNE").ok().as_deref() {
        Some("off") | Some("OFF") | Some("0") => Mode::Off,
        Some("force") => Mode::Force,
        Some(p) if !p.trim().is_empty() => Mode::File(PathBuf::from(p)),
        _ => Mode::File(default_path()),
    })
}

/// True unless `HSTENCIL_TUNE=off` — gates both plan lookups and the
/// streaming-shape hybrid heuristic in [`Dispatch::for_sweep`], so
/// `off` restores the PR 4 decision tree bit-for-bit.
///
/// [`Dispatch::for_sweep`]: super::Dispatch::for_sweep
pub fn enabled() -> bool {
    !matches!(mode(), Mode::Off)
}

/// The process-wide plan cache (loaded from the mode's file once; the
/// `force` mode also extends and persists it).
fn cache() -> &'static Mutex<PlanSet> {
    static CACHE: OnceLock<Mutex<PlanSet>> = OnceLock::new();
    CACHE.get_or_init(|| {
        let path = match mode() {
            Mode::Off => return Mutex::new(PlanSet::default()),
            Mode::Force => default_path(),
            Mode::File(p) => p.clone(),
        };
        let set = match std::fs::read_to_string(&path) {
            Ok(text) => match PlanSet::parse(&text) {
                Ok(set) => set,
                Err(e) => {
                    eprintln!(
                        "hstencil: ignoring stale or malformed tune cache {}: {e}",
                        path.display()
                    );
                    PlanSet::default()
                }
            },
            // Missing file = no plans; only `force` ever creates it.
            Err(_) => PlanSet::default(),
        };
        Mutex::new(set)
    })
}

fn persist(set: &PlanSet, path: &Path) {
    let write = || -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let tmp = path.with_extension("json.tmp");
        std::fs::write(&tmp, set.render())?;
        std::fs::rename(&tmp, path)
    };
    if let Err(e) = write() {
        eprintln!(
            "hstencil: could not persist tune cache {}: {e}",
            path.display()
        );
    }
}

/// The cached plan for a 2-D sweep of `spec` over an `h x w` grid of
/// `dtype` elements split across `threads` lanes, or `None` when tuning
/// is off / nothing is recorded for the key. In `force` mode an `f64`
/// miss runs the wall-clock tuner once (at the key's own lane count),
/// memoizes the winner and persists the cache; `f32` keys are consulted
/// but never auto-tuned — the measurement loop runs the reference-width
/// grids only, so an `f32` plan comes from an explicitly provided file
/// (or a future tuner extension), never from an `f64` measurement
/// mislabelled as `f32`.
pub fn plan_for(
    spec: &StencilSpec,
    h: usize,
    w: usize,
    threads: usize,
    dtype: Dtype,
) -> Option<Plan> {
    if spec.dims() != 2 {
        return None;
    }
    let force = match mode() {
        Mode::Off => return None,
        Mode::Force => true,
        Mode::File(_) => false,
    };
    let class = ShapeClass::of_dtype(h, w, dtype);
    let key = plan_key(spec, class, dtype, threads);
    let mut set = cache().lock().unwrap_or_else(|e| e.into_inner());
    if let Some(plan) = set.get(&key) {
        return Some(plan);
    }
    if !force || dtype != Dtype::F64 {
        return None;
    }
    let mut measure = measure_wall_clock(spec, class, threads);
    let plan = run_tuner_with(class, &mut measure);
    set.insert(key, plan);
    persist(&set, &default_path());
    Some(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stencil::presets;

    #[test]
    fn shape_class_boundary() {
        assert_eq!(ShapeClass::of(256, 256), ShapeClass::Resident);
        assert_eq!(ShapeClass::of(4096, 4096), ShapeClass::Streaming);
        // 2 * 512 * 512 * 8 = 4 MiB exactly — still resident.
        assert_eq!(ShapeClass::of(512, 512), ShapeClass::Resident);
        assert_eq!(ShapeClass::of(513, 512), ShapeClass::Streaming);
        // The boundary is byte-denominated: f32 grids stay resident at
        // twice the f64 area.
        assert_eq!(
            ShapeClass::of_dtype(513, 512, Dtype::F32),
            ShapeClass::Resident
        );
        assert_eq!(
            ShapeClass::of_dtype(1025, 512, Dtype::F32),
            ShapeClass::Streaming
        );
        assert_eq!(
            ShapeClass::of_dtype(513, 512, Dtype::F64),
            ShapeClass::of(513, 512)
        );
    }

    #[test]
    fn plan_keys_are_stable_dtype_and_thread_aware() {
        let star = presets::star2d5p();
        let boxs = presets::box2d25p();
        assert_eq!(
            plan_key(&star, ShapeClass::Streaming, Dtype::F64, 1),
            "star/r1/streaming/f64/t1"
        );
        assert_eq!(
            plan_key(&star, ShapeClass::Streaming, Dtype::F32, 4),
            "star/r1/streaming/f32/t4"
        );
        assert_eq!(
            plan_key(&boxs, ShapeClass::Resident, Dtype::F64, 16),
            "box/r2/resident/f64/t16"
        );
        // Distinct lane counts and distinct dtypes are distinct cache
        // entries.
        assert_ne!(
            plan_key(&star, ShapeClass::Streaming, Dtype::F64, 1),
            plan_key(&star, ShapeClass::Streaming, Dtype::F64, 4)
        );
        assert_ne!(
            plan_key(&star, ShapeClass::Streaming, Dtype::F64, 1),
            plan_key(&star, ShapeClass::Streaming, Dtype::F32, 1)
        );
        for threads in [1usize, 2, 4, 96] {
            for dtype in [Dtype::F32, Dtype::F64] {
                assert!(key_has_v3_shape(&plan_key(
                    &star,
                    ShapeClass::Streaming,
                    dtype,
                    threads
                )));
            }
        }
        // v1 (no thread dim), v2 (no dtype) and malformed-dtype keys
        // all fail the v3 shape check.
        assert!(!key_has_v3_shape("star/r1/streaming"));
        assert!(!key_has_v3_shape("star/r1/streaming/t4"));
        assert!(!key_has_v3_shape("star/r1/streaming/f64/t"));
        assert!(!key_has_v3_shape("star/r1/streaming/f64/tx4"));
        assert!(!key_has_v3_shape("star/r1/streaming/f16/t4"));
        assert!(!key_has_v3_shape("star/r1/streaming/double/t4"));
    }

    #[test]
    fn candidate_grid_is_deterministic_and_covers_hybrid() {
        let a = candidates(ShapeClass::Streaming);
        let b = candidates(ShapeClass::Streaming);
        assert_eq!(a, b);
        assert!(a.iter().any(|c| c.dispatch == Dispatch::Hybrid));
        assert!(a.iter().any(|c| c.dispatch != Dispatch::Hybrid));
        assert!(a.len() >= 4);
    }

    #[test]
    fn tuner_picks_argmin_and_breaks_ties_by_order() {
        // Synthetic cost model: hybrid always 1.0, everything else 2.0.
        let mut measure = |c: &Candidate| {
            if c.dispatch == Dispatch::Hybrid {
                1.0
            } else {
                2.0
            }
        };
        let plan = run_tuner_with(ShapeClass::Streaming, &mut measure);
        assert_eq!(plan.dispatch, Dispatch::Hybrid);
        // Ties keep the earliest candidate: with a constant model the
        // winner is exactly candidates()[0].
        let mut flat = |_: &Candidate| 1.0;
        let first = candidates(ShapeClass::Streaming)[0];
        let plan = run_tuner_with(ShapeClass::Streaming, &mut flat);
        assert_eq!(
            (plan.dispatch, plan.tile, plan.t_block),
            (first.dispatch, first.tile, first.t_block)
        );
    }

    #[test]
    fn plan_set_round_trips_byte_identically() {
        let mut set = PlanSet::default();
        set.insert(
            "star/r1/streaming/f64/t1".into(),
            Plan {
                dispatch: Dispatch::Hybrid,
                tile: (128, 512),
                t_block: 8,
            },
        );
        set.insert(
            "star/r1/streaming/f32/t4".into(),
            Plan {
                dispatch: Dispatch::Scalar,
                tile: (128, 512),
                t_block: 4,
            },
        );
        set.insert(
            "box/r2/resident/f64/t2".into(),
            Plan {
                dispatch: Dispatch::Scalar,
                tile: (64, 512),
                t_block: 1,
            },
        );
        let text = set.render();
        let back = PlanSet::parse(&text).unwrap();
        assert_eq!(back, set);
        assert_eq!(back.render(), text, "stable byte-for-byte rendering");
    }

    #[test]
    fn parse_rejects_foreign_documents() {
        assert!(PlanSet::parse("{}").is_err());
        assert!(PlanSet::parse("not json").is_err());
        assert!(PlanSet::parse("{\"tool\":\"hstencil-tune\",\"version\":3,\"plans\":4}").is_err());
    }

    #[test]
    fn parse_rejects_stale_v1_documents() {
        // The exact shape PR 5 persisted: version 1, keys without a
        // thread dimension. Reusing such a plan would let a
        // single-thread tuning govern saturated sweeps, so the file is
        // rejected as stale (the loader warns and re-tunes), never
        // partially applied.
        let v1 = "{\"tool\":\"hstencil-tune\",\"version\":1,\"plans\":[\
                  {\"key\":\"star/r1/streaming\",\"dispatch\":\"hybrid8x8\",\
                  \"tile_rows\":128,\"tile_cols\":512,\"t_block\":8}]}";
        let err = PlanSet::parse(v1).unwrap_err();
        assert!(err.contains("stale"), "{err}");
        assert!(err.contains("version"), "{err}");
        // Versionless documents are equally stale.
        let v0 = "{\"tool\":\"hstencil-tune\",\"plans\":[]}";
        assert!(PlanSet::parse(v0).is_err());
    }

    #[test]
    fn parse_rejects_stale_v2_documents() {
        // The exact shape PR 6 persisted: version 2, thread-keyed but
        // dtype-free. An f64-tuned plan must not govern f32 sweeps, so
        // the whole document is stale — the loader warns once, falls
        // back to an empty set, and `force` mode re-tunes from scratch.
        let v2 = "{\"tool\":\"hstencil-tune\",\"version\":2,\"plans\":[\
                  {\"key\":\"star/r1/streaming/t4\",\"dispatch\":\"hybrid8x8\",\
                  \"tile_rows\":128,\"tile_cols\":512,\"t_block\":8}]}";
        let err = PlanSet::parse(v2).unwrap_err();
        assert!(err.contains("stale"), "{err}");
        assert!(err.contains("version"), "{err}");
        assert!(err.contains("re-tuned"), "{err}");
    }

    #[test]
    fn parse_drops_malformed_dtype_rows_row_wise() {
        // A current-version document smuggling dtype-free or
        // unknown-dtype keys (hand-edited, or merged from an old file)
        // has those rows dropped individually — the well-formed rows in
        // the same file survive.
        let text = "{\"tool\":\"hstencil-tune\",\"version\":3,\"plans\":[\
                    {\"key\":\"star/r1/streaming/t2\",\"dispatch\":\"scalar\",\
                    \"tile_rows\":128,\"tile_cols\":512,\"t_block\":8},\
                    {\"key\":\"star/r1/streaming/f16/t2\",\"dispatch\":\"scalar\",\
                    \"tile_rows\":128,\"tile_cols\":512,\"t_block\":8},\
                    {\"key\":\"star/r1/streaming/f32/t2\",\"dispatch\":\"scalar\",\
                    \"tile_rows\":128,\"tile_cols\":512,\"t_block\":8},\
                    {\"key\":\"star/r1/streaming/f64/t2\",\"dispatch\":\"scalar\",\
                    \"tile_rows\":128,\"tile_cols\":512,\"t_block\":8}]}";
        let set = PlanSet::parse(text).unwrap();
        assert_eq!(set.len(), 2, "only the dtype-valid rows survive");
        assert!(set.get("star/r1/streaming/t2").is_none());
        assert!(set.get("star/r1/streaming/f16/t2").is_none());
        assert!(set.get("star/r1/streaming/f32/t2").is_some());
        assert!(set.get("star/r1/streaming/f64/t2").is_some());
    }

    #[test]
    fn parse_drops_unrunnable_entries() {
        // A dispatch label this host cannot run (or garbage) is dropped,
        // not an error — plan files are host-specific.
        let text = "{\"tool\":\"hstencil-tune\",\"version\":3,\"plans\":[\
                    {\"key\":\"star/r1/streaming/f64/t1\",\"dispatch\":\"riscv-rvv\",\
                    \"tile_rows\":128,\"tile_cols\":512,\"t_block\":8}]}";
        let set = PlanSet::parse(text).unwrap();
        assert!(set.is_empty());
    }

    #[test]
    fn rendered_sets_round_trip_through_the_current_version() {
        // What render() writes, parse() accepts — the old-format
        // rejection above must never bite the current writer.
        let mut set = PlanSet::default();
        set.insert(
            "box/r1/streaming/f64/t8".into(),
            Plan {
                dispatch: Dispatch::Scalar,
                tile: (64, 256),
                t_block: 2,
            },
        );
        let text = set.render();
        assert!(text.contains("\"version\": 3"), "{text}");
        assert_eq!(PlanSet::parse(&text).unwrap(), set);
    }
}
