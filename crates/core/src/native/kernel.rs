//! The backend-generic register-tile kernel interface.
//!
//! The paper's central claim (HStencil §3) is that the interleaved
//! outer-product + MLA schedule maps onto *any* wide-vector engine; this
//! module is that claim as a Rust trait. [`TileKernel`] abstracts "sweep
//! a register tile of output rows over preprocessed taps", and each
//! (ISA × element type) backend is one instance:
//!
//! | instance      | `f64`                | `f32`                 |
//! |---------------|----------------------|-----------------------|
//! | [`ScalarTile`]| canonical FMA chain  | canonical FMA chain   |
//! | [`Avx2Tile`]  | 2×8 cols, 4-lane ymm | 2×16 cols, 8-lane ymm |
//! | [`Avx512Tile`]| 2×16 cols, 8-lane zmm| 2×32 cols, 16-lane zmm|
//! | [`HybridTile`]| 8×8 Algorithm-2 tile | scalar chain + staged NT |
//!
//! # The bit-identity contract
//!
//! Every instance computes each output element as the *same* fused
//! multiply-add chain over the nonzero taps in canonical `(di, dj)`
//! ascending order starting from zero. `_mm256_fmadd_pd`,
//! `_mm512_fmadd_pd` and `f64::mul_add` (and their `f32` counterparts)
//! all round once per step, so within one element type every
//! non-hybrid instance is **bit-identical** to the scalar chain
//! regardless of vector width — dispatch can change speed, never
//! results. The hybrid instance reassociates (vertical rank-1 + folded
//! inner partial) and is ULP-bounded instead, exactly as before the
//! trait existed.
//!
//! # Why associated kernel types instead of `impl<E> TileKernel<E>`
//!
//! Stable Rust has no specialization, so one generic impl per backend
//! could not give `f64` and `f32` different intrinsic bodies.
//! [`NativeElement`] names the four backend instances per element type
//! (`KScalar`/`KAvx2`/`KAvx512`/`KHybrid`); generic drivers pick an
//! instance through those associated types and monomorphize to exactly
//! the hand-written code that existed before the refactor.

use super::kernel2d;
use super::kernel3d;
use super::prefetch::Prefetch;
use super::{hybrid, tile, Dispatch};
use crate::element::Element;

pub use super::kernel2d::Taps2;
pub use super::kernel3d::Taps3;

/// Register-tile geometry of one [`TileKernel`] instance, in elements:
/// output rows per `execute` step (`tile_m`), vector lanes per
/// accumulator (`tile_n`) and accumulators per output row (`unroll`).
///
/// `tile_m >= 2` is the signal the generic band driver uses to walk
/// output rows in pairs (the register-blocking reuse the paper's
/// Algorithm 2 relies on); the other two fields are diagnostic — they
/// describe the instance's main-loop shape for tooling and tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Config {
    /// Output rows computed per `execute` step.
    pub tile_m: usize,
    /// Vector lanes per accumulator register.
    pub tile_n: usize,
    /// Accumulator registers per output row in the main loop.
    pub unroll: usize,
}

/// One register-tile kernel backend for element type `E`.
///
/// Instances are zero-sized types; all methods are associated functions
/// so a backend is selected purely at the type level (see
/// [`NativeElement`]) and monomorphizes with no dynamic dispatch.
pub trait TileKernel<E: Element> {
    /// The accumulator register type of the main loop (`__m256d`,
    /// `__m512`, or `E` itself for the scalar chain). Diagnostic: it
    /// documents what the instance keeps live across the tap chain.
    type Acc: Copy;

    /// Stable instance name (matches [`Dispatch::label`] where a
    /// dispatch exists, and the `HSTENCIL_KERNEL` spellings).
    const NAME: &'static str;

    /// Register-tile geometry of this instance.
    fn config() -> Config;

    /// True when this host can run the instance (runtime ISA
    /// detection; the scalar instance is always available).
    fn available() -> bool;

    /// Computes one or two output-row segments. `base` is the flat
    /// index of the first output element's center in `a`; `dst1`, when
    /// present, is the row directly below `dst0` (equal length).
    ///
    /// # Safety
    ///
    /// Caller must have verified [`TileKernel::available`] (the body
    /// may execute ISA extensions), and `a` must cover every tap read
    /// of both rows (the padded-grid halo contract).
    unsafe fn execute(
        taps: &Taps2<E>,
        a: &[E],
        base: isize,
        stride: isize,
        dst0: &mut [E],
        dst1: Option<&mut [E]>,
        pf: Prefetch,
    );

    /// The 3-D analogue of [`TileKernel::execute`] over `(dk, di, dj)`
    /// taps. The default is the canonical scalar chain — bit-identical
    /// to every SIMD body by the module contract — so 2-D-only
    /// instances (AVX-512, which `Dispatch::narrow_3d` maps away
    /// anyway) need not provide one.
    ///
    /// # Safety
    ///
    /// Same contract as [`TileKernel::execute`], with `a` covering the
    /// plane-neighbour reads too.
    unsafe fn execute3(
        taps: &Taps3<E>,
        a: &[E],
        base: isize,
        plane_stride: isize,
        stride: isize,
        dst0: &mut [E],
        dst1: Option<&mut [E]>,
    ) {
        let _ = plane_stride;
        kernel3d::scalar_row3(taps, a, base, plane_stride, stride, dst0);
        if let Some(d1) = dst1 {
            kernel3d::scalar_row3(taps, a, base + stride, plane_stride, stride, d1);
        }
    }

    /// Sweeps output rows `i_lo .. i_hi` of a band: `dst[0]` is element
    /// `(i_lo, 0)` of the output, rows `b_stride` apart, `a_org` the
    /// flat index of `(0, 0)` in `a`. `lanes` is the number of pool
    /// lanes sweeping sibling bands (feeds store policy only; can
    /// never change results).
    ///
    /// The default driver reproduces the pre-trait band walk exactly:
    /// cache-sized column tiles (`tile::col_block`), and within a
    /// tile either single rows (`tile_m == 1`) or the split-borrow row
    /// pair walk (`tile_m >= 2`). The hybrid instance overrides this
    /// wholesale — its 8-row schedule owns its own tiling and store
    /// policy.
    #[allow(clippy::too_many_arguments)]
    fn sweep_band(
        taps: &Taps2<E>,
        a: &[E],
        a_org: isize,
        a_stride: isize,
        w: usize,
        dst: &mut [E],
        b_stride: usize,
        i_lo: usize,
        i_hi: usize,
        lanes: usize,
    ) {
        let _ = lanes; // only the hybrid store policy is lane-aware
        assert!(
            Self::available(),
            "{} dispatch forced on a machine without it",
            Self::NAME
        );
        let pair_rows = Self::config().tile_m >= 2;
        let cb = tile::col_block(w, taps.rows_in_flight(), std::mem::size_of::<E>());
        let mut j0 = 0usize;
        while j0 < w {
            let jw = cb.min(w - j0);
            let pf = Prefetch::config();
            let mut i = i_lo;
            while i < i_hi {
                let base = a_org + i as isize * a_stride + j0 as isize;
                let off = (i - i_lo) * b_stride + j0;
                if pair_rows && i + 1 < i_hi {
                    let (head, tail) = dst.split_at_mut(off + b_stride);
                    // SAFETY: availability asserted above; the slices
                    // cover both row segments of the pair.
                    unsafe {
                        Self::execute(
                            taps,
                            a,
                            base,
                            a_stride,
                            &mut head[off..off + jw],
                            Some(&mut tail[..jw]),
                            pf,
                        );
                    }
                    i += 2;
                } else {
                    // SAFETY: as above, single-row case.
                    unsafe {
                        Self::execute(taps, a, base, a_stride, &mut dst[off..off + jw], None, pf);
                    }
                    i += 1;
                }
            }
            j0 += jw;
        }
    }
}

/// An element type the native executor can drive end-to-end: names the
/// four backend instances (working around the absence of
/// specialization) and provides the non-temporal store primitive the
/// generic staged-NT drain is built on.
pub trait NativeElement: Element {
    /// The always-available canonical-chain instance.
    type KScalar: TileKernel<Self>;
    /// The AVX2+FMA instance (scalar-delegating off x86-64).
    type KAvx2: TileKernel<Self>;
    /// The AVX-512F instance (scalar-delegating off x86-64).
    type KAvx512: TileKernel<Self>;
    /// The hybrid 8-row Algorithm-2 instance.
    type KHybrid: TileKernel<Self>;

    /// Streams `n` elements from `src` to 32-byte-aligned `dst` with
    /// non-temporal stores (`n * size_of::<Self>()` must be a multiple
    /// of 32). The per-dtype primitive under the generic staged-NT
    /// drain (`super::hybrid`).
    ///
    /// # Safety
    ///
    /// `dst` must be 32-byte aligned, both ranges valid for `n`
    /// elements, and the host must support AVX (implied by the AVX2
    /// gate on every staged path).
    #[cfg(target_arch = "x86_64")]
    unsafe fn stream_chunk(dst: *mut Self, src: *const Self, n: usize);
}

impl NativeElement for f64 {
    type KScalar = ScalarTile;
    type KAvx2 = Avx2Tile;
    type KAvx512 = Avx512Tile;
    type KHybrid = HybridTile;

    #[cfg(target_arch = "x86_64")]
    unsafe fn stream_chunk(dst: *mut Self, src: *const Self, n: usize) {
        stream_chunk_pd(dst, src, n);
    }
}

impl NativeElement for f32 {
    type KScalar = ScalarTile;
    type KAvx2 = Avx2Tile;
    type KAvx512 = Avx512Tile;
    type KHybrid = HybridTile;

    #[cfg(target_arch = "x86_64")]
    unsafe fn stream_chunk(dst: *mut Self, src: *const Self, n: usize) {
        stream_chunk_ps(dst, src, n);
    }
}

/// # Safety
/// `dst` 32-byte aligned, `n` a multiple of 4, both ranges valid.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn stream_chunk_pd(dst: *mut f64, src: *const f64, n: usize) {
    use std::arch::x86_64::*;
    let mut i = 0usize;
    while i + 4 <= n {
        _mm256_stream_pd(dst.add(i), _mm256_loadu_pd(src.add(i)));
        i += 4;
    }
    debug_assert_eq!(i, n);
}

/// # Safety
/// `dst` 32-byte aligned, `n` a multiple of 8, both ranges valid.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn stream_chunk_ps(dst: *mut f32, src: *const f32, n: usize) {
    use std::arch::x86_64::*;
    let mut i = 0usize;
    while i + 8 <= n {
        _mm256_stream_ps(dst.add(i), _mm256_loadu_ps(src.add(i)));
        i += 8;
    }
    debug_assert_eq!(i, n);
}

/// The canonical scalar-chain instance (every dtype, every host).
#[derive(Clone, Copy, Debug)]
pub struct ScalarTile;

/// The AVX2+FMA register-pair instance (2 output rows per step).
#[derive(Clone, Copy, Debug)]
pub struct Avx2Tile;

/// The AVX-512F register-pair instance (double the AVX2 lane count;
/// runtime-detected, never chosen by auto-heuristics — reach it via
/// `HSTENCIL_KERNEL=avx512`, the tuner, or explicit dispatch).
#[derive(Clone, Copy, Debug)]
pub struct Avx512Tile;

/// The hybrid 8-row Algorithm-2 instance (vertical rank-1 broadcast-FMA
/// interleaved with inner-tap vector MLA, staged NT stores on streaming
/// bands).
#[derive(Clone, Copy, Debug)]
pub struct HybridTile;

impl<E: Element> TileKernel<E> for ScalarTile {
    type Acc = E;
    const NAME: &'static str = "scalar";

    fn config() -> Config {
        Config {
            tile_m: 1,
            tile_n: 1,
            unroll: 1,
        }
    }

    fn available() -> bool {
        true
    }

    unsafe fn execute(
        taps: &Taps2<E>,
        a: &[E],
        base: isize,
        stride: isize,
        dst0: &mut [E],
        dst1: Option<&mut [E]>,
        _pf: Prefetch,
    ) {
        kernel2d::scalar_row(&taps.flat, a, base, stride, dst0);
        if let Some(d1) = dst1 {
            kernel2d::scalar_row(&taps.flat, a, base + stride, stride, d1);
        }
    }
}

#[cfg(target_arch = "x86_64")]
impl TileKernel<f64> for Avx2Tile {
    type Acc = std::arch::x86_64::__m256d;
    const NAME: &'static str = "avx2+fma";

    fn config() -> Config {
        Config {
            tile_m: 2,
            tile_n: 4,
            unroll: 2,
        }
    }

    fn available() -> bool {
        Dispatch::avx2_available()
    }

    unsafe fn execute(
        taps: &Taps2<f64>,
        a: &[f64],
        base: isize,
        stride: isize,
        dst0: &mut [f64],
        dst1: Option<&mut [f64]>,
        pf: Prefetch,
    ) {
        match dst1 {
            Some(d1) => kernel2d::avx2::row_pair(taps, a, base, stride, dst0, d1, pf),
            None => kernel2d::avx2::row_single(taps, a, base, stride, dst0, pf),
        }
    }

    unsafe fn execute3(
        taps: &Taps3<f64>,
        a: &[f64],
        base: isize,
        plane_stride: isize,
        stride: isize,
        dst0: &mut [f64],
        dst1: Option<&mut [f64]>,
    ) {
        match dst1 {
            Some(d1) => kernel3d::avx2::row_pair(taps, a, base, plane_stride, stride, dst0, d1),
            None => kernel3d::avx2::row_single(taps, a, base, plane_stride, stride, dst0),
        }
    }
}

#[cfg(target_arch = "x86_64")]
impl TileKernel<f32> for Avx2Tile {
    type Acc = std::arch::x86_64::__m256;
    const NAME: &'static str = "avx2+fma";

    fn config() -> Config {
        Config {
            tile_m: 2,
            tile_n: 8,
            unroll: 2,
        }
    }

    fn available() -> bool {
        Dispatch::avx2_available()
    }

    unsafe fn execute(
        taps: &Taps2<f32>,
        a: &[f32],
        base: isize,
        stride: isize,
        dst0: &mut [f32],
        dst1: Option<&mut [f32]>,
        pf: Prefetch,
    ) {
        match dst1 {
            Some(d1) => kernel2d::avx2::row_pair_f32(taps, a, base, stride, dst0, d1, pf),
            None => kernel2d::avx2::row_single_f32(taps, a, base, stride, dst0, pf),
        }
    }

    // execute3: scalar-chain default (bit-identical). The 3-D f32 path
    // has no bespoke SIMD body yet; DESIGN.md §12 records the gap.
}

#[cfg(target_arch = "x86_64")]
impl TileKernel<f64> for Avx512Tile {
    type Acc = std::arch::x86_64::__m512d;
    const NAME: &'static str = "avx512";

    fn config() -> Config {
        Config {
            tile_m: 2,
            tile_n: 8,
            unroll: 2,
        }
    }

    fn available() -> bool {
        Dispatch::avx512_available()
    }

    unsafe fn execute(
        taps: &Taps2<f64>,
        a: &[f64],
        base: isize,
        stride: isize,
        dst0: &mut [f64],
        dst1: Option<&mut [f64]>,
        pf: Prefetch,
    ) {
        match dst1 {
            Some(d1) => kernel2d::avx512::row_pair_f64(taps, a, base, stride, dst0, d1, pf),
            None => kernel2d::avx512::row_single_f64(taps, a, base, stride, dst0, pf),
        }
    }

    // execute3: scalar-chain default — AVX-512 is a 2-D instance and
    // Dispatch::narrow_3d maps it away before any 3-D sweep.
}

#[cfg(target_arch = "x86_64")]
impl TileKernel<f32> for Avx512Tile {
    type Acc = std::arch::x86_64::__m512;
    const NAME: &'static str = "avx512";

    fn config() -> Config {
        Config {
            tile_m: 2,
            tile_n: 16,
            unroll: 2,
        }
    }

    fn available() -> bool {
        Dispatch::avx512_available()
    }

    unsafe fn execute(
        taps: &Taps2<f32>,
        a: &[f32],
        base: isize,
        stride: isize,
        dst0: &mut [f32],
        dst1: Option<&mut [f32]>,
        pf: Prefetch,
    ) {
        match dst1 {
            Some(d1) => kernel2d::avx512::row_pair_f32(taps, a, base, stride, dst0, d1, pf),
            None => kernel2d::avx512::row_single_f32(taps, a, base, stride, dst0, pf),
        }
    }
}

/// Off x86-64 the SIMD instances delegate to the scalar chain (still
/// bit-identical) and report themselves unavailable, mirroring how
/// `Dispatch::avx2_available()` gates dispatch there.
#[cfg(not(target_arch = "x86_64"))]
impl<E: Element> TileKernel<E> for Avx2Tile {
    type Acc = E;
    const NAME: &'static str = "avx2+fma";

    fn config() -> Config {
        <ScalarTile as TileKernel<E>>::config()
    }

    fn available() -> bool {
        false
    }

    unsafe fn execute(
        taps: &Taps2<E>,
        a: &[E],
        base: isize,
        stride: isize,
        dst0: &mut [E],
        dst1: Option<&mut [E]>,
        pf: Prefetch,
    ) {
        <ScalarTile as TileKernel<E>>::execute(taps, a, base, stride, dst0, dst1, pf);
    }
}

/// See the non-x86 [`Avx2Tile`] impl: unavailable, scalar-delegating.
#[cfg(not(target_arch = "x86_64"))]
impl<E: Element> TileKernel<E> for Avx512Tile {
    type Acc = E;
    const NAME: &'static str = "avx512";

    fn config() -> Config {
        <ScalarTile as TileKernel<E>>::config()
    }

    fn available() -> bool {
        false
    }

    unsafe fn execute(
        taps: &Taps2<E>,
        a: &[E],
        base: isize,
        stride: isize,
        dst0: &mut [E],
        dst1: Option<&mut [E]>,
        pf: Prefetch,
    ) {
        <ScalarTile as TileKernel<E>>::execute(taps, a, base, stride, dst0, dst1, pf);
    }
}

impl TileKernel<f64> for HybridTile {
    type Acc = f64; // 16 ymm accumulators on x86; Acc documents one lane group
    const NAME: &'static str = "hybrid8x8";

    fn config() -> Config {
        Config {
            tile_m: 8,
            tile_n: 4,
            unroll: 2,
        }
    }

    fn available() -> bool {
        true // scalar-chain fallback inside sweep_band_hybrid
    }

    unsafe fn execute(
        taps: &Taps2<f64>,
        a: &[f64],
        base: isize,
        stride: isize,
        dst0: &mut [f64],
        dst1: Option<&mut [f64]>,
        _pf: Prefetch,
    ) {
        hybrid::scalar_row_hybrid(&taps.hybrid, a, base, stride, dst0);
        if let Some(d1) = dst1 {
            hybrid::scalar_row_hybrid(&taps.hybrid, a, base + stride, stride, d1);
        }
    }

    fn sweep_band(
        taps: &Taps2<f64>,
        a: &[f64],
        a_org: isize,
        a_stride: isize,
        w: usize,
        dst: &mut [f64],
        b_stride: usize,
        i_lo: usize,
        i_hi: usize,
        lanes: usize,
    ) {
        // The hybrid schedule owns its own column tiling (its
        // rows-in-flight differ), accumulation order and store policy.
        hybrid::sweep_band_hybrid(
            &taps.hybrid,
            a,
            a_org,
            a_stride,
            w,
            dst,
            b_stride,
            i_lo,
            i_hi,
            lanes,
        );
    }
}

impl TileKernel<f32> for HybridTile {
    type Acc = f32;
    const NAME: &'static str = "hybrid8x8";

    fn config() -> Config {
        Config {
            tile_m: 8,
            tile_n: 1,
            unroll: 1,
        }
    }

    fn available() -> bool {
        true
    }

    unsafe fn execute(
        taps: &Taps2<f32>,
        a: &[f32],
        base: isize,
        stride: isize,
        dst0: &mut [f32],
        dst1: Option<&mut [f32]>,
        _pf: Prefetch,
    ) {
        hybrid::scalar_row_hybrid(&taps.hybrid, a, base, stride, dst0);
        if let Some(d1) = dst1 {
            hybrid::scalar_row_hybrid(&taps.hybrid, a, base + stride, stride, d1);
        }
    }

    fn sweep_band(
        taps: &Taps2<f32>,
        a: &[f32],
        a_org: isize,
        a_stride: isize,
        w: usize,
        dst: &mut [f32],
        b_stride: usize,
        i_lo: usize,
        i_hi: usize,
        lanes: usize,
    ) {
        // f32 has no vectorized 8x8 body yet: the hybrid *schedule*
        // (scalar chain + the generic staged-NT drain) still runs, so
        // the store-policy machinery is exercised over E = f32.
        hybrid::sweep_band_hybrid_staged::<f32>(
            &taps.hybrid,
            a,
            a_org,
            a_stride,
            w,
            dst,
            b_stride,
            i_lo,
            i_hi,
            lanes,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_describe_the_register_tiles() {
        assert_eq!(<ScalarTile as TileKernel<f64>>::config().tile_m, 1);
        assert_eq!(<HybridTile as TileKernel<f64>>::config().tile_m, 8);
        #[cfg(target_arch = "x86_64")]
        {
            // f32 doubles lanes at equal register width.
            let a2_64 = <Avx2Tile as TileKernel<f64>>::config();
            let a2_32 = <Avx2Tile as TileKernel<f32>>::config();
            assert_eq!(a2_32.tile_n, 2 * a2_64.tile_n);
            let a5_64 = <Avx512Tile as TileKernel<f64>>::config();
            let a5_32 = <Avx512Tile as TileKernel<f32>>::config();
            assert_eq!(a5_64.tile_n, 2 * a2_64.tile_n);
            assert_eq!(a5_32.tile_n, 2 * a2_32.tile_n);
        }
    }

    #[test]
    fn scalar_is_always_available_and_named() {
        assert!(<ScalarTile as TileKernel<f64>>::available());
        assert!(<ScalarTile as TileKernel<f32>>::available());
        assert_eq!(<ScalarTile as TileKernel<f64>>::NAME, "scalar");
        assert_eq!(<Avx512Tile as TileKernel<f64>>::NAME, "avx512");
    }
}
