//! Cache-block sweep tiling.
//!
//! The micro-kernels walk each band in column tiles so that the set of
//! input rows a tile touches stays resident in cache while every output
//! row of the band streams over it. On out-of-cache grids (e.g. the
//! 4096² bench case, 32 KiB per row) an untiled sweep would evict each
//! input row between the output rows that reuse it; tiling turns those
//! re-reads into cache hits.
//!
//! Tiling never changes results: the per-element FMA chain is the same
//! regardless of which tile a column lands in.

/// Cache budget one column tile should fit in, in bytes. Half a typical
/// 256 KiB L2 slice — leaves room for the output rows and prefetch
/// streams.
const TILE_TARGET_BYTES: usize = 128 * 1024;

/// Column-tile width (in elements) for a sweep whose kernel keeps
/// `rows_in_flight` grid rows live per tile. Always a multiple of 8
/// (one full AVX2 unroll) unless the grid itself is narrower, at least
/// 64 columns so tile edges stay rare, and never wider than the grid.
pub(crate) fn col_block(w: usize, rows_in_flight: usize) -> usize {
    let cap = w.max(1);
    let bytes_per_col = rows_in_flight.max(1) * std::mem::size_of::<f64>();
    let raw = TILE_TARGET_BYTES / bytes_per_col;
    let aligned = raw - raw % 8;
    aligned.clamp(cap.min(64), cap)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_never_exceeds_width() {
        for w in [1, 7, 63, 64, 100, 4096, 1 << 20] {
            for rows in [3, 6, 30, 1000] {
                let b = col_block(w, rows);
                assert!(b >= 1 && b <= w, "w={w} rows={rows} b={b}");
            }
        }
    }

    #[test]
    fn block_is_simd_aligned_when_wide() {
        let b = col_block(1 << 20, 6);
        assert_eq!(b % 8, 0);
        assert!(b >= 64);
        // 6 rows * 8 B/col * block fits the tile budget.
        assert!(6 * 8 * b <= TILE_TARGET_BYTES);
    }

    #[test]
    fn narrow_grids_get_one_tile() {
        assert_eq!(col_block(40, 6), 40);
        assert_eq!(col_block(3, 1000), 3);
    }

    #[test]
    fn huge_stencils_still_get_a_minimum_tile() {
        // Even when rows_in_flight blows the budget, keep >= 64 cols.
        assert_eq!(col_block(4096, 100_000), 64);
    }
}
