//! Cache-block sweep tiling.
//!
//! The micro-kernels walk each band in column tiles so that the set of
//! input rows a tile touches stays resident in cache while every output
//! row of the band streams over it. On out-of-cache grids (e.g. the
//! 4096² bench case, 32 KiB per row) an untiled sweep would evict each
//! input row between the output rows that reuse it; tiling turns those
//! re-reads into cache hits.
//!
//! Tiling never changes results: the per-element FMA chain is the same
//! regardless of which tile a column lands in.

/// Cache budget one column tile should fit in, in bytes. Half a typical
/// 256 KiB L2 slice — leaves room for the output rows and prefetch
/// streams.
const TILE_TARGET_BYTES: usize = 128 * 1024;

/// Column-tile width (in elements) for a sweep whose kernel keeps
/// `rows_in_flight` grid rows of `elem_bytes`-wide elements live per
/// tile. Always a multiple of 8 (one full vector unroll at every
/// supported width) unless the grid itself is narrower, at least 64
/// columns so tile edges stay rare, and never wider than the grid.
/// Narrower elements fit proportionally more columns in the same cache
/// budget — an f32 sweep gets twice the f64 tile width.
pub(crate) fn col_block(w: usize, rows_in_flight: usize, elem_bytes: usize) -> usize {
    let cap = w.max(1);
    let bytes_per_col = rows_in_flight.max(1) * elem_bytes.max(1);
    let raw = TILE_TARGET_BYTES / bytes_per_col;
    let aligned = raw - raw % 8;
    aligned.clamp(cap.min(64), cap)
}

/// Cache budget for the temporal pipeline's two scratch ping-pong
/// buffers, in bytes. Sized so that at the default `t_block` the
/// scratch levels plus the in-flight source/destination rows stay
/// inside this host class's ~2 MiB private L2 with headroom for the
/// prefetch streams.
const SCRATCH_TARGET_BYTES: usize = 1_280 * 1024;

/// Hard cap on fused time steps per superstep. Beyond this the ghost
/// zone `g = r * (t - 1)` makes overlap recomputation dominate without
/// buying more DRAM-traffic reduction.
const T_BLOCK_CAP: usize = 8;

/// Default trapezoid tile height (grid rows) for the temporal
/// pipeline's base region, before the `r * (t - s)` ghost expansion.
pub(crate) const TEMPORAL_TILE_ROWS: usize = 128;

/// Default trapezoid tile width (grid columns). Wider than tall so the
/// level-1 DRAM reads and final-level stores stream in long contiguous
/// runs (4 KiB per row at the default width).
pub(crate) const TEMPORAL_TILE_COLS: usize = 512;

/// The temporal tile geometries the autotuner measures
/// (`native::tune`): the PR 4 default first (the tie-break winner), a
/// half-height variant that halves ghost recompute rows, and a
/// double-width variant that doubles the contiguous stream length.
pub(crate) fn temporal_tile_candidates() -> [(usize, usize); 3] {
    [
        (TEMPORAL_TILE_ROWS, TEMPORAL_TILE_COLS),
        (TEMPORAL_TILE_ROWS / 2, TEMPORAL_TILE_COLS),
        (TEMPORAL_TILE_ROWS, TEMPORAL_TILE_COLS * 2),
    ]
}

/// Element count (padded to a vector) of one scratch buffer for a
/// `t`-deep trapezoid over a `th x tw` base tile at radius `r`: the
/// widest level-1 extent `tile + 2 * r * (t - 1)` plus the `r`-wide
/// Dirichlet frame on each side.
pub(crate) fn temporal_scratch_elems(r: usize, t: usize, th: usize, tw: usize) -> usize {
    let g = r * (t.saturating_sub(1)) + r;
    let rows = th + 2 * g;
    let stride = (tw + 2 * g).div_ceil(8) * 8;
    rows * stride
}

/// Fused time steps per superstep for the temporal pipeline: the
/// largest `t` whose two ping-pong scratch buffers (sized by
/// [`temporal_scratch_elems`] for a `th x tw` tile) fit
/// [`SCRATCH_TARGET_BYTES`], clamped to `1..=T_BLOCK_CAP` and never
/// more than `sweeps`.
pub(crate) fn temporal_block(sweeps: usize, r: usize, th: usize, tw: usize) -> usize {
    let fits = |t: usize| {
        2 * temporal_scratch_elems(r, t, th, tw) * std::mem::size_of::<f64>()
            <= SCRATCH_TARGET_BYTES
    };
    let mut t = 1usize;
    while t < T_BLOCK_CAP && t < sweeps && fits(t + 1) {
        t += 1;
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_never_exceeds_width() {
        for w in [1, 7, 63, 64, 100, 4096, 1 << 20] {
            for rows in [3, 6, 30, 1000] {
                for elem in [4usize, 8] {
                    let b = col_block(w, rows, elem);
                    assert!(b >= 1 && b <= w, "w={w} rows={rows} elem={elem} b={b}");
                }
            }
        }
    }

    #[test]
    fn block_is_simd_aligned_when_wide() {
        let b = col_block(1 << 20, 6, 8);
        assert_eq!(b % 8, 0);
        assert!(b >= 64);
        // 6 rows * 8 B/col * block fits the tile budget.
        assert!(6 * 8 * b <= TILE_TARGET_BYTES);
    }

    #[test]
    fn narrower_elements_widen_the_tile() {
        // Same cache budget, half the bytes per column: the f32 tile
        // is (up to 8-alignment) twice the f64 tile.
        let b64 = col_block(1 << 20, 6, 8);
        let b32 = col_block(1 << 20, 6, 4);
        assert!(b32 >= 2 * b64 - 8, "b32={b32} b64={b64}");
        assert!(6 * 4 * b32 <= TILE_TARGET_BYTES);
    }

    #[test]
    fn narrow_grids_get_one_tile() {
        assert_eq!(col_block(40, 6, 8), 40);
        assert_eq!(col_block(3, 1000, 8), 3);
    }

    #[test]
    fn huge_stencils_still_get_a_minimum_tile() {
        // Even when rows_in_flight blows the budget, keep >= 64 cols.
        assert_eq!(col_block(4096, 100_000, 8), 64);
    }

    #[test]
    fn scratch_elems_cover_the_widest_level_and_its_frame() {
        // r=1, t=8 trapezoid over the default tile: level 1 spans
        // tile + 2*7 rows/cols and reads reach one more cell out.
        let e = temporal_scratch_elems(1, 8, TEMPORAL_TILE_ROWS, TEMPORAL_TILE_COLS);
        assert_eq!(e, (128 + 16) * (512 + 16));
        // Stride stays vector-aligned for odd extents.
        assert_eq!(temporal_scratch_elems(1, 2, 10, 10) % 8, 0);
    }

    #[test]
    fn temporal_block_respects_sweeps_cap_and_budget() {
        let (th, tw) = (TEMPORAL_TILE_ROWS, TEMPORAL_TILE_COLS);
        // Never more fused steps than sweeps requested.
        assert_eq!(temporal_block(1, 1, th, tw), 1);
        assert_eq!(temporal_block(3, 1, th, tw), 3);
        // r=1 over the default tile: both scratch buffers at the cap
        // depth are ~1.2 MiB, inside the budget -> full cap.
        assert_eq!(temporal_block(100, 1, th, tw), T_BLOCK_CAP);
        // Wider stencils pay 2r per fused step in both dimensions and
        // lose some depth, but still fuse usefully.
        let t = temporal_block(100, 2, th, tw);
        assert!((4..T_BLOCK_CAP).contains(&t), "t={t}");
        // Enormous tiles: even depth 2 blows the budget -> plain sweeps.
        assert_eq!(temporal_block(100, 1, 4096, 4096), 1);
        // Degenerate sweeps=0 still yields a sane t=1.
        assert_eq!(temporal_block(0, 1, th, tw), 1);
    }
}
