//! A spawn-once persistent worker pool for the native executor.
//!
//! The seed executor re-entered `std::thread::scope` on every sweep, so a
//! 100-step `time_steps` call paid 100 × `threads` OS thread spawns. This
//! pool spawns each worker exactly once and reuses it for every
//! subsequent sweep: jobs are dispatched over per-worker channels and
//! completion is collected over a per-run channel, which doubles as the
//! barrier that makes borrowing stack data from jobs sound.
//!
//! Zero-dependency by design (DESIGN.md §6): `std::thread` +
//! `std::sync::mpsc` only.
//!
//! ```
//! use hstencil_core::native::pool::ThreadPool;
//! use std::sync::atomic::{AtomicUsize, Ordering};
//!
//! let pool = ThreadPool::new();
//! let hits = AtomicUsize::new(0);
//! for _ in 0..10 {
//!     pool.run(4, &|lane, lanes| {
//!         assert!(lane < lanes);
//!         hits.fetch_add(1, Ordering::Relaxed);
//!     });
//! }
//! assert_eq!(hits.load(Ordering::Relaxed), 40);
//! // 10 runs at 4 lanes, but only 3 threads ever spawned (lane 0 is
//! // the caller).
//! assert_eq!(pool.spawned_threads(), 3);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Mutex, OnceLock};
use std::thread::JoinHandle;

/// The function type jobs run: `f(lane, lanes)` with `lane` in
/// `0..lanes`. Lane 0 always executes on the calling thread.
type JobFn<'a> = dyn Fn(usize, usize) + Sync + 'a;

/// A unit of work sent to one worker. The raw pointer erases the
/// caller's borrow lifetime; [`ThreadPool::run`] blocks until every job
/// has signalled `done`, so the pointee outlives every dereference.
struct Job {
    f: *const JobFn<'static>,
    lane: usize,
    lanes: usize,
    done: Sender<usize>,
}

// SAFETY: the closure behind `f` is `Sync` (shared by all lanes) and
// `run` keeps the borrow alive until all `done` messages arrive.
unsafe impl Send for Job {}

enum Message {
    Run(Job),
    Exit,
}

/// Reported on the done channel instead of a lane index when the lane's
/// job panicked (the worker catches the unwind, so its thread — and the
/// pool — outlive the panic; the caller re-raises after the barrier).
const LANE_PANICKED: usize = usize::MAX;

/// The barrier that makes [`ThreadPool::run`]'s lifetime erasure sound.
///
/// Counts jobs actually handed to workers and refuses to let the owning
/// frame end — normally *or by unwind* — until each one has reported
/// `done` (its lane index, or [`LANE_PANICKED`]) or been dropped (a
/// worker *thread* dying drops its job, and with `tx` released that
/// closes the channel). `Drop` runs the same drain, so a panic in the
/// lane-0 closure or mid-dispatch cannot outrun workers still holding
/// the erased borrow.
struct DrainGuard {
    /// Our keep-alive clone source; dropped at the start of the drain
    /// so `recv` returning `Err` can only mean "no job holds a sender".
    tx: Option<Sender<usize>>,
    rx: Receiver<usize>,
    /// Jobs successfully sent whose `done` has not been received yet.
    outstanding: usize,
    worker_panicked: bool,
}

impl DrainGuard {
    fn drain(&mut self) {
        self.tx.take();
        while self.outstanding > 0 {
            match self.rx.recv() {
                Ok(LANE_PANICKED) => {
                    // The lane's job panicked but its worker caught the
                    // unwind and reported in: the barrier advances and
                    // the panic is re-raised after it (never from here —
                    // drain also runs from Drop during unwind, where
                    // panicking would abort).
                    self.outstanding -= 1;
                    self.worker_panicked = true;
                }
                Ok(_) => self.outstanding -= 1,
                // All senders gone with jobs still outstanding: a worker
                // *thread* died mid-job without reporting (not a caught
                // job panic — something unwound the worker loop itself)
                // and dropped its job. No job can touch the borrow any
                // more, so the barrier is satisfied; record the failure.
                Err(_) => {
                    self.outstanding = 0;
                    self.worker_panicked = true;
                }
            }
        }
    }
}

impl Drop for DrainGuard {
    fn drop(&mut self) {
        self.drain();
    }
}

struct Worker {
    tx: Sender<Message>,
    handle: Option<JoinHandle<()>>,
}

/// A persistent worker pool. Workers are spawned lazily on first demand
/// and then reused for every later [`ThreadPool::run`]; dropping the
/// pool shuts them down.
pub struct ThreadPool {
    /// Guarded worker list; also serializes runs so two concurrent
    /// `run` calls never interleave jobs on the same workers.
    workers: Mutex<Vec<Worker>>,
    /// Total OS threads ever spawned by this pool (monotonic).
    spawned: AtomicUsize,
}

impl ThreadPool {
    /// An empty pool; no threads are spawned until the first
    /// [`ThreadPool::run`] that needs them.
    pub fn new() -> ThreadPool {
        ThreadPool {
            workers: Mutex::new(Vec::new()),
            spawned: AtomicUsize::new(0),
        }
    }

    /// The process-wide shared pool used by the `native` executor
    /// entry points.
    pub fn global() -> &'static ThreadPool {
        static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
        GLOBAL.get_or_init(ThreadPool::new)
    }

    /// Total OS threads this pool has ever spawned. A sweep loop that
    /// reuses the pool leaves this constant across iterations — the
    /// property `time_steps` tests assert.
    pub fn spawned_threads(&self) -> usize {
        self.spawned.load(Ordering::SeqCst)
    }

    /// Runs `f(lane, lanes)` once for every `lane` in `0..lanes` and
    /// returns when all lanes have finished. Lane 0 runs on the calling
    /// thread; lanes `1..lanes` run on pool workers (spawned now if the
    /// pool is smaller than `lanes - 1`, reused otherwise). A panic can
    /// never wedge the shared pool: workers catch a panicking job and
    /// report it through the barrier (re-raised here, thread intact),
    /// and a worker whose *thread* is nonetheless dead is evicted and
    /// respawned on first contact instead of rejecting every later run.
    ///
    /// The done-channel barrier holds on *every* exit path, including
    /// unwinding: if the lane-0 call (or a mid-dispatch send) panics, a
    /// drop guard still blocks until each outstanding job has either
    /// finished or been dropped by a dying worker, so the borrow of `f`
    /// never escapes this frame while a worker can still dereference it.
    ///
    /// # Panics
    /// Panics if `lanes == 0` or if a worker lane panicked.
    pub fn run<'a>(&self, lanes: usize, f: &JobFn<'a>) {
        assert!(lanes >= 1, "run needs at least one lane");
        if lanes == 1 {
            f(0, 1);
            return;
        }
        // A poisoned lock only means an earlier `run` unwound (e.g. a
        // lane-0 panic the caller caught); the worker list itself is
        // still consistent, so keep the pool usable.
        let mut workers = self
            .workers
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        while workers.len() < lanes - 1 {
            workers.push(self.spawn_worker());
        }
        // SAFETY: widening the borrow to 'static is sound because this
        // frame does not end — by return *or* by unwind — until every
        // dispatched job has reported done or been dropped: `guard`
        // below drains the done channel from `Drop` as well as on the
        // normal path.
        let f_static: &'static JobFn<'static> =
            unsafe { std::mem::transmute::<&JobFn<'a>, &'static JobFn<'static>>(f) };
        let (done_tx, done_rx): (Sender<usize>, Receiver<usize>) = mpsc::channel();
        let mut guard = DrainGuard {
            tx: Some(done_tx),
            rx: done_rx,
            outstanding: 0,
            worker_panicked: false,
        };
        for k in 0..lanes - 1 {
            let job = Job {
                f: f_static as *const JobFn<'static>,
                lane: k + 1,
                lanes,
                done: guard.tx.as_ref().expect("sender taken early").clone(),
            };
            // A failed send means worker `k`'s thread is gone (job
            // panics are caught in the worker loop, but the loop itself
            // can still unwind — e.g. a panic payload whose Drop
            // panics): its receiver is dropped, so the channel rejects
            // the job and hands it back in the SendError. Evict the
            // dead worker, reap its thread, and dispatch the same job
            // to a fresh replacement — a dead worker must never wedge
            // the process-wide pool.
            if let Err(rejected) = workers[k].tx.send(Message::Run(job)) {
                let mut dead = std::mem::replace(&mut workers[k], self.spawn_worker());
                if let Some(h) = dead.handle.take() {
                    // The thread already unwound; join only reaps it
                    // (and reports the stale panic payload, ignored).
                    let _ = h.join();
                }
                workers[k]
                    .tx
                    .send(rejected.0)
                    .expect("freshly spawned native pool worker hung up");
            }
            guard.outstanding += 1;
        }
        f(0, lanes);
        guard.drain();
        if guard.worker_panicked {
            panic!("native pool worker panicked");
        }
    }

    fn spawn_worker(&self) -> Worker {
        let (tx, rx) = mpsc::channel::<Message>();
        let handle = std::thread::Builder::new()
            .name("hstencil-native".into())
            .spawn(move || {
                while let Ok(Message::Run(job)) = rx.recv() {
                    // SAFETY: `run` keeps the closure borrow alive until
                    // this job's `done` send is received.
                    let f = unsafe { &*job.f };
                    // Catch a panicking job so the worker thread — and
                    // with it the process-wide pool — survives: a dead
                    // worker would reject every later dispatch, and
                    // detecting the death only via the failed send is
                    // racy (the receiver outlives the job for a moment
                    // while the thread unwinds, so a recovery run could
                    // enqueue a job no one will ever take). The panic is
                    // reported through the barrier instead and re-raised
                    // by the caller.
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        f(job.lane, job.lanes)
                    }));
                    let _ = job.done.send(match outcome {
                        Ok(()) => job.lane,
                        Err(_) => LANE_PANICKED,
                    });
                }
            })
            .expect("failed to spawn native pool worker");
        self.spawned.fetch_add(1, Ordering::SeqCst);
        Worker {
            tx,
            handle: Some(handle),
        }
    }
}

impl Default for ThreadPool {
    fn default() -> Self {
        ThreadPool::new()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        let mut workers = match self.workers.lock() {
            Ok(w) => w,
            Err(poisoned) => poisoned.into_inner(),
        };
        for w in workers.iter() {
            let _ = w.tx.send(Message::Exit);
        }
        for w in workers.iter_mut() {
            if let Some(h) = w.handle.take() {
                let _ = h.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn single_lane_runs_inline_without_spawning() {
        let pool = ThreadPool::new();
        let hits = AtomicUsize::new(0);
        pool.run(1, &|lane, lanes| {
            assert_eq!((lane, lanes), (0, 1));
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1);
        assert_eq!(pool.spawned_threads(), 0);
    }

    #[test]
    fn workers_are_spawned_once_and_reused() {
        let pool = ThreadPool::new();
        for round in 0..20 {
            let seen = AtomicUsize::new(0);
            pool.run(5, &|lane, _| {
                seen.fetch_or(1 << lane, Ordering::Relaxed);
            });
            assert_eq!(seen.load(Ordering::Relaxed), 0b11111, "round {round}");
        }
        assert_eq!(pool.spawned_threads(), 4);
    }

    #[test]
    fn pool_grows_to_the_largest_lane_count() {
        let pool = ThreadPool::new();
        pool.run(2, &|_, _| {});
        assert_eq!(pool.spawned_threads(), 1);
        pool.run(6, &|_, _| {});
        assert_eq!(pool.spawned_threads(), 5);
        // Shrinking the lane count must not spawn anything new.
        pool.run(3, &|_, _| {});
        assert_eq!(pool.spawned_threads(), 5);
    }

    #[test]
    fn jobs_may_borrow_stack_data() {
        let pool = ThreadPool::new();
        let input: Vec<u64> = (0..64).collect();
        let partial: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        pool.run(4, &|lane, lanes| {
            let chunk = input.len() / lanes;
            let sum: u64 = input[lane * chunk..(lane + 1) * chunk].iter().sum();
            partial[lane].store(sum as usize, Ordering::Relaxed);
        });
        let total: usize = partial.iter().map(|p| p.load(Ordering::Relaxed)).sum();
        assert_eq!(total, (0..64).sum::<u64>() as usize);
    }

    #[test]
    fn lane0_panic_waits_for_workers_and_keeps_pool_usable() {
        let pool = ThreadPool::new();
        // One slot per lane, on this stack frame: if `run` unwound
        // before the barrier, workers would still be writing here after
        // catch_unwind returns (the UB the DrainGuard exists to stop).
        let wrote: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(4, &|lane, _| {
                if lane == 0 {
                    panic!("lane 0 boom");
                }
                std::thread::sleep(std::time::Duration::from_millis(30));
                wrote[lane].store(1, Ordering::SeqCst);
            });
        }));
        assert!(unwound.is_err());
        for (lane, slot) in wrote.iter().enumerate().skip(1) {
            assert_eq!(
                slot.load(Ordering::SeqCst),
                1,
                "lane {lane} must finish before run unwinds"
            );
        }
        // The caught panic must not wedge or poison the pool.
        let hits = AtomicUsize::new(0);
        pool.run(4, &|_, _| {
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 4);
        assert_eq!(pool.spawned_threads(), 3);
    }

    #[test]
    fn worker_panic_is_reported_after_the_barrier() {
        let pool = ThreadPool::new();
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(3, &|lane, _| {
                if lane == 2 {
                    panic!("worker boom");
                }
            });
        }));
        let msg = unwound.expect_err("worker panic must propagate");
        let msg = msg
            .downcast_ref::<&str>()
            .copied()
            .or_else(|| msg.downcast_ref::<String>().map(String::as_str))
            .unwrap_or("");
        assert!(msg.contains("native pool worker panicked"), "got: {msg}");
    }

    #[test]
    fn pool_survives_worker_panic() {
        // Regression for the wedged-pool bug: a worker panic used to
        // kill the worker thread, leave the dead Worker in the list, and
        // make every later `run` die on "native pool worker hung up".
        // The worker now catches the job panic (thread intact) and the
        // caller re-raises it; the same pool must keep executing every
        // lane afterwards.
        let pool = ThreadPool::new();
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(3, &|lane, _| {
                if lane == 2 {
                    panic!("worker boom");
                }
            });
        }));
        assert!(unwound.is_err(), "worker panic must propagate");
        assert_eq!(pool.spawned_threads(), 2);
        // The same scenario's pool runs again: all lanes execute.
        for round in 0..3 {
            let seen = AtomicUsize::new(0);
            pool.run(3, &|lane, _| {
                seen.fetch_or(1 << lane, Ordering::SeqCst);
            });
            assert_eq!(seen.load(Ordering::SeqCst), 0b111, "round {round}");
        }
        // No respawn was needed: the panicking lane's thread survived.
        assert_eq!(pool.spawned_threads(), 2);
    }

    #[test]
    fn dead_workers_are_evicted_and_respawned_on_dispatch() {
        // The defense-in-depth half of the wedged-pool fix: if a worker
        // thread is genuinely gone (here simulated by swapping in a
        // Worker whose receiver is already dropped — exactly the state
        // the old bug left behind), `run` must evict it, respawn a
        // replacement and still execute every lane, instead of
        // panicking on the failed send forever.
        let pool = ThreadPool::new();
        pool.run(4, &|_, _| {});
        assert_eq!(pool.spawned_threads(), 3);
        {
            let mut workers = pool.workers.lock().unwrap();
            let (tx, _dropped_rx) = mpsc::channel::<Message>();
            let mut real = std::mem::replace(&mut workers[1], Worker { tx, handle: None });
            let _ = real.tx.send(Message::Exit);
            if let Some(h) = real.handle.take() {
                let _ = h.join();
            }
        }
        for round in 0..3 {
            let seen = AtomicUsize::new(0);
            pool.run(4, &|lane, _| {
                seen.fetch_or(1 << lane, Ordering::SeqCst);
            });
            assert_eq!(seen.load(Ordering::SeqCst), 0b1111, "round {round}");
        }
        // Exactly one respawn: the dead slot, once, nothing else.
        assert_eq!(pool.spawned_threads(), 4);
    }

    #[test]
    fn repeated_worker_panics_keep_the_pool_usable() {
        let pool = ThreadPool::new();
        for round in 0..4 {
            let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                pool.run(4, &|lane, _| {
                    if lane == 3 {
                        panic!("boom {round}");
                    }
                });
            }));
            assert!(unwound.is_err(), "round {round}");
            let seen = AtomicUsize::new(0);
            pool.run(4, &|lane, _| {
                seen.fetch_or(1 << lane, Ordering::SeqCst);
            });
            assert_eq!(seen.load(Ordering::SeqCst), 0b1111, "round {round}");
        }
    }

    #[test]
    fn concurrent_callers_serialize_on_the_shared_worker_list() {
        // Two OS threads drive the same pool at once; the workers Mutex
        // serializes the runs, so every lane of every run must execute
        // exactly its own job set.
        let pool = ThreadPool::new();
        std::thread::scope(|s| {
            for caller in 0..2usize {
                let pool = &pool;
                s.spawn(move || {
                    for _ in 0..25 {
                        let seen = AtomicUsize::new(0);
                        pool.run(4, &|lane, lanes| {
                            assert_eq!(lanes, 4, "caller {caller}");
                            seen.fetch_or(1 << lane, Ordering::SeqCst);
                        });
                        assert_eq!(seen.load(Ordering::SeqCst), 0b1111, "caller {caller}");
                    }
                });
            }
        });
        assert_eq!(pool.spawned_threads(), 3);
    }

    #[test]
    fn global_pool_is_shared() {
        let a = ThreadPool::global() as *const ThreadPool;
        let b = ThreadPool::global() as *const ThreadPool;
        assert_eq!(a, b);
    }
}
