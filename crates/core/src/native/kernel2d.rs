//! Register-blocked 2-D micro-kernels with runtime SIMD dispatch,
//! generic over the element type.
//!
//! Every dispatch path computes every output element as the *same*
//! fused-multiply-add chain over the nonzero taps in canonical
//! `(di, dj)` ascending order, starting from `0.0`:
//!
//! ```text
//! acc <- fma(c_tap, a[i+di, j+dj], acc)      for each tap in order
//! ```
//!
//! `_mm256_fmadd_pd`, `_mm512_fmadd_pd` and `f64::mul_add` (and the
//! `_ps`/`f32` counterparts) all round once per step, so every SIMD
//! path and the scalar fallback are **bit-identical** within one
//! element type — dispatch can never change results, only speed
//! (asserted by the `native_dispatch` property suite).
//!
//! The SIMD paths are the in-register analogue of the paper's in-place
//! accumulation (HStencil §3, Algorithm 2): each processes *two output
//! rows* × a register-width-sized column block per step, so every input
//! row vector it loads is reused by all taps of both rows that touch it
//! instead of being re-fetched once per tap the way the seed's
//! tap-per-pass loop did. The bodies live here; the band walk that
//! drives them is the shared [`TileKernel::sweep_band`] default in
//! [`super::kernel`].
//!
//! [`TileKernel::sweep_band`]: super::kernel::TileKernel::sweep_band

use super::hybrid;
use super::kernel::{NativeElement, TileKernel};
use super::Dispatch;
use crate::element::Element;
use crate::stencil::StencilSpec;

/// Preprocessed nonzero taps of a 2-D stencil, with coefficients
/// narrowed to the kernel's element type (nonzero-ness is decided on
/// the `f64` master value, so the tap *structure* is dtype-invariant).
pub struct Taps2<E: Element> {
    /// Radius.
    pub(crate) r: isize,
    /// Canonical `(di, dj, c)` chain — the bit-exactness contract.
    pub(crate) flat: Vec<(isize, isize, E)>,
    /// Taps grouped by input row for one output row: `single[di + r]`
    /// lists `(dj, c)` ascending (nonzero only).
    pub(crate) single: Vec<Vec<(isize, E)>>,
    /// Taps grouped by input row for an output row *pair* `(i, i+1)`:
    /// `pair[e + r]` (input row `i + e`, `e` in `-r ..= r+1`) lists
    /// `(dj, c_row_i, c_row_i1)` merged ascending by `dj`; a zero
    /// coefficient means the tap does not touch that output row.
    pub(crate) pair: Vec<Vec<(isize, E, E)>>,
    /// The same taps split for the hybrid 8×8 register-tile schedule
    /// ([`super::hybrid`]): vertical rank-1 coefficients + inner MLA
    /// taps.
    pub(crate) hybrid: hybrid::TapsHybrid<E>,
}

impl<E: Element> Taps2<E> {
    pub(crate) fn new(spec: &StencilSpec) -> Taps2<E> {
        assert_eq!(spec.dims(), 2);
        let r = spec.radius() as isize;
        let mut flat = Vec::new();
        let mut single = vec![Vec::new(); (2 * r + 1) as usize];
        for di in -r..=r {
            for dj in -r..=r {
                let c = spec.c2(di, dj);
                if c != 0.0 {
                    flat.push((di, dj, E::from_f64(c)));
                    single[(di + r) as usize].push((dj, E::from_f64(c)));
                }
            }
        }
        let mut pair = Vec::with_capacity((2 * r + 2) as usize);
        for e in -r..=(r + 1) {
            // Output row i sees input row i+e as tap di = e; output row
            // i+1 sees it as di = e-1. Merge the two dj lists.
            let a = Self::row(&single, e, r);
            let b = Self::row(&single, e - 1, r);
            pair.push(merge_pair_rows(a, b));
        }
        Taps2 {
            r,
            flat,
            single,
            pair,
            hybrid: hybrid::TapsHybrid::new(spec),
        }
    }

    fn row(single: &[Vec<(isize, E)>], di: isize, r: isize) -> &[(isize, E)] {
        if di < -r || di > r {
            &[]
        } else {
            &single[(di + r) as usize]
        }
    }

    /// Rows resident while the pair kernel streams one column tile
    /// (input rows of the pair plus the two output rows).
    pub(crate) fn rows_in_flight(&self) -> usize {
        (2 * self.r + 2) as usize + 2
    }
}

/// Merges the `(dj, c)` tap lists of one input row as seen by an output
/// row pair `(i, i+1)` into one `(dj, c_row_i, c_row_i1)` list ascending
/// by `dj` (a zero coefficient means the tap does not touch that output
/// row). Shared by the 2-D pair tables and the 3-D `(dk, e)` pair
/// grouping in [`super::kernel3d`].
pub(crate) fn merge_pair_rows<E: Element>(
    a: &[(isize, E)],
    b: &[(isize, E)],
) -> Vec<(isize, E, E)> {
    let mut merged: Vec<(isize, E, E)> = Vec::new();
    let (mut ia, mut ib) = (0usize, 0usize);
    while ia < a.len() || ib < b.len() {
        let next_a = a.get(ia).map(|t| t.0);
        let next_b = b.get(ib).map(|t| t.0);
        match (next_a, next_b) {
            (Some(da), Some(db)) if da == db => {
                merged.push((da, a[ia].1, b[ib].1));
                ia += 1;
                ib += 1;
            }
            (Some(da), Some(db)) if da < db => {
                merged.push((da, a[ia].1, E::ZERO));
                ia += 1;
            }
            (Some(_), Some(db)) => {
                merged.push((db, E::ZERO, b[ib].1));
                ib += 1;
            }
            (Some(da), None) => {
                merged.push((da, a[ia].1, E::ZERO));
                ia += 1;
            }
            (None, Some(db)) => {
                merged.push((db, E::ZERO, b[ib].1));
                ib += 1;
            }
            (None, None) => unreachable!(),
        }
    }
    merged
}

/// The canonical scalar chain for one element; also the SIMD tail path.
#[inline]
pub(crate) fn scalar_point<E: Element>(
    flat: &[(isize, isize, E)],
    a: &[E],
    base: isize,
    stride: isize,
) -> E {
    let mut acc = E::ZERO;
    for &(di, dj, c) in flat {
        acc = c.mul_add(a[(base + di * stride + dj) as usize], acc);
    }
    acc
}

/// Scalar sweep of one row segment: `dst[jj]` = chain at `(i, j0 + jj)`
/// where `base` is the flat index of `(i, j0)` in `a`.
pub(crate) fn scalar_row<E: Element>(
    flat: &[(isize, isize, E)],
    a: &[E],
    base: isize,
    stride: isize,
    dst: &mut [E],
) {
    for (jj, d) in dst.iter_mut().enumerate() {
        *d = scalar_point(flat, a, base + jj as isize, stride);
    }
}

/// Sweeps output rows `i_lo .. i_hi` of a band through the trait
/// instance `dispatch` names for element type `E` (see
/// [`super::kernel`] for the slice contract).
#[allow(clippy::too_many_arguments)]
pub(crate) fn sweep_band_2d<E: NativeElement>(
    dispatch: Dispatch,
    taps: &Taps2<E>,
    a: &[E],
    a_org: isize,
    a_stride: isize,
    w: usize,
    dst: &mut [E],
    b_stride: usize,
    i_lo: usize,
    i_hi: usize,
    lanes: usize,
) {
    match dispatch {
        Dispatch::Scalar => E::KScalar::sweep_band(
            taps, a, a_org, a_stride, w, dst, b_stride, i_lo, i_hi, lanes,
        ),
        Dispatch::Avx2Fma => E::KAvx2::sweep_band(
            taps, a, a_org, a_stride, w, dst, b_stride, i_lo, i_hi, lanes,
        ),
        Dispatch::Avx512 => E::KAvx512::sweep_band(
            taps, a, a_org, a_stride, w, dst, b_stride, i_lo, i_hi, lanes,
        ),
        Dispatch::Hybrid => E::KHybrid::sweep_band(
            taps, a, a_org, a_stride, w, dst, b_stride, i_lo, i_hi, lanes,
        ),
    }
}

/// Issues the Algorithm-3-style T0 prefetches for one main-loop step:
/// the next `rows` input rows below the deepest tap row (the rows the
/// following output pair will pull in) and the store stream `cols`
/// ahead of the current destination cursor. Pointers are built with
/// wrapping arithmetic — `_mm_prefetch` is a pure hint that never
/// faults, so running past a slice edge is safe by construction.
#[cfg(target_arch = "x86_64")]
#[inline(always)]
unsafe fn hint_step<E: Element>(
    ap: *const E,
    deep: isize,
    stride: isize,
    rows: usize,
    dsts: &[*const E],
    j: usize,
    cols: usize,
) {
    use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
    for q in 0..rows as isize {
        let p = ap.wrapping_offset(deep + q * stride);
        _mm_prefetch::<_MM_HINT_T0>(p as *const i8);
    }
    if cols > 0 {
        for &d in dsts {
            _mm_prefetch::<_MM_HINT_T0>(d.wrapping_add(j + cols) as *const i8);
        }
    }
}

#[cfg(target_arch = "x86_64")]
pub(crate) mod avx2 {
    use super::super::prefetch::Prefetch;
    use super::{hint_step, scalar_point, Taps2};
    use std::arch::x86_64::*;

    /// Two output rows, eight columns per step (four 4-lane
    /// accumulators live across the whole tap chain). `base` is the
    /// flat index of `(i, j0)`; `dst0`/`dst1` are the two output row
    /// segments (equal length).
    ///
    /// # Safety
    /// Caller must have verified AVX2 + FMA support.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(crate) unsafe fn row_pair(
        taps: &Taps2<f64>,
        a: &[f64],
        base: isize,
        stride: isize,
        dst0: &mut [f64],
        dst1: &mut [f64],
        pf: Prefetch,
    ) {
        debug_assert_eq!(dst0.len(), dst1.len());
        let jw = dst0.len();
        let ap = a.as_ptr();
        let r = taps.r;
        // Deepest input row of this pair is base + (r+1)*stride; the
        // prefetch stream runs `input_rows` rows below it (the rows the
        // next pair down the band will newly touch).
        let pf_deep = base + (r + 2) * stride;
        let dst_ptrs = [dst0.as_ptr(), dst1.as_ptr()];
        let mut j = 0usize;
        while j + 8 <= jw {
            hint_step(
                ap,
                pf_deep + j as isize,
                stride,
                pf.input_rows,
                &dst_ptrs,
                j,
                pf.dst_cols,
            );
            let mut acc00 = _mm256_setzero_pd();
            let mut acc01 = _mm256_setzero_pd();
            let mut acc10 = _mm256_setzero_pd();
            let mut acc11 = _mm256_setzero_pd();
            for (p, row_taps) in taps.pair.iter().enumerate() {
                let e = p as isize - r;
                let row_base = base + e * stride + j as isize;
                for &(dj, c0, c1) in row_taps {
                    let ptr = ap.offset(row_base + dj);
                    let v0 = _mm256_loadu_pd(ptr);
                    let v1 = _mm256_loadu_pd(ptr.add(4));
                    if c0 != 0.0 {
                        let cv = _mm256_set1_pd(c0);
                        acc00 = _mm256_fmadd_pd(cv, v0, acc00);
                        acc01 = _mm256_fmadd_pd(cv, v1, acc01);
                    }
                    if c1 != 0.0 {
                        let cv = _mm256_set1_pd(c1);
                        acc10 = _mm256_fmadd_pd(cv, v0, acc10);
                        acc11 = _mm256_fmadd_pd(cv, v1, acc11);
                    }
                }
            }
            _mm256_storeu_pd(dst0.as_mut_ptr().add(j), acc00);
            _mm256_storeu_pd(dst0.as_mut_ptr().add(j + 4), acc01);
            _mm256_storeu_pd(dst1.as_mut_ptr().add(j), acc10);
            _mm256_storeu_pd(dst1.as_mut_ptr().add(j + 4), acc11);
            j += 8;
        }
        while j + 4 <= jw {
            let mut acc0 = _mm256_setzero_pd();
            let mut acc1 = _mm256_setzero_pd();
            for (p, row_taps) in taps.pair.iter().enumerate() {
                let e = p as isize - r;
                let row_base = base + e * stride + j as isize;
                for &(dj, c0, c1) in row_taps {
                    let v = _mm256_loadu_pd(ap.offset(row_base + dj));
                    if c0 != 0.0 {
                        acc0 = _mm256_fmadd_pd(_mm256_set1_pd(c0), v, acc0);
                    }
                    if c1 != 0.0 {
                        acc1 = _mm256_fmadd_pd(_mm256_set1_pd(c1), v, acc1);
                    }
                }
            }
            _mm256_storeu_pd(dst0.as_mut_ptr().add(j), acc0);
            _mm256_storeu_pd(dst1.as_mut_ptr().add(j), acc1);
            j += 4;
        }
        while j < jw {
            dst0[j] = scalar_point(&taps.flat, a, base + j as isize, stride);
            dst1[j] = scalar_point(&taps.flat, a, base + stride + j as isize, stride);
            j += 1;
        }
    }

    /// One output row (the odd last row of a band), eight columns per
    /// step.
    ///
    /// # Safety
    /// Caller must have verified AVX2 + FMA support.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(crate) unsafe fn row_single(
        taps: &Taps2<f64>,
        a: &[f64],
        base: isize,
        stride: isize,
        dst: &mut [f64],
        pf: Prefetch,
    ) {
        let jw = dst.len();
        let ap = a.as_ptr();
        let r = taps.r;
        let pf_deep = base + (r + 1) * stride;
        let dst_ptrs = [dst.as_ptr()];
        let mut j = 0usize;
        while j + 8 <= jw {
            hint_step(
                ap,
                pf_deep + j as isize,
                stride,
                pf.input_rows,
                &dst_ptrs,
                j,
                pf.dst_cols,
            );
            let mut acc0 = _mm256_setzero_pd();
            let mut acc1 = _mm256_setzero_pd();
            for (p, row_taps) in taps.single.iter().enumerate() {
                let di = p as isize - r;
                let row_base = base + di * stride + j as isize;
                for &(dj, c) in row_taps {
                    let ptr = ap.offset(row_base + dj);
                    let cv = _mm256_set1_pd(c);
                    acc0 = _mm256_fmadd_pd(cv, _mm256_loadu_pd(ptr), acc0);
                    acc1 = _mm256_fmadd_pd(cv, _mm256_loadu_pd(ptr.add(4)), acc1);
                }
            }
            _mm256_storeu_pd(dst.as_mut_ptr().add(j), acc0);
            _mm256_storeu_pd(dst.as_mut_ptr().add(j + 4), acc1);
            j += 8;
        }
        while j + 4 <= jw {
            let mut acc = _mm256_setzero_pd();
            for (p, row_taps) in taps.single.iter().enumerate() {
                let di = p as isize - r;
                let row_base = base + di * stride + j as isize;
                for &(dj, c) in row_taps {
                    let v = _mm256_loadu_pd(ap.offset(row_base + dj));
                    acc = _mm256_fmadd_pd(_mm256_set1_pd(c), v, acc);
                }
            }
            _mm256_storeu_pd(dst.as_mut_ptr().add(j), acc);
            j += 4;
        }
        while j < jw {
            dst[j] = scalar_point(&taps.flat, a, base + j as isize, stride);
            j += 1;
        }
    }

    /// The `f32` row pair: same schedule as [`row_pair`] at double the
    /// lane count — two output rows × sixteen columns per step, four
    /// 8-lane accumulators. Same canonical chain per element, so it is
    /// bit-identical to the `f32` scalar fallback.
    ///
    /// # Safety
    /// Caller must have verified AVX2 + FMA support.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(crate) unsafe fn row_pair_f32(
        taps: &Taps2<f32>,
        a: &[f32],
        base: isize,
        stride: isize,
        dst0: &mut [f32],
        dst1: &mut [f32],
        pf: Prefetch,
    ) {
        debug_assert_eq!(dst0.len(), dst1.len());
        let jw = dst0.len();
        let ap = a.as_ptr();
        let r = taps.r;
        let pf_deep = base + (r + 2) * stride;
        let dst_ptrs = [dst0.as_ptr(), dst1.as_ptr()];
        let mut j = 0usize;
        while j + 16 <= jw {
            hint_step(
                ap,
                pf_deep + j as isize,
                stride,
                pf.input_rows,
                &dst_ptrs,
                j,
                pf.dst_cols,
            );
            let mut acc00 = _mm256_setzero_ps();
            let mut acc01 = _mm256_setzero_ps();
            let mut acc10 = _mm256_setzero_ps();
            let mut acc11 = _mm256_setzero_ps();
            for (p, row_taps) in taps.pair.iter().enumerate() {
                let e = p as isize - r;
                let row_base = base + e * stride + j as isize;
                for &(dj, c0, c1) in row_taps {
                    let ptr = ap.offset(row_base + dj);
                    let v0 = _mm256_loadu_ps(ptr);
                    let v1 = _mm256_loadu_ps(ptr.add(8));
                    if c0 != 0.0 {
                        let cv = _mm256_set1_ps(c0);
                        acc00 = _mm256_fmadd_ps(cv, v0, acc00);
                        acc01 = _mm256_fmadd_ps(cv, v1, acc01);
                    }
                    if c1 != 0.0 {
                        let cv = _mm256_set1_ps(c1);
                        acc10 = _mm256_fmadd_ps(cv, v0, acc10);
                        acc11 = _mm256_fmadd_ps(cv, v1, acc11);
                    }
                }
            }
            _mm256_storeu_ps(dst0.as_mut_ptr().add(j), acc00);
            _mm256_storeu_ps(dst0.as_mut_ptr().add(j + 8), acc01);
            _mm256_storeu_ps(dst1.as_mut_ptr().add(j), acc10);
            _mm256_storeu_ps(dst1.as_mut_ptr().add(j + 8), acc11);
            j += 16;
        }
        while j + 8 <= jw {
            let mut acc0 = _mm256_setzero_ps();
            let mut acc1 = _mm256_setzero_ps();
            for (p, row_taps) in taps.pair.iter().enumerate() {
                let e = p as isize - r;
                let row_base = base + e * stride + j as isize;
                for &(dj, c0, c1) in row_taps {
                    let v = _mm256_loadu_ps(ap.offset(row_base + dj));
                    if c0 != 0.0 {
                        acc0 = _mm256_fmadd_ps(_mm256_set1_ps(c0), v, acc0);
                    }
                    if c1 != 0.0 {
                        acc1 = _mm256_fmadd_ps(_mm256_set1_ps(c1), v, acc1);
                    }
                }
            }
            _mm256_storeu_ps(dst0.as_mut_ptr().add(j), acc0);
            _mm256_storeu_ps(dst1.as_mut_ptr().add(j), acc1);
            j += 8;
        }
        while j < jw {
            dst0[j] = scalar_point(&taps.flat, a, base + j as isize, stride);
            dst1[j] = scalar_point(&taps.flat, a, base + stride + j as isize, stride);
            j += 1;
        }
    }

    /// The `f32` odd last row, sixteen columns per step.
    ///
    /// # Safety
    /// Caller must have verified AVX2 + FMA support.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(crate) unsafe fn row_single_f32(
        taps: &Taps2<f32>,
        a: &[f32],
        base: isize,
        stride: isize,
        dst: &mut [f32],
        pf: Prefetch,
    ) {
        let jw = dst.len();
        let ap = a.as_ptr();
        let r = taps.r;
        let pf_deep = base + (r + 1) * stride;
        let dst_ptrs = [dst.as_ptr()];
        let mut j = 0usize;
        while j + 16 <= jw {
            hint_step(
                ap,
                pf_deep + j as isize,
                stride,
                pf.input_rows,
                &dst_ptrs,
                j,
                pf.dst_cols,
            );
            let mut acc0 = _mm256_setzero_ps();
            let mut acc1 = _mm256_setzero_ps();
            for (p, row_taps) in taps.single.iter().enumerate() {
                let di = p as isize - r;
                let row_base = base + di * stride + j as isize;
                for &(dj, c) in row_taps {
                    let ptr = ap.offset(row_base + dj);
                    let cv = _mm256_set1_ps(c);
                    acc0 = _mm256_fmadd_ps(cv, _mm256_loadu_ps(ptr), acc0);
                    acc1 = _mm256_fmadd_ps(cv, _mm256_loadu_ps(ptr.add(8)), acc1);
                }
            }
            _mm256_storeu_ps(dst.as_mut_ptr().add(j), acc0);
            _mm256_storeu_ps(dst.as_mut_ptr().add(j + 8), acc1);
            j += 16;
        }
        while j + 8 <= jw {
            let mut acc = _mm256_setzero_ps();
            for (p, row_taps) in taps.single.iter().enumerate() {
                let di = p as isize - r;
                let row_base = base + di * stride + j as isize;
                for &(dj, c) in row_taps {
                    let v = _mm256_loadu_ps(ap.offset(row_base + dj));
                    acc = _mm256_fmadd_ps(_mm256_set1_ps(c), v, acc);
                }
            }
            _mm256_storeu_ps(dst.as_mut_ptr().add(j), acc);
            j += 8;
        }
        while j < jw {
            dst[j] = scalar_point(&taps.flat, a, base + j as isize, stride);
            j += 1;
        }
    }
}

/// The AVX-512F bodies: the same two-row schedule as [`avx2`] at double
/// the register width (8-wide `f64` / 16-wide `f32` lanes). Each lane
/// still computes the canonical chain, so within one element type these
/// are bit-identical to both the AVX2 and the scalar paths.
#[cfg(target_arch = "x86_64")]
pub(crate) mod avx512 {
    use super::super::prefetch::Prefetch;
    use super::{hint_step, scalar_point, Taps2};
    use std::arch::x86_64::*;

    /// Two `f64` output rows, sixteen columns per step (four 8-lane zmm
    /// accumulators).
    ///
    /// # Safety
    /// Caller must have verified AVX-512F support.
    #[target_feature(enable = "avx512f")]
    pub(crate) unsafe fn row_pair_f64(
        taps: &Taps2<f64>,
        a: &[f64],
        base: isize,
        stride: isize,
        dst0: &mut [f64],
        dst1: &mut [f64],
        pf: Prefetch,
    ) {
        debug_assert_eq!(dst0.len(), dst1.len());
        let jw = dst0.len();
        let ap = a.as_ptr();
        let r = taps.r;
        let pf_deep = base + (r + 2) * stride;
        let dst_ptrs = [dst0.as_ptr(), dst1.as_ptr()];
        let mut j = 0usize;
        while j + 16 <= jw {
            hint_step(
                ap,
                pf_deep + j as isize,
                stride,
                pf.input_rows,
                &dst_ptrs,
                j,
                pf.dst_cols,
            );
            let mut acc00 = _mm512_setzero_pd();
            let mut acc01 = _mm512_setzero_pd();
            let mut acc10 = _mm512_setzero_pd();
            let mut acc11 = _mm512_setzero_pd();
            for (p, row_taps) in taps.pair.iter().enumerate() {
                let e = p as isize - r;
                let row_base = base + e * stride + j as isize;
                for &(dj, c0, c1) in row_taps {
                    let ptr = ap.offset(row_base + dj);
                    let v0 = _mm512_loadu_pd(ptr);
                    let v1 = _mm512_loadu_pd(ptr.add(8));
                    if c0 != 0.0 {
                        let cv = _mm512_set1_pd(c0);
                        acc00 = _mm512_fmadd_pd(cv, v0, acc00);
                        acc01 = _mm512_fmadd_pd(cv, v1, acc01);
                    }
                    if c1 != 0.0 {
                        let cv = _mm512_set1_pd(c1);
                        acc10 = _mm512_fmadd_pd(cv, v0, acc10);
                        acc11 = _mm512_fmadd_pd(cv, v1, acc11);
                    }
                }
            }
            _mm512_storeu_pd(dst0.as_mut_ptr().add(j), acc00);
            _mm512_storeu_pd(dst0.as_mut_ptr().add(j + 8), acc01);
            _mm512_storeu_pd(dst1.as_mut_ptr().add(j), acc10);
            _mm512_storeu_pd(dst1.as_mut_ptr().add(j + 8), acc11);
            j += 16;
        }
        while j + 8 <= jw {
            let mut acc0 = _mm512_setzero_pd();
            let mut acc1 = _mm512_setzero_pd();
            for (p, row_taps) in taps.pair.iter().enumerate() {
                let e = p as isize - r;
                let row_base = base + e * stride + j as isize;
                for &(dj, c0, c1) in row_taps {
                    let v = _mm512_loadu_pd(ap.offset(row_base + dj));
                    if c0 != 0.0 {
                        acc0 = _mm512_fmadd_pd(_mm512_set1_pd(c0), v, acc0);
                    }
                    if c1 != 0.0 {
                        acc1 = _mm512_fmadd_pd(_mm512_set1_pd(c1), v, acc1);
                    }
                }
            }
            _mm512_storeu_pd(dst0.as_mut_ptr().add(j), acc0);
            _mm512_storeu_pd(dst1.as_mut_ptr().add(j), acc1);
            j += 8;
        }
        while j < jw {
            dst0[j] = scalar_point(&taps.flat, a, base + j as isize, stride);
            dst1[j] = scalar_point(&taps.flat, a, base + stride + j as isize, stride);
            j += 1;
        }
    }

    /// One `f64` output row, sixteen columns per step.
    ///
    /// # Safety
    /// Caller must have verified AVX-512F support.
    #[target_feature(enable = "avx512f")]
    pub(crate) unsafe fn row_single_f64(
        taps: &Taps2<f64>,
        a: &[f64],
        base: isize,
        stride: isize,
        dst: &mut [f64],
        pf: Prefetch,
    ) {
        let jw = dst.len();
        let ap = a.as_ptr();
        let r = taps.r;
        let pf_deep = base + (r + 1) * stride;
        let dst_ptrs = [dst.as_ptr()];
        let mut j = 0usize;
        while j + 16 <= jw {
            hint_step(
                ap,
                pf_deep + j as isize,
                stride,
                pf.input_rows,
                &dst_ptrs,
                j,
                pf.dst_cols,
            );
            let mut acc0 = _mm512_setzero_pd();
            let mut acc1 = _mm512_setzero_pd();
            for (p, row_taps) in taps.single.iter().enumerate() {
                let di = p as isize - r;
                let row_base = base + di * stride + j as isize;
                for &(dj, c) in row_taps {
                    let ptr = ap.offset(row_base + dj);
                    let cv = _mm512_set1_pd(c);
                    acc0 = _mm512_fmadd_pd(cv, _mm512_loadu_pd(ptr), acc0);
                    acc1 = _mm512_fmadd_pd(cv, _mm512_loadu_pd(ptr.add(8)), acc1);
                }
            }
            _mm512_storeu_pd(dst.as_mut_ptr().add(j), acc0);
            _mm512_storeu_pd(dst.as_mut_ptr().add(j + 8), acc1);
            j += 16;
        }
        while j + 8 <= jw {
            let mut acc = _mm512_setzero_pd();
            for (p, row_taps) in taps.single.iter().enumerate() {
                let di = p as isize - r;
                let row_base = base + di * stride + j as isize;
                for &(dj, c) in row_taps {
                    let v = _mm512_loadu_pd(ap.offset(row_base + dj));
                    acc = _mm512_fmadd_pd(_mm512_set1_pd(c), v, acc);
                }
            }
            _mm512_storeu_pd(dst.as_mut_ptr().add(j), acc);
            j += 8;
        }
        while j < jw {
            dst[j] = scalar_point(&taps.flat, a, base + j as isize, stride);
            j += 1;
        }
    }

    /// Two `f32` output rows, thirty-two columns per step (four 16-lane
    /// zmm accumulators).
    ///
    /// # Safety
    /// Caller must have verified AVX-512F support.
    #[target_feature(enable = "avx512f")]
    pub(crate) unsafe fn row_pair_f32(
        taps: &Taps2<f32>,
        a: &[f32],
        base: isize,
        stride: isize,
        dst0: &mut [f32],
        dst1: &mut [f32],
        pf: Prefetch,
    ) {
        debug_assert_eq!(dst0.len(), dst1.len());
        let jw = dst0.len();
        let ap = a.as_ptr();
        let r = taps.r;
        let pf_deep = base + (r + 2) * stride;
        let dst_ptrs = [dst0.as_ptr(), dst1.as_ptr()];
        let mut j = 0usize;
        while j + 32 <= jw {
            hint_step(
                ap,
                pf_deep + j as isize,
                stride,
                pf.input_rows,
                &dst_ptrs,
                j,
                pf.dst_cols,
            );
            let mut acc00 = _mm512_setzero_ps();
            let mut acc01 = _mm512_setzero_ps();
            let mut acc10 = _mm512_setzero_ps();
            let mut acc11 = _mm512_setzero_ps();
            for (p, row_taps) in taps.pair.iter().enumerate() {
                let e = p as isize - r;
                let row_base = base + e * stride + j as isize;
                for &(dj, c0, c1) in row_taps {
                    let ptr = ap.offset(row_base + dj);
                    let v0 = _mm512_loadu_ps(ptr);
                    let v1 = _mm512_loadu_ps(ptr.add(16));
                    if c0 != 0.0 {
                        let cv = _mm512_set1_ps(c0);
                        acc00 = _mm512_fmadd_ps(cv, v0, acc00);
                        acc01 = _mm512_fmadd_ps(cv, v1, acc01);
                    }
                    if c1 != 0.0 {
                        let cv = _mm512_set1_ps(c1);
                        acc10 = _mm512_fmadd_ps(cv, v0, acc10);
                        acc11 = _mm512_fmadd_ps(cv, v1, acc11);
                    }
                }
            }
            _mm512_storeu_ps(dst0.as_mut_ptr().add(j), acc00);
            _mm512_storeu_ps(dst0.as_mut_ptr().add(j + 16), acc01);
            _mm512_storeu_ps(dst1.as_mut_ptr().add(j), acc10);
            _mm512_storeu_ps(dst1.as_mut_ptr().add(j + 16), acc11);
            j += 32;
        }
        while j + 16 <= jw {
            let mut acc0 = _mm512_setzero_ps();
            let mut acc1 = _mm512_setzero_ps();
            for (p, row_taps) in taps.pair.iter().enumerate() {
                let e = p as isize - r;
                let row_base = base + e * stride + j as isize;
                for &(dj, c0, c1) in row_taps {
                    let v = _mm512_loadu_ps(ap.offset(row_base + dj));
                    if c0 != 0.0 {
                        acc0 = _mm512_fmadd_ps(_mm512_set1_ps(c0), v, acc0);
                    }
                    if c1 != 0.0 {
                        acc1 = _mm512_fmadd_ps(_mm512_set1_ps(c1), v, acc1);
                    }
                }
            }
            _mm512_storeu_ps(dst0.as_mut_ptr().add(j), acc0);
            _mm512_storeu_ps(dst1.as_mut_ptr().add(j), acc1);
            j += 16;
        }
        while j < jw {
            dst0[j] = scalar_point(&taps.flat, a, base + j as isize, stride);
            dst1[j] = scalar_point(&taps.flat, a, base + stride + j as isize, stride);
            j += 1;
        }
    }

    /// One `f32` output row, thirty-two columns per step.
    ///
    /// # Safety
    /// Caller must have verified AVX-512F support.
    #[target_feature(enable = "avx512f")]
    pub(crate) unsafe fn row_single_f32(
        taps: &Taps2<f32>,
        a: &[f32],
        base: isize,
        stride: isize,
        dst: &mut [f32],
        pf: Prefetch,
    ) {
        let jw = dst.len();
        let ap = a.as_ptr();
        let r = taps.r;
        let pf_deep = base + (r + 1) * stride;
        let dst_ptrs = [dst.as_ptr()];
        let mut j = 0usize;
        while j + 32 <= jw {
            hint_step(
                ap,
                pf_deep + j as isize,
                stride,
                pf.input_rows,
                &dst_ptrs,
                j,
                pf.dst_cols,
            );
            let mut acc0 = _mm512_setzero_ps();
            let mut acc1 = _mm512_setzero_ps();
            for (p, row_taps) in taps.single.iter().enumerate() {
                let di = p as isize - r;
                let row_base = base + di * stride + j as isize;
                for &(dj, c) in row_taps {
                    let ptr = ap.offset(row_base + dj);
                    let cv = _mm512_set1_ps(c);
                    acc0 = _mm512_fmadd_ps(cv, _mm512_loadu_ps(ptr), acc0);
                    acc1 = _mm512_fmadd_ps(cv, _mm512_loadu_ps(ptr.add(16)), acc1);
                }
            }
            _mm512_storeu_ps(dst.as_mut_ptr().add(j), acc0);
            _mm512_storeu_ps(dst.as_mut_ptr().add(j + 16), acc1);
            j += 32;
        }
        while j + 16 <= jw {
            let mut acc = _mm512_setzero_ps();
            for (p, row_taps) in taps.single.iter().enumerate() {
                let di = p as isize - r;
                let row_base = base + di * stride + j as isize;
                for &(dj, c) in row_taps {
                    let v = _mm512_loadu_ps(ap.offset(row_base + dj));
                    acc = _mm512_fmadd_ps(_mm512_set1_ps(c), v, acc);
                }
            }
            _mm512_storeu_ps(dst.as_mut_ptr().add(j), acc);
            j += 16;
        }
        while j < jw {
            dst[j] = scalar_point(&taps.flat, a, base + j as isize, stride);
            j += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stencil::presets;

    #[test]
    fn pair_merge_covers_both_rows_in_canonical_order() {
        let taps = Taps2::<f64>::new(&presets::star2d9p());
        assert_eq!(taps.pair.len(), 2 * 2 + 2);
        let mut from_pair_row0 = Vec::new();
        let mut from_pair_row1 = Vec::new();
        for (p, row) in taps.pair.iter().enumerate() {
            let e = p as isize - taps.r;
            for &(dj, c0, c1) in row {
                // dj strictly ascending within one input row.
                assert!(c0 != 0.0 || c1 != 0.0);
                if c0 != 0.0 {
                    from_pair_row0.push((e, dj, c0));
                }
                if c1 != 0.0 {
                    from_pair_row1.push((e - 1, dj, c1));
                }
            }
        }
        assert_eq!(from_pair_row0, taps.flat);
        assert_eq!(from_pair_row1, taps.flat);
    }

    #[test]
    fn flat_taps_are_sorted_and_nonzero() {
        for spec in presets::suite_2d() {
            let taps = Taps2::<f64>::new(&spec);
            assert_eq!(taps.flat.len(), spec.points());
            let mut sorted = taps.flat.clone();
            sorted.sort_by_key(|&(di, dj, _)| (di, dj));
            assert_eq!(sorted, taps.flat, "{}", spec.name());
        }
    }

    #[test]
    fn f32_taps_share_the_structure_and_narrow_the_coefficients() {
        for spec in presets::suite_2d() {
            let t64 = Taps2::<f64>::new(&spec);
            let t32 = Taps2::<f32>::new(&spec);
            assert_eq!(t32.flat.len(), t64.flat.len(), "{}", spec.name());
            for (&(di32, dj32, c32), &(di64, dj64, c64)) in t32.flat.iter().zip(&t64.flat) {
                assert_eq!((di32, dj32), (di64, dj64));
                assert_eq!(c32, c64 as f32, "round-to-nearest narrowing");
            }
        }
    }
}
