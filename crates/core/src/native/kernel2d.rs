//! Register-blocked 2-D micro-kernels with runtime SIMD dispatch.
//!
//! Both dispatch paths compute every output element as the *same*
//! fused-multiply-add chain over the nonzero taps in canonical
//! `(di, dj)` ascending order, starting from `0.0`:
//!
//! ```text
//! acc <- fma(c_tap, a[i+di, j+dj], acc)      for each tap in order
//! ```
//!
//! `_mm256_fmadd_pd` and `f64::mul_add` both round once per step, so the
//! AVX2 path and the scalar fallback are **bit-identical** — dispatch can
//! never change results, only speed (asserted by the
//! `native_dispatch` property suite).
//!
//! The AVX2 path is the in-register analogue of the paper's in-place
//! accumulation (HStencil §3, Algorithm 2): it processes *two output
//! rows × eight columns* per step, so every input row vector it loads is
//! reused by all taps of both rows that touch it instead of being
//! re-fetched once per tap the way the seed's tap-per-pass loop did.

use super::hybrid;
use super::tile;
use super::Dispatch;
use crate::stencil::StencilSpec;

/// Preprocessed nonzero taps of a 2-D stencil.
pub(crate) struct Taps2 {
    /// Radius.
    pub r: isize,
    /// Canonical `(di, dj, c)` chain — the bit-exactness contract.
    pub flat: Vec<(isize, isize, f64)>,
    /// Taps grouped by input row for one output row: `single[di + r]`
    /// lists `(dj, c)` ascending (nonzero only).
    pub single: Vec<Vec<(isize, f64)>>,
    /// Taps grouped by input row for an output row *pair* `(i, i+1)`:
    /// `pair[e + r]` (input row `i + e`, `e` in `-r ..= r+1`) lists
    /// `(dj, c_row_i, c_row_i1)` merged ascending by `dj`; a zero
    /// coefficient means the tap does not touch that output row.
    pub pair: Vec<Vec<(isize, f64, f64)>>,
    /// The same taps split for the hybrid 8×8 register-tile schedule
    /// ([`super::hybrid`]): vertical rank-1 coefficients + inner MLA
    /// taps.
    pub hybrid: hybrid::TapsHybrid,
}

impl Taps2 {
    pub fn new(spec: &StencilSpec) -> Taps2 {
        assert_eq!(spec.dims(), 2);
        let r = spec.radius() as isize;
        let mut flat = Vec::new();
        let mut single = vec![Vec::new(); (2 * r + 1) as usize];
        for di in -r..=r {
            for dj in -r..=r {
                let c = spec.c2(di, dj);
                if c != 0.0 {
                    flat.push((di, dj, c));
                    single[(di + r) as usize].push((dj, c));
                }
            }
        }
        let mut pair = Vec::with_capacity((2 * r + 2) as usize);
        for e in -r..=(r + 1) {
            // Output row i sees input row i+e as tap di = e; output row
            // i+1 sees it as di = e-1. Merge the two dj lists.
            let a = Self::row(&single, e, r);
            let b = Self::row(&single, e - 1, r);
            pair.push(merge_pair_rows(a, b));
        }
        Taps2 {
            r,
            flat,
            single,
            pair,
            hybrid: hybrid::TapsHybrid::new(spec),
        }
    }

    fn row(single: &[Vec<(isize, f64)>], di: isize, r: isize) -> &[(isize, f64)] {
        if di < -r || di > r {
            &[]
        } else {
            &single[(di + r) as usize]
        }
    }

    /// Rows resident while the pair kernel streams one column tile
    /// (input rows of the pair plus the two output rows).
    pub fn rows_in_flight(&self) -> usize {
        (2 * self.r + 2) as usize + 2
    }
}

/// Merges the `(dj, c)` tap lists of one input row as seen by an output
/// row pair `(i, i+1)` into one `(dj, c_row_i, c_row_i1)` list ascending
/// by `dj` (a zero coefficient means the tap does not touch that output
/// row). Shared by the 2-D pair tables and the 3-D `(dk, e)` pair
/// grouping in [`super::kernel3d`].
pub(crate) fn merge_pair_rows(a: &[(isize, f64)], b: &[(isize, f64)]) -> Vec<(isize, f64, f64)> {
    let mut merged: Vec<(isize, f64, f64)> = Vec::new();
    let (mut ia, mut ib) = (0usize, 0usize);
    while ia < a.len() || ib < b.len() {
        let next_a = a.get(ia).map(|t| t.0);
        let next_b = b.get(ib).map(|t| t.0);
        match (next_a, next_b) {
            (Some(da), Some(db)) if da == db => {
                merged.push((da, a[ia].1, b[ib].1));
                ia += 1;
                ib += 1;
            }
            (Some(da), Some(db)) if da < db => {
                merged.push((da, a[ia].1, 0.0));
                ia += 1;
            }
            (Some(_), Some(db)) => {
                merged.push((db, 0.0, b[ib].1));
                ib += 1;
            }
            (Some(da), None) => {
                merged.push((da, a[ia].1, 0.0));
                ia += 1;
            }
            (None, Some(db)) => {
                merged.push((db, 0.0, b[ib].1));
                ib += 1;
            }
            (None, None) => unreachable!(),
        }
    }
    merged
}

/// The canonical scalar chain for one element; also the SIMD tail path.
#[inline]
fn scalar_point(flat: &[(isize, isize, f64)], a: &[f64], base: isize, stride: isize) -> f64 {
    let mut acc = 0.0f64;
    for &(di, dj, c) in flat {
        acc = c.mul_add(a[(base + di * stride + dj) as usize], acc);
    }
    acc
}

/// Scalar sweep of one row segment: `dst[jj]` = chain at `(i, j0 + jj)`
/// where `base` is the flat index of `(i, j0)` in `a`.
fn scalar_row(
    flat: &[(isize, isize, f64)],
    a: &[f64],
    base: isize,
    stride: isize,
    dst: &mut [f64],
) {
    for (jj, d) in dst.iter_mut().enumerate() {
        *d = scalar_point(flat, a, base + jj as isize, stride);
    }
}

/// Sweeps output rows `i_lo .. i_hi` of a band. `dst[0]` must be element
/// `(i_lo, 0)` of the output grid and rows are `b_stride` apart; `a_org`
/// is the flat index of `(0, 0)` in `a`. `lanes` is the number of pool
/// lanes sweeping sibling bands concurrently (1 for a serial sweep) —
/// it feeds the hybrid path's non-temporal store policy and can never
/// change results.
///
/// Column tiles are sized so the rows in flight stay cache-resident
/// ([`tile::col_block`]); within a tile the AVX2 path walks row pairs.
#[allow(clippy::too_many_arguments)]
pub(crate) fn sweep_band_2d(
    dispatch: Dispatch,
    taps: &Taps2,
    a: &[f64],
    a_org: isize,
    a_stride: isize,
    w: usize,
    dst: &mut [f64],
    b_stride: usize,
    i_lo: usize,
    i_hi: usize,
    lanes: usize,
) {
    if dispatch == Dispatch::Hybrid {
        // The hybrid schedule owns its own column tiling (its
        // rows-in-flight differ) and accumulation order; same
        // band/slice contract.
        return hybrid::sweep_band_hybrid(
            &taps.hybrid,
            a,
            a_org,
            a_stride,
            w,
            dst,
            b_stride,
            i_lo,
            i_hi,
            lanes,
        );
    }
    let _ = lanes; // only the hybrid store policy is lane-aware
    let cb = tile::col_block(w, taps.rows_in_flight());
    let mut j0 = 0usize;
    while j0 < w {
        let jw = cb.min(w - j0);
        match dispatch {
            Dispatch::Hybrid => unreachable!("handled above"),
            Dispatch::Scalar => {
                for i in i_lo..i_hi {
                    let base = a_org + i as isize * a_stride + j0 as isize;
                    let off = (i - i_lo) * b_stride + j0;
                    scalar_row(&taps.flat, a, base, a_stride, &mut dst[off..off + jw]);
                }
            }
            Dispatch::Avx2Fma => {
                assert!(
                    Dispatch::avx2_available(),
                    "AVX2+FMA dispatch forced on a machine without it"
                );
                #[cfg(target_arch = "x86_64")]
                {
                    let pf = super::prefetch::Prefetch::config();
                    let mut i = i_lo;
                    while i < i_hi {
                        let base = a_org + i as isize * a_stride + j0 as isize;
                        let off = (i - i_lo) * b_stride + j0;
                        if i + 1 < i_hi {
                            let (head, tail) = dst.split_at_mut(off + b_stride);
                            // SAFETY: feature availability asserted above.
                            unsafe {
                                avx2::row_pair(
                                    taps,
                                    a,
                                    base,
                                    a_stride,
                                    &mut head[off..off + jw],
                                    &mut tail[..jw],
                                    pf,
                                );
                            }
                            i += 2;
                        } else {
                            // SAFETY: feature availability asserted above.
                            unsafe {
                                avx2::row_single(
                                    taps,
                                    a,
                                    base,
                                    a_stride,
                                    &mut dst[off..off + jw],
                                    pf,
                                );
                            }
                            i += 1;
                        }
                    }
                }
                #[cfg(not(target_arch = "x86_64"))]
                unreachable!("avx2_available() is false off x86-64");
            }
        }
        j0 += jw;
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::super::prefetch::Prefetch;
    use super::{scalar_point, Taps2};
    use std::arch::x86_64::*;

    /// Issues the Algorithm-3-style T0 prefetches for one 8-column step:
    /// the next `rows` input rows below the deepest tap row (the rows the
    /// following output pair will pull in) and the store stream `cols`
    /// ahead of the current destination cursor. Pointers are built with
    /// wrapping arithmetic — `_mm_prefetch` is a pure hint that never
    /// faults, so running past a slice edge is safe by construction.
    #[inline(always)]
    unsafe fn hint_step(
        ap: *const f64,
        deep: isize,
        stride: isize,
        rows: usize,
        dsts: &[*const f64],
        j: usize,
        cols: usize,
    ) {
        for q in 0..rows as isize {
            let p = ap.wrapping_offset(deep + q * stride);
            _mm_prefetch::<_MM_HINT_T0>(p as *const i8);
        }
        if cols > 0 {
            for &d in dsts {
                _mm_prefetch::<_MM_HINT_T0>(d.wrapping_add(j + cols) as *const i8);
            }
        }
    }

    /// Two output rows, eight columns per step (four 4-lane
    /// accumulators live across the whole tap chain). `base` is the
    /// flat index of `(i, j0)`; `dst0`/`dst1` are the two output row
    /// segments (equal length).
    ///
    /// # Safety
    /// Caller must have verified AVX2 + FMA support.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn row_pair(
        taps: &Taps2,
        a: &[f64],
        base: isize,
        stride: isize,
        dst0: &mut [f64],
        dst1: &mut [f64],
        pf: Prefetch,
    ) {
        debug_assert_eq!(dst0.len(), dst1.len());
        let jw = dst0.len();
        let ap = a.as_ptr();
        let r = taps.r;
        // Deepest input row of this pair is base + (r+1)*stride; the
        // prefetch stream runs `input_rows` rows below it (the rows the
        // next pair down the band will newly touch).
        let pf_deep = base + (r + 2) * stride;
        let dst_ptrs = [dst0.as_ptr(), dst1.as_ptr()];
        let mut j = 0usize;
        while j + 8 <= jw {
            hint_step(
                ap,
                pf_deep + j as isize,
                stride,
                pf.input_rows,
                &dst_ptrs,
                j,
                pf.dst_cols,
            );
            let mut acc00 = _mm256_setzero_pd();
            let mut acc01 = _mm256_setzero_pd();
            let mut acc10 = _mm256_setzero_pd();
            let mut acc11 = _mm256_setzero_pd();
            for (p, row_taps) in taps.pair.iter().enumerate() {
                let e = p as isize - r;
                let row_base = base + e * stride + j as isize;
                for &(dj, c0, c1) in row_taps {
                    let ptr = ap.offset(row_base + dj);
                    let v0 = _mm256_loadu_pd(ptr);
                    let v1 = _mm256_loadu_pd(ptr.add(4));
                    if c0 != 0.0 {
                        let cv = _mm256_set1_pd(c0);
                        acc00 = _mm256_fmadd_pd(cv, v0, acc00);
                        acc01 = _mm256_fmadd_pd(cv, v1, acc01);
                    }
                    if c1 != 0.0 {
                        let cv = _mm256_set1_pd(c1);
                        acc10 = _mm256_fmadd_pd(cv, v0, acc10);
                        acc11 = _mm256_fmadd_pd(cv, v1, acc11);
                    }
                }
            }
            _mm256_storeu_pd(dst0.as_mut_ptr().add(j), acc00);
            _mm256_storeu_pd(dst0.as_mut_ptr().add(j + 4), acc01);
            _mm256_storeu_pd(dst1.as_mut_ptr().add(j), acc10);
            _mm256_storeu_pd(dst1.as_mut_ptr().add(j + 4), acc11);
            j += 8;
        }
        while j + 4 <= jw {
            let mut acc0 = _mm256_setzero_pd();
            let mut acc1 = _mm256_setzero_pd();
            for (p, row_taps) in taps.pair.iter().enumerate() {
                let e = p as isize - r;
                let row_base = base + e * stride + j as isize;
                for &(dj, c0, c1) in row_taps {
                    let v = _mm256_loadu_pd(ap.offset(row_base + dj));
                    if c0 != 0.0 {
                        acc0 = _mm256_fmadd_pd(_mm256_set1_pd(c0), v, acc0);
                    }
                    if c1 != 0.0 {
                        acc1 = _mm256_fmadd_pd(_mm256_set1_pd(c1), v, acc1);
                    }
                }
            }
            _mm256_storeu_pd(dst0.as_mut_ptr().add(j), acc0);
            _mm256_storeu_pd(dst1.as_mut_ptr().add(j), acc1);
            j += 4;
        }
        while j < jw {
            dst0[j] = scalar_point(&taps.flat, a, base + j as isize, stride);
            dst1[j] = scalar_point(&taps.flat, a, base + stride + j as isize, stride);
            j += 1;
        }
    }

    /// One output row (the odd last row of a band), eight columns per
    /// step.
    ///
    /// # Safety
    /// Caller must have verified AVX2 + FMA support.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn row_single(
        taps: &Taps2,
        a: &[f64],
        base: isize,
        stride: isize,
        dst: &mut [f64],
        pf: Prefetch,
    ) {
        let jw = dst.len();
        let ap = a.as_ptr();
        let r = taps.r;
        let pf_deep = base + (r + 1) * stride;
        let dst_ptrs = [dst.as_ptr()];
        let mut j = 0usize;
        while j + 8 <= jw {
            hint_step(
                ap,
                pf_deep + j as isize,
                stride,
                pf.input_rows,
                &dst_ptrs,
                j,
                pf.dst_cols,
            );
            let mut acc0 = _mm256_setzero_pd();
            let mut acc1 = _mm256_setzero_pd();
            for (p, row_taps) in taps.single.iter().enumerate() {
                let di = p as isize - r;
                let row_base = base + di * stride + j as isize;
                for &(dj, c) in row_taps {
                    let ptr = ap.offset(row_base + dj);
                    let cv = _mm256_set1_pd(c);
                    acc0 = _mm256_fmadd_pd(cv, _mm256_loadu_pd(ptr), acc0);
                    acc1 = _mm256_fmadd_pd(cv, _mm256_loadu_pd(ptr.add(4)), acc1);
                }
            }
            _mm256_storeu_pd(dst.as_mut_ptr().add(j), acc0);
            _mm256_storeu_pd(dst.as_mut_ptr().add(j + 4), acc1);
            j += 8;
        }
        while j + 4 <= jw {
            let mut acc = _mm256_setzero_pd();
            for (p, row_taps) in taps.single.iter().enumerate() {
                let di = p as isize - r;
                let row_base = base + di * stride + j as isize;
                for &(dj, c) in row_taps {
                    let v = _mm256_loadu_pd(ap.offset(row_base + dj));
                    acc = _mm256_fmadd_pd(_mm256_set1_pd(c), v, acc);
                }
            }
            _mm256_storeu_pd(dst.as_mut_ptr().add(j), acc);
            j += 4;
        }
        while j < jw {
            dst[j] = scalar_point(&taps.flat, a, base + j as isize, stride);
            j += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stencil::presets;

    #[test]
    fn pair_merge_covers_both_rows_in_canonical_order() {
        let taps = Taps2::new(&presets::star2d9p());
        assert_eq!(taps.pair.len(), 2 * 2 + 2);
        let mut from_pair_row0 = Vec::new();
        let mut from_pair_row1 = Vec::new();
        for (p, row) in taps.pair.iter().enumerate() {
            let e = p as isize - taps.r;
            for &(dj, c0, c1) in row {
                // dj strictly ascending within one input row.
                assert!(c0 != 0.0 || c1 != 0.0);
                if c0 != 0.0 {
                    from_pair_row0.push((e, dj, c0));
                }
                if c1 != 0.0 {
                    from_pair_row1.push((e - 1, dj, c1));
                }
            }
        }
        assert_eq!(from_pair_row0, taps.flat);
        assert_eq!(from_pair_row1, taps.flat);
    }

    #[test]
    fn flat_taps_are_sorted_and_nonzero() {
        for spec in presets::suite_2d() {
            let taps = Taps2::new(&spec);
            assert_eq!(taps.flat.len(), spec.points());
            let mut sorted = taps.flat.clone();
            sorted.sort_by_key(|&(di, dj, _)| (di, dj));
            assert_eq!(sorted, taps.flat, "{}", spec.name());
        }
    }
}
