//! One warn-once reader for every `HSTENCIL_*` environment knob.
//!
//! Before this module each knob (`HSTENCIL_PREFETCH`, `HSTENCIL_DISPATCH`,
//! `HSTENCIL_NT`, `HSTENCIL_THREADS`) hand-rolled the same three lines:
//! read the variable, parse it with a `(_value, warning)` fallback pair,
//! memoize the result in a `OnceLock` and print the warning exactly once.
//! Four copies of that pattern meant four chances to drift (one could
//! forget the warning, another could re-read the environment per call).
//! [`cached`] is the single implementation; the typed parsers stay next
//! to the types they produce and only the read/memoize/warn plumbing
//! lives here.
//!
//! The shared contract every knob honors (pinned by the test suite
//! below):
//!
//! * **Warn once, on stderr, then fall back.** A malformed value never
//!   aborts a run; the warning names the variable *and* the rejected
//!   value so the fix is obvious from a CI log.
//! * **Silence is silent.** An unset or empty variable produces no
//!   warning and no override.
//! * **Read once per process.** The environment is consulted on first
//!   use and memoized; later mutations of the variable are invisible.

use std::sync::OnceLock;

/// Reads `var` once, parses it with `parse`, memoizes the value in
/// `cell` and prints the parser's warning (if any) exactly once.
///
/// `parse` receives `None` when the variable is unset and returns the
/// resolved value plus an optional warning line. The warning is printed
/// on the first call only — the `OnceLock` makes both the value and the
/// side effect once-per-process.
pub(crate) fn cached<T, P>(cell: &'static OnceLock<T>, var: &str, parse: P) -> T
where
    T: Copy,
    P: FnOnce(Option<&str>) -> (T, Option<String>),
{
    *cell.get_or_init(|| {
        let raw = std::env::var(var).ok();
        let (value, warning) = parse(raw.as_deref());
        if let Some(w) = warning {
            eprintln!("{w}");
        }
        value
    })
}

#[cfg(test)]
mod tests {
    use super::super::{hybrid::NtPolicy, threads, Dispatch, Prefetch};
    use super::*;

    /// A knob's parser adapted to the common `Option<&str> -> warning`
    /// shape, so one loop can pin the shared contract for all of them.
    type WarnParser = Box<dyn Fn(Option<&str>) -> Option<String>>;

    /// Every knob's parser under the common shape.
    fn parsers() -> Vec<(&'static str, WarnParser)> {
        vec![
            (
                "HSTENCIL_PREFETCH",
                Box::new(|v| Prefetch::from_env_str_warn(v).1),
            ),
            (
                "HSTENCIL_DISPATCH",
                Box::new(|v| Dispatch::from_env_str_warn(v.unwrap_or("")).1),
            ),
            (
                "HSTENCIL_NT",
                Box::new(|v| NtPolicy::from_env_str_warn(v.unwrap_or("")).1),
            ),
            (
                "HSTENCIL_THREADS",
                Box::new(|v| threads::from_env_str_warn(v).1),
            ),
            (
                "HSTENCIL_KERNEL",
                Box::new(|v| Dispatch::pin_from_env_warn("HSTENCIL_KERNEL", v.unwrap_or("")).1),
            ),
        ]
    }

    #[test]
    fn every_knob_warns_with_variable_and_value_on_garbage() {
        for (var, parse) in parsers() {
            let warning = parse(Some("b?gus")).unwrap_or_else(|| {
                panic!("{var}: malformed value must produce a warning");
            });
            assert!(warning.contains(var), "{var}: warning must name the knob");
            assert!(
                warning.contains("b?gus"),
                "{var}: warning must echo the rejected value: {warning}"
            );
        }
    }

    #[test]
    fn every_knob_is_silent_when_unset_or_empty() {
        for (var, parse) in parsers() {
            for quiet in [None, Some("")] {
                assert!(
                    parse(quiet).is_none(),
                    "{var}: {quiet:?} must not warn (silence is silent)"
                );
            }
        }
    }

    #[test]
    fn cached_reads_memoize_and_warn_once() {
        static CELL: OnceLock<u32> = OnceLock::new();
        let mut calls = 0;
        let v = cached(&CELL, "HSTENCIL_TEST_NOT_SET", |raw| {
            calls += 1;
            assert_eq!(raw, None);
            (7u32, None)
        });
        assert_eq!(v, 7);
        assert_eq!(calls, 1);
        // Second read: the parser must not run again.
        let v = cached(&CELL, "HSTENCIL_TEST_NOT_SET", |_| {
            panic!("parser re-ran on a memoized cell")
        });
        assert_eq!(v, 7);
    }
}
