//! Optimized pure-Rust executor (v2).
//!
//! For users who want stencil *answers* on the host machine rather than
//! a simulation. Three layers (DESIGN.md §3.3 "Native executor"):
//!
//! 1. **Persistent worker pool** ([`pool`]) — `apply_2d_parallel`,
//!    `apply_3d_parallel` and `time_steps` dispatch row bands to a
//!    spawn-once pool instead of re-entering `std::thread::scope` per
//!    sweep.
//! 2. **Runtime-dispatched micro-kernels** — on x86-64 with AVX2 + FMA
//!    (checked once via `is_x86_feature_detected!`) a register-blocked
//!    `std::arch` path processes two output rows × eight columns per
//!    step; everywhere else a `mul_add` scalar fallback runs the
//!    *same* FMA chain, so both [`Dispatch`] paths are bit-identical.
//! 3. **Cache-blocked sweep tiling** — bands are walked in column tiles
//!    sized to keep the in-flight rows cache-resident on out-of-cache
//!    grids.
//! 4. **Temporal tiling for multi-sweep runs** ([`temporal`]) —
//!    [`time_steps`] fuses `t_block` time steps per DRAM round-trip
//!    through a skewed per-band pipeline, bit-identical to repeated
//!    [`apply_2d`] calls.
//! 5. **Software prefetch** ([`prefetch`]) — the AVX2 kernels hint the
//!    next input rows and the destination store stream (the paper's
//!    Algorithm 3 analogue); tunable via `HSTENCIL_PREFETCH`, never on
//!    the scalar path.
//! 6. **Hybrid 8×8 register-tile kernel** (`hybrid`, DESIGN.md §10) —
//!    [`Dispatch::Hybrid`] keeps a full 8×8 output tile in sixteen ymm
//!    accumulators, interleaving broadcast-FMA rank-1 updates (vertical
//!    taps) with shifted-load vector MLA (inner taps) per the paper's
//!    Algorithm 2, store-scattering rows as they complete — through a
//!    non-temporal staging drain on streaming bands. Bit-identical to
//!    itself across every decomposition, ULP-bounded vs the canonical
//!    chain.
//! 7. **Seeded autotuner** ([`tune`]) — per (pattern, radius, shape
//!    class, dtype, thread count) plan cache choosing kernel + temporal
//!    geometry from a deterministic seeded micro-benchmark, persisted
//!    to `target/hstencil-tune.json`; `HSTENCIL_TUNE=off|force|<path>`
//!    overrides, `off` restoring heuristic dispatch bit-for-bit.
//! 8. **Multi-core scaling as a first-class axis** (DESIGN.md §11) —
//!    band splits are balanced ([`lane_span`]: lane loads differ by at
//!    most one row, never an idle lane), the hybrid kernel's NT-store
//!    choice is lane-aware (`HSTENCIL_NT`, `hybrid`), and
//!    `HSTENCIL_THREADS` ([`threads`]) pins the lane count of every
//!    auto entry point. Thread count can never change results — every
//!    kernel is invariant to band decomposition.
//! 9. **Backend-generic tile kernels** ([`kernel`], DESIGN.md §12) —
//!    every micro-kernel is an instance of the `TileKernel<E>` trait
//!    (scalar, AVX2+FMA, AVX-512, hybrid 8×8) over an
//!    [`Element`] type (`f64` or `f32`), so
//!    one generic band driver serves every (kernel × dtype) pair.
//!    [`Dispatch::Avx512`] is runtime-detected and deliberately kept
//!    *out* of the auto heuristics (recorded plans and goldens stay
//!    byte-stable); it is reachable via [`Dispatch::candidates`], the
//!    `HSTENCIL_KERNEL`/`HSTENCIL_DISPATCH` pins, the conformance
//!    registry and the bench harness.
//!
//! Dispatch is size-aware ([`Dispatch::for_width`]) and can be pinned
//! with `HSTENCIL_DISPATCH=scalar|avx2|avx512|hybrid` (or the
//! instance-named `HSTENCIL_KERNEL`, which takes precedence) — the
//! canonical-chain paths stay bit-identical either way, the override
//! only changes speed.
//!
//! The seed executor is preserved in [`baseline`] and timed side by side
//! in `BENCH_native.json` (see `crates/bench/benches/native.rs`), the
//! recorded origin of the wall-clock trajectory.
//!
//! Verified against [`crate::reference`] by unit tests and the
//! `native_dispatch` property suite; used by the examples for large
//! time-stepped workloads.

pub mod baseline;
pub mod kernel;
pub mod pool;
pub mod prefetch;
pub mod temporal;
pub mod threads;
pub mod tune;

mod env;
mod hybrid;
mod kernel2d;
mod kernel3d;
mod tile;

pub use kernel::{NativeElement, TileKernel};
pub use prefetch::Prefetch;
pub use temporal::{time_steps_temporal, time_steps_temporal_in, Temporal};

use crate::element::{Dtype, Element};
use crate::grid::{Grid2dT, Grid3dT, GridError};
use crate::stencil::StencilSpec;
use kernel2d::Taps2;
use kernel3d::Taps3;
use pool::ThreadPool;
use std::sync::{Mutex, OnceLock};

/// Which micro-kernel family executes a sweep. [`Dispatch::Scalar`],
/// [`Dispatch::Avx2Fma`] and [`Dispatch::Avx512`] compute the identical
/// FMA chain per element, so they agree bit-for-bit within one element
/// type; [`Dispatch::Hybrid`] uses the paper's Algorithm 2 accumulation
/// order (see `hybrid`) — internally decomposition-invariant, but
/// ULP-bounded (not bit-exact) against the canonical chain.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Dispatch {
    /// Portable `mul_add` chain (single rounding per tap).
    Scalar,
    /// AVX2 + FMA register-blocked `std::arch` kernels (x86-64 only).
    Avx2Fma,
    /// AVX-512F register-blocked kernels: 8-wide f64 / 16-wide f32
    /// zmm lanes, same canonical FMA chain (x86-64 with `avx512f`
    /// only). Deliberately excluded from the auto heuristics
    /// ([`Dispatch::detect`] / [`Dispatch::for_width`] /
    /// [`Dispatch::for_sweep`]) so recorded tune plans, goldens and
    /// bench baselines stay byte-stable across hosts; pin it via
    /// `HSTENCIL_KERNEL=avx512` or select it explicitly. 2-D only for
    /// now (3-D narrows to [`Dispatch::detect`]).
    Avx512,
    /// Hybrid 8×8 register-tile schedule (Algorithm 2: rank-1 vertical
    /// updates + inner MLA + in-place fold + store scattering). 2-D
    /// only; has a bit-identical scalar fallback, so it runs on every
    /// host.
    Hybrid,
}

impl Dispatch {
    /// True if the AVX2 + FMA path can run on this machine.
    pub fn avx2_available() -> bool {
        #[cfg(target_arch = "x86_64")]
        {
            is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    }

    /// True if the AVX-512 path can run on this machine (`avx512f` is
    /// all the kernels use: plain zmm loads, broadcasts and FMAs).
    pub fn avx512_available() -> bool {
        #[cfg(target_arch = "x86_64")]
        {
            is_x86_feature_detected!("avx512f")
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    }

    /// The best dispatch for this machine (what the plain `apply_*`
    /// entry points use). AVX-512 is deliberately not auto-selected —
    /// see [`Dispatch::Avx512`].
    pub fn detect() -> Dispatch {
        if Dispatch::avx2_available() {
            Dispatch::Avx2Fma
        } else {
            Dispatch::Scalar
        }
    }

    /// The bit-identical dispatches runnable on this machine (scalar
    /// first). The property suite cross-checks all of them for
    /// bit-identity; [`Dispatch::Hybrid`] is deliberately *not* listed
    /// — its accumulation order differs, so it is checked separately
    /// (ULP-bounded) by `native_hybrid` and the conformance registry.
    pub fn candidates() -> Vec<Dispatch> {
        let mut v = vec![Dispatch::Scalar];
        if Dispatch::avx2_available() {
            v.push(Dispatch::Avx2Fma);
        }
        if Dispatch::avx512_available() {
            v.push(Dispatch::Avx512);
        }
        v
    }

    /// Stable label for reports and `BENCH_native.json`.
    pub fn label(self) -> &'static str {
        match self {
            Dispatch::Scalar => "scalar",
            Dispatch::Avx2Fma => "avx2+fma",
            Dispatch::Avx512 => "avx512",
            Dispatch::Hybrid => "hybrid8x8",
        }
    }

    /// Parses an `HSTENCIL_DISPATCH` / `HSTENCIL_KERNEL` value:
    /// `scalar`, `avx2`, `avx512` and `hybrid` pin the path, `auto` (or
    /// empty) keeps the size-aware heuristic. Pinning `avx2` / `avx512`
    /// on a machine without the ISA is ignored rather than deferred to
    /// a later kernel panic (`hybrid` is fine everywhere — it has a
    /// scalar fallback).
    pub fn from_env_str(v: &str) -> Option<Dispatch> {
        match v.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(Dispatch::Scalar),
            "avx2" | "avx2+fma" if Dispatch::avx2_available() => Some(Dispatch::Avx2Fma),
            "avx512" | "avx512f" if Dispatch::avx512_available() => Some(Dispatch::Avx512),
            "hybrid" | "hybrid8x8" => Some(Dispatch::Hybrid),
            _ => None,
        }
    }

    /// [`Dispatch::from_env_str`] plus a warning for values that are
    /// neither a known dispatch nor the explicit `auto`/empty
    /// "keep the heuristic" forms — so a typo in `HSTENCIL_DISPATCH`
    /// names itself on stderr instead of silently running the default.
    pub fn from_env_str_warn(v: &str) -> (Option<Dispatch>, Option<String>) {
        Dispatch::pin_from_env_warn("HSTENCIL_DISPATCH", v)
    }

    /// [`Dispatch::from_env_str_warn`] with the knob name
    /// parameterized, so `HSTENCIL_KERNEL` (the trait-instance pin) and
    /// `HSTENCIL_DISPATCH` share one parser and one warning format.
    pub fn pin_from_env_warn(var: &str, v: &str) -> (Option<Dispatch>, Option<String>) {
        let parsed = Dispatch::from_env_str(v);
        if parsed.is_some() {
            return (parsed, None);
        }
        let warn = match v.trim().to_ascii_lowercase().as_str() {
            "" | "auto" => None,
            "avx2" | "avx2+fma" => Some(format!(
                "hstencil: {var}={v:?} requests AVX2+FMA but this \
                 machine lacks it; using the size-aware heuristic"
            )),
            "avx512" | "avx512f" => Some(format!(
                "hstencil: {var}={v:?} requests AVX-512 but this \
                 machine lacks avx512f; using the size-aware heuristic"
            )),
            _ => Some(format!(
                "hstencil: ignoring malformed {var}={v:?} \
                 (expected scalar|avx2|avx512|hybrid|auto); using the size-aware heuristic"
            )),
        };
        (None, warn)
    }

    /// The process-wide kernel pin: `HSTENCIL_KERNEL` (the
    /// trait-instance spelling) takes precedence over
    /// `HSTENCIL_DISPATCH`; both are read once through
    /// [`env::cached`] and warn once on malformed values.
    fn env_override() -> Option<Dispatch> {
        static KERNEL_PIN: OnceLock<Option<Dispatch>> = OnceLock::new();
        let pin = env::cached(&KERNEL_PIN, "HSTENCIL_KERNEL", |v| {
            Dispatch::pin_from_env_warn("HSTENCIL_KERNEL", v.unwrap_or(""))
        });
        if pin.is_some() {
            return pin;
        }
        static OVERRIDE: OnceLock<Option<Dispatch>> = OnceLock::new();
        env::cached(&OVERRIDE, "HSTENCIL_DISPATCH", |v| {
            Dispatch::from_env_str_warn(v.unwrap_or(""))
        })
    }

    /// Size-aware dispatch for a sweep over rows of `w` interior
    /// columns: rows too narrow to fill even one 4-lane vector step run
    /// the scalar chain directly (the vector kernel would do the same
    /// element-by-element tail work with extra per-row overhead),
    /// everything else takes the AVX2 path when available. Both
    /// choices are bit-identical, so the heuristic — and the
    /// `HSTENCIL_DISPATCH` override that trumps it — can never change a
    /// result.
    pub fn for_width(w: usize) -> Dispatch {
        if let Some(d) = Dispatch::env_override() {
            return d;
        }
        if w < 4 || !Dispatch::avx2_available() {
            Dispatch::Scalar
        } else {
            Dispatch::Avx2Fma
        }
    }

    /// Dispatch for one 2-D sweep of `spec` over an `h x w` grid of
    /// `dtype` elements split across `threads` lanes, in precedence
    /// order:
    ///
    /// 1. the `HSTENCIL_KERNEL` / `HSTENCIL_DISPATCH` env pin,
    /// 2. the autotuner's cached plan for this (pattern, radius,
    ///    shape-class, dtype, thread-count) key ([`tune::plan_for`]) —
    ///    a dispatch tuned single-threaded never silently governs a
    ///    saturated sweep,
    /// 3. with tuning enabled but no plan recorded: the hybrid 8×8
    ///    kernel for streaming (out-of-cache) f64 shapes wide enough to
    ///    vector-tile — the measured win on the recorded bench host.
    ///    f32 sweeps skip this arm: the hybrid tile has no f32 vector
    ///    body yet (DESIGN.md §12), so the canonical AVX2 kernel is the
    ///    faster choice there,
    /// 4. the PR 4 width heuristic ([`Dispatch::for_width`]).
    ///
    /// `HSTENCIL_TUNE=off` disables steps 2 *and* 3, restoring the PR 4
    /// decision tree bit-for-bit.
    pub fn for_sweep_dtype(
        spec: &StencilSpec,
        h: usize,
        w: usize,
        threads: usize,
        dtype: Dtype,
    ) -> Dispatch {
        if let Some(d) = Dispatch::env_override() {
            return d;
        }
        if spec.dims() == 2 && tune::enabled() {
            if let Some(plan) = tune::plan_for(spec, h, w, threads, dtype) {
                return plan.dispatch;
            }
            if dtype == Dtype::F64
                && Dispatch::avx2_available()
                && w >= 8
                && tune::ShapeClass::of_dtype(h, w, dtype) == tune::ShapeClass::Streaming
            {
                return Dispatch::Hybrid;
            }
        }
        Dispatch::for_width(w)
    }

    /// [`Dispatch::for_sweep_dtype`] at the reference `f64` precision —
    /// the decision every pre-existing call site takes, byte-identical
    /// to its pre-dtype behavior.
    pub fn for_sweep(spec: &StencilSpec, h: usize, w: usize, threads: usize) -> Dispatch {
        Dispatch::for_sweep_dtype(spec, h, w, threads, Dtype::F64)
    }

    /// Maps 2-D-only dispatches to their 3-D equivalent: the hybrid
    /// register tile has no 3-D body, and the AVX-512 instance is 2-D
    /// only as well, so a `Hybrid`/`Avx512` pin or plan falls back to
    /// the best canonical kernel. The 3-D entry points apply this,
    /// keeping [`kernel3d`]'s dispatch match two-way.
    fn narrow_3d(self) -> Dispatch {
        match self {
            Dispatch::Hybrid | Dispatch::Avx512 => Dispatch::detect(),
            d => d,
        }
    }
}

fn assert_shapes_2d<E: Element>(spec: &StencilSpec, a: &Grid2dT<E>, b: &Grid2dT<E>) {
    assert_eq!(spec.dims(), 2);
    a.check_stencil(spec.radius(), b)
        .unwrap_or_else(|e| panic!("native 2-D sweep: {e}"));
}

fn assert_shapes_3d<E: Element>(spec: &StencilSpec, a: &Grid3dT<E>, b: &Grid3dT<E>) {
    assert_eq!(spec.dims(), 3);
    a.check_stencil(spec.radius(), b)
        .unwrap_or_else(|e| panic!("native 3-D sweep: {e}"));
}

/// One sweep of a 2-D stencil, single-threaded, best dispatch for the
/// stencil, grid shape and element type ([`Dispatch::for_sweep_dtype`]
/// — tuned plan or heuristic).
pub fn apply_2d<E: NativeElement>(spec: &StencilSpec, a: &Grid2dT<E>, b: &mut Grid2dT<E>) {
    apply_2d_with(
        Dispatch::for_sweep_dtype(spec, a.h(), a.w(), 1, E::DTYPE),
        spec,
        a,
        b,
    );
}

/// [`apply_2d_with`] with degenerate shapes rejected as a typed
/// [`GridError`] instead of a panic.
pub fn try_apply_2d_with<E: NativeElement>(
    dispatch: Dispatch,
    spec: &StencilSpec,
    a: &Grid2dT<E>,
    b: &mut Grid2dT<E>,
) -> Result<(), GridError> {
    assert_eq!(spec.dims(), 2);
    a.check_stencil(spec.radius(), b)?;
    apply_2d_with(dispatch, spec, a, b);
    Ok(())
}

/// One single-threaded 2-D sweep on an explicit dispatch path.
///
/// # Panics
/// Panics on shape/halo mismatch or if an ISA-specific dispatch is
/// forced on a machine without that ISA.
pub fn apply_2d_with<E: NativeElement>(
    dispatch: Dispatch,
    spec: &StencilSpec,
    a: &Grid2dT<E>,
    b: &mut Grid2dT<E>,
) {
    assert_shapes_2d(spec, a, b);
    let taps = Taps2::<E>::new(spec);
    let (h, w) = (a.h(), a.w());
    let (a_org, a_stride) = (a.origin() as isize, a.stride() as isize);
    let (b_org, b_stride) = (b.origin(), b.stride());
    let a_raw = a.raw();
    let end = b_org + (h - 1) * b_stride + w;
    let dst = &mut b.raw_mut()[b_org..end];
    kernel2d::sweep_band_2d(
        dispatch, &taps, a_raw, a_org, a_stride, w, dst, b_stride, 0, h, 1,
    );
}

/// Balanced contiguous split of `total` rows over `lanes`: lane `lane`
/// owns `[lo, hi)` with the first `total % lanes` lanes one row taller,
/// so lane loads differ by at most one row. The previous plain
/// `div_ceil` split could idle whole lanes (12 rows over 5 lanes gave
/// bands of 3/3/3/3 and a fifth lane with nothing to do — a 25% tail
/// imbalance where 3/3/2/2/2 has 20% less critical-path work).
pub fn lane_span(total: usize, lanes: usize, lane: usize) -> (usize, usize) {
    debug_assert!(lanes >= 1 && lane < lanes);
    let base = total / lanes;
    let rem = total % lanes;
    let lo = lane * base + lane.min(rem);
    (lo, lo + base + usize::from(lane < rem))
}

/// One sweep of a 2-D stencil with rows distributed over `threads`
/// lanes of the shared persistent pool (`HSTENCIL_THREADS` pins the
/// lane count process-wide, trumping `threads`).
pub fn apply_2d_parallel<E: NativeElement>(
    spec: &StencilSpec,
    a: &Grid2dT<E>,
    b: &mut Grid2dT<E>,
    threads: usize,
) {
    let threads = threads::resolve(threads);
    apply_2d_parallel_in(
        ThreadPool::global(),
        Dispatch::for_sweep_dtype(spec, a.h(), a.w(), threads, E::DTYPE),
        spec,
        a,
        b,
        threads,
    );
}

/// One parallel 2-D sweep on an explicit pool and dispatch path.
/// Workers own contiguous row bands (disjoint `split_at_mut` slices of
/// the output); tiny grids fall back to the serial kernel.
pub fn apply_2d_parallel_in<E: NativeElement>(
    pool: &ThreadPool,
    dispatch: Dispatch,
    spec: &StencilSpec,
    a: &Grid2dT<E>,
    b: &mut Grid2dT<E>,
    threads: usize,
) {
    assert!(threads >= 1);
    if threads == 1 || a.h() < 2 * threads {
        apply_2d_with(dispatch, spec, a, b);
        return;
    }
    assert_shapes_2d(spec, a, b);
    let taps = Taps2::<E>::new(spec);
    let (h, w) = (a.h(), a.w());
    let (a_org, a_stride) = (a.origin() as isize, a.stride() as isize);
    let (b_org, b_stride) = (b.origin(), b.stride());
    let a_raw = a.raw();

    struct Band<'a, E> {
        dst: &'a mut [E],
        i_lo: usize,
        i_hi: usize,
    }

    let mut bands: Vec<Option<Band<E>>> = Vec::with_capacity(threads);
    let mut rest = b.raw_mut();
    let mut consumed = 0usize;
    for t in 0..threads {
        let (i_lo, i_hi) = lane_span(h, threads, t);
        if i_lo >= i_hi {
            break;
        }
        let start = b_org + i_lo * b_stride;
        let end = b_org + (i_hi - 1) * b_stride + w;
        let (_, tail) = rest.split_at_mut(start - consumed);
        let (band, tail2) = tail.split_at_mut(end - start);
        rest = tail2;
        consumed = end;
        bands.push(Some(Band {
            dst: band,
            i_lo,
            i_hi,
        }));
    }
    let lanes = bands.len();
    let bands = Mutex::new(bands);
    pool.run(lanes, &|lane, _| {
        // A poisoned lock just means another lane panicked; the slots
        // are still per-lane disjoint, so don't cascade the panic.
        let band = bands.lock().unwrap_or_else(|e| e.into_inner())[lane].take();
        if let Some(band) = band {
            kernel2d::sweep_band_2d(
                dispatch, &taps, a_raw, a_org, a_stride, w, band.dst, b_stride, band.i_lo,
                band.i_hi, lanes,
            );
        }
    });
}

/// One sweep of a 3-D stencil, single-threaded, best dispatch for the
/// grid's shape ([`Dispatch::for_width`]).
pub fn apply_3d<E: NativeElement>(spec: &StencilSpec, a: &Grid3dT<E>, b: &mut Grid3dT<E>) {
    apply_3d_with(Dispatch::for_width(a.w()), spec, a, b);
}

/// [`apply_3d_with`] with degenerate shapes rejected as a typed
/// [`GridError`] instead of a panic.
pub fn try_apply_3d_with<E: NativeElement>(
    dispatch: Dispatch,
    spec: &StencilSpec,
    a: &Grid3dT<E>,
    b: &mut Grid3dT<E>,
) -> Result<(), GridError> {
    assert_eq!(spec.dims(), 3);
    a.check_stencil(spec.radius(), b)?;
    apply_3d_with(dispatch, spec, a, b);
    Ok(())
}

/// One single-threaded 3-D sweep on an explicit dispatch path (2-D-only
/// dispatches are narrowed via `Dispatch::narrow_3d`).
pub fn apply_3d_with<E: NativeElement>(
    dispatch: Dispatch,
    spec: &StencilSpec,
    a: &Grid3dT<E>,
    b: &mut Grid3dT<E>,
) {
    let dispatch = dispatch.narrow_3d();
    assert_shapes_3d(spec, a, b);
    let taps = Taps3::<E>::new(spec);
    let (d, h, w) = (a.d(), a.h(), a.w());
    let (b_org, b_ps, b_stride) = (b.origin(), b.plane_stride(), b.stride());
    let a_raw = a.raw();
    let (a_org, a_ps, a_stride) = (
        a.origin() as isize,
        a.plane_stride() as isize,
        a.stride() as isize,
    );
    let end = b_org + (d - 1) * b_ps + (h - 1) * b_stride + w;
    let dst = &mut b.raw_mut()[b_org..end];
    kernel3d::sweep_band_3d(
        dispatch,
        &taps,
        a_raw,
        a_org,
        a_ps,
        a_stride,
        h,
        w,
        dst,
        b_ps,
        b_stride,
        0,
        d * h,
    );
}

/// One sweep of a 3-D stencil with `(plane, row)` pencils distributed
/// over `threads` lanes of the shared persistent pool
/// (`HSTENCIL_THREADS` pins the lane count process-wide, trumping
/// `threads`).
pub fn apply_3d_parallel<E: NativeElement>(
    spec: &StencilSpec,
    a: &Grid3dT<E>,
    b: &mut Grid3dT<E>,
    threads: usize,
) {
    let threads = threads::resolve(threads);
    apply_3d_parallel_in(
        ThreadPool::global(),
        Dispatch::for_width(a.w()),
        spec,
        a,
        b,
        threads,
    );
}

/// One parallel 3-D sweep on an explicit pool and dispatch path. Bands
/// are contiguous ranges of the flattened `(k, i)` row index, so the
/// split stays balanced even when the grid has few planes.
pub fn apply_3d_parallel_in<E: NativeElement>(
    pool: &ThreadPool,
    dispatch: Dispatch,
    spec: &StencilSpec,
    a: &Grid3dT<E>,
    b: &mut Grid3dT<E>,
    threads: usize,
) {
    let dispatch = dispatch.narrow_3d();
    assert!(threads >= 1);
    if threads == 1 || a.d() * a.h() < 2 * threads {
        apply_3d_with(dispatch, spec, a, b);
        return;
    }
    assert_shapes_3d(spec, a, b);
    let taps = Taps3::<E>::new(spec);
    let (d, h, w) = (a.d(), a.h(), a.w());
    let (b_org, b_ps, b_stride) = (b.origin(), b.plane_stride(), b.stride());
    let a_raw = a.raw();
    let (a_org, a_ps, a_stride) = (
        a.origin() as isize,
        a.plane_stride() as isize,
        a.stride() as isize,
    );

    struct Band<'a, E> {
        dst: &'a mut [E],
        t_lo: usize,
        t_hi: usize,
    }

    let rows = d * h;
    let flat_row = |t: usize| b_org + (t / h) * b_ps + (t % h) * b_stride;
    let mut bands: Vec<Option<Band<E>>> = Vec::with_capacity(threads);
    let mut rest = b.raw_mut();
    let mut consumed = 0usize;
    for t in 0..threads {
        let (t_lo, t_hi) = lane_span(rows, threads, t);
        if t_lo >= t_hi {
            break;
        }
        let start = flat_row(t_lo);
        let end = flat_row(t_hi - 1) + w;
        let (_, tail) = rest.split_at_mut(start - consumed);
        let (band, tail2) = tail.split_at_mut(end - start);
        rest = tail2;
        consumed = end;
        bands.push(Some(Band {
            dst: band,
            t_lo,
            t_hi,
        }));
    }
    let lanes = bands.len();
    let bands = Mutex::new(bands);
    pool.run(lanes, &|lane, _| {
        // A poisoned lock just means another lane panicked; the slots
        // are still per-lane disjoint, so don't cascade the panic.
        let band = bands.lock().unwrap_or_else(|e| e.into_inner())[lane].take();
        if let Some(band) = band {
            kernel3d::sweep_band_3d(
                dispatch, &taps, a_raw, a_org, a_ps, a_stride, h, w, band.dst, b_ps, b_stride,
                band.t_lo, band.t_hi,
            );
        }
    });
}

/// Runs `sweeps` time steps; returns the final state. Halo values are
/// carried over between steps (Dirichlet boundary held at the initial
/// halo).
///
/// Out-of-cache multi-sweep runs go through the temporally-tiled
/// pipeline ([`temporal::time_steps_temporal`]), which fuses `t_block`
/// steps per DRAM round-trip; cache-resident runs ping-pong plain
/// sweeps. Both schedules are bit-identical to `sweeps` sequential
/// [`apply_2d`] calls, and both use the shared persistent pool (worker
/// threads spawned at most once per process). `HSTENCIL_THREADS` pins
/// the lane count process-wide, trumping `threads`.
pub fn time_steps<E: NativeElement>(
    spec: &StencilSpec,
    init: &Grid2dT<E>,
    sweeps: usize,
    threads: usize,
) -> Grid2dT<E> {
    temporal::time_steps_temporal(spec, init, sweeps, threads)
}

/// The naive ping-pong multi-sweep schedule on an explicit pool and
/// dispatch path: one full-grid sweep per time step, two buffers, no
/// temporal fusion. The temporal executor delegates here for
/// cache-resident working sets, the multi-sweep benchmark uses it as
/// the traffic-bound baseline, and the spawn-count tests assert the
/// pool contract against it. The ping buffer is the only extra
/// allocation beyond the returned grid (a cheap
/// [`Grid2dT::halo_image`], not a full interior copy).
pub fn time_steps_in<E: NativeElement>(
    pool: &ThreadPool,
    dispatch: Dispatch,
    spec: &StencilSpec,
    init: &Grid2dT<E>,
    sweeps: usize,
    threads: usize,
) -> Grid2dT<E> {
    if sweeps == 0 {
        return init.clone();
    }
    let mut cur = init.halo_image();
    apply_2d_parallel_in(pool, dispatch, spec, init, &mut cur, threads);
    if sweeps == 1 {
        return cur;
    }
    let mut ping = init.halo_image();
    for _ in 1..sweeps {
        apply_2d_parallel_in(pool, dispatch, spec, &cur, &mut ping, threads);
        std::mem::swap(&mut cur, &mut ping);
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{Grid2d, Grid3d};
    use crate::reference;
    use crate::stencil::presets;

    fn random_grid(h: usize, w: usize, halo: usize, seed: u64) -> Grid2d {
        // Small deterministic LCG; avoids pulling rand into the lib.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        Grid2d::from_fn(h, w, halo, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (1u64 << 31) as f64 - 1.0
        })
    }

    fn random_grid_3d(d: usize, h: usize, w: usize, halo: usize, seed: u64) -> Grid3d {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        Grid3d::from_fn(d, h, w, halo, |_, _, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (1u64 << 31) as f64 - 1.0
        })
    }

    #[test]
    fn native_matches_reference_all_presets() {
        for spec in presets::suite_2d() {
            let a = random_grid(24, 40, spec.radius(), 7);
            let mut want = Grid2d::zeros(24, 40, spec.radius());
            let mut got = Grid2d::zeros(24, 40, spec.radius());
            reference::apply_2d(&spec, &a, &mut want);
            apply_2d(&spec, &a, &mut got);
            assert!(
                want.max_interior_diff(&got) < 1e-12,
                "{} diverges",
                spec.name()
            );
        }
    }

    #[test]
    fn dispatch_paths_are_bit_identical() {
        for spec in presets::suite_2d() {
            let a = random_grid(33, 47, spec.radius(), 13);
            let mut scalar = Grid2d::zeros(33, 47, spec.radius());
            apply_2d_with(Dispatch::Scalar, &spec, &a, &mut scalar);
            for d in Dispatch::candidates() {
                let mut got = Grid2d::zeros(33, 47, spec.radius());
                apply_2d_with(d, &spec, &a, &mut got);
                assert_eq!(
                    scalar.max_interior_diff(&got),
                    0.0,
                    "{} under {:?}",
                    spec.name(),
                    d
                );
            }
        }
    }

    #[test]
    fn f32_dispatch_paths_are_bit_identical() {
        // The same bit-identity contract holds per element type: every
        // canonical-chain instance of one dtype agrees exactly with the
        // scalar chain at that dtype (candidates() includes the AVX-512
        // instances when the host has them).
        for spec in presets::suite_2d() {
            let a = Grid2dT::<f32>::convert_from(&random_grid(33, 47, spec.radius(), 13));
            let mut scalar = Grid2dT::<f32>::zeros(33, 47, spec.radius());
            apply_2d_with(Dispatch::Scalar, &spec, &a, &mut scalar);
            for d in Dispatch::candidates() {
                let mut got = Grid2dT::<f32>::zeros(33, 47, spec.radius());
                apply_2d_with(d, &spec, &a, &mut got);
                assert_eq!(
                    scalar.max_interior_diff(&got),
                    0.0,
                    "{} under {:?}",
                    spec.name(),
                    d
                );
            }
        }
    }

    #[test]
    fn f32_sweep_tracks_the_f64_reference_within_f32_precision() {
        // Inputs in [-1, 1] and presets with O(1) tap sums: the f32
        // sweep differs from the f64 reference only by input narrowing
        // plus per-tap rounding — well inside 1e-4 absolute here, and
        // far outside what an indexing bug would produce.
        for spec in presets::suite_2d() {
            let a64 = random_grid(24, 40, spec.radius(), 7);
            let mut want = Grid2d::zeros(24, 40, spec.radius());
            reference::apply_2d(&spec, &a64, &mut want);
            let a32 = Grid2dT::<f32>::convert_from(&a64);
            let mut got32 = Grid2dT::<f32>::zeros(24, 40, spec.radius());
            apply_2d(&spec, &a32, &mut got32);
            let got = Grid2d::convert_from(&got32);
            let diff = got.max_interior_diff(&want);
            assert!(diff < 1e-4, "{}: f32 drifted {diff:e}", spec.name());
            assert!(diff > 0.0 || spec.points() == 1, "{}", spec.name());
        }
    }

    #[test]
    fn f32_parallel_and_hybrid_match_their_serial_chains() {
        let spec = presets::box2d25p();
        let a = Grid2dT::<f32>::convert_from(&random_grid(64, 48, 2, 11));
        let mut serial = Grid2dT::<f32>::zeros(64, 48, 2);
        apply_2d(&spec, &a, &mut serial);
        for threads in [2, 3, 7] {
            let mut par = Grid2dT::<f32>::zeros(64, 48, 2);
            apply_2d_parallel(&spec, &a, &mut par, threads);
            assert_eq!(serial.max_interior_diff(&par), 0.0, "threads={threads}");
        }
        // The f32 hybrid path (scalar chain + generic staged stores) is
        // decomposition-invariant too.
        let mut hy1 = Grid2dT::<f32>::zeros(64, 48, 2);
        apply_2d_with(Dispatch::Hybrid, &spec, &a, &mut hy1);
        for threads in [2, 5] {
            let mut hyn = Grid2dT::<f32>::zeros(64, 48, 2);
            apply_2d_parallel_in(
                ThreadPool::global(),
                Dispatch::Hybrid,
                &spec,
                &a,
                &mut hyn,
                threads,
            );
            assert_eq!(hy1.max_interior_diff(&hyn), 0.0, "threads={threads}");
        }
    }

    #[test]
    fn avx512_narrows_to_a_canonical_3d_kernel() {
        // A 3-D sweep forced onto the 2-D-only AVX-512 dispatch must
        // narrow instead of hitting kernel3d's unreachable arm — and
        // stay bit-identical to scalar (it narrows to a canonical
        // chain).
        let spec = presets::star3d7p();
        let a = random_grid_3d(5, 9, 13, 1, 23);
        let mut scalar = Grid3d::zeros(5, 9, 13, 1);
        apply_3d_with(Dispatch::Scalar, &spec, &a, &mut scalar);
        for d in [Dispatch::Avx512, Dispatch::Hybrid] {
            let mut got = Grid3d::zeros(5, 9, 13, 1);
            apply_3d_with(d, &spec, &a, &mut got);
            assert_eq!(scalar.max_interior_diff(&got), 0.0, "{d:?}");
        }
    }

    #[test]
    fn lane_span_is_balanced_and_covers_every_row() {
        for total in [1usize, 2, 5, 12, 13, 100, 4096] {
            for lanes in [1usize, 2, 3, 5, 7, 16] {
                let spans: Vec<_> = (0..lanes).map(|k| lane_span(total, lanes, k)).collect();
                // Contiguous, in-order, exact cover.
                assert_eq!(spans[0].0, 0);
                assert_eq!(spans[lanes - 1].1, total);
                for k in 1..lanes {
                    assert_eq!(spans[k].0, spans[k - 1].1, "total={total} lanes={lanes}");
                }
                // Balanced: lane loads differ by at most one row, and
                // no lane idles unless there are fewer rows than lanes.
                let sizes: Vec<_> = spans.iter().map(|&(lo, hi)| hi - lo).collect();
                let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(max - min <= 1, "total={total} lanes={lanes} {sizes:?}");
                if total >= lanes {
                    assert!(*min >= 1, "idle lane: total={total} lanes={lanes}");
                }
            }
        }
        // The div_ceil regression case: 12 rows over 5 lanes must not
        // leave a lane empty while another sweeps a 3-row band.
        let spans: Vec<_> = (0..5).map(|k| lane_span(12, 5, k)).collect();
        assert_eq!(spans, vec![(0, 3), (3, 6), (6, 8), (8, 10), (10, 12)]);
    }

    #[test]
    fn parallel_matches_serial() {
        let spec = presets::box2d25p();
        let a = random_grid(64, 48, 2, 11);
        let mut serial = Grid2d::zeros(64, 48, 2);
        let mut par = Grid2d::zeros(64, 48, 2);
        apply_2d(&spec, &a, &mut serial);
        for threads in [2, 3, 4, 7] {
            apply_2d_parallel(&spec, &a, &mut par, threads);
            assert_eq!(serial.max_interior_diff(&par), 0.0, "threads={threads}");
        }
    }

    #[test]
    fn parallel_falls_back_for_tiny_grids() {
        let spec = presets::star2d5p();
        let a = random_grid(8, 8, 1, 3);
        let mut out = Grid2d::zeros(8, 8, 1);
        apply_2d_parallel(&spec, &a, &mut out, 16);
        let mut want = Grid2d::zeros(8, 8, 1);
        reference::apply_2d(&spec, &a, &mut want);
        assert!(want.max_interior_diff(&out) < 1e-12);
    }

    #[test]
    fn apply_3d_matches_reference_all_presets() {
        for spec in presets::suite_3d() {
            let r = spec.radius();
            let a = random_grid_3d(6, 10, 21, r, 17);
            let mut want = Grid3d::zeros(6, 10, 21, r);
            let mut got = Grid3d::zeros(6, 10, 21, r);
            reference::apply_3d(&spec, &a, &mut want);
            apply_3d(&spec, &a, &mut got);
            assert!(
                want.max_interior_diff(&got) < 1e-12,
                "{} diverges",
                spec.name()
            );
        }
    }

    #[test]
    fn apply_3d_dispatch_paths_are_bit_identical() {
        for spec in presets::suite_3d() {
            let r = spec.radius();
            let a = random_grid_3d(5, 9, 13, r, 23);
            let mut scalar = Grid3d::zeros(5, 9, 13, r);
            apply_3d_with(Dispatch::Scalar, &spec, &a, &mut scalar);
            for d in Dispatch::candidates() {
                let mut got = Grid3d::zeros(5, 9, 13, r);
                apply_3d_with(d, &spec, &a, &mut got);
                assert_eq!(scalar.max_interior_diff(&got), 0.0, "{}", spec.name());
            }
        }
    }

    #[test]
    fn apply_3d_parallel_matches_serial() {
        let spec = presets::box3d27p();
        let a = random_grid_3d(7, 12, 18, 1, 29);
        let mut serial = Grid3d::zeros(7, 12, 18, 1);
        apply_3d(&spec, &a, &mut serial);
        for threads in [2, 3, 5, 9] {
            let mut par = Grid3d::zeros(7, 12, 18, 1);
            apply_3d_parallel(&spec, &a, &mut par, threads);
            assert_eq!(serial.max_interior_diff(&par), 0.0, "threads={threads}");
        }
    }

    #[test]
    fn time_steps_preserve_constant_field() {
        let spec = presets::heat2d();
        let a = Grid2d::from_fn(16, 16, 1, |_, _| 5.0);
        let out = time_steps(&spec, &a, 10, 2);
        assert!((out.at(8, 8) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn heat_steps_decay_towards_boundary() {
        let spec = presets::heat2d();
        let mut a = Grid2d::zeros(16, 16, 1);
        a.set(8, 8, 1000.0);
        let out = time_steps(&spec, &a, 50, 1);
        assert!(out.at(8, 8) < 1000.0);
        assert!(out.at(8, 8) > 0.0);
        // Total heat leaks through the cold boundary, never grows.
        let total: f64 = (0..16)
            .flat_map(|i| (0..16).map(move |j| (i, j)))
            .map(|(i, j)| out.at(i, j))
            .sum();
        assert!(total <= 1000.0 + 1e-9);
    }

    #[test]
    fn time_steps_spawns_threads_at_most_once() {
        let spec = presets::star2d5p();
        let a = random_grid(32, 32, 1, 5);
        let pool = ThreadPool::new();
        let first = time_steps_in(&pool, Dispatch::detect(), &spec, &a, 25, 4);
        assert_eq!(pool.spawned_threads(), 3, "one spawn per lane, ever");
        let second = time_steps_in(&pool, Dispatch::detect(), &spec, &a, 25, 4);
        assert_eq!(pool.spawned_threads(), 3, "second call reuses the pool");
        assert_eq!(first.max_interior_diff(&second), 0.0);
    }

    #[test]
    fn dispatch_heuristic_is_bit_identical_to_both_paths() {
        // Whatever `for_width` picks (including sub-vector widths that
        // dispatch to scalar), the public entry point must agree
        // bit-for-bit with an explicitly forced scalar sweep.
        let spec = presets::star2d5p();
        for w in [2usize, 3, 4, 7, 8, 33, 256] {
            let a = random_grid(12, w, 1, 61);
            let mut auto = Grid2d::zeros(12, w, 1);
            apply_2d(&spec, &a, &mut auto);
            let mut scalar = Grid2d::zeros(12, w, 1);
            apply_2d_with(Dispatch::Scalar, &spec, &a, &mut scalar);
            assert_eq!(scalar.max_interior_diff(&auto), 0.0, "w={w}");
        }
    }

    #[test]
    fn dispatch_for_width_prefers_scalar_below_one_vector() {
        // Without an env override (none is set under `cargo test`),
        // sub-vector rows go scalar; wide rows take SIMD when present.
        // AVX-512 is never the auto pick even where available.
        assert_eq!(Dispatch::for_width(2), Dispatch::Scalar);
        assert_eq!(Dispatch::for_width(3), Dispatch::Scalar);
        if Dispatch::avx2_available() {
            assert_eq!(Dispatch::for_width(4096), Dispatch::Avx2Fma);
        } else {
            assert_eq!(Dispatch::for_width(4096), Dispatch::Scalar);
        }
    }

    #[test]
    fn dispatch_env_parsing() {
        assert_eq!(Dispatch::from_env_str("scalar"), Some(Dispatch::Scalar));
        assert_eq!(Dispatch::from_env_str(" SCALAR "), Some(Dispatch::Scalar));
        assert_eq!(Dispatch::from_env_str("auto"), None);
        assert_eq!(Dispatch::from_env_str(""), None);
        assert_eq!(Dispatch::from_env_str("bogus"), None);
        assert_eq!(Dispatch::from_env_str("hybrid"), Some(Dispatch::Hybrid));
        assert_eq!(Dispatch::from_env_str("HYBRID8x8"), Some(Dispatch::Hybrid));
        let avx2 = Dispatch::from_env_str("avx2");
        if Dispatch::avx2_available() {
            assert_eq!(avx2, Some(Dispatch::Avx2Fma));
            assert_eq!(Dispatch::from_env_str("avx2+fma"), Some(Dispatch::Avx2Fma));
        } else {
            // Pinning an unavailable path is ignored, not deferred to a
            // later kernel panic.
            assert_eq!(avx2, None);
        }
        let avx512 = Dispatch::from_env_str("avx512");
        if Dispatch::avx512_available() {
            assert_eq!(avx512, Some(Dispatch::Avx512));
            assert_eq!(Dispatch::from_env_str("AVX512F"), Some(Dispatch::Avx512));
        } else {
            assert_eq!(avx512, None);
        }
    }

    #[test]
    fn dispatch_env_malformed_values_warn_with_value_and_default() {
        let (parsed, warn) = Dispatch::from_env_str_warn("bogus");
        assert_eq!(parsed, None);
        let warn = warn.expect("malformed value must produce a warning");
        assert!(warn.contains("HSTENCIL_DISPATCH"), "{warn}");
        assert!(warn.contains("\"bogus\""), "names the bad value: {warn}");
        assert!(warn.contains("heuristic"), "names the default: {warn}");
        // The intentional "keep the heuristic" spellings stay silent.
        assert_eq!(Dispatch::from_env_str_warn("auto"), (None, None));
        assert_eq!(Dispatch::from_env_str_warn(""), (None, None));
        assert!(Dispatch::from_env_str_warn("scalar").1.is_none());
        assert!(Dispatch::from_env_str_warn("hybrid").1.is_none());
        if !Dispatch::avx2_available() {
            // Requesting a path the host lacks is a named warning too.
            let (p, w) = Dispatch::from_env_str_warn("avx2");
            assert_eq!(p, None);
            assert!(w.unwrap().contains("AVX2"));
        }
        if !Dispatch::avx512_available() {
            let (p, w) = Dispatch::from_env_str_warn("avx512");
            assert_eq!(p, None);
            assert!(w.unwrap().contains("avx512f"));
        }
    }

    #[test]
    fn kernel_pin_parser_names_its_own_knob() {
        // HSTENCIL_KERNEL shares the dispatch parser but must warn
        // under its own name, so a typo in either knob is attributable.
        assert_eq!(
            Dispatch::pin_from_env_warn("HSTENCIL_KERNEL", "scalar"),
            (Some(Dispatch::Scalar), None)
        );
        assert_eq!(
            Dispatch::pin_from_env_warn("HSTENCIL_KERNEL", "hybrid8x8").0,
            Some(Dispatch::Hybrid)
        );
        let (p, w) = Dispatch::pin_from_env_warn("HSTENCIL_KERNEL", "b?gus");
        assert_eq!(p, None);
        let w = w.expect("malformed pin must warn");
        assert!(w.contains("HSTENCIL_KERNEL"), "{w}");
        assert!(w.contains("b?gus"), "{w}");
        // Silence contract: unset-equivalent spellings stay quiet.
        assert_eq!(
            Dispatch::pin_from_env_warn("HSTENCIL_KERNEL", ""),
            (None, None)
        );
        assert_eq!(
            Dispatch::pin_from_env_warn("HSTENCIL_KERNEL", "auto"),
            (None, None)
        );
        // ISA pins resolve exactly like HSTENCIL_DISPATCH.
        assert_eq!(
            Dispatch::pin_from_env_warn("HSTENCIL_KERNEL", "avx512").0,
            Dispatch::from_env_str("avx512")
        );
    }

    #[test]
    fn time_steps_matches_naive_ping_pong() {
        // The halo-image fast path must be observationally identical to
        // the seed's clone-twice ping-pong loop.
        let spec = presets::box2d9p();
        let a = random_grid(20, 28, 1, 41);
        for sweeps in [0usize, 1, 2, 5] {
            let fast = time_steps(&spec, &a, sweeps, 2);
            let mut cur = a.clone();
            let mut next = a.clone();
            for _ in 0..sweeps {
                apply_2d(&spec, &cur, &mut next);
                std::mem::swap(&mut cur, &mut next);
            }
            assert_eq!(fast.max_interior_diff(&cur), 0.0, "sweeps={sweeps}");
        }
    }
}
