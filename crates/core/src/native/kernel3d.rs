//! 3-D micro-kernels with the same dispatch / bit-exactness contract as
//! [`super::kernel2d`]: every output element is one FMA chain over the
//! nonzero taps in canonical `(dk, di, dj)` ascending order, so the AVX2
//! path and the `mul_add` scalar fallback agree bit-for-bit.
//!
//! The vector path register-blocks one output row (eight columns per
//! step) across the full tap chain; input rows are walked grouped by
//! `(dk, di)` so each pencil of loads stays within one cache line run.

use super::tile;
use super::Dispatch;
use crate::stencil::StencilSpec;

/// One input row's taps: `(dk, di, [(dj, c)...])` in canonical order.
pub(crate) type TapRow = (isize, isize, Vec<(isize, f64)>);

/// Preprocessed nonzero taps of a 3-D stencil.
pub(crate) struct Taps3 {
    /// Canonical `(dk, di, dj, c)` chain — the bit-exactness contract.
    pub flat: Vec<(isize, isize, isize, f64)>,
    /// Taps grouped by input row in canonical order (rows with no
    /// nonzero taps omitted).
    pub rows: Vec<TapRow>,
}

impl Taps3 {
    pub fn new(spec: &StencilSpec) -> Taps3 {
        assert_eq!(spec.dims(), 3);
        let r = spec.radius() as isize;
        let mut flat = Vec::new();
        let mut rows: Vec<TapRow> = Vec::new();
        for dk in -r..=r {
            for di in -r..=r {
                let mut row = Vec::new();
                for dj in -r..=r {
                    let c = spec.c3(dk, di, dj);
                    if c != 0.0 {
                        flat.push((dk, di, dj, c));
                        row.push((dj, c));
                    }
                }
                if !row.is_empty() {
                    rows.push((dk, di, row));
                }
            }
        }
        Taps3 { flat, rows }
    }

    /// Rows resident while one column tile streams (all input rows the
    /// chain touches plus the output row).
    pub fn rows_in_flight(&self) -> usize {
        self.rows.len() + 1
    }
}

/// The canonical scalar chain for one element; also the SIMD tail path.
#[inline]
fn scalar_point(
    flat: &[(isize, isize, isize, f64)],
    a: &[f64],
    base: isize,
    plane_stride: isize,
    stride: isize,
) -> f64 {
    let mut acc = 0.0f64;
    for &(dk, di, dj, c) in flat {
        acc = c.mul_add(
            a[(base + dk * plane_stride + di * stride + dj) as usize],
            acc,
        );
    }
    acc
}

/// Sweeps the flattened output rows `t_lo .. t_hi` (row `t` is plane
/// `t / h`, row `t % h`). `dst[0]` must be element `(k_lo, i_lo, 0)`
/// of the output grid where `t_lo = k_lo * h + i_lo`; `strides` are the
/// output grid's `(plane_stride, stride)`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn sweep_band_3d(
    dispatch: Dispatch,
    taps: &Taps3,
    a: &[f64],
    a_org: isize,
    a_plane_stride: isize,
    a_stride: isize,
    h: usize,
    w: usize,
    dst: &mut [f64],
    b_plane_stride: usize,
    b_stride: usize,
    t_lo: usize,
    t_hi: usize,
) {
    let (k_lo, i_lo) = (t_lo / h, t_lo % h);
    let band_org = k_lo * b_plane_stride + i_lo * b_stride;
    let cb = tile::col_block(w, taps.rows_in_flight());
    let mut j0 = 0usize;
    while j0 < w {
        let jw = cb.min(w - j0);
        for t in t_lo..t_hi {
            let (k, i) = (t / h, t % h);
            let base = a_org + k as isize * a_plane_stride + i as isize * a_stride + j0 as isize;
            let off = k * b_plane_stride + i * b_stride + j0 - band_org;
            let row = &mut dst[off..off + jw];
            match dispatch {
                Dispatch::Scalar => {
                    for (jj, d) in row.iter_mut().enumerate() {
                        *d = scalar_point(
                            &taps.flat,
                            a,
                            base + jj as isize,
                            a_plane_stride,
                            a_stride,
                        );
                    }
                }
                Dispatch::Avx2Fma => {
                    assert!(
                        Dispatch::avx2_available(),
                        "AVX2+FMA dispatch forced on a machine without it"
                    );
                    #[cfg(target_arch = "x86_64")]
                    // SAFETY: feature availability asserted above.
                    unsafe {
                        avx2::row_single(taps, a, base, a_plane_stride, a_stride, row);
                    }
                    #[cfg(not(target_arch = "x86_64"))]
                    unreachable!("avx2_available() is false off x86-64");
                }
            }
        }
        j0 += jw;
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::{scalar_point, Taps3};
    use std::arch::x86_64::*;

    /// One output row, eight columns per step.
    ///
    /// # Safety
    /// Caller must have verified AVX2 + FMA support.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn row_single(
        taps: &Taps3,
        a: &[f64],
        base: isize,
        plane_stride: isize,
        stride: isize,
        dst: &mut [f64],
    ) {
        let jw = dst.len();
        let ap = a.as_ptr();
        let mut j = 0usize;
        while j + 8 <= jw {
            let mut acc0 = _mm256_setzero_pd();
            let mut acc1 = _mm256_setzero_pd();
            for &(dk, di, ref row_taps) in &taps.rows {
                let row_base = base + dk * plane_stride + di * stride + j as isize;
                for &(dj, c) in row_taps {
                    let ptr = ap.offset(row_base + dj);
                    let cv = _mm256_set1_pd(c);
                    acc0 = _mm256_fmadd_pd(cv, _mm256_loadu_pd(ptr), acc0);
                    acc1 = _mm256_fmadd_pd(cv, _mm256_loadu_pd(ptr.add(4)), acc1);
                }
            }
            _mm256_storeu_pd(dst.as_mut_ptr().add(j), acc0);
            _mm256_storeu_pd(dst.as_mut_ptr().add(j + 4), acc1);
            j += 8;
        }
        while j + 4 <= jw {
            let mut acc = _mm256_setzero_pd();
            for &(dk, di, ref row_taps) in &taps.rows {
                let row_base = base + dk * plane_stride + di * stride + j as isize;
                for &(dj, c) in row_taps {
                    let v = _mm256_loadu_pd(ap.offset(row_base + dj));
                    acc = _mm256_fmadd_pd(_mm256_set1_pd(c), v, acc);
                }
            }
            _mm256_storeu_pd(dst.as_mut_ptr().add(j), acc);
            j += 4;
        }
        while j < jw {
            dst[j] = scalar_point(&taps.flat, a, base + j as isize, plane_stride, stride);
            j += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stencil::presets;

    #[test]
    fn flat_taps_match_point_counts_and_order() {
        for spec in presets::suite_3d() {
            let taps = Taps3::new(&spec);
            assert_eq!(taps.flat.len(), spec.points(), "{}", spec.name());
            let mut sorted = taps.flat.clone();
            sorted.sort_by_key(|&(dk, di, dj, _)| (dk, di, dj));
            assert_eq!(sorted, taps.flat);
            let from_rows: usize = taps.rows.iter().map(|(_, _, r)| r.len()).sum();
            assert_eq!(from_rows, spec.points());
        }
    }
}
