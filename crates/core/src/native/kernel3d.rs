//! 3-D micro-kernels with the same dispatch / bit-exactness contract as
//! [`super::kernel2d`]: every output element is one FMA chain over the
//! nonzero taps in canonical `(dk, di, dj)` ascending order, so every
//! dispatch path agrees bit-for-bit within one element type.
//!
//! The `f64` AVX2 path register-blocks *two output rows × eight columns*
//! per step whenever the flattened `(k, i)` walk has two rows left in
//! the same plane (the same register-blocking the 2-D kernel uses, so
//! each input row vector is loaded once and reused by every tap of both
//! rows that touches it); odd trailing rows and plane seams fall back
//! to the single-row kernel. Other (instance × dtype) combinations use
//! the [`TileKernel::execute3`] scalar-chain default — bit-identical,
//! just unvectorized (DESIGN.md §12 records the gap). Input rows are
//! walked grouped by `(dk, di)` so each pencil of loads stays within
//! one cache line run.
//!
//! [`TileKernel::execute3`]: super::kernel::TileKernel::execute3

use super::kernel::{NativeElement, TileKernel};
use super::kernel2d::merge_pair_rows;
use super::tile;
use super::Dispatch;
use crate::element::Element;
use crate::stencil::StencilSpec;

/// One input row's taps: `(dk, di, [(dj, c)...])` in canonical order.
pub(crate) type TapRow<E> = (isize, isize, Vec<(isize, E)>);

/// `(dk, e, merged)` input-row entry for a fused output row pair; see
/// [`Taps3::pairs`].
pub(crate) type PairTapRow<E> = (isize, isize, Vec<(isize, E, E)>);

/// Preprocessed nonzero taps of a 3-D stencil, with coefficients
/// narrowed to the kernel's element type (nonzero-ness is decided on
/// the `f64` master value, so the tap *structure* is dtype-invariant).
pub struct Taps3<E: Element> {
    /// Canonical `(dk, di, dj, c)` chain — the bit-exactness contract.
    pub(crate) flat: Vec<(isize, isize, isize, E)>,
    /// Taps grouped by input row in canonical order (rows with no
    /// nonzero taps omitted).
    pub(crate) rows: Vec<TapRow<E>>,
    /// Taps grouped by input row for an output row *pair* `(k, i)`,
    /// `(k, i+1)` within one plane: entry `(dk, e, merged)` covers input
    /// row `(k + dk, i + e)` with `e` in `-r ..= r+1`; `merged` lists
    /// `(dj, c_row_i, c_row_i1)` ascending by `dj` (zero coefficient =
    /// tap does not touch that output row). `dk`-major so walking the
    /// list applies taps in canonical order for both rows.
    pub(crate) pairs: Vec<PairTapRow<E>>,
}

impl<E: Element> Taps3<E> {
    pub(crate) fn new(spec: &StencilSpec) -> Taps3<E> {
        assert_eq!(spec.dims(), 3);
        let r = spec.radius() as isize;
        let n = (2 * r + 1) as usize;
        let mut flat = Vec::new();
        let mut rows: Vec<TapRow<E>> = Vec::new();
        let mut singles = vec![Vec::new(); n * n];
        for dk in -r..=r {
            for di in -r..=r {
                let mut row = Vec::new();
                for dj in -r..=r {
                    let c = spec.c3(dk, di, dj);
                    if c != 0.0 {
                        flat.push((dk, di, dj, E::from_f64(c)));
                        row.push((dj, E::from_f64(c)));
                    }
                }
                singles[((dk + r) * (2 * r + 1) + (di + r)) as usize] = row.clone();
                if !row.is_empty() {
                    rows.push((dk, di, row));
                }
            }
        }
        let single = |dk: isize, di: isize| -> &[(isize, E)] {
            if di < -r || di > r {
                &[]
            } else {
                &singles[((dk + r) * (2 * r + 1) + (di + r)) as usize]
            }
        };
        // Output row i sees input row i+e as tap di = e; output row i+1
        // sees it as di = e-1 — same merge as the 2-D pair table, once
        // per dk plane.
        let mut pairs = Vec::new();
        for dk in -r..=r {
            for e in -r..=(r + 1) {
                let merged = merge_pair_rows(single(dk, e), single(dk, e - 1));
                if !merged.is_empty() {
                    pairs.push((dk, e, merged));
                }
            }
        }
        Taps3 { flat, rows, pairs }
    }

    /// Rows resident while one column tile streams (all input rows the
    /// chain touches plus the output row).
    pub(crate) fn rows_in_flight(&self) -> usize {
        self.rows.len() + 1
    }
}

/// The canonical scalar chain for one element; also the SIMD tail path.
#[inline]
fn scalar_point<E: Element>(
    flat: &[(isize, isize, isize, E)],
    a: &[E],
    base: isize,
    plane_stride: isize,
    stride: isize,
) -> E {
    let mut acc = E::ZERO;
    for &(dk, di, dj, c) in flat {
        acc = c.mul_add(
            a[(base + dk * plane_stride + di * stride + dj) as usize],
            acc,
        );
    }
    acc
}

/// Scalar sweep of one row segment — the [`TileKernel::execute3`]
/// default body.
///
/// [`TileKernel::execute3`]: super::kernel::TileKernel::execute3
pub(crate) fn scalar_row3<E: Element>(
    taps: &Taps3<E>,
    a: &[E],
    base: isize,
    plane_stride: isize,
    stride: isize,
    dst: &mut [E],
) {
    for (jj, d) in dst.iter_mut().enumerate() {
        *d = scalar_point(&taps.flat, a, base + jj as isize, plane_stride, stride);
    }
}

/// Sweeps the flattened output rows `t_lo .. t_hi` (row `t` is plane
/// `t / h`, row `t % h`). `dst[0]` must be element `(k_lo, i_lo, 0)`
/// of the output grid where `t_lo = k_lo * h + i_lo`; `strides` are the
/// output grid's `(plane_stride, stride)`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn sweep_band_3d<E: NativeElement>(
    dispatch: Dispatch,
    taps: &Taps3<E>,
    a: &[E],
    a_org: isize,
    a_plane_stride: isize,
    a_stride: isize,
    h: usize,
    w: usize,
    dst: &mut [E],
    b_plane_stride: usize,
    b_stride: usize,
    t_lo: usize,
    t_hi: usize,
) {
    match dispatch {
        Dispatch::Scalar => drive3::<E, E::KScalar>(
            taps,
            a,
            a_org,
            a_plane_stride,
            a_stride,
            h,
            w,
            dst,
            b_plane_stride,
            b_stride,
            t_lo,
            t_hi,
        ),
        Dispatch::Avx2Fma => drive3::<E, E::KAvx2>(
            taps,
            a,
            a_org,
            a_plane_stride,
            a_stride,
            h,
            w,
            dst,
            b_plane_stride,
            b_stride,
            t_lo,
            t_hi,
        ),
        // The hybrid register tile and the AVX-512 instance are 2-D
        // only; the 3-D entry points narrow them away before the
        // kernel.
        Dispatch::Hybrid | Dispatch::Avx512 => {
            unreachable!("Dispatch::narrow_3d maps 2-D-only dispatches before kernel3d")
        }
    }
}

/// The 3-D band walk for one trait instance: column tiles sized by
/// rows-in-flight, rows paired within a plane when the instance
/// register-blocks (`tile_m >= 2`), single rows at plane seams and odd
/// tails — exactly the pre-trait walk.
#[allow(clippy::too_many_arguments)]
fn drive3<E: Element, K: TileKernel<E>>(
    taps: &Taps3<E>,
    a: &[E],
    a_org: isize,
    a_plane_stride: isize,
    a_stride: isize,
    h: usize,
    w: usize,
    dst: &mut [E],
    b_plane_stride: usize,
    b_stride: usize,
    t_lo: usize,
    t_hi: usize,
) {
    assert!(
        K::available(),
        "{} dispatch forced on a machine without it",
        K::NAME
    );
    let pair_rows = K::config().tile_m >= 2;
    let (k_lo, i_lo) = (t_lo / h, t_lo % h);
    let band_org = k_lo * b_plane_stride + i_lo * b_stride;
    let cb = tile::col_block(w, taps.rows_in_flight(), std::mem::size_of::<E>());
    let mut j0 = 0usize;
    while j0 < w {
        let jw = cb.min(w - j0);
        let mut t = t_lo;
        while t < t_hi {
            let (k, i) = (t / h, t % h);
            let base = a_org + k as isize * a_plane_stride + i as isize * a_stride + j0 as isize;
            let off = k * b_plane_stride + i * b_stride + j0 - band_org;
            // Register-block two rows whenever the next flattened row
            // stays in the same plane.
            if pair_rows && t + 1 < t_hi && i + 1 < h {
                let (head, tail) = dst.split_at_mut(off + b_stride);
                // SAFETY: availability asserted above; the slices
                // cover both row segments of the pair.
                unsafe {
                    K::execute3(
                        taps,
                        a,
                        base,
                        a_plane_stride,
                        a_stride,
                        &mut head[off..off + jw],
                        Some(&mut tail[..jw]),
                    );
                }
                t += 2;
            } else {
                // SAFETY: as above, single-row case.
                unsafe {
                    K::execute3(
                        taps,
                        a,
                        base,
                        a_plane_stride,
                        a_stride,
                        &mut dst[off..off + jw],
                        None,
                    );
                }
                t += 1;
            }
        }
        j0 += jw;
    }
}

#[cfg(target_arch = "x86_64")]
pub(crate) mod avx2 {
    use super::{scalar_point, Taps3};
    use std::arch::x86_64::*;

    /// Two output rows `(k, i)`, `(k, i+1)` of one plane, eight columns
    /// per step (four 4-lane accumulators live across the whole tap
    /// chain). `base` is the flat index of `(k, i, j0)`; `dst0`/`dst1`
    /// are the two output row segments (equal length).
    ///
    /// # Safety
    /// Caller must have verified AVX2 + FMA support.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(crate) unsafe fn row_pair(
        taps: &Taps3<f64>,
        a: &[f64],
        base: isize,
        plane_stride: isize,
        stride: isize,
        dst0: &mut [f64],
        dst1: &mut [f64],
    ) {
        debug_assert_eq!(dst0.len(), dst1.len());
        let jw = dst0.len();
        let ap = a.as_ptr();
        let mut j = 0usize;
        while j + 8 <= jw {
            let mut acc00 = _mm256_setzero_pd();
            let mut acc01 = _mm256_setzero_pd();
            let mut acc10 = _mm256_setzero_pd();
            let mut acc11 = _mm256_setzero_pd();
            for &(dk, e, ref row_taps) in &taps.pairs {
                let row_base = base + dk * plane_stride + e * stride + j as isize;
                for &(dj, c0, c1) in row_taps {
                    let ptr = ap.offset(row_base + dj);
                    let v0 = _mm256_loadu_pd(ptr);
                    let v1 = _mm256_loadu_pd(ptr.add(4));
                    if c0 != 0.0 {
                        let cv = _mm256_set1_pd(c0);
                        acc00 = _mm256_fmadd_pd(cv, v0, acc00);
                        acc01 = _mm256_fmadd_pd(cv, v1, acc01);
                    }
                    if c1 != 0.0 {
                        let cv = _mm256_set1_pd(c1);
                        acc10 = _mm256_fmadd_pd(cv, v0, acc10);
                        acc11 = _mm256_fmadd_pd(cv, v1, acc11);
                    }
                }
            }
            _mm256_storeu_pd(dst0.as_mut_ptr().add(j), acc00);
            _mm256_storeu_pd(dst0.as_mut_ptr().add(j + 4), acc01);
            _mm256_storeu_pd(dst1.as_mut_ptr().add(j), acc10);
            _mm256_storeu_pd(dst1.as_mut_ptr().add(j + 4), acc11);
            j += 8;
        }
        while j + 4 <= jw {
            let mut acc0 = _mm256_setzero_pd();
            let mut acc1 = _mm256_setzero_pd();
            for &(dk, e, ref row_taps) in &taps.pairs {
                let row_base = base + dk * plane_stride + e * stride + j as isize;
                for &(dj, c0, c1) in row_taps {
                    let v = _mm256_loadu_pd(ap.offset(row_base + dj));
                    if c0 != 0.0 {
                        acc0 = _mm256_fmadd_pd(_mm256_set1_pd(c0), v, acc0);
                    }
                    if c1 != 0.0 {
                        acc1 = _mm256_fmadd_pd(_mm256_set1_pd(c1), v, acc1);
                    }
                }
            }
            _mm256_storeu_pd(dst0.as_mut_ptr().add(j), acc0);
            _mm256_storeu_pd(dst1.as_mut_ptr().add(j), acc1);
            j += 4;
        }
        while j < jw {
            dst0[j] = scalar_point(&taps.flat, a, base + j as isize, plane_stride, stride);
            dst1[j] = scalar_point(
                &taps.flat,
                a,
                base + stride + j as isize,
                plane_stride,
                stride,
            );
            j += 1;
        }
    }

    /// One output row, eight columns per step.
    ///
    /// # Safety
    /// Caller must have verified AVX2 + FMA support.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(crate) unsafe fn row_single(
        taps: &Taps3<f64>,
        a: &[f64],
        base: isize,
        plane_stride: isize,
        stride: isize,
        dst: &mut [f64],
    ) {
        let jw = dst.len();
        let ap = a.as_ptr();
        let mut j = 0usize;
        while j + 8 <= jw {
            let mut acc0 = _mm256_setzero_pd();
            let mut acc1 = _mm256_setzero_pd();
            for &(dk, di, ref row_taps) in &taps.rows {
                let row_base = base + dk * plane_stride + di * stride + j as isize;
                for &(dj, c) in row_taps {
                    let ptr = ap.offset(row_base + dj);
                    let cv = _mm256_set1_pd(c);
                    acc0 = _mm256_fmadd_pd(cv, _mm256_loadu_pd(ptr), acc0);
                    acc1 = _mm256_fmadd_pd(cv, _mm256_loadu_pd(ptr.add(4)), acc1);
                }
            }
            _mm256_storeu_pd(dst.as_mut_ptr().add(j), acc0);
            _mm256_storeu_pd(dst.as_mut_ptr().add(j + 4), acc1);
            j += 8;
        }
        while j + 4 <= jw {
            let mut acc = _mm256_setzero_pd();
            for &(dk, di, ref row_taps) in &taps.rows {
                let row_base = base + dk * plane_stride + di * stride + j as isize;
                for &(dj, c) in row_taps {
                    let v = _mm256_loadu_pd(ap.offset(row_base + dj));
                    acc = _mm256_fmadd_pd(_mm256_set1_pd(c), v, acc);
                }
            }
            _mm256_storeu_pd(dst.as_mut_ptr().add(j), acc);
            j += 4;
        }
        while j < jw {
            dst[j] = scalar_point(&taps.flat, a, base + j as isize, plane_stride, stride);
            j += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stencil::presets;

    #[test]
    fn flat_taps_match_point_counts_and_order() {
        for spec in presets::suite_3d() {
            let taps = Taps3::<f64>::new(&spec);
            assert_eq!(taps.flat.len(), spec.points(), "{}", spec.name());
            let mut sorted = taps.flat.clone();
            sorted.sort_by_key(|&(dk, di, dj, _)| (dk, di, dj));
            assert_eq!(sorted, taps.flat);
            let from_rows: usize = taps.rows.iter().map(|(_, _, r)| r.len()).sum();
            assert_eq!(from_rows, spec.points());
        }
    }

    #[test]
    fn pair_grouping_covers_both_rows_in_canonical_order() {
        // Walking `pairs` in order must replay the canonical flat chain
        // for output row i (via c0) AND for row i+1 (via c1) — that is
        // the whole bit-identity argument for the 3-D pair kernel.
        for spec in presets::suite_3d() {
            let taps = Taps3::<f64>::new(&spec);
            let mut row0 = Vec::new();
            let mut row1 = Vec::new();
            for &(dk, e, ref merged) in &taps.pairs {
                for &(dj, c0, c1) in merged {
                    assert!(c0 != 0.0 || c1 != 0.0, "{}", spec.name());
                    if c0 != 0.0 {
                        row0.push((dk, e, dj, c0));
                    }
                    if c1 != 0.0 {
                        row1.push((dk, e - 1, dj, c1));
                    }
                }
            }
            assert_eq!(row0, taps.flat, "{}: row i chain", spec.name());
            assert_eq!(row1, taps.flat, "{}: row i+1 chain", spec.name());
        }
    }
}
