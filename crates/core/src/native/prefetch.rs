//! Software-prefetch tuning for the AVX2 micro-kernels.
//!
//! The paper's Algorithm 3 (§3.3) issues spatial prefetches for the
//! *next input row* and the *destination store row* while the current
//! row is being computed, so the streaming loads of a memory-bound
//! sweep are already in flight when the kernel reaches them. This
//! module is the native x86 analogue: [`Prefetch`] says how far ahead
//! of the tap window the input prefetch runs (in rows) and how far
//! ahead of the store cursor the destination prefetch runs (in
//! columns).
//!
//! Prefetch is a *hint* — `_mm_prefetch` never faults and never changes
//! architectural state (the machine-model counterpart is pinned by
//! `crates/machine/tests/prefetch_transparency.rs`) — so it cannot
//! affect results. It is still wired **only** into the AVX2 dispatch
//! path: the scalar fallback stays a pure `mul_add` chain with no
//! `std::arch` calls at all, keeping the bit-identity contract between
//! the two paths trivially auditable.
//!
//! Tuning: `HSTENCIL_PREFETCH=off` (or `0`) disables both streams;
//! `HSTENCIL_PREFETCH=<rows>` moves the input prefetch distance. The
//! variable is read once per process.

use std::sync::OnceLock;

/// Prefetch distances for the AVX2 sweep kernels. `input_rows == 0`
/// and `dst_cols == 0` mean "emit no prefetch".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Prefetch {
    /// How many rows below the deepest tap row the input prefetch
    /// targets. The pair kernel consumes two new input rows per step,
    /// so distance `d` prefetches rows `i + r + d` and `i + r + d + 1`
    /// at the current column while rows `i, i+1` are being computed.
    pub input_rows: usize,
    /// How many columns ahead of the store cursor the destination
    /// prefetch targets (per output row in flight).
    pub dst_cols: usize,
}

impl Prefetch {
    /// Prefetch disabled (what the scalar path always uses).
    pub const OFF: Prefetch = Prefetch {
        input_rows: 0,
        dst_cols: 0,
    };

    /// Default distances: next two input rows, half a tile of columns
    /// ahead for the store stream. Chosen on the recorded bench host
    /// (see `BENCH_native.json`); override with `HSTENCIL_PREFETCH`.
    pub const DEFAULT: Prefetch = Prefetch {
        input_rows: 2,
        dst_cols: 64,
    };

    /// Parses an `HSTENCIL_PREFETCH` value. `off`/`0` disable, an
    /// integer sets the input-row distance, anything else (including
    /// empty) keeps the default.
    pub fn from_env_str(v: Option<&str>) -> Prefetch {
        Prefetch::from_env_str_warn(v).0
    }

    /// [`Prefetch::from_env_str`] plus a warning for values that parse
    /// as neither `off` nor a row count — so a typo in
    /// `HSTENCIL_PREFETCH` names itself on stderr instead of silently
    /// running the default distances.
    pub fn from_env_str_warn(v: Option<&str>) -> (Prefetch, Option<String>) {
        match v.map(str::trim) {
            Some("off") | Some("OFF") | Some("0") => (Prefetch::OFF, None),
            Some("") | None => (Prefetch::DEFAULT, None),
            Some(s) => match s.parse::<usize>() {
                Ok(rows) => (
                    Prefetch {
                        input_rows: rows,
                        ..Prefetch::DEFAULT
                    },
                    None,
                ),
                Err(_) => (
                    Prefetch::DEFAULT,
                    Some(format!(
                        "hstencil: ignoring malformed HSTENCIL_PREFETCH={s:?} \
                         (expected off|0|<input rows>); using default \
                         input_rows={}, dst_cols={}",
                        Prefetch::DEFAULT.input_rows,
                        Prefetch::DEFAULT.dst_cols
                    )),
                ),
            },
        }
    }

    /// The process-wide configuration (env read once through
    /// `super::env::cached`; malformed values warn on stderr once and
    /// keep the default).
    pub fn config() -> Prefetch {
        static CONFIG: OnceLock<Prefetch> = OnceLock::new();
        super::env::cached(&CONFIG, "HSTENCIL_PREFETCH", Prefetch::from_env_str_warn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_parsing() {
        assert_eq!(Prefetch::from_env_str(None), Prefetch::DEFAULT);
        assert_eq!(Prefetch::from_env_str(Some("off")), Prefetch::OFF);
        assert_eq!(Prefetch::from_env_str(Some("0")), Prefetch::OFF);
        assert_eq!(Prefetch::from_env_str(Some("3")).input_rows, 3);
        assert_eq!(
            Prefetch::from_env_str(Some("3")).dst_cols,
            Prefetch::DEFAULT.dst_cols
        );
        assert_eq!(Prefetch::from_env_str(Some("bogus")), Prefetch::DEFAULT);
    }

    #[test]
    fn malformed_values_warn_with_value_and_default() {
        let (pf, warn) = Prefetch::from_env_str_warn(Some("bogus"));
        assert_eq!(pf, Prefetch::DEFAULT);
        let warn = warn.expect("malformed value must produce a warning");
        assert!(warn.contains("HSTENCIL_PREFETCH"), "{warn}");
        assert!(warn.contains("\"bogus\""), "names the bad value: {warn}");
        assert!(warn.contains("input_rows=2"), "names the default: {warn}");
        // Well-formed and intentionally-empty values stay silent.
        for ok in [None, Some(""), Some("off"), Some("0"), Some("5")] {
            assert!(Prefetch::from_env_str_warn(ok).1.is_none(), "{ok:?}");
        }
    }

    #[test]
    fn off_is_all_zero() {
        assert_eq!(Prefetch::OFF.input_rows, 0);
        assert_eq!(Prefetch::OFF.dst_cols, 0);
    }
}
