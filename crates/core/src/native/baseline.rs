//! The seed executor, preserved verbatim as the recorded wall-clock
//! baseline.
//!
//! This is the tap-per-pass auto-vectorized loop the repository started
//! with: for every output row it makes one full pass over the row *per
//! tap*, re-reading and re-writing the destination each time, and it
//! rounds twice per tap (`mul` then `add`). `BENCH_native.json` times it
//! next to the v2 executor so every later PR's speedup is measured
//! against the same fixed origin — do not "optimize" this module.

use crate::grid::Grid2d;
use crate::stencil::StencilSpec;

/// One sweep of a 2-D stencil, seed implementation (single-threaded,
/// one row pass per tap, no FMA).
pub fn apply_2d(spec: &StencilSpec, a: &Grid2d, b: &mut Grid2d) {
    assert_eq!(spec.dims(), 2);
    assert_eq!((a.h(), a.w()), (b.h(), b.w()));
    assert!(a.halo() >= spec.radius() && b.halo() >= spec.radius());
    let r = spec.radius() as isize;
    let taps: Vec<(isize, isize, f64)> = (-r..=r)
        .flat_map(|di| (-r..=r).map(move |dj| (di, dj)))
        .filter_map(|(di, dj)| {
            let c = spec.c2(di, dj);
            (c != 0.0).then_some((di, dj, c))
        })
        .collect();

    let (h, w) = (a.h(), a.w());
    let stride = a.stride() as isize;
    let a_org = a.origin() as isize;
    let b_org = b.origin() as isize;
    let b_stride = b.stride() as isize;
    let a_raw = a.raw();
    let out = b.raw_mut();

    for i in 0..h as isize {
        let row_out = (b_org + i * b_stride) as usize;
        let dst = &mut out[row_out..row_out + w];
        let (di0, dj0, c0) = taps[0];
        let src0 = (a_org + (i + di0) * stride + dj0) as usize;
        let s0 = &a_raw[src0..src0 + w];
        for (d, &s) in dst.iter_mut().zip(s0) {
            *d = c0 * s;
        }
        for &(di, dj, c) in &taps[1..] {
            let src = (a_org + (i + di) * stride + dj) as usize;
            let s = &a_raw[src..src + w];
            for (d, &sv) in dst.iter_mut().zip(s) {
                *d += c * sv;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use crate::stencil::presets;

    #[test]
    fn baseline_matches_reference() {
        for spec in presets::suite_2d() {
            let a = Grid2d::from_fn(20, 33, spec.radius(), |i, j| ((i * 31 + j * 7) % 17) as f64);
            let mut want = Grid2d::zeros(20, 33, spec.radius());
            let mut got = Grid2d::zeros(20, 33, spec.radius());
            reference::apply_2d(&spec, &a, &mut want);
            apply_2d(&spec, &a, &mut got);
            assert!(want.max_interior_diff(&got) < 1e-12, "{}", spec.name());
        }
    }
}
