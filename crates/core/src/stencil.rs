//! Stencil specifications: spatial pattern, radius, dimensionality and the
//! dense coefficient table.
//!
//! Coefficients are stored as a dense `(2r+1)^dims` table — star stencils
//! simply carry zeros off-axis. Kernel builders are *table-driven*: they
//! inspect the nonzero structure of each coefficient column and pick the
//! compute unit accordingly, so one hybrid kernel covers star, box, Heat-2D
//! and arbitrary custom weights.

use crate::table::CoeffTable;

/// Spatial pattern of a stencil (paper Figure 1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Pattern {
    /// Points along the coordinate axes only.
    Star,
    /// The full `(2r+1)^d` neighbourhood.
    Box,
}

/// A stencil specification.
///
/// ```
/// use hstencil_core::{presets, StencilSpec, Pattern};
/// let s = presets::star2d9p();
/// assert_eq!((s.points(), s.radius()), (9, 2));
/// // Custom weights work the same way:
/// let lap = StencilSpec::star_2d("lap", 1, -4.0, &[1.0, 0.0, 1.0], &[1.0, 0.0, 1.0]);
/// assert_eq!(lap.c2(0, 0), -4.0);
/// assert_eq!(lap.c2(1, 0), 1.0);
/// ```
#[derive(Clone, Debug)]
pub struct StencilSpec {
    name: String,
    pattern: Pattern,
    dims: usize,
    radius: usize,
    /// Dense coefficients. For 2-D: index `[(di+r)*(2r+1) + (dj+r)]`.
    /// For 3-D: index `[((dk+r)*(2r+1) + (di+r))*(2r+1) + (dj+r)]`.
    coeffs: Vec<f64>,
}

impl StencilSpec {
    /// Builds a 2-D stencil from a dense `(2r+1) x (2r+1)` table in
    /// row-major `(di, dj)` order.
    ///
    /// # Panics
    /// Panics if the table length does not match the radius.
    pub fn new_2d(
        name: impl Into<String>,
        pattern: Pattern,
        radius: usize,
        table: Vec<f64>,
    ) -> Self {
        let n = 2 * radius + 1;
        assert_eq!(table.len(), n * n, "2-D coefficient table must be (2r+1)^2");
        StencilSpec {
            name: name.into(),
            pattern,
            dims: 2,
            radius,
            coeffs: table,
        }
    }

    /// Builds a 3-D stencil from a dense `(2r+1)^3` table in row-major
    /// `(dk, di, dj)` order.
    ///
    /// # Panics
    /// Panics if the table length does not match the radius.
    pub fn new_3d(
        name: impl Into<String>,
        pattern: Pattern,
        radius: usize,
        table: Vec<f64>,
    ) -> Self {
        let n = 2 * radius + 1;
        assert_eq!(
            table.len(),
            n * n * n,
            "3-D coefficient table must be (2r+1)^3"
        );
        StencilSpec {
            name: name.into(),
            pattern,
            dims: 3,
            radius,
            coeffs: table,
        }
    }

    /// Builds a 2-D *star* stencil from per-axis coefficients.
    ///
    /// `horizontal[k]` is the coefficient at `dj = k - r`, `vertical[k]` at
    /// `di = k - r`; the centre is `center` (the centre entries of the two
    /// axis arrays are ignored).
    pub fn star_2d(
        name: impl Into<String>,
        radius: usize,
        center: f64,
        horizontal: &[f64],
        vertical: &[f64],
    ) -> Self {
        let n = 2 * radius + 1;
        assert_eq!(horizontal.len(), n);
        assert_eq!(vertical.len(), n);
        let mut table = vec![0.0; n * n];
        for k in 0..n {
            table[radius * n + k] = horizontal[k]; // di = 0 row
            table[k * n + radius] = vertical[k]; // dj = 0 column
        }
        table[radius * n + radius] = center;
        StencilSpec {
            name: name.into(),
            pattern: Pattern::Star,
            dims: 2,
            radius,
            coeffs: table,
        }
    }

    /// Stencil name (e.g. `"star2d9p"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Spatial pattern.
    pub fn pattern(&self) -> Pattern {
        self.pattern
    }

    /// Dimensionality (2 or 3).
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Radius.
    pub fn radius(&self) -> usize {
        self.radius
    }

    /// Number of points with nonzero coefficients.
    pub fn points(&self) -> usize {
        self.coeffs.iter().filter(|&&c| c != 0.0).count()
    }

    /// 2-D coefficient at offset `(di, dj)` (0 outside the radius).
    pub fn c2(&self, di: isize, dj: isize) -> f64 {
        debug_assert_eq!(self.dims, 2);
        let r = self.radius as isize;
        if di.abs() > r || dj.abs() > r {
            return 0.0;
        }
        let n = (2 * r + 1) as usize;
        self.coeffs[((di + r) as usize) * n + (dj + r) as usize]
    }

    /// 3-D coefficient at offset `(dk, di, dj)` (0 outside the radius).
    pub fn c3(&self, dk: isize, di: isize, dj: isize) -> f64 {
        debug_assert_eq!(self.dims, 3);
        let r = self.radius as isize;
        if dk.abs() > r || di.abs() > r || dj.abs() > r {
            return 0.0;
        }
        let n = (2 * r + 1) as usize;
        self.coeffs[(((dk + r) as usize) * n + (di + r) as usize) * n + (dj + r) as usize]
    }

    /// The 2-D plane coefficient table (for `dims == 2` the whole table).
    pub fn plane_table_2d(&self) -> CoeffTable {
        debug_assert_eq!(self.dims, 2);
        CoeffTable::new(self.radius, self.coeffs.clone())
    }

    /// The coefficient table of the `dk`-plane of a 3-D stencil.
    pub fn plane_table_3d(&self, dk: isize) -> CoeffTable {
        debug_assert_eq!(self.dims, 3);
        let r = self.radius as isize;
        assert!(dk.abs() <= r);
        let n = (2 * r + 1) as usize;
        let start = ((dk + r) as usize) * n * n;
        CoeffTable::new(self.radius, self.coeffs[start..start + n * n].to_vec())
    }

    /// Flops per updated grid point (one FMA per nonzero coefficient).
    pub fn flops_per_point(&self) -> u64 {
        2 * self.points() as u64
    }
}

/// Standard benchmark presets (weights follow common heat/convection
/// discretizations, normalized so they sum to 1 for numerical stability in
/// iterated sweeps).
pub mod presets {
    use super::*;

    fn star_axis_weights(radius: usize) -> (f64, Vec<f64>) {
        // Symmetric axis weights 1/(2^(|d|)) scaled, centre gets the rest.
        let n = 2 * radius + 1;
        let mut axis = vec![0.0; n];
        let mut sum = 0.0;
        for d in 1..=radius {
            let wgt = 0.1 / d as f64;
            axis[radius - d] = wgt;
            axis[radius + d] = wgt;
            sum += 2.0 * wgt;
        }
        let center = 1.0 - 2.0 * sum; // two axes share the centre
        (center, axis)
    }

    /// Star-2D5P (r = 1): the classic 5-point stencil.
    pub fn star2d5p() -> StencilSpec {
        let (c, axis) = star_axis_weights(1);
        StencilSpec::star_2d("star2d5p", 1, c, &axis, &axis)
    }

    /// Star-2D9P (r = 2).
    pub fn star2d9p() -> StencilSpec {
        let (c, axis) = star_axis_weights(2);
        StencilSpec::star_2d("star2d9p", 2, c, &axis, &axis)
    }

    /// Star-2D13P (r = 3).
    pub fn star2d13p() -> StencilSpec {
        let (c, axis) = star_axis_weights(3);
        StencilSpec::star_2d("star2d13p", 3, c, &axis, &axis)
    }

    fn box_table(radius: usize) -> Vec<f64> {
        let n = 2 * radius + 1;
        let mut t = vec![0.0; n * n];
        let mut sum = 0.0;
        for di in 0..n {
            for dj in 0..n {
                let d =
                    (di as isize - radius as isize).abs() + (dj as isize - radius as isize).abs();
                let wgt = 1.0 / (1.0 + d as f64);
                t[di * n + dj] = wgt;
                sum += wgt;
            }
        }
        for c in &mut t {
            *c /= sum;
        }
        t
    }

    /// Box-2D9P (r = 1): the full 3×3 neighbourhood.
    pub fn box2d9p() -> StencilSpec {
        StencilSpec::new_2d("box2d9p", Pattern::Box, 1, box_table(1))
    }

    /// Box-2D25P (r = 2).
    pub fn box2d25p() -> StencilSpec {
        StencilSpec::new_2d("box2d25p", Pattern::Box, 2, box_table(2))
    }

    /// Box-2D49P (r = 3).
    pub fn box2d49p() -> StencilSpec {
        StencilSpec::new_2d("box2d49p", Pattern::Box, 3, box_table(3))
    }

    /// Heat-2D: the explicit 5-point heat-equation update
    /// `b = a + alpha (sum of neighbours - 4 a)` with `alpha = 0.1`.
    pub fn heat2d() -> StencilSpec {
        let alpha = 0.1;
        let axis = [alpha, 0.0, alpha];
        StencilSpec::star_2d("heat2d", 1, 1.0 - 4.0 * alpha, &axis, &axis)
    }

    /// Star-3D7P (r = 1).
    pub fn star3d7p() -> StencilSpec {
        star3d(1, "star3d7p")
    }

    /// Star-3D13P (r = 2).
    pub fn star3d13p() -> StencilSpec {
        star3d(2, "star3d13p")
    }

    fn star3d(radius: usize, name: &str) -> StencilSpec {
        let n = 2 * radius + 1;
        let mut t = vec![0.0; n * n * n];
        let wgt = 0.05;
        let mut sum = 0.0;
        let idx = |dk: usize, di: usize, dj: usize| (dk * n + di) * n + dj;
        for d in 1..=radius {
            let w = wgt / d as f64;
            for (dk, di, dj) in [
                (radius - d, radius, radius),
                (radius + d, radius, radius),
                (radius, radius - d, radius),
                (radius, radius + d, radius),
                (radius, radius, radius - d),
                (radius, radius, radius + d),
            ] {
                t[idx(dk, di, dj)] = w;
                sum += w;
            }
        }
        t[idx(radius, radius, radius)] = 1.0 - sum;
        StencilSpec::new_3d(name, Pattern::Star, radius, t)
    }

    /// Heat-3D: the explicit 7-point heat-equation update
    /// `b = a + alpha (sum of neighbours - 6 a)` with `alpha = 0.1`
    /// (the 3-D analogue of [`heat2d`]; the native-executor bench's
    /// 3-D workload).
    pub fn heat3d() -> StencilSpec {
        let alpha = 0.1;
        let n = 3usize;
        let mut t = vec![0.0; n * n * n];
        let idx = |dk: usize, di: usize, dj: usize| (dk * n + di) * n + dj;
        for (dk, di, dj) in [
            (0, 1, 1),
            (2, 1, 1),
            (1, 0, 1),
            (1, 2, 1),
            (1, 1, 0),
            (1, 1, 2),
        ] {
            t[idx(dk, di, dj)] = alpha;
        }
        t[idx(1, 1, 1)] = 1.0 - 6.0 * alpha;
        StencilSpec::new_3d("heat3d", Pattern::Star, 1, t)
    }

    /// Box-3D27P (r = 1): the full 3×3×3 neighbourhood.
    pub fn box3d27p() -> StencilSpec {
        let n = 3;
        let mut t = vec![0.0; n * n * n];
        let mut sum = 0.0;
        for dk in 0..n {
            for di in 0..n {
                for dj in 0..n {
                    let d =
                        (dk as isize - 1).abs() + (di as isize - 1).abs() + (dj as isize - 1).abs();
                    let w = 1.0 / (1.0 + d as f64);
                    t[(dk * n + di) * n + dj] = w;
                    sum += w;
                }
            }
        }
        for c in &mut t {
            *c /= sum;
        }
        StencilSpec::new_3d("box3d27p", Pattern::Box, 1, t)
    }

    /// The 2-D benchmark suite used for the in-cache figures.
    pub fn suite_2d() -> Vec<StencilSpec> {
        vec![
            star2d5p(),
            star2d9p(),
            star2d13p(),
            box2d9p(),
            box2d25p(),
            box2d49p(),
            heat2d(),
        ]
    }

    /// The 3-D benchmark suite.
    pub fn suite_3d() -> Vec<StencilSpec> {
        vec![star3d7p(), star3d13p(), box3d27p()]
    }
}

#[cfg(test)]
mod tests {
    use super::presets::*;
    use super::*;

    #[test]
    fn star2d5p_structure() {
        let s = star2d5p();
        assert_eq!(s.points(), 5);
        assert_eq!(s.radius(), 1);
        assert_eq!(s.pattern(), Pattern::Star);
        assert_eq!(s.c2(1, 1), 0.0);
        assert!(s.c2(0, 1) != 0.0);
        assert!(s.c2(0, 0) != 0.0);
    }

    #[test]
    fn star_presets_point_counts() {
        assert_eq!(star2d9p().points(), 9);
        assert_eq!(star2d13p().points(), 13);
        assert_eq!(star3d7p().points(), 7);
        assert_eq!(star3d13p().points(), 13);
    }

    #[test]
    fn box_presets_point_counts() {
        assert_eq!(box2d9p().points(), 9);
        assert_eq!(box2d25p().points(), 25);
        assert_eq!(box2d49p().points(), 49);
        assert_eq!(box3d27p().points(), 27);
    }

    #[test]
    fn preset_weights_sum_to_one() {
        for s in suite_2d() {
            let r = s.radius() as isize;
            let mut sum = 0.0;
            for di in -r..=r {
                for dj in -r..=r {
                    sum += s.c2(di, dj);
                }
            }
            assert!((sum - 1.0).abs() < 1e-12, "{} sums to {sum}", s.name());
        }
        for s in suite_3d() {
            let r = s.radius() as isize;
            let mut sum = 0.0;
            for dk in -r..=r {
                for di in -r..=r {
                    for dj in -r..=r {
                        sum += s.c3(dk, di, dj);
                    }
                }
            }
            assert!((sum - 1.0).abs() < 1e-12, "{} sums to {sum}", s.name());
        }
    }

    #[test]
    fn heat3d_is_conservative_update() {
        let s = heat3d();
        assert_eq!(s.points(), 7);
        assert_eq!(s.radius(), 1);
        assert!((s.c3(0, 0, 0) - 0.4).abs() < 1e-12);
        for (dk, di, dj) in [
            (1, 0, 0),
            (-1, 0, 0),
            (0, 1, 0),
            (0, -1, 0),
            (0, 0, 1),
            (0, 0, -1),
        ] {
            assert!((s.c3(dk, di, dj) - 0.1).abs() < 1e-12);
        }
        assert_eq!(s.c3(1, 1, 0), 0.0);
        let r = 1isize;
        let mut sum = 0.0;
        for dk in -r..=r {
            for di in -r..=r {
                for dj in -r..=r {
                    sum += s.c3(dk, di, dj);
                }
            }
        }
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn heat2d_is_conservative_update() {
        let s = heat2d();
        assert_eq!(s.points(), 5);
        assert!((s.c2(0, 0) - 0.6).abs() < 1e-12);
        assert!((s.c2(0, 1) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn coefficients_outside_radius_are_zero() {
        let s = star2d5p();
        assert_eq!(s.c2(2, 0), 0.0);
        assert_eq!(s.c2(0, -5), 0.0);
    }

    #[test]
    fn plane_tables_3d() {
        let s = star3d7p();
        let centre = s.plane_table_3d(0);
        assert_eq!(centre.nonzeros(), 5);
        let above = s.plane_table_3d(1);
        assert_eq!(above.nonzeros(), 1);
        assert!(above.at(0, 0) != 0.0);
    }

    #[test]
    #[should_panic]
    fn wrong_table_size_panics() {
        let _ = StencilSpec::new_2d("bad", Pattern::Box, 1, vec![1.0; 4]);
    }
}
