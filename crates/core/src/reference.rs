//! Scalar reference implementations — the ground truth every kernel is
//! verified against.

use crate::grid::{Grid2d, Grid3d};
use crate::stencil::StencilSpec;

/// One 2-D stencil sweep: `b` interior = weighted sum of `a` neighbours.
///
/// # Panics
/// Panics if the spec is not 2-D, shapes differ, or halos are smaller than
/// the radius.
pub fn apply_2d(spec: &StencilSpec, a: &Grid2d, b: &mut Grid2d) {
    assert_eq!(spec.dims(), 2);
    assert_eq!((a.h(), a.w()), (b.h(), b.w()));
    let r = spec.radius() as isize;
    assert!(a.halo() >= spec.radius() && b.halo() >= spec.radius());
    for i in 0..a.h() as isize {
        for j in 0..a.w() as isize {
            let mut acc = 0.0;
            for di in -r..=r {
                for dj in -r..=r {
                    let c = spec.c2(di, dj);
                    if c != 0.0 {
                        acc += c * a.at(i + di, j + dj);
                    }
                }
            }
            b.set(i, j, acc);
        }
    }
}

/// One 3-D stencil sweep.
///
/// # Panics
/// Panics if the spec is not 3-D, shapes differ, or halos are too small.
pub fn apply_3d(spec: &StencilSpec, a: &Grid3d, b: &mut Grid3d) {
    assert_eq!(spec.dims(), 3);
    assert_eq!((a.d(), a.h(), a.w()), (b.d(), b.h(), b.w()));
    let r = spec.radius() as isize;
    assert!(a.halo() >= spec.radius() && b.halo() >= spec.radius());
    for k in 0..a.d() as isize {
        for i in 0..a.h() as isize {
            for j in 0..a.w() as isize {
                let mut acc = 0.0;
                for dk in -r..=r {
                    for di in -r..=r {
                        for dj in -r..=r {
                            let c = spec.c3(dk, di, dj);
                            if c != 0.0 {
                                acc += c * a.at(k + dk, i + di, j + dj);
                            }
                        }
                    }
                }
                b.set(k, i, j, acc);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stencil::presets;

    #[test]
    fn constant_field_is_preserved_by_unit_sum_weights() {
        let spec = presets::star2d9p();
        let a = Grid2d::from_fn(16, 16, 2, |_, _| 3.0);
        let mut b = Grid2d::zeros(16, 16, 2);
        apply_2d(&spec, &a, &mut b);
        for i in 0..16 {
            for j in 0..16 {
                assert!((b.at(i, j) - 3.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn impulse_response_matches_coefficients() {
        let spec = presets::box2d9p();
        let mut a = Grid2d::zeros(8, 8, 1);
        a.set(4, 4, 1.0);
        let mut b = Grid2d::zeros(8, 8, 1);
        apply_2d(&spec, &a, &mut b);
        // b(i, j) picks up c(di, dj) with (di, dj) = (4 - i, 4 - j)...
        // scatter of the impulse: b(4+p, 4+q) = c(-p, -q).
        for p in -1isize..=1 {
            for q in -1isize..=1 {
                assert!(
                    (b.at(4 + p, 4 + q) - spec.c2(-p, -q)).abs() < 1e-15,
                    "at offset ({p},{q})"
                );
            }
        }
        assert_eq!(b.at(0, 0), 0.0);
    }

    #[test]
    fn heat_diffusion_smooths_peak() {
        let spec = presets::heat2d();
        let mut a = Grid2d::zeros(8, 8, 1);
        a.set(4, 4, 100.0);
        let mut b = Grid2d::zeros(8, 8, 1);
        apply_2d(&spec, &a, &mut b);
        assert!(b.at(4, 4) < 100.0);
        assert!(b.at(4, 5) > 0.0);
        assert_eq!(b.at(4, 6), 0.0); // radius 1 only
    }

    #[test]
    fn halo_values_contribute() {
        let spec = presets::star2d5p();
        let a = Grid2d::from_fn(8, 8, 1, |i, _| if i < 0 { 10.0 } else { 0.0 });
        let mut b = Grid2d::zeros(8, 8, 1);
        apply_2d(&spec, &a, &mut b);
        assert!(b.at(0, 4) > 0.0, "top row must see the halo");
        assert_eq!(b.at(2, 4), 0.0);
    }

    #[test]
    fn constant_field_3d() {
        let spec = presets::star3d7p();
        let a = Grid3d::from_fn(6, 8, 8, 1, |_, _, _| 2.0);
        let mut b = Grid3d::zeros(6, 8, 8, 1);
        apply_3d(&spec, &a, &mut b);
        assert!((b.at(3, 4, 4) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn impulse_3d_spreads_across_planes() {
        let spec = presets::star3d7p();
        let mut a = Grid3d::zeros(5, 8, 8, 1);
        a.set(2, 4, 4, 1.0);
        let mut b = Grid3d::zeros(5, 8, 8, 1);
        apply_3d(&spec, &a, &mut b);
        assert!((b.at(1, 4, 4) - spec.c3(1, 0, 0)).abs() < 1e-15);
        assert!((b.at(3, 4, 4) - spec.c3(-1, 0, 0)).abs() < 1e-15);
        assert_eq!(b.at(2, 5, 5), 0.0); // star has no diagonal
    }
}
