//! Scalar reference implementations — the ground truth every kernel is
//! verified against.

use crate::grid::{Grid2d, Grid3d, GridError};
use crate::stencil::StencilSpec;

/// One 2-D stencil sweep: `b` interior = weighted sum of `a` neighbours.
///
/// # Panics
/// Panics if the spec is not 2-D or the shapes are degenerate; see
/// [`try_apply_2d`] for the non-panicking form.
pub fn apply_2d(spec: &StencilSpec, a: &Grid2d, b: &mut Grid2d) {
    try_apply_2d(spec, a, b).unwrap_or_else(|e| panic!("reference::apply_2d: {e}"));
}

/// [`apply_2d`] with degenerate shapes rejected as a typed
/// [`GridError`] instead of a panic (or a silent wrong-row read in
/// release builds when the halo undercuts the radius).
pub fn try_apply_2d(spec: &StencilSpec, a: &Grid2d, b: &mut Grid2d) -> Result<(), GridError> {
    assert_eq!(spec.dims(), 2);
    a.check_stencil(spec.radius(), b)?;
    let r = spec.radius() as isize;
    for i in 0..a.h() as isize {
        for j in 0..a.w() as isize {
            let mut acc = 0.0;
            for di in -r..=r {
                for dj in -r..=r {
                    let c = spec.c2(di, dj);
                    if c != 0.0 {
                        acc += c * a.at(i + di, j + dj);
                    }
                }
            }
            b.set(i, j, acc);
        }
    }
    Ok(())
}

/// One 3-D stencil sweep.
///
/// # Panics
/// Panics if the spec is not 3-D or the shapes are degenerate; see
/// [`try_apply_3d`] for the non-panicking form.
pub fn apply_3d(spec: &StencilSpec, a: &Grid3d, b: &mut Grid3d) {
    try_apply_3d(spec, a, b).unwrap_or_else(|e| panic!("reference::apply_3d: {e}"));
}

/// [`apply_3d`] with degenerate shapes rejected as a typed [`GridError`].
pub fn try_apply_3d(spec: &StencilSpec, a: &Grid3d, b: &mut Grid3d) -> Result<(), GridError> {
    assert_eq!(spec.dims(), 3);
    a.check_stencil(spec.radius(), b)?;
    let r = spec.radius() as isize;
    for k in 0..a.d() as isize {
        for i in 0..a.h() as isize {
            for j in 0..a.w() as isize {
                let mut acc = 0.0;
                for dk in -r..=r {
                    for di in -r..=r {
                        for dj in -r..=r {
                            let c = spec.c3(dk, di, dj);
                            if c != 0.0 {
                                acc += c * a.at(k + dk, i + di, j + dj);
                            }
                        }
                    }
                }
                b.set(k, i, j, acc);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stencil::presets;

    #[test]
    fn constant_field_is_preserved_by_unit_sum_weights() {
        let spec = presets::star2d9p();
        let a = Grid2d::from_fn(16, 16, 2, |_, _| 3.0);
        let mut b = Grid2d::zeros(16, 16, 2);
        apply_2d(&spec, &a, &mut b);
        for i in 0..16 {
            for j in 0..16 {
                assert!((b.at(i, j) - 3.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn impulse_response_matches_coefficients() {
        let spec = presets::box2d9p();
        let mut a = Grid2d::zeros(8, 8, 1);
        a.set(4, 4, 1.0);
        let mut b = Grid2d::zeros(8, 8, 1);
        apply_2d(&spec, &a, &mut b);
        // b(i, j) picks up c(di, dj) with (di, dj) = (4 - i, 4 - j)...
        // scatter of the impulse: b(4+p, 4+q) = c(-p, -q).
        for p in -1isize..=1 {
            for q in -1isize..=1 {
                assert!(
                    (b.at(4 + p, 4 + q) - spec.c2(-p, -q)).abs() < 1e-15,
                    "at offset ({p},{q})"
                );
            }
        }
        assert_eq!(b.at(0, 0), 0.0);
    }

    #[test]
    fn heat_diffusion_smooths_peak() {
        let spec = presets::heat2d();
        let mut a = Grid2d::zeros(8, 8, 1);
        a.set(4, 4, 100.0);
        let mut b = Grid2d::zeros(8, 8, 1);
        apply_2d(&spec, &a, &mut b);
        assert!(b.at(4, 4) < 100.0);
        assert!(b.at(4, 5) > 0.0);
        assert_eq!(b.at(4, 6), 0.0); // radius 1 only
    }

    #[test]
    fn halo_values_contribute() {
        let spec = presets::star2d5p();
        let a = Grid2d::from_fn(8, 8, 1, |i, _| if i < 0 { 10.0 } else { 0.0 });
        let mut b = Grid2d::zeros(8, 8, 1);
        apply_2d(&spec, &a, &mut b);
        assert!(b.at(0, 4) > 0.0, "top row must see the halo");
        assert_eq!(b.at(2, 4), 0.0);
    }

    #[test]
    fn degenerate_shapes_are_typed_errors() {
        use crate::grid::GridError;
        let spec = presets::star2d9p(); // radius 2
        let a = Grid2d::zeros(8, 8, 1);
        let mut b = Grid2d::zeros(8, 8, 1);
        assert_eq!(
            try_apply_2d(&spec, &a, &mut b),
            Err(GridError::HaloTooSmall { halo: 1, radius: 2 })
        );
        let a = Grid2d::zeros(2, 16, 2);
        let mut b = Grid2d::zeros(2, 16, 2);
        assert_eq!(
            try_apply_2d(&spec, &a, &mut b),
            Err(GridError::RadiusExceedsInterior {
                radius: 2,
                interior: 2
            })
        );
        // The panicking wrapper still panics, with the typed message.
        let a = Grid2d::zeros(8, 8, 1);
        let mut b = Grid2d::zeros(8, 8, 1);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            apply_2d(&spec, &a, &mut b);
        }))
        .expect_err("must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("halo 1"), "got: {msg}");
    }

    #[test]
    fn constant_field_3d() {
        let spec = presets::star3d7p();
        let a = Grid3d::from_fn(6, 8, 8, 1, |_, _, _| 2.0);
        let mut b = Grid3d::zeros(6, 8, 8, 1);
        apply_3d(&spec, &a, &mut b);
        assert!((b.at(3, 4, 4) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn impulse_3d_spreads_across_planes() {
        let spec = presets::star3d7p();
        let mut a = Grid3d::zeros(5, 8, 8, 1);
        a.set(2, 4, 4, 1.0);
        let mut b = Grid3d::zeros(5, 8, 8, 1);
        apply_3d(&spec, &a, &mut b);
        assert!((b.at(1, 4, 4) - spec.c3(1, 0, 0)).abs() < 1e-15);
        assert!((b.at(3, 4, 4) - spec.c3(-1, 0, 0)).abs() < 1e-15);
        assert_eq!(b.at(2, 5, 5), 0.0); // star has no diagonal
    }
}
