//! Error types for plan construction and execution.

use lx2_sim::SimError;
use std::fmt;

/// Errors raised while building or running a stencil plan.
#[derive(Clone, Debug, PartialEq)]
pub enum PlanError {
    /// The grid is smaller than one tile in some dimension.
    GridTooSmall {
        /// Required minimum interior size per dimension.
        min: usize,
        /// Offending dimension size.
        got: usize,
    },
    /// The stencil radius exceeds what tile kernels support.
    RadiusTooLarge {
        /// Requested radius.
        radius: usize,
        /// Maximum supported radius.
        max: usize,
    },
    /// The chosen method cannot run on the chosen machine (e.g. an
    /// expert vector-MLA method on Apple M4's streaming mode).
    MethodUnsupported {
        /// Method name.
        method: &'static str,
        /// Machine name.
        machine: &'static str,
        /// Why it is unsupported.
        reason: &'static str,
    },
    /// The simulated output did not match the scalar reference.
    VerificationFailed {
        /// First mismatching interior row.
        i: usize,
        /// First mismatching interior column.
        j: usize,
        /// Expected (reference) value.
        expected: f64,
        /// Simulated value.
        got: f64,
    },
    /// The functional simulator raised an error.
    Sim(SimError),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::GridTooSmall { min, got } => {
                write!(
                    f,
                    "grid dimension {got} below the per-tile minimum of {min}"
                )
            }
            PlanError::RadiusTooLarge { radius, max } => {
                write!(f, "stencil radius {radius} exceeds supported maximum {max}")
            }
            PlanError::MethodUnsupported {
                method,
                machine,
                reason,
            } => {
                write!(f, "method {method} is unsupported on {machine}: {reason}")
            }
            PlanError::VerificationFailed {
                i,
                j,
                expected,
                got,
            } => write!(
                f,
                "verification failed at interior ({i},{j}): expected {expected}, got {got}"
            ),
            PlanError::Sim(e) => write!(f, "simulator error: {e}"),
        }
    }
}

impl std::error::Error for PlanError {}

impl From<SimError> for PlanError {
    fn from(e: SimError) -> Self {
        PlanError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_from() {
        let e = PlanError::GridTooSmall { min: 8, got: 4 };
        assert!(e.to_string().contains("below"));
        let e: PlanError = SimError::BadTileRow { row: 9 }.into();
        assert!(matches!(e, PlanError::Sim(_)));
    }
}
