//! Element types the native executor is generic over.
//!
//! The paper's central claim is that the interleaved outer-product +
//! MLA schedule maps onto *any* wide-vector engine; the element type is
//! one of the two axes that widen it (the other is the ISA). [`Element`]
//! is the minimal arithmetic contract the kernels need — a fused
//! multiply-add, the two ring constants, and lossless round-trips to
//! `f64` for grid construction and differential checking. `f64` is the
//! reference precision; `f32` doubles vector lanes at the cost of a
//! wider ULP budget in the conformance oracles (DESIGN.md §12).

use std::fmt;

/// The element type of a grid/kernel instance, as data (for tune keys,
/// registry names and bench rows).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Dtype {
    /// IEEE-754 binary32.
    F32,
    /// IEEE-754 binary64 (the reference precision).
    F64,
}

impl Dtype {
    /// Stable lowercase label (`"f32"` / `"f64"`), used in autotuner
    /// plan keys, conformance variant names and bench row ids.
    pub fn label(self) -> &'static str {
        match self {
            Dtype::F32 => "f32",
            Dtype::F64 => "f64",
        }
    }

    /// Element size in bytes.
    pub fn size(self) -> usize {
        match self {
            Dtype::F32 => 4,
            Dtype::F64 => 8,
        }
    }

    /// Parses a [`Dtype::label`] back (used by the tune-file reader;
    /// anything unrecognised is `None`, dropped row-wise by the parser).
    pub fn from_label(s: &str) -> Option<Dtype> {
        match s {
            "f32" => Some(Dtype::F32),
            "f64" => Some(Dtype::F64),
            _ => None,
        }
    }
}

impl fmt::Display for Dtype {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// An IEEE float the grids and native kernels can be instantiated at.
///
/// The contract the kernels rely on:
///
/// * [`Element::mul_add`] rounds **once** (a true FMA) — the
///   bit-identity argument between scalar and SIMD dispatches holds
///   because both sides round identically per step;
/// * [`Element::from_f64`] / [`Element::to_f64`] are the bridges to the
///   `f64` reference world: exact for `f64`, round-to-nearest for
///   `f32` (and `f32 -> f64` back is exact).
pub trait Element: Copy + PartialEq + PartialOrd + fmt::Debug + Send + Sync + 'static {
    /// Which dtype this is, as data.
    const DTYPE: Dtype;
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity (the hybrid kernel's fold constant).
    const ONE: Self;

    /// Fused multiply-add `self * a + b`, rounded once.
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// Conversion from the `f64` master value (round-to-nearest).
    fn from_f64(v: f64) -> Self;
    /// Widening to `f64` (exact for both instances).
    fn to_f64(self) -> f64;
    /// Absolute value (used by diff helpers, not by kernels).
    fn abs(self) -> Self;
}

impl Element for f64 {
    const DTYPE: Dtype = Dtype::F64;
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;

    #[inline(always)]
    fn mul_add(self, a: Self, b: Self) -> Self {
        f64::mul_add(self, a, b)
    }
    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        v
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline(always)]
    fn abs(self) -> Self {
        f64::abs(self)
    }
}

impl Element for f32 {
    const DTYPE: Dtype = Dtype::F32;
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;

    #[inline(always)]
    fn mul_add(self, a: Self, b: Self) -> Self {
        f32::mul_add(self, a, b)
    }
    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline(always)]
    fn abs(self) -> Self {
        f32::abs(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for d in [Dtype::F32, Dtype::F64] {
            assert_eq!(Dtype::from_label(d.label()), Some(d));
        }
        assert_eq!(Dtype::from_label("f16"), None);
        assert_eq!(Dtype::from_label(""), None);
    }

    #[test]
    fn sizes_match_the_types() {
        assert_eq!(Dtype::F32.size(), std::mem::size_of::<f32>());
        assert_eq!(Dtype::F64.size(), std::mem::size_of::<f64>());
    }

    #[test]
    fn mul_add_rounds_once() {
        // A case where fused and unfused differ in f64: (1 + 2^-27)^2
        // carries a 2^-54 cross term that only the fused path keeps.
        let x = 1.0 + (2.0f64).powi(-27);
        let (a, b, c) = (x, x, -1.0);
        assert_eq!(Element::mul_add(a, b, c), f64::mul_add(a, b, c));
        assert_ne!(f64::mul_add(a, b, c), a * b + c);
        let (a, b, c) = (1.0 + f32::EPSILON, 1.0 + f32::EPSILON, -1.0f32);
        assert_eq!(Element::mul_add(a, b, c), f32::mul_add(a, b, c));
    }

    #[test]
    fn f32_round_trips_through_f64_exactly() {
        for v in [0.0f32, 1.5, -3.25e-7, f32::MIN_POSITIVE, 1.0e30] {
            assert_eq!(f32::from_f64(v.to_f64()), v);
        }
    }
}
