//! Apple M4 star-stencil kernel (paper §4).
//!
//! M4's streaming mode has no vector FMLA, so the inner-axis arm runs on
//! the matrix unit's multi-vector MLA ("M-MLA", [`lx2_isa::Inst::Fmlag`])
//! which updates the even/odd row groups of a tile from groups of four
//! vector registers. Because M-MLA fragments the tile-row layout, the
//! in-place accumulation trick is architecturally infeasible (§4.1): the
//! kernel reverts to the naive combine — vertical arm in `za0`, horizontal
//! arm in `za1`, then per-row tile-to-vector moves, an add, and a store.
//!
//! Vector `EXT` remains available and is used for positive shifts;
//! negative shifts use unaligned loads (§4.2's load/EXT balance).

use super::{alloc_const, ramp_addr, ramp_values, window_mask, Kernel, KernelCtx, StepLists};
use crate::error::PlanError;
use lx2_isa::{Inst, MemKind, Program, RowMask, VReg, ZaReg, VLEN};
use lx2_sim::Machine;

const COMBINE0: usize = 0; // v0..v5: combine row pairs (3-deep rotation)
const VEDGE: usize = 2; // v2..v3: vertical edge-row data rotation (pre-combine)
const COFV: usize = 4; // v4..v5: coefficient rotation (pre-combine)
const CPACK: usize = 7; // v7: packed horizontal coefficients
const ROWS: usize = 8; // v8..v15: current block rows 0..7
const ROWS_R: usize = 16; // v16..v23: right-neighbour block rows
const SHIFT_EVEN: usize = 24; // v24..v27: shifted even rows (M-MLA group)
const SHIFT_ODD: usize = 28; // v28..v31: shifted odd rows (M-MLA group)

const ZA_V: usize = 0; // vertical accumulator tile
const ZA_H: usize = 1; // horizontal accumulator tile

/// The Apple M4 star kernel.
pub struct M4StarKernel {
    vertical_ramp: u64,
    vertical_extent: usize,
    hterms: Vec<(i64, u8)>,
    r: usize,
    lists: StepLists,
}

impl M4StarKernel {
    /// Creates an empty kernel (populated by `setup`).
    pub fn new() -> Self {
        M4StarKernel {
            vertical_ramp: 0,
            vertical_extent: 0,
            hterms: Vec::new(),
            r: 1,
            lists: StepLists::default(),
        }
    }
}

impl Default for M4StarKernel {
    fn default() -> Self {
        Self::new()
    }
}

impl Kernel for M4StarKernel {
    fn name(&self) -> &'static str {
        "hstencil-m4-star"
    }

    fn setup(&mut self, ctx: &KernelCtx, mach: &mut Machine) -> Result<(), PlanError> {
        if ctx.planes.len() != 1 {
            return Err(PlanError::MethodUnsupported {
                method: "hstencil-m4-star",
                machine: "Apple M4",
                reason: "the M4 star kernel currently supports 2-D stencils only",
            });
        }
        self.r = ctx.radius;
        let table = &ctx.planes[0].table;
        let r = table.radius() as isize;
        for dj in -r..=r {
            if dj == 0 {
                continue;
            }
            let col = table.column(dj);
            if !(col.is_empty() || (col.len() == 1 && col[0].0 == 0)) {
                return Err(PlanError::MethodUnsupported {
                    method: "hstencil-m4-star",
                    machine: "Apple M4",
                    reason: "M-MLA horizontal arm requires star-shaped tables",
                });
            }
        }
        let vcol = table.column(0);
        let reversed: Vec<(isize, f64)> = vcol.iter().map(|&(di, c)| (-di, c)).collect();
        self.vertical_ramp = alloc_const(mach, &ramp_values(&reversed))?;
        self.vertical_extent = vcol
            .iter()
            .map(|&(di, _)| di.unsigned_abs())
            .max()
            .unwrap_or(0);

        let hterms: Vec<(i64, f64)> = (-r..=r)
            .filter(|&dj| dj != 0)
            .filter_map(|dj| {
                let c = table.at(0, dj);
                (c != 0.0).then_some((dj as i64, c))
            })
            .collect();
        assert!(hterms.len() <= VLEN);
        let mut packed = vec![0.0; VLEN];
        for (lane, &(_, c)) in hterms.iter().enumerate() {
            packed[lane] = c;
        }
        let base = alloc_const(mach, &packed)?;
        let mut prologue = Program::new();
        prologue.push(Inst::Ld1d {
            vd: VReg::new(CPACK),
            addr: base,
        });
        mach.execute(&prologue)?;
        self.hterms = hterms
            .iter()
            .enumerate()
            .map(|(l, &(dj, _))| (dj, l as u8))
            .collect();
        Ok(())
    }

    fn tile_cols(&self, _ctx: &KernelCtx) -> usize {
        // Eight row registers must stay live for the M-MLA groups, so the
        // M4 kernel works one column block at a time.
        VLEN
    }

    fn emit_tile(&mut self, ctx: &KernelCtx, i0: usize, j0: usize, prog: &mut Program) {
        let (i0, j0) = (i0 as i64, j0 as i64);
        let r = self.r as i64;
        let plane = &ctx.planes[0];
        prog.push(Inst::ZeroZa {
            za: ZaReg::new(ZA_V),
            mask: RowMask::ALL,
        });
        prog.push(Inst::ZeroZa {
            za: ZaReg::new(ZA_H),
            mask: RowMask::ALL,
        });

        // Resident rows of the current and right-neighbour blocks.
        for p in 0..VLEN as i64 {
            self.lists.prep.push(Inst::Ld1d {
                vd: VReg::new(ROWS + p as usize),
                addr: ctx.a(plane, i0 + p, j0),
            });
            if self.hterms.iter().any(|&(dj, _)| dj > 0) {
                self.lists.prep.push(Inst::Ld1d {
                    vd: VReg::new(ROWS_R + p as usize),
                    addr: ctx.a(plane, i0 + p, j0 + VLEN as i64),
                });
            }
        }
        if ctx.opts.prefetch {
            for p in 0..VLEN as i64 {
                let pf = i0 + p + ctx.opts.prefetch_dist as i64 * VLEN as i64;
                if pf <= ctx.h as i64 - 1 + r {
                    self.lists.prep.push(Inst::Prfm {
                        addr: ctx.a(plane, pf, j0),
                        kind: MemKind::Read,
                    });
                }
                self.lists.prep.push(Inst::Prfm {
                    addr: ctx.b(i0 + p, j0),
                    kind: MemKind::Write,
                });
            }
        }

        // The resident-row loads feed both arms, so they must precede the
        // merged compute streams in program order.
        let prep = std::mem::take(&mut self.lists.prep);
        for inst in prep {
            prog.push(inst);
        }

        // Vertical arm: outer-axis outer products into ZA_V.
        let mut cof_rot = 0usize;
        let mut edge_rot = 0usize;
        for ii in (i0 - r)..=(i0 + VLEN as i64 - 1 + r) {
            let t = ii - i0;
            let mask = window_mask(t, self.vertical_extent);
            if mask == RowMask::NONE {
                continue;
            }
            let cofv = VReg::new(COFV + (cof_rot % 2));
            cof_rot += 1;
            self.lists.matrix.push(Inst::Ld1d {
                vd: cofv,
                addr: ramp_addr(self.vertical_ramp, t),
            });
            let data = if (0..VLEN as i64).contains(&t) {
                VReg::new(ROWS + t as usize)
            } else {
                let dst = VReg::new(VEDGE + (edge_rot % 2));
                edge_rot += 1;
                self.lists.matrix.push(Inst::Ld1d {
                    vd: dst,
                    addr: ctx.a(plane, ii, j0),
                });
                dst
            };
            self.lists.matrix.push(Inst::Fmopa {
                za: ZaReg::new(ZA_V),
                vn: cofv,
                vm: data,
                mask,
            });
        }

        // Horizontal arm: per shift, build the even/odd shifted groups and
        // run two M-MLA instructions into ZA_H.
        for &(dj, lane) in &self.hterms.clone() {
            for p in 0..VLEN {
                let dst = if p % 2 == 0 {
                    VReg::new(SHIFT_EVEN + p / 2)
                } else {
                    VReg::new(SHIFT_ODD + p / 2)
                };
                if dj > 0 {
                    self.lists.vector.push(Inst::Ext {
                        vd: dst,
                        vn: VReg::new(ROWS + p),
                        vm: VReg::new(ROWS_R + p),
                        shift: dj as u8,
                    });
                } else {
                    self.lists.vector.push(Inst::Ld1d {
                        vd: dst,
                        addr: ctx.a(plane, i0 + p as i64, j0 + dj),
                    });
                }
            }
            self.lists.vector.push(Inst::Fmlag {
                za: ZaReg::new(ZA_H),
                half: 0,
                vn0: VReg::new(SHIFT_EVEN),
                vm: VReg::new(CPACK),
                idx: lane,
            });
            self.lists.vector.push(Inst::Fmlag {
                za: ZaReg::new(ZA_H),
                half: 1,
                vn0: VReg::new(SHIFT_ODD),
                vm: VReg::new(CPACK),
                idx: lane,
            });
        }

        self.lists.flush(prog, ctx.opts.scheduling);

        // Naive combine (in-place accumulation is infeasible on M4): move
        // both tiles' rows out, add, store. The transfers are software
        // pipelined two rows deep so the MOVA latency overlaps the adds
        // and stores of earlier rows.
        let pair = |p: usize| {
            let lo = COMBINE0 + 2 * (p % 3);
            (VReg::new(lo), VReg::new(lo + 1))
        };
        let movas = |p: usize| {
            let (a, b) = pair(p);
            [
                Inst::MovaToVec {
                    vd: a,
                    za: ZaReg::new(ZA_V),
                    row: p as u8,
                },
                Inst::MovaToVec {
                    vd: b,
                    za: ZaReg::new(ZA_H),
                    row: p as u8,
                },
            ]
        };
        prog.extend(movas(0));
        prog.extend(movas(1));
        for p in 0..VLEN {
            if p + 2 < VLEN {
                prog.extend(movas(p + 2));
            }
            let (a, b) = pair(p);
            prog.push(Inst::Fadd {
                vd: a,
                vn: a,
                vm: b,
            });
            prog.push(Inst::St1d {
                vs: a,
                addr: ctx.b(i0 + p as i64, j0),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::Plane;
    use crate::stencil::presets;
    use lx2_sim::MachineConfig;

    fn ctx_for(spec: &crate::stencil::StencilSpec) -> KernelCtx {
        KernelCtx {
            h: 16,
            w: 32,
            stride: 48,
            b0: 0,
            planes: vec![Plane {
                base: 0,
                table: spec.plane_table_2d(),
            }],
            radius: spec.radius(),
            opts: Default::default(),
        }
    }

    #[test]
    fn star_setup_succeeds() {
        let mut mach = Machine::new(&MachineConfig::apple_m4());
        let mut k = M4StarKernel::new();
        k.setup(&ctx_for(&presets::star2d9p()), &mut mach).unwrap();
        assert_eq!(k.hterms.len(), 4);
    }

    #[test]
    fn box_is_rejected() {
        let mut mach = Machine::new(&MachineConfig::apple_m4());
        let mut k = M4StarKernel::new();
        let err = k.setup(&ctx_for(&presets::box2d9p()), &mut mach);
        assert!(matches!(err, Err(PlanError::MethodUnsupported { .. })));
    }
}
