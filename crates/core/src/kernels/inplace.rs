//! The HStencil hybrid micro kernel with **in-place accumulation**
//! (paper Algorithm 2, Figure 8).
//!
//! Per input row `ii` the kernel:
//!
//! 1. computes the *outer-axis* part with outer products — one FMOPA per
//!    dense coefficient column, coefficients loaded pre-shifted from ramp
//!    tables;
//! 2. computes the *inner-axis* part of the centre output row with vector
//!    MLA (`FMLA` with packed coefficients over `EXT`-shifted inputs);
//! 3. folds the vector partial sum into the matrix tile **in place** with
//!    a single outer product against a unit coefficient vector — the
//!    accumulation trick of §3.1.1 that replaces the naive method's
//!    store/reload round-trip;
//! 4. stores tile rows as soon as their last contribution lands (store
//!    scattering, §3.2.2).
//!
//! The same table-driven emitter covers star, box, Heat-2D and 3-D
//! stencils (3-D = accumulation over `2r+1` input planes): columns with
//! two or more nonzero coefficients go to the matrix unit, single-centre
//! columns become vector MLA terms — with the §3.2.1 *replacement* pass
//! optionally rolling some MLA terms back to single-row outer products
//! and converting some `EXT` concatenations to unaligned loads until the
//! vector, matrix and load pipes are balanced.

use super::{
    alloc_const, emit_pipelined, ramp_addr, ramp_values, window_mask, Kernel, KernelCtx, Pair,
    StepLists,
};
use crate::error::PlanError;
use lx2_isa::{Inst, MemKind, Program, RowMask, VReg, ZaReg, VLEN};
use lx2_sim::Machine;

// Register map (see kernels/mod.rs docs).
const REG1: usize = 0; // v0..v3: per-block vector accumulators
const ABLK0: usize = 4; // v4..v9: data blocks, bank 0 (indices -1..=rb)
const ABLK1: usize = 10; // v10..v15: data blocks, bank 1
const COFV: usize = 16; // v16..v19: rotating coefficient-column registers
const SCRATCH_M: usize = 20; // v20..v22: shifted-data scratch, matrix stream
const SCRATCH_V: usize = 29; // v29..v31: shifted-data scratch, vector stream
const ROLLBACK: usize = 23; // v23: rolled-back term coefficient dup
const CPACK: usize = 24; // v24..v27: per-plane packed MLA coefficients
const ONES: usize = 28; // v28: all-ones (in-place accumulation vector)

/// Maximum MLA terms rolled back to outer products per plane.
const MAX_ROLLBACK: usize = 1;

#[derive(Clone, Debug)]
struct MatrixCol {
    dj: i64,
    /// Ramp table base (stores the *reversed* column: lane `C + di` holds
    /// `c[-di]`, so a load at `ramp_addr(base, t)` puts `c[t - p]` in lane
    /// `p` — the scatter-form coefficient for tile row `p`).
    ramp: u64,
    /// Largest |di| with a nonzero coefficient (for the row-window mask).
    extent: usize,
}

#[derive(Clone, Debug)]
struct PlanePlan {
    matrix_cols: Vec<MatrixCol>,
    /// Inner-axis MLA terms `(dj, lane in cpack)` after rollback.
    vector_terms: Vec<(i64, u8)>,
    /// Terms rolled back to single-row outer products `(dj, dup reg)`.
    rollback_terms: Vec<(i64, VReg)>,
    /// Packed MLA coefficients register, if any vector terms remain.
    cpack: Option<VReg>,
    /// Shift offsets resolved to unaligned loads instead of EXT.
    shifts_as_loads: Vec<i64>,
}

impl PlanePlan {
    fn shift_is_load(&self, dj: i64) -> bool {
        self.shifts_as_loads.contains(&dj)
    }

    fn needs_edges(&self) -> bool {
        let ext_shift = |dj: &i64| *dj != 0 && !self.shift_is_load(*dj);
        self.matrix_cols.iter().map(|c| &c.dj).any(ext_shift)
            || self.vector_terms.iter().map(|(dj, _)| dj).any(ext_shift)
            || self.rollback_terms.iter().map(|(dj, _)| dj).any(ext_shift)
    }
}

/// The HStencil in-place accumulation kernel.
pub struct InplaceKernel {
    plans: Vec<PlanePlan>,
    rb: usize,
    r: usize,
    /// Whether streaming-mode vector FMLA exists on the target machine.
    use_fmla: bool,
    /// STOP mode: route every column to the matrix unit and every shift
    /// to an unaligned load — the state-of-the-art matrix-only method the
    /// paper compares against (zero vector instructions, Table 5).
    force_matrix: bool,
    lists: StepLists,
}

impl InplaceKernel {
    /// Creates the kernel; `use_fmla` must reflect the target machine
    /// (`MachineConfig::allow_vector_fmla`).
    pub fn new(use_fmla: bool) -> Self {
        InplaceKernel {
            plans: Vec::new(),
            rb: 1,
            r: 1,
            use_fmla,
            force_matrix: false,
            lists: StepLists::default(),
        }
    }

    /// Creates the STOP (matrix-only, outer-axis) configuration.
    pub fn new_stop() -> Self {
        InplaceKernel {
            plans: Vec::new(),
            rb: 1,
            r: 1,
            use_fmla: false,
            force_matrix: true,
            lists: StepLists::default(),
        }
    }

    fn bank(step: usize) -> usize {
        if step.is_multiple_of(2) {
            ABLK0
        } else {
            ABLK1
        }
    }

    /// Data-block register for block index `b` in `-1..=rb` within a bank.
    fn ablk(bank: usize, b: i64) -> VReg {
        VReg::new((bank as i64 + b + 1) as usize)
    }

    /// Estimate per-tile pipe occupancy (cycles) for a candidate
    /// replacement configuration; used by the §3.2.1 balancer.
    #[allow(clippy::too_many_arguments)]
    fn config_cost(
        r: usize,
        rb: usize,
        n_matrix_cols: usize,
        n_vector: usize,
        n_rollback: usize,
        shift_djs_ext: usize,
        shift_djs_load: usize,
        planes: usize,
    ) -> f64 {
        let steps = (VLEN + 2 * r) as f64 * planes as f64;
        let center = VLEN as f64 * planes as f64;
        let rbf = rb as f64;
        // Matrix pipe: vertical FMOPAs + rollback FMOPAs + accumulate FMOPA.
        let matrix = steps * n_matrix_cols as f64 * rbf
            + center * n_rollback as f64 * rbf
            + if n_vector > 0 { center * rbf } else { 0.0 };
        // Vector pipe: EXT shifts + MLA chain + accumulator zeroing.
        let ext_ops = steps.min(center) * shift_djs_ext as f64 * rbf;
        let vector = ext_ops
            + if n_vector > 0 {
                center * (n_vector as f64 + 1.0) * rbf
            } else {
                0.0
            };
        // Load pipes: data + ramps + shift loads (unaligned: two slots
        // each) + prefetches; store pipe: one per row.
        let loads = steps * (rbf + 2.0)
            + steps * n_matrix_cols as f64
            + steps.min(center) * shift_djs_load as f64 * rbf * 2.0
            + steps * (rbf + 1.0); // prefetch hints share the load pipes
        let stores = VLEN as f64 * rbf;
        (matrix / 1.0)
            .max(vector / 2.0)
            .max(loads / 2.0)
            .max(stores / 1.0)
    }

    fn plan_plane(
        &self,
        table: &crate::table::CoeffTable,
        plane_idx: usize,
        replacement: bool,
        mach: &mut Machine,
        prologue: &mut Program,
        next_rollback_reg: &mut usize,
    ) -> Result<PlanePlan, PlanError> {
        let (mcols, vterms) = if self.force_matrix {
            (table.active_columns(), Vec::new())
        } else {
            table.split_matrix_vector()
        };
        let mcols: Vec<i64> = mcols.into_iter().map(|d| d as i64).collect();
        let vterms: Vec<(i64, f64)> = vterms.into_iter().map(|(d, c)| (d as i64, c)).collect();
        assert!(
            self.use_fmla || vterms.is_empty(),
            "vector MLA terms require streaming FMLA; route star stencils to the M4 kernel"
        );

        // Decide rollback count K and EXT→LD conversions by brute force
        // over the (tiny) configuration space.
        let all_shift_djs: Vec<i64> = {
            let mut v: Vec<i64> = mcols
                .iter()
                .copied()
                .chain(vterms.iter().map(|&(dj, _)| dj))
                .filter(|&dj| dj != 0)
                .collect();
            v.sort_by_key(|d| std::cmp::Reverse(d.abs()));
            v.dedup();
            v
        };
        let (mut best_k, mut best_loads, mut best_cost) = (0usize, 0usize, f64::INFINITY);
        let k_max = if replacement {
            vterms.len().min(MAX_ROLLBACK)
        } else {
            0
        };
        let l_max = if replacement { all_shift_djs.len() } else { 0 };
        for k in 0..=k_max {
            for l in 0..=l_max {
                let cost = Self::config_cost(
                    self.r,
                    self.rb,
                    mcols.len(),
                    vterms.len() - k,
                    k,
                    all_shift_djs.len() - l,
                    l,
                    1,
                );
                if cost < best_cost {
                    best_cost = cost;
                    best_k = k;
                    best_loads = l;
                }
            }
        }

        // Rollback the largest-|dj| terms first (they are the EXT-costliest).
        let mut vterms_sorted = vterms.clone();
        vterms_sorted.sort_by_key(|&(dj, _)| std::cmp::Reverse(dj.abs()));
        let mut rollback_terms = Vec::new();
        for &(dj, c) in vterms_sorted.iter().take(best_k) {
            assert!(
                *next_rollback_reg < CPACK,
                "rollback register budget exceeded"
            );
            let reg = VReg::new(*next_rollback_reg);
            *next_rollback_reg += 1;
            prologue.push(Inst::DupImm { vd: reg, imm: c });
            rollback_terms.push((dj, reg));
        }
        let remaining: Vec<(i64, f64)> = vterms
            .iter()
            .copied()
            .filter(|&(dj, _)| !rollback_terms.iter().any(|&(rd, _)| rd == dj))
            .collect();

        // Pack remaining MLA coefficients into one register.
        let cpack = if remaining.is_empty() {
            None
        } else {
            assert!(remaining.len() <= VLEN, "too many MLA terms for one pack");
            assert!(CPACK + plane_idx < ONES, "coefficient pack budget exceeded");
            let mut packed = vec![0.0; VLEN];
            for (lane, &(_, c)) in remaining.iter().enumerate() {
                packed[lane] = c;
            }
            let base = alloc_const(mach, &packed)?;
            let reg = VReg::new(CPACK + plane_idx);
            prologue.push(Inst::Ld1d {
                vd: reg,
                addr: base,
            });
            Some(reg)
        };
        let vector_terms: Vec<(i64, u8)> = remaining
            .iter()
            .enumerate()
            .map(|(lane, &(dj, _))| (dj, lane as u8))
            .collect();

        // Ramp tables for matrix columns (reversed for scatter form).
        let mut matrix_cols = Vec::new();
        for &dj in &mcols {
            let col = table.column(dj as isize);
            let reversed: Vec<(isize, f64)> = col.iter().map(|&(di, c)| (-di, c)).collect();
            let ramp = alloc_const(mach, &ramp_values(&reversed))?;
            let extent = col
                .iter()
                .map(|&(di, _)| di.unsigned_abs())
                .max()
                .unwrap_or(0);
            matrix_cols.push(MatrixCol { dj, ramp, extent });
        }

        // STOP performs every shifted access as an unaligned load — it has
        // no vector-pipe cooperation at all.
        let shifts_as_loads: Vec<i64> = if self.force_matrix {
            all_shift_djs
        } else {
            all_shift_djs.into_iter().take(best_loads).collect()
        };
        Ok(PlanePlan {
            matrix_cols,
            vector_terms,
            rollback_terms,
            cpack,
            shifts_as_loads,
        })
    }

    /// Builds the shifted-data producer for `(plane, dj, block)`: returns
    /// the register the consumer should read plus the producer instruction
    /// (None when `dj == 0`, where the aligned block register is used
    /// directly).
    ///
    /// `scratch_base` selects a stream-private scratch trio; the matrix
    /// and vector streams are interleaved by the scheduler, so they must
    /// never share scratch registers. Rotation over three registers keeps
    /// software-pipelined producers (lookahead ≤ 2) hazard-free.
    #[allow(clippy::too_many_arguments)]
    fn shift_producer(
        ctx: &KernelCtx,
        plan: &PlanePlan,
        plane: &super::Plane,
        bank: usize,
        ii: i64,
        jb: i64,
        dj: i64,
        scratch_base: usize,
        scratch_rot: &mut usize,
        b: i64,
    ) -> (VReg, Option<Inst>) {
        if dj == 0 {
            return (Self::ablk(bank, b), None);
        }
        let dst = VReg::new(scratch_base + (*scratch_rot % 3));
        *scratch_rot += 1;
        let inst = if plan.shift_is_load(dj) {
            Inst::Ld1d {
                vd: dst,
                addr: ctx.a(plane, ii, jb + dj),
            }
        } else if dj > 0 {
            Inst::Ext {
                vd: dst,
                vn: Self::ablk(bank, b),
                vm: Self::ablk(bank, b + 1),
                shift: dj as u8,
            }
        } else {
            Inst::Ext {
                vd: dst,
                vn: Self::ablk(bank, b - 1),
                vm: Self::ablk(bank, b),
                shift: (VLEN as i64 + dj) as u8,
            }
        };
        (dst, Some(inst))
    }

    /// Decode a plane-step index into `(input row ii, plane index)`.
    fn decode(&self, ctx: &KernelCtx, i0: i64, step: usize) -> (i64, usize) {
        let nplanes = ctx.planes.len();
        let ii = i0 - self.r as i64 + (step / nplanes) as i64;
        (ii, step % nplanes)
    }

    fn plane_active(&self, pi: usize) -> bool {
        let p = &self.plans[pi];
        !(p.matrix_cols.is_empty() && p.vector_terms.is_empty() && p.rollback_terms.is_empty())
    }

    /// Whether plane `pi` contributes anything at tile-row offset `t`
    /// (center-only planes are idle outside the centre window, so their
    /// edge steps need no loads at all).
    fn step_has_work(&self, pi: usize, t: i64) -> bool {
        let p = &self.plans[pi];
        let centre = (0..VLEN as i64).contains(&t);
        p.matrix_cols
            .iter()
            .any(|c| window_mask(t, c.extent) != RowMask::NONE)
            || (centre && !(p.vector_terms.is_empty() && p.rollback_terms.is_empty()))
    }

    /// Queue the prep (loads + prefetch) for plane-step `step`.
    fn queue_prep(&mut self, ctx: &KernelCtx, i0: i64, j0: i64, step: usize) {
        let r = self.r as i64;
        let (ii, pi) = self.decode(ctx, i0, step);
        if ii > i0 + VLEN as i64 - 1 + r {
            return;
        }
        let bank = Self::bank(step);
        if self.plane_active(pi) && self.step_has_work(pi, ii - i0) {
            let plane = &ctx.planes[pi];
            let needs_edges = self.plans[pi].needs_edges();
            let lo = if needs_edges { -1 } else { 0 };
            let hi = if needs_edges {
                self.rb as i64
            } else {
                self.rb as i64 - 1
            };
            for b in lo..=hi {
                self.lists.prep.push(Inst::Ld1d {
                    vd: Self::ablk(bank, b),
                    addr: ctx.a(plane, ii, j0 + VLEN as i64 * b),
                });
            }
            if ctx.opts.prefetch {
                // Prefetch the input rows the pipeline will need shortly
                // (Algorithm 3 line 4) — covering the *entire* loaded
                // range including the edge blocks: the right edge is the
                // first touch of the next strip's lines, the one access
                // the hardware prefetcher can never anticipate.
                let pf_row = ii + ctx.opts.prefetch_dist as i64;
                if pf_row <= ctx.h as i64 - 1 + r {
                    for b in lo..=hi {
                        self.lists.prep.push(Inst::Prfm {
                            addr: ctx.a(plane, pf_row, j0 + VLEN as i64 * b),
                            kind: MemKind::Read,
                        });
                    }
                }
            }
        }
        if ctx.opts.prefetch && pi == 0 {
            // Prefetch the destination row written `prefetch_dist` steps
            // from now (Algorithm 3 line 6), within the current tile's
            // store window.
            let target = ii - r + ctx.opts.prefetch_dist as i64;
            if (0..VLEN as i64).contains(&(target - i0)) {
                for b in 0..self.rb as i64 {
                    self.lists.prep.push(Inst::Prfm {
                        addr: ctx.b(target, j0 + VLEN as i64 * b),
                        kind: MemKind::Write,
                    });
                }
            }
        }
    }

    /// Queue the compute work for plane-step `step`.
    ///
    /// Both streams are emitted as producer/consumer pairs: with
    /// scheduling enabled, producers (coefficient-ramp loads and shifted
    /// data) run two pairs ahead of their consumers so the in-order
    /// pipeline never waits on them; without scheduling, pairs are
    /// adjacent and every producer latency is exposed.
    fn queue_compute(&mut self, ctx: &KernelCtx, i0: i64, j0: i64, step: usize) {
        let (ii, pi) = self.decode(ctx, i0, step);
        if !self.plane_active(pi) {
            return;
        }
        let t = ii - i0;
        let bank = Self::bank(step);
        let mut scratch_m = 0usize;
        let mut scratch_v = 0usize;
        let plane = &ctx.planes[pi];
        let plan = &self.plans[pi];
        // Producer lookahead is part of writing a competent kernel (STOP
        // and the micro kernel both have it); the `scheduling` switch
        // controls the cross-stream interleave and store scattering.
        let lookahead = 2;
        let rb = self.rb as i64;

        // Matrix stream: vertical columns + rolled-back terms.
        let active_cols: Vec<&MatrixCol> = plan
            .matrix_cols
            .iter()
            .filter(|c| window_mask(t, c.extent) != RowMask::NONE)
            .collect();
        let mut pairs: Vec<Pair> = Vec::with_capacity(active_cols.len() * self.rb + 8);
        for (ci, col) in active_cols.iter().enumerate() {
            let mask = window_mask(t, col.extent);
            let cofv = VReg::new(COFV + ci % 4);
            for b in 0..rb {
                let (data, shift) = Self::shift_producer(
                    ctx,
                    plan,
                    plane,
                    bank,
                    ii,
                    j0 + VLEN as i64 * b,
                    col.dj,
                    SCRATCH_M,
                    &mut scratch_m,
                    b,
                );
                // The coefficient ramp load rides as a producer of the
                // column's first pair (and the *next* column's ramp rides
                // the second pair, giving it nearly a full column of lead).
                let ramp_cur = (ci == 0 && b == 0).then(|| Inst::Ld1d {
                    vd: cofv,
                    addr: ramp_addr(col.ramp, t),
                });
                let ramp_next = (b == rb.min(2) - 1 && ci + 1 < active_cols.len()).then(|| {
                    let next = active_cols[ci + 1];
                    Inst::Ld1d {
                        vd: VReg::new(COFV + (ci + 1) % 4),
                        addr: ramp_addr(next.ramp, t),
                    }
                });
                pairs.push((
                    [ramp_cur, ramp_next, shift],
                    Inst::Fmopa {
                        za: ZaReg::new(b as usize),
                        vn: cofv,
                        vm: data,
                        mask,
                    },
                ));
            }
        }
        if (0..VLEN as i64).contains(&t) {
            for &(dj, creg) in &plan.rollback_terms {
                for b in 0..rb {
                    let (data, shift) = Self::shift_producer(
                        ctx,
                        plan,
                        plane,
                        bank,
                        ii,
                        j0 + VLEN as i64 * b,
                        dj,
                        SCRATCH_M,
                        &mut scratch_m,
                        b,
                    );
                    pairs.push((
                        [None, None, shift],
                        Inst::Fmopa {
                            za: ZaReg::new(b as usize),
                            vn: creg,
                            vm: data,
                            mask: RowMask::single(t as usize),
                        },
                    ));
                }
            }
        }
        emit_pipelined(&pairs, lookahead, &mut self.lists.matrix);

        // Vector stream: centre-row MLA chain plus in-place accumulation.
        if (0..VLEN as i64).contains(&t) && !plan.vector_terms.is_empty() {
            let cpack = plan.cpack.expect("vector terms imply a pack");
            for b in 0..self.rb {
                self.lists.vector.push(Inst::DupImm {
                    vd: VReg::new(REG1 + b),
                    imm: 0.0,
                });
            }
            // k-major across blocks so the FMLA chains interleave.
            let mut vpairs: Vec<Pair> = Vec::with_capacity(plan.vector_terms.len() * self.rb);
            for &(dj, lane) in &plan.vector_terms {
                for b in 0..rb {
                    let (data, shift) = Self::shift_producer(
                        ctx,
                        plan,
                        plane,
                        bank,
                        ii,
                        j0 + VLEN as i64 * b,
                        dj,
                        SCRATCH_V,
                        &mut scratch_v,
                        b,
                    );
                    vpairs.push((
                        [None, None, shift],
                        Inst::FmlaIdx {
                            vd: VReg::new(REG1 + b as usize),
                            vn: data,
                            vm: cpack,
                            idx: lane,
                        },
                    ));
                }
            }
            emit_pipelined(&vpairs, lookahead, &mut self.lists.vector);
            // In-place accumulation: one outer product folds the vector
            // partial sums into the tile (Figure 8).
            for b in 0..self.rb {
                self.lists.vector.push(Inst::Fmopa {
                    za: ZaReg::new(b),
                    vn: VReg::new(ONES),
                    vm: VReg::new(REG1 + b),
                    mask: RowMask::single(t as usize),
                });
            }
        }
    }

    /// Queue the stores of the row completed by plane-step `step` (only
    /// the last plane of an input row completes one).
    fn queue_stores(&mut self, ctx: &KernelCtx, i0: i64, j0: i64, step: usize) {
        let (ii, pi) = self.decode(ctx, i0, step);
        if pi != ctx.planes.len() - 1 {
            return;
        }
        let p = (ii - i0) - self.r as i64;
        if (0..VLEN as i64).contains(&p) {
            for b in 0..self.rb as i64 {
                self.lists.stores.push(Inst::StZaRow {
                    za: ZaReg::new(b as usize),
                    row: p as u8,
                    addr: ctx.b(i0 + p, j0 + VLEN as i64 * b),
                });
            }
        }
    }
}

impl Kernel for InplaceKernel {
    fn name(&self) -> &'static str {
        if self.force_matrix {
            "matrix-only-stop"
        } else {
            "hstencil-inplace"
        }
    }

    fn setup(&mut self, ctx: &KernelCtx, mach: &mut Machine) -> Result<(), PlanError> {
        self.r = ctx.radius;
        self.rb = ctx.reg_blocks();
        let mut prologue = Program::new();
        prologue.push(Inst::DupImm {
            vd: VReg::new(ONES),
            imm: 1.0,
        });
        let mut rollback_reg = ROLLBACK;
        self.plans.clear();
        let plans: Result<Vec<_>, _> = ctx
            .planes
            .iter()
            .enumerate()
            .map(|(pi, plane)| {
                self.plan_plane(
                    &plane.table,
                    pi,
                    ctx.opts.replacement,
                    mach,
                    &mut prologue,
                    &mut rollback_reg,
                )
            })
            .collect();
        self.plans = plans?;
        mach.execute(&prologue)?;
        Ok(())
    }

    fn tile_cols(&self, ctx: &KernelCtx) -> usize {
        ctx.reg_blocks() * VLEN
    }

    fn emit_tile(&mut self, ctx: &KernelCtx, i0: usize, j0: usize, prog: &mut Program) {
        let (i0, j0) = (i0 as i64, j0 as i64);
        let scheduled = ctx.opts.scheduling;
        let nsteps = (VLEN + 2 * self.r) * ctx.planes.len();

        for b in 0..self.rb {
            prog.push(Inst::ZeroZa {
                za: ZaReg::new(b),
                mask: RowMask::ALL,
            });
        }

        if scheduled {
            // Software pipeline: prep(0) up front, then compute(s) merged
            // with prep(s+1); a completed row's store is queued one step
            // late so it lands after every contribution in program order.
            self.queue_prep(ctx, i0, j0, 0);
            self.lists.flush_phased(prog);
            for s in 0..nsteps {
                self.queue_prep(ctx, i0, j0, s + 1);
                self.queue_compute(ctx, i0, j0, s);
                if s > 0 {
                    self.queue_stores(ctx, i0, j0, s - 1);
                }
                self.lists.flush_scheduled(prog);
            }
            self.queue_stores(ctx, i0, j0, nsteps - 1);
            self.lists.flush_phased(prog);
        } else {
            // Naive order: per-step loads then compute; all stores batched
            // at the end of the tile (the burst §3.2.2 eliminates).
            let mut pending_stores = Vec::new();
            for s in 0..nsteps {
                self.queue_prep(ctx, i0, j0, s);
                // Without scheduling the kernel is single-banked: compute
                // reads what prep just loaded (load-use stalls included).
                self.queue_compute(ctx, i0, j0, s);
                self.queue_stores(ctx, i0, j0, s);
                pending_stores.append(&mut self.lists.stores);
                self.lists.flush_phased(prog);
            }
            for st in pending_stores {
                prog.push(st);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stencil::presets;
    use crate::table::CoeffTable;

    #[test]
    fn star_plane_splits_matrix_and_vector() {
        let spec = presets::star2d9p();
        let mut mach = Machine::new(&lx2_sim::MachineConfig::lx2());
        let mut k = InplaceKernel::new(true);
        k.r = 2;
        k.rb = 4;
        let mut prologue = Program::new();
        let mut reg = ROLLBACK;
        let plan = k
            .plan_plane(
                &spec.plane_table_2d(),
                0,
                false,
                &mut mach,
                &mut prologue,
                &mut reg,
            )
            .unwrap();
        assert_eq!(plan.matrix_cols.len(), 1);
        assert_eq!(plan.matrix_cols[0].dj, 0);
        assert_eq!(plan.vector_terms.len(), 4);
        assert!(plan.rollback_terms.is_empty());
        assert!(plan.cpack.is_some());
    }

    #[test]
    fn replacement_rolls_back_star_terms() {
        let spec = presets::star2d9p();
        let mut mach = Machine::new(&lx2_sim::MachineConfig::lx2());
        let mut k = InplaceKernel::new(true);
        k.r = 2;
        k.rb = 4;
        let mut prologue = Program::new();
        let mut reg = ROLLBACK;
        let plan = k
            .plan_plane(
                &spec.plane_table_2d(),
                0,
                true,
                &mut mach,
                &mut prologue,
                &mut reg,
            )
            .unwrap();
        // The star kernel is vector-bound without replacement (Table 5);
        // the balancer must offload vector-pipe work somewhere — either by
        // rolling MLA terms back to outer products or by converting EXT
        // concatenations to loads.
        assert!(
            !plan.rollback_terms.is_empty() || !plan.shifts_as_loads.is_empty(),
            "expected some §3.2.1 replacement to fire"
        );
        assert!(plan.rollback_terms.len() <= MAX_ROLLBACK);
    }

    #[test]
    fn box_plane_is_matrix_only() {
        let spec = presets::box2d25p();
        let mut mach = Machine::new(&lx2_sim::MachineConfig::lx2());
        let mut k = InplaceKernel::new(true);
        k.r = 2;
        k.rb = 4;
        let mut prologue = Program::new();
        let mut reg = ROLLBACK;
        let plan = k
            .plan_plane(
                &spec.plane_table_2d(),
                0,
                true,
                &mut mach,
                &mut prologue,
                &mut reg,
            )
            .unwrap();
        assert_eq!(plan.matrix_cols.len(), 5);
        assert!(plan.vector_terms.is_empty());
        assert!(plan.cpack.is_none());
    }

    #[test]
    fn zero_table_emits_nothing() {
        let table = CoeffTable::new(1, vec![0.0; 9]);
        let mut mach = Machine::new(&lx2_sim::MachineConfig::lx2());
        let mut k = InplaceKernel::new(true);
        k.r = 1;
        k.rb = 1;
        let mut prologue = Program::new();
        let mut reg = ROLLBACK;
        let plan = k
            .plan_plane(&table, 0, true, &mut mach, &mut prologue, &mut reg)
            .unwrap();
        assert!(plan.matrix_cols.is_empty());
        assert!(plan.vector_terms.is_empty());
    }
}
