//! "Mat-ortho": outer-axis **and** inner-axis outer products
//! (paper §2.2, Figure 5; breakdown baseline in Figure 13).
//!
//! The vertical arm of a star stencil runs as outer-axis outer products
//! (row-contiguous loads); the horizontal arm runs as *inner-axis* outer
//! products, which keeps matrix-unit utilization high but requires
//! strided column gathers (`LDCOL`) — the discontinuous memory access
//! pattern that makes this method lose to plain auto-vectorization on
//! star stencils.

use super::{alloc_const, ramp_addr, ramp_values, window_mask, Kernel, KernelCtx, StepLists};
use crate::error::PlanError;
use lx2_isa::{Inst, Program, RowMask, VReg, ZaReg, VLEN};
use lx2_sim::Machine;

const ABLK: usize = 4; // v4..v9: data blocks
const ACOL: usize = 10; // v10..v11: rotating column-gather registers
const COFV: usize = 16; // v16..v19: rotating coefficient registers

#[derive(Clone, Debug)]
struct PlanePlan {
    /// Vertical (dj = 0) ramp, if the column has nonzeros.
    vertical: Option<(u64, usize)>, // (ramp base, extent)
    /// Horizontal ramp for the inner-axis arm, if any dj ≠ 0 terms exist.
    horizontal: Option<u64>,
}

/// The outer+inner-axis matrix-only kernel.
pub struct OrthoKernel {
    plans: Vec<PlanePlan>,
    rb: usize,
    r: usize,
    lists: StepLists,
}

impl OrthoKernel {
    /// Creates an empty kernel (populated by `setup`).
    pub fn new() -> Self {
        OrthoKernel {
            plans: Vec::new(),
            rb: 1,
            r: 1,
            lists: StepLists::default(),
        }
    }
}

impl Default for OrthoKernel {
    fn default() -> Self {
        Self::new()
    }
}

impl Kernel for OrthoKernel {
    fn name(&self) -> &'static str {
        "matrix-ortho"
    }

    fn setup(&mut self, ctx: &KernelCtx, mach: &mut Machine) -> Result<(), PlanError> {
        self.r = ctx.radius;
        self.rb = ctx.reg_blocks();
        self.plans.clear();
        for plane in &ctx.planes {
            let t = &plane.table;
            let r = t.radius() as isize;
            // The inner-axis decomposition requires star structure: every
            // off-centre column must have its single nonzero on di == 0.
            for dj in -r..=r {
                if dj == 0 {
                    continue;
                }
                let col = t.column(dj);
                if !(col.is_empty() || (col.len() == 1 && col[0].0 == 0)) {
                    return Err(PlanError::MethodUnsupported {
                        method: "matrix-ortho",
                        machine: "any",
                        reason: "inner-axis outer products require star-shaped tables",
                    });
                }
            }
            let vcol = t.column(0);
            let vertical = if vcol.is_empty() {
                None
            } else {
                let reversed: Vec<(isize, f64)> = vcol.iter().map(|&(di, c)| (-di, c)).collect();
                let extent = vcol.iter().map(|&(di, _)| di.unsigned_abs()).max().unwrap();
                Some((alloc_const(mach, &ramp_values(&reversed))?, extent))
            };
            let hterms: Vec<(isize, f64)> = (-r..=r)
                .filter(|&dj| dj != 0)
                .filter_map(|dj| {
                    let c = t.at(0, dj);
                    (c != 0.0).then_some((dj, c))
                })
                .collect();
            let horizontal = if hterms.is_empty() {
                None
            } else {
                // Scatter form: source column `src` feeds target column
                // `q = src - dj`, so lane `q` of the coefficient vector
                // must hold `c[src - q]` — the reversed column.
                let reversed: Vec<(isize, f64)> = hterms.iter().map(|&(dj, c)| (-dj, c)).collect();
                Some(alloc_const(mach, &ramp_values(&reversed))?)
            };
            self.plans.push(PlanePlan {
                vertical,
                horizontal,
            });
        }
        Ok(())
    }

    fn tile_cols(&self, ctx: &KernelCtx) -> usize {
        ctx.reg_blocks() * VLEN
    }

    fn emit_tile(&mut self, ctx: &KernelCtx, i0: usize, j0: usize, prog: &mut Program) {
        let (i0, j0) = (i0 as i64, j0 as i64);
        let r = self.r as i64;
        for b in 0..self.rb {
            prog.push(Inst::ZeroZa {
                za: ZaReg::new(b),
                mask: RowMask::ALL,
            });
        }
        let mut cof_rot = 0usize;

        // Vertical arm: outer-axis outer products, row-contiguous loads.
        for (pi, plane) in ctx.planes.iter().enumerate() {
            let Some((ramp, extent)) = self.plans[pi].vertical else {
                continue;
            };
            for ii in (i0 - r)..=(i0 + VLEN as i64 - 1 + r) {
                let t = ii - i0;
                let mask = window_mask(t, extent);
                if mask == RowMask::NONE {
                    continue;
                }
                let cofv = VReg::new(COFV + (cof_rot % 4));
                cof_rot += 1;
                self.lists.matrix.push(Inst::Ld1d {
                    vd: cofv,
                    addr: ramp_addr(ramp, t),
                });
                for b in 0..self.rb as i64 {
                    let data = VReg::new(ABLK + (b as usize % 6));
                    self.lists.matrix.push(Inst::Ld1d {
                        vd: data,
                        addr: ctx.a(plane, ii, j0 + VLEN as i64 * b),
                    });
                    self.lists.matrix.push(Inst::Fmopa {
                        za: ZaReg::new(b as usize),
                        vn: cofv,
                        vm: data,
                        mask,
                    });
                }
            }
        }

        // Horizontal arm: inner-axis outer products over column gathers.
        for (pi, plane) in ctx.planes.iter().enumerate() {
            let Some(ramp) = self.plans[pi].horizontal else {
                continue;
            };
            for b in 0..self.rb as i64 {
                for src in -r..(VLEN as i64 + r) {
                    let acol = VReg::new(ACOL + (src.rem_euclid(2)) as usize);
                    self.lists.matrix.push(Inst::LdCol {
                        vd: acol,
                        addr: ctx.a(plane, i0, j0 + VLEN as i64 * b + src),
                        stride: ctx.stride,
                    });
                    let cofh = VReg::new(COFV + (cof_rot % 4));
                    cof_rot += 1;
                    self.lists.matrix.push(Inst::Ld1d {
                        vd: cofh,
                        addr: ramp_addr(ramp, src),
                    });
                    self.lists.matrix.push(Inst::Fmopa {
                        za: ZaReg::new(b as usize),
                        vn: acol,
                        vm: cofh,
                        mask: RowMask::ALL,
                    });
                }
            }
        }

        // Stores batched at the end (this method predates store scattering).
        for p in 0..VLEN as i64 {
            for b in 0..self.rb as i64 {
                self.lists.stores.push(Inst::StZaRow {
                    za: ZaReg::new(b as usize),
                    row: p as u8,
                    addr: ctx.b(i0 + p, j0 + VLEN as i64 * b),
                });
            }
        }
        self.lists.flush_phased(prog);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::Plane;
    use crate::stencil::presets;
    use lx2_sim::MachineConfig;

    fn ctx_for(spec: &crate::stencil::StencilSpec) -> KernelCtx {
        KernelCtx {
            h: 16,
            w: 32,
            stride: 48,
            b0: 0,
            planes: vec![Plane {
                base: 0,
                table: spec.plane_table_2d(),
            }],
            radius: spec.radius(),
            opts: Default::default(),
        }
    }

    #[test]
    fn star_is_supported() {
        let spec = presets::star2d9p();
        let mut mach = Machine::new(&MachineConfig::lx2());
        let mut k = OrthoKernel::new();
        k.setup(&ctx_for(&spec), &mut mach).unwrap();
        assert!(k.plans[0].vertical.is_some());
        assert!(k.plans[0].horizontal.is_some());
    }

    #[test]
    fn box_is_rejected() {
        let spec = presets::box2d9p();
        let mut mach = Machine::new(&MachineConfig::lx2());
        let mut k = OrthoKernel::new();
        let err = k.setup(&ctx_for(&spec), &mut mach);
        assert!(matches!(err, Err(PlanError::MethodUnsupported { .. })));
    }
}
