//! Kernel builders: one module per stencil method.
//!
//! A kernel builder turns a stencil specification into machine programs,
//! one tile at a time. All builders share the conventions defined here:
//!
//! * The grid lives in simulated machine memory with row stride
//!   `ctx.stride`; `ctx.planes` lists the input planes contributing to the
//!   current output plane (one for 2-D, `2r+1` for 3-D) together with
//!   their coefficient tables.
//! * Tiles are `VLEN` rows by `VLEN * reg_blocks` columns; remainders are
//!   handled by the plan with overlapped (idempotent) tiles.
//! * Shifted *coefficient column* vectors come from 32-element **ramp
//!   tables** in machine memory: loading at `base + RAMP_CENTER - t`
//!   yields the column placed so lane `p` holds `c[p - t]`.
//! * Scheduled emission interleaves *prep* (next-step loads + prefetches),
//!   *matrix*, *vector* and *store* streams in a round-robin weighted by
//!   the machine's pipe widths; phased (unscheduled) emission concatenates
//!   them, exposing load-use latency and store bursts — the contrast the
//!   paper's Figure 13 measures.

pub mod auto;
pub mod inplace;
pub mod m4star;
pub mod naive_hybrid;
pub mod ortho;
pub mod vector;

use crate::error::PlanError;
use crate::table::CoeffTable;
use lx2_isa::{Inst, Program, RowMask, VLEN};
use lx2_sim::Machine;

/// Maximum supported stencil radius (the tile has `VLEN` rows; kernels
/// need `2r + 1 <= VLEN`).
pub const MAX_RADIUS: usize = 3;

/// Length of a coefficient ramp table.
pub const RAMP_LEN: usize = 32;
/// Lane of the ramp table holding the `di = 0` coefficient.
pub const RAMP_CENTER: i64 = 16;

/// One input plane: where it lives and how it is weighted.
#[derive(Clone, Debug)]
pub struct Plane {
    /// Machine address of the plane's interior `(0, 0)` element.
    pub base: u64,
    /// The plane's coefficient table.
    pub table: CoeffTable,
}

/// Tunable execution options (paper §3.1–§3.3 features as switches).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KernelOptions {
    /// Fine-grained matrix/vector/load/store interleaving (§3.2.2).
    pub scheduling: bool,
    /// Vector-instruction replacement: MLA→FMOPA partial rollback and
    /// EXT→LD rebalancing (§3.2.1).
    pub replacement: bool,
    /// Spatial prefetch insertion (§3.3, Algorithm 3).
    pub prefetch: bool,
    /// Tile register blocks unrolled along `j` (multi-register kernel,
    /// §3.1.2). Clamped by the plan to the grid width.
    pub reg_blocks: usize,
    /// How many rows ahead input prefetches run.
    pub prefetch_dist: usize,
    /// Y-extent of one strip-major block (Algorithm 2's `Ystart..Yend`
    /// partition): bounds the strip working set so it stays cache-sized.
    pub y_block: usize,
    /// Post-process every emitted tile with the automatic list scheduler
    /// (`lx2_isa::sched`) instead of relying solely on the hand-written
    /// interleave — an ablation of §3.2.2 against a compiler-style pass.
    pub auto_schedule: bool,
}

impl Default for KernelOptions {
    fn default() -> Self {
        KernelOptions {
            scheduling: true,
            replacement: true,
            prefetch: true,
            reg_blocks: 4,
            prefetch_dist: 4,
            y_block: 256,
            auto_schedule: false,
        }
    }
}

impl KernelOptions {
    /// All optimizations off (micro-kernel only).
    pub fn baseline() -> Self {
        KernelOptions {
            scheduling: false,
            replacement: false,
            prefetch: false,
            ..Default::default()
        }
    }
}

/// Everything a kernel needs to know about the workload.
#[derive(Clone, Debug)]
pub struct KernelCtx {
    /// Interior height of the output plane.
    pub h: usize,
    /// Interior width.
    pub w: usize,
    /// Row stride in elements (identical for all planes and the output).
    pub stride: u64,
    /// Machine address of the output plane's interior `(0, 0)`.
    pub b0: u64,
    /// Input planes (one for 2-D).
    pub planes: Vec<Plane>,
    /// Stencil radius.
    pub radius: usize,
    /// Options.
    pub opts: KernelOptions,
}

impl KernelCtx {
    /// Address of input element `(i, j)` of `plane` (halo coords allowed).
    #[inline]
    pub fn a(&self, plane: &Plane, i: i64, j: i64) -> u64 {
        (plane.base as i64 + i * self.stride as i64 + j) as u64
    }

    /// Address of output element `(i, j)`.
    #[inline]
    pub fn b(&self, i: i64, j: i64) -> u64 {
        (self.b0 as i64 + i * self.stride as i64 + j) as u64
    }

    /// Effective register blocks (clamped to the grid width).
    pub fn reg_blocks(&self) -> usize {
        self.opts.reg_blocks.clamp(1, (self.w / VLEN).max(1)).min(4)
    }
}

/// Grid traversal order of a kernel.
///
/// Vector-wise methods sweep full rows (1-D streams the hardware
/// prefetcher loves); matrix-wise methods tile along the X axis and sweep
/// rows *within* each strip (paper §2.3.3's "2-D access pattern"), which
/// breaks the 1-D streams — the asymmetry behind Table 3.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Traversal {
    /// `for i { for j }` with full-width row sweeps.
    RowMajor,
    /// `for j-strip { for i }` — X-axis loop tiling.
    StripMajor,
}

/// A stencil kernel builder.
pub trait Kernel {
    /// Kernel name for reports.
    fn name(&self) -> &'static str;

    /// The traversal order this kernel's loop nest uses.
    fn traversal(&self) -> Traversal {
        Traversal::StripMajor
    }

    /// One-time setup: allocate constant tables in machine memory and run
    /// the prologue (coefficient register initialization).
    fn setup(&mut self, ctx: &KernelCtx, mach: &mut Machine) -> Result<(), PlanError>;

    /// Columns covered by one `emit_tile` call.
    fn tile_cols(&self, ctx: &KernelCtx) -> usize;

    /// Rows covered by one `emit_tile` call.
    fn tile_rows(&self, _ctx: &KernelCtx) -> usize {
        VLEN
    }

    /// Emits the program for the tile whose interior top-left corner is
    /// `(i0, j0)`.
    fn emit_tile(&mut self, ctx: &KernelCtx, i0: usize, j0: usize, prog: &mut Program);
}

/// Builds the 32-element ramp table for a coefficient column: entry
/// `RAMP_CENTER + di` holds `c[di]`.
pub fn ramp_values(column: &[(isize, f64)]) -> [f64; RAMP_LEN] {
    let mut r = [0.0; RAMP_LEN];
    for &(di, c) in column {
        let idx = RAMP_CENTER + di as i64;
        assert!(
            (0..RAMP_LEN as i64).contains(&idx),
            "radius exceeds ramp capacity"
        );
        r[idx as usize] = c;
    }
    r
}

/// Address within a ramp table that yields the column placed at tile-row
/// offset `t` (lane `p` holds `c[p - t]`).
#[inline]
pub fn ramp_addr(base: u64, t: i64) -> u64 {
    (base as i64 + RAMP_CENTER - t) as u64
}

/// Row mask enabling tile rows `[t - r, t + r] ∩ [0, VLEN)`.
pub fn window_mask(t: i64, r: usize) -> RowMask {
    let lo = (t - r as i64).max(0);
    let hi = (t + r as i64).min(VLEN as i64 - 1);
    if lo > hi {
        return RowMask::NONE;
    }
    RowMask::range(lo as usize, (hi - lo + 1) as usize)
}

/// The four per-step instruction streams, merged according to the
/// scheduling mode.
#[derive(Default)]
pub struct StepLists {
    /// Loads and prefetches preparing future work.
    pub prep: Vec<Inst>,
    /// Matrix-pipe work (may contain coupled loads/EXTs feeding FMOPA).
    pub matrix: Vec<Inst>,
    /// Vector-pipe work (EXT/FMLA chains and their accumulate FMOPAs).
    pub vector: Vec<Inst>,
    /// Stores due after this step.
    pub stores: Vec<Inst>,
}

impl StepLists {
    /// Clears all four streams (keeps capacity).
    pub fn clear(&mut self) {
        self.prep.clear();
        self.matrix.clear();
        self.vector.clear();
        self.stores.clear();
    }

    /// Scheduled flush: weighted round-robin across the four streams —
    /// the §3.2.2 interleave. Within each stream, order (and therefore
    /// every data dependence) is preserved.
    pub fn flush_scheduled(&mut self, prog: &mut Program) {
        let mut idx = [0usize; 4];
        let lists = [&self.prep, &self.matrix, &self.vector, &self.stores];
        // Weights approximate pipe widths: 2 load, 1 matrix, 2 vector, 1 store.
        let weights = [2usize, 1, 2, 1];
        loop {
            let mut emitted = false;
            for (k, list) in lists.iter().enumerate() {
                for _ in 0..weights[k] {
                    if idx[k] < list.len() {
                        prog.push(list[idx[k]]);
                        idx[k] += 1;
                        emitted = true;
                    }
                }
            }
            if !emitted {
                break;
            }
        }
        self.clear();
    }

    /// Phased flush: prep, matrix, vector, stores strictly in sequence —
    /// the unscheduled baseline that exposes load-use stalls and store
    /// bursts.
    pub fn flush_phased(&mut self, prog: &mut Program) {
        for list in [&self.prep, &self.matrix, &self.vector, &self.stores] {
            for &i in list.iter() {
                prog.push(i);
            }
        }
        self.clear();
    }

    /// Flushes according to `scheduled`.
    pub fn flush(&mut self, prog: &mut Program, scheduled: bool) {
        if scheduled {
            self.flush_scheduled(prog);
        } else {
            self.flush_phased(prog);
        }
    }

    /// Total queued instructions.
    pub fn len(&self) -> usize {
        self.prep.len() + self.matrix.len() + self.vector.len() + self.stores.len()
    }

    /// Whether all streams are empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A producer/consumer pair for software-pipelined emission: up to three
/// producer instructions (coefficient loads and/or a shifted-data
/// producer) feeding one consumer.
pub type Pair = ([Option<Inst>; 3], Inst);

/// Anything instructions can be emitted into.
pub trait InstSink {
    /// Appends one instruction.
    fn put(&mut self, inst: Inst);
}

impl InstSink for Vec<Inst> {
    fn put(&mut self, inst: Inst) {
        self.push(inst);
    }
}

impl InstSink for Program {
    fn put(&mut self, inst: Inst) {
        self.push(inst);
    }
}

/// Emits producer/consumer pairs with the producers run `lookahead` pairs
/// ahead of their consumers, hiding producer latency from the in-order
/// pipeline (the intra-stream half of §3.2.2 instruction scheduling).
///
/// Correctness requires that the register written by pair `i`'s producers
/// is not rewritten by pairs `i+1 ..= i+lookahead` — callers rotate
/// scratch registers over at least `lookahead + 1` slots.
pub fn emit_pipelined(pairs: &[Pair], lookahead: usize, out: &mut impl InstSink) {
    fn push_prods(out: &mut impl InstSink, pair: &Pair) {
        for p in pair.0.iter().flatten() {
            out.put(*p);
        }
    }
    let n = pairs.len();
    for pair in pairs.iter().take(lookahead.min(n)) {
        push_prods(out, pair);
    }
    for (i, pair) in pairs.iter().enumerate() {
        if i + lookahead < n {
            push_prods(out, &pairs[i + lookahead]);
        }
        out.put(pair.1);
    }
}

/// Tile start positions covering `0..n` in steps of `step`, with a final
/// overlapped tile when `step` does not divide `n` (tiles recompute the
/// overlap; stencil writes are idempotent).
///
/// # Panics
/// Panics if `n < step`.
pub fn tile_starts(n: usize, step: usize) -> Vec<usize> {
    assert!(n >= step, "grid dimension {n} smaller than tile {step}");
    let mut v: Vec<usize> = (0..=(n - step)).step_by(step).collect();
    if let Some(&last) = v.last() {
        if last + step < n {
            v.push(n - step);
        }
    }
    v
}

/// Writes a constant table into fresh machine memory; returns its base.
pub fn alloc_const(mach: &mut Machine, values: &[f64]) -> Result<u64, PlanError> {
    let region = mach.alloc(values.len(), VLEN);
    mach.mem.store_slice(region.base, values)?;
    Ok(region.base)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lx2_isa::VReg;

    #[test]
    fn ramp_roundtrip() {
        let col = vec![(-2isize, 0.1), (0isize, 0.5), (2isize, 0.2)];
        let r = ramp_values(&col);
        assert_eq!(r[(RAMP_CENTER - 2) as usize], 0.1);
        assert_eq!(r[RAMP_CENTER as usize], 0.5);
        assert_eq!(r[(RAMP_CENTER + 2) as usize], 0.2);
        assert_eq!(r[(RAMP_CENTER + 1) as usize], 0.0);
    }

    #[test]
    fn ramp_addr_places_column_at_offset() {
        // Loading VLEN lanes from ramp_addr(base, t) puts c[p - t] at lane p.
        let col = vec![(0isize, 7.0)];
        let vals = ramp_values(&col);
        for t in -3i64..=10 {
            let addr = ramp_addr(100, t) - 100; // offset into the table
            for p in 0..VLEN as i64 {
                let lane = vals[(addr as i64 + p) as usize];
                let expect = if p == t { 7.0 } else { 0.0 };
                assert_eq!(lane, expect, "t={t} p={p}");
            }
        }
    }

    #[test]
    fn window_mask_clips_to_tile() {
        assert_eq!(window_mask(0, 2), RowMask::range(0, 3));
        assert_eq!(window_mask(4, 1), RowMask::range(3, 3));
        assert_eq!(window_mask(-3, 2), RowMask::NONE);
        assert_eq!(window_mask(9, 2), RowMask::range(7, 1));
        assert_eq!(window_mask(10, 1), RowMask::NONE);
    }

    #[test]
    fn tile_starts_exact_and_overlap() {
        assert_eq!(tile_starts(32, 8), vec![0, 8, 16, 24]);
        assert_eq!(tile_starts(36, 8), vec![0, 8, 16, 24, 28]);
        assert_eq!(tile_starts(8, 8), vec![0]);
        assert_eq!(tile_starts(9, 8), vec![0, 1]);
    }

    #[test]
    #[should_panic]
    fn tile_starts_too_small_panics() {
        let _ = tile_starts(7, 8);
    }

    #[test]
    fn scheduled_flush_preserves_intra_stream_order() {
        let mut l = StepLists::default();
        for k in 0..5 {
            l.prep.push(Inst::DupImm {
                vd: VReg::new(k),
                imm: k as f64,
            });
        }
        for k in 0..3 {
            l.matrix.push(Inst::DupImm {
                vd: VReg::new(8 + k),
                imm: k as f64,
            });
        }
        let mut p = Program::new();
        l.flush_scheduled(&mut p);
        assert_eq!(p.len(), 8);
        // prep order: v0 before v1 before v2...
        let prep_positions: Vec<usize> = p
            .insts()
            .iter()
            .enumerate()
            .filter_map(|(pos, i)| match i {
                Inst::DupImm { vd, .. } if vd.index() < 8 => Some(pos),
                _ => None,
            })
            .collect();
        assert!(prep_positions.windows(2).all(|w| w[0] < w[1]));
        assert!(l.is_empty());
    }

    #[test]
    fn phased_flush_is_sequential() {
        let mut l = StepLists::default();
        l.prep.push(Inst::DupImm {
            vd: VReg::new(0),
            imm: 0.0,
        });
        l.vector.push(Inst::DupImm {
            vd: VReg::new(1),
            imm: 1.0,
        });
        l.matrix.push(Inst::DupImm {
            vd: VReg::new(2),
            imm: 2.0,
        });
        let mut p = Program::new();
        l.flush_phased(&mut p);
        let order: Vec<usize> = p
            .insts()
            .iter()
            .map(|i| match i {
                Inst::DupImm { vd, .. } => vd.index(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![0, 2, 1]); // prep, matrix, vector
    }
}
