//! Compiler auto-vectorization stand-in (the paper's `Auto` baseline).
//!
//! Models what `-O3` emits for the scalar gather loop: per output vector,
//! one unaligned load per tap feeding a single multiply-accumulate chain,
//! with a modest 2-way unroll standing in for the out-of-order window of
//! the real core. No `EXT` reuse, no software pipelining, no prefetch.
//!
//! On Apple M4 the baseline is NEON (non-streaming mode, 128-bit = 2 f64
//! lanes): the kernel then advances `lanes` columns per step with
//! overlapping full-width operations, which reproduces the 4× instruction
//! inflation of the narrow baseline while remaining functionally exact
//! (overlapped stores rewrite identical values).

use super::{emit_pipelined, Kernel, KernelCtx, Pair, Traversal};
use crate::error::PlanError;
use lx2_isa::{Inst, Program, VReg, VLEN};
use lx2_sim::Machine;

const ACC0: usize = 0; // v0..v7: accumulators for the unroll lanes
const SCRATCH: usize = 8; // v8..v19: rotating unaligned-load scratch
const PACKS: usize = 24; // packed coefficients

/// The auto-vectorization baseline kernel.
pub struct AutoKernel {
    /// Effective vector width of the baseline ISA (8 on LX2 SVE-512,
    /// 2 on Apple M4 NEON).
    lanes: usize,
    /// Independent accumulator chains (stand-in for the OoO window).
    unroll: usize,
    taps: Vec<(usize, i64, i64, VReg, u8)>,
}

impl AutoKernel {
    /// Creates the baseline kernel for a machine whose baseline vector
    /// width is `lanes` f64 elements sustaining `unroll` chains.
    pub fn new(lanes: usize, unroll: usize) -> Self {
        assert!((1..=VLEN).contains(&lanes));
        assert!((1..=SCRATCH).contains(&unroll));
        AutoKernel {
            lanes,
            unroll,
            taps: Vec::new(),
        }
    }
}

impl Kernel for AutoKernel {
    fn name(&self) -> &'static str {
        "auto-vectorized"
    }

    fn setup(&mut self, ctx: &KernelCtx, mach: &mut Machine) -> Result<(), PlanError> {
        self.taps.clear();
        let mut coeffs = Vec::new();
        for (pi, plane) in ctx.planes.iter().enumerate() {
            let r = plane.table.radius() as isize;
            for di in -r..=r {
                for dj in -r..=r {
                    let c = plane.table.at(di, dj);
                    if c != 0.0 {
                        let idx = coeffs.len();
                        assert!(idx < 7 * VLEN, "too many taps for the pack registers");
                        coeffs.push(c);
                        self.taps.push((
                            pi,
                            di as i64,
                            dj as i64,
                            VReg::new(PACKS + idx / VLEN),
                            (idx % VLEN) as u8,
                        ));
                    }
                }
            }
        }
        let mut prologue = Program::new();
        for (p, chunk) in coeffs.chunks(VLEN).enumerate() {
            let mut padded = [0.0; VLEN];
            padded[..chunk.len()].copy_from_slice(chunk);
            let base = super::alloc_const(mach, &padded)?;
            prologue.push(Inst::Ld1d {
                vd: VReg::new(PACKS + p),
                addr: base,
            });
        }
        mach.execute(&prologue)?;
        Ok(())
    }

    fn traversal(&self) -> Traversal {
        // Compiler output sweeps whole rows: `for i { for j }`.
        Traversal::RowMajor
    }

    fn tile_cols(&self, ctx: &KernelCtx) -> usize {
        ctx.w.max(VLEN)
    }

    fn emit_tile(&mut self, ctx: &KernelCtx, i0: usize, j0: usize, prog: &mut Program) {
        let (i0, j0) = (i0 as i64, j0 as i64);
        let cols = self.tile_cols(ctx) as i64;
        // Column starts: every `lanes` columns, with the final start
        // clamped so the 8-wide operations exactly cover the tile.
        let mut starts: Vec<i64> = (0..=(cols - VLEN as i64)).step_by(self.lanes).collect();
        if *starts.last().unwrap() != cols - VLEN as i64 {
            starts.push(cols - VLEN as i64);
        }

        for p in 0..VLEN as i64 {
            let i = i0 + p;
            // Modest unroll: `unroll` column starts share the instruction
            // stream with independent accumulators; loads run two taps
            // ahead of their MLA (standing in for the real core's
            // out-of-order window). The single-chain-per-lane MLA
            // dependence — the thing the compiler cannot remove — stays.
            for group in starts.chunks(self.unroll) {
                for (u, _) in group.iter().enumerate() {
                    prog.push(Inst::DupImm {
                        vd: VReg::new(ACC0 + u),
                        imm: 0.0,
                    });
                }
                let mut rot = 0usize;
                let mut pairs: Vec<Pair> = Vec::with_capacity(self.taps.len() * group.len());
                for &(plane_idx, di, dj, pack, lane) in &self.taps {
                    let plane = &ctx.planes[plane_idx];
                    for (u, &j) in group.iter().enumerate() {
                        let scratch = VReg::new(SCRATCH + (rot % 12));
                        rot += 1;
                        pairs.push((
                            [
                                Some(Inst::Ld1d {
                                    vd: scratch,
                                    addr: ctx.a(plane, i + di, j0 + j + dj),
                                }),
                                None,
                                None,
                            ],
                            Inst::FmlaIdx {
                                vd: VReg::new(ACC0 + u),
                                vn: scratch,
                                vm: pack,
                                idx: lane,
                            },
                        ));
                    }
                }
                emit_pipelined(&pairs, 8, prog);
                for (u, &j) in group.iter().enumerate() {
                    prog.push(Inst::St1d {
                        vs: VReg::new(ACC0 + u),
                        addr: ctx.b(i, j0 + j),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lanes_bounds() {
        let _ = AutoKernel::new(2, 8);
        let _ = AutoKernel::new(8, 3);
    }

    #[test]
    #[should_panic]
    fn zero_lanes_panics() {
        let _ = AutoKernel::new(0, 3);
    }
}
