//! The naive matrix-vector method (paper Figure 7).
//!
//! Outer products and vector MLA are used for the same split as the
//! in-place kernel, but the two halves are computed *independently*: the
//! matrix half stores its partial result to the output array, and a second
//! pass recomputes the vector half, reloads the partial result, adds, and
//! stores again — the redundant load/store round-trip (Equation 7:
//! `3 × C_L1LD + 2 × C_L1ST`) that in-place accumulation eliminates.

use super::{alloc_const, ramp_addr, ramp_values, window_mask, Kernel, KernelCtx, StepLists};
use crate::error::PlanError;
use lx2_isa::{Inst, Program, RowMask, VReg, ZaReg, VLEN};
use lx2_sim::Machine;

const REG1: usize = 0; // v0..v3: vector accumulators
const ABLK: usize = 4; // v4..v9: data blocks
const BROW: usize = 10; // v10..v13: reloaded partial-result rows
const COFV: usize = 16; // v16..v19: rotating coefficient registers
const SCRATCH: usize = 20; // v20..v21: shifted-data scratch
const CPACK: usize = 24; // v24..v27: per-plane MLA packs

#[derive(Clone, Debug)]
struct PlanePlan {
    matrix_cols: Vec<(i64, u64, usize)>, // (dj, ramp, extent)
    vector_terms: Vec<(i64, u8)>,
    cpack: Option<VReg>,
}

/// The naive (store/reload) matrix-vector kernel.
pub struct NaiveHybridKernel {
    plans: Vec<PlanePlan>,
    rb: usize,
    r: usize,
    lists: StepLists,
}

impl NaiveHybridKernel {
    /// Creates an empty kernel (populated by `setup`).
    pub fn new() -> Self {
        NaiveHybridKernel {
            plans: Vec::new(),
            rb: 1,
            r: 1,
            lists: StepLists::default(),
        }
    }
}

impl Default for NaiveHybridKernel {
    fn default() -> Self {
        Self::new()
    }
}

impl Kernel for NaiveHybridKernel {
    fn name(&self) -> &'static str {
        "naive-hybrid"
    }

    fn setup(&mut self, ctx: &KernelCtx, mach: &mut Machine) -> Result<(), PlanError> {
        self.r = ctx.radius;
        self.rb = ctx.reg_blocks();
        self.plans.clear();
        let mut prologue = Program::new();
        for (pi, plane) in ctx.planes.iter().enumerate() {
            let (mcols, vterms) = plane.table.split_matrix_vector();
            let mut matrix_cols = Vec::new();
            for dj in mcols {
                let col = plane.table.column(dj);
                let reversed: Vec<(isize, f64)> = col.iter().map(|&(di, c)| (-di, c)).collect();
                let extent = col
                    .iter()
                    .map(|&(di, _)| di.unsigned_abs())
                    .max()
                    .unwrap_or(0);
                matrix_cols.push((
                    dj as i64,
                    alloc_const(mach, &ramp_values(&reversed))?,
                    extent,
                ));
            }
            let cpack = if vterms.is_empty() {
                None
            } else {
                assert!(vterms.len() <= VLEN);
                assert!(
                    pi < 4,
                    "MLA packs support at most four planes with vector terms"
                );
                let mut packed = vec![0.0; VLEN];
                for (lane, &(_, c)) in vterms.iter().enumerate() {
                    packed[lane] = c;
                }
                let base = alloc_const(mach, &packed)?;
                let reg = VReg::new(CPACK + pi.min(3));
                prologue.push(Inst::Ld1d {
                    vd: reg,
                    addr: base,
                });
                Some(reg)
            };
            let vector_terms = vterms
                .iter()
                .enumerate()
                .map(|(l, &(dj, _))| (dj as i64, l as u8))
                .collect();
            self.plans.push(PlanePlan {
                matrix_cols,
                vector_terms,
                cpack,
            });
        }
        mach.execute(&prologue)?;
        Ok(())
    }

    fn tile_cols(&self, ctx: &KernelCtx) -> usize {
        ctx.reg_blocks() * VLEN
    }

    fn emit_tile(&mut self, ctx: &KernelCtx, i0: usize, j0: usize, prog: &mut Program) {
        let (i0, j0) = (i0 as i64, j0 as i64);
        let r = self.r as i64;
        let rb = self.rb as i64;
        for b in 0..self.rb {
            prog.push(Inst::ZeroZa {
                za: ZaReg::new(b),
                mask: RowMask::ALL,
            });
        }
        let mut cof_rot = 0usize;

        // Phase 1: matrix half (outer-axis), store partials to B.
        for (pi, plane) in ctx.planes.iter().enumerate() {
            for ii in (i0 - r)..=(i0 + VLEN as i64 - 1 + r) {
                let t = ii - i0;
                for b in 0..rb {
                    self.lists.prep.push(Inst::Ld1d {
                        vd: VReg::new(ABLK + (b as usize % 6)),
                        addr: ctx.a(plane, ii, j0 + VLEN as i64 * b),
                    });
                }
                for &(dj, ramp, extent) in &self.plans[pi].matrix_cols {
                    let mask = window_mask(t, extent);
                    if mask == RowMask::NONE {
                        continue;
                    }
                    let cofv = VReg::new(COFV + (cof_rot % 4));
                    cof_rot += 1;
                    self.lists.matrix.push(Inst::Ld1d {
                        vd: cofv,
                        addr: ramp_addr(ramp, t),
                    });
                    for b in 0..rb {
                        let data = if dj == 0 {
                            VReg::new(ABLK + (b as usize % 6))
                        } else {
                            let dst = VReg::new(SCRATCH);
                            self.lists.matrix.push(Inst::Ld1d {
                                vd: dst,
                                addr: ctx.a(plane, ii, j0 + VLEN as i64 * b + dj),
                            });
                            dst
                        };
                        self.lists.matrix.push(Inst::Fmopa {
                            za: ZaReg::new(b as usize),
                            vn: cofv,
                            vm: data,
                            mask,
                        });
                    }
                }
                self.lists.flush_phased(prog);
            }
        }
        // Intermediate store of the matrix half.
        for p in 0..VLEN as i64 {
            for b in 0..rb {
                prog.push(Inst::StZaRow {
                    za: ZaReg::new(b as usize),
                    row: p as u8,
                    addr: ctx.b(i0 + p, j0 + VLEN as i64 * b),
                });
            }
        }

        // Phase 2: vector half per output row, reload partials, add, store.
        let any_vector = self.plans.iter().any(|p| !p.vector_terms.is_empty());
        if !any_vector {
            return;
        }
        for p in 0..VLEN as i64 {
            let i = i0 + p;
            for b in 0..rb {
                self.lists.vector.push(Inst::DupImm {
                    vd: VReg::new(REG1 + b as usize),
                    imm: 0.0,
                });
            }
            for (pi, plane) in ctx.planes.iter().enumerate() {
                let plan = &self.plans[pi];
                let Some(cpack) = plan.cpack else { continue };
                for &(dj, lane) in &plan.vector_terms {
                    for b in 0..rb {
                        let dst = VReg::new(SCRATCH + (b as usize % 2));
                        self.lists.vector.push(Inst::Ld1d {
                            vd: dst,
                            addr: ctx.a(plane, i, j0 + VLEN as i64 * b + dj),
                        });
                        self.lists.vector.push(Inst::FmlaIdx {
                            vd: VReg::new(REG1 + b as usize),
                            vn: dst,
                            vm: cpack,
                            idx: lane,
                        });
                    }
                }
            }
            // The accumulation round-trip: reload the matrix partial, add,
            // store back — the overhead Equation 5/7 charges this method.
            for b in 0..rb {
                let brow = VReg::new(BROW + b as usize);
                self.lists.vector.push(Inst::Ld1d {
                    vd: brow,
                    addr: ctx.b(i, j0 + VLEN as i64 * b),
                });
                self.lists.vector.push(Inst::Fadd {
                    vd: VReg::new(REG1 + b as usize),
                    vn: VReg::new(REG1 + b as usize),
                    vm: brow,
                });
                self.lists.stores.push(Inst::St1d {
                    vs: VReg::new(REG1 + b as usize),
                    addr: ctx.b(i, j0 + VLEN as i64 * b),
                });
            }
            self.lists.flush_phased(prog);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::Plane;
    use crate::stencil::presets;
    use lx2_sim::MachineConfig;

    #[test]
    fn setup_splits_star() {
        let spec = presets::star2d9p();
        let mut mach = Machine::new(&MachineConfig::lx2());
        let mut k = NaiveHybridKernel::new();
        let ctx = KernelCtx {
            h: 16,
            w: 32,
            stride: 48,
            b0: 0,
            planes: vec![Plane {
                base: 0,
                table: spec.plane_table_2d(),
            }],
            radius: 2,
            opts: Default::default(),
        };
        k.setup(&ctx, &mut mach).unwrap();
        assert_eq!(k.plans[0].matrix_cols.len(), 1);
        assert_eq!(k.plans[0].vector_terms.len(), 4);
    }
}
