//! Expert-optimized vector-only kernel (gather form, paper Figure 4a).
//!
//! Every tap is a vector MLA with a packed broadcast coefficient;
//! shifted operands come from aligned loads plus `EXT` concatenation
//! (DLT-style data reuse). The kernel unrolls `reg_blocks` output vectors
//! with independent accumulators so the FMLA chains pipeline across the
//! two vector units — this is the "expert-optimized vector-based
//! solution" row of the paper's method table.

use super::{emit_pipelined, tile_starts, Kernel, KernelCtx, Pair, StepLists, Traversal};
use crate::error::PlanError;
use lx2_isa::{Inst, MemKind, Program, VReg, VLEN};
use lx2_sim::Machine;

const ACC: usize = 0; // v0..v3: per-block accumulators
const ABLK0: usize = 4; // v4..v9: data blocks bank 0
const ABLK1: usize = 10; // v10..v15: data blocks bank 1
const SCRATCH: usize = 20; // v20..v22: EXT scratch (rotation 3 > lookahead)
const PACKS: usize = 24; // v24..v30: packed coefficients (≤ 56 taps)

/// One gather tap.
#[derive(Clone, Copy, Debug)]
struct Tap {
    plane: usize,
    di: i64,
    dj: i64,
    pack: VReg,
    lane: u8,
}

/// The expert vector-MLA kernel.
pub struct VectorKernel {
    taps: Vec<Tap>,
    /// Taps grouped by `(plane, di)` — one input-row load per group.
    groups: Vec<(usize, i64, Vec<usize>)>,
    rb: usize,
    lists: StepLists,
}

impl VectorKernel {
    /// Creates an empty kernel (populated by `setup`).
    pub fn new() -> Self {
        VectorKernel {
            taps: Vec::new(),
            groups: Vec::new(),
            rb: 1,
            lists: StepLists::default(),
        }
    }

    fn ablk(bank: usize, b: i64) -> VReg {
        VReg::new((bank as i64 + b + 1) as usize)
    }
}

impl Default for VectorKernel {
    fn default() -> Self {
        Self::new()
    }
}

impl Kernel for VectorKernel {
    fn name(&self) -> &'static str {
        "vector-only"
    }

    fn setup(&mut self, ctx: &KernelCtx, mach: &mut Machine) -> Result<(), PlanError> {
        self.rb = ctx.reg_blocks();
        self.taps.clear();
        self.groups.clear();

        // Gather all taps, pack coefficients 8 per register.
        let mut coeffs = Vec::new();
        for (pi, plane) in ctx.planes.iter().enumerate() {
            let r = plane.table.radius() as isize;
            for di in -r..=r {
                for dj in -r..=r {
                    let c = plane.table.at(di, dj);
                    if c != 0.0 {
                        let idx = coeffs.len();
                        assert!(idx < 7 * VLEN, "too many taps for the pack registers");
                        coeffs.push(c);
                        self.taps.push(Tap {
                            plane: pi,
                            di: di as i64,
                            dj: dj as i64,
                            pack: VReg::new(PACKS + idx / VLEN),
                            lane: (idx % VLEN) as u8,
                        });
                    }
                }
            }
        }

        // Group taps by input row so each row is loaded once per output row.
        for (ti, tap) in self.taps.iter().enumerate() {
            match self
                .groups
                .iter_mut()
                .find(|(p, di, _)| *p == tap.plane && *di == tap.di)
            {
                Some((_, _, v)) => v.push(ti),
                None => self.groups.push((tap.plane, tap.di, vec![ti])),
            }
        }

        // Write the packs and load them in a prologue.
        let mut prologue = Program::new();
        for (p, chunk) in coeffs.chunks(VLEN).enumerate() {
            let mut padded = [0.0; VLEN];
            padded[..chunk.len()].copy_from_slice(chunk);
            let base = super::alloc_const(mach, &padded)?;
            prologue.push(Inst::Ld1d {
                vd: VReg::new(PACKS + p),
                addr: base,
            });
        }
        mach.execute(&prologue)?;
        Ok(())
    }

    fn traversal(&self) -> Traversal {
        // The expert vector kernel sweeps whole rows so its 1-D streams
        // keep the hardware prefetcher trained (Table 3's vector column).
        Traversal::RowMajor
    }

    fn tile_cols(&self, ctx: &KernelCtx) -> usize {
        ctx.w.max(VLEN)
    }

    fn emit_tile(&mut self, ctx: &KernelCtx, i0: usize, tile_j0: usize, prog: &mut Program) {
        let i0 = i0 as i64;
        let rb = self.rb as i64;
        let chunk = self.rb * VLEN;
        for p in 0..VLEN as i64 {
            let i = i0 + p;
            for &jc in &tile_starts(ctx.w.max(chunk), chunk.min(ctx.w.max(VLEN))) {
                let j0 = (tile_j0 + jc) as i64;
                // Reset the accumulators.
                for b in 0..self.rb {
                    self.lists.vector.push(Inst::DupImm {
                        vd: VReg::new(ACC + b),
                        imm: 0.0,
                    });
                }
                let mut scratch = 0usize;

                // Per input-row group: loads ping-pong between two register
                // banks; the *next* group's loads ride as producers of the
                // current group's MLA pairs, and EXT shifts run two pairs
                // ahead of their consumers — the expert software pipeline.
                let group_loads = |g: usize| -> Vec<Inst> {
                    let Some((plane_idx, di, tap_idxs)) = self.groups.get(g) else {
                        return Vec::new();
                    };
                    let plane = &ctx.planes[*plane_idx];
                    let bank = if g.is_multiple_of(2) { ABLK0 } else { ABLK1 };
                    let needs_edges = tap_idxs.iter().any(|&t| self.taps[t].dj != 0);
                    let (lo, hi) = if needs_edges { (-1, rb) } else { (0, rb - 1) };
                    (lo..=hi)
                        .map(|b| Inst::Ld1d {
                            vd: Self::ablk(bank, b),
                            addr: ctx.a(plane, i + di, j0 + VLEN as i64 * b),
                        })
                        .collect()
                };

                for inst in group_loads(0) {
                    self.lists.vector.push(inst);
                }
                for g in 0..self.groups.len() {
                    let (_, _, tap_idxs) = &self.groups[g];
                    let bank = if g % 2 == 0 { ABLK0 } else { ABLK1 };
                    let mut pairs: Vec<Pair> = Vec::with_capacity(tap_idxs.len() * self.rb);
                    for &ti in tap_idxs {
                        let tap = self.taps[ti];
                        for b in 0..rb {
                            let (data, shift) = if tap.dj == 0 {
                                (Self::ablk(bank, b), None)
                            } else {
                                let dst = VReg::new(SCRATCH + (scratch % 3));
                                scratch += 1;
                                let ext = if tap.dj > 0 {
                                    Inst::Ext {
                                        vd: dst,
                                        vn: Self::ablk(bank, b),
                                        vm: Self::ablk(bank, b + 1),
                                        shift: tap.dj as u8,
                                    }
                                } else {
                                    Inst::Ext {
                                        vd: dst,
                                        vn: Self::ablk(bank, b - 1),
                                        vm: Self::ablk(bank, b),
                                        shift: (VLEN as i64 + tap.dj) as u8,
                                    }
                                };
                                (dst, Some(ext))
                            };
                            pairs.push((
                                [None, shift, None],
                                Inst::FmlaIdx {
                                    vd: VReg::new(ACC + b as usize),
                                    vn: data,
                                    vm: tap.pack,
                                    idx: tap.lane,
                                },
                            ));
                        }
                    }
                    // Distribute the next group's loads over the free producer
                    // slots; leftovers (short groups) trail the pairs, still
                    // ahead of their consumers.
                    let mut next_loads = group_loads(g + 1).into_iter();
                    'fill: for slot in [0usize, 2] {
                        for pair in pairs.iter_mut() {
                            if pair.0[slot].is_none() {
                                match next_loads.next() {
                                    Some(ld) => pair.0[slot] = Some(ld),
                                    None => break 'fill,
                                }
                            }
                        }
                    }
                    emit_pipelined(&pairs, 2, &mut self.lists.vector);
                    for ld in next_loads {
                        self.lists.vector.push(ld);
                    }
                    self.lists.flush_phased(prog);
                }
                if ctx.opts.prefetch {
                    let pf = i + ctx.opts.prefetch_dist as i64;
                    if pf < ctx.h as i64 {
                        for b in 0..rb {
                            prog.push(Inst::Prfm {
                                addr: ctx.b(pf, j0 + VLEN as i64 * b),
                                kind: MemKind::Write,
                            });
                        }
                    }
                }
                for b in 0..rb {
                    prog.push(Inst::St1d {
                        vs: VReg::new(ACC + b as usize),
                        addr: ctx.b(i, j0 + VLEN as i64 * b),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stencil::presets;
    use lx2_sim::MachineConfig;

    #[test]
    fn setup_builds_taps_and_groups() {
        let spec = presets::star2d9p();
        let mut mach = Machine::new(&MachineConfig::lx2());
        let mut k = VectorKernel::new();
        let ctx = KernelCtx {
            h: 16,
            w: 32,
            stride: 48,
            b0: 0,
            planes: vec![super::super::Plane {
                base: 0,
                table: spec.plane_table_2d(),
            }],
            radius: 2,
            opts: Default::default(),
        };
        k.setup(&ctx, &mut mach).unwrap();
        assert_eq!(k.taps.len(), 9);
        // 5 distinct input rows: di in -2..=2.
        assert_eq!(k.groups.len(), 5);
        // The centre row group carries all horizontal taps.
        let centre = k.groups.iter().find(|(_, di, _)| *di == 0).unwrap();
        assert_eq!(centre.2.len(), 5);
    }
}
