//! # hstencil-core
//!
//! HStencil: matrix-vector stencil computation with interleaved outer
//! product and MLA (SC '25), reproduced on the `lx2-sim` simulated
//! SME-class CPU.
//!
//! ## Quickstart
//!
//! ```
//! use hstencil_core::{presets, Grid2d, Method, StencilPlan};
//! use lx2_sim::MachineConfig;
//!
//! let spec = presets::star2d5p();
//! let grid = Grid2d::from_fn(64, 64, 1, |i, j| (i + j) as f64);
//! let plan = StencilPlan::new(&spec, Method::HStencil).verify(true);
//! let out = plan.run_2d(&MachineConfig::lx2(), &grid).unwrap();
//! println!("{}", out.report);
//! assert!(out.report.cycles() > 0);
//! ```
//!
//! ## Layers
//!
//! * [`stencil`] / [`grid`] — problem definition (star/box/Heat, 2-D/3-D).
//! * [`mod@reference`] / [`native`] — ground truth and the v2 host
//!   executor (persistent worker pool, runtime-dispatched AVX2+FMA
//!   micro-kernels with a bit-identical scalar fallback, 2-D and 3-D).
//! * [`kernels`] — the method kernels (auto, vector-only, STOP
//!   matrix-only, Mat-ortho, naive hybrid, HStencil in-place, Apple M4).
//! * [`plan`] / [`report`] — run a method on a simulated machine and read
//!   back `perf`-style measurements.
//! * [`multicore`] — banded multi-core scaling (Figure 16).
//! * [`analysis`] — matrix-unit utilization and pipe-cycle splits
//!   (Tables 1 and 5).

pub mod analysis;
pub mod element;
pub mod error;
pub mod grid;
pub mod kernels;
pub mod method;
pub mod multicore;
pub mod native;
pub mod plan;
pub mod reference;
pub mod report;
pub mod stencil;
pub mod table;

pub use element::{Dtype, Element};
pub use error::PlanError;
pub use grid::{Grid2d, Grid2dT, Grid3d, Grid3dT, GridError};
pub use kernels::{Kernel, KernelCtx, KernelOptions, Plane};
pub use method::Method;
pub use multicore::{run_multicore, run_multicore_steps, MulticoreReport};
pub use native::{pool::ThreadPool, Dispatch, NativeElement, TileKernel};
pub use plan::{RunOutcome, RunOutcome3d, StencilPlan};
pub use report::RunReport;
pub use stencil::{presets, Pattern, StencilSpec};
pub use table::CoeffTable;
