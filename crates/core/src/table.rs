//! Dense per-plane coefficient tables.
//!
//! Kernels consume a stencil as one or more 2-D coefficient tables (one per
//! `dk`-plane for 3-D stencils). The table exposes the nonzero structure
//! queries the table-driven emitters dispatch on: which `dj`-columns are
//! dense enough to deserve an outer product and which reduce to a single
//! horizontal MLA term.

/// A dense `(2r+1) x (2r+1)` coefficient table indexed by `(di, dj)`.
#[derive(Clone, Debug, PartialEq)]
pub struct CoeffTable {
    r: usize,
    c: Vec<f64>,
}

impl CoeffTable {
    /// Builds a table; `c` is row-major over `(di + r, dj + r)`.
    ///
    /// # Panics
    /// Panics if `c.len() != (2r+1)^2`.
    pub fn new(r: usize, c: Vec<f64>) -> Self {
        let n = 2 * r + 1;
        assert_eq!(c.len(), n * n);
        CoeffTable { r, c }
    }

    /// The table radius.
    pub fn radius(&self) -> usize {
        self.r
    }

    /// Coefficient at `(di, dj)`; 0 outside the radius.
    pub fn at(&self, di: isize, dj: isize) -> f64 {
        let r = self.r as isize;
        if di.abs() > r || dj.abs() > r {
            return 0.0;
        }
        let n = (2 * r + 1) as usize;
        self.c[((di + r) as usize) * n + (dj + r) as usize]
    }

    /// Number of nonzero coefficients.
    pub fn nonzeros(&self) -> usize {
        self.c.iter().filter(|&&x| x != 0.0).count()
    }

    /// Whether the whole table is zero.
    pub fn is_zero(&self) -> bool {
        self.nonzeros() == 0
    }

    /// The `dj`-column as a vector of `(di, coeff)` nonzero entries.
    pub fn column(&self, dj: isize) -> Vec<(isize, f64)> {
        let r = self.r as isize;
        (-r..=r)
            .filter_map(|di| {
                let c = self.at(di, dj);
                (c != 0.0).then_some((di, c))
            })
            .collect()
    }

    /// Number of nonzeros in the `dj`-column.
    pub fn column_nonzeros(&self, dj: isize) -> usize {
        self.column(dj).len()
    }

    /// Column offsets `dj` that have at least one nonzero entry.
    pub fn active_columns(&self) -> Vec<isize> {
        let r = self.r as isize;
        (-r..=r)
            .filter(|&dj| self.column_nonzeros(dj) > 0)
            .collect()
    }

    /// Classification used by the hybrid kernel (paper §3.1.1): columns
    /// with ≥ 2 nonzeros (or a nonzero off the centre row) go to the
    /// matrix unit; columns whose only nonzero sits on the centre row
    /// (`di == 0`) reduce to one horizontal MLA term.
    pub fn split_matrix_vector(&self) -> (Vec<isize>, Vec<(isize, f64)>) {
        let mut matrix_cols = Vec::new();
        let mut vector_terms = Vec::new();
        for dj in self.active_columns() {
            let col = self.column(dj);
            if col.len() == 1 && col[0].0 == 0 && dj != 0 {
                vector_terms.push((dj, col[0].1));
            } else {
                matrix_cols.push(dj);
            }
        }
        (matrix_cols, vector_terms)
    }

    /// Sum of all coefficients (diagnostics).
    pub fn sum(&self) -> f64 {
        self.c.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stencil::presets;

    #[test]
    fn star_split_sends_horizontal_arm_to_vector() {
        let t = presets::star2d9p().plane_table_2d();
        let (m, v) = t.split_matrix_vector();
        assert_eq!(m, vec![0]);
        let djs: Vec<isize> = v.iter().map(|&(dj, _)| dj).collect();
        assert_eq!(djs, vec![-2, -1, 1, 2]);
    }

    #[test]
    fn box_split_is_all_matrix() {
        let t = presets::box2d25p().plane_table_2d();
        let (m, v) = t.split_matrix_vector();
        assert_eq!(m, vec![-2, -1, 0, 1, 2]);
        assert!(v.is_empty());
    }

    #[test]
    fn center_only_plane_goes_to_matrix() {
        // 3-D star off-centre plane: single nonzero at (0,0); dj=0 column
        // has one nonzero at the centre — classified matrix (dj == 0).
        let t = presets::star3d7p().plane_table_3d(1);
        let (m, v) = t.split_matrix_vector();
        assert_eq!(m, vec![0]);
        assert!(v.is_empty());
    }

    #[test]
    fn column_queries() {
        let t = presets::star2d9p().plane_table_2d();
        assert_eq!(t.column_nonzeros(0), 5);
        assert_eq!(t.column_nonzeros(1), 1);
        assert_eq!(t.column_nonzeros(3), 0);
        assert_eq!(t.active_columns(), vec![-2, -1, 0, 1, 2]);
    }

    #[test]
    fn zero_table() {
        let t = CoeffTable::new(1, vec![0.0; 9]);
        assert!(t.is_zero());
        assert!(t.active_columns().is_empty());
    }
}
