//! The conformance properties, each checking one variant on one
//! instance. The matrix the tests and the coverage bench run is
//! `registry() × PROPERTIES × instances`.
//!
//! Besides the differential check against the scalar reference, three
//! *metamorphic* oracles exploit the linearity of the stencil operator
//! and need no reference at all — they catch bug classes (a wrong
//! coefficient baked into a table, position-dependent windows) even if
//! the reference itself were wrong:
//!
//! * **Linearity in the coefficients**: doubling every coefficient must
//!   double every output *bit-exactly* — scaling by a power of two
//!   commutes with every IEEE rounding in every summation order.
//! * **Translation invariance**: the stencil is a convolution; running
//!   on a one-cell-shifted window of the same field must shift the
//!   output by one cell.
//! * **Superposition of point sources**: the response to two disjoint
//!   sparse source sets equals the sum of the individual responses
//!   (the source sets live on opposite checkerboard parities, so their
//!   sum is exact in floating point).

use crate::instance::Instance;
use crate::registry::{RunResult, Variant};
use crate::ulp::{
    compare_interior, scale_tolerance_for, DIFFERENTIAL_SCALE_ULPS, METAMORPHIC_SCALE_ULPS,
};
use hstencil_core::{reference, Grid2d, StencilSpec};

/// How one (variant, property, instance) cell of the matrix resolved.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// The property was evaluated and held.
    Checked,
    /// The variant does not support the instance (counted separately so
    /// coverage reports cannot silently shrink).
    Skipped,
}

/// A property of the matrix: `Err` carries a human-readable failure.
pub type Property = fn(&Variant, &Instance) -> Result<Outcome, String>;

/// All registered properties, by stable name.
pub const PROPERTIES: &[(&str, Property)] = &[
    ("differential-vs-reference", check_differential),
    ("linearity-coefficient-doubling", check_linearity),
    ("translation-invariance", check_translation),
    ("superposition-point-sources", check_superposition),
];

/// The variant's tolerance for a `ulps` budget on this instance: ULPs
/// of the conditioning scale, measured at the precision the variant
/// computes in ([`Variant::dtype`]). An `f32` variant held to `f64`
/// ULPs would fail on its own legal rounding; an `f32` budget is still
/// ~10^4 below the O(scale) signal of a real bug.
fn tolerance(v: &Variant, inst: &Instance, ulps: u64) -> f64 {
    scale_tolerance_for(v.dtype(), inst.scale(), ulps)
}

/// Runs the variant, mapping `Unsupported` to `None`.
fn run(v: &Variant, spec: &StencilSpec, input: &Grid2d) -> Result<Option<Grid2d>, String> {
    match v
        .run(spec, input)
        .map_err(|e| format!("[{}] {e}", v.name()))?
    {
        RunResult::Output(g) => Ok(Some(g)),
        RunResult::Unsupported(_) => Ok(None),
    }
}

/// The variant must agree with the scalar reference within the
/// conditioning-scaled ULP budget.
pub fn check_differential(v: &Variant, inst: &Instance) -> Result<Outcome, String> {
    let (spec, input) = (inst.spec(), inst.input());
    let Some(got) = run(v, &spec, &input)? else {
        return Ok(Outcome::Skipped);
    };
    let mut want = input.clone();
    reference::try_apply_2d(&spec, &input, &mut want)
        .map_err(|e| format!("reference rejected the instance: {e}"))?;
    let tol = tolerance(v, inst, DIFFERENTIAL_SCALE_ULPS);
    compare_interior(&want, &got, tol)
        .map_err(|m| format!("[{}] diverges from reference: {m}", v.name()))?;
    Ok(Outcome::Checked)
}

/// Doubling every coefficient must double every output bit-exactly.
pub fn check_linearity(v: &Variant, inst: &Instance) -> Result<Outcome, String> {
    let (spec, input) = (inst.spec(), inst.input());
    let r = inst.radius;
    let n = 2 * r + 1;
    let mut doubled = vec![0.0f64; n * n];
    for (idx, c) in doubled.iter_mut().enumerate() {
        let (di, dj) = (
            (idx / n) as isize - r as isize,
            (idx % n) as isize - r as isize,
        );
        *c = 2.0 * spec.c2(di, dj);
    }
    let spec2 = StencilSpec::new_2d("conformance-x2", inst.pattern, r, doubled);
    let (out1, out2) = match (run(v, &spec, &input)?, run(v, &spec2, &input)?) {
        (Some(a), Some(b)) => (a, b),
        _ => return Ok(Outcome::Skipped),
    };
    for i in 0..inst.h as isize {
        for j in 0..inst.w as isize {
            let (want, got) = (2.0 * out1.at(i, j), out2.at(i, j));
            if want.to_bits() != got.to_bits() {
                return Err(format!(
                    "[{}] not linear in the coefficients at ({i}, {j}): \
                     2*V(c)={want:e} but V(2c)={got:e}",
                    v.name()
                ));
            }
        }
    }
    Ok(Outcome::Checked)
}

/// Running on a `(1, 1)`-shifted window of the same field must shift
/// the output by `(1, 1)` over the overlap.
pub fn check_translation(v: &Variant, inst: &Instance) -> Result<Outcome, String> {
    let spec = inst.spec();
    let (out_a, out_b) = match (
        run(v, &spec, &inst.input())?,
        run(v, &spec, &inst.input_shifted(1, 1))?,
    ) {
        (Some(a), Some(b)) => (a, b),
        _ => return Ok(Outcome::Skipped),
    };
    let tol = tolerance(v, inst, DIFFERENTIAL_SCALE_ULPS);
    for i in 0..inst.h as isize - 1 {
        for j in 0..inst.w as isize - 1 {
            let (want, got) = (out_a.at(i + 1, j + 1), out_b.at(i, j));
            // Negated so a NaN difference can never pass.
            let within = (want - got).abs() <= tol;
            if !within {
                return Err(format!(
                    "[{}] not translation invariant at ({i}, {j}): \
                     shifted-window output {got:e} vs unshifted {want:e} (tol {tol:e})",
                    v.name()
                ));
            }
        }
    }
    Ok(Outcome::Checked)
}

/// `V(a + b) ≈ V(a) + V(b)` for disjoint point-source fields.
pub fn check_superposition(v: &Variant, inst: &Instance) -> Result<Outcome, String> {
    let spec = inst.spec();
    let a = inst.point_sources(3, 0);
    let b = inst.point_sources(3, 1);
    // Disjoint supports: every cell-wise sum has one zero addend, so the
    // combined input is exact.
    let combined = Grid2d::from_fn(inst.h, inst.w, inst.halo(), |i, j| a.at(i, j) + b.at(i, j));
    let (oa, ob, oc) = match (
        run(v, &spec, &a)?,
        run(v, &spec, &b)?,
        run(v, &spec, &combined)?,
    ) {
        (Some(x), Some(y), Some(z)) => (x, y, z),
        _ => return Ok(Outcome::Skipped),
    };
    let tol = tolerance(v, inst, METAMORPHIC_SCALE_ULPS);
    for i in 0..inst.h as isize {
        for j in 0..inst.w as isize {
            let (want, got) = (oa.at(i, j) + ob.at(i, j), oc.at(i, j));
            // Negated so a NaN difference can never pass.
            let within = (want - got).abs() <= tol;
            if !within {
                return Err(format!(
                    "[{}] superposition broken at ({i}, {j}): \
                     V(a)+V(b)={want:e} but V(a+b)={got:e} (tol {tol:e})",
                    v.name()
                ));
            }
        }
    }
    Ok(Outcome::Checked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hstencil_core::Pattern;

    fn small_instance(pattern: Pattern) -> Instance {
        Instance {
            pattern,
            radius: 1,
            h: 8,
            w: 9,
            extra_halo: 0,
            coeff_seed: 11,
            grid_seed: 12,
        }
    }

    #[test]
    fn every_property_holds_for_the_reference_variant() {
        let v = Variant::reference();
        for pattern in [Pattern::Star, Pattern::Box] {
            let inst = small_instance(pattern);
            for (name, prop) in PROPERTIES {
                assert_eq!(
                    prop(&v, &inst).unwrap_or_else(|e| panic!("{name}: {e}")),
                    Outcome::Checked,
                    "{name} skipped on reference"
                );
            }
        }
    }

    #[test]
    fn differential_catches_the_injected_fault() {
        let v = Variant::reference().with_off_by_one();
        let err = check_differential(&v, &small_instance(Pattern::Star)).unwrap_err();
        assert!(err.contains("diverges from reference"), "{err}");
        assert!(err.contains("off-by-one"), "{err}");
    }

    #[test]
    fn metamorphic_oracles_also_catch_the_injected_fault() {
        // The faulty window clamps at the right halo edge, so it is not
        // a pure translation — the translation oracle flags it at the
        // boundary even without consulting the reference.
        let v = Variant::reference().with_off_by_one();
        let inst = small_instance(Pattern::Star);
        let err = check_translation(&v, &inst).unwrap_err();
        assert!(err.contains("not translation invariant"), "{err}");
    }
}
