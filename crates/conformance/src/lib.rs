//! # hstencil-conformance
//!
//! Differential conformance harness for the workspace (DESIGN.md
//! "Conformance & oracles"): every registered kernel/executor variant —
//! the scalar reference, the native executor's dispatch paths, and each
//! simulated method kernel — is run over randomized stencil instances
//! and cross-checked with ULP-bounded comparison plus metamorphic
//! oracles that need no reference at all.
//!
//! Layers:
//!
//! * [`instance`] — seeded random stencil instances (pattern × radius ×
//!   coefficients × grid shape × field), with shrinking toward a minimal
//!   failing instance and `TESTKIT_SEED` replay.
//! * [`mod@registry`] — the variant table. Adding a future kernel to the
//!   whole oracle matrix is **one line** in [`registry::registry`].
//! * [`ulp`] — ULP-bounded comparison conditioned on the instance
//!   (different summation orders across matrix/vector/scalar paths are
//!   legal; silent wrong reads are not).
//! * [`oracle`] — the properties of the matrix: differential vs
//!   reference, linearity in the coefficients, translation invariance,
//!   and superposition of point sources.
//! * [`golden`] — committed instruction/pipe-occupancy/counter traces
//!   for small canonical `lx2-sim` programs, diffed structurally.
//!
//! The `coverage` bench binary runs the full matrix and writes the
//! coverage counts (variants × properties × instances) to a JSON
//! artifact (see EXPERIMENTS.md).

pub mod golden;
pub mod instance;
pub mod oracle;
pub mod registry;
pub mod ulp;

pub use instance::{Instance, InstanceStrategy};
pub use oracle::{Outcome, PROPERTIES};
pub use registry::{registry, RunResult, Variant};

/// True when the extended (exhaustive) tier is requested via the
/// `CONFORMANCE_EXHAUSTIVE` environment variable.
pub fn exhaustive() -> bool {
    std::env::var_os("CONFORMANCE_EXHAUSTIVE").is_some_and(|v| v != "0" && !v.is_empty())
}

/// Case count for a property: the fast tier runs `fast` cases (wired
/// into `scripts/verify.sh`); `CONFORMANCE_EXHAUSTIVE=1` switches to the
/// larger `full` count.
pub fn case_count(fast: u32, full: u32) -> u32 {
    if exhaustive() {
        full
    } else {
        fast
    }
}
