//! Golden `lx2-sim` traces: small canonical kernel programs whose
//! instruction stream, pipe occupancy and counters are committed under
//! `crates/conformance/golden/` and diffed structurally on every run.
//!
//! These pin the *timing and emission* behaviour that the differential
//! matrix (which only checks values) cannot see: an accidental
//! scheduling regression, a dropped prefetch, or a changed instruction
//! mix shows up as a precise line diff. Regenerate deliberately with:
//!
//! ```text
//! CONFORMANCE_BLESS=1 cargo test -p hstencil-conformance --test golden_traces
//! ```

use hstencil_core::kernels::{
    inplace::InplaceKernel, ortho::OrthoKernel, vector::VectorKernel, Kernel, KernelCtx,
    KernelOptions, Plane,
};
use hstencil_core::{presets, Grid2d, StencilSpec};
use lx2_isa::{Program, VLEN};
use lx2_sim::{execute_traced, Machine, MachineConfig, PerfCounters, Trace};
use std::path::PathBuf;

/// Names of all committed golden cases.
pub const CASES: &[&str] = &[
    "inplace_star2d5p",
    "inplace_stop_box2d9p",
    "vector_star2d9p",
    "ortho_star2d9p",
];

/// Directory holding the committed traces.
pub fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("golden")
}

/// True when `CONFORMANCE_BLESS=1` asks for regeneration.
pub fn blessing() -> bool {
    std::env::var_os("CONFORMANCE_BLESS").is_some_and(|v| v != "0" && !v.is_empty())
}

/// Fixed kernel options for golden emission: everything the paper's
/// full configuration enables, two register blocks (so both the blocked
/// and the per-block structure appear without bloating the trace).
fn golden_opts() -> KernelOptions {
    KernelOptions {
        scheduling: true,
        replacement: true,
        prefetch: true,
        reg_blocks: 2,
        prefetch_dist: 4,
        y_block: 256,
        auto_schedule: false,
    }
}

/// Renders one canonical case to its committed text form.
pub fn render_case(name: &str) -> String {
    match name {
        "inplace_star2d5p" => trace_kernel(&mut InplaceKernel::new(true), &presets::star2d5p()),
        "inplace_stop_box2d9p" => trace_kernel(&mut InplaceKernel::new_stop(), &presets::box2d9p()),
        "vector_star2d9p" => trace_kernel(&mut VectorKernel::new(), &presets::star2d9p()),
        "ortho_star2d9p" => trace_kernel(&mut OrthoKernel::new(), &presets::star2d9p()),
        other => panic!("unknown golden case {other:?} (known: {CASES:?})"),
    }
}

/// Emits one `(0, 0)` tile of `kernel` on a fixed 16×16 grid and renders
/// the traced execution. Allocation order (input, output, then setup
/// tables) is fixed, so every address in the disassembly is stable.
fn trace_kernel(kernel: &mut dyn Kernel, spec: &StencilSpec) -> String {
    let (h, w) = (16usize, 16usize);
    let input = Grid2d::from_fn(h, w, spec.radius(), |i, j| {
        ((i * 31 + j * 7).rem_euclid(17)) as f64 * 0.125
    });
    let mut mach = Machine::new(&MachineConfig::lx2());
    let len = input.raw().len();
    let ra = mach.alloc(len, VLEN);
    let rb = mach.alloc(len, VLEN);
    mach.mem.store_slice(ra.base, input.raw()).unwrap();
    mach.mem.store_slice(rb.base, input.raw()).unwrap();
    let ctx = KernelCtx {
        h,
        w,
        stride: input.stride() as u64,
        b0: rb.base + input.origin() as u64,
        planes: vec![Plane {
            base: ra.base + input.origin() as u64,
            table: spec.plane_table_2d(),
        }],
        radius: spec.radius(),
        opts: golden_opts(),
    };
    kernel.setup(&ctx, &mut mach).unwrap();
    let mut prog = Program::with_capacity(4096);
    kernel.emit_tile(&ctx, 0, 0, &mut prog);
    let before = mach.counters();
    let trace = execute_traced(&mut mach, &prog).unwrap();
    let delta = mach.counters().delta(&before);
    render(kernel.name(), spec, &trace, &delta)
}

fn render(kernel: &str, spec: &StencilSpec, trace: &Trace, c: &PerfCounters) -> String {
    let mut out = String::new();
    out.push_str("# hstencil-conformance golden trace\n");
    out.push_str(&format!(
        "# kernel {kernel} | stencil {} | tile (0,0) of 16x16 | machine lx2\n",
        spec.name()
    ));
    out.push_str(
        "# regenerate: CONFORMANCE_BLESS=1 cargo test -p hstencil-conformance --test golden_traces\n",
    );
    out.push_str("-- instructions (index, issue cycle, pipe, disassembly) --\n");
    for (idx, e) in trace.entries().iter().enumerate() {
        out.push_str(&format!(
            "{idx:>4} {:>6} {:>6} {}\n",
            e.issue, e.pipe, e.inst
        ));
    }
    out.push_str("-- pipe occupancy --\n");
    out.push_str(&trace.render_timeline(120));
    out.push_str("-- counters (traced window) --\n");
    let rows: &[(&str, u64)] = &[
        ("instructions", c.instructions),
        ("cycles", c.cycles),
        ("active_cycles", c.active_cycles),
        ("flops", c.flops),
        ("fmopa", c.fmopa),
        ("fmla", c.fmla),
        ("fmlag", c.fmlag),
        ("useful_matrix_macs", c.useful_matrix_macs),
        ("l1_load_accesses", c.mem.l1_load_accesses),
        ("l1_load_hits", c.mem.l1_load_hits),
        ("l1_store_accesses", c.mem.l1_store_accesses),
        ("l1_store_hits", c.mem.l1_store_hits),
        ("l2_accesses", c.mem.l2_accesses),
        ("l2_hits", c.mem.l2_hits),
        ("dram_lines_read", c.mem.dram_lines_read),
        ("dram_lines_written", c.mem.dram_lines_written),
        ("hw_prefetches", c.mem.hw_prefetches),
        ("sw_prefetches", c.mem.sw_prefetches),
        ("late_prefetch_hits", c.mem.late_prefetch_hits),
    ];
    for (k, v) in rows {
        out.push_str(&format!("{k} {v}\n"));
    }
    for (pipe, (n, busy)) in c.per_pipe.iter().zip(c.pipe_busy.iter()).enumerate() {
        out.push_str(&format!("pipe{pipe}_insts {n}\npipe{pipe}_busy {busy}\n"));
    }
    out
}

/// Structural diff: the first differing line with context, or `None`
/// when the texts match exactly.
pub fn diff(expected: &str, actual: &str) -> Option<String> {
    let (e, a): (Vec<&str>, Vec<&str>) = (expected.lines().collect(), actual.lines().collect());
    let n = e.len().max(a.len());
    for k in 0..n {
        let (el, al) = (e.get(k).copied(), a.get(k).copied());
        if el != al {
            return Some(format!(
                "first divergence at line {} ({} golden lines, {} actual):\n  golden: {}\n  actual: {}",
                k + 1,
                e.len(),
                a.len(),
                el.unwrap_or("<missing — golden file ends here>"),
                al.unwrap_or("<missing — actual trace ends here>"),
            ));
        }
    }
    None
}

/// Checks one case against its committed trace (or rewrites it under
/// `CONFORMANCE_BLESS=1`).
pub fn check(name: &str) -> Result<(), String> {
    let actual = render_case(name);
    let path = golden_dir().join(format!("{name}.txt"));
    if blessing() {
        std::fs::create_dir_all(golden_dir())
            .map_err(|e| format!("cannot create {}: {e}", golden_dir().display()))?;
        std::fs::write(&path, &actual)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        return Ok(());
    }
    let expected = std::fs::read_to_string(&path).map_err(|e| {
        format!(
            "missing golden file {} ({e}); regenerate with CONFORMANCE_BLESS=1",
            path.display()
        )
    })?;
    match diff(&expected, &actual) {
        None => Ok(()),
        Some(d) => Err(format!(
            "golden trace {name:?} diverged — {d}\n(if the change is intended, regenerate with \
             CONFORMANCE_BLESS=1 and commit the diff)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendering_is_deterministic() {
        for name in CASES {
            assert_eq!(render_case(name), render_case(name), "{name}");
        }
    }

    #[test]
    fn traces_carry_instructions_counters_and_occupancy() {
        let text = render_case("inplace_star2d5p");
        assert!(text.contains("-- instructions"));
        assert!(text.contains("-- pipe occupancy --"));
        assert!(text.contains("\ninstructions "));
        assert!(text.contains("fmopa "));
        // The full configuration emits software prefetches; the golden
        // trace must witness them.
        let sw: u64 = text
            .lines()
            .find_map(|l| l.strip_prefix("sw_prefetches "))
            .unwrap()
            .parse()
            .unwrap();
        assert!(sw > 0, "no PRFM in the canonical inplace trace:\n{text}");
    }

    #[test]
    fn diff_pinpoints_the_first_divergence() {
        assert!(diff("a\nb\nc", "a\nb\nc").is_none());
        let d = diff("a\nb\nc", "a\nX\nc").unwrap();
        assert!(d.contains("line 2") && d.contains("golden: b") && d.contains("actual: X"));
        let d = diff("a", "a\nextra").unwrap();
        assert!(d.contains("ends here"), "{d}");
    }
}
