//! The variant registry: every kernel/executor the workspace can run a
//! 2-D stencil sweep on, behind one uniform `run` signature.
//!
//! [`registry`] is the single source of truth for the conformance
//! matrix — the differential test, the metamorphic oracles, the
//! fault-injection test and the coverage bench all iterate it. Adding a
//! future kernel to all of them is **one line** here (a
//! [`Variant::sim`] / [`Variant::native`] constructor call).

use crate::instance::Instance;
use hstencil_core::{
    native, reference, Dispatch, Dtype, Grid2d, Grid2dT, Method, Pattern, PlanError, StencilPlan,
    StencilSpec, ThreadPool,
};
use lx2_sim::MachineConfig;

/// What running a variant on an instance produced.
#[derive(Debug)]
pub enum RunResult {
    /// The computed output grid.
    Output(Grid2d),
    /// The variant's method does not support this instance (e.g.
    /// Mat-ortho on box-shaped tables) — a *skip*, not a failure.
    Unsupported(String),
}

type Runner = Box<dyn Fn(&StencilSpec, &Grid2d) -> Result<RunResult, String>>;

/// One registered kernel/executor variant.
pub struct Variant {
    name: String,
    star_only: bool,
    dtype: Dtype,
    runner: Runner,
}

impl Variant {
    /// The variant's display name (stable; used in reports and JSON).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The element type the variant computes in. The oracles size their
    /// ULP budgets at this precision: an `f32` sweep's legal rounding
    /// noise is ~2^29 times the `f64` floor, and holding it to the
    /// `f64` budget would flag every correct `f32` kernel.
    pub fn dtype(&self) -> Dtype {
        self.dtype
    }

    /// True if the variant's method only accepts star-shaped tables.
    /// Star-only variants report box instances as unsupported; the
    /// harness counts them as skips.
    pub fn star_only(&self) -> bool {
        self.star_only
    }

    /// Whether the variant can run this instance at all.
    pub fn supports(&self, inst: &Instance) -> bool {
        !(self.star_only && inst.pattern == Pattern::Box)
    }

    /// Runs one sweep. `Err` is a *conformance failure* (crash or wrong
    /// machine state); `Ok(Unsupported)` is a legal skip.
    pub fn run(&self, spec: &StencilSpec, input: &Grid2d) -> Result<RunResult, String> {
        (self.runner)(spec, input)
    }

    /// The scalar reference itself (anchors the differential matrix and
    /// lets fault injection prove the harness catches a broken oracle).
    pub fn reference() -> Variant {
        Variant {
            name: "reference".into(),
            star_only: false,
            dtype: Dtype::F64,
            runner: Box::new(|spec, a| {
                let mut out = a.clone();
                reference::try_apply_2d(spec, a, &mut out)
                    .map_err(|e| format!("reference rejected a valid instance: {e}"))?;
                Ok(RunResult::Output(out))
            }),
        }
    }

    /// A native-executor dispatch path, single-threaded.
    pub fn native(dispatch: Dispatch) -> Variant {
        Variant {
            name: format!("native/{}", dispatch.label()),
            star_only: false,
            dtype: Dtype::F64,
            runner: Box::new(move |spec, a| {
                let mut out = a.clone();
                native::try_apply_2d_with(dispatch, spec, a, &mut out)
                    .map_err(|e| format!("native rejected a valid instance: {e}"))?;
                Ok(RunResult::Output(out))
            }),
        }
    }

    /// A native-executor dispatch path computing in `f32`: the `f64`
    /// instance input is rounded element-wise to `f32`, the sweep runs
    /// entirely at that precision, and the output is widened back (an
    /// exact conversion). The oracles see [`Variant::dtype`] and size
    /// their budgets in `f32` ULPs of the conditioning scale.
    pub fn native_f32(dispatch: Dispatch) -> Variant {
        Variant {
            name: format!("native/f32/{}", dispatch.label()),
            star_only: false,
            dtype: Dtype::F32,
            runner: Box::new(move |spec, a| {
                let a32 = Grid2dT::<f32>::convert_from(a);
                let mut out32 = a32.clone();
                native::try_apply_2d_with(dispatch, spec, &a32, &mut out32)
                    .map_err(|e| format!("native f32 rejected a valid instance: {e}"))?;
                Ok(RunResult::Output(Grid2d::convert_from(&out32)))
            }),
        }
    }

    /// The native executor's pool-parallel path (`threads` lanes of the
    /// global persistent pool, best dispatch).
    pub fn native_parallel(threads: usize) -> Variant {
        Self::native_parallel_with(
            format!("native/parallel{threads}"),
            Dispatch::detect(),
            threads,
        )
    }

    /// A pool-parallel run of one *specific* dispatch path. Exists so
    /// the matrix pins kernels whose store path is lane-aware (the
    /// hybrid staged-NT policy) at a thread count that flips the
    /// policy, not just at the auto-detected best kernel.
    pub fn native_parallel_with(name: String, dispatch: Dispatch, threads: usize) -> Variant {
        Variant {
            name,
            star_only: false,
            dtype: Dtype::F64,
            runner: Box::new(move |spec, a| {
                let mut out = a.clone();
                native::apply_2d_parallel_in(
                    ThreadPool::global(),
                    dispatch,
                    spec,
                    a,
                    &mut out,
                    threads,
                );
                Ok(RunResult::Output(out))
            }),
        }
    }

    /// The temporally-tiled native multi-sweep executor (DESIGN.md §9),
    /// forced through the trapezoid pipeline for a single fused sweep so
    /// the ghost-zone/scratch machinery itself faces the differential
    /// ULP check and every metamorphic oracle.
    pub fn native_temporal(threads: usize) -> Variant {
        Variant {
            name: format!("native/temporal{threads}"),
            star_only: false,
            dtype: Dtype::F64,
            runner: Box::new(move |spec, a| {
                a.check_stencil(spec.radius(), a)
                    .map_err(|e| format!("native temporal rejected a valid instance: {e}"))?;
                let out = native::time_steps_temporal_in(
                    ThreadPool::global(),
                    Dispatch::detect(),
                    spec,
                    a,
                    1,
                    threads,
                    native::Temporal {
                        t_block: None,
                        force_pipeline: true,
                        tile: Some((8, 16)),
                    },
                );
                Ok(RunResult::Output(out))
            }),
        }
    }

    /// A simulated method kernel on a machine model (via
    /// [`StencilPlan`], so the full emit → schedule → execute path runs).
    pub fn sim(tag: &str, method: Method, cfg: fn() -> MachineConfig, star_only: bool) -> Variant {
        Variant {
            name: format!("sim/{tag}"),
            star_only,
            dtype: Dtype::F64,
            runner: Box::new(move |spec, a| {
                let plan = StencilPlan::new(spec, method).warmup(0);
                match plan.run_2d(&cfg(), a) {
                    Ok(out) => Ok(RunResult::Output(out.output)),
                    Err(PlanError::MethodUnsupported { reason, .. }) => {
                        Ok(RunResult::Unsupported(reason.to_string()))
                    }
                    Err(e) => Err(format!("simulated run failed: {e}")),
                }
            }),
        }
    }

    /// Wraps the variant with an injected off-by-one fault: the sweep
    /// sees the input window shifted one column right. Exists so the
    /// test suite can prove the differential matrix *catches* a
    /// plausible kernel bug with a shrunk, replayable counterexample.
    pub fn with_off_by_one(self) -> Variant {
        let inner = self.runner;
        Variant {
            name: format!("{}+off-by-one", self.name),
            star_only: self.star_only,
            dtype: self.dtype,
            runner: Box::new(move |spec, a| {
                let lim = a.w() as isize + a.halo() as isize - 1;
                let shifted =
                    Grid2d::from_fn(a.h(), a.w(), a.halo(), |i, j| a.at(i, (j + 1).min(lim)));
                inner(spec, &shifted)
            }),
        }
    }
}

/// Every conformance variant runnable on this host. One line per
/// kernel/executor; the AVX2 path registers only where it can execute.
pub fn registry() -> Vec<Variant> {
    let lx2 = MachineConfig::lx2;
    let m4 = MachineConfig::apple_m4;
    let mut v = vec![
        Variant::reference(),
        Variant::native(Dispatch::Scalar),
        Variant::native_parallel(2),
        Variant::native_parallel(4),
        Variant::native_temporal(3),
        // The hybrid kernel under the pool at 3 lanes: per-lane bands
        // shrink below the staged-NT threshold, so this pins the
        // direct-store side of the lane-aware policy in the matrix.
        Variant::native_parallel_with("native/hybrid8x8-par3".into(), Dispatch::Hybrid, 3),
        Variant::sim("lx2/hstencil", Method::HStencil, lx2, false),
        Variant::sim("lx2/vector-only", Method::VectorOnly, lx2, false),
        Variant::sim("lx2/matrix-stop", Method::MatrixOnly, lx2, false),
        Variant::sim("lx2/mat-ortho", Method::MatrixOrtho, lx2, true),
        Variant::sim("lx2/naive-hybrid", Method::NaiveHybrid, lx2, false),
        Variant::sim("lx2/auto", Method::Auto, lx2, false),
        Variant::sim("m4/hstencil", Method::HStencil, m4, false),
        // The hybrid 8×8 register-tile kernel (Algorithm 2 on x86).
        // Its accumulation order interleaves vertical rank-1 updates
        // with a folded inner-MLA partial, reassociating the canonical
        // tap sum — so it is ULP-bounded against the reference, NOT
        // bit-exact like native/scalar vs native/avx2+fma. Registered
        // unconditionally: off x86 (or at radius > 4) it runs its
        // bit-identical scalar hybrid chain.
        Variant::native(Dispatch::Hybrid),
    ];
    if Dispatch::avx2_available() {
        v.push(Variant::native(Dispatch::Avx2Fma));
    }
    // The f32 instantiation of the TileKernel trait (DESIGN.md §12),
    // at the host's best canonical-chain dispatch. Judged at f32 ULP
    // budgets via `Variant::dtype`.
    v.push(Variant::native_f32(Dispatch::detect()));
    // The AVX-512 instances register only where the host can execute
    // them; on other hosts the matrix's coverage report simply lacks
    // the avx512 rows (a visible, not silent, narrowing).
    if Dispatch::avx512_available() {
        v.push(Variant::native(Dispatch::Avx512));
        v.push(Variant::native_f32(Dispatch::Avx512));
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_meets_the_minimum_matrix_width() {
        let names: Vec<String> = registry().iter().map(|v| v.name().to_string()).collect();
        assert!(names.len() >= 6, "only {} variants: {names:?}", names.len());
        assert!(
            names.iter().any(|n| n.starts_with("native/temporal")),
            "temporal executor missing from the matrix: {names:?}"
        );
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "duplicate names: {names:?}");
        assert!(names.iter().any(|n| n == "reference"));
        assert!(names.iter().any(|n| n.starts_with("native/")));
        assert!(names.iter().any(|n| n.starts_with("sim/")));
        assert!(
            names.iter().any(|n| n == "native/hybrid8x8"),
            "hybrid kernel missing from the matrix: {names:?}"
        );
        for needed in [
            "native/parallel2",
            "native/parallel4",
            "native/hybrid8x8-par3",
        ] {
            assert!(
                names.iter().any(|n| n == needed),
                "thread-scaling variant {needed} missing from the matrix: {names:?}"
            );
        }
        assert!(
            names.iter().any(|n| n.starts_with("native/f32/")),
            "f32 TileKernel instance missing from the matrix: {names:?}"
        );
        if Dispatch::avx512_available() {
            for needed in ["native/avx512", "native/f32/avx512"] {
                assert!(
                    names.iter().any(|n| n == needed),
                    "AVX-512 instance {needed} missing despite host support: {names:?}"
                );
            }
        } else {
            assert!(
                !names.iter().any(|n| n.contains("avx512")),
                "AVX-512 variants must not register without avx512f: {names:?}"
            );
        }
    }

    #[test]
    fn f32_variants_carry_their_dtype_and_everything_else_is_f64() {
        for v in registry() {
            let want = if v.name().starts_with("native/f32/") {
                Dtype::F32
            } else {
                Dtype::F64
            };
            assert_eq!(v.dtype(), want, "{} has the wrong dtype", v.name());
        }
        // The fault wrapper preserves the wrapped variant's dtype, so
        // injected f32 faults are still judged at f32 budgets.
        let wrapped = Variant::native_f32(Dispatch::Scalar).with_off_by_one();
        assert_eq!(wrapped.dtype(), Dtype::F32);
    }

    #[test]
    fn star_only_variants_skip_box_tables() {
        let ortho = Variant::sim(
            "lx2/mat-ortho",
            Method::MatrixOrtho,
            MachineConfig::lx2,
            true,
        );
        let spec = hstencil_core::presets::box2d9p();
        let grid = Grid2d::from_fn(8, 8, 1, |i, j| (i * j) as f64);
        match ortho.run(&spec, &grid).unwrap() {
            RunResult::Unsupported(reason) => assert!(reason.contains("star")),
            RunResult::Output(_) => panic!("mat-ortho must not accept a box table"),
        }
    }

    #[test]
    fn off_by_one_wrapper_changes_the_answer() {
        let v = Variant::reference();
        let bad = Variant::reference().with_off_by_one();
        assert!(bad.name().ends_with("+off-by-one"));
        let spec = hstencil_core::presets::star2d5p();
        let grid = Grid2d::from_fn(8, 8, 1, |i, j| ((3 * i + j) % 7) as f64);
        let (a, b) = match (v.run(&spec, &grid).unwrap(), bad.run(&spec, &grid).unwrap()) {
            (RunResult::Output(a), RunResult::Output(b)) => (a, b),
            _ => panic!("reference cannot be unsupported"),
        };
        assert!(a.max_interior_diff(&b) > 0.1, "fault was not observable");
    }
}
