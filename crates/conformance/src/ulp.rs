//! ULP-bounded grid comparison, conditioned on the instance.
//!
//! Different variants sum the same taps in different orders (matrix
//! outer products, shifted vector chains, scalar FMA chains), so raw
//! bit equality across variants is the wrong contract — but an absolute
//! epsilon is worse, silently passing wrong-window reads on small-value
//! fields. The middle ground used here: tolerances are measured in ULPs
//! of the instance's *conditioning scale* `max|input| · Σ|c|`, which
//! bounds every partial sum. Reordering `n` taps perturbs a result by at
//! most `~2n` scale-ULPs (`n ≤ 49` for radius 3), so the bounds below
//! hold mathematically for any summation order while an off-by-one
//! window read shows up at ~10¹⁵ scale-ULPs.

use hstencil_core::{Dtype, Grid2d};

/// Scale-ULP budget for cross-variant differential comparison.
pub const DIFFERENTIAL_SCALE_ULPS: u64 = 1024;
/// Scale-ULP budget for metamorphic identities that add one extra
/// rounding per output (superposition).
pub const METAMORPHIC_SCALE_ULPS: u64 = 2048;

/// The ULP of `x`: distance to the next representable magnitude.
pub fn ulp_of(x: f64) -> f64 {
    let a = x.abs().max(f64::MIN_POSITIVE);
    f64::from_bits(a.to_bits() + 1) - a
}

/// The ULP of `x` *as an `f32`*, returned in `f64` so tolerances stay
/// one type. An `f32` variant's inputs and per-tap FMAs each round at
/// `f32` granularity, so its legal noise floor is `~2^29` times the
/// `f64` one — budgets for such variants must be measured here.
pub fn ulp_of_f32(x: f64) -> f64 {
    let a = (x.abs() as f32).max(f32::MIN_POSITIVE);
    (f32::from_bits(a.to_bits() + 1) - a) as f64
}

/// Absolute tolerance equal to `ulps` ULPs of `scale`.
pub fn scale_tolerance(scale: f64, ulps: u64) -> f64 {
    ulps as f64 * ulp_of(scale)
}

/// Absolute tolerance equal to `ulps` ULPs of `scale`, measured at the
/// precision the variant computed in. The same symbolic budget (e.g.
/// [`DIFFERENTIAL_SCALE_ULPS`]) is valid for both dtypes because the
/// reorder/rounding analysis it came from counts *roundings*, and each
/// rounding is one ULP of whichever significand did the arithmetic.
pub fn scale_tolerance_for(dtype: Dtype, scale: f64, ulps: u64) -> f64 {
    match dtype {
        Dtype::F32 => ulps as f64 * ulp_of_f32(scale),
        Dtype::F64 => ulps as f64 * ulp_of(scale),
    }
}

/// Monotone total-order key: equal-magnitude floats of either sign map
/// to keys whose distance counts representable values between them.
fn key(x: f64) -> u64 {
    let b = x.to_bits();
    if b >> 63 == 1 {
        !b
    } else {
        b | 0x8000_0000_0000_0000
    }
}

/// Representable values between `a` and `b` (0 when bit-equal;
/// `u64::MAX` if either is NaN).
pub fn ulp_diff(a: f64, b: f64) -> u64 {
    if a.is_nan() || b.is_nan() {
        return u64::MAX;
    }
    key(a).abs_diff(key(b))
}

/// First interior cell where two grids differ by more than `tol`.
#[derive(Clone, Debug, PartialEq)]
pub struct Mismatch {
    /// Interior row of the offending cell.
    pub i: usize,
    /// Interior column of the offending cell.
    pub j: usize,
    /// Expected value.
    pub want: f64,
    /// Actual value.
    pub got: f64,
    /// The tolerance that was exceeded.
    pub tol: f64,
}

impl std::fmt::Display for Mismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cell ({}, {}): want {:e}, got {:e} (|diff| {:e} > tol {:e}, {} raw ulps apart)",
            self.i,
            self.j,
            self.want,
            self.got,
            (self.want - self.got).abs(),
            self.tol,
            ulp_diff(self.want, self.got),
        )
    }
}

/// Compares interiors; NaN anywhere is a mismatch.
pub fn compare_interior(want: &Grid2d, got: &Grid2d, tol: f64) -> Result<(), Mismatch> {
    assert_eq!((want.h(), want.w()), (got.h(), got.w()));
    for i in 0..want.h() {
        for j in 0..want.w() {
            let (a, b) = (
                want.at(i as isize, j as isize),
                got.at(i as isize, j as isize),
            );
            // Negated so a NaN difference can never pass.
            let within = (a - b).abs() <= tol;
            if !within {
                return Err(Mismatch {
                    i,
                    j,
                    want: a,
                    got: b,
                    tol,
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ulp_diff_counts_representable_steps() {
        assert_eq!(ulp_diff(1.0, 1.0), 0);
        assert_eq!(ulp_diff(1.0, f64::from_bits(1.0f64.to_bits() + 3)), 3);
        // Symmetric across zero: -0.0 and +0.0 are adjacent keys.
        assert_eq!(ulp_diff(0.0, -0.0), 1);
        assert_eq!(ulp_diff(f64::NAN, 1.0), u64::MAX);
    }

    #[test]
    fn tolerance_scales_with_the_conditioning_bound() {
        // 1024 ULPs at scale 1.0 is ~2.3e-13 — far below any real bug's
        // O(scale) signal, far above legal reorder noise.
        let t = scale_tolerance(1.0, DIFFERENTIAL_SCALE_ULPS);
        assert!(t > 1e-14 && t < 1e-12, "tolerance {t}");
        assert!(scale_tolerance(1000.0, 1024) > t);
    }

    #[test]
    fn f32_tolerance_sits_between_f32_noise_and_the_bug_signal() {
        // 1024 f32-ULPs at scale 1.0 is ~1.2e-4: above the ~49-rounding
        // noise of a radius-3 f32 sweep, still ~10^4 below an O(scale)
        // wrong-window read.
        let t = scale_tolerance_for(Dtype::F32, 1.0, DIFFERENTIAL_SCALE_ULPS);
        assert!(t > 1e-5 && t < 1e-3, "tolerance {t}");
        // The f64 budget is the degenerate case of the dtype-aware one.
        assert_eq!(
            scale_tolerance_for(Dtype::F64, 3.5, DIFFERENTIAL_SCALE_ULPS),
            scale_tolerance(3.5, DIFFERENTIAL_SCALE_ULPS)
        );
        // The precision gap is 2^29 (52 - 23 significand bits).
        assert_eq!(ulp_of_f32(1.0), (1u64 << 29) as f64 * ulp_of(1.0));
    }

    #[test]
    fn compare_interior_reports_the_cell() {
        let a = Grid2d::from_fn(8, 8, 1, |i, j| (i * 8 + j) as f64);
        let mut b = a.clone();
        b.set(3, 5, b.at(3, 5) + 1.0);
        let m = compare_interior(&a, &b, 1e-9).unwrap_err();
        assert_eq!((m.i, m.j), (3, 5));
        assert!(m.to_string().contains("cell (3, 5)"));
        assert!(compare_interior(&a, &a, 0.0).is_ok());
    }

    #[test]
    fn nan_never_passes() {
        let a = Grid2d::zeros(8, 8, 1);
        let mut b = a.clone();
        b.set(0, 0, f64::NAN);
        assert!(compare_interior(&a, &b, f64::INFINITY).is_err());
    }
}
