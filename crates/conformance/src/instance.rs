//! Random stencil instances with shrinking.
//!
//! An [`Instance`] is a *complete* conformance input: stencil pattern,
//! radius, a coefficient seed, a grid shape (including halo slack), and
//! a field seed. Everything derived from it — the [`StencilSpec`], the
//! input [`Grid2d`], translated or companion fields — is a pure function
//! of the instance, so a shrunk instance printed by the property harness
//! is a full reproduction recipe.
//!
//! Generation deliberately over-samples *awkward* grid shapes: widths
//! and heights at tile-boundary values (multiples of `VLEN` and their
//! ±1 neighbours) where overlapped remainder tiles and SIMD tails live.

use hstencil_core::{Grid2d, Pattern, StencilSpec};
use hstencil_testkit::prop::Strategy;
use hstencil_testkit::rng::{Rng, Xoshiro256};
use lx2_isa::VLEN;

/// Smallest interior edge a simulated kernel accepts.
pub const MIN_EDGE: usize = VLEN;
/// Largest generated interior edge (kept modest: each instance runs
/// through every simulated kernel).
pub const MAX_EDGE: usize = 40;
/// Largest generated radius (`hstencil_core::kernels::MAX_RADIUS`).
pub const MAX_RADIUS: usize = 3;

/// One randomized conformance input. All fields are plain data so the
/// `Debug` form printed on failure is a complete reproduction recipe.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Instance {
    /// Stencil shape (star or box).
    pub pattern: Pattern,
    /// Stencil radius, `1..=MAX_RADIUS`.
    pub radius: usize,
    /// Interior height.
    pub h: usize,
    /// Interior width.
    pub w: usize,
    /// Halo slack beyond the radius (`halo = radius + extra_halo`).
    pub extra_halo: usize,
    /// Seed of the dense coefficient table.
    pub coeff_seed: u64,
    /// Seed of the input field.
    pub grid_seed: u64,
}

/// Deterministic field value at integer coordinates: a SplitMix64-style
/// hash of `(seed, i, j)` mapped into `(-1, 1)`. Being a pure function
/// of the *coordinates* (not of traversal order) is what makes
/// translated windows of the same field exactly representable.
pub fn field(seed: u64, i: isize, j: isize) -> f64 {
    let mut z = seed
        ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (j as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 52) as f64 - 1.0
}

impl Instance {
    /// Effective halo width.
    pub fn halo(&self) -> usize {
        self.radius + self.extra_halo
    }

    /// The instance's stencil: a dense random table in `[-1, 1]` (star
    /// patterns zero everything off the two axes).
    pub fn spec(&self) -> StencilSpec {
        let n = 2 * self.radius + 1;
        let mut rng = Xoshiro256::seed_from_u64(self.coeff_seed);
        let mut table = vec![0.0f64; n * n];
        for (idx, c) in table.iter_mut().enumerate() {
            let v = rng.gen_range(-1.0f64..1.0);
            let (di, dj) = (idx / n, idx % n);
            let on_axis = di == self.radius || dj == self.radius;
            if self.pattern == Pattern::Box || on_axis {
                *c = v;
            }
        }
        StencilSpec::new_2d("conformance", self.pattern, self.radius, table)
    }

    /// The input grid: the window of [`field`]`(grid_seed)` translated
    /// by `(di, dj)` (halo cells included).
    pub fn input_shifted(&self, di: isize, dj: isize) -> Grid2d {
        let seed = self.grid_seed;
        Grid2d::from_fn(self.h, self.w, self.halo(), |i, j| {
            field(seed, i + di, j + dj)
        })
    }

    /// The input grid (unshifted window).
    pub fn input(&self) -> Grid2d {
        self.input_shifted(0, 0)
    }

    /// A sparse field of `k` point sources with random magnitudes in
    /// `[-1, 1]`, placed on cells of the given checkerboard `parity`
    /// (so two opposite-parity source sets never collide and their sum
    /// is exact in floating point).
    pub fn point_sources(&self, k: usize, parity: isize) -> Grid2d {
        let halo = self.halo() as isize;
        let mut rng =
            Xoshiro256::seed_from_u64(self.grid_seed ^ 0xC0FF_EE00_0000_0000 ^ parity as u64);
        let mut g = Grid2d::zeros(self.h, self.w, self.halo());
        for _ in 0..k {
            let i = rng.gen_range(-halo..self.h as isize + halo);
            let mut j = rng.gen_range(-halo..self.w as isize + halo - 1);
            if (i + j).rem_euclid(2) != parity {
                j += 1;
            }
            g.set(i, j, rng.gen_range(-1.0f64..1.0));
        }
        g
    }

    /// Conditioning scale of the instance: `max|input| * Σ|c|` bounds
    /// every output magnitude and every partial sum, so tolerances
    /// measured in ULPs *of this scale* are summation-order-safe.
    pub fn scale(&self) -> f64 {
        let spec = self.spec();
        let r = self.radius as isize;
        let mut sum_abs = 0.0;
        for di in -r..=r {
            for dj in -r..=r {
                sum_abs += spec.c2(di, dj).abs();
            }
        }
        // Field values are bounded by 1 in magnitude.
        sum_abs.max(f64::MIN_POSITIVE)
    }
}

/// Strategy generating [`Instance`]s; shrinks one field at a time toward
/// the minimal instance (star, radius 1, `MIN_EDGE`² grid, zero seeds).
#[derive(Clone, Debug, Default)]
pub struct InstanceStrategy {
    /// Restrict generation to star patterns (for variants whose method
    /// only supports star-shaped tables).
    pub star_only: bool,
}

impl InstanceStrategy {
    /// Instances over both patterns.
    pub fn any() -> Self {
        InstanceStrategy { star_only: false }
    }

    /// Star-pattern instances only.
    pub fn star() -> Self {
        InstanceStrategy { star_only: true }
    }
}

/// Draw an edge length, over-sampling tile-boundary values.
fn gen_edge(rng: &mut Xoshiro256) -> usize {
    const AWKWARD: [usize; 9] = [8, 9, 15, 16, 17, 23, 25, 31, 33];
    if rng.gen_range(0u32..2) == 0 {
        AWKWARD[rng.gen_range(0usize..AWKWARD.len())]
    } else {
        rng.gen_range(MIN_EDGE..MAX_EDGE + 1)
    }
}

impl Strategy for InstanceStrategy {
    type Value = Instance;

    fn generate(&self, rng: &mut Xoshiro256) -> Instance {
        let pattern = if self.star_only || rng.gen_range(0u32..2) == 0 {
            Pattern::Star
        } else {
            Pattern::Box
        };
        Instance {
            pattern,
            radius: rng.gen_range(1usize..MAX_RADIUS + 1),
            h: gen_edge(rng),
            w: gen_edge(rng),
            extra_halo: rng.gen_range(0usize..3),
            coeff_seed: rng.next_u64(),
            grid_seed: rng.next_u64(),
        }
    }

    fn shrink(&self, v: &Instance) -> Vec<Instance> {
        let mut out = Vec::new();
        let mut push = |i: Instance| {
            if &i != v {
                out.push(i);
            }
        };
        if v.pattern == Pattern::Box && !self.star_only {
            push(Instance {
                pattern: Pattern::Star,
                ..v.clone()
            });
        }
        if v.radius > 1 {
            push(Instance {
                radius: v.radius - 1,
                ..v.clone()
            });
        }
        for (h, w) in [
            (MIN_EDGE.max(v.h / 2), v.w),
            (v.h.saturating_sub(1).max(MIN_EDGE), v.w),
            (v.h, MIN_EDGE.max(v.w / 2)),
            (v.h, v.w.saturating_sub(1).max(MIN_EDGE)),
        ] {
            push(Instance { h, w, ..v.clone() });
        }
        if v.extra_halo > 0 {
            push(Instance {
                extra_halo: 0,
                ..v.clone()
            });
        }
        for coeff_seed in [v.coeff_seed >> 1, 0] {
            push(Instance {
                coeff_seed,
                ..v.clone()
            });
        }
        for grid_seed in [v.grid_seed >> 1, 0] {
            push(Instance {
                grid_seed,
                ..v.clone()
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_data_is_deterministic() {
        let inst = Instance {
            pattern: Pattern::Box,
            radius: 2,
            h: 16,
            w: 17,
            extra_halo: 1,
            coeff_seed: 42,
            grid_seed: 7,
        };
        assert_eq!(inst.halo(), 3);
        let (a, b) = (inst.input(), inst.input());
        assert_eq!(a.raw(), b.raw());
        let (s1, s2) = (inst.spec(), inst.spec());
        assert_eq!(s1.c2(1, -2), s2.c2(1, -2));
        assert!(inst.scale() > 0.0);
    }

    #[test]
    fn star_instances_have_star_tables() {
        let inst = Instance {
            pattern: Pattern::Star,
            radius: 2,
            h: 8,
            w: 8,
            extra_halo: 0,
            coeff_seed: 3,
            grid_seed: 4,
        };
        let spec = inst.spec();
        assert_eq!(spec.c2(1, 1), 0.0);
        assert_eq!(spec.c2(-2, 2), 0.0);
        assert_ne!(spec.c2(0, 2), 0.0);
    }

    #[test]
    fn shifted_windows_share_the_field() {
        let inst = Instance {
            pattern: Pattern::Star,
            radius: 1,
            h: 10,
            w: 12,
            extra_halo: 0,
            coeff_seed: 1,
            grid_seed: 2,
        };
        let a = inst.input();
        let b = inst.input_shifted(1, 1);
        for i in 0..9 {
            for j in 0..11 {
                assert_eq!(b.at(i, j).to_bits(), a.at(i + 1, j + 1).to_bits());
            }
        }
    }

    #[test]
    fn point_source_parities_are_disjoint() {
        let inst = Instance {
            pattern: Pattern::Star,
            radius: 1,
            h: 12,
            w: 12,
            extra_halo: 0,
            coeff_seed: 5,
            grid_seed: 6,
        };
        let a = inst.point_sources(4, 0);
        let b = inst.point_sources(4, 1);
        let halo = inst.halo() as isize;
        let mut nonzero = 0;
        for i in -halo..inst.h as isize + halo {
            for j in -halo..inst.w as isize + halo {
                assert!(
                    a.at(i, j) == 0.0 || b.at(i, j) == 0.0,
                    "sources collide at ({i},{j})"
                );
                if a.at(i, j) != 0.0 || b.at(i, j) != 0.0 {
                    nonzero += 1;
                }
            }
        }
        assert!(nonzero > 0, "no sources placed");
    }

    #[test]
    fn shrinking_reaches_the_minimal_instance() {
        let strat = InstanceStrategy::any();
        let mut cur = Instance {
            pattern: Pattern::Box,
            radius: 3,
            h: 33,
            w: 40,
            extra_halo: 2,
            coeff_seed: u64::MAX,
            grid_seed: u64::MAX,
        };
        // Greedy accept-first walk must terminate at the fixed point.
        for _ in 0..200 {
            match strat.shrink(&cur).into_iter().next() {
                Some(next) => cur = next,
                None => break,
            }
        }
        assert_eq!(
            cur,
            Instance {
                pattern: Pattern::Star,
                radius: 1,
                h: MIN_EDGE,
                w: MIN_EDGE,
                extra_halo: 0,
                coeff_seed: 0,
                grid_seed: 0,
            }
        );
    }
}
