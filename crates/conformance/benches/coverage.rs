//! Conformance coverage run: executes the full `variants × properties ×
//! instances` matrix and writes the coverage counts to a JSON artifact
//! (`--out=PATH`, default `CONFORMANCE.json` at the workspace root —
//! verify.sh redirects smoke runs into `target/`).
//!
//! Exit status is nonzero if any cell of the matrix fails, so the
//! artifact can only ever describe a green matrix. The instance count
//! follows the fast tier unless `CONFORMANCE_EXHAUSTIVE=1`.

use hstencil_conformance::instance::InstanceStrategy;
use hstencil_conformance::{case_count, exhaustive, registry, Instance, Outcome, PROPERTIES};
use hstencil_testkit::prop::Strategy;
use hstencil_testkit::rng::Xoshiro256;
use hstencil_testkit::{Json, ToJson};

/// Seed of the coverage instance stream (fixed: the artifact describes
/// a reproducible run, replayable instance by instance).
const COVERAGE_SEED: u64 = 0x5EED_C07E_11AB_0003;

fn main() {
    let n_instances = case_count(8, 48);
    let strat = InstanceStrategy::any();
    let mut rng = Xoshiro256::seed_from_u64(COVERAGE_SEED);
    let instances: Vec<Instance> = (0..n_instances).map(|_| strat.generate(&mut rng)).collect();
    let variants = registry();

    let (mut checked, mut skipped) = (0u64, 0u64);
    let mut failures: Vec<String> = Vec::new();
    for inst in &instances {
        for variant in &variants {
            for (prop_name, prop) in PROPERTIES {
                match prop(variant, inst) {
                    Ok(Outcome::Checked) => checked += 1,
                    Ok(Outcome::Skipped) => skipped += 1,
                    Err(e) => {
                        failures.push(format!("{} × {prop_name} × {inst:?}: {e}", variant.name()))
                    }
                }
            }
        }
    }

    let cells = variants.len() as u64 * PROPERTIES.len() as u64 * instances.len() as u64;
    println!(
        "conformance coverage: {} variants × {} properties × {} instances = {cells} cells \
         ({checked} checked, {skipped} skipped, {} failed)",
        variants.len(),
        PROPERTIES.len(),
        instances.len(),
        failures.len(),
    );
    for f in &failures {
        eprintln!("FAIL: {f}");
    }

    let doc = Json::object([
        ("artifact", "conformance_coverage".to_json()),
        ("exhaustive", exhaustive().to_json()),
        ("seed", format!("{COVERAGE_SEED:#x}").to_json()),
        (
            "variants",
            Json::array(variants.iter().map(|v| v.name().to_json())),
        ),
        (
            "properties",
            Json::array(PROPERTIES.iter().map(|(n, _)| n.to_json())),
        ),
        ("instances", (instances.len() as u64).to_json()),
        ("matrix_cells", cells.to_json()),
        ("checked", checked.to_json()),
        ("skipped", skipped.to_json()),
        ("failed", (failures.len() as u64).to_json()),
    ]);

    let path = std::env::args()
        .find_map(|a| a.strip_prefix("--out=").map(std::path::PathBuf::from))
        .unwrap_or_else(|| {
            std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join("CONFORMANCE.json")
        });
    match std::fs::write(&path, doc.to_pretty() + "\n") {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("error: failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
    if !failures.is_empty() {
        std::process::exit(1);
    }
}
