//! The metamorphic half of the matrix: linearity, translation
//! invariance and superposition over every registered variant, on
//! randomized instances. These oracles need no reference output, so
//! they would keep catching bugs even if the reference itself broke.

use hstencil_conformance::{case_count, registry, InstanceStrategy, PROPERTIES};
use hstencil_testkit::prop::{self, Config};
use hstencil_testkit::prop_assert;

fn metamorphic_properties() -> Vec<&'static (&'static str, hstencil_conformance::oracle::Property)>
{
    PROPERTIES
        .iter()
        .filter(|(name, _)| *name != "differential-vs-reference")
        .collect()
}

#[test]
fn at_least_three_metamorphic_properties_are_registered() {
    assert!(
        metamorphic_properties().len() >= 3,
        "matrix needs >= 3 metamorphic oracles, found {:?}",
        metamorphic_properties()
            .iter()
            .map(|(n, _)| *n)
            .collect::<Vec<_>>()
    );
}

#[test]
fn metamorphic_oracles_hold_across_the_registry() {
    let cfg = Config::with_cases(case_count(6, 24));
    let variants = registry();
    let props = metamorphic_properties();
    prop::check(&cfg, &InstanceStrategy::any(), |inst| {
        for v in &variants {
            for (name, prop_fn) in &props {
                prop_fn(v, inst).map_err(|e| format!("{name}: {e}"))?;
            }
        }
        Ok(())
    });
}

#[test]
fn linearity_is_bit_exact_even_through_the_simulator() {
    // Narrow re-statement of the strongest oracle: power-of-two
    // coefficient scaling commutes with every IEEE rounding, so even
    // the simulated FMOPA/FMLA pipelines must reproduce the doubled
    // outputs to the last bit. A star-only sweep also exercises the
    // Mat-ortho kernel, which the `any()` strategy can skip past.
    let cfg = Config::with_cases(case_count(4, 12));
    let variants = registry();
    prop::check(&cfg, &InstanceStrategy::star(), |inst| {
        for v in &variants {
            prop_assert!(
                hstencil_conformance::oracle::check_linearity(v, inst)?
                    == hstencil_conformance::Outcome::Checked,
                "{} skipped a star instance",
                v.name()
            );
        }
        Ok(())
    });
}
