//! The differential conformance matrix: every registered variant against
//! the scalar reference on randomized instances, with ULP-bounded
//! comparison and shrinking/replay on failure (TESTKIT_SEED).
//!
//! Fast tier by default; `CONFORMANCE_EXHAUSTIVE=1` widens the sweep.

use hstencil_conformance::oracle::check_differential;
use hstencil_conformance::{case_count, registry, InstanceStrategy, Outcome};
use hstencil_core::{native, reference, Dispatch, Grid3d, Method, StencilPlan};
use hstencil_testkit::prop::{self, Config};
use hstencil_testkit::prop_assert;
use lx2_sim::MachineConfig;

#[test]
fn every_variant_matches_the_reference_on_random_instances() {
    let cfg = Config::with_cases(case_count(8, 48));
    let variants = registry();
    prop::check(&cfg, &InstanceStrategy::any(), |inst| {
        let mut checked = 0usize;
        for v in &variants {
            match check_differential(v, inst)? {
                Outcome::Checked => checked += 1,
                Outcome::Skipped => {
                    // Skips must be *declared* (star-only method on a box
                    // instance), never silent.
                    prop_assert!(
                        !v.supports(inst),
                        "{} skipped an instance it claims to support: {inst:?}",
                        v.name()
                    );
                }
            }
        }
        // The acceptance floor: at least 6 variants actually ran.
        prop_assert!(checked >= 6, "only {checked} variants ran on {inst:?}");
        Ok(())
    });
}

#[test]
fn star_instances_cover_the_full_registry() {
    // On star tables no variant may skip: the whole registry must run.
    let cfg = Config::with_cases(case_count(4, 16));
    let variants = registry();
    prop::check(&cfg, &InstanceStrategy::star(), |inst| {
        for v in &variants {
            prop_assert!(
                check_differential(v, inst)? == Outcome::Checked,
                "{} skipped a star instance: {inst:?}",
                v.name()
            );
        }
        Ok(())
    });
}

#[test]
fn native_3d_and_simulated_3d_match_the_reference() {
    // The 2-D matrix is the registry's home; this pins the 3-D paths of
    // the native executor and the simulated HStencil kernel to the 3-D
    // reference on one noisy grid per preset.
    for spec in [
        hstencil_core::presets::star3d7p(),
        hstencil_core::presets::box3d27p(),
    ] {
        let r = spec.radius();
        let grid = Grid3d::from_fn(10, 12, 12, r, |k, i, j| {
            hstencil_conformance::instance::field(0xD3D0 + r as u64, i * 64 + k, j)
        });
        let mut want = grid.clone();
        reference::apply_3d(&spec, &grid, &mut want);
        for dispatch in Dispatch::candidates() {
            let mut got = grid.clone();
            native::try_apply_3d_with(dispatch, &spec, &grid, &mut got)
                .unwrap_or_else(|e| panic!("native 3-D {}: {e}", dispatch.label()));
            let diff = want.max_interior_diff(&got);
            assert!(
                diff < 1e-11,
                "{} 3-D {} diverges by {diff}",
                spec.name(),
                dispatch.label()
            );
        }
        let out = StencilPlan::new(&spec, Method::HStencil)
            .warmup(0)
            .run_3d(&MachineConfig::lx2(), &grid)
            .unwrap_or_else(|e| panic!("sim 3-D {}: {e}", spec.name()));
        let diff = want.max_interior_diff(&out.output);
        assert!(diff < 1e-9, "sim 3-D {} diverges by {diff}", spec.name());
    }
}
