//! Prefetch transparency at the plan layer: Algorithm 3's software
//! prefetch stream is a performance hint. Toggling it must leave every
//! simulated output bit-identical and show up only in the counters.

use hstencil_conformance::{case_count, InstanceStrategy};
use hstencil_core::{presets, Method, StencilPlan, StencilSpec};
use hstencil_testkit::prop::{self, Config};
use hstencil_testkit::prop_assert;
use lx2_sim::MachineConfig;

fn run_with_prefetch(
    spec: &StencilSpec,
    method: Method,
    input: &hstencil_core::Grid2d,
    on: bool,
) -> (Vec<u64>, u64) {
    let out = StencilPlan::new(spec, method)
        .warmup(0)
        .prefetch(on)
        .run_2d(&MachineConfig::lx2(), input)
        .unwrap_or_else(|e| panic!("{} prefetch={on}: {e}", spec.name()));
    let bits = out.output.raw().iter().map(|x| x.to_bits()).collect();
    (bits, out.report.counters.mem.sw_prefetches)
}

#[test]
fn prefetch_changes_counters_never_results() {
    for spec in [
        presets::star2d5p(),
        presets::box2d9p(),
        presets::star2d13p(),
    ] {
        let input = hstencil_core::Grid2d::from_fn(24, 24, spec.radius(), |i, j| {
            hstencil_conformance::instance::field(0x9F, i, j)
        });
        for method in [Method::HStencil, Method::MatrixOnly, Method::VectorOnly] {
            let (bits_on, sw_on) = run_with_prefetch(&spec, method, &input, true);
            let (bits_off, sw_off) = run_with_prefetch(&spec, method, &input, false);
            assert_eq!(
                bits_on,
                bits_off,
                "{} {method:?}: prefetch changed the output",
                spec.name()
            );
            assert_eq!(
                sw_off,
                0,
                "{} {method:?}: PRFM emitted with prefetch disabled",
                spec.name()
            );
            if method == Method::HStencil {
                assert!(
                    sw_on > 0,
                    "{} {method:?}: full configuration emitted no PRFM",
                    spec.name()
                );
            }
        }
    }
}

#[test]
fn prefetch_transparency_holds_on_random_instances() {
    let cfg = Config::with_cases(case_count(4, 12));
    prop::check(&cfg, &InstanceStrategy::any(), |inst| {
        let (spec, input) = (inst.spec(), inst.input());
        let (bits_on, sw_on) = run_with_prefetch(&spec, Method::HStencil, &input, true);
        let (bits_off, sw_off) = run_with_prefetch(&spec, Method::HStencil, &input, false);
        prop_assert!(
            bits_on == bits_off,
            "prefetch changed the simulated output on {inst:?}"
        );
        prop_assert!(sw_off == 0, "PRFM emitted with prefetch disabled");
        prop_assert!(sw_on > 0, "no PRFM in the full configuration on {inst:?}");
        Ok(())
    });
}
