//! Compares every committed golden lx2-sim trace against a fresh
//! render. Regenerate deliberately with:
//!
//! ```text
//! CONFORMANCE_BLESS=1 cargo test -p hstencil-conformance --test golden_traces
//! ```

use hstencil_conformance::golden::{check, golden_dir, CASES};

#[test]
fn committed_golden_traces_match_fresh_renders() {
    assert!(CASES.len() >= 3, "golden corpus shrank: {CASES:?}");
    for name in CASES {
        if let Err(e) = check(name) {
            panic!("{e}");
        }
    }
}

#[test]
fn golden_directory_has_no_orphan_traces() {
    // Every committed file must correspond to a registered case, so a
    // renamed case cannot leave a stale trace silently passing.
    let Ok(dir) = std::fs::read_dir(golden_dir()) else {
        return; // nothing committed yet (blessing run will create it)
    };
    for entry in dir {
        let name = entry.unwrap().file_name().to_string_lossy().into_owned();
        let stem = name.trim_end_matches(".txt");
        assert!(
            CASES.contains(&stem),
            "orphan golden file {name:?} (known cases: {CASES:?})"
        );
    }
}
