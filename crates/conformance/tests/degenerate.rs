//! Degenerate-shape corpus: grids where the halo cannot cover the
//! stencil radius, where the radius swallows the whole interior, or
//! where input and output shapes disagree. Every executor entry point
//! must refuse these with the matching typed [`GridError`] /
//! [`PlanError`] — never panic, never read out of bounds.

use hstencil_conformance::instance::{field, Instance};
use hstencil_core::{
    native, reference, Dispatch, Grid2d, Grid3d, GridError, Method, Pattern, PlanError,
    StencilPlan, StencilSpec,
};
use lx2_sim::MachineConfig;

fn spec_for(pattern: Pattern, radius: usize) -> StencilSpec {
    Instance {
        pattern,
        radius,
        h: 8,
        w: 8,
        extra_halo: 0,
        coeff_seed: 0xDE6E,
        grid_seed: 0xDE6E,
    }
    .spec()
}

fn noisy(h: usize, w: usize, halo: usize) -> Grid2d {
    Grid2d::from_fn(h, w, halo, |i, j| field(0x0BAD_5EED, i, j))
}

/// Mirror of `Grid2d::check_stencil`'s contract for same-shaped
/// in/out pairs: what a conforming executor must return.
fn expected(h: usize, w: usize, halo: usize, radius: usize) -> Result<(), GridError> {
    if halo < radius {
        return Err(GridError::HaloTooSmall { halo, radius });
    }
    let interior = h.min(w);
    if radius >= interior {
        return Err(GridError::RadiusExceedsInterior { radius, interior });
    }
    Ok(())
}

#[test]
fn degenerate_shapes_yield_typed_errors_never_panics() {
    let sizes = [1usize, 2, 3, 4, 8, 9];
    for pattern in [Pattern::Star, Pattern::Box] {
        for radius in 1..=3usize {
            let spec = spec_for(pattern, radius);
            for h in sizes {
                for w in sizes {
                    for halo in 0..=3usize {
                        let a = noisy(h, w, halo);
                        let want = expected(h, w, halo, radius);
                        let mut out = a.clone();
                        let got = reference::try_apply_2d(&spec, &a, &mut out);
                        assert_eq!(got, want, "reference on {h}x{w} halo={halo} r={radius}");
                        for dispatch in Dispatch::candidates() {
                            let mut out = a.clone();
                            let got = native::try_apply_2d_with(dispatch, &spec, &a, &mut out);
                            assert_eq!(
                                got,
                                want,
                                "native/{} on {h}x{w} halo={halo} r={radius}",
                                dispatch.label()
                            );
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn shape_mismatch_is_reported_before_anything_else() {
    let spec = spec_for(Pattern::Star, 1);
    let a = noisy(8, 8, 1);
    // Mismatched interior, *and* a halo that would also be too small:
    // the shape mismatch must win (it is checked first).
    let mut out = noisy(8, 9, 0);
    let want = Err(GridError::ShapeMismatch {
        a: [1, 8, 8],
        b: [1, 8, 9],
    });
    assert_eq!(reference::try_apply_2d(&spec, &a, &mut out), want);
    for dispatch in Dispatch::candidates() {
        let mut out = noisy(8, 9, 0);
        assert_eq!(
            native::try_apply_2d_with(dispatch, &spec, &a, &mut out),
            want,
            "native/{}",
            dispatch.label()
        );
    }
}

#[test]
fn degenerate_3d_shapes_are_rejected_too() {
    let spec = hstencil_core::presets::star3d7p();
    // Halo narrower than the radius.
    let thin = Grid3d::from_fn(6, 8, 8, 0, |k, i, j| field(3, i + k, j));
    let mut out = thin.clone();
    assert_eq!(
        native::try_apply_3d_with(Dispatch::Scalar, &spec, &thin, &mut out),
        Err(GridError::HaloTooSmall { halo: 0, radius: 1 })
    );
    // Radius swallows the depth axis.
    let flat = Grid3d::from_fn(1, 8, 8, 1, |k, i, j| field(4, i + k, j));
    let mut out = flat.clone();
    assert_eq!(
        native::try_apply_3d_with(Dispatch::Scalar, &spec, &flat, &mut out),
        Err(GridError::RadiusExceedsInterior {
            radius: 1,
            interior: 1
        })
    );
}

#[test]
fn the_plan_layer_refuses_degenerate_grids_with_plan_errors() {
    let spec = spec_for(Pattern::Star, 2);
    let cfg = MachineConfig::lx2();
    for method in [Method::HStencil, Method::VectorOnly, Method::Auto] {
        // Halo narrower than the radius.
        let got = StencilPlan::new(&spec, method)
            .warmup(0)
            .run_2d(&cfg, &noisy(16, 16, 1));
        assert!(
            matches!(got, Err(PlanError::GridTooSmall { min: 2, got: 1 })),
            "{method:?} halo<radius: {got:?}",
            got = got.map(|_| ())
        );
        // Interior below one vector tile.
        let got = StencilPlan::new(&spec, method)
            .warmup(0)
            .run_2d(&cfg, &noisy(4, 16, 2));
        assert!(
            matches!(got, Err(PlanError::GridTooSmall { .. })),
            "{method:?} h<VLEN: {got:?}",
            got = got.map(|_| ())
        );
    }
}
