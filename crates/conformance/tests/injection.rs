//! Fault-injection acceptance test: an off-by-one deliberately injected
//! into *each* registered variant must be caught by the differential
//! matrix, and the failure must come with a shrunk counterexample and a
//! copy-pasteable `TESTKIT_SEED` replay line.

use hstencil_conformance::oracle::check_differential;
use hstencil_conformance::{registry, InstanceStrategy, Outcome, Variant};
use hstencil_core::Dispatch;
use hstencil_testkit::prop::{self, Config};
use std::panic::{catch_unwind, AssertUnwindSafe};

fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast::<String>()
        .map(|s| *s)
        .or_else(|p| p.downcast::<&'static str>().map(|s| s.to_string()))
        .unwrap_or_else(|_| "<non-string panic payload>".into())
}

#[test]
fn off_by_one_in_any_variant_is_caught_with_a_replayable_counterexample() {
    let n = registry().len();
    for k in 0..n {
        let faulty = registry().swap_remove(k).with_off_by_one();
        let name = faulty.name().to_string();
        let cfg = Config {
            cases: 3,
            seed: 0x0FF5_E701 + k as u64,
            max_shrink_steps: 48,
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            // Star instances so even star-only methods actually run
            // (a skipped run can hide nothing *and* catch nothing).
            prop::check(
                &cfg,
                &InstanceStrategy::star(),
                |inst| match check_differential(&faulty, inst)? {
                    Outcome::Checked => Ok(()),
                    Outcome::Skipped => Err(format!("{name} skipped a star instance")),
                },
            );
        }));
        let text = panic_text(outcome.expect_err(&format!(
            "the harness failed to catch the fault injected into {name}"
        )));
        assert!(
            text.contains("minimal failing input"),
            "[{name}] no shrunk counterexample in:\n{text}"
        );
        assert!(
            text.contains("replay: TESTKIT_SEED=0x"),
            "[{name}] no replay line in:\n{text}"
        );
        assert!(
            text.contains("Instance"),
            "[{name}] counterexample does not show the instance:\n{text}"
        );
        assert!(
            text.contains(&name),
            "[{name}] failure does not identify the faulty variant:\n{text}"
        );
    }
}

/// The trait-instance restatement of the proof above, pinned to the
/// AVX-512 `TileKernel` instance specifically: an off-by-one in its tap
/// window must fall out of the shrinking harness as a minimal,
/// replayable counterexample. Skips with a notice on hosts without
/// avx512f (where the instance cannot execute at all).
#[test]
fn off_by_one_in_the_avx512_instance_shrinks_to_a_minimal_counterexample() {
    if !Dispatch::avx512_available() {
        println!(
            "avx512 fault-injection proof SKIPPED: host lacks avx512f, \
             the instance cannot execute here"
        );
        return;
    }
    let faulty = Variant::native(Dispatch::Avx512).with_off_by_one();
    let cfg = Config {
        cases: 4,
        seed: 0x0FF5_E512,
        max_shrink_steps: 64,
    };
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        prop::check(
            &cfg,
            &InstanceStrategy::star(),
            |inst| match check_differential(&faulty, inst)? {
                Outcome::Checked => Ok(()),
                Outcome::Skipped => Err("native/avx512 skipped a star instance".into()),
            },
        );
    }));
    let text = panic_text(outcome.expect_err("the off-by-one AVX-512 instance went undetected"));
    for needle in [
        "minimal failing input",
        "replay: TESTKIT_SEED=0x",
        "Instance",
        "native/avx512+off-by-one",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }
}
