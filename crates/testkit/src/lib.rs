//! # hstencil-testkit
//!
//! Owned, zero-dependency infrastructure that replaces the four external
//! crates the workspace originally leaned on, so that
//! `cargo build --release && cargo test -q` succeeds with **no network
//! access** (see DESIGN.md "Hermetic / offline build"):
//!
//! * [`rng`] — SplitMix64 + Xoshiro256\*\* with a `rand`-like
//!   [`Rng::gen_range`] API (replaces `rand`),
//! * [`prop`] — a seeded property-testing harness with configurable case
//!   counts, failing-seed reporting and bounded shrinking (replaces
//!   `proptest`),
//! * [`json`] — a hand-rolled JSON value model with a writer, a
//!   [`ToJson`] trait and a [`Json::parse`](json::Json::parse) reader
//!   (replaces `serde` + `serde_json`),
//! * [`mod@bench`] — a `std::time` bench harness with warmup, sampling and
//!   median/p10/p90 summaries (replaces `criterion`).
//!
//! The crate deliberately has **no dependencies** — it is the leaf of the
//! workspace graph and every other crate may use it from either
//! `[dependencies]` or `[dev-dependencies]`.

pub mod bench;
pub mod json;
pub mod prop;
pub mod rng;

pub use bench::{BenchGroup, Harness, Summary};
pub use json::{Json, ParseError, ToJson};
pub use prop::{check, Config, Strategy};
pub use rng::{Rng, SplitMix64, Xoshiro256};
